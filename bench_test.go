// Benchmarks: one per table/figure of the paper's evaluation (§6), plus
// ablations for the design choices called out in DESIGN.md. Each figure
// bench runs its experiment at benchmark scale through the same
// internal/experiment runner that cmd/validitybench uses at full scale,
// and reports the paper's headline metric as a custom unit where one
// exists (e.g. the WILDFIRE/SPANNINGTREE message ratio for Fig. 10).
//
//	go test -bench=. -benchmem
package validity

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"validity/internal/agg"
	"validity/internal/experiment"
	"validity/internal/fm"
	"validity/internal/graph"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

// benchOptions shrinks the paper's workloads to benchmark-friendly sizes
// while preserving every qualitative shape.
func benchOptions() experiment.Options {
	return experiment.Options{Scale: 0.02, Trials: 3, Seed: 1}
}

func runFigure(b *testing.B, id string) *experiment.Table {
	b.Helper()
	run, err := experiment.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var table *experiment.Table
	for i := 0; i < b.N; i++ {
		table, err = run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	return table
}

func BenchmarkFig6AccuracyCountSum(b *testing.B) { runFigure(b, "fig6") }
func BenchmarkFig7CountGnutella(b *testing.B)    { runFigure(b, "fig7") }
func BenchmarkFig8SumGnutella(b *testing.B)      { runFigure(b, "fig8") }
func BenchmarkFig9CountGrid(b *testing.B)        { runFigure(b, "fig9") }
func BenchmarkFig12Computation(b *testing.B)     { runFigure(b, "fig12") }
func BenchmarkFig13aTimeCost(b *testing.B)       { runFigure(b, "fig13a") }
func BenchmarkFig13bMessageProfile(b *testing.B) { runFigure(b, "fig13b") }
func BenchmarkCaptureRecapture(b *testing.B)     { runFigure(b, "capture") }
func BenchmarkRingEstimator(b *testing.B)        { runFigure(b, "ring") }

// BenchmarkFig10CommRandom reports the Fig. 10 headline as a custom
// metric: WILDFIRE's message premium over SPANNINGTREE on Random.
func BenchmarkFig10CommRandom(b *testing.B) {
	table := runFigure(b, "fig10")
	// Last row, columns: |H|, wf D+2, wf D+5, wf D+10, st, dag.
	row := table.Rows[len(table.Rows)-1]
	wf, _ := strconv.ParseFloat(row[1], 64)
	st, _ := strconv.ParseFloat(row[4], 64)
	if st > 0 {
		b.ReportMetric(wf/st, "wildfire/st-msgs")
	}
}

// BenchmarkFig11CommGrid reports the grid (wireless) premium and the
// min-query discount.
func BenchmarkFig11CommGrid(b *testing.B) {
	table := runFigure(b, "fig11")
	row := table.Rows[len(table.Rows)-1]
	count, _ := strconv.ParseFloat(row[1], 64)
	min, _ := strconv.ParseFloat(row[3], 64)
	st, _ := strconv.ParseFloat(row[4], 64)
	if st > 0 {
		b.ReportMetric(count/st, "wf-count/st-msgs")
		b.ReportMetric(min/st, "wf-min/st-msgs")
	}
}

// --- Ablation benches (DESIGN.md §4) ---

func benchTopology(n int) (*topologyBundle, error) {
	g := topology.NewRandom(n, 5, 1)
	return &topologyBundle{
		g:      g,
		values: zipfval.Default(1).Values(g.Len()),
		dHat:   g.DiameterSampled(2, nil) + 2,
	}, nil
}

type topologyBundle struct {
	g      *graph.Graph
	values []int64
	dHat   int
}

// BenchmarkAblationWildfireDeadline compares WILDFIRE with and without
// the §5.3 early-deadline optimization ((2D̂−l+1)δ per-host cutoff).
func BenchmarkAblationWildfireDeadline(b *testing.B) {
	bundle, err := benchTopology(1000)
	if err != nil {
		b.Fatal(err)
	}
	for _, early := range []bool{true, false} {
		name := "early"
		if !early {
			name = "full"
		}
		b.Run(name, func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				q := protocol.Query{Kind: agg.Count, Hq: 0, DHat: bundle.dHat, Params: agg.DefaultParams()}
				w := protocol.NewWildfire(q)
				w.EarlyDeadline = early
				nw := sim.NewNetwork(sim.Config{Graph: bundle.g, Seed: 1, Values: bundle.values})
				_, st, err := protocol.Run(w, nw)
				if err != nil {
					b.Fatal(err)
				}
				msgs = st.MessagesSent
			}
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}

// BenchmarkAblationWirelessMedium compares grid accounting under the two
// media (§5.3: wireless reduces worst-case traffic from 2D̂|E| to 2D̂|H|).
func BenchmarkAblationWirelessMedium(b *testing.B) {
	g := topology.NewGrid(32, 32)
	values := zipfval.Default(1).Values(g.Len())
	dHat := g.DiameterSampled(2, nil) + 2
	for _, medium := range []sim.Medium{sim.MediumPointToPoint, sim.MediumWireless} {
		b.Run(medium.String(), func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				q := protocol.Query{Kind: agg.Count, Hq: 0, DHat: dHat, Params: agg.DefaultParams()}
				nw := sim.NewNetwork(sim.Config{Graph: g, Medium: medium, Seed: 1, Values: values})
				_, st, err := protocol.Run(protocol.NewWildfire(q), nw)
				if err != nil {
					b.Fatal(err)
				}
				msgs = st.MessagesSent
			}
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}

// BenchmarkAblationFMSumFastPath compares literal repeated insertion
// against the per-bit Bernoulli fast path for large sum addends.
func BenchmarkAblationFMSumFastPath(b *testing.B) {
	const addend = 1 << 14
	b.Run("literal", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			s := fm.NewSketch(8, 32)
			for k := 0; k < addend; k++ {
				s.AddDistinct(rng)
			}
		}
	})
	b.Run("fastpath", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			s := fm.NewSketch(8, 32)
			s.AddN(rng, addend)
		}
	})
}

// BenchmarkAblationPCSA compares the §5.2 per-element-c sketch encoding
// against the original FM paper's stochastic-averaging (PCSA) design:
// one geometric draw per insertion instead of c, at the price of a
// noisier estimate for equal c.
func BenchmarkAblationPCSA(b *testing.B) {
	const m = 1 << 12
	b.Run("sketch-c8", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			s := fm.NewSketch(8, 32)
			for k := 0; k < m; k++ {
				s.AddDistinct(rng)
			}
		}
	})
	b.Run("pcsa-c8", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			p := fm.NewPCSA(8, 32)
			for k := 0; k < m; k++ {
				p.AddRandom(rng)
			}
		}
	})
}

// BenchmarkGossipBaseline measures the §2.2 epidemic baseline's cost to
// reach convergence on the same network the protocol comparison uses.
func BenchmarkGossipBaseline(b *testing.B) {
	g := topology.NewRandom(2000, 5, 1)
	values := zipfval.Default(1).Values(g.Len())
	dHat := g.DiameterSampled(2, nil) + 2
	var msgs int64
	for i := 0; i < b.N; i++ {
		q := protocol.Query{Kind: agg.Avg, Hq: 0, DHat: dHat, Params: agg.DefaultParams()}
		nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1, Values: values})
		_, st, err := protocol.Run(protocol.NewGossip(q, 8*dHat), nw)
		if err != nil {
			b.Fatal(err)
		}
		msgs = st.MessagesSent
	}
	b.ReportMetric(float64(msgs), "msgs")
}

// BenchmarkProtocolsMessageCost compares all protocols' end-to-end run
// cost on the same 2000-host random network (count query).
func BenchmarkProtocolsMessageCost(b *testing.B) {
	g := topology.NewRandom(2000, 5, 1)
	values := zipfval.Default(1).Values(g.Len())
	dHat := g.DiameterSampled(2, nil) + 2
	specs := []struct {
		name  string
		build func(protocol.Query) protocol.Protocol
	}{
		{"wildfire", func(q protocol.Query) protocol.Protocol { return protocol.NewWildfire(q) }},
		{"spanningtree", func(q protocol.Query) protocol.Protocol { return protocol.NewSpanningTree(q) }},
		{"dag2", func(q protocol.Query) protocol.Protocol { return protocol.NewDAG(q, 2) }},
		{"allreport", func(q protocol.Query) protocol.Protocol { return protocol.NewAllReport(q) }},
		{"randomized", func(q protocol.Query) protocol.Protocol { return protocol.NewRandomizedReport(q, 0.1) }},
	}
	for _, spec := range specs {
		b.Run(spec.name, func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				q := protocol.Query{Kind: agg.Count, Hq: 0, DHat: dHat, Params: agg.DefaultParams()}
				nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1, Values: values})
				_, st, err := protocol.Run(spec.build(q), nw)
				if err != nil {
					b.Fatal(err)
				}
				msgs = st.MessagesSent
			}
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}

// BenchmarkPublicAPIQuery measures the end-to-end public API path a
// downstream user exercises.
func BenchmarkPublicAPIQuery(b *testing.B) {
	net, err := NewNetwork(NetworkConfig{Topology: Gnutella, Hosts: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Query(QueryConfig{Aggregate: Count, Protocol: Wildfire, Failures: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = strings.TrimSpace // keep strings imported for future table parsing
