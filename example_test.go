package validity_test

import (
	"fmt"

	"validity"
)

// The smallest useful program: one count query with validity bounds.
func ExampleNetwork_Query() {
	net, err := validity.NewNetwork(validity.NetworkConfig{
		Hosts:  4,
		Edges:  [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		Values: []int64{5, 15, 1, 25},
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}
	res, err := net.Query(validity.QueryConfig{
		Aggregate: validity.Max,
		Protocol:  validity.Wildfire,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("max=%.0f valid=%v bounds=[%.0f, %.0f]\n",
		res.Value, res.Valid, res.Lower, res.Upper)
	// Output: max=25 valid=true bounds=[25, 25]
}

// Failures mid-query: the Fig. 5 network where both of h_q's neighbors
// die, leaving H_C = {h_q}; the answer degrades to h_q's own value yet
// remains valid.
func ExampleNetwork_Query_churn() {
	net, err := validity.NewNetwork(validity.NetworkConfig{
		Hosts:  4,
		Edges:  [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		Values: []int64{5, 15, 1, 25},
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}
	res, err := net.Query(validity.QueryConfig{
		Aggregate: validity.Max,
		Protocol:  validity.Wildfire,
		Schedule:  []validity.Failure{{H: 1, T: 1}, {H: 2, T: 1}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("max=%.0f valid=%v |H_C|=%d\n", res.Value, res.Valid, res.HC)
	// Output: max=5 valid=true |H_C|=1
}

// The §6.6.2 self-probe: discover a good D̂ with WILDFIRE itself, then
// use it.
func ExampleNetwork_ProbeDiameter() {
	net, err := validity.NewNetwork(validity.NetworkConfig{
		Topology: validity.Grid,
		Hosts:    100,
		Seed:     13,
	})
	if err != nil {
		panic(err)
	}
	ecc, dHat, err := net.ProbeDiameter(0, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("eccentricity=%d recommended D̂=%d\n", ecc, dHat)
	// Output: eccentricity=9 recommended D̂=11
}
