package validity

import (
	"testing"
	"time"
)

func TestContinuousQueryAPI(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Topology: Gnutella, Hosts: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := net.ContinuousQuery(ContinuousConfig{
		Aggregate: Max,
		Windows:   3,
		Failures:  60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("windows = %d", len(rs))
	}
	for _, r := range rs {
		if !r.Valid {
			t.Fatalf("window %d: %v outside [%v,%v]", r.Index, r.Value, r.Lower, r.Upper)
		}
		if r.End <= r.Start {
			t.Fatalf("window %d: degenerate interval [%d,%d)", r.Index, r.Start, r.End)
		}
	}
	if rs[2].AliveAtStart >= rs[0].AliveAtStart+1 {
		t.Fatal("population did not shrink under churn")
	}
}

// TestContinuousQueryOnEngine runs the same public API on the live query
// engine: windows execute as real engine sub-queries over goroutines and
// wall-clock hops (internal/stream), not under the deterministic event
// loop, yet every window must still satisfy its own validity bounds.
func TestContinuousQueryOnEngine(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Topology: Random, Hosts: 60, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := net.ContinuousQuery(ContinuousConfig{
		Aggregate:     Count,
		Windows:       3,
		Failures:      12,
		SketchVectors: 64,
		Engine:        true,
		Hop:           10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("windows = %d", len(rs))
	}
	for i, r := range rs {
		if r.Index != i {
			t.Fatalf("window %d arrived at position %d; results must stream in order", r.Index, i)
		}
		if !r.Valid {
			t.Fatalf("window %d: %v outside its own bounds [%v,%v]", r.Index, r.Value, r.Lower, r.Upper)
		}
		if r.Messages == 0 {
			t.Fatalf("window %d reports zero messages", r.Index)
		}
	}
	if rs[2].HU >= net.Hosts() {
		t.Fatalf("final window H_U = %d of %d hosts; churn never bit", rs[2].HU, net.Hosts())
	}
}

func TestContinuousQueryValidation(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Topology: Random, Hosts: 50, Seed: 12})
	if _, err := net.ContinuousQuery(ContinuousConfig{Aggregate: Max, Windows: 0}); err == nil {
		t.Fatal("zero windows accepted")
	}
	if _, err := net.ContinuousQuery(ContinuousConfig{Aggregate: Max, Windows: 2, Hq: 99}); err == nil {
		t.Fatal("bad hq accepted")
	}
	if _, err := net.ContinuousQuery(ContinuousConfig{Aggregate: Max, Windows: 2, Failures: 50}); err == nil {
		t.Fatal("failing everyone accepted")
	}
	if _, err := net.ContinuousQuery(ContinuousConfig{Aggregate: Aggregate(42), Windows: 2}); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
	if _, err := net.ContinuousQuery(ContinuousConfig{Aggregate: Max, Windows: 2,
		Schedule: []Failure{{H: 999, T: 1}}}); err == nil {
		t.Fatal("bad schedule host accepted")
	}
	wireless, _ := NewNetwork(NetworkConfig{Topology: Grid, Hosts: 49, Seed: 3, Wireless: true})
	if _, err := wireless.ContinuousQuery(ContinuousConfig{Aggregate: Max, Windows: 2, Engine: true}); err == nil {
		t.Fatal("Engine accepted on a wireless network; its accounting is simulator-only")
	}
}

func TestProbeDiameterAPI(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Topology: Grid, Hosts: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ecc, rec, err := net.ProbeDiameter(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corner of a 10×10 8-neighbor grid: eccentricity 9.
	if ecc != 9 || rec != 11 {
		t.Fatalf("ecc=%d rec=%d, want 9/11", ecc, rec)
	}
	if _, _, err := net.ProbeDiameter(-1, 0); err == nil {
		t.Fatal("bad hq accepted")
	}
	// The recommended D̂ makes subsequent queries work end-to-end.
	res, err := net.Query(QueryConfig{Aggregate: Max, Protocol: Wildfire, DHat: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatal("query with probed D̂ invalid")
	}
}
