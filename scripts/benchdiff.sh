#!/bin/sh
# benchdiff: run the engine benchmark and diff it against the committed
# BENCH_engine.json, so a perf regression shows up in review as a signed
# percentage instead of an unexplained number swap.
#
#   scripts/benchdiff.sh             # committed HEAD json vs a fresh run
#   scripts/benchdiff.sh old.json    # old.json vs a fresh run
#   scripts/benchdiff.sh old new     # two existing runs, no benching
#
# Throughput keys (queries/sec, windows/sec) are compared numerically;
# a drop beyond the threshold (default 20%, override BENCHDIFF_PCT)
# exits non-zero. Latency keys (latency_ms_p50/p95/p99 and their churn
# variants) gate the other direction: a tail that grows beyond
# BENCHDIFF_LAT_PCT (default 25%) fails even if throughput held, since a
# stream can keep its queries/sec while individual queries stall behind
# the concurrency window. bytes_per_query also gates upward (threshold
# BENCHDIFF_PCT) — it is deterministic wire-format accounting, so growth
# means the framing actually got fatter. The scale regime's footprint
# keys (scale_peak_goroutines, scale_heap_inuse_bytes) gate upward too
# (threshold BENCHDIFF_FOOT_PCT, default 50%): a regression back to
# per-host goroutines or per-host buffers multiplies them, which no
# sampling noise explains. obs_frame_ns_instrumented — the per-frame
# cost of the hot-path instrumentation — gates upward at the same
# footprint threshold (the nil-disabled twin is printed for context but
# not gated: a ~1ns branch is all noise in percentage terms). Timing
# noise on loaded machines is real — treat a red timing result as
# "rerun and look", not as proof by itself.
set -e

cd "$(dirname "$0")/.."
THRESHOLD=${BENCHDIFF_PCT:-20}
LAT_THRESHOLD=${BENCHDIFF_LAT_PCT:-25}
FOOT_THRESHOLD=${BENCHDIFF_FOOT_PCT:-50}

OLD=$1
NEW=$2

TMPFILES=""
trap 'rm -f $TMPFILES' EXIT

if [ -z "$OLD" ]; then
    # The committed baseline: HEAD's BENCH_engine.json if git has one,
    # else the working-tree file.
    OLD=$(mktemp)
    TMPFILES="$TMPFILES $OLD"
    if ! git show HEAD:BENCH_engine.json >"$OLD" 2>/dev/null; then
        cp BENCH_engine.json "$OLD"
    fi
fi

if [ -z "$NEW" ]; then
    NEW=$(mktemp)
    TMPFILES="$TMPFILES $NEW"
    echo "benchdiff: running the engine benchmark..."
    BENCH_ENGINE_OUT="$NEW" go test ./internal/daemon -run TestBenchEngine -count=1 >/dev/null
fi

# The report is flat one-key-per-line JSON; awk extracts "key": number
# pairs and joins the two files on key.
awk -v threshold="$THRESHOLD" -v latthreshold="$LAT_THRESHOLD" -v footthreshold="$FOOT_THRESHOLD" '
    match($0, /"[a-z0-9_]+": [0-9.]+,?$/) {
        line = substr($0, RSTART, RLENGTH)
        gsub(/[",:]/, "", line)
        split(line, kv, " ")
        if (FNR == NR) old[kv[1]] = kv[2]
        else           new[kv[1]] = kv[2]
    }
    END {
        fail = 0
        printf "%-26s %12s %12s %9s\n", "metric", "old", "new", "delta"
        for (k in old) {
            if (!(k in new) || old[k] == 0) continue
            # Throughput regresses downward; latency, wire bytes, and the
            # scale footprint regress upward; everything else in the
            # report is a config knob.
            if (k !~ /per_sec/ && k !~ /latency_ms/ && k !~ /bytes_per_query/ && k !~ /peak_goroutines/ && k !~ /heap_inuse/ && k !~ /obs_frame_ns/) continue
            pct = (new[k] - old[k]) * 100 / old[k]
            flag = ""
            if (k ~ /per_sec/ && pct < -threshold)           { flag = "  << REGRESSION"; fail = 1 }
            if (k ~ /latency_ms/ && pct > latthreshold)      { flag = "  << TAIL REGRESSION"; fail = 1 }
            if (k ~ /bytes_per_query/ && pct > threshold)    { flag = "  << WIRE REGRESSION"; fail = 1 }
            if ((k ~ /peak_goroutines/ || k ~ /heap_inuse/) && pct > footthreshold) { flag = "  << FOOTPRINT REGRESSION"; fail = 1 }
            if (k ~ /obs_frame_ns_instrumented/ && pct > footthreshold) { flag = "  << OBS OVERHEAD REGRESSION"; fail = 1 }
            printf "%-26s %12.2f %12.2f %+8.1f%%%s\n", k, old[k], new[k], pct, flag
        }
        exit fail
    }
' "$OLD" "$NEW" || {
    echo "benchdiff: throughput dropped more than ${THRESHOLD}% or latency grew more than ${LAT_THRESHOLD}% on at least one metric" >&2
    exit 1
}
