#!/bin/sh
# Multi-process Single-Site Validity demo: three validityd processes on
# loopback shard a 60-host random topology and answer a concurrent stream
# of WILDFIRE COUNT/MIN queries over the TCP transport without any
# restart — first over a static network, then under per-query churn, the
# paper's defining condition. Every result is checked against the oracle
# bounds of its own membership timeline.
#
# The -churn grammar (ticks are δ units on each query's own clock):
#   -churn rate=R[,window=W]                 R hosts leave uniformly over [0,W]
#   -churn model=sessions,mean=M[,window=W]  exponential lifetimes, mean M
#   -churn trace=FILE                        recorded host,tick CSV departures
# -kill host@tick,... names explicit departures, also per query. Workers
# regenerate every query's schedule from the shared seed and the query id
# alone, so the same flags are handed to every process and no churn
# coordination crosses the wire.
#
# The second act streams a continuous §4.2 query over its own fleet:
# -continuous -windows N -window W turns the one query into N windowed
# sub-queries, one line per window against that window's own H_C/H_U
# bounds. Churn moves to the stream's absolute clock; workers are handed
# the same flags and materialize each window on first contact — no window
# coordination crosses the wire either.
set -e

BIN=${BIN:-$(mktemp -d)/validityd}
go build -o "$BIN" ./cmd/validityd

PEERS="0-19=127.0.0.1:7101,20-39=127.0.0.1:7102,40-59=127.0.0.1:7103"
CHURN="-churn rate=6,window=12 -kill 29@4"
COMMON="-transport tcp -topology random -hosts 60 -seed 23 -peers $PEERS -agg count,min -hq 0,7 -dhat 12 -hop 5ms $CHURN"

# Workers serve indefinitely; the trap reaps them when the demo is done.
"$BIN" $COMMON -serve 20-39 &
W1=$!
"$BIN" $COMMON -serve 40-59 &
W2=$!
trap 'kill $W1 $W2 2>/dev/null || true' EXIT

sleep 1 # let the workers bind their listeners
"$BIN" $COMMON -serve 0-19 -query -queries 8 -concurrency 2

# The same churned stream fully in process via the channel transport:
"$BIN" -transport chan -topology random -hosts 60 -seed 23 -agg count,min -hq 0,7 -hop 5ms $CHURN -query -queries 4 -concurrency 2

kill $W1 $W2 2>/dev/null || true
wait $W1 $W2 2>/dev/null || true

# Act two — continuous §4.2 streaming over a fresh three-process fleet:
# one COUNT query, 5 windows of 24 ticks, 12 departures spread across the
# whole 120-tick run. Every process gets the identical flags; the workers
# serve windows exactly as they serve one-shot queries.
PEERS2="0-19=127.0.0.1:7111,20-39=127.0.0.1:7112,40-59=127.0.0.1:7113"
STREAM="-continuous -windows 5 -window 24 -churn rate=12 -kill 29@4"
COMMON2="-transport tcp -topology random -hosts 60 -seed 23 -peers $PEERS2 -agg count -hq 0 -dhat 12 -hop 5ms $STREAM"

"$BIN" $COMMON2 -serve 20-39 &
W1=$!
"$BIN" $COMMON2 -serve 40-59 &
W2=$!
trap 'kill $W1 $W2 2>/dev/null || true' EXIT

sleep 1 # let the workers bind their listeners
"$BIN" $COMMON2 -serve 0-19 -query

# The same continuous stream fully in process via the channel transport:
"$BIN" -transport chan -topology random -hosts 60 -seed 23 -agg count -hq 0 -hop 5ms $STREAM -query
