#!/bin/sh
# Multi-process Single-Site Validity demo: three validityd processes on
# loopback shard a 60-host random topology and answer a concurrent stream
# of WILDFIRE COUNT/MIN queries over the TCP transport without any
# restart — first over a static network, then under per-query churn, the
# paper's defining condition. Every result is checked against the oracle
# bounds of its own membership timeline.
#
# The -churn grammar (ticks are δ units on each query's own clock):
#   -churn rate=R[,window=W]                 R hosts leave uniformly over [0,W]
#   -churn model=sessions,mean=M[,join=D][,window=W]
#                                            exponential lifetimes, mean M;
#                                            join=D rebirths departed hosts
#                                            after exp downtimes, mean D
#   -churn model=burst,hosts=A-B,at=T        hosts A..B leave together at T
#   -churn trace=FILE                        recorded host,tick[,event] CSV
# -kill host@tick,... names explicit departures and +host@tick joins (a
# host whose first event is a join is absent until it arrives), also per
# query. Workers regenerate every query's timeline from the shared seed
# and the query id alone, so the same flags are handed to every process
# and no churn coordination crosses the wire.
#
# The second act streams a continuous §4.2 query over its own fleet:
# -continuous -windows N -window W turns the one query into N windowed
# sub-queries, one line per window against that window's own H_C/H_U
# bounds. Churn moves to the stream's absolute clock; workers are handed
# the same flags and materialize each window on first contact — no window
# coordination crosses the wire either.
set -e

BINDIR=$(mktemp -d)
BIN=${BIN:-$BINDIR/validityd}
TOP=${TOP:-$BINDIR/validitytop}
go build -o "$BIN" ./cmd/validityd
go build -o "$TOP" ./cmd/validitytop

PEERS="0-19=127.0.0.1:7101,20-39=127.0.0.1:7102,40-59=127.0.0.1:7103"
CHURN="-churn rate=6,window=12 -kill 29@4"
COMMON="-transport tcp -topology random -hosts 60 -seed 23 -peers $PEERS -agg count,min -hq 0,7 -dhat 12 -hop 5ms $CHURN"

# Every process exposes its own -metrics endpoint; -fleet on the issuer
# names all three, arming the cross-process plane: /metrics/fleet rolls
# the fleet up into one exposition and slow-query dumps merge the trace
# rings of every process into one causally-ordered timeline.
M1=127.0.0.1:7190
M2=127.0.0.1:7191
M3=127.0.0.1:7192
FLEET="issuer=$M1,w1=$M2,w2=$M3"

# Workers serve indefinitely; the trap reaps them when the demo is done.
"$BIN" $COMMON -serve 20-39 -metrics $M2 &
W1=$!
"$BIN" $COMMON -serve 40-59 -metrics $M3 &
W2=$!
trap 'kill $W1 $W2 2>/dev/null || true' EXIT

sleep 1 # let the workers bind their listeners

# The issuer's observability surface: -metrics serves the Prometheus
# exposition, typed /debug/snapshot + /debug/trace dumps, /debug/queries,
# and pprof; -slow-query 1ms makes every query dump its merged fleet
# timeline to stderr. Scrape mid-churn, while the stream is in flight.
QLOG=$(mktemp)
"$BIN" $COMMON -serve 0-19 -query -queries 8 -concurrency 2 \
    -metrics $M1 -fleet "$FLEET" -slow-query 1ms 2>"$QLOG" &
Q=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    curl -fsS "http://$M1/metrics" >/dev/null 2>&1 && break
    sleep 0.2
done
echo "--- mid-run scrape: §6.3 counters and latency histograms ---"
curl -fsS "http://$M1/metrics" 2>/dev/null | grep -E '^(node|transport|daemon)_' | head -n 12 || true
echo "--- mid-run scrape: /metrics/fleet (counters summed, histograms bucket-merged) ---"
curl -fsS "http://$M1/metrics/fleet" 2>/dev/null | grep -E '^(fleet_|node_messages|daemon_query_latency_ms_(count|sum))' | head -n 12 || true
echo "--- mid-run scrape: /debug/queries ---"
curl -fsS "http://$M1/debug/queries" 2>/dev/null || true
wait $Q
echo "--- merged slow-query timeline: query 1's events from all three processes ---"
grep 'msg="slow query trace" query=1 ' "$QLOG" || true
rm -f "$QLOG"

# validitytop reads the same fleet addresses; the issuer has exited by
# now, so its DOWN row demos per-peer failure tolerance live.
echo "--- validitytop -once ---"
"$TOP" -fleet "$FLEET" -once || true

# The same churned stream fully in process via the channel transport:
"$BIN" -transport chan -topology random -hosts 60 -seed 23 -agg count,min -hq 0,7 -hop 5ms $CHURN -query -queries 4 -concurrency 2

kill $W1 $W2 2>/dev/null || true
wait $W1 $W2 2>/dev/null || true

# Act two — continuous §4.2 streaming over a fresh three-process fleet:
# one COUNT query, 5 windows of 24 ticks, 12 departures spread across the
# whole 120-tick run. Every process gets the identical flags; the workers
# serve windows exactly as they serve one-shot queries.
PEERS2="0-19=127.0.0.1:7111,20-39=127.0.0.1:7112,40-59=127.0.0.1:7113"
STREAM="-continuous -windows 5 -window 24 -churn rate=12 -kill 29@4"
COMMON2="-transport tcp -topology random -hosts 60 -seed 23 -peers $PEERS2 -agg count -hq 0 -dhat 12 -hop 5ms $STREAM"

"$BIN" $COMMON2 -serve 20-39 &
W1=$!
"$BIN" $COMMON2 -serve 40-59 &
W2=$!
trap 'kill $W1 $W2 2>/dev/null || true' EXIT

sleep 1 # let the workers bind their listeners
"$BIN" $COMMON2 -serve 0-19 -query

# The same continuous stream fully in process via the channel transport:
"$BIN" -transport chan -topology random -hosts 60 -seed 23 -agg count -hq 0 -hop 5ms $STREAM -query

kill $W1 $W2 2>/dev/null || true
wait $W1 $W2 2>/dev/null || true

# Act three — host joins, end to end. A fresh three-process fleet where
# host 45 (served by the third worker) is a late joiner: absent from
# every query's tick 0, arriving at tick 6 of each query's own clock
# (-kill +45@6) while host 29 departs at tick 4. H_U now exceeds the
# initial host set — population growth the departures-only membership
# layer could never express — and every bound pair is still recomputed
# identically by every process from the shared flags alone.
PEERS3="0-19=127.0.0.1:7121,20-39=127.0.0.1:7122,40-59=127.0.0.1:7123"
JOINS="-kill 29@4,+45@6"
COMMON3="-transport tcp -topology random -hosts 60 -seed 23 -peers $PEERS3 -agg count,min -hq 0,7 -dhat 12 -hop 5ms $JOINS"

"$BIN" $COMMON3 -serve 20-39 &
W1=$!
"$BIN" $COMMON3 -serve 40-59 &
W2=$!
trap 'kill $W1 $W2 2>/dev/null || true' EXIT

sleep 1 # let the workers bind their listeners
"$BIN" $COMMON3 -serve 0-19 -query -queries 4 -concurrency 2

kill $W1 $W2 2>/dev/null || true
wait $W1 $W2 2>/dev/null || true

# And a growing continuous window population, fully in process: two late
# joiners land mid-run, so the per-window pop= column rises — watch it
# climb 58, 59, 60 across the three windows.
"$BIN" -transport chan -topology random -hosts 60 -seed 23 -agg count -hq 0 -hop 5ms \
    -continuous -windows 3 -window 24 -kill +30@30,+31@55 -query
