#!/bin/sh
# metrics-smoke: boot one validityd answering a real in-process query
# stream with -metrics on, scrape /metrics and /debug/queries mid-run,
# and assert the §6.3 counter families and the query snapshot actually
# come back. This is the CI gate for the observability surface — the Go
# tests exercise the registry and the endpoint in depth; this proves the
# built binary wires them together end to end.
set -e

cd "$(dirname "$0")/.."

BIN=${BIN:-$(mktemp -d)/validityd}
go build -o "$BIN" ./cmd/validityd

LOG=$(mktemp)
OUT=$(mktemp)
trap 'kill $PID 2>/dev/null || true; rm -f "$LOG" "$OUT"' EXIT

# A stream long enough to scrape mid-run: 8 queries at concurrency 1
# over 60 hosts runs for a few seconds at -hop 5ms. Port 0 dodges
# collisions; the bound address arrives on the slog stderr line.
"$BIN" -transport chan -topology random -hosts 60 -seed 23 \
    -agg count,min -hq 0,7 -hop 5ms \
    -query -queries 8 -concurrency 1 \
    -metrics 127.0.0.1:0 >"$OUT" 2>"$LOG" &
PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/.*msg="metrics listening" addr=\([0-9.]*:[0-9]*\).*/\1/p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "metrics-smoke: validityd exited before announcing its metrics address" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "metrics-smoke: no metrics address in the log after 10s" >&2
    cat "$LOG" >&2
    exit 1
fi

METRICS=$(curl -fsS "http://$ADDR/metrics")
for family in \
    '# TYPE node_messages_sent_total counter' \
    '# TYPE node_frames_dropped_total counter' \
    '# TYPE node_queries_live gauge' \
    '# TYPE daemon_query_latency_ms histogram'; do
    if ! printf '%s\n' "$METRICS" | grep -Fq "$family"; then
        echo "metrics-smoke: /metrics missing '$family'" >&2
        printf '%s\n' "$METRICS" >&2
        exit 1
    fi
done

if ! curl -fsS "http://$ADDR/debug/queries" | grep -Fq '"live"'; then
    echo "metrics-smoke: /debug/queries returned no query snapshot" >&2
    exit 1
fi

wait "$PID"
echo "metrics-smoke: ok (scraped $ADDR mid-run)"
