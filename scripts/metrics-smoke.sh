#!/bin/sh
# metrics-smoke: boot one validityd answering a real in-process query
# stream with -metrics on, scrape /metrics and /debug/queries mid-run,
# and assert the §6.3 counter families and the query snapshot actually
# come back. Then a second act boots a three-process TCP fleet with
# -fleet wired and proves the cross-process plane end to end: the typed
# /debug/snapshot and /debug/trace endpoints answer, /metrics/fleet
# serves the rolled-up exposition, validitytop -once renders a status
# table off the live processes, and the issuer's quiesce-frames counter
# proves the cross-process quiescence plane engaged. This is the CI
# gate for the
# observability surface — the Go tests exercise the registry and the
# collector in depth; this proves the built binaries wire them together.
set -e

cd "$(dirname "$0")/.."

BINDIR=$(mktemp -d)
BIN=${BIN:-$BINDIR/validityd}
TOP=${TOP:-$BINDIR/validitytop}
go build -o "$BIN" ./cmd/validityd
go build -o "$TOP" ./cmd/validitytop

LOG=$(mktemp)
OUT=$(mktemp)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -f "$LOG" "$OUT"
}
trap cleanup EXIT

# --- act 1: in-process stream, single-process endpoints ---

# A stream long enough to scrape mid-run: 8 queries at concurrency 1
# over 60 hosts runs for a few seconds at -hop 5ms. Port 0 dodges
# collisions; the bound address arrives on the slog stderr line.
"$BIN" -transport chan -topology random -hosts 60 -seed 23 \
    -agg count,min -hq 0,7 -hop 5ms \
    -query -queries 8 -concurrency 1 \
    -metrics 127.0.0.1:0 >"$OUT" 2>"$LOG" &
PID=$!
PIDS="$PIDS $PID"

ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/.*msg="metrics listening" addr=\([0-9.]*:[0-9]*\).*/\1/p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "metrics-smoke: validityd exited before announcing its metrics address" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "metrics-smoke: no metrics address in the log after 10s" >&2
    cat "$LOG" >&2
    exit 1
fi

METRICS=$(curl -fsS "http://$ADDR/metrics")
for family in \
    '# TYPE node_messages_sent_total counter' \
    '# TYPE node_frames_dropped_total counter' \
    '# TYPE node_queries_live gauge' \
    '# TYPE daemon_query_latency_ms histogram'; do
    if ! printf '%s\n' "$METRICS" | grep -Fq "$family"; then
        echo "metrics-smoke: /metrics missing '$family'" >&2
        printf '%s\n' "$METRICS" >&2
        exit 1
    fi
done

DQ=$(curl -fsS "http://$ADDR/debug/queries")
if ! printf '%s\n' "$DQ" | grep -Fq '"live"'; then
    echo "metrics-smoke: /debug/queries returned no query snapshot" >&2
    exit 1
fi

wait "$PID"
PIDS=""
echo "metrics-smoke: act 1 ok (scraped $ADDR mid-run)"

# --- act 2: three-process TCP fleet, cross-process endpoints ---

# Fixed ports derived from the shell pid keep parallel CI runs apart;
# six consecutive ports: three transport, three metrics.
BASE=$((20000 + $$ % 20000))
P1="127.0.0.1:$BASE"
P2="127.0.0.1:$((BASE + 1))"
P3="127.0.0.1:$((BASE + 2))"
M1="127.0.0.1:$((BASE + 3))"
M2="127.0.0.1:$((BASE + 4))"
M3="127.0.0.1:$((BASE + 5))"
PEERS="0-19=$P1,20-39=$P2,40-59=$P3"
FLEET="issuer=$M1,w1=$M2,w2=$M3"
COMMON="-transport tcp -topology random -hosts 60 -seed 23 -peers $PEERS -agg count -hq 0 -dhat 12 -hop 5ms"

# wait_http polls until an endpoint answers (the poor shell's
# waitListening).
wait_http() {
    j=0
    while [ $j -lt 100 ]; do
        curl -fsS -o /dev/null "$1" 2>/dev/null && return 0
        sleep 0.1
        j=$((j + 1))
    done
    echo "metrics-smoke: $1 never came up" >&2
    exit 1
}

# shellcheck disable=SC2086 # COMMON is a flag list, splitting is the point
"$BIN" $COMMON -serve 20-39 -run-for 60s -metrics "$M2" >/dev/null 2>&1 &
PIDS="$PIDS $!"
# shellcheck disable=SC2086
"$BIN" $COMMON -serve 40-59 -run-for 60s -metrics "$M3" >/dev/null 2>&1 &
PIDS="$PIDS $!"
wait_http "http://$M2/metrics"
wait_http "http://$M3/metrics"

# The issuer: a stream slow enough to scrape mid-run, with -fleet armed
# so /metrics/fleet merges all three processes.
# shellcheck disable=SC2086
"$BIN" $COMMON -serve 0-19 -query -queries 8 -concurrency 1 \
    -metrics "$M1" -fleet "$FLEET" >"$OUT" 2>"$LOG" &
QPID=$!
PIDS="$PIDS $QPID"
wait_http "http://$M1/metrics"

# Typed endpoints: the registry snapshot and query 1's trace ring
# (issued as soon as the stream starts, so retry briefly). Responses go
# through variables, not pipes — grep -q quitting early would feed curl
# a SIGPIPE and a spurious exit-23 warning.
SNAP=$(curl -fsS "http://$M1/debug/snapshot")
if ! printf '%s\n' "$SNAP" | grep -Fq '"counters"'; then
    echo "metrics-smoke: /debug/snapshot returned no typed registry dump" >&2
    exit 1
fi
i=0
while [ $i -lt 50 ]; do
    TRACE=$(curl -fsS "http://$M1/debug/trace?q=1" 2>/dev/null || true)
    printf '%s\n' "$TRACE" | grep -Fq '"query": 1' && break
    sleep 0.1
    i=$((i + 1))
done
if [ $i -ge 50 ]; then
    echo "metrics-smoke: /debug/trace?q=1 never carried query 1's ring" >&2
    exit 1
fi

FLEETEXPO=$(curl -fsS "http://$M1/metrics/fleet")
for want in 'fleet_peer_up{proc="w1"} 1' 'fleet_peers 3' 'node_messages_sent_total'; do
    if ! printf '%s\n' "$FLEETEXPO" | grep -Fq "$want"; then
        echo "metrics-smoke: /metrics/fleet missing '$want'" >&2
        printf '%s\n' "$FLEETEXPO" >&2
        exit 1
    fi
done

# validitytop against the live fleet: one plain snapshot must carry the
# table header and the per-process rows.
TOPOUT=$("$TOP" -fleet "$FLEET" -once)
for want in 'PROC' 'w1' 'w2' 'fleet:'; do
    if ! printf '%s\n' "$TOPOUT" | grep -Fq "$want"; then
        echo "metrics-smoke: validitytop -once missing '$want'" >&2
        printf '%s\n' "$TOPOUT" >&2
        exit 1
    fi
done

# The quiescence plane: the tcp fleet runs with -quiesce on by default,
# so the issuer must take worker control frames off the wire while the
# stream is live — a zero counter here means the plane never engaged.
i=0
while [ $i -lt 100 ]; do
    QN=$(curl -fsS "http://$M1/metrics" 2>/dev/null |
        sed -n 's/^node_quiesce_frames_received_total \([0-9]*\)$/\1/p')
    [ -n "$QN" ] && [ "$QN" -gt 0 ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ $i -ge 100 ]; then
    echo "metrics-smoke: issuer never received a quiesce control frame" >&2
    cat "$LOG" >&2
    exit 1
fi

if ! wait "$QPID"; then
    echo "metrics-smoke: fleet issuer failed" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "metrics-smoke: ok (fleet act scraped $M1 mid-run)"
