package validity

import (
	"testing"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{Hosts: 0}); err == nil {
		t.Fatal("zero hosts accepted")
	}
	if _, err := NewNetwork(NetworkConfig{Hosts: 3, Edges: [][2]int{{0, 9}}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := NewNetwork(NetworkConfig{Hosts: 3, Values: []int64{1}}); err == nil {
		t.Fatal("value/host mismatch accepted")
	}
	if _, err := NewNetwork(NetworkConfig{Topology: Topology(99), Hosts: 3}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestCustomEdgesNetwork(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Hosts:  4,
		Edges:  [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		Values: []int64{5, 15, 1, 25},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if net.Hosts() != 4 || net.Edges() != 4 {
		t.Fatalf("hosts=%d edges=%d", net.Hosts(), net.Edges())
	}
	if net.Value(3) != 25 {
		t.Fatalf("value(3) = %d", net.Value(3))
	}
	res, err := net.Query(QueryConfig{Aggregate: Max, Protocol: Wildfire})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 25 || !res.Valid {
		t.Fatalf("max = %v valid=%v, want 25/true", res.Value, res.Valid)
	}
}

func TestGeneratedTopologiesQueries(t *testing.T) {
	for _, topo := range []Topology{Random, PowerLaw, Grid, Gnutella} {
		net, err := NewNetwork(NetworkConfig{Topology: topo, Hosts: 256, Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		for _, a := range []Aggregate{Min, Max, Count, Sum, Avg} {
			res, err := net.Query(QueryConfig{Aggregate: a, Protocol: Wildfire})
			if err != nil {
				t.Fatalf("%v/%v: %v", topo, a, err)
			}
			if !res.Valid {
				t.Fatalf("%v/%v: invalid result %v (bounds %v..%v)",
					topo, a, res.Value, res.Lower, res.Upper)
			}
		}
	}
}

func TestQueryUnderChurnWildfireValid(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Topology: Gnutella, Hosts: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{25, 100} {
		res, err := net.Query(QueryConfig{Aggregate: Max, Protocol: Wildfire, Failures: r})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Valid {
			t.Fatalf("R=%d: wildfire max %v outside [%v,%v]", r, res.Value, res.Upper, res.Lower)
		}
		if res.HC > res.HU {
			t.Fatalf("R=%d: |HC|=%d > |HU|=%d", r, res.HC, res.HU)
		}
	}
}

func TestAllProtocolsRun(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Topology: Random, Hosts: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Protocol{Wildfire, SpanningTree, DAG, AllReport, RandomizedReport, Gossip} {
		res, err := net.Query(QueryConfig{Aggregate: Count, Protocol: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Messages == 0 {
			t.Fatalf("%v: no messages sent", p)
		}
		if res.Value <= 0 {
			t.Fatalf("%v: non-positive count %v", p, res.Value)
		}
	}
}

func TestExactGroundTruth(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Hosts:  3,
		Edges:  [][2]int{{0, 1}, {1, 2}},
		Values: []int64{2, 4, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[Aggregate]float64{Min: 2, Max: 6, Count: 3, Sum: 12, Avg: 4}
	for a, want := range cases {
		got, err := net.Exact(a)
		if err != nil || got != want {
			t.Fatalf("Exact(%v) = %v (err %v), want %v", a, got, err, want)
		}
	}
	if _, err := net.Exact(Aggregate(42)); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Topology: Random, Hosts: 50, Seed: 5})
	if _, err := net.Query(QueryConfig{Hq: 99}); err == nil {
		t.Fatal("out-of-range hq accepted")
	}
	if _, err := net.Query(QueryConfig{Failures: 50}); err == nil {
		t.Fatal("failing all hosts accepted")
	}
	if _, err := net.Query(QueryConfig{Aggregate: Aggregate(42)}); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
	if _, err := net.Query(QueryConfig{Protocol: Protocol(42)}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := net.Query(QueryConfig{Schedule: []Failure{{H: 999, T: 1}}}); err == nil {
		t.Fatal("out-of-range schedule host accepted")
	}
}

func TestExplicitSchedule(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Hosts:  3,
		Edges:  [][2]int{{0, 1}, {1, 2}},
		Values: []int64{1, 2, 3},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Host 1 dies immediately: host 2 unreachable, HC = {0}.
	res, err := net.Query(QueryConfig{
		Aggregate: Max,
		Protocol:  Wildfire,
		Schedule:  []Failure{{H: 1, T: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 {
		t.Fatalf("max = %v, want 1 (only hq reachable)", res.Value)
	}
	if !res.Valid || res.HC != 1 {
		t.Fatalf("valid=%v HC=%d", res.Valid, res.HC)
	}
}

func TestScheduleWithJoinGrowsHU(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Hosts:  4,
		Edges:  [][2]int{{0, 1}, {1, 2}, {2, 3}},
		Values: []int64{1, 2, 3, 4},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Host 3 is a late joiner: absent at tick 0, arriving mid-query. It
	// is in H_U (a member at some instant) but not H_C (no stable path
	// over the whole interval) — the initial host set is 3, and H_U
	// exceeds it.
	res, err := net.Query(QueryConfig{
		Aggregate: Count,
		Protocol:  AllReport,
		Schedule:  []Failure{{H: 3, T: 4, Join: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HU != 4 || res.HC != 3 {
		t.Fatalf("HU=%d HC=%d, want 4/3: a mid-query join must grow H_U past the initial set", res.HU, res.HC)
	}
	if !res.Valid {
		t.Fatalf("count %v judged invalid against [%v, %v]", res.Value, res.Lower, res.Upper)
	}
	// The querying host itself cannot be a late joiner: a query is issued
	// AT h_q at time 0.
	if _, err := net.Query(QueryConfig{
		Aggregate: Count,
		Protocol:  Wildfire,
		Schedule:  []Failure{{H: 0, T: 5, Join: true}},
	}); err == nil {
		t.Fatal("late-joiner querying host accepted")
	}
}

func TestWirelessAccountingCheaper(t *testing.T) {
	mk := func(wireless bool) int64 {
		net, err := NewNetwork(NetworkConfig{Topology: Grid, Hosts: 100, Seed: 6, Wireless: wireless})
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Query(QueryConfig{Aggregate: Count, Protocol: Wildfire})
		if err != nil {
			t.Fatal(err)
		}
		return res.Messages
	}
	if w, p := mk(true), mk(false); w >= p {
		t.Fatalf("wireless (%d msgs) not cheaper than point-to-point (%d)", w, p)
	}
}

func TestRandomizedReportDefaults(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Topology: Random, Hosts: 300, Seed: 7})
	res, err := net.Query(QueryConfig{Aggregate: Count, Protocol: RandomizedReport})
	if err != nil {
		t.Fatal(err)
	}
	// Derived p for a 300-host network is ~1, so estimate ≈ exact count.
	if res.Value < 200 || res.Value > 400 {
		t.Fatalf("randomized count = %v, want ≈ 300", res.Value)
	}
}

func TestSkipOracle(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Topology: Random, Hosts: 100, Seed: 8})
	res, err := net.Query(QueryConfig{Aggregate: Count, Protocol: Wildfire, SkipOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid || res.HC != 0 || res.HU != 0 {
		t.Fatal("oracle fields should be zero when skipped")
	}
}

func TestWildfireTimeCostIsDeadline(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Topology: Random, Hosts: 100, Seed: 9})
	dHat := net.Diameter() + 2
	res, err := net.Query(QueryConfig{Aggregate: Count, Protocol: Wildfire, DHat: dHat})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeCost != 2*dHat {
		t.Fatalf("wildfire time cost = %d, want 2D̂ = %d", res.TimeCost, 2*dHat)
	}
	// SPANNINGTREE's time cost is its actual longest chain, below 2D̂.
	res2, err := net.Query(QueryConfig{Aggregate: Count, Protocol: SpanningTree, DHat: dHat})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TimeCost >= res.TimeCost {
		t.Fatalf("spanning tree time cost %d not below wildfire's %d", res2.TimeCost, res.TimeCost)
	}
}

func TestParsers(t *testing.T) {
	if a, err := ParseAggregate("sum"); err != nil || a != Sum {
		t.Fatal("ParseAggregate failed")
	}
	if _, err := ParseAggregate("median"); err == nil {
		t.Fatal("ParseAggregate accepted junk")
	}
	if p, err := ParseProtocol("wildfire"); err != nil || p != Wildfire {
		t.Fatal("ParseProtocol failed")
	}
	if p, err := ParseProtocol("st"); err != nil || p != SpanningTree {
		t.Fatal("ParseProtocol alias failed")
	}
	if _, err := ParseProtocol("quantum"); err == nil {
		t.Fatal("ParseProtocol accepted junk")
	}
	if p, err := ParseProtocol("gossip"); err != nil || p != Gossip {
		t.Fatal("ParseProtocol gossip failed")
	}
	if Gossip.String() != "gossip" {
		t.Fatal("Gossip name wrong")
	}
	if Wildfire.String() != "wildfire" || Gnutella.String() != "gnutella" || Count.String() != "count" {
		t.Fatal("String() names wrong")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (float64, int64) {
		net, err := NewNetwork(NetworkConfig{Topology: PowerLaw, Hosts: 300, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Query(QueryConfig{Aggregate: Count, Protocol: Wildfire, Failures: 30})
		if err != nil {
			t.Fatal(err)
		}
		return res.Value, res.Messages
	}
	v1, m1 := run()
	v2, m2 := run()
	if v1 != v2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", v1, m1, v2, m2)
	}
}
