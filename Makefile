# Tier-1 verification plus the full CI gate.

GO ?= go

.PHONY: all build vet test race ci fmt fmt-check demo bench benchdiff metrics-smoke fuzz-smoke scale-smoke

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the gate: compile everything, vet, enforce gofmt, run the full
# suite under the race detector (the node runtime and transports are
# concurrent code; plain `go test` would let scheduling bugs through),
# smoke-test the built binary's metrics endpoint end to end, and give the
# wire decoders a short hostile-input fuzz pass.
ci: build vet fmt-check race scale-smoke metrics-smoke fuzz-smoke

# scale-smoke answers a short query stream over a 2,048-host in-process
# fleet and asserts the goroutine peak stays O(shards), not O(hosts) —
# the bounded gate for the host-sharded scheduler. Native (no -race): the
# fleet size is calibrated for real execution speed, and the shard
# serialization invariant is race-checked at small scale by the node
# package's property tests, which `race` already runs.
scale-smoke:
	$(GO) test ./internal/daemon -run '^TestScaleSmoke2K$$' -count=1 -v

# metrics-smoke gates the observability surface of the built binaries,
# not just the packages: act 1 boots one validityd with -metrics on and
# scrapes /metrics and /debug/queries mid-run; act 2 boots a
# three-process TCP fleet with -fleet wired and asserts the typed
# /debug/snapshot and /debug/trace endpoints, the rolled-up
# /metrics/fleet exposition, and a validitytop -once status table all
# answer off the live processes.
metrics-smoke:
	./scripts/metrics-smoke.sh

# fuzz-smoke runs each wire-decoder fuzz target for a couple of seconds:
# not a soak, just enough mutation on top of the seed corpus to catch a
# decoder that panics or over-allocates on hostile bytes before it ships.
# Longer runs: go test ./internal/wire -fuzz FuzzDecode -fuzztime 5m
fuzz-smoke:
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 2s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodePartial$$' -fuzztime 2s
	$(GO) test ./internal/protocol -run '^$$' -fuzz '^FuzzDecodeFrameBody$$' -fuzztime 2s

fmt:
	gofmt -l .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt required for:"; echo "$$out"; exit 1; \
	fi

# demo runs the multi-process WILDFIRE demo: two validityd workers plus
# one querying process shard 60 hosts over TCP on loopback and answer a
# concurrent stream of COUNT/MIN queries under per-query churn, every
# result judged against the oracle bounds of its own membership timeline;
# act two streams a continuous §4.2 query (-continuous) over its own
# fleet, one line per window against that window's own bounds. Act one
# also arms the fleet observability plane: every process exposes
# -metrics, the issuer carries -fleet, and the demo scrapes
# /metrics/fleet, prints a merged cross-process slow-query timeline,
# and renders a validitytop -once snapshot.
demo: build
	./scripts/demo-validityd.sh

# bench measures engine throughput at a fixed fleet size — one-shot
# queries/sec and continuous windows/sec — on a static network, at churn
# rate R>0 (the paper's regime), and under session churn with rebirth
# (arrivals as well as departures), plus the per-frame cost of hot-path
# instrumentation (obs_frame_ns_instrumented / _nil), and writes
# BENCH_engine.json so the perf trajectory tracks dynamism.
bench:
	BENCH_ENGINE_OUT=$(CURDIR)/BENCH_engine.json $(GO) test ./internal/daemon -run TestBenchEngine -count=1 -v

# benchdiff runs the engine benchmark and diffs it against the committed
# BENCH_engine.json, flagging throughput drops beyond BENCHDIFF_PCT
# (default 20%) so perf regressions show up in review.
benchdiff:
	./scripts/benchdiff.sh
