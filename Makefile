# Tier-1 verification plus the full CI gate.

GO ?= go

.PHONY: all build vet test race ci fmt demo

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the gate: compile everything, vet, and run the full suite under
# the race detector (the node runtime and transports are concurrent code;
# plain `go test` would let scheduling bugs through).
ci: build vet race

fmt:
	gofmt -l .

# demo runs the multi-process WILDFIRE COUNT: two validityd workers plus
# one querying process shard 60 hosts over TCP on loopback.
demo: build
	./scripts/demo-validityd.sh
