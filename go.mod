module validity

go 1.24
