// Package validity is a Go implementation of "The Price of Validity in
// Dynamic Networks" (Bawa, Gionis, Garcia-Molina, Motwani; SIGMOD 2004 /
// JCSS 2007): aggregate query processing over large, churning networks
// with Single-Site Validity guarantees.
//
// The package lets you build a (simulated) dynamic network, issue
// aggregate queries (min, max, count, sum, avg) through any of the
// paper's protocols, subject the network to churn, and check the result
// against the oracle's H_C/H_U validity bounds:
//
//	net, _ := validity.NewNetwork(validity.NetworkConfig{
//		Topology: validity.Gnutella,
//		Hosts:    10_000,
//		Seed:     1,
//	})
//	res, _ := net.Query(validity.QueryConfig{
//		Aggregate: validity.Count,
//		Protocol:  validity.Wildfire,
//		Failures:  500, // hosts leaving during the query
//	})
//	fmt.Println(res.Value, res.Valid, res.Messages)
//
// WILDFIRE returns valid answers even under heavy churn; the best-effort
// baselines (SpanningTree, DAG) are cheaper but may return answers
// arbitrarily far below the validity bounds (Theorem 4.4). The package
// exposes both so the price of validity can be measured directly.
package validity

import (
	"fmt"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/oracle"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

// Aggregate selects the query: Min, Max, Count, Sum or Avg.
type Aggregate int

// Aggregates.
const (
	Min Aggregate = iota
	Max
	Count
	Sum
	Avg
)

func (a Aggregate) kind() (agg.Kind, error) {
	switch a {
	case Min:
		return agg.Min, nil
	case Max:
		return agg.Max, nil
	case Count:
		return agg.Count, nil
	case Sum:
		return agg.Sum, nil
	case Avg:
		return agg.Avg, nil
	}
	return 0, fmt.Errorf("validity: unknown aggregate %d", int(a))
}

// String returns the aggregate's name.
func (a Aggregate) String() string {
	k, err := a.kind()
	if err != nil {
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
	return k.String()
}

// ParseAggregate converts "min", "max", "count", "sum", "avg" to an
// Aggregate.
func ParseAggregate(s string) (Aggregate, error) {
	k, err := agg.ParseKind(s)
	if err != nil {
		return 0, err
	}
	return Aggregate(k), nil
}

// Protocol selects the query-processing scheme.
type Protocol int

// Protocols.
const (
	// Wildfire is the paper's validity-guaranteeing protocol (§5).
	Wildfire Protocol = iota
	// SpanningTree is the TAG-style best-effort baseline (§4.4).
	SpanningTree
	// DAG is the multi-parent best-effort baseline (§4.4); configure the
	// parent count with QueryConfig.DAGParents (default 2).
	DAG
	// AllReport is direct delivery (Fig. 2).
	AllReport
	// RandomizedReport samples reporters to estimate network size (§4.3).
	RandomizedReport
	// Gossip is the push-sum epidemic baseline of §2.2 (eventual
	// consistency, no per-answer validity); supports count/sum/avg.
	// Configure rounds with QueryConfig.GossipRounds (default 8·D̂).
	Gossip
)

// String returns the protocol's name.
func (p Protocol) String() string {
	switch p {
	case Wildfire:
		return "wildfire"
	case SpanningTree:
		return "spanningtree"
	case DAG:
		return "dag"
	case AllReport:
		return "allreport"
	case RandomizedReport:
		return "randomizedreport"
	case Gossip:
		return "gossip"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ParseProtocol converts a protocol name to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "wildfire":
		return Wildfire, nil
	case "spanningtree", "st":
		return SpanningTree, nil
	case "dag":
		return DAG, nil
	case "allreport":
		return AllReport, nil
	case "randomizedreport", "randomized":
		return RandomizedReport, nil
	case "gossip":
		return Gossip, nil
	}
	return 0, fmt.Errorf("validity: unknown protocol %q", s)
}

// Topology selects the network shape (§6.1).
type Topology int

// Topologies.
const (
	// Random is a uniform random graph with average degree 5.
	Random Topology = iota
	// PowerLaw has a power-law degree tail (γ ≈ 2.9).
	PowerLaw
	// Grid is a sensor field with 8-neighborhoods.
	Grid
	// Gnutella is a synthetic Gnutella-2001-like overlay.
	Gnutella
)

func (t Topology) kind() (topology.Kind, error) {
	switch t {
	case Random:
		return topology.Random, nil
	case PowerLaw:
		return topology.PowerLaw, nil
	case Grid:
		return topology.Grid, nil
	case Gnutella:
		return topology.Gnutella, nil
	}
	return 0, fmt.Errorf("validity: unknown topology %d", int(t))
}

// String returns the topology's name.
func (t Topology) String() string {
	k, err := t.kind()
	if err != nil {
		return fmt.Sprintf("Topology(%d)", int(t))
	}
	return k.String()
}

// NetworkConfig configures a simulated dynamic network.
type NetworkConfig struct {
	// Topology selects a generator; ignored when Edges is set.
	Topology Topology
	// Hosts is the network size |H| (Grid rounds down to a square).
	Hosts int
	// Edges, when non-nil, supplies a custom topology as an edge list
	// over hosts 0..Hosts-1 and overrides Topology.
	Edges [][2]int
	// Values are per-host attribute values; when nil they are drawn from
	// the paper's Zipf[10,500] distribution.
	Values []int64
	// Wireless enables sensor-radio accounting: one send-to-all-neighbors
	// costs one message (§5.3).
	Wireless bool
	// Seed makes topology, values and protocol randomness reproducible.
	Seed int64
}

// Network is an immutable topology plus attribute values from which many
// independent queries can be run.
type Network struct {
	g        *graph.Graph
	values   []int64
	wireless bool
	seed     int64
	diameter int
}

// NewNetwork builds a network from cfg.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Hosts < 1 {
		return nil, fmt.Errorf("validity: need at least one host, got %d", cfg.Hosts)
	}
	var g *graph.Graph
	if cfg.Edges != nil {
		g = graph.New(cfg.Hosts)
		for _, e := range cfg.Edges {
			if e[0] < 0 || e[0] >= cfg.Hosts || e[1] < 0 || e[1] >= cfg.Hosts {
				return nil, fmt.Errorf("validity: edge %v outside 0..%d", e, cfg.Hosts-1)
			}
			g.AddEdge(graph.HostID(e[0]), graph.HostID(e[1]))
		}
		g.SortAdjacency()
	} else {
		k, err := cfg.Topology.kind()
		if err != nil {
			return nil, err
		}
		g = topology.Generate(k, cfg.Hosts, cfg.Seed)
	}
	values := cfg.Values
	if values == nil {
		values = zipfval.Default(cfg.Seed).Values(g.Len())
	}
	if len(values) != g.Len() {
		return nil, fmt.Errorf("validity: %d values for %d hosts", len(values), g.Len())
	}
	return &Network{
		g:        g,
		values:   values,
		wireless: cfg.Wireless,
		seed:     cfg.Seed,
		diameter: g.DiameterSampled(2, nil),
	}, nil
}

// Hosts returns |H|.
func (n *Network) Hosts() int { return n.g.Len() }

// Edges returns |E|.
func (n *Network) Edges() int { return n.g.NumEdges() }

// Diameter returns the (sampled) diameter of the topology.
func (n *Network) Diameter() int { return n.diameter }

// Value returns host h's attribute value.
func (n *Network) Value(h int) int64 { return n.values[h] }

// Exact evaluates the aggregate exactly over all hosts' values — the
// failure-free ground truth.
func (n *Network) Exact(a Aggregate) (float64, error) {
	k, err := a.kind()
	if err != nil {
		return 0, err
	}
	return agg.Exact(k, n.values), nil
}

// QueryConfig configures one query run.
type QueryConfig struct {
	// Aggregate is the query (default Min = 0; set explicitly).
	Aggregate Aggregate
	// Protocol is the processing scheme (default Wildfire = 0).
	Protocol Protocol
	// Hq is the querying host (default 0).
	Hq int
	// DHat overestimates the stable diameter; 0 means diameter + 2.
	DHat int
	// Failures removes that many random hosts (never Hq) at a uniform
	// rate during the query interval (§6.2).
	Failures int
	// Schedule supplies explicit failures and overrides Failures.
	Schedule []Failure
	// DAGParents is k for Protocol == DAG (default 2).
	DAGParents int
	// SketchVectors is the FM repetition count c (default 8).
	SketchVectors int
	// ReportProbability is p for RandomizedReport; 0 derives it from
	// Epsilon/Zeta, which in turn default to 0.1/0.05.
	ReportProbability float64
	// GossipRounds is the round budget for Protocol == Gossip
	// (default 8·D̂, comfortably past push-sum's O(log n) convergence).
	GossipRounds int
	// Epsilon and Zeta parameterize Approximate Single-Site Validity for
	// RandomizedReport.
	Epsilon, Zeta float64
	// Seed overrides the network seed for this run's randomness.
	Seed int64
	// SkipOracle disables bound computation (large runs).
	SkipOracle bool
}

// Failure schedules a membership event for host H at virtual time T: a
// departure by default, an arrival when Join is set. A host whose first
// event is a join is a late joiner — absent from the network until it
// arrives, counted in H_U from then on (so H_U can exceed the initial
// host set); a join after a departure is the same host returning for
// another session.
type Failure struct {
	H    int
	T    int64
	Join bool
}

// Result is one query run's outcome.
type Result struct {
	// Value is the result declared at h_q.
	Value float64
	// Lower and Upper are the oracle's q(H_C) and q(H_U) bounds
	// (zero-valued when SkipOracle).
	Lower, Upper float64
	// HC and HU are the bound set sizes.
	HC, HU int
	// Valid reports whether Value lies within the Single-Site Validity
	// bounds (exactly for min/max; within the FM factor for sketches).
	Valid bool
	// Messages is the communication cost (§6.3).
	Messages int64
	// MaxComputation is the computation cost (§6.3).
	MaxComputation int64
	// TimeCost is the protocol's time cost: the longest causal message
	// chain, except for Wildfire which always runs to its 2D̂δ deadline
	// (§6.6.2).
	TimeCost int
	// PerTickMessages is the Fig. 13b trace.
	PerTickMessages []int64
	// Protocol and Aggregate echo the configuration.
	Protocol  Protocol
	Aggregate Aggregate
}

// Query runs one aggregate query on a fresh simulation of the network.
func (n *Network) Query(cfg QueryConfig) (*Result, error) {
	kind, err := cfg.Aggregate.kind()
	if err != nil {
		return nil, err
	}
	if cfg.Hq < 0 || cfg.Hq >= n.g.Len() {
		return nil, fmt.Errorf("validity: querying host %d outside network", cfg.Hq)
	}
	dHat := cfg.DHat
	if dHat == 0 {
		dHat = n.diameter + 2
	}
	vectors := cfg.SketchVectors
	if vectors == 0 {
		vectors = agg.DefaultParams().Vectors
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = n.seed + 1
	}
	q := protocol.Query{
		Kind:   kind,
		Hq:     graph.HostID(cfg.Hq),
		DHat:   dHat,
		Params: agg.Params{Vectors: vectors, Bits: agg.DefaultParams().Bits},
	}

	var p protocol.Protocol
	switch cfg.Protocol {
	case Wildfire:
		p = protocol.NewWildfire(q)
	case SpanningTree:
		p = protocol.NewSpanningTree(q)
	case DAG:
		k := cfg.DAGParents
		if k == 0 {
			k = 2
		}
		p = protocol.NewDAG(q, k)
	case AllReport:
		p = protocol.NewAllReport(q)
	case RandomizedReport:
		prob := cfg.ReportProbability
		if prob == 0 {
			eps, zeta := cfg.Epsilon, cfg.Zeta
			if eps == 0 {
				eps = 0.1
			}
			if zeta == 0 {
				zeta = 0.05
			}
			prob = protocol.ReportProbability(eps, zeta, n.g.Len())
		}
		p = protocol.NewRandomizedReport(q, prob)
	case Gossip:
		rounds := cfg.GossipRounds
		if rounds == 0 {
			rounds = 8 * dHat
		}
		p = protocol.NewGossip(q, rounds)
	default:
		return nil, fmt.Errorf("validity: unknown protocol %d", int(cfg.Protocol))
	}

	medium := sim.MediumPointToPoint
	if n.wireless {
		medium = sim.MediumWireless
	}
	nw := sim.NewNetwork(sim.Config{Graph: n.g, Medium: medium, Seed: seed, Values: n.values})

	var sched churn.Timeline
	switch {
	case cfg.Schedule != nil:
		for _, f := range cfg.Schedule {
			if f.H < 0 || f.H >= n.g.Len() {
				return nil, fmt.Errorf("validity: failure host %d outside network", f.H)
			}
			sched = append(sched, eventOf(f))
		}
	case cfg.Failures > 0:
		if cfg.Failures >= n.g.Len() {
			return nil, fmt.Errorf("validity: cannot fail %d of %d hosts", cfg.Failures, n.g.Len())
		}
		// The same membership Source the live engine derives per-query
		// schedules from; here the event loop consumes it directly.
		src := churn.Uniform{N: n.g.Len(), Remove: cfg.Failures}
		sched = src.Schedule(seed, q.Hq, q.Deadline())
	}
	if !sched.Index().InitialMember(q.Hq) {
		// A query is issued AT h_q at time 0; a host that has not arrived
		// yet cannot issue it (the continuous and stream paths reject the
		// same misconfiguration).
		return nil, fmt.Errorf("validity: querying host %d scheduled as a late joiner; it must be present when the query is issued", q.Hq)
	}
	sched.Apply(nw)

	v, stats, err := protocol.Run(p, nw)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Value:           v,
		Messages:        stats.MessagesSent,
		MaxComputation:  stats.MaxComputation(),
		TimeCost:        stats.TimeCost,
		PerTickMessages: append([]int64(nil), stats.PerTickSent...),
		Protocol:        cfg.Protocol,
		Aggregate:       cfg.Aggregate,
	}
	if cfg.Protocol == Wildfire {
		// §6.6.2: WILDFIRE declares at t0 + 2D̂δ regardless of traffic.
		res.TimeCost = int(q.Deadline())
	}
	if !cfg.SkipOracle {
		b := oracle.Compute(n.g, n.values, q.Hq, sched, q.Deadline(), kind)
		res.Lower, res.Upper = b.LowerValue, b.UpperValue
		res.HC, res.HU = len(b.HC), len(b.HU)
		if kind.DuplicateSensitive() && cfg.Protocol != AllReport && cfg.Protocol != SpanningTree && cfg.Protocol != Gossip {
			// FM estimates: validity within the Theorem 5.2 factor.
			res.Valid = b.ValidFactor(v, fmFactor(vectors))
		} else {
			res.Valid = b.Valid(v, 1e-9)
		}
	}
	return res, nil
}

// eventOf converts a public Failure spec to a membership-layer event.
func eventOf(f Failure) churn.Event {
	kind := churn.Leave
	if f.Join {
		kind = churn.Join
	}
	return churn.Event{H: graph.HostID(f.H), T: sim.Time(f.T), Kind: kind}
}

// fmFactor is the slack applied when judging FM-estimated results against
// the oracle bounds: Theorem 5.2 gives a factor-c guarantee w.p. 1−2/c;
// in practice estimates concentrate much tighter, so use a band that is
// generous but still catches protocol bugs.
func fmFactor(vectors int) float64 {
	if vectors >= 16 {
		return 4
	}
	return 6
}
