// Command netsim runs a single aggregate query on a simulated dynamic
// network and reports the result together with the oracle's Single-Site
// Validity bounds and the §6.3 cost measures:
//
//	netsim -topology gnutella -hosts 10000 -agg count -protocol wildfire -failures 500
//	netsim -topology grid -hosts 10000 -wireless -agg min -protocol spanningtree
package main

import (
	"flag"
	"fmt"
	"os"

	"validity"
	"validity/internal/graph"
	"validity/internal/obs"
	"validity/internal/topology"
)

func main() {
	var (
		topo     = flag.String("topology", "random", "random | power-law | grid | gnutella")
		topoFile = flag.String("topology-file", "", "load topology from an edge-list file instead of generating")
		hosts    = flag.Int("hosts", 1000, "network size |H|")
		aggName  = flag.String("agg", "count", "min | max | count | sum | avg")
		proto    = flag.String("protocol", "wildfire", "wildfire | spanningtree | dag | allreport | randomizedreport")
		parents  = flag.Int("parents", 2, "parents per host for -protocol dag")
		failures = flag.Int("failures", 0, "hosts leaving during the query (§6.2 churn)")
		dHat     = flag.Int("dhat", 0, "stable-diameter overestimate D̂ (0 = diameter+2)")
		wireless = flag.Bool("wireless", false, "sensor-radio message accounting (§5.3)")
		seed     = flag.Int64("seed", 1, "random seed")
		vectors  = flag.Int("c", 8, "FM sketch repetitions for count/sum/avg")
		logLevel = flag.String("log-level", "info", "diagnostic log level on stderr: debug | info | warn | error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	fail := func(err error) {
		logger.Error("netsim failed", "err", err)
		os.Exit(1)
	}

	var edges [][2]int
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			fail(err)
		}
		g, err := topology.LoadEdgeList(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		*hosts = g.Len()
		g.Edges(func(a, b graph.HostID) bool {
			edges = append(edges, [2]int{int(a), int(b)})
			return true
		})
	}

	var topoKind validity.Topology
	switch *topo {
	case "random":
		topoKind = validity.Random
	case "power-law", "powerlaw":
		topoKind = validity.PowerLaw
	case "grid":
		topoKind = validity.Grid
	case "gnutella":
		topoKind = validity.Gnutella
	default:
		fail(fmt.Errorf("unknown topology %q", *topo))
	}
	aggKind, err := validity.ParseAggregate(*aggName)
	if err != nil {
		fail(err)
	}
	logger.Debug("running query", "topology", *topo, "hosts", *hosts,
		"agg", *aggName, "protocol", *proto, "failures", *failures)
	protoKind, err := validity.ParseProtocol(*proto)
	if err != nil {
		fail(err)
	}

	net, err := validity.NewNetwork(validity.NetworkConfig{
		Topology: topoKind,
		Hosts:    *hosts,
		Edges:    edges,
		Wireless: *wireless,
		Seed:     *seed,
	})
	if err != nil {
		fail(err)
	}
	exact, err := net.Exact(aggKind)
	if err != nil {
		fail(err)
	}

	res, err := net.Query(validity.QueryConfig{
		Aggregate:     aggKind,
		Protocol:      protoKind,
		DAGParents:    *parents,
		Failures:      *failures,
		DHat:          *dHat,
		SketchVectors: *vectors,
		Seed:          *seed,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("network     %s |H|=%d |E|=%d diameter=%d\n", topoKind, net.Hosts(), net.Edges(), net.Diameter())
	fmt.Printf("query       %s via %s, %d departures\n", aggKind, protoKind, *failures)
	fmt.Printf("result      %.2f (failure-free exact: %.2f)\n", res.Value, exact)
	fmt.Printf("oracle      q(H_C)=%.2f  q(H_U)=%.2f  |H_C|=%d |H_U|=%d\n", res.Lower, res.Upper, res.HC, res.HU)
	fmt.Printf("valid       %v (Single-Site Validity)\n", res.Valid)
	fmt.Printf("costs       messages=%d  max-computation=%d  time=%dδ\n",
		res.Messages, res.MaxComputation, res.TimeCost)
}
