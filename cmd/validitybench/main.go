// Command validitybench regenerates the tables and figures of the paper's
// evaluation (§6). Each figure is an experiment ID; run one, several, or
// all of them:
//
//	validitybench -list
//	validitybench -fig fig7 -scale 0.1
//	validitybench -all -scale 1 -trials 10 > results.txt
//
// Scale 1 reproduces the paper's workload sizes (|H| = 39,046 Gnutella,
// 40K synthetic topologies, 100×100 grids); smaller scales shrink the
// networks proportionally while preserving every qualitative shape the
// paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"validity/internal/experiment"
	"validity/internal/obs"
)

func main() {
	var (
		fig      = flag.String("fig", "", "experiment ID to run (see -list); comma-separated for several")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		scale    = flag.Float64("scale", 0.1, "workload scale relative to the paper (1 = full size)")
		trials   = flag.Int("trials", 0, "trials per data point (0 = paper's 10)")
		seed     = flag.Int64("seed", 1, "random seed")
		verbose  = flag.Bool("v", false, "print progress while running")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		logLevel = flag.String("log-level", "info", "diagnostic log level on stderr: debug | info | warn | error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validitybench:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiment.IDs()
	case *fig != "":
		ids = strings.Split(*fig, ",")
	default:
		logger.Error("pass -fig <id> or -all (see -list)")
		os.Exit(2)
	}

	opt := experiment.Options{Scale: *scale, Trials: *trials, Seed: *seed}
	if *verbose {
		opt.Progress = os.Stderr
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, err := experiment.Lookup(id)
		if err != nil {
			logger.Error("unknown experiment", "err", err)
			os.Exit(2)
		}
		logger.Debug("running experiment", "id", id, "scale", *scale)
		table, err := run(opt)
		if err != nil {
			logger.Error("experiment failed", "id", id, "err", err)
			os.Exit(1)
		}
		if *asCSV {
			if err := table.WriteCSV(os.Stdout); err != nil {
				logger.Error("experiment failed", "id", id, "err", err)
				os.Exit(1)
			}
			continue
		}
		table.Render(os.Stdout)
	}
}
