// Command validityd serves a shard of a dynamic network's hosts and
// answers aggregate queries with Single-Site Validity — the paper's
// protocols on real sockets instead of the simulator.
//
// Every process is handed the same topology (generator + seed, or an
// edge-list file) and the same host→address map, and serves a disjoint
// host range. The process serving h_q issues a WILDFIRE query, waits out
// the 2D̂δ deadline in wall clock, and reports the declared result next to
// the oracle's q(H_C)/q(H_U) bounds.
//
// A three-process COUNT over 60 hosts on loopback:
//
//	validityd -transport tcp -topology random -hosts 60 -seed 23 \
//	    -peers "0-19=127.0.0.1:7101,20-39=127.0.0.1:7102,40-59=127.0.0.1:7103" \
//	    -serve 20-39 &
//	validityd -transport tcp ... -serve 40-59 &
//	validityd -transport tcp ... -serve 0-19 -query -hq 0
//
// The same query fully in process (channel transport, no sockets):
//
//	validityd -transport chan -topology random -hosts 60 -seed 23 -query -hq 0
package main

import (
	"fmt"
	"os"

	"validity/internal/daemon"
)

func main() {
	cfg, err := daemon.ParseArgs("validityd", os.Args[1:])
	if err != nil {
		os.Exit(2) // flag package already printed the message
	}
	if err := daemon.Run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "validityd:", err)
		os.Exit(1)
	}
}
