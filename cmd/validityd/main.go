// Command validityd serves a shard of a dynamic network's hosts and
// answers streams of aggregate queries with Single-Site Validity — the
// paper's protocols on real sockets instead of the simulator, multiplexed
// by the node engine so one long-running fleet answers many concurrent
// queries without restarting.
//
// Every process is handed the same topology (generator + seed, or an
// edge-list file) and the same host→address map, and serves a disjoint
// host range. Workers serve indefinitely; the -query process issues
// -queries N queries (up to -concurrency K in flight), each with its own
// QueryID, protocol instance, query clock, and §6.3 cost accounting.
// Query i's aggregate and querying host cycle through the comma-separated
// -agg and -hq lists, so every process derives the identical spec from
// the shared flags and lazily instantiates handlers on first contact with
// a query's frames. Each result is reported next to the oracle's
// q(H_C)/q(H_U) bounds, then a throughput summary closes the stream.
//
// Dynamism — the paper's defining condition — is per query and needs no
// coordination: every process derives each query's membership timeline —
// departures AND joins — from the shared seed and the query id alone,
// enforces it on the hosts it serves (a host is dead *for a query* once
// that query's timeline says so, while still answering every other
// query, and comes back when a join tick fires), and the issuing process
// judges each result against the oracle bounds of that query's own
// timeline — H_U exceeds the initial host set when hosts arrive
// mid-query. Two flags control it, with all times in ticks of δ on each
// query's own clock:
//
//	-kill host@tick,+host@tick           explicit departures (§3.2) and
//	                                     joins ("+": absent until arrival)
//	-churn rate=R[,window=W]             R hosts leave uniformly over [0,W]
//	                                     (window defaults to the deadline)
//	-churn model=sessions,mean=M[,join=D][,window=W]
//	                                     exponential lifetimes, mean M ticks;
//	                                     join=D rebirths departed hosts after
//	                                     exp downtimes of mean D ticks
//	-churn model=burst,hosts=A-B,at=T    hosts A..B leave together at tick T
//	-churn trace=FILE                    recorded host,tick[,event] CSV
//
// Eight overlapping COUNT/MIN queries over a three-process 60-host fleet
// on loopback, six distinct hosts churning out of each query's timeline:
//
//	validityd -transport tcp -topology random -hosts 60 -seed 23 \
//	    -peers "0-19=127.0.0.1:7101,20-39=127.0.0.1:7102,40-59=127.0.0.1:7103" \
//	    -agg count,min -hq 0,7 -churn rate=6,window=12 -serve 20-39 &
//	validityd -transport tcp ... -serve 40-59 &
//	validityd -transport tcp ... -serve 0-19 -query -queries 8 -concurrency 2
//
// The same stream fully in process (channel transport, no sockets):
//
//	validityd -transport chan -topology random -hosts 60 -seed 23 \
//	    -agg count,min -hq 0,7 -churn rate=6 -query -queries 8 -concurrency 2
//
// On a tcp fleet, reads do not sleep out the worst case: -quiesce
// (default on) arms the cross-process quiescence plane, in which worker
// processes announce per-query silence — one small control frame after a
// broadcast sweep without local activity, epoch-superseded if activity
// resumes — to the query's issuing process, whose adaptive read then
// returns at true global quiescence instead of the full 2·D̂δ floor. The
// protocol deadline stays as the hard cap either way, so -quiesce=false
// only restores the old latency, never different answers.
//
// Execution is host-sharded: the served hosts are partitioned across a
// fixed pool of worker goroutines (-shards N, default one per CPU), each
// draining a bounded queue, so a process carries thousands of hosts at
// O(shards) goroutines while per-host callbacks stay serialized and
// ordered. -max-live-queries caps concurrently live queries (issued or
// arriving as first-contact frames); past the cap, instantiation is
// rejected with a counted, retryable error instead of growing state.
//
// Observability: every process carries a metrics registry and a per-query
// event tracer; -metrics ADDR exposes them over HTTP — Prometheus text
// exposition on /metrics (engine demux/drop counters, §6.3 sends and
// bytes, per-peer transport traffic, query latency histograms,
// build_info and process uptime), a JSON snapshot of live and retired
// queries on /debug/queries, typed JSON dumps of the whole registry on
// /debug/snapshot and of one query's trace ring on /debug/trace?q=ID,
// and the standard pprof handlers under /debug/pprof/. Port 0 picks a
// free port; the bound address is logged. Machine-parsed result lines
// stay on stdout; diagnostics go to stderr as leveled slog lines
// filtered by -log-level (debug | info | warn | error). A query whose
// issue→answer latency exceeds -slow-query (default 1.5× its 2·D̂δ
// deadline) dumps its trace ring — issue, first traffic, churn
// transitions, drops, answer — at warn level.
//
// -fleet "name=host:port,..." names every process's metrics address and
// arms the cross-process plane on the process that carries it:
// /metrics/fleet scrapes every peer's /debug/snapshot concurrently
// (bounded timeout, per-peer failure tolerance — a dead peer becomes
// fleet_peer_up{proc="..."} 0, never an error) and serves one rolled-up
// exposition — counters summed across the fleet, gauges per-process
// under a proc label, histograms bucket-merged so fleet quantiles are
// real — and slow-query dumps pull every peer's trace ring and print
// one causally-ordered timeline (query tick, then frame chain depth,
// then wall time), each event annotated with its origin process.
// cmd/validitytop renders the same fleet as a live terminal status
// table (-once for a single snapshot):
//
//	validityd -transport chan -hosts 60 -query -queries 8 \
//	    -metrics 127.0.0.1:7190 -fleet "issuer=127.0.0.1:7190" \
//	    -log-level debug
//	curl -s http://127.0.0.1:7190/metrics
//	curl -s http://127.0.0.1:7190/metrics/fleet
//	curl -s http://127.0.0.1:7190/debug/queries
//	curl -s http://127.0.0.1:7190/debug/snapshot
//	curl -s "http://127.0.0.1:7190/debug/trace?q=1"
//	validitytop -fleet "issuer=127.0.0.1:7190" -once
package main

import (
	"log/slog"
	"os"

	"validity/internal/daemon"
	"validity/internal/obs"
)

func main() {
	cfg, err := daemon.ParseArgs("validityd", os.Args[1:])
	if err != nil {
		os.Exit(2) // flag package already printed the message
	}
	if err := daemon.Run(cfg); err != nil {
		// Run validates -log-level itself; fall back to info if it was the
		// invalid flag.
		level, lerr := obs.ParseLevel(cfg.LogLevel)
		if lerr != nil {
			level = slog.LevelInfo
		}
		obs.NewLogger(os.Stderr, level).Error("validityd failed", "err", err)
		os.Exit(1)
	}
}
