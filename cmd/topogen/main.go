// Command topogen generates one of the paper's network topologies (§6.1)
// and prints structural statistics, or dumps the edge list for external
// tools:
//
//	topogen -topology gnutella -hosts 39046
//	topogen -topology grid -hosts 10000 -edges > grid.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"validity/internal/graph"
	"validity/internal/obs"
	"validity/internal/topology"
)

func main() {
	var (
		topo     = flag.String("topology", "random", "random | power-law | grid | gnutella")
		hosts    = flag.Int("hosts", 1000, "network size |H|")
		seed     = flag.Int64("seed", 1, "random seed")
		edges    = flag.Bool("edges", false, "dump the edge list instead of statistics")
		logLevel = flag.String("log-level", "info", "diagnostic log level on stderr: debug | info | warn | error")
	)
	flag.Parse()

	level, lerr := obs.ParseLevel(*logLevel)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "topogen:", lerr)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	kind, err := topology.ParseKind(*topo)
	if err != nil {
		logger.Error("topogen failed", "err", err)
		os.Exit(2)
	}
	g := topology.Generate(kind, *hosts, *seed)

	if *edges {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		g.Edges(func(a, b graph.HostID) bool {
			fmt.Fprintf(w, "%d %d\n", a, b)
			return true
		})
		return
	}

	fmt.Printf("topology    %s (seed %d)\n", kind, *seed)
	fmt.Printf("hosts       %d\n", g.Len())
	fmt.Printf("edges       %d\n", g.NumEdges())
	fmt.Printf("avg degree  %.2f\n", g.AvgDegree())
	fmt.Printf("max degree  %d\n", g.MaxDegree())
	fmt.Printf("diameter    %d (double-sweep lower bound)\n", g.DiameterSampled(3, nil))
	fmt.Printf("connected   %v\n", g.IsConnected(nil))

	hist := g.DegreeHistogram()
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	fmt.Println("degree histogram (degree: hosts):")
	shown := 0
	for _, d := range degrees {
		fmt.Printf("  %4d: %d\n", d, hist[d])
		shown++
		if shown >= 12 && len(degrees) > 14 {
			fmt.Printf("  ... and %d more degrees up to %d\n", len(degrees)-shown, degrees[len(degrees)-1])
			break
		}
	}
}
