// Command validitytop is a live terminal status view of a validityd
// fleet: it scrapes every process's /debug/snapshot endpoint (the typed
// twin of /metrics) each refresh interval and renders one table row per
// process — liveness, goroutines, heap in use, shard-queue backlog, live
// and rejected queries, §6.3 sends and bytes, dropped frames, uptime —
// plus a fleet summary line with the bucket-merged query-latency tail
// (p50/p95/p99 of the real fleet-wide distribution, not an average of
// per-process quantiles) and drop counts by reason.
//
// Point it at the same addresses the fleet's -metrics flags bound:
//
//	validitytop -fleet "127.0.0.1:7191,127.0.0.1:7192,127.0.0.1:7193"
//	validitytop -fleet "issuer=127.0.0.1:7191,w1=127.0.0.1:7192" -interval 1s
//	validitytop -fleet "$FLEET" -once          # one snapshot, no screen control
//
// A peer that is down shows as DOWN in its row and degrades only its own
// columns; the scrape itself never fails. -once prints a single plain
// snapshot (no ANSI clearing), the form scripts and smoke tests consume.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"validity/internal/obs/fleet"
)

func main() {
	var (
		fleetSpec = flag.String("fleet", "", "fleet -metrics addresses (host:port or name=host:port, comma-separated)")
		interval  = flag.Duration("interval", 2*time.Second, "refresh interval")
		timeout   = flag.Duration("timeout", 0, "per-round scrape timeout (0 = collector default)")
		once      = flag.Bool("once", false, "print one snapshot and exit (no screen control)")
	)
	flag.Parse()
	if *fleetSpec == "" {
		fmt.Fprintln(os.Stderr, "validitytop: -fleet is required (the fleet's -metrics addresses)")
		os.Exit(2)
	}
	srcs, err := fleet.ParseSources(*fleetSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validitytop:", err)
		os.Exit(2)
	}
	coll := &fleet.Collector{Sources: srcs, Timeout: *timeout}

	if *once {
		render(os.Stdout, coll, false)
		return
	}
	for {
		render(os.Stdout, coll, true)
		time.Sleep(*interval)
	}
}

// render scrapes one round and prints the status view; clear prefixes
// the ANSI home+erase sequence for the live refresh loop.
func render(w *os.File, coll *fleet.Collector, clear bool) {
	peers := coll.Registries(context.Background())
	var b strings.Builder
	if clear {
		b.WriteString("\x1b[H\x1b[2J")
	}
	fmt.Fprintf(&b, "validitytop  %s  peers=%d\n\n", time.Now().Format("15:04:05"), len(peers))
	fmt.Fprintf(&b, "%-20s %-5s %8s %10s %7s %6s %6s %10s %10s %7s %7s %9s\n",
		"PROC", "UP", "GOROUT", "HEAP", "SHARDQ", "LIVE", "REJ", "SENT", "BYTES", "DROPS", "QUIESCE", "UPTIME")
	for _, p := range peers {
		if p.Err != nil {
			fmt.Fprintf(&b, "%-20s %-5s %s\n", clip(p.Proc, 20), "DOWN", p.Err.Error())
			continue
		}
		snap := p.Snap
		goroutines, _ := fleet.GaugeValue(snap, "process_goroutines")
		heap, _ := fleet.GaugeValue(snap, "process_heap_inuse_bytes")
		shardq, _ := fleet.GaugeValue(snap, "node_shard_queue_depth_total")
		live, _ := fleet.GaugeValue(snap, "node_queries_live")
		uptime, _ := fleet.GaugeValue(snap, "process_uptime_seconds")
		var drops int64
		for _, n := range fleet.CounterByLabel(snap, "node_frames_dropped_total", "reason") {
			drops += n
		}
		// QUIESCE: control frames this process put on (sent, workers) or
		// took off (received, the issuer) the quiescence plane.
		quiesce := fleet.CounterTotal(snap, "node_quiesce_frames_sent_total") +
			fleet.CounterTotal(snap, "node_quiesce_frames_received_total")
		fmt.Fprintf(&b, "%-20s %-5s %8d %10s %7d %6d %6d %10d %10s %7d %7d %9s\n",
			clip(p.Proc, 20), "up",
			int64(goroutines), sizeStr(heap), int64(shardq), int64(live),
			fleet.CounterTotal(snap, "engine_queries_rejected_total"),
			fleet.CounterTotal(snap, "node_messages_sent_total"),
			sizeStr(float64(fleet.CounterTotal(snap, "node_bytes_sent_total"))),
			drops, quiesce,
			(time.Duration(uptime) * time.Second).String())
	}

	// Fleet summary: the latency tail off the bucket-merged histogram —
	// real fleet quantiles — and drop totals by reason across processes.
	b.WriteByte('\n')
	var early, deadline int64
	for _, p := range peers {
		if p.Err != nil {
			continue
		}
		early += fleet.CounterTotal(p.Snap, "node_early_reads_total")
		deadline += fleet.CounterTotal(p.Snap, "node_deadline_reads_total")
	}
	if h, ok := fleet.MergeHistograms(peers, "daemon_query_latency_ms"); ok && h.Count > 0 {
		fmt.Fprintf(&b, "fleet: queries=%d  lat p50=%.1fms p95=%.1fms p99=%.1fms  reads early=%d deadline=%d\n",
			h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), early, deadline)
	} else {
		fmt.Fprintln(&b, "fleet: no query latency observations yet")
	}
	dropTotals := make(map[string]int64)
	for _, p := range peers {
		if p.Err != nil {
			continue
		}
		for reason, n := range fleet.CounterByLabel(p.Snap, "node_frames_dropped_total", "reason") {
			dropTotals[reason] += n
		}
	}
	if len(dropTotals) > 0 {
		reasons := make([]string, 0, len(dropTotals))
		for r := range dropTotals {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		parts := make([]string, 0, len(reasons))
		for _, r := range reasons {
			parts = append(parts, fmt.Sprintf("%s=%d", r, dropTotals[r]))
		}
		fmt.Fprintf(&b, "drops: %s\n", strings.Join(parts, " "))
	}
	w.WriteString(b.String())
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// sizeStr renders a byte count with a binary unit, one decimal.
func sizeStr(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	}
	return fmt.Sprintf("%dB", int64(v))
}
