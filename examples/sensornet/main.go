// Sensornet: the paper's motivating scenario (§1, Fig. 1) — a sensor grid
// where a user wants network-wide aggregates while sensors die.
//
// A 50×50 sensor field reports temperatures. Sensors communicate over a
// broadcast radio (one transmission reaches all neighbors, §5.3). We run
// min, max, avg and count queries under battery failures and show how the
// answers relate to the oracle's validity bounds, reproducing the §1
// puzzle: "Failure of sensors A and B after Broadcast leads to counts of
// 15 and 6 — which of these is correct and why?" Single-Site Validity is
// the answer to that question.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"validity"
)

func main() {
	const side = 50
	// Synthetic temperature field: a warm band across the middle.
	rng := rand.New(rand.NewSource(3))
	temps := make([]int64, side*side)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			base := 15 + 10*gauss(r, side/2, side/4)
			temps[r*side+c] = int64(base) + int64(rng.Intn(5))
		}
	}

	net, err := validity.NewNetwork(validity.NetworkConfig{
		Topology: validity.Grid,
		Hosts:    side * side,
		Values:   temps,
		Wireless: true,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor field: %d sensors, %d radio links, diameter %d\n\n",
		net.Hosts(), net.Edges(), net.Diameter())

	queries := []validity.Aggregate{validity.Min, validity.Max, validity.Avg, validity.Count}
	for _, dead := range []int{0, 125, 375} {
		fmt.Printf("--- %d sensors dying mid-query ---\n", dead)
		fmt.Printf("%-7s %12s %12s %12s %7s %10s\n",
			"query", "wildfire", "q(H_C)", "q(H_U)", "valid", "messages")
		for _, q := range queries {
			res, err := net.Query(validity.QueryConfig{
				Aggregate: q,
				Protocol:  validity.Wildfire,
				Failures:  dead,
				Seed:      11,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7s %12.1f %12.1f %12.1f %7v %10d\n",
				q, res.Value, res.Lower, res.Upper, res.Valid, res.Messages)
		}
		fmt.Println()
	}

	// The §1 semantics puzzle, concretely: a best-effort count under the
	// same failures gives a number with no interpretable relationship to
	// the network, while WILDFIRE's is guaranteed to be q(H) for some
	// H_C ⊆ H ⊆ H_U.
	st, err := net.Query(validity.QueryConfig{
		Aggregate: validity.Count, Protocol: validity.SpanningTree, Failures: 375, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best-effort spanning tree count under the same 375 failures: %.0f (valid: %v)\n",
		st.Value, st.Valid)
	fmt.Println("— the Fig. 1 problem: a number the user cannot attach a meaning to.")
}

// gauss is a cheap bell curve for the temperature field.
func gauss(x, mu, sigma int) float64 {
	d := float64(x-mu) / float64(sigma)
	return 1 / (1 + d*d)
}
