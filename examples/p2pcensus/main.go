// P2P census: the §5.4 "quick and dirty" network-size estimators.
//
// Operators of P2P networks constantly need |H| — for load planning,
// routing-table sizing, and deciding when to split the overlay — but an
// exact count costs O(|E|) messages. This example runs the paper's three
// cheaper routes on a churning network:
//
//  1. RANDOMIZEDREPORT (§4.3): one-shot sampled count with an (ε, ζ)
//     Approximate Single-Site Validity guarantee.
//
//  2. Capture–recapture (§5.4): a continuous Jolly–Seber estimator that
//     tracks |H_t| across churn intervals for the price of two samples.
//
//  3. The ring-segment estimator (§5.4): s/X_s on a Chord-like ring, free
//     if the overlay already assigns ring identifiers.
//
//     go run ./examples/p2pcensus
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"validity"
	"validity/internal/capture"
	"validity/internal/ring"
)

func main() {
	const n = 20000
	fmt.Printf("true network size: %d hosts\n\n", n)

	oneShotCensus(n)
	continuousCensus(n)
	ringCensus(n)
}

// oneShotCensus runs RANDOMIZEDREPORT with an explicit (ε, ζ) target.
func oneShotCensus(n int) {
	net, err := validity.NewNetwork(validity.NetworkConfig{
		Topology: validity.Gnutella,
		Hosts:    n,
		Seed:     5,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := net.Query(validity.QueryConfig{
		Aggregate: validity.Count,
		Protocol:  validity.RandomizedReport,
		Epsilon:   0.1,
		Zeta:      0.05,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	full, err := net.Query(validity.QueryConfig{
		Aggregate: validity.Count,
		Protocol:  validity.AllReport,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1) one-shot RANDOMIZEDREPORT (ε=0.1, ζ=0.05)")
	fmt.Printf("   estimate %.0f (error %.1f%%), %d messages — vs ALLREPORT: exact %0.f, %d messages\n\n",
		res.Value, 100*math.Abs(res.Value/float64(n)-1), res.Messages, full.Value, full.Messages)
}

// continuousCensus tracks a churning population with capture–recapture.
func continuousCensus(n int) {
	rng := rand.New(rand.NewSource(6))
	pop := capture.NewPopulation(n, rng)
	est, err := capture.NewEstimator(pop, pop, n/10, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2) continuous capture-recapture census (5% churn per interval)")
	fmt.Printf("   %-9s %9s %9s %9s %8s\n", "interval", "true", "marked", "estimate", "err")
	for i := 0; i < 8; i++ {
		if i > 0 {
			pop.Advance(0.05, int(0.05*float64(pop.Size())))
		}
		r := est.Step()
		if math.IsNaN(r.Estimate) {
			fmt.Printf("   %-9d %9d %9d %9s %8s\n", r.Interval, pop.Size(), r.Marked, "-", "-")
			continue
		}
		fmt.Printf("   %-9d %9d %9d %9.0f %7.1f%%\n", r.Interval, pop.Size(), r.Marked,
			r.Estimate, 100*math.Abs(r.Estimate/float64(pop.Size())-1))
	}
	fmt.Println()
}

// ringCensus estimates size from sampled ring-segment lengths.
func ringCensus(n int) {
	rng := rand.New(rand.NewSource(7))
	r := ring.NewWithHosts(n, rng)
	fmt.Println("3) ring segment estimator s/X_s (Chord-like overlay)")
	fmt.Printf("   %-9s %9s %8s\n", "sample s", "estimate", "err")
	for _, s := range []int{16, 64, 256, 1024} {
		est, err := r.EstimateSize(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-9d %9.0f %7.1f%%\n", s, est, 100*math.Abs(est/float64(n)-1))
	}
}
