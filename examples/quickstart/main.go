// Quickstart: the paper's headline experiment in thirty lines.
//
// Build a Gnutella-like P2P network, issue a COUNT query while hosts are
// leaving, and compare WILDFIRE (valid under churn) against the
// best-effort SPANNINGTREE (whose answer silently collapses), using the
// oracle's Single-Site Validity bounds as the frame of reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"validity"
)

func main() {
	net, err := validity.NewNetwork(validity.NetworkConfig{
		Topology: validity.Gnutella,
		Hosts:    5000,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := net.Exact(validity.Count)
	fmt.Printf("network: %d hosts, %d edges, diameter %d (true count %.0f)\n\n",
		net.Hosts(), net.Edges(), net.Diameter(), exact)

	fmt.Printf("%-10s %-14s %10s %10s %10s %7s %10s\n",
		"departures", "protocol", "value", "q(H_C)", "q(H_U)", "valid", "messages")
	for _, failures := range []int{0, 250, 500, 1000} {
		for _, proto := range []validity.Protocol{validity.Wildfire, validity.SpanningTree} {
			res, err := net.Query(validity.QueryConfig{
				Aggregate: validity.Count,
				Protocol:  proto,
				Failures:  failures,
				Seed:      7, // same churn draw for both protocols
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10d %-14s %10.0f %10.0f %10.0f %7v %10d\n",
				failures, proto, res.Value, res.Lower, res.Upper, res.Valid, res.Messages)
		}
	}
	fmt.Println("\nWILDFIRE stays inside the oracle bounds at every churn level —")
	fmt.Println("that is Single-Site Validity. SPANNINGTREE is ~5x cheaper but its")
	fmt.Println("count drops below q(H_C) as departures grow: the price of validity.")
}
