// Continuous: windowed continuous queries under steady churn (§4.2),
// running natively on the live query engine via the streaming subsystem
// (internal/stream).
//
// A monitoring application registers one long-running COUNT query over a
// P2P network with exponential session lengths (the Gnutella
// median-session measurement of the paper's footnote 1). The stream
// executes window k as the ordinary engine query stream.WindowID(1, k):
// the runtime's timer heap opens it at stream tick k·W, every peer
// derives the window's protocol instance, FM coins, and churn slice from
// the shared seed alone, the answer is read at quiescence, and the
// result arrives on a channel with that window's own H_C/H_U bounds —
// Continuous Single-Site Validity, window by window. A single query left
// running since window 1 would have an empty stable set instead (§4.2).
//
// This example drives real goroutine-per-peer execution with wall-clock
// hop delay — the concurrent execution a deployment would see — not the
// deterministic event simulator the figures use.
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"
	"time"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/node"
	"validity/internal/protocol"
	"validity/internal/stream"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

func main() {
	const (
		hosts   = 600
		seed    = 9
		windows = 6
		hop     = 5 * time.Millisecond
	)
	g := topology.NewGnutella(hosts, seed)
	values := zipfval.Default(seed).Values(hosts)
	dHat := g.DiameterSampled(2, nil) + 2

	plan := &stream.Plan{
		Query: 1,
		Spec: protocol.Query{
			Kind: agg.Count,
			Hq:   0, // the monitoring host; it must outlive the run
			DHat: dHat,
			// c = 64 FM repetitions keeps the displayed estimates stable
			// (§6.4 shows accuracy grows with c).
			Params: agg.Params{Vectors: 64, Bits: 32},
		},
		Windows: windows, // WindowLen 0 = the §4.2 minimum W = 2·D̂
		Seed:    seed,
		// Exponential session lifetimes with a mean of 4 windows, and
		// rebirth: a departed peer returns after an exponential downtime
		// of about one window and serves another session, so the H_U
		// column shrinks AND grows as arrivals race departures. Every
		// peer derives the identical timeline from the seed — no
		// coordination anywhere.
		Source: churn.Sessions{N: hosts, Mean: float64(8 * dHat), Rejoin: float64(2 * dHat)},
	}

	fmt.Printf("monitoring a %d-host network (D̂=%d, window W=2·D̂=%d ticks, δ=%v)\n",
		hosts, dHat, 2*dHat, hop)
	fmt.Printf("continuous COUNT query, %d windows, exponential sessions with rebirth\n\n", windows)
	fmt.Printf("%-7s %6s %10s %10s %10s %7s %9s %7s\n",
		"window", "H_U", "lower", "count", "upper", "valid", "messages", "lat")

	ln := node.NewLiveNetwork(g, values, hop)
	s, err := stream.Live(ln, plan)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Stop()

	for r := range s.Results() {
		if r.Err != nil {
			log.Fatalf("window %d: %v", r.Window, r.Err)
		}
		fmt.Printf("%-7d %6d %10.1f %10.1f %10.1f %7t %9d %5dms\n",
			r.Window+1, r.HU, r.Lower, r.Value, r.Upper, r.Valid,
			r.Stats.MessagesSent, r.Latency.Milliseconds())
	}

	fmt.Println("\nEach window's answer is judged against that window's own H_C/H_U")
	fmt.Println("(Continuous Single-Site Validity, §4.2); the H_U column moving both")
	fmt.Println("ways is the session churn — departures shrink it, rebirths grow it.")
	fmt.Println("Windows are ordinary engine queries derived from the seed and the")
	fmt.Println("window index — run the same stream across processes with")
	fmt.Println("validityd -continuous.")
}
