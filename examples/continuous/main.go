// Continuous: windowed continuous queries under steady churn (§4.2).
//
// A monitoring application registers a long-running AVG query over a P2P
// network with exponential session lengths (the Gnutella median-session
// measurement of the paper's footnote 1). Continuous Single-Site Validity
// is achieved by re-running a one-time valid query per window [t−W, t]:
// each window's answer is q(H) for some H between that window's H_C and
// H_U. The example also demonstrates why the naive adaptation fails —
// over a long interval [0, t] the stable set H_C empties out.
//
// This example drives the protocols on the goroutine-backed live runner
// (one goroutine per peer, real channels, wall-clock hop delay), i.e. the
// concurrent execution a real deployment would see, rather than the
// deterministic event simulator the experiments use.
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

func main() {
	const hosts = 600
	g := topology.NewGnutella(hosts, 9)
	values := zipfval.Default(9).Values(hosts)
	dHat := g.DiameterSampled(2, nil) + 2
	rng := rand.New(rand.NewSource(9))

	fmt.Printf("monitoring a %d-host network (diameter overestimate D̂=%d)\n", hosts, dHat)
	fmt.Printf("continuous AVG query, one window per 2D̂δ interval, churn between windows\n\n")
	fmt.Printf("%-7s %8s %10s %12s %10s\n", "window", "alive", "avg(H_t)", "wildfire", "messages")

	alive := make([]bool, hosts)
	for i := range alive {
		alive[i] = true
	}

	const windows = 6
	for w := 0; w < windows; w++ {
		// Churn between windows: ~3% of hosts end their sessions.
		if w > 0 {
			for h := 1; h < hosts; h++ { // host 0 is the monitoring host
				if alive[h] && rng.Float64() < 0.03 {
					alive[h] = false
				}
			}
		}
		// Ground truth for this window over currently-alive hosts.
		var truth []int64
		for h, a := range alive {
			if a {
				truth = append(truth, values[h])
			}
		}

		v, msgs := runWindowLive(g, values, alive, dHat)
		fmt.Printf("%-7d %8d %10.1f %12.1f %10d\n",
			w+1, len(truth), agg.Exact(agg.Avg, truth), v, msgs)
	}

	fmt.Println("\nEach window's answer reflects hosts stably connected during that")
	fmt.Println("window (Continuous Single-Site Validity, §4.2). A single query left")
	fmt.Println("running since window 1 would have an empty stable set by now.")
}

// runWindowLive executes one windowed WILDFIRE AVG query on the
// goroutine-backed live network, with currently-dead hosts killed before
// the query starts.
func runWindowLive(g *graph.Graph, values []int64, alive []bool, dHat int) (float64, int64) {
	// Hop = 5ms: comfortably above OS timer granularity, so wall-clock
	// hop timing tracks the protocol's δ model faithfully.
	const hop = 5 * time.Millisecond
	ln := sim.NewLiveNetwork(g, values, hop)
	// c = 64 FM repetitions: the avg is a ratio of two estimates, so the
	// demo uses more repetitions than the paper's default 8 to keep the
	// displayed numbers stable (§6.4 shows accuracy grows with c).
	q := protocol.Query{Kind: agg.Avg, Hq: 0, DHat: dHat, Params: agg.Params{Vectors: 64, Bits: 32}}
	wf := protocol.NewWildfire(q)
	// The live runner has no shared RNG; FM partials need one. Give each
	// host its own seeded source via a locked wrapper handler.
	if err := installLive(wf, ln, g); err != nil {
		log.Fatal(err)
	}
	for h, a := range alive {
		if !a {
			ln.Kill(graph.HostID(h))
		}
	}
	ln.Start()
	// Let the query run for its 2D̂ hops of wall time, with slack.
	time.Sleep(time.Duration(2*dHat+6) * hop)
	ln.Stop()
	v, ok := wf.Result()
	if !ok {
		log.Fatal("no result from live window")
	}
	return v, ln.MessagesSent()
}

// installLive wires a Wildfire instance onto a live network. The event
// simulator hands handlers a shared deterministic RNG; live contexts
// return a nil RNG, so we wrap each handler to substitute a per-host
// source (concurrency-safe: one goroutine per host).
func installLive(wf *protocol.Wildfire, ln *sim.LiveNetwork, g *graph.Graph) error {
	// Install on a throwaway event network first to materialize per-host
	// handlers, then move them onto the live network.
	tmp := sim.NewNetwork(sim.Config{Graph: g, Seed: 1})
	if err := wf.Install(tmp); err != nil {
		return err
	}
	for h := 0; h < g.Len(); h++ {
		ln.SetHandler(graph.HostID(h), &rngHandler{
			inner: tmp.Handler(graph.HostID(h)),
			rng:   rand.New(rand.NewSource(int64(h) + 1)),
		})
	}
	return nil
}

// rngHandler adapts a protocol handler to the live runner by serializing
// callbacks (the live runner may interleave timers and receives) and by
// providing randomness where the context cannot.
type rngHandler struct {
	mu    sync.Mutex
	inner sim.Handler
	rng   *rand.Rand
}

func (r *rngHandler) Start(ctx *sim.Context) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner.Start(ctx.WithRand(r.rng))
}

func (r *rngHandler) Receive(ctx *sim.Context, msg sim.Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner.Receive(ctx.WithRand(r.rng), msg)
}

func (r *rngHandler) Timer(ctx *sim.Context, tag int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner.Timer(ctx.WithRand(r.rng), tag)
}
