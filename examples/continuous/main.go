// Continuous: windowed continuous queries under steady churn (§4.2).
//
// A monitoring application registers a long-running AVG query over a P2P
// network with exponential session lengths (the Gnutella median-session
// measurement of the paper's footnote 1). Continuous Single-Site Validity
// is achieved by re-running a one-time valid query per window [t−W, t]:
// each window's answer is q(H) for some H between that window's H_C and
// H_U. The example also demonstrates why the naive adaptation fails —
// over a long interval [0, t] the stable set H_C empties out.
//
// This example drives the protocols on the goroutine-backed live runner
// (one goroutine per peer, real channels, wall-clock hop delay), i.e. the
// concurrent execution a real deployment would see, rather than the
// deterministic event simulator the experiments use.
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/node"
	"validity/internal/protocol"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

func main() {
	const hosts = 600
	g := topology.NewGnutella(hosts, 9)
	values := zipfval.Default(9).Values(hosts)
	dHat := g.DiameterSampled(2, nil) + 2
	rng := rand.New(rand.NewSource(9))

	fmt.Printf("monitoring a %d-host network (diameter overestimate D̂=%d)\n", hosts, dHat)
	fmt.Printf("continuous AVG query, one window per 2D̂δ interval, churn between windows\n\n")
	fmt.Printf("%-7s %8s %10s %12s %10s\n", "window", "alive", "avg(H_t)", "wildfire", "messages")

	alive := make([]bool, hosts)
	for i := range alive {
		alive[i] = true
	}

	const windows = 6
	for w := 0; w < windows; w++ {
		// Churn between windows: ~3% of hosts end their sessions.
		if w > 0 {
			for h := 1; h < hosts; h++ { // host 0 is the monitoring host
				if alive[h] && rng.Float64() < 0.03 {
					alive[h] = false
				}
			}
		}
		// Ground truth for this window over currently-alive hosts.
		var truth []int64
		for h, a := range alive {
			if a {
				truth = append(truth, values[h])
			}
		}

		v, msgs := runWindowLive(g, values, alive, dHat)
		fmt.Printf("%-7d %8d %10.1f %12.1f %10d\n",
			w+1, len(truth), agg.Exact(agg.Avg, truth), v, msgs)
	}

	fmt.Println("\nEach window's answer reflects hosts stably connected during that")
	fmt.Println("window (Continuous Single-Site Validity, §4.2). A single query left")
	fmt.Println("running since window 1 would have an empty stable set by now.")
}

// runWindowLive executes one windowed WILDFIRE AVG query on the
// goroutine-backed live network, with currently-dead hosts killed before
// the query starts.
func runWindowLive(g *graph.Graph, values []int64, alive []bool, dHat int) (float64, int64) {
	// Hop = 5ms: comfortably above OS timer granularity, so wall-clock
	// hop timing tracks the protocol's δ model faithfully.
	const hop = 5 * time.Millisecond
	ln := node.NewLiveNetwork(g, values, hop)
	// c = 64 FM repetitions: the avg is a ratio of two estimates, so the
	// demo uses more repetitions than the paper's default 8 to keep the
	// displayed numbers stable (§6.4 shows accuracy grows with c).
	q := protocol.Query{Kind: agg.Avg, Hq: 0, DHat: dHat, Params: agg.Params{Vectors: 64, Bits: 32}}
	wf := protocol.NewWildfire(q)
	// The live runtime has no shared RNG; InstallLive gives each host its
	// own seeded source (FM partials need coin tosses at activation).
	if err := node.InstallLive(ln, wf, 9); err != nil {
		log.Fatal(err)
	}
	for h, a := range alive {
		if !a {
			ln.Kill(graph.HostID(h))
		}
	}
	ln.Start()
	// Let the query run for its 2D̂ hops of wall time, with slack.
	time.Sleep(time.Duration(2*dHat+6) * hop)
	ln.Stop()
	v, ok := wf.Result()
	if !ok {
		log.Fatal("no result from live window")
	}
	return v, ln.MessagesSent()
}
