// Package sim implements the discrete-event simulator of a dynamic network
// that every protocol in this repository runs on. It models the paper's
// "relaxed asynchronous" system (§3.1): hosts connected by symmetric edges,
// a known per-hop delay bound δ (one virtual tick), reliable in-order
// delivery to alive neighbors, and hosts that fail (leave) at scheduled
// times (§3.2). It also models the wireless broadcast medium of sensor
// networks, under which one transmission reaches every alive neighbor at
// the cost of a single message (§5.3).
//
// The simulator is deterministic: all randomness comes from the caller's
// seeded rand.Rand, and events at equal times are processed in a fixed
// order (by sequence number). Determinism is what makes the paper's figures
// reproducible byte for byte; the goroutine-per-peer runtime that executes
// the same Handlers on real concurrent peers and real transports lives in
// internal/node and plugs in through the Backend interface below.
//
// Cost accounting follows §6.3 exactly:
//
//   - Communication cost: number of messages sent between host pairs
//     (under the wireless medium, one local broadcast counts as one).
//   - Computation cost: messages processed per host; the protocol's cost is
//     the maximum over hosts.
//   - Time cost: the length of the longest causal chain of messages,
//     tracked by carrying a chain depth in every message.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"validity/internal/graph"
)

// Time is virtual time measured in ticks. One tick is the universal
// per-hop delay bound δ of the paper's model.
type Time int64

// Medium selects how a send-to-all-neighbors is accounted.
type Medium int

const (
	// MediumPointToPoint charges one message per (sender, receiver) pair,
	// as on a wired P2P overlay.
	MediumPointToPoint Medium = iota
	// MediumWireless charges one message per local broadcast regardless of
	// the number of neighbors, as on a sensor radio.
	MediumWireless
)

func (m Medium) String() string {
	switch m {
	case MediumPointToPoint:
		return "point-to-point"
	case MediumWireless:
		return "wireless"
	default:
		return fmt.Sprintf("Medium(%d)", int(m))
	}
}

// Message is a payload in flight between two hosts. Payload semantics are
// protocol-defined.
type Message struct {
	From    graph.HostID
	To      graph.HostID
	Payload any
	// chain is the causal depth of this message: 1 + the depth of the
	// message whose processing triggered the send (0 for spontaneous
	// sends). The maximum over all delivered messages is the time cost.
	chain int
}

// Chain returns the causal depth of the message (see Stats.TimeCost).
func (m *Message) Chain() int { return m.chain }

// MakeMessage builds a Message with an explicit causal depth. The chain
// field is private to keep the event loop's accounting honest; runtimes
// that deliver transport frames (internal/node) reconstruct messages here.
func MakeMessage(from, to graph.HostID, payload any, chain int) Message {
	return Message{From: from, To: to, Payload: payload, chain: chain}
}

// Handler is the per-host protocol logic. Implementations must be pure
// state machines: all communication goes through the Context.
type Handler interface {
	// Start is invoked once per host when the host becomes part of the
	// simulation (at time 0 for initial hosts, at join time for joiners).
	Start(ctx *Context)
	// Receive is invoked when a message is delivered to this host.
	Receive(ctx *Context, msg Message)
	// Timer is invoked when a timer set via Context.SetTimer fires.
	Timer(ctx *Context, tag int)
}

// event kinds, ordered for determinism at equal timestamps.
const (
	evFail = iota
	evJoin
	evDeliver
	evTimer
)

type event struct {
	t     Time
	kind  int
	seq   uint64 // FIFO tiebreak
	host  graph.HostID
	msg   Message
	tag   int
	chain int // causal depth carried into timer callbacks
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) Peek() *event  { return q[0] }

// Stats aggregates the §6.3 cost measures for one run.
type Stats struct {
	// MessagesSent is the total communication cost.
	MessagesSent int64
	// MessagesDelivered counts deliveries that reached an alive host.
	MessagesDelivered int64
	// MessagesDropped counts messages whose destination failed in flight.
	MessagesDropped int64
	// PerHostProcessed[h] is the computation cost of host h.
	PerHostProcessed []int64
	// PerTickSent[t] is the number of messages sent at tick t (Fig. 13b).
	PerTickSent []int64
	// TimeCost is the longest causal chain of messages (§6.3).
	TimeCost int
	// FinishTime is the virtual time at which the run stopped.
	FinishTime Time
}

// MaxComputation returns the maximum per-host computation cost.
func (s *Stats) MaxComputation() int64 {
	var max int64
	for _, c := range s.PerHostProcessed {
		if c > max {
			max = c
		}
	}
	return max
}

// ComputationHistogram returns, for each observed per-host message count,
// the number of hosts that processed exactly that many messages (Fig. 12).
// Hosts that processed zero messages are included.
func (s *Stats) ComputationHistogram() map[int64]int {
	h := make(map[int64]int)
	for _, c := range s.PerHostProcessed {
		h[c]++
	}
	return h
}

// Network is one simulation instance: a topology, per-host handler state,
// scheduled churn, and the event loop.
type Network struct {
	g        *graph.Graph
	medium   Medium
	rng      *rand.Rand
	handlers []Handler
	alive    []bool
	joined   []bool // false until join time (joiners); initial hosts true
	queue    eventQueue
	seq      uint64
	now      Time
	stats    Stats
	values   []int64 // attribute values (query-dependent, §3.1)
	// OnDeliver, if set, observes every delivered message (for tracing).
	OnDeliver func(t Time, msg Message)
}

// Config configures a Network.
type Config struct {
	Graph  *graph.Graph
	Medium Medium
	// Seed seeds the simulation's private RNG (used by handlers through
	// Context.Rand). Handlers needing independent streams can derive them.
	Seed int64
	// Values are per-host attribute values; len must equal Graph.Len().
	// If nil, all values are zero.
	Values []int64
}

// NewNetwork builds a simulation over cfg.Graph with every host alive.
func NewNetwork(cfg Config) *Network {
	n := cfg.Graph.Len()
	values := cfg.Values
	if values == nil {
		values = make([]int64, n)
	}
	if len(values) != n {
		panic(fmt.Sprintf("sim: %d values for %d hosts", len(values), n))
	}
	nw := &Network{
		g:        cfg.Graph,
		medium:   cfg.Medium,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		handlers: make([]Handler, n),
		alive:    make([]bool, n),
		joined:   make([]bool, n),
		values:   values,
	}
	for i := range nw.alive {
		nw.alive[i] = true
		nw.joined[i] = true
	}
	nw.stats.PerHostProcessed = make([]int64, n)
	return nw
}

// Graph returns the underlying topology.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Now returns the current virtual time.
func (nw *Network) Now() Time { return nw.now }

// Stats returns the accumulated cost statistics.
func (nw *Network) Stats() *Stats { return &nw.stats }

// Alive reports whether host h is currently alive.
func (nw *Network) Alive(h graph.HostID) bool { return nw.alive[h] }

// AlivePredicate returns a graph.Alive view of current liveness.
func (nw *Network) AlivePredicate() graph.Alive {
	return func(h graph.HostID) bool { return nw.alive[h] }
}

// Value returns the attribute value of host h.
func (nw *Network) Value(h graph.HostID) int64 { return nw.values[h] }

// SetHandler installs the protocol state machine for host h. All handlers
// must be installed before Run.
func (nw *Network) SetHandler(h graph.HostID, hd Handler) { nw.handlers[h] = hd }

// Handler returns the handler installed at h (for post-run inspection).
func (nw *Network) Handler(h graph.HostID) Handler { return nw.handlers[h] }

// FailAt schedules host h to leave the network at time t. A failed host
// stops participating: in-flight messages to it are dropped at delivery
// time, and its timers never fire (§3.2).
func (nw *Network) FailAt(h graph.HostID, t Time) {
	nw.push(&event{t: t, kind: evFail, host: h})
}

// JoinAt schedules host h to join the network at time t. For a host
// constructed dead via SetInitiallyDead (a late joiner) its Start runs
// then; for a host that failed earlier (a rebirth) it resumes with its
// existing handler state. Joining while already present is a no-op.
func (nw *Network) JoinAt(h graph.HostID, t Time) {
	nw.push(&event{t: t, kind: evJoin, host: h})
}

// SetInitiallyDead marks h as not present at time 0 (to be joined later).
func (nw *Network) SetInitiallyDead(h graph.HostID) {
	nw.alive[h] = false
	nw.joined[h] = false
}

func (nw *Network) push(e *event) {
	e.seq = nw.seq
	nw.seq++
	heap.Push(&nw.queue, e)
}

// Run executes the event loop until the queue drains or `until` is
// reached, whichever comes first, and returns the final statistics. Start
// is invoked on every initially-alive host at time 0 before any event.
func (nw *Network) Run(until Time) *Stats {
	for h := 0; h < nw.g.Len(); h++ {
		if nw.alive[h] && nw.handlers[h] != nil {
			ctx := nw.ctx(graph.HostID(h), 0)
			nw.handlers[h].Start(ctx)
		}
	}
	for nw.queue.Len() > 0 {
		e := nw.queue.Peek()
		if e.t > until {
			break
		}
		heap.Pop(&nw.queue)
		nw.now = e.t
		nw.dispatch(e)
	}
	if nw.now < until {
		nw.now = until
	}
	nw.stats.FinishTime = nw.now
	return &nw.stats
}

func (nw *Network) dispatch(e *event) {
	switch e.kind {
	case evFail:
		nw.alive[e.host] = false
	case evJoin:
		if nw.alive[e.host] {
			return // join while present: no-op
		}
		nw.alive[e.host] = true
		if !nw.joined[e.host] {
			// First arrival of a late joiner: its Start runs now. A host
			// rejoining after a failure (a membership-timeline rebirth)
			// resumes with its existing handler state; Start is once per
			// host lifetime, exactly as under the live engine.
			nw.joined[e.host] = true
			if hd := nw.handlers[e.host]; hd != nil {
				hd.Start(nw.ctx(e.host, 0))
			}
		}
	case evDeliver:
		if !nw.alive[e.msg.To] {
			nw.stats.MessagesDropped++
			return
		}
		nw.stats.MessagesDelivered++
		nw.stats.PerHostProcessed[e.msg.To]++
		if e.msg.chain > nw.stats.TimeCost {
			nw.stats.TimeCost = e.msg.chain
		}
		if nw.OnDeliver != nil {
			nw.OnDeliver(nw.now, e.msg)
		}
		if hd := nw.handlers[e.msg.To]; hd != nil {
			hd.Receive(nw.ctx(e.msg.To, e.msg.chain), e.msg)
		}
	case evTimer:
		if !nw.alive[e.host] {
			return
		}
		if hd := nw.handlers[e.host]; hd != nil {
			hd.Timer(nw.ctx(e.host, e.chain), e.tag)
		}
	}
}

func (nw *Network) ctx(h graph.HostID, chain int) *Context {
	return &Context{nw: nw, host: h, chain: chain}
}

// recordSend updates the per-tick trace for a message sent now.
func (nw *Network) recordSent(count int64) {
	nw.stats.MessagesSent += count
	t := int(nw.now)
	for len(nw.stats.PerTickSent) <= t {
		nw.stats.PerTickSent = append(nw.stats.PerTickSent, 0)
	}
	nw.stats.PerTickSent[t] += count
}

// Backend is the execution substrate behind a Context when handlers run
// outside the deterministic event loop: something that can deliver
// messages, schedule timers, and answer environment queries for real
// concurrent peers. internal/node implements it over pluggable transports
// (in-process channels, TCP); the event-driven Network does not use it.
//
// Time is still measured in ticks of δ — a Backend maps ticks to wall
// clock however it realizes the per-hop bound.
type Backend interface {
	// Now returns the current virtual time in δ ticks.
	Now() Time
	// Value returns host h's attribute value.
	Value(h graph.HostID) int64
	// Graph returns the topology.
	Graph() *graph.Graph
	// Send transmits payload from one host to another with the given
	// causal depth; delivery happens only if the destination is alive at
	// arrival (§3.2).
	Send(from, to graph.HostID, payload any, chain int)
	// SetTimer schedules Timer(tag) on h at absolute tick `at`, carrying
	// the causal depth of the scheduling callback.
	SetTimer(h graph.HostID, at Time, tag, chain int)
}

// BackendContext returns a Context for host h executing on b with the
// given causal chain depth. Runtimes mint one per handler callback.
func BackendContext(b Backend, h graph.HostID, chain int) *Context {
	return &Context{be: b, host: h, chain: chain}
}

// Context is the capability a handler uses to act on the network. It is
// valid only for the duration of the callback it was passed to. Exactly
// one of nw (event-driven backend) or be (live runtime backend) is set.
type Context struct {
	nw    *Network
	be    Backend
	host  graph.HostID
	chain int
	rng   *rand.Rand // optional override, see WithRand
}

// WithRand returns a copy of the context whose Rand() yields r. Live
// backends have no shared deterministic RNG, so runtimes executing
// handlers on one wrap contexts with per-host sources (node.WithRand).
func (c *Context) WithRand(r *rand.Rand) *Context {
	cp := *c
	cp.rng = r
	return &cp
}

// Self returns the host this context belongs to.
func (c *Context) Self() graph.HostID { return c.host }

// Now returns the current virtual time (elapsed hop units on a live
// backend).
func (c *Context) Now() Time {
	if c.be != nil {
		return c.be.Now()
	}
	return c.nw.now
}

// Value returns this host's attribute value, generated on receipt of the
// query in the ad-hoc model (§3.1); here it is preassigned per run.
func (c *Context) Value() int64 {
	if c.be != nil {
		return c.be.Value(c.host)
	}
	return c.nw.values[c.host]
}

// Neighbors returns this host's neighbor list (alive or not: a host cannot
// instantly observe neighbor failures, it only learns via heartbeats).
func (c *Context) Neighbors() []graph.HostID { return c.graph().Neighbors(c.host) }

// Degree returns the number of neighbors.
func (c *Context) Degree() int { return c.graph().Degree(c.host) }

func (c *Context) graph() *graph.Graph {
	if c.be != nil {
		return c.be.Graph()
	}
	return c.nw.g
}

// Rand returns the simulation RNG (deterministic per seed), or the
// WithRand override if set. Live backends have no shared RNG; handlers
// running there must be given one via WithRand, otherwise Rand returns
// nil.
func (c *Context) Rand() *rand.Rand {
	if c.rng != nil {
		return c.rng
	}
	if c.be != nil {
		return nil
	}
	return c.nw.rng
}

// Send transmits payload to a single neighbor; it arrives after δ = 1 tick
// if the destination is then alive. Sending to a non-neighbor panics:
// messages can only travel along edges of G (§3.1).
func (c *Context) Send(to graph.HostID, payload any) {
	if !c.graph().HasEdge(c.host, to) {
		panic(fmt.Sprintf("sim: host %d sending to non-neighbor %d", c.host, to))
	}
	if c.be != nil {
		c.be.Send(c.host, to, payload, c.chain+1)
		return
	}
	msg := Message{From: c.host, To: to, Payload: payload, chain: c.chain + 1}
	c.nw.recordSent(1)
	c.nw.push(&event{t: c.nw.now + 1, kind: evDeliver, msg: msg})
}

// SendAll transmits payload to every neighbor. Under MediumPointToPoint it
// costs one message per neighbor; under MediumWireless it costs one
// message total (§5.3). Delivery per neighbor still depends on that
// neighbor being alive at arrival time.
func (c *Context) SendAll(payload any) {
	c.sendMany(graph.None, payload)
}

// SendAllExcept is SendAll skipping one neighbor (e.g. the host the
// triggering message came from). Under the wireless medium it still costs
// one message.
func (c *Context) SendAllExcept(skip graph.HostID, payload any) {
	c.sendMany(skip, payload)
}

func (c *Context) sendMany(skip graph.HostID, payload any) {
	ns := c.graph().Neighbors(c.host)
	count := 0
	for _, to := range ns {
		if to == skip {
			continue
		}
		count++
		if c.be != nil {
			c.be.Send(c.host, to, payload, c.chain+1)
			continue
		}
		msg := Message{From: c.host, To: to, Payload: payload, chain: c.chain + 1}
		c.nw.push(&event{t: c.nw.now + 1, kind: evDeliver, msg: msg})
	}
	if count == 0 || c.be != nil {
		return
	}
	if c.nw.medium == MediumWireless {
		c.nw.recordSent(1)
	} else {
		c.nw.recordSent(int64(count))
	}
}

// SetTimer schedules Timer(tag) on this host at absolute time t. Timers on
// failed hosts never fire. On a live backend the timer is realized with a
// wall-clock timer of (t − now) hop units.
//
// A timer set while processing a message continues that message's causal
// chain, so batched sends triggered by timers keep honest time-cost
// accounting.
func (c *Context) SetTimer(t Time, tag int) {
	if c.be != nil {
		c.be.SetTimer(c.host, t, tag, c.chain)
		return
	}
	c.nw.push(&event{t: t, kind: evTimer, host: c.host, tag: tag, chain: c.chain})
}

// Medium reports the configured transmission medium (always point-to-point
// on live backends).
func (c *Context) Medium() Medium {
	if c.be != nil {
		return MediumPointToPoint
	}
	return c.nw.medium
}
