package sim

import (
	"encoding/gob"

	"validity/internal/graph"
)

// HeartbeatMonitor implements the failure-detection mechanism of §3.1:
// hosts send heartbeats to their neighbors every T_hb ticks; if a host
// does not hear from a neighbor within T_hb + δ of the previous
// heartbeat, it deduces the neighbor has failed. (With δ = 1 tick, the
// detection horizon is T_hb + 1.)
//
// The monitor is a Handler decorator: wrap a protocol handler with
// NewHeartbeatMonitor and the wrapped handler transparently gains a
// NeighborAlive view while heartbeat traffic and suspicion bookkeeping
// stay out of its way. Heartbeat messages are delivered to the monitor
// only; everything else passes through.
type HeartbeatMonitor struct {
	inner Handler
	thb   Time
	// lastSeen[n] is the time of the most recent heartbeat (or any
	// message — real traffic proves liveness just as well) from n.
	lastSeen map[graph.HostID]Time
	started  bool
}

// heartbeatMsg is the periodic liveness beacon. It crosses process
// boundaries when a monitored handler runs on the TCP transport, so it is
// gob-registered with explicit encoders (gob refuses field-less structs;
// the beacon's entire content is its type).
type heartbeatMsg struct{}

func init() { gob.Register(heartbeatMsg{}) }

// GobEncode implements gob.GobEncoder.
func (heartbeatMsg) GobEncode() ([]byte, error) { return []byte{}, nil }

// GobDecode implements gob.GobDecoder.
func (*heartbeatMsg) GobDecode([]byte) error { return nil }

// heartbeatTag drives the periodic send timer; chosen high to avoid
// colliding with protocol tags.
const heartbeatTag = 1 << 20

// NewHeartbeatMonitor wraps inner with heartbeat failure detection at
// period thb (must be ≥ 1).
func NewHeartbeatMonitor(inner Handler, thb Time) *HeartbeatMonitor {
	if thb < 1 {
		panic("sim: heartbeat period must be ≥ 1")
	}
	return &HeartbeatMonitor{inner: inner, thb: thb, lastSeen: make(map[graph.HostID]Time)}
}

// NeighborAlive reports whether n is believed alive: a heartbeat (or any
// message) from n arrived within the last T_hb + δ ticks. Before the
// first detection horizon elapses every neighbor is presumed alive.
func (m *HeartbeatMonitor) NeighborAlive(now Time, n graph.HostID) bool {
	last, ok := m.lastSeen[n]
	if !ok {
		// No message yet: presume alive until one full horizon has
		// passed since startup (neighbors beat at t=0, arriving t=1).
		return now <= m.thb+1
	}
	return now-last <= m.thb+1
}

// SuspectedFailures returns the neighbors currently believed failed, in
// unspecified order.
func (m *HeartbeatMonitor) SuspectedFailures(now Time, neighbors []graph.HostID) []graph.HostID {
	var out []graph.HostID
	for _, n := range neighbors {
		if !m.NeighborAlive(now, n) {
			out = append(out, n)
		}
	}
	return out
}

// Start implements Handler: begin beating, then start the inner handler.
func (m *HeartbeatMonitor) Start(ctx *Context) {
	m.started = true
	ctx.SendAll(heartbeatMsg{})
	ctx.SetTimer(ctx.Now()+m.thb, heartbeatTag)
	m.inner.Start(ctx)
}

// Receive implements Handler: absorb heartbeats, refresh liveness on any
// traffic, and forward everything else.
func (m *HeartbeatMonitor) Receive(ctx *Context, msg Message) {
	m.lastSeen[msg.From] = ctx.Now()
	if _, ok := msg.Payload.(heartbeatMsg); ok {
		return
	}
	m.inner.Receive(ctx, msg)
}

// Timer implements Handler: periodic beat, other tags forwarded.
func (m *HeartbeatMonitor) Timer(ctx *Context, tag int) {
	if tag == heartbeatTag {
		ctx.SendAll(heartbeatMsg{})
		ctx.SetTimer(ctx.Now()+m.thb, heartbeatTag)
		return
	}
	m.inner.Timer(ctx, tag)
}

// Inner returns the wrapped handler (for post-run inspection).
func (m *HeartbeatMonitor) Inner() Handler { return m.inner }
