package sim

import (
	"testing"

	"validity/internal/graph"
)

// nopHandler records forwarded callbacks.
type nopHandler struct {
	received []Message
	timers   []int
}

func (n *nopHandler) Start(ctx *Context)                {}
func (n *nopHandler) Receive(ctx *Context, msg Message) { n.received = append(n.received, msg) }
func (n *nopHandler) Timer(ctx *Context, tag int)       { n.timers = append(n.timers, tag) }

func TestHeartbeatPeriodValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for thb < 1")
		}
	}()
	NewHeartbeatMonitor(&nopHandler{}, 0)
}

func TestHeartbeatDetectsFailure(t *testing.T) {
	g := line(2)
	nw := NewNetwork(Config{Graph: g, Seed: 1})
	m0 := NewHeartbeatMonitor(&nopHandler{}, 3)
	m1 := NewHeartbeatMonitor(&nopHandler{}, 3)
	nw.SetHandler(0, m0)
	nw.SetHandler(1, m1)
	nw.FailAt(1, 5)
	nw.Run(20)
	// Host 1 beat at t=0 (arrives 1) and t=3 (arrives 4); failed at 5,
	// so its t=6 beat never happens. Detection horizon: last seen 4,
	// alive until 4+3+1 = 8, suspected from 9 on.
	if !m0.NeighborAlive(8, 1) {
		t.Fatal("neighbor suspected too early")
	}
	if m0.NeighborAlive(9, 1) {
		t.Fatal("failed neighbor still believed alive at t=9")
	}
	if got := m0.SuspectedFailures(20, nw.Graph().Neighbors(0)); len(got) != 1 || got[0] != 1 {
		t.Fatalf("suspected = %v, want [1]", got)
	}
}

func TestHeartbeatNoFalsePositives(t *testing.T) {
	g := line(3)
	nw := NewNetwork(Config{Graph: g, Seed: 1})
	monitors := make([]*HeartbeatMonitor, 3)
	for i := range monitors {
		monitors[i] = NewHeartbeatMonitor(&nopHandler{}, 2)
		nw.SetHandler(graph.HostID(i), monitors[i])
	}
	nw.Run(30)
	for i, m := range monitors {
		for _, n := range g.Neighbors(graph.HostID(i)) {
			if !m.NeighborAlive(30, n) {
				t.Fatalf("host %d falsely suspects healthy neighbor %d", i, n)
			}
		}
	}
}

func TestHeartbeatForwardsProtocolTraffic(t *testing.T) {
	g := line(2)
	nw := NewNetwork(Config{Graph: g, Seed: 1})
	inner0 := &nopHandler{}
	m0 := NewHeartbeatMonitor(inner0, 5)
	nw.SetHandler(0, m0)
	// Host 1 sends one protocol message at start.
	nw.SetHandler(1, &timerHandler{onStart: func(ctx *Context) { ctx.Send(0, "payload") }, onTimer: func(int) {}})
	nw.Run(10)
	if len(inner0.received) != 1 || inner0.received[0].Payload != "payload" {
		t.Fatalf("inner received %v, want the protocol payload only", inner0.received)
	}
	if m0.Inner() != inner0 {
		t.Fatal("Inner() accessor broken")
	}
}

func TestHeartbeatProtocolMessagesRefreshLiveness(t *testing.T) {
	g := line(2)
	nw := NewNetwork(Config{Graph: g, Seed: 1})
	m0 := NewHeartbeatMonitor(&nopHandler{}, 100) // beacons effectively off
	nw.SetHandler(0, m0)
	nw.SetHandler(1, &timerHandler{onStart: func(ctx *Context) {
		ctx.SetTimer(4, 1)
	}, onTimer: func(int) {}})
	// Host 1's only communication is its startup heartbeat — wait, it has
	// no monitor; it sends nothing. Send one protocol message manually at
	// t=4 via a second handler arrangement.
	nw.SetHandler(1, &timerHandler{
		onStart: func(ctx *Context) { ctx.SetTimer(4, 1) },
		onTimer: func(tag int) {},
	})
	nw.Run(10)
	// No message ever came from 1 and the presumption horizon (thb+1 =
	// 101) has not elapsed — still presumed alive.
	if !m0.NeighborAlive(10, 1) {
		t.Fatal("presumption window not honored")
	}
}

func TestHeartbeatTimerForwarding(t *testing.T) {
	g := line(2)
	nw := NewNetwork(Config{Graph: g, Seed: 1})
	inner := &nopHandler{}
	m := NewHeartbeatMonitor(inner, 4)
	nw.SetHandler(0, m)
	// Schedule a protocol timer through the monitor's context by wrapping
	// Start: easiest is to fire a timer from the outside via the inner
	// handler API — set it on the network directly.
	nw.SetHandler(1, &timerHandler{onStart: func(ctx *Context) {}, onTimer: func(int) {}})
	// Use a dedicated handler to set a non-heartbeat timer on host 0.
	start := &timerHandler{onStart: func(ctx *Context) { ctx.SetTimer(3, 42) }, onTimer: func(int) {}}
	m2 := NewHeartbeatMonitor(&forwardingInner{inner: inner, onStart: start.onStart}, 4)
	nw.SetHandler(0, m2)
	nw.Run(10)
	if len(inner.timers) != 1 || inner.timers[0] != 42 {
		t.Fatalf("inner timers = %v, want [42]", inner.timers)
	}
}

// forwardingInner lets a test inject Start behaviour while recording
// forwarded callbacks in an embedded nopHandler.
type forwardingInner struct {
	inner   *nopHandler
	onStart func(*Context)
}

func (f *forwardingInner) Start(ctx *Context) { f.onStart(ctx) }
func (f *forwardingInner) Receive(ctx *Context, msg Message) {
	f.inner.Receive(ctx, msg)
}
func (f *forwardingInner) Timer(ctx *Context, tag int) { f.inner.Timer(ctx, tag) }
