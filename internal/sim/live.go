package sim

import (
	"sync"
	"sync/atomic"
	"time"

	"validity/internal/graph"
)

// LiveNetwork runs the same Handler state machines on real goroutines —
// one per host — with messages carried over channels and the per-hop delay
// realized with timers. It exists to demonstrate the protocols on actual
// concurrent peers (the examples use it); the event-driven Network is what
// the experiments use, because it is deterministic.
//
// The mapping to the paper's model: each peer goroutine is a host, Kill is
// an end-user switching the application off mid-query (§3.2), and Hop is
// the universal delay bound δ.
type LiveNetwork struct {
	g        *graph.Graph
	handlers []Handler
	values   []int64
	hop      time.Duration

	mu     sync.Mutex
	alive  []bool
	inbox  []chan Message
	quit   chan struct{}
	wg     sync.WaitGroup
	sent   atomic.Int64
	start  time.Time
	closed bool
}

// NewLiveNetwork creates a live runner over g where each hop takes hop of
// wall-clock time. Values may be nil (all zeros).
func NewLiveNetwork(g *graph.Graph, values []int64, hop time.Duration) *LiveNetwork {
	n := g.Len()
	if values == nil {
		values = make([]int64, n)
	}
	ln := &LiveNetwork{
		g:        g,
		handlers: make([]Handler, n),
		values:   values,
		hop:      hop,
		alive:    make([]bool, n),
		inbox:    make([]chan Message, n),
		quit:     make(chan struct{}),
	}
	for i := range ln.alive {
		ln.alive[i] = true
		ln.inbox[i] = make(chan Message, 1024)
	}
	return ln
}

// SetHandler installs the protocol state machine for host h.
func (ln *LiveNetwork) SetHandler(h graph.HostID, hd Handler) { ln.handlers[h] = hd }

// MessagesSent returns the number of messages sent so far.
func (ln *LiveNetwork) MessagesSent() int64 { return ln.sent.Load() }

// Start launches one goroutine per host and invokes every handler's Start.
func (ln *LiveNetwork) Start() {
	ln.start = time.Now()
	for h := 0; h < ln.g.Len(); h++ {
		id := graph.HostID(h)
		ln.wg.Add(1)
		go ln.hostLoop(id)
		if hd := ln.handlers[h]; hd != nil {
			hd.Start(ln.liveCtx(id))
		}
	}
}

func (ln *LiveNetwork) hostLoop(h graph.HostID) {
	defer ln.wg.Done()
	for {
		select {
		case <-ln.quit:
			return
		case msg := <-ln.inbox[h]:
			ln.mu.Lock()
			ok := ln.alive[h]
			ln.mu.Unlock()
			if !ok {
				continue // failed host: drop silently
			}
			if hd := ln.handlers[h]; hd != nil {
				hd.Receive(ln.liveCtx(h), msg)
			}
		}
	}
}

// Kill marks host h failed; it stops processing messages immediately.
func (ln *LiveNetwork) Kill(h graph.HostID) {
	ln.mu.Lock()
	ln.alive[h] = false
	ln.mu.Unlock()
}

// Stop terminates all host goroutines and waits for them to exit.
func (ln *LiveNetwork) Stop() {
	ln.mu.Lock()
	if !ln.closed {
		ln.closed = true
		close(ln.quit)
	}
	ln.mu.Unlock()
	ln.wg.Wait()
}

// now returns elapsed wall time in hop units, mirroring virtual ticks.
func (ln *LiveNetwork) now() Time {
	if ln.hop <= 0 {
		return 0
	}
	return Time(time.Since(ln.start) / ln.hop)
}

func (ln *LiveNetwork) deliverAfter(msg Message) {
	ln.sent.Add(1)
	go func() {
		if ln.hop > 0 {
			timer := time.NewTimer(ln.hop)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-ln.quit:
				return
			}
		}
		select {
		case ln.inbox[msg.To] <- msg:
		case <-ln.quit:
		}
	}()
}

// liveCtx adapts the live runner to the same Context type by building a
// Network-free context; live contexts support the subset of operations the
// protocols use (Send, SendAll, SendAllExcept, SetTimer, Value, Neighbors).
func (ln *LiveNetwork) liveCtx(h graph.HostID) *Context {
	return &Context{live: ln, host: h}
}
