package sim

import (
	"testing"

	"validity/internal/graph"
)

// echoHandler floods a single token once: on Start at host 0 it sends to
// all neighbors; every host forwards the first copy it sees.
type echoHandler struct {
	id       graph.HostID
	initiate bool
	seen     bool
	seenAt   Time
}

func (e *echoHandler) Start(ctx *Context) {
	if e.initiate {
		e.seen = true
		ctx.SendAll("token")
	}
}

func (e *echoHandler) Receive(ctx *Context, msg Message) {
	if e.seen {
		return
	}
	e.seen = true
	e.seenAt = ctx.Now()
	ctx.SendAllExcept(msg.From, "token")
}

func (e *echoHandler) Timer(ctx *Context, tag int) {}

func line(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID(i+1))
	}
	return g
}

func setupFlood(g *graph.Graph) (*Network, []*echoHandler) {
	nw := NewNetwork(Config{Graph: g, Seed: 1})
	hs := make([]*echoHandler, g.Len())
	for i := range hs {
		hs[i] = &echoHandler{id: graph.HostID(i), initiate: i == 0}
		nw.SetHandler(graph.HostID(i), hs[i])
	}
	return nw, hs
}

func TestFloodReachesAllAtBFSDistance(t *testing.T) {
	g := line(6)
	nw, hs := setupFlood(g)
	nw.Run(100)
	for i, h := range hs {
		if !h.seen {
			t.Fatalf("host %d never saw token", i)
		}
		if i > 0 && h.seenAt != Time(i) {
			t.Fatalf("host %d saw token at %d, want %d (one tick per hop)", i, h.seenAt, i)
		}
	}
}

func TestFailedHostDropsInFlightMessages(t *testing.T) {
	g := line(3)
	nw, hs := setupFlood(g)
	nw.FailAt(1, 1) // fails exactly when the token would arrive
	nw.Run(100)
	if hs[1].seen {
		t.Fatal("failed host processed a message")
	}
	if hs[2].seen {
		t.Fatal("host behind failure should not see token")
	}
	if nw.Stats().MessagesDropped == 0 {
		t.Fatal("expected dropped messages")
	}
}

func TestFailureAfterForwardStillPropagates(t *testing.T) {
	g := line(3)
	nw, hs := setupFlood(g)
	nw.FailAt(1, 2) // host 1 receives at t=1, forwards; fails at t=2
	nw.Run(100)
	if !hs[2].seen {
		t.Fatal("token forwarded before failure should be delivered")
	}
}

func TestCommunicationCostPointToPoint(t *testing.T) {
	// Star with hub 0 and 4 leaves: Start sends 4; each leaf echoes back
	// to everyone except sender (leaves have only the hub) = 0 sends.
	g := graph.New(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, graph.HostID(i))
	}
	nw, _ := setupFlood(g)
	st := nw.Run(100)
	if st.MessagesSent != 4 {
		t.Fatalf("messages sent = %d, want 4", st.MessagesSent)
	}
	if st.MessagesDelivered != 4 {
		t.Fatalf("messages delivered = %d, want 4", st.MessagesDelivered)
	}
}

func TestWirelessBroadcastCostsOne(t *testing.T) {
	g := graph.New(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, graph.HostID(i))
	}
	nw := NewNetwork(Config{Graph: g, Medium: MediumWireless, Seed: 1})
	hs := make([]*echoHandler, g.Len())
	for i := range hs {
		hs[i] = &echoHandler{initiate: i == 0}
		nw.SetHandler(graph.HostID(i), hs[i])
	}
	st := nw.Run(100)
	if st.MessagesSent != 1 {
		t.Fatalf("wireless broadcast cost = %d, want 1", st.MessagesSent)
	}
	if st.MessagesDelivered != 4 {
		t.Fatalf("wireless deliveries = %d, want 4", st.MessagesDelivered)
	}
	for i, h := range hs {
		if !h.seen {
			t.Fatalf("host %d missed wireless broadcast", i)
		}
	}
}

func TestTimeCostEqualsChainLength(t *testing.T) {
	g := line(5)
	nw, _ := setupFlood(g)
	st := nw.Run(100)
	if st.TimeCost != 4 {
		t.Fatalf("time cost = %d, want 4 (chain of 4 hops)", st.TimeCost)
	}
}

func TestPerTickTrace(t *testing.T) {
	g := line(4)
	nw, _ := setupFlood(g)
	st := nw.Run(100)
	// t=0: host0 sends 1; t=1: host1 forwards 1; t=2: host2 forwards 1;
	// t=3: host3 has nothing to forward (no neighbor except sender).
	want := []int64{1, 1, 1}
	if len(st.PerTickSent) < len(want) {
		t.Fatalf("per-tick trace too short: %v", st.PerTickSent)
	}
	for i, w := range want {
		if st.PerTickSent[i] != w {
			t.Fatalf("tick %d: sent %d, want %d (trace %v)", i, st.PerTickSent[i], w, st.PerTickSent)
		}
	}
}

func TestComputationCostPerHost(t *testing.T) {
	g := line(3)
	nw, _ := setupFlood(g)
	st := nw.Run(100)
	// host1 receives 1 (from 0) + possibly another from 2? Host 2 forwards
	// to all except sender -> host 2's only neighbor is 1, skipped. So
	// host1 processes 1, host2 processes 1, host0 processes 0.
	if st.PerHostProcessed[0] != 0 || st.PerHostProcessed[1] != 1 || st.PerHostProcessed[2] != 1 {
		t.Fatalf("per-host processed = %v", st.PerHostProcessed)
	}
	if st.MaxComputation() != 1 {
		t.Fatalf("max computation = %d, want 1", st.MaxComputation())
	}
	h := st.ComputationHistogram()
	if h[0] != 1 || h[1] != 2 {
		t.Fatalf("computation histogram = %v", h)
	}
}

func TestTimersFireInOrderAndNotOnDeadHosts(t *testing.T) {
	g := line(2)
	nw := NewNetwork(Config{Graph: g, Seed: 1})
	var fired []int
	th := &timerHandler{onTimer: func(tag int) { fired = append(fired, tag) }}
	nw.SetHandler(0, th)
	nw.SetHandler(1, th)
	ctxSetup := &setupTimers{}
	_ = ctxSetup
	// Schedule timers directly through a handler Start.
	th.onStart = func(ctx *Context) {
		if ctx.Self() == 0 {
			ctx.SetTimer(5, 100)
			ctx.SetTimer(3, 99)
		}
		if ctx.Self() == 1 {
			ctx.SetTimer(4, 200)
		}
	}
	nw.FailAt(1, 2) // host 1's timer at t=4 must not fire
	nw.Run(100)
	if len(fired) != 2 || fired[0] != 99 || fired[1] != 100 {
		t.Fatalf("timer firing order = %v, want [99 100]", fired)
	}
}

type timerHandler struct {
	onStart func(*Context)
	onTimer func(int)
}

func (h *timerHandler) Start(ctx *Context) {
	if h.onStart != nil {
		h.onStart(ctx)
	}
}
func (h *timerHandler) Receive(ctx *Context, msg Message) {}
func (h *timerHandler) Timer(ctx *Context, tag int)       { h.onTimer(tag) }

type setupTimers struct{}

func TestJoinStartsHandlerAtJoinTime(t *testing.T) {
	g := line(3)
	nw := NewNetwork(Config{Graph: g, Seed: 1})
	var startedAt Time = -1
	nw.SetHandler(2, &timerHandler{onStart: func(ctx *Context) { startedAt = ctx.Now() }})
	nw.SetInitiallyDead(2)
	nw.JoinAt(2, 7)
	nw.Run(100)
	if startedAt != 7 {
		t.Fatalf("joiner started at %d, want 7", startedAt)
	}
}

func TestDeterminismSameSeedSameStats(t *testing.T) {
	run := func() Stats {
		g := line(10)
		nw, _ := setupFlood(g)
		nw.FailAt(4, 3)
		return *nw.Run(50)
	}
	a, b := run(), run()
	if a.MessagesSent != b.MessagesSent || a.MessagesDelivered != b.MessagesDelivered ||
		a.TimeCost != b.TimeCost || a.MessagesDropped != b.MessagesDropped {
		t.Fatalf("non-deterministic runs: %+v vs %+v", a, b)
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	g := line(3)
	nw := NewNetwork(Config{Graph: g, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on send to non-neighbor")
		}
	}()
	nw.SetHandler(0, &timerHandler{onStart: func(ctx *Context) { ctx.Send(2, "x") }})
	nw.Run(10)
}

func TestValuesExposedToHandlers(t *testing.T) {
	g := line(2)
	vals := []int64{42, 7}
	var saw int64
	nw := NewNetwork(Config{Graph: g, Seed: 1, Values: vals})
	nw.SetHandler(0, &timerHandler{onStart: func(ctx *Context) { saw = ctx.Value() }})
	nw.Run(10)
	if saw != 42 {
		t.Fatalf("handler saw value %d, want 42", saw)
	}
	if nw.Value(1) != 7 {
		t.Fatalf("Value(1) = %d, want 7", nw.Value(1))
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	g := line(2)
	nw := NewNetwork(Config{Graph: g, Seed: 1})
	fired := false
	nw.SetHandler(0, &timerHandler{
		onStart: func(ctx *Context) { ctx.SetTimer(50, 1) },
		onTimer: func(tag int) { fired = true },
	})
	st := nw.Run(10)
	if fired {
		t.Fatal("timer beyond horizon fired")
	}
	if st.FinishTime != 10 {
		t.Fatalf("finish time = %d, want 10", st.FinishTime)
	}
}

func TestOnDeliverObserver(t *testing.T) {
	g := line(3)
	nw, _ := setupFlood(g)
	var observed int
	nw.OnDeliver = func(tm Time, msg Message) { observed++ }
	st := nw.Run(100)
	if int64(observed) != st.MessagesDelivered {
		t.Fatalf("observer saw %d, delivered %d", observed, st.MessagesDelivered)
	}
}
