package sim

import (
	"sync"
	"testing"
	"time"

	"validity/internal/graph"
)

// liveEcho is a concurrency-safe variant of echoHandler for the goroutine
// backend.
type liveEcho struct {
	mu       sync.Mutex
	initiate bool
	seen     bool
}

func (e *liveEcho) Start(ctx *Context) {
	if e.initiate {
		e.mu.Lock()
		e.seen = true
		e.mu.Unlock()
		ctx.SendAll("token")
	}
}

func (e *liveEcho) Receive(ctx *Context, msg Message) {
	e.mu.Lock()
	if e.seen {
		e.mu.Unlock()
		return
	}
	e.seen = true
	e.mu.Unlock()
	ctx.SendAllExcept(msg.From, "token")
}

func (e *liveEcho) Timer(ctx *Context, tag int) {}

func (e *liveEcho) sawToken() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seen
}

func TestLiveNetworkFloodReachesAll(t *testing.T) {
	g := line(8)
	ln := NewLiveNetwork(g, nil, time.Millisecond)
	hs := make([]*liveEcho, g.Len())
	for i := range hs {
		hs[i] = &liveEcho{initiate: i == 0}
		ln.SetHandler(graph.HostID(i), hs[i])
	}
	ln.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		all := true
		for _, h := range hs {
			if !h.sawToken() {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			ln.Stop()
			t.Fatal("live flood did not reach all hosts in time")
		}
		time.Sleep(time.Millisecond)
	}
	ln.Stop()
	if ln.MessagesSent() == 0 {
		t.Fatal("no messages recorded")
	}
}

func TestLiveNetworkKillBlocksPropagation(t *testing.T) {
	g := line(4)
	ln := NewLiveNetwork(g, nil, 2*time.Millisecond)
	hs := make([]*liveEcho, g.Len())
	for i := range hs {
		hs[i] = &liveEcho{initiate: i == 0}
		ln.SetHandler(graph.HostID(i), hs[i])
	}
	ln.Kill(1) // dead before start: token can never pass host 1
	ln.Start()
	time.Sleep(100 * time.Millisecond)
	ln.Stop()
	if hs[2].sawToken() || hs[3].sawToken() {
		t.Fatal("token crossed a killed host")
	}
}

func TestLiveNetworkStopIdempotent(t *testing.T) {
	g := line(2)
	ln := NewLiveNetwork(g, nil, time.Millisecond)
	ln.Start()
	ln.Stop()
	ln.Stop() // must not panic or deadlock
}

func TestLiveNetworkTimer(t *testing.T) {
	g := line(2)
	ln := NewLiveNetwork(g, nil, time.Millisecond)
	done := make(chan int, 1)
	ln.SetHandler(0, &timerHandler{
		onStart: func(ctx *Context) { ctx.SetTimer(ctx.Now()+5, 7) },
		onTimer: func(tag int) {
			select {
			case done <- tag:
			default:
			}
		},
	})
	ln.Start()
	select {
	case tag := <-done:
		if tag != 7 {
			t.Fatalf("timer tag = %d, want 7", tag)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("live timer never fired")
	}
	ln.Stop()
}
