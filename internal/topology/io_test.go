package topology

import (
	"bytes"
	"strings"
	"testing"

	"validity/internal/graph"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := NewGnutella(500, 1)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d hosts, %d/%d edges",
			g2.Len(), g.Len(), g2.NumEdges(), g.NumEdges())
	}
	same := true
	g.Edges(func(a, b graph.HostID) bool {
		if !g2.HasEdge(a, b) {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Fatal("edge sets differ after round trip")
	}
}

func TestLoadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n0 1\n  1 2  \n# trailing\n"
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 || g.NumEdges() != 2 {
		t.Fatalf("hosts=%d edges=%d", g.Len(), g.NumEdges())
	}
}

func TestLoadEdgeListDuplicatesAndLoops(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 0\n0 0\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 (dups and loops dropped)", g.NumEdges())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	if _, err := LoadEdgeList(strings.NewReader("0 x\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadEdgeList(strings.NewReader("-1 2\n")); err == nil {
		t.Fatal("negative ID accepted")
	}
	g, err := LoadEdgeList(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 {
		t.Fatalf("empty input: %d hosts", g.Len())
	}
}
