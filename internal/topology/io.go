package topology

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"validity/internal/graph"
)

// LoadEdgeList reads a whitespace-separated edge list ("a b" per line,
// '#'-comments and blank lines ignored) and returns the graph. Host IDs
// must be non-negative; the graph is sized by the largest ID seen.
// Duplicate edges and self-loops are dropped, matching the generators'
// semantics.
//
// This is the escape hatch for DESIGN.md substitution G1: if the real
// 2001 Gnutella crawl (or any measured topology) becomes available as an
// edge list, it can be loaded here and driven through every experiment
// unchanged (cmd/netsim -topology-file).
func LoadEdgeList(r io.Reader) (*graph.Graph, error) {
	type edge struct{ a, b int }
	var edges []edge
	maxID := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var a, b int
		if _, err := fmt.Sscanf(line, "%d %d", &a, &b); err != nil {
			return nil, fmt.Errorf("topology: line %d: %q: %w", lineNo, line, err)
		}
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("topology: line %d: negative host ID", lineNo)
		}
		if a > maxID {
			maxID = a
		}
		if b > maxID {
			maxID = b
		}
		edges = append(edges, edge{a, b})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: reading edge list: %w", err)
	}
	g := graph.New(maxID + 1)
	for _, e := range edges {
		g.AddEdge(graph.HostID(e.a), graph.HostID(e.b))
	}
	g.SortAdjacency()
	return g, nil
}

// WriteEdgeList writes g as "a b" lines with a < b, the format
// LoadEdgeList reads.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	var writeErr error
	g.Edges(func(a, b graph.HostID) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", a, b); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}
