package topology

import (
	"math"
	"testing"

	"validity/internal/graph"
)

func TestRandomConnectedAndDegree(t *testing.T) {
	g := NewRandom(2000, 5.0, 1)
	if !g.IsConnected(nil) {
		t.Fatal("random graph disconnected")
	}
	if d := g.AvgDegree(); math.Abs(d-5.0) > 0.3 {
		t.Fatalf("avg degree = %.2f, want ≈ 5", d)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := NewRandom(500, 5, 42)
	b := NewRandom(500, 5, 42)
	c := NewRandom(500, 5, 43)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	same := true
	a.Edges(func(x, y graph.HostID) bool {
		if !b.HasEdge(x, y) {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Fatal("same seed produced different edge sets")
	}
	diff := false
	a.Edges(func(x, y graph.HostID) bool {
		if !c.HasEdge(x, y) {
			diff = true
			return false
		}
		return true
	})
	if !diff {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestRandomTinyGraphs(t *testing.T) {
	for n := 0; n < 4; n++ {
		g := NewRandom(n, 5, 1)
		if g.Len() != n {
			t.Fatalf("n=%d: got %d hosts", n, g.Len())
		}
	}
}

// Regression: an average-degree target above the complete graph must
// terminate (it used to spin forever retrying duplicate edges) and yield
// the complete graph.
func TestRandomDenseTargetCapped(t *testing.T) {
	g := NewRandom(4, 100, 1)
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want complete graph's 6", g.NumEdges())
	}
	g2 := NewRandom(2, 5, 1)
	if g2.NumEdges() != 1 {
		t.Fatalf("2-host graph edges = %d, want 1", g2.NumEdges())
	}
}

func TestPowerLawConnectedAndSkewed(t *testing.T) {
	g := NewPowerLaw(5000, 7)
	if !g.IsConnected(nil) {
		t.Fatal("power-law graph disconnected")
	}
	// Heavy tail: the max degree should dwarf the average.
	if g.MaxDegree() < 5*int(g.AvgDegree()) {
		t.Fatalf("max degree %d not heavy-tailed vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	// Most hosts should sit at the attachment minimum (degree 2 or 3).
	hist := g.DegreeHistogram()
	low := hist[2] + hist[3]
	if low < g.Len()/2 {
		t.Fatalf("only %d/%d hosts at low degree; distribution not skewed", low, g.Len())
	}
}

func TestPowerLawTailDecay(t *testing.T) {
	// A power-law with gamma ~ 3 must have ccdf(2d) substantially below
	// ccdf(d). Check a crude decade decay rather than fitting gamma.
	g := NewPowerLaw(20000, 3)
	hist := g.DegreeHistogram()
	ccdf := func(d int) float64 {
		n := 0
		for deg, cnt := range hist {
			if deg >= d {
				n += cnt
			}
		}
		return float64(n) / float64(g.Len())
	}
	if ccdf(8) <= ccdf(32) {
		t.Fatalf("degree tail not decaying: ccdf(8)=%.4f ccdf(32)=%.4f", ccdf(8), ccdf(32))
	}
	if ccdf(32) == 0 {
		t.Fatal("no high-degree hubs at all; not a power law")
	}
}

func TestGridStructure(t *testing.T) {
	g := NewGrid(10, 10)
	if g.Len() != 100 {
		t.Fatalf("grid size = %d, want 100", g.Len())
	}
	if !g.IsConnected(nil) {
		t.Fatal("grid disconnected")
	}
	// Interior host: 8 neighbors; corner: 3; edge: 5.
	corner := graph.HostID(0)
	if g.Degree(corner) != 3 {
		t.Fatalf("corner degree = %d, want 3", g.Degree(corner))
	}
	edge := graph.HostID(5) // row 0, col 5
	if g.Degree(edge) != 5 {
		t.Fatalf("edge degree = %d, want 5", g.Degree(edge))
	}
	interior := graph.HostID(5*10 + 5)
	if g.Degree(interior) != 8 {
		t.Fatalf("interior degree = %d, want 8", g.Degree(interior))
	}
	// Diameter of an n×n 8-neighborhood grid is n-1 (diagonal moves).
	if d := g.Diameter(nil); d != 9 {
		t.Fatalf("grid diameter = %d, want 9", d)
	}
}

func TestGnutellaProperties(t *testing.T) {
	g := NewGnutella(10000, 5)
	if !g.IsConnected(nil) {
		t.Fatal("gnutella-like graph disconnected")
	}
	// Small world: diameter around the measured 12 for 10K hosts (the
	// measured value is for 39K; allow a generous band).
	d := g.DiameterSampled(3, nil)
	if d < 4 || d > 16 {
		t.Fatalf("gnutella diameter = %d, want small-world (4..16)", d)
	}
	// Skewed degrees with a floor around 3.
	if g.MaxDegree() < 30 {
		t.Fatalf("max degree = %d; expected hubs", g.MaxDegree())
	}
	hist := g.DegreeHistogram()
	if hist[0] != 0 {
		t.Fatal("isolated hosts present")
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, k := range []Kind{Random, PowerLaw, Grid, Gnutella} {
		g := Generate(k, 400, 1)
		if g.Len() == 0 {
			t.Fatalf("%v: empty graph", k)
		}
		if !g.IsConnected(nil) {
			t.Fatalf("%v: disconnected", k)
		}
	}
	// Grid rounds down to a perfect square.
	g := Generate(Grid, 10000, 1)
	if g.Len() != 10000 {
		t.Fatalf("grid 10000 -> %d hosts", g.Len())
	}
	g = Generate(Grid, 10050, 1)
	if g.Len() != 10000 {
		t.Fatalf("grid 10050 -> %d hosts, want 10000", g.Len())
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"random": Random, "power-law": PowerLaw, "powerlaw": PowerLaw,
		"grid": Grid, "gnutella": Gnutella,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("mesh"); err == nil {
		t.Fatal("ParseKind should reject unknown names")
	}
	if Random.String() != "random" || Kind(99).String() == "" {
		t.Fatal("Kind.String misbehaves")
	}
}

func TestKindStringAll(t *testing.T) {
	for _, k := range []Kind{Random, PowerLaw, Grid, Gnutella} {
		if k.String() == "" {
			t.Fatalf("empty name for kind %d", int(k))
		}
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Fatalf("round-trip failed for %v", k)
		}
	}
}
