// Package topology generates the four network topologies of the paper's
// evaluation (§6.1):
//
//   - Random: |H| hosts with uniformly random edges tuned to average
//     degree 5.
//   - PowerLaw: a power-law degree distribution (γ ≈ 2.9) built by
//     preferential attachment.
//   - Grid: a sensor field of hosts on a 100×100 grid where each host's
//     neighbors are the hosts in the enclosing 2-unit square (the 8
//     surrounding cells).
//   - Gnutella: the paper uses a 2001 crawl with |H| = 39,046 which is not
//     available; Gnutella here is a synthetic stand-in reproducing the
//     published structural properties of that snapshot (skewed degrees,
//     small diameter, one giant component) — see DESIGN.md substitution G1.
//
// All generators are deterministic for a given seed, always return a
// connected graph (they add a uniform random spanning backbone first where
// needed), and sort adjacency lists so simulations are reproducible.
package topology

import (
	"fmt"
	"math/rand"

	"validity/internal/graph"
)

// Kind names a generator.
type Kind int

const (
	Random Kind = iota
	PowerLaw
	Grid
	Gnutella
)

var kindNames = map[Kind]string{
	Random:   "random",
	PowerLaw: "power-law",
	Grid:     "grid",
	Gnutella: "gnutella",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a name ("random", "power-law", "powerlaw", "grid",
// "gnutella") to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "random":
		return Random, nil
	case "power-law", "powerlaw":
		return PowerLaw, nil
	case "grid":
		return Grid, nil
	case "gnutella":
		return Gnutella, nil
	}
	return 0, fmt.Errorf("topology: unknown kind %q", s)
}

// Generate builds a topology of the given kind with n hosts. For Grid, n
// is rounded down to a perfect square (the paper uses 100×100 = 10K).
func Generate(k Kind, n int, seed int64) *graph.Graph {
	switch k {
	case Random:
		return NewRandom(n, 5.0, seed)
	case PowerLaw:
		return NewPowerLaw(n, seed)
	case Grid:
		side := isqrt(n)
		return NewGrid(side, side)
	case Gnutella:
		return NewGnutella(n, seed)
	default:
		panic(fmt.Sprintf("topology: unknown kind %d", int(k)))
	}
}

func isqrt(n int) int {
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// spanningBackbone wires host i (i ≥ 1) to a uniformly random earlier host,
// guaranteeing connectivity with exactly n−1 edges.
func spanningBackbone(g *graph.Graph, rng *rand.Rand) {
	for i := 1; i < g.Len(); i++ {
		g.AddEdge(graph.HostID(i), graph.HostID(rng.Intn(i)))
	}
}

// NewRandom builds a connected uniform random graph with the requested
// average degree (§6.1 uses 5). It lays a random spanning backbone and then
// adds uniform random edges until 2|E|/|H| reaches avgDegree.
func NewRandom(n int, avgDegree float64, seed int64) *graph.Graph {
	if n < 2 {
		return graph.New(n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	spanningBackbone(g, rng)
	target := int(avgDegree * float64(n) / 2)
	// A complete graph bounds what any target can reach; without this cap
	// small n would loop forever chasing an impossible edge count.
	if max := n * (n - 1) / 2; target > max {
		target = max
	}
	for g.NumEdges() < target {
		a := graph.HostID(rng.Intn(n))
		b := graph.HostID(rng.Intn(n))
		g.AddEdge(a, b)
	}
	g.SortAdjacency()
	return g
}

// NewPowerLaw builds a connected graph whose degree distribution has a
// power-law tail, via preferential attachment: each new host attaches m=2
// edges to existing hosts chosen proportionally to their current degree.
// Barabási–Albert graphs have exponent ≈ 3, matching the paper's γ = 2.9
// synthetic topology.
func NewPowerLaw(n int, seed int64) *graph.Graph {
	const m = 2 // edges per new host; avg degree ≈ 2m = 4
	if n < 2 {
		return graph.New(n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	// Repeated-endpoints list: choosing uniformly from it is degree-
	// proportional choice.
	targets := make([]graph.HostID, 0, 2*m*n)
	g.AddEdge(0, 1)
	targets = append(targets, 0, 1)
	for v := 2; v < n; v++ {
		added := 0
		for attempts := 0; added < m && attempts < 10*m; attempts++ {
			u := targets[rng.Intn(len(targets))]
			if g.AddEdge(graph.HostID(v), u) {
				targets = append(targets, graph.HostID(v), u)
				added++
			}
		}
		if added == 0 {
			// Degenerate fallback keeps the graph connected.
			u := graph.HostID(rng.Intn(v))
			g.AddEdge(graph.HostID(v), u)
			targets = append(targets, graph.HostID(v), u)
		}
	}
	g.SortAdjacency()
	return g
}

// NewGrid builds a rows×cols sensor grid. A host's neighbors are all hosts
// in the enclosing 2-unit square: the 8 surrounding grid cells (§6.1).
func NewGrid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) graph.HostID { return graph.HostID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					nr, nc := r+dr, c+dc
					if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
						continue
					}
					g.AddEdge(id(r, c), id(nr, nc))
				}
			}
		}
	}
	g.SortAdjacency()
	return g
}

// GnutellaSize is the size of the paper's Gnutella crawl (§6.1).
const GnutellaSize = 39046

// NewGnutella builds a synthetic Gnutella-like overlay (substitution G1 in
// DESIGN.md): preferential attachment with a minimum-degree floor of 3
// (Gnutella clients kept several open connections), plus a sprinkling of
// uniform random "long link" edges reproducing the measured mixing of the
// 2001 snapshots. The result has a skewed degree tail, a single giant
// component, and a small diameter comparable to the measured D = 12.
func NewGnutella(n int, seed int64) *graph.Graph {
	if n < 4 {
		return NewRandom(n, 3, seed)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	targets := make([]graph.HostID, 0, 8*n)
	// Seed clique of 4 ultrapeer-like hosts.
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.AddEdge(graph.HostID(a), graph.HostID(b))
			targets = append(targets, graph.HostID(a), graph.HostID(b))
		}
	}
	for v := 4; v < n; v++ {
		// Degree floor of 3 preferential links.
		added := 0
		for attempts := 0; added < 3 && attempts < 30; attempts++ {
			u := targets[rng.Intn(len(targets))]
			if g.AddEdge(graph.HostID(v), u) {
				targets = append(targets, graph.HostID(v), u)
				added++
			}
		}
		if added == 0 {
			u := graph.HostID(rng.Intn(v))
			g.AddEdge(graph.HostID(v), u)
			targets = append(targets, graph.HostID(v), u)
		}
	}
	// ~5% extra uniform random edges: measured Gnutella graphs mix faster
	// than pure preferential attachment.
	extra := n / 20
	for e := 0; e < extra; e++ {
		g.AddEdge(graph.HostID(rng.Intn(n)), graph.HostID(rng.Intn(n)))
	}
	g.SortAdjacency()
	return g
}
