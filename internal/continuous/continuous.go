// Package continuous implements Continuous Single-Site Validity (§4.2):
// long-running aggregate queries whose per-window results v_t each equal
// q(H) for some H between the window's own H_C and H_U, computed over the
// recent interval [t−W, t].
//
// The naive adaptation of one-time Single-Site Validity to a long-running
// query degenerates — over a long [0, t] the stable set H_C empties out in
// any churning network (§4.2) — so the driver re-executes a one-time valid
// protocol once per window of length W ≥ 2D̂δ and attaches per-window
// oracle bounds. The window results stream to the caller in order.
package continuous

import (
	"fmt"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/oracle"
	"validity/internal/protocol"
	"validity/internal/sim"
)

// Config describes a continuous query.
type Config struct {
	// Graph is the (initial) topology.
	Graph *graph.Graph
	// Values are per-host attribute values.
	Values []int64
	// Hq is the querying (monitoring) host; it must outlive the run.
	Hq graph.HostID
	// Kind is the aggregate.
	Kind agg.Kind
	// DHat is the stable-diameter overestimate used by every window.
	DHat int
	// Params sizes FM sketches for count/sum/avg.
	Params agg.Params
	// WindowLen is W in ticks; it must be at least 2·D̂ (the §4.2
	// computability bound W ≥ max D_i·δ). 0 means exactly 2·D̂.
	WindowLen sim.Time
	// Windows is the number of windows to run.
	Windows int
	// Schedule lists membership events — departures and joins — in
	// absolute time across the whole run.
	Schedule churn.Timeline
	// Medium selects message accounting.
	Medium sim.Medium
	// Seed drives protocol randomness (per-window derived).
	Seed int64
}

func (c *Config) validate() error {
	if c.Graph == nil {
		return fmt.Errorf("continuous: nil graph")
	}
	if len(c.Values) != c.Graph.Len() {
		return fmt.Errorf("continuous: %d values for %d hosts", len(c.Values), c.Graph.Len())
	}
	if c.DHat < 1 {
		return fmt.Errorf("continuous: D̂ must be ≥ 1")
	}
	if c.Windows < 1 {
		return fmt.Errorf("continuous: need at least one window")
	}
	if c.WindowLen == 0 {
		c.WindowLen = sim.Time(2 * c.DHat)
	}
	if c.WindowLen < sim.Time(2*c.DHat) {
		return fmt.Errorf("continuous: window %d shorter than 2·D̂ = %d (§4.2 bound)",
			c.WindowLen, 2*c.DHat)
	}
	ix := c.Schedule.Index()
	if ft := ix.FailTime(c.Hq); ft >= 0 {
		return fmt.Errorf("continuous: querying host %d scheduled to fail at %d", c.Hq, ft)
	}
	if !ix.InitialMember(c.Hq) {
		return fmt.Errorf("continuous: querying host %d scheduled as a late joiner; it must be present for the whole run", c.Hq)
	}
	return nil
}

// WindowResult is one window's outcome.
type WindowResult struct {
	// Index is the 0-based window number.
	Index int
	// Start and End delimit the window [Start, End) in absolute time.
	Start, End sim.Time
	// Value is the result declared at h_q for this window.
	Value float64
	// Lower and Upper are this window's q(H_C) / q(H_U) bounds.
	Lower, Upper float64
	// HC and HU are the bound set sizes.
	HC, HU int
	// AliveAtStart is |H_{Start}|.
	AliveAtStart int
	// Valid reports whether Value satisfies this window's Continuous
	// Single-Site Validity (exactly for min/max, within the FM factor
	// otherwise).
	Valid bool
	// Messages is the window's communication cost.
	Messages int64
}

// Run executes the continuous query and returns one result per window.
func Run(cfg Config) ([]WindowResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ix := cfg.Schedule.Index()

	results := make([]WindowResult, 0, cfg.Windows)
	for w := 0; w < cfg.Windows; w++ {
		start := sim.Time(w) * cfg.WindowLen
		end := start + cfg.WindowLen

		// Fresh per-window simulation: hosts absent at the window's open
		// removed up front, within-window membership transitions applied
		// at window-relative times — departures as failures, arrivals as
		// joins (a mid-window joiner participates from its join tick; a
		// rebirth resumes the same host).
		nw := sim.NewNetwork(sim.Config{
			Graph:  cfg.Graph,
			Medium: cfg.Medium,
			Seed:   cfg.Seed + int64(w)*1_000_003,
			Values: cfg.Values,
		})
		alive := 0
		for h := 0; h < cfg.Graph.Len(); h++ {
			id := graph.HostID(h)
			if ix.AliveAt(id, start) {
				alive++
			} else {
				nw.SetInitiallyDead(id)
			}
			for _, e := range ix.HostEvents(id) {
				if e.T <= start || e.T > end {
					continue // the window's opening state covers these
				}
				if e.Kind == churn.Join {
					nw.JoinAt(id, e.T-start)
				} else {
					nw.FailAt(id, e.T-start)
				}
			}
		}

		q := protocol.Query{Kind: cfg.Kind, Hq: cfg.Hq, DHat: cfg.DHat, Params: cfg.Params}
		wf := protocol.NewWildfire(q)
		v, stats, err := protocol.Run(wf, nw)
		if err != nil {
			return nil, fmt.Errorf("window %d: %w", w, err)
		}

		// Window-local oracle bounds: H_C is the stable component of h_q
		// among hosts present throughout the window; H_U is everyone who
		// is a member at some instant of it — alive at its start or
		// arriving before it closes. The same computation judges the live
		// engine's windows (internal/stream).
		b := oracle.ComputeInterval(cfg.Graph, cfg.Values, cfg.Hq, ix, start, end, cfg.Kind)
		res := WindowResult{
			Index:        w,
			Start:        start,
			End:          end,
			Value:        v,
			Lower:        b.LowerValue,
			Upper:        b.UpperValue,
			HC:           len(b.HC),
			HU:           len(b.HU),
			AliveAtStart: alive,
			Messages:     stats.MessagesSent,
		}
		res.Valid = windowValid(cfg.Kind, v, res.Lower, res.Upper, cfg.Params.Vectors)
		results = append(results, res)
	}
	return results, nil
}

// windowValid mirrors oracle.Bounds.Valid/ValidFactor for per-window
// bounds.
func windowValid(kind agg.Kind, v, lower, upper float64, vectors int) bool {
	b := oracle.Bounds{LowerValue: lower, UpperValue: upper, Kind: kind}
	if kind.DuplicateSensitive() {
		f := 6.0
		if vectors >= 16 {
			f = 4.0
		}
		return b.ValidFactor(v, f)
	}
	return b.Valid(v, 1e-9)
}
