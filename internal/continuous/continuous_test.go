package continuous

import (
	"math/rand"
	"testing"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

func baseConfig(t *testing.T) Config {
	t.Helper()
	g := topology.NewGnutella(400, 1)
	return Config{
		Graph:   g,
		Values:  zipfval.Default(1).Values(g.Len()),
		Hq:      0,
		Kind:    agg.Max,
		DHat:    g.DiameterSampled(2, nil) + 2,
		Windows: 4,
		Params:  agg.Params{Vectors: 16, Bits: 32},
		Seed:    1,
	}
}

func TestValidation(t *testing.T) {
	cfg := baseConfig(t)
	bad := cfg
	bad.Graph = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad = cfg
	bad.Values = bad.Values[:1]
	if _, err := Run(bad); err == nil {
		t.Fatal("short values accepted")
	}
	bad = cfg
	bad.DHat = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero D̂ accepted")
	}
	bad = cfg
	bad.Windows = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero windows accepted")
	}
	bad = cfg
	bad.WindowLen = 3 // < 2D̂
	if _, err := Run(bad); err == nil {
		t.Fatal("window below 2·D̂ accepted (§4.2 computability bound)")
	}
	bad = cfg
	bad.Schedule = churn.Schedule{{H: bad.Hq, T: 5}}
	if _, err := Run(bad); err == nil {
		t.Fatal("failing h_q accepted")
	}
}

func TestNoChurnAllWindowsEqualExact(t *testing.T) {
	cfg := baseConfig(t)
	truth := agg.Exact(agg.Max, cfg.Values)
	rs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("windows = %d", len(rs))
	}
	for _, r := range rs {
		if r.Value != truth {
			t.Fatalf("window %d: max %v != %v", r.Index, r.Value, truth)
		}
		if !r.Valid {
			t.Fatalf("window %d invalid without churn", r.Index)
		}
		if r.HC != cfg.Graph.Len() || r.HU != cfg.Graph.Len() {
			t.Fatalf("window %d: HC=%d HU=%d", r.Index, r.HC, r.HU)
		}
	}
}

func TestWindowsShrinkWithChurnAndStayValid(t *testing.T) {
	cfg := baseConfig(t)
	horizon := sim.Time(cfg.Windows) * sim.Time(2*cfg.DHat)
	cfg.Schedule = churn.UniformRemoval(cfg.Graph.Len(), 120, cfg.Hq, 0, horizon,
		rand.New(rand.NewSource(2)))
	rs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].AliveAtStart > rs[i-1].AliveAtStart {
			t.Fatalf("alive population grew between windows %d→%d", i-1, i)
		}
	}
	first, last := rs[0], rs[len(rs)-1]
	if last.HU >= first.HU {
		t.Fatalf("H_U did not shrink across windows: %d → %d", first.HU, last.HU)
	}
	for _, r := range rs {
		if !r.Valid {
			t.Fatalf("window %d: max %v outside window bounds [%v,%v]",
				r.Index, r.Value, r.Lower, r.Upper)
		}
		if r.Start != sim.Time(r.Index)*sim.Time(2*cfg.DHat) {
			t.Fatalf("window %d misaligned: start %d", r.Index, r.Start)
		}
	}
}

// Per-window bounds are the whole point (§4.2): the late windows' H_C
// must reflect only the current population, not the full initial one.
func TestPerWindowBoundsTrackPopulation(t *testing.T) {
	// Chain: failures cut the tail progressively.
	n := 40
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID(i+1))
	}
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i + 1)
	}
	dHat := n + 1
	win := sim.Time(2 * dHat)
	cfg := Config{
		Graph: g, Values: values, Hq: 0, Kind: agg.Max,
		DHat: dHat, Windows: 3, Params: agg.Params{Vectors: 8, Bits: 32},
		// Host 20 dies during window 1 (cutting 20.. off), host 10 during
		// window 2.
		Schedule: churn.Schedule{
			{H: 20, T: win + 2},
			{H: 10, T: 2*win + 2},
		},
		Seed: 3,
	}
	rs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Window 0: everything stable; max = 40 exactly.
	if rs[0].Value != 40 || rs[0].Lower != 40 {
		t.Fatalf("window 0: value %v lower %v, want 40/40", rs[0].Value, rs[0].Lower)
	}
	// Window 1: host 20 fails mid-window ⇒ H_C = {0..19}, lower = 20;
	// upper still 40 (alive at start).
	if rs[1].Lower != 20 || rs[1].Upper != 40 {
		t.Fatalf("window 1 bounds [%v,%v], want [20,40]", rs[1].Lower, rs[1].Upper)
	}
	if !rs[1].Valid {
		t.Fatalf("window 1: value %v invalid", rs[1].Value)
	}
	// Window 2: host 20 is gone but 21..39 are alive (merely unreachable
	// — H_U counts alive hosts regardless of reachability), so upper
	// stays 40; host 10 fails mid-window ⇒ H_C = {0..9}, lower = 10.
	if rs[2].Lower != 10 || rs[2].Upper != 40 {
		t.Fatalf("window 2 bounds [%v,%v], want [10,40]", rs[2].Lower, rs[2].Upper)
	}
	if rs[2].HU != 39 {
		t.Fatalf("window 2 |H_U| = %d, want 39 (only host 20 dead at start)", rs[2].HU)
	}
	if !rs[2].Valid {
		t.Fatalf("window 2: value %v invalid", rs[2].Value)
	}
}

func TestCountWindowsValidWithinFactor(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Kind = agg.Count
	horizon := sim.Time(cfg.Windows) * sim.Time(2*cfg.DHat)
	cfg.Schedule = churn.UniformRemoval(cfg.Graph.Len(), 80, cfg.Hq, 0, horizon,
		rand.New(rand.NewSource(4)))
	rs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if !r.Valid {
			t.Fatalf("window %d: count %v outside factor band [%v,%v]",
				r.Index, r.Value, r.Lower, r.Upper)
		}
		if r.Messages == 0 {
			t.Fatalf("window %d: no traffic", r.Index)
		}
	}
}
