package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the -log-level grammar (debug | info | warn | error) to
// a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug | info | warn | error)", s)
}

// NewLogger returns a text slog logger writing to w at the given level,
// the shared diagnostic channel of the daemon and the commands. It lives
// on stderr so machine-parsed result lines on stdout stay byte-stable.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}
