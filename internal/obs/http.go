package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves reg in Prometheus text exposition format. A nil
// registry serves an empty body, so wiring is unconditional.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteTo(w)
	})
}

// SnapshotHandler serves reg as a JSON RegistrySnapshot on /debug/snapshot
// — the typed dump the fleet collector scrapes instead of re-parsing the
// text exposition. A nil registry serves an empty snapshot.
func SnapshotHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
}

// TraceHandler serves tr's event rings on /debug/trace: with ?q=ID, one
// query's QueryTrace (an empty event list when this process never traced
// the query — on a sharded fleet that is an answer, not an error);
// without, the full TraceSnapshot. A malformed q is a 400.
func TraceHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		qparam := r.URL.Query().Get("q")
		var payload any
		if qparam == "" {
			payload = tr.Snapshot()
		} else {
			q, err := strconv.ParseInt(qparam, 10, 64)
			if err != nil {
				http.Error(w, "bad query id: "+qparam, http.StatusBadRequest)
				return
			}
			payload = tr.QueryTrace(q)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
}
