package obs

import "net/http"

// MetricsHandler serves reg in Prometheus text exposition format. A nil
// registry serves an empty body, so wiring is unconditional.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteTo(w)
	})
}
