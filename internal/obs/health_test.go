package obs

import (
	"strings"
	"testing"
)

// TestRegisterRuntimeHealth checks the process gauges land on the metrics
// exposition with sane values: a live process has goroutines and heap in
// use.
func TestRegisterRuntimeHealth(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeHealth(r)
	RegisterRuntimeHealth(r) // idempotent: re-registration must not panic
	RegisterRuntimeHealth(nil)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, name := range []string{"process_goroutines", "process_heap_inuse_bytes"} {
		if !strings.Contains(body, name+" ") {
			t.Fatalf("/metrics missing %s:\n%s", name, body)
		}
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, name+" ") {
				if strings.HasSuffix(strings.TrimSpace(line), " 0") {
					t.Fatalf("%s sampled as zero in a live process: %q", name, line)
				}
			}
		}
	}
}
