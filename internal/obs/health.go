package obs

import "runtime"

// RegisterRuntimeHealth registers process-level health gauges on r,
// sampled at scrape time: the live goroutine count and the heap bytes in
// use. These are the two numbers that expose a scheduler regression at a
// glance — a goroutine-per-host engine shows up as process_goroutines
// tracking the fleet size, a buffer leak as heap growth between scrapes —
// without attaching a profiler to a running fleet. Safe to call more than
// once per registry (registration is idempotent) and with r == nil
// (no-op).
func RegisterRuntimeHealth(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("process_goroutines", "Live goroutines in this process.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("process_heap_inuse_bytes", "Heap bytes in spans in use (runtime.MemStats.HeapInuse).", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapInuse)
	})
}
