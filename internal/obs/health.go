package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// processStart anchors process_uptime_seconds: package init runs once,
// early, so uptime is measured from (very near) process start no matter
// when the first registry is built.
var processStart = time.Now()

// buildRevision digs the VCS revision out of the binary's build info
// ("unknown" when the binary was built outside a checkout, e.g. go test).
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			return s.Value
		}
	}
	return "unknown"
}

// RegisterRuntimeHealth registers process-level health gauges on r,
// sampled at scrape time: the live goroutine count, the heap bytes in
// use, the process uptime, and a constant build_info series carrying the
// Go version and VCS revision as labels. Goroutines and heap are the two
// numbers that expose a scheduler regression at a glance — a
// goroutine-per-host engine shows up as process_goroutines tracking the
// fleet size, a buffer leak as heap growth between scrapes — and
// build_info plus uptime answer the first two questions asked of any
// misbehaving fleet member: what is it running, and since when. Safe to
// call more than once per registry (registration is idempotent) and with
// r == nil (no-op).
func RegisterRuntimeHealth(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("process_goroutines", "Live goroutines in this process.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("process_heap_inuse_bytes", "Heap bytes in spans in use (runtime.MemStats.HeapInuse).", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapInuse)
	})
	r.GaugeFunc("process_uptime_seconds", "Seconds since this process started.", func() float64 {
		return time.Since(processStart).Seconds()
	})
	r.GaugeFunc("build_info", "Build metadata carried as labels; the value is always 1.",
		func() float64 { return 1 },
		"goversion="+runtime.Version(), "revision="+buildRevision())
}
