// Package fleet is the cross-process half of the observability plane:
// a collector that scrapes every fleet member's /debug/snapshot and
// /debug/trace endpoints concurrently and merges the results into one
// fleet-wide view.
//
// Two merges matter and both are easy to get wrong:
//
//   - Histograms merge by bucket, not by quantile. Summing per-process
//     bucket counts and reading the quantile off the merged buckets
//     (obs.BucketQuantile) yields a real fleet-wide p99; averaging
//     per-process p99s does not.
//   - Traces merge causally. Per-process query clocks arm at first
//     traffic, so two processes can stamp causally-ordered events with
//     the same tick; the wire frame's chain depth breaks those ties,
//     wall clocks break the rest.
//
// The collector tolerates partial failure: a peer that is down or slow
// contributes an Err entry instead of failing the scrape, and the
// merged exposition reports per-peer liveness as fleet_peer_up.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"validity/internal/obs"
)

// DefaultTimeout bounds one whole scrape round: a peer that cannot
// answer a local-network GET in this window is reported down.
const DefaultTimeout = 2 * time.Second

// Source is one fleet member's metrics endpoint. Proc is the label the
// merged views carry for this process — the host-range from a
// "range=addr" spec, or the address itself.
type Source struct {
	Proc string
	Addr string
}

// Collector scrapes a fixed set of fleet members.
type Collector struct {
	Sources []Source
	Timeout time.Duration // per scrape round; DefaultTimeout when zero
	Client  *http.Client  // http.DefaultClient when nil
}

// New returns a collector over bare addresses (Proc = Addr).
func New(addrs []string) *Collector {
	c := &Collector{}
	for _, a := range addrs {
		c.Sources = append(c.Sources, Source{Proc: a, Addr: a})
	}
	return c
}

// ParseSources parses a -fleet spec: comma-separated entries, each a
// bare "host:port" or a "name=host:port" pair (so a -peers-style
// host-range map pastes straight in, the ranges becoming process
// labels). Duplicate addresses collapse, first entry wins.
func ParseSources(spec string) ([]Source, error) {
	var out []Source
	seen := make(map[string]bool)
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		src := Source{Proc: ent, Addr: ent}
		if i := strings.IndexByte(ent, '='); i >= 0 {
			src.Proc, src.Addr = ent[:i], ent[i+1:]
			if src.Proc == "" || src.Addr == "" {
				return nil, fmt.Errorf("fleet: malformed entry %q", ent)
			}
		}
		if !strings.Contains(src.Addr, ":") {
			return nil, fmt.Errorf("fleet: entry %q: address needs host:port", ent)
		}
		if seen[src.Addr] {
			continue
		}
		seen[src.Addr] = true
		out = append(out, src)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet: empty source list")
	}
	return out, nil
}

// PeerRegistry is one peer's snapshot scrape result: either Snap or Err.
type PeerRegistry struct {
	Proc string
	Addr string
	Err  error
	Snap obs.RegistrySnapshot
}

// PeerTrace is one peer's trace scrape result for a single query.
type PeerTrace struct {
	Proc   string
	Addr   string
	Err    error
	Events []obs.Event
}

// timeout returns the collector's effective round timeout.
func (c *Collector) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// get fetches path from addr and decodes the JSON body into out.
func (c *Collector) get(ctx context.Context, addr, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return err
	}
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s%s: %s", addr, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Registries scrapes every source's /debug/snapshot concurrently. The
// returned slice is parallel to Sources; a failed peer carries Err and
// an empty snapshot — one dead peer never fails the round.
func (c *Collector) Registries(ctx context.Context) []PeerRegistry {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	out := make([]PeerRegistry, len(c.Sources))
	var wg sync.WaitGroup
	for i, src := range c.Sources {
		out[i] = PeerRegistry{Proc: src.Proc, Addr: src.Addr}
		wg.Add(1)
		go func(i int, src Source) {
			defer wg.Done()
			out[i].Err = c.get(ctx, src.Addr, "/debug/snapshot", &out[i].Snap)
		}(i, src)
	}
	wg.Wait()
	return out
}

// QueryTrace scrapes every source's event ring for query q. A peer that
// never carried the query answers with an empty event list, which is a
// normal result on a sharded fleet, not an error.
func (c *Collector) QueryTrace(ctx context.Context, q int64) []PeerTrace {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	out := make([]PeerTrace, len(c.Sources))
	var wg sync.WaitGroup
	for i, src := range c.Sources {
		out[i] = PeerTrace{Proc: src.Proc, Addr: src.Addr}
		wg.Add(1)
		go func(i int, src Source) {
			defer wg.Done()
			var qt obs.QueryTrace
			err := c.get(ctx, src.Addr, "/debug/trace?q="+url.QueryEscape(fmt.Sprint(q)), &qt)
			if err != nil {
				out[i].Err = err
				return
			}
			out[i].Events = qt.Events
		}(i, src)
	}
	wg.Wait()
	return out
}

// Event is one merged-timeline entry: a peer's trace event annotated
// with the process it came from.
type Event struct {
	Proc string
	obs.Event
}

// MergeTraces folds per-peer event lists into one causally-ordered
// timeline: events sort by query tick first (the per-query clocks the
// processes stamp), then by the wire frame's chain depth (causal order
// within a tick — the clocks arm independently, so ticks alone can
// tie), then wall time, then process name for full determinism.
func MergeTraces(peers []PeerTrace) []Event {
	var out []Event
	for _, p := range peers {
		for _, ev := range p.Events {
			out = append(out, Event{Proc: p.Proc, Event: ev})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		if a.Chain != b.Chain {
			return a.Chain < b.Chain
		}
		if !a.Wall.Equal(b.Wall) {
			return a.Wall.Before(b.Wall)
		}
		return a.Proc < b.Proc
	})
	return out
}

// labelPairs renders a snapshot's label map back to sorted "key=value"
// pairs, the registration form.
func labelPairs(labels map[string]string, extra ...string) []string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys)+len(extra))
	for _, k := range keys {
		out = append(out, k+"="+labels[k])
	}
	return append(out, extra...)
}

// seriesKey identifies one series across peers: name plus sorted labels.
func seriesKey(name string, labels map[string]string) string {
	return name + "\x00" + strings.Join(labelPairs(labels), "\x00")
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteExposition renders the fleet-rolled-up Prometheus exposition of
// a scrape round: counters sum across processes, gauges stay per
// process under a proc label (summing heap sizes or queue depths would
// hide the outlier that matters), and histograms merge by bucket so the
// rendered quantile buckets are real fleet-wide distributions. Two
// meta-series report the round itself: fleet_peers (sources scraped)
// and fleet_peer_up{proc=...} (1 scraped, 0 down). Peers whose
// histogram bucket layout disagrees with the first peer's fall back to
// per-process series under a proc label rather than merging wrong.
func WriteExposition(w io.Writer, peers []PeerRegistry) (int64, error) {
	reg := obs.NewRegistry()
	reg.Gauge("fleet_peers", "Fleet members this scrape round addressed.").Set(int64(len(peers)))
	merged := make(map[string]*obs.Histogram) // seriesKey -> merged histogram
	bounds := make(map[string][]float64)      // seriesKey -> canonical bounds
	for _, p := range peers {
		up := int64(0)
		if p.Err == nil {
			up = 1
		}
		reg.Gauge("fleet_peer_up", "Whether the peer answered this scrape round.", "proc="+p.Proc).Set(up)
		if p.Err != nil {
			continue
		}
		for _, cs := range p.Snap.Counters {
			reg.Counter(cs.Name, cs.Help, labelPairs(cs.Labels)...).Add(cs.Value)
		}
		for _, gs := range p.Snap.Gauges {
			v := gs.Value
			reg.GaugeFunc(gs.Name, gs.Help, func() float64 { return v },
				labelPairs(gs.Labels, "proc="+p.Proc)...)
		}
		for _, hs := range p.Snap.Histograms {
			key := seriesKey(hs.Name, hs.Labels)
			h, ok := merged[key]
			if !ok {
				h = reg.Histogram(hs.Name, hs.Help, hs.Bounds, labelPairs(hs.Labels)...)
				merged[key] = h
				bounds[key] = hs.Bounds
			}
			if boundsEqual(bounds[key], hs.Bounds) {
				if err := h.AddBuckets(hs.Counts, hs.Sum); err == nil {
					continue
				}
			}
			// Bucket layouts disagree: keep this peer's series apart
			// rather than folding incompatible buckets together.
			ph := reg.Histogram(hs.Name, hs.Help, hs.Bounds, labelPairs(hs.Labels, "proc="+p.Proc)...)
			_ = ph.AddBuckets(hs.Counts, hs.Sum)
		}
	}
	return reg.WriteTo(w)
}

// CounterTotal sums every series of name in one snapshot.
func CounterTotal(snap obs.RegistrySnapshot, name string) int64 {
	var total int64
	for _, cs := range snap.Counters {
		if cs.Name == name {
			total += cs.Value
		}
	}
	return total
}

// CounterByLabel returns name's per-series values keyed by the value of
// one label (series missing the label key are skipped).
func CounterByLabel(snap obs.RegistrySnapshot, name, key string) map[string]int64 {
	out := make(map[string]int64)
	for _, cs := range snap.Counters {
		if cs.Name != name {
			continue
		}
		if v, ok := cs.Labels[key]; ok {
			out[v] += cs.Value
		}
	}
	return out
}

// GaugeValue returns the first gauge series of name in one snapshot.
func GaugeValue(snap obs.RegistrySnapshot, name string) (float64, bool) {
	for _, gs := range snap.Gauges {
		if gs.Name == name {
			return gs.Value, true
		}
	}
	return 0, false
}

// MergeHistograms folds every live peer's histograms of name (all label
// sets) into one bucket-merged snapshot; its Quantile method then reads
// real fleet-wide quantiles. Peers whose bucket layout disagrees with
// the first seen are skipped. ok is false when no live peer carries the
// series.
func MergeHistograms(peers []PeerRegistry, name string) (obs.HistogramSnap, bool) {
	var out obs.HistogramSnap
	found := false
	for _, p := range peers {
		if p.Err != nil {
			continue
		}
		for _, hs := range p.Snap.Histograms {
			if hs.Name != name {
				continue
			}
			if !found {
				out = obs.HistogramSnap{
					Name:   hs.Name,
					Help:   hs.Help,
					Bounds: append([]float64(nil), hs.Bounds...),
					Counts: make([]int64, len(hs.Counts)),
				}
				found = true
			}
			if !boundsEqual(out.Bounds, hs.Bounds) || len(hs.Counts) != len(out.Counts) {
				continue
			}
			for i, n := range hs.Counts {
				out.Counts[i] += n
			}
			out.Count += hs.Count
			out.Sum += hs.Sum
		}
	}
	return out, found
}
