package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"validity/internal/obs"
)

// peerServer serves one synthetic process's /debug/snapshot and
// /debug/trace endpoints off a real registry and tracer.
func peerServer(t *testing.T, reg *obs.Registry, tr *obs.Tracer) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/debug/snapshot", obs.SnapshotHandler(reg))
	mux.Handle("/debug/trace", obs.TraceHandler(tr))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func addrOf(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestFleetRollup scrapes two live peers and one down peer and checks
// the merged exposition: counters summed across processes, gauges kept
// apart under proc labels, histograms bucket-merged, and per-peer
// liveness reported — one dead peer degrades its contribution, not the
// round.
func TestFleetRollup(t *testing.T) {
	bounds := []float64{10, 100, 1000}
	regA := obs.NewRegistry()
	regA.Counter("node_messages_sent_total", "sent").Add(30)
	regA.Counter("node_frames_dropped_total", "drops", "reason=host-dead").Add(2)
	regA.Gauge("node_queries_live", "live").Set(3)
	ha := regA.Histogram("daemon_query_latency_ms", "lat", bounds)
	ha.Observe(5)
	ha.Observe(50)

	regB := obs.NewRegistry()
	regB.Counter("node_messages_sent_total", "sent").Add(12)
	regB.Counter("node_frames_dropped_total", "drops", "reason=retired").Add(1)
	regB.Gauge("node_queries_live", "live").Set(1)
	hb := regB.Histogram("daemon_query_latency_ms", "lat", bounds)
	hb.Observe(500)

	srvA := peerServer(t, regA, nil)
	srvB := peerServer(t, regB, nil)
	coll := &Collector{
		Sources: []Source{
			{Proc: "a", Addr: addrOf(srvA)},
			{Proc: "b", Addr: addrOf(srvB)},
			{Proc: "dead", Addr: "127.0.0.1:1"}, // nothing listens on port 1
		},
		Timeout: 5 * time.Second,
	}
	peers := coll.Registries(context.Background())
	if len(peers) != 3 {
		t.Fatalf("got %d peer results", len(peers))
	}
	if peers[0].Err != nil || peers[1].Err != nil {
		t.Fatalf("live peers errored: %v / %v", peers[0].Err, peers[1].Err)
	}
	if peers[2].Err == nil {
		t.Fatal("dead peer must carry an error")
	}

	var b strings.Builder
	if _, err := WriteExposition(&b, peers); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"node_messages_sent_total 42\n",                   // 30 + 12, summed
		`node_frames_dropped_total{reason="host-dead"} 2`, // label sets stay distinct
		`node_frames_dropped_total{reason="retired"} 1`,   //
		`node_queries_live{proc="a"} 3`,                   // gauges per process
		`node_queries_live{proc="b"} 1`,                   //
		"fleet_peers 3\n",                                 //
		`fleet_peer_up{proc="a"} 1`,                       //
		`fleet_peer_up{proc="dead"} 0`,                    //
		"daemon_query_latency_ms_count 3\n",               // bucket-merged, one series
		`daemon_query_latency_ms_bucket{le="+Inf"} 3`,     //
		`daemon_query_latency_ms_bucket{le="10"} 1`,       //
		`daemon_query_latency_ms_bucket{le="1000"} 3`,     //
		"daemon_query_latency_ms_sum 555\n",               // 5+50+500
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged exposition missing %q\n--- got ---\n%s", want, out)
		}
	}

	// MergeHistograms: the merged quantile must equal the quantile of one
	// histogram holding every peer's observations (same algorithm on the
	// summed buckets).
	all := obs.NewRegistry().Histogram("x", "", bounds)
	for _, v := range []float64{5, 50, 500} {
		all.Observe(v)
	}
	hs, ok := MergeHistograms(peers, "daemon_query_latency_ms")
	if !ok || hs.Count != 3 {
		t.Fatalf("MergeHistograms = ok %v count %d", ok, hs.Count)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := hs.Quantile(q), all.Quantile(q); got != want {
			t.Errorf("q%.2f: merged %v != concatenated %v", q, got, want)
		}
	}

	// Lookup helpers validitytop leans on.
	if got := CounterTotal(peers[0].Snap, "node_messages_sent_total"); got != 30 {
		t.Errorf("CounterTotal = %d, want 30", got)
	}
	byReason := CounterByLabel(peers[0].Snap, "node_frames_dropped_total", "reason")
	if byReason["host-dead"] != 2 {
		t.Errorf("CounterByLabel = %v", byReason)
	}
	if v, ok := GaugeValue(peers[1].Snap, "node_queries_live"); !ok || v != 1 {
		t.Errorf("GaugeValue = %v, %v", v, ok)
	}
}

// TestFleetQueryTraceMerge scrapes two peers' rings for one query and
// checks the merged timeline's causal order: tick first, chain depth
// within a tick, wall time last — and that each event keeps its origin
// process.
func TestFleetQueryTraceMerge(t *testing.T) {
	trA := obs.NewTracer(4, 8)
	trA.Record(1, obs.EvIssued, -1, 0, "")
	trA.RecordChain(1, obs.EvFrameDrop, 3, 2, 4, "host-dead")

	trB := obs.NewTracer(4, 8)
	trB.Record(1, obs.EvFirstTraffic, 20, 0, "")
	trB.RecordChain(1, obs.EvFrameDrop, 21, 2, 1, "query-dead")

	srvA := peerServer(t, nil, trA)
	srvB := peerServer(t, nil, trB)
	coll := &Collector{
		Sources: []Source{
			{Proc: "issuer", Addr: addrOf(srvA)},
			{Proc: "worker", Addr: addrOf(srvB)},
		},
		Timeout: 5 * time.Second,
	}
	peers := coll.QueryTrace(context.Background(), 1)
	merged := MergeTraces(peers)
	if len(merged) != 4 {
		t.Fatalf("merged %d events, want 4", len(merged))
	}
	// Tick 0 events first (issued before first-traffic only by wall time —
	// both recorded chain 0, trA's earlier), then the two tick-2 drops
	// ordered by chain depth: worker's chain-1 drop precedes issuer's
	// chain-4 drop even though the issuer recorded first.
	if merged[2].Proc != "worker" || merged[2].Chain != 1 {
		t.Fatalf("merged[2] = proc %s chain %d, want worker chain 1", merged[2].Proc, merged[2].Chain)
	}
	if merged[3].Proc != "issuer" || merged[3].Chain != 4 {
		t.Fatalf("merged[3] = proc %s chain %d, want issuer chain 4", merged[3].Proc, merged[3].Chain)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Tick < merged[i-1].Tick {
			t.Fatalf("ticks out of order at %d: %+v", i, merged)
		}
	}

	// A peer that never saw the query answers empty, not an error.
	trC := obs.NewTracer(4, 8)
	srvC := peerServer(t, nil, trC)
	coll.Sources = append(coll.Sources, Source{Proc: "idle", Addr: addrOf(srvC)})
	peers = coll.QueryTrace(context.Background(), 1)
	if peers[2].Err != nil || len(peers[2].Events) != 0 {
		t.Fatalf("idle peer = err %v, %d events", peers[2].Err, len(peers[2].Events))
	}
}

// TestParseSources pins the -fleet grammar: bare addresses, name=addr
// pairs (so a -peers map with ports swapped pastes in), deduplication,
// and the malformed forms.
func TestParseSources(t *testing.T) {
	srcs, err := ParseSources("127.0.0.1:9101, 0-19=127.0.0.1:9102 ,127.0.0.1:9101")
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 {
		t.Fatalf("got %d sources, want 2 (dupe dropped): %+v", len(srcs), srcs)
	}
	if srcs[0].Proc != "127.0.0.1:9101" || srcs[1].Proc != "0-19" || srcs[1].Addr != "127.0.0.1:9102" {
		t.Fatalf("sources = %+v", srcs)
	}
	for _, bad := range []string{"", "=127.0.0.1:1", "name=", "noport"} {
		if _, err := ParseSources(bad); err == nil {
			t.Errorf("ParseSources(%q) accepted", bad)
		}
	}
}
