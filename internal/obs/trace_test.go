package obs

import (
	"sync"
	"testing"
)

// TestTraceRingBounded pins the per-query ring bound: recording more
// distinct events than the ring holds keeps only the newest, oldest
// evicted first.
func TestTraceRingBounded(t *testing.T) {
	tr := NewTracer(4, 4)
	for i := 0; i < 10; i++ {
		// Distinct hosts defeat coalescing, so each record is one entry.
		tr.Record(1, EvFrameDrop, i, int64(i), "host-dead")
	}
	evs := tr.Events(1)
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := 6 + i; ev.Host != want {
			t.Fatalf("event %d has host %d, want %d (oldest must evict first)", i, ev.Host, want)
		}
		if ev.KindName != "frame-drop" {
			t.Fatalf("event kind rendered as %q", ev.KindName)
		}
	}
}

// TestTraceCoalescing pins that identical consecutive events collapse
// into one counted entry, so a drop storm cannot wash the lifecycle
// events off the ring.
func TestTraceCoalescing(t *testing.T) {
	tr := NewTracer(4, 4)
	tr.Record(7, EvIssued, -1, 0, "")
	tr.Record(7, EvFirstTraffic, -1, 0, "")
	for i := 0; i < 1000; i++ {
		tr.Record(7, EvFrameDrop, 3, int64(i), "retired")
	}
	tr.Record(7, EvRetired, -1, 42, "")
	evs := tr.Events(7)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4 (issued, first-traffic, coalesced drops, retired): %+v", len(evs), evs)
	}
	if evs[0].Kind != EvIssued || evs[1].Kind != EvFirstTraffic || evs[3].Kind != EvRetired {
		t.Fatalf("lifecycle events lost to the drop storm: %+v", evs)
	}
	if drops := evs[2]; drops.Kind != EvFrameDrop || drops.Count != 1000 || drops.Tick != 999 {
		t.Fatalf("coalesced drops = kind %v count %d tick %d, want frame-drop ×1000 at tick 999",
			drops.Kind, drops.Count, drops.Tick)
	}
}

// TestTraceQueryEviction pins the cross-query bound: tracking more
// queries than the tracer holds evicts whole query rings oldest-first.
func TestTraceQueryEviction(t *testing.T) {
	tr := NewTracer(3, 8)
	for q := int64(1); q <= 5; q++ {
		tr.Record(q, EvIssued, -1, 0, "")
	}
	qs := tr.Queries()
	if len(qs) != 3 || qs[0] != 3 || qs[2] != 5 {
		t.Fatalf("tracked queries = %v, want [3 4 5]", qs)
	}
	if tr.Events(1) != nil {
		t.Fatal("evicted query still has events")
	}
	if evs := tr.Events(5); len(evs) != 1 || evs[0].Kind != EvIssued {
		t.Fatalf("surviving query lost its events: %+v", evs)
	}
}

// TestTracerConcurrent hammers Record and Events from many goroutines —
// the -race proof for the tracer's single lock.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tr.Record(int64(i%32), EvFrameDrop, w, int64(i), "query-dead")
				if i%64 == 0 {
					tr.Events(int64(i % 32))
					tr.Queries()
				}
			}
		}(w)
	}
	wg.Wait()
	if len(tr.Queries()) != 16 {
		t.Fatalf("tracker holds %d queries, want the 16-query bound", len(tr.Queries()))
	}
}
