package obs

import "sort"

// JSON-stable snapshot types: the machine-readable twin of the Prometheus
// text exposition, served on /debug/snapshot and consumed by the fleet
// collector (internal/obs/fleet), which needs typed values — counter
// sums, per-bucket histogram counts — rather than re-parsed text. Field
// layout is part of the cross-process contract: every fleet process must
// decode every other's snapshot, so changes here must stay
// backward-decodable.

// CounterSnap is one counter series at snapshot time.
type CounterSnap struct {
	Name   string            `json:"name"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSnap is one gauge series at snapshot time; sampled gauges
// (GaugeFunc) are evaluated when the snapshot is taken.
type GaugeSnap struct {
	Name   string            `json:"name"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramSnap is one histogram series: per-bucket counts (not
// cumulative — Counts[i] observations fell in (Bounds[i-1], Bounds[i]],
// with Counts[len(Bounds)] the +Inf bucket), so two snapshots merge by
// plain element-wise addition.
type HistogramSnap struct {
	Name   string            `json:"name"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Bounds []float64         `json:"bounds"`
	Counts []int64           `json:"counts"`
	Count  int64             `json:"count"`
	Sum    float64           `json:"sum"`
}

// Quantile reads the q-quantile off the snapshot's buckets.
func (h *HistogramSnap) Quantile(q float64) float64 {
	return BucketQuantile(h.Bounds, h.Counts, q)
}

// RegistrySnapshot is every registered series of one registry, each list
// sorted by (name, rendered labels) so output is stable across calls.
type RegistrySnapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// labelMap converts a slot's raw "key=value" pairs into the snapshot's
// map form (nil when unlabeled, so it marshals away).
func labelMap(pairs []string) map[string]string {
	if len(pairs) == 0 {
		return nil
	}
	m := make(map[string]string, len(pairs))
	for _, p := range pairs {
		k, v := splitLabel(p)
		m[k] = v
	}
	return m
}

// Snapshot captures every registered metric with its current value. Like
// WriteTo it takes per-value atomic loads without stopping writers, so a
// snapshot under concurrent updates is consistent-enough, not a fence.
// A nil registry returns an empty snapshot.
func (r *Registry) Snapshot() RegistrySnapshot {
	var snap RegistrySnapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	slots := make([]*metricSlot, 0, len(r.slots))
	for _, s := range r.slots {
		slots = append(slots, s)
	}
	r.mu.Unlock()
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].name != slots[j].name {
			return slots[i].name < slots[j].name
		}
		return slots[i].labels < slots[j].labels
	})
	for _, s := range slots {
		switch s.kind {
		case kindCounter:
			snap.Counters = append(snap.Counters, CounterSnap{
				Name: s.name, Help: s.help, Labels: labelMap(s.pairs), Value: s.c.Value(),
			})
		case kindGauge:
			snap.Gauges = append(snap.Gauges, GaugeSnap{
				Name: s.name, Help: s.help, Labels: labelMap(s.pairs), Value: float64(s.g.Value()),
			})
		case kindGaugeFunc:
			snap.Gauges = append(snap.Gauges, GaugeSnap{
				Name: s.name, Help: s.help, Labels: labelMap(s.pairs), Value: s.gf(),
			})
		case kindHistogram:
			counts := make([]int64, len(s.h.counts))
			for i := range s.h.counts {
				counts[i] = s.h.counts[i].Load()
			}
			snap.Histograms = append(snap.Histograms, HistogramSnap{
				Name: s.name, Help: s.help, Labels: labelMap(s.pairs),
				Bounds: append([]float64(nil), s.h.bounds...),
				Counts: counts,
				Count:  s.h.Count(),
				Sum:    s.h.Sum(),
			})
		}
	}
	return snap
}

// QueryTrace is one query's recorded event list, the /debug/trace payload
// the fleet collector merges across processes.
type QueryTrace struct {
	Query  int64   `json:"query"`
	Events []Event `json:"events,omitempty"`
}

// TraceSnapshot is every tracked query's event list, oldest-tracked query
// first.
type TraceSnapshot struct {
	Queries []QueryTrace `json:"queries,omitempty"`
}

// QueryTrace returns one query's events as a snapshot payload. A query
// the tracer never saw (or a nil tracer) returns an empty event list, not
// an error — on a sharded fleet a peer that never carried the query's
// traffic is a normal answer, not a failure.
func (t *Tracer) QueryTrace(q int64) QueryTrace {
	return QueryTrace{Query: q, Events: t.Events(q)}
}

// Snapshot captures every tracked query's event ring.
func (t *Tracer) Snapshot() TraceSnapshot {
	var snap TraceSnapshot
	if t == nil {
		return snap
	}
	for _, q := range t.Queries() {
		qt := t.QueryTrace(q)
		if len(qt.Events) == 0 {
			continue // evicted between Queries and Events
		}
		snap.Queries = append(snap.Queries, qt)
	}
	return snap
}
