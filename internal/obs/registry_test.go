package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilDisabled pins the disabled form: a nil registry hands out nil
// metrics and every operation on them is a no-op — the one-branch cost an
// uninstrumented runtime pays.
func TestNilDisabled(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", LatencyBucketsMs)
	reg.GaugeFunc("gf", "", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(12)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if n, err := reg.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatalf("nil registry WriteTo = (%d, %v)", n, err)
	}
	var tr *Tracer
	tr.Record(1, EvIssued, -1, 0, "")
	if tr.Events(1) != nil || tr.Queries() != nil {
		t.Fatal("nil tracer must read empty")
	}
}

// TestRegistryIdempotent pins that re-registering a (name, labels) pair
// returns the same metric, so subsystems can share series by name.
func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", "reason=dead")
	b := reg.Counter("x_total", "help", "reason=dead")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := reg.Counter("x_total", "help", "reason=retired")
	if a == other {
		t.Fatal("distinct labels must return distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash must panic")
		}
	}()
	reg.Gauge("x_total", "help", "reason=dead")
}

// TestRegistryHammer hammers counters, gauges, and a histogram from many
// goroutines while a reader scrapes, then checks the totals are exact.
// Run under -race this is the registry's concurrency proof.
func TestRegistryHammer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "")
	g := reg.Gauge("hammer_gauge", "")
	h := reg.Histogram("hammer_ms", "", []float64{1, 10, 100})
	reg.GaugeFunc("hammer_func", "", func() float64 { return float64(c.Value()) })

	const workers = 8
	const perWorker = 5000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if _, err := reg.WriteTo(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	writers.Wait()
	close(stop)
	scraper.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramQuantiles checks the interpolated percentile readout
// against a known uniform distribution.
func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ms", "", []float64{10, 20, 50, 100, 200, 500, 1000})
	// 1000 observations uniform over (0, 1000].
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	checks := []struct{ q, want, tol float64 }{
		{0.50, 500, 1},  // falls inside (200,500]: exact by interpolation
		{0.95, 950, 1},  // inside (500,1000]
		{0.99, 990, 1},  // inside (500,1000]
		{0.05, 50, 0.5}, // bucket boundary
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("q%.2f = %.2f, want %.2f ± %.1f", c.q, got, c.want, c.tol)
		}
	}
	if got := h.Sum(); math.Abs(got-500500) > 1e-6 {
		t.Errorf("sum = %v, want 500500", got)
	}
	// Everything beyond the last bound saturates there.
	h2 := reg.Histogram("sat_ms", "", []float64{10})
	h2.Observe(99999)
	if got := h2.Quantile(0.99); got != 10 {
		t.Errorf("overflow quantile = %v, want saturation at 10", got)
	}
}

// TestExposition pins the Prometheus text format: HELP/TYPE headers,
// sorted series, labeled counters, cumulative histogram buckets.
func TestExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "b help", "reason=x").Add(3)
	reg.Counter("b_total", "b help", "reason=y").Add(4)
	reg.Gauge("a_gauge", "a help").Set(7)
	h := reg.Histogram("c_ms", "c help", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(99)
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge a help
# TYPE a_gauge gauge
a_gauge 7
# HELP b_total b help
# TYPE b_total counter
b_total{reason="x"} 3
b_total{reason="y"} 4
# HELP c_ms c help
# TYPE c_ms histogram
c_ms_bucket{le="1"} 1
c_ms_bucket{le="5"} 2
c_ms_bucket{le="+Inf"} 3
c_ms_sum 102.5
c_ms_count 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}
