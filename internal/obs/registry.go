// Package obs is the engine's observability layer: a low-overhead
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms with percentile readouts), a bounded per-query event tracer,
// Prometheus-style text exposition, and the leveled logger the daemon and
// commands share.
//
// The paper's whole contribution is a cost/validity trade-off — §6.3
// counts messages, bytes, and hosts processed per query — and this
// package is how a *running* fleet surfaces those numbers continuously
// instead of as one summary line per finished query: queue depths, dial
// backoffs, churn transitions, drop reasons, and the latency distribution
// behind every throughput mean.
//
// Design constraints, because the instrumented paths are the engine's
// hottest:
//
//   - Allocation-free on the hot path. Metrics are registered once at
//     construction; the instrumented code holds *Counter/*Gauge/*Histogram
//     pointers and every update is a single atomic operation.
//   - Nil-disabled. Every method of every metric type (and of Registry and
//     Tracer) is safe on a nil receiver and costs exactly one predictable
//     branch, so an uninstrumented runtime — in particular the sim layer's
//     byte-for-byte deterministic paths — pays nothing and changes
//     nothing.
//   - Race-clean. Registration takes a mutex (cold); updates are atomics;
//     exposition and quantile readouts take consistent-enough snapshots
//     (per-value atomic loads) without stopping writers.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add adds n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n (no-op on a nil receiver).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is ≥ the value, with an implicit +Inf bucket
// past the last bound. Buckets are fixed at registration so Observe is a
// short linear scan plus one atomic add — no allocation, no lock.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// LatencyBucketsMs is the standard latency bucket layout, in milliseconds:
// sub-hop to tens-of-seconds, roughly logarithmic.
var LatencyBucketsMs = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// Observe records v (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (zero on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated by linear
// interpolation inside the bucket the quantile falls in. Observations in
// the +Inf bucket report the last finite bound (the histogram cannot see
// past it). An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return BucketQuantile(h.bounds, counts, q)
}

// BucketQuantile estimates the q-quantile of pre-bucketed observations:
// counts[i] observations fell in (bounds[i-1], bounds[i]], with
// counts[len(bounds)] the implicit +Inf bucket. It is the readout behind
// Histogram.Quantile, exported so the fleet rollup can take quantiles of
// bucket-merged histograms — summing per-process bucket counts and reading
// the quantile here gives a real fleet-wide quantile, where averaging
// per-process quantiles would not.
func BucketQuantile(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i, n := range counts {
		if n == 0 {
			if i < len(bounds) {
				lower = bounds[i]
			}
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(bounds) {
				return lower // +Inf bucket: saturate at the last bound
			}
			upper := bounds[i]
			within := (rank - float64(cum)) / float64(n)
			if within < 0 {
				within = 0
			}
			return lower + (upper-lower)*within
		}
		cum += n
		if i < len(bounds) {
			lower = bounds[i]
		}
	}
	return lower
}

// AddBuckets folds pre-bucketed observations into h: counts must have
// exactly len(bounds)+1 entries laid out like a Snapshot's Counts (the
// last is the +Inf bucket), and sum is the total of the folded
// observations. This is the fleet rollup's merge hook — per-process
// snapshot counts add into one histogram whose quantiles are then real
// fleet-wide quantiles. No-op on a nil histogram.
func (h *Histogram) AddBuckets(counts []int64, sum float64) error {
	if h == nil {
		return nil
	}
	if len(counts) != len(h.counts) {
		return fmt.Errorf("obs: AddBuckets got %d buckets, histogram has %d", len(counts), len(h.counts))
	}
	var total int64
	for i, n := range counts {
		h.counts[i].Add(n)
		total += n
	}
	h.count.Add(total)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sum.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// kind discriminates the registry's metric slots.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metricSlot is one registered series: a base name, an optional rendered
// label set, and the value of one kind.
type metricSlot struct {
	name   string   // base metric name
	labels string   // rendered `{k="v",...}` or ""
	pairs  []string // the raw "key=value" pairs, for Snapshot
	help   string
	kind   kind
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. All registration methods are idempotent — asking for
// an already-registered (name, labels) pair returns the existing metric —
// so independent subsystems can share series by name. A nil *Registry is
// the disabled form: every method returns a nil metric whose operations
// are one-branch no-ops.
type Registry struct {
	mu    sync.Mutex
	slots map[string]*metricSlot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{slots: make(map[string]*metricSlot)}
}

// renderLabels turns "key=value" pairs into a canonical sorted
// `{key="value"}` string.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	kv := make([]string, 0, len(labels))
	for _, l := range labels {
		k, v := splitLabel(l)
		kv = append(kv, k+`="`+escapeLabelValue(v)+`"`)
	}
	sort.Strings(kv)
	return "{" + strings.Join(kv, ",") + "}"
}

// splitLabel splits one "key=value" pair.
func splitLabel(l string) (k, v string) {
	if i := strings.IndexByte(l, '='); i >= 0 {
		return l[:i], l[i+1:]
	}
	return l, ""
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition spec: backslash, double quote, and line feed — exactly those
// three, in one pass each occurrence. Per-peer address labels and operator
// strings can carry any of them.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text per the text-format spec: backslash and
// line feed only (double quotes are legal in HELP).
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// slot returns the series for (name, labels), creating it with mk if new.
// A kind clash on an existing name is a programming error and panics —
// silent misregistration would corrupt the exposition.
func (r *Registry) slot(name, help string, k kind, labels []string, mk func(*metricSlot)) *metricSlot {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.slots[key]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, k, s.kind))
		}
		return s
	}
	s := &metricSlot{
		name:   name,
		labels: renderLabels(labels),
		pairs:  append([]string(nil), labels...),
		help:   help,
		kind:   k,
	}
	mk(s)
	r.slots[key] = s
	return s
}

// Counter registers (or returns) a counter. Labels are "key=value" pairs
// distinguishing series under one name. Nil registry returns nil.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.slot(name, help, kindCounter, labels, func(s *metricSlot) { s.c = &Counter{} }).c
}

// Gauge registers (or returns) a gauge. Nil registry returns nil.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.slot(name, help, kindGauge, labels, func(s *metricSlot) { s.g = &Gauge{} }).g
}

// GaugeFunc registers a gauge sampled by calling fn at exposition time —
// the cheap way to surface queue depths and heap lengths without touching
// the hot paths that change them. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.slot(name, help, kindGaugeFunc, labels, func(s *metricSlot) { s.gf = fn })
}

// Histogram registers (or returns) a fixed-bucket histogram with the
// given ascending upper bounds. Nil registry returns nil.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.slot(name, help, kindHistogram, labels, func(s *metricSlot) {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		s.h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}).h
}

// WriteTo renders every registered metric in Prometheus text exposition
// format (sorted, so output is stable for tests and diffs) and reports
// the bytes written.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	slots := make([]*metricSlot, 0, len(r.slots))
	for _, s := range r.slots {
		slots = append(slots, s)
	}
	r.mu.Unlock()
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].name != slots[j].name {
			return slots[i].name < slots[j].name
		}
		return slots[i].labels < slots[j].labels
	})

	var b strings.Builder
	lastName := ""
	for _, s := range slots {
		if s.name != lastName {
			lastName = s.name
			if s.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, escapeHelp(s.help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.g.Value())
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatFloat(s.gf()))
		case kindHistogram:
			var cum int64
			for i, bound := range s.h.bounds {
				cum += s.h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, withLabel(s.labels, "le", formatFloat(bound)), cum)
			}
			cum += s.h.counts[len(s.h.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, withLabel(s.labels, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, s.labels, formatFloat(s.h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, s.labels, s.h.Count())
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// withLabel merges one extra label into an already-rendered label string.
func withLabel(rendered, k, v string) string {
	extra := k + `="` + escapeLabelValue(v) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
