package obs

import (
	"fmt"
	"sync"
	"time"
)

// EventKind classifies one per-query lifecycle event.
type EventKind uint8

const (
	// EvIssued: the query was started at the issuing process.
	EvIssued EventKind = iota
	// EvFirstTraffic: the query's clock armed — its first send or
	// delivery in this process.
	EvFirstTraffic
	// EvChurnLeave: a scheduled departure on the query's membership
	// timeline was applied to a local host.
	EvChurnLeave
	// EvChurnJoin: a scheduled arrival was applied to a local host.
	EvChurnJoin
	// EvFrameDrop: a frame for this query was dropped; Detail carries the
	// reason (host-dead, query-dead, retired, send-error).
	EvFrameDrop
	// EvAnswered: the issuing process read the query's declared result.
	EvAnswered
	// EvRetired: the engine retired the query's protocol state.
	EvRetired
	// EvCompacted: the query's counters were folded to a ring summary.
	EvCompacted
	// EvQuiesce: a cross-process quiescence announce was sent (worker
	// side) or recorded (issuer side); Detail distinguishes
	// announce-quiet/announce-busy from peer-quiet/peer-busy.
	EvQuiesce
	// EvEarlyRead: AwaitQueryResult returned before the hard deadline
	// cap; Detail says which early path fired (settle or quiesce).
	EvEarlyRead
)

func (k EventKind) String() string {
	switch k {
	case EvIssued:
		return "issued"
	case EvFirstTraffic:
		return "first-traffic"
	case EvChurnLeave:
		return "churn-leave"
	case EvChurnJoin:
		return "churn-join"
	case EvFrameDrop:
		return "frame-drop"
	case EvAnswered:
		return "answered"
	case EvRetired:
		return "retired"
	case EvCompacted:
		return "compacted"
	case EvQuiesce:
		return "quiesce"
	case EvEarlyRead:
		return "early-read"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one recorded lifecycle event of one query.
type Event struct {
	Query int64 `json:"query"`
	Kind  EventKind
	// KindName is Kind rendered for JSON consumers (/debug/queries).
	KindName string `json:"kind"`
	// Host is the local host the event concerns, or -1 when the event is
	// query-wide (issued, retired, compacted).
	Host int `json:"host"`
	// Tick is the event time on the query's own clock, in δ ticks (0 when
	// the clock had not yet armed).
	Tick int64 `json:"tick"`
	// Chain is the causal depth carried by the wire frame the event
	// concerns (0 for query-wide lifecycle events). Query ticks are
	// per-process clocks armed at first traffic, so two processes can
	// stamp causally-ordered events with the same tick; the chain depth
	// breaks those ties when the fleet collector merges rings into one
	// cross-process timeline.
	Chain int `json:"chain,omitempty"`
	// Wall is the wall-clock stamp.
	Wall time.Time `json:"wall"`
	// Detail carries the drop reason or other short annotation.
	Detail string `json:"detail,omitempty"`
	// Count coalesces identical consecutive events (same kind, host, and
	// detail): a burst of straggler-frame drops becomes one ring entry
	// with a count instead of evicting the query's lifecycle history.
	Count int64 `json:"count"`
}

// queryTrace is one query's bounded event ring.
type queryTrace struct {
	query  int64
	events []Event // ring storage
	next   int
	full   bool
}

func (qt *queryTrace) record(ev Event) {
	// Coalesce with the newest event when kind, host, and detail match:
	// drop storms must not wash lifecycle events off the ring.
	if last := qt.last(); last != nil &&
		last.Kind == ev.Kind && last.Host == ev.Host && last.Detail == ev.Detail {
		last.Count++
		last.Wall = ev.Wall
		last.Tick = ev.Tick
		last.Chain = ev.Chain
		return
	}
	ev.Count = 1
	qt.events[qt.next] = ev
	qt.next++
	if qt.next == len(qt.events) {
		qt.next, qt.full = 0, true
	}
}

// last returns a pointer to the most recently recorded event (nil when
// empty).
func (qt *queryTrace) last() *Event {
	if qt.next == 0 {
		if !qt.full {
			return nil
		}
		return &qt.events[len(qt.events)-1]
	}
	return &qt.events[qt.next-1]
}

// list returns the events oldest-first.
func (qt *queryTrace) list() []Event {
	var out []Event
	if qt.full {
		out = append(out, qt.events[qt.next:]...)
	}
	return append(out, qt.events[:qt.next]...)
}

// Tracer records per-query lifecycle events on bounded rings: at most
// maxQueries queries are tracked (oldest evicted first), each holding at
// most perQuery events (oldest evicted first, with identical consecutive
// events coalesced into one counted entry). A nil *Tracer is the disabled
// form: Record costs one branch, readers return nothing.
//
// Events are low-rate lifecycle transitions, not per-frame traffic, so a
// single mutex is cheap; the bounded rings make the tracer safe to leave
// on in a fleet answering an unbounded query stream.
type Tracer struct {
	mu        sync.Mutex
	perQuery  int
	maxQuery  int
	traces    map[int64]*queryTrace
	order     []int64 // insertion order, for eviction
	nowFn     func() time.Time
	dropEvict *Counter // optional: counts queries evicted from the tracer
}

// NewTracer returns a tracer bounded to maxQueries query rings of
// perQuery events each. Non-positive arguments take defaults (256
// queries × 64 events).
func NewTracer(maxQueries, perQuery int) *Tracer {
	if maxQueries <= 0 {
		maxQueries = 256
	}
	if perQuery <= 0 {
		perQuery = 64
	}
	return &Tracer{
		perQuery: perQuery,
		maxQuery: maxQueries,
		traces:   make(map[int64]*queryTrace, maxQueries),
		nowFn:    time.Now,
	}
}

// Record appends one event to query q's ring (no-op on a nil tracer).
// The Wall stamp is taken here; callers fill Kind, Host, Tick, Detail.
// Events with no frame in hand carry chain 0 — use RecordChain when the
// causal depth is known.
func (t *Tracer) Record(q int64, kind EventKind, host int, tick int64, detail string) {
	t.RecordChain(q, kind, host, tick, 0, detail)
}

// RecordChain is Record with the wire frame's causal depth attached, the
// stamp the fleet merger uses to order same-tick events across processes.
func (t *Tracer) RecordChain(q int64, kind EventKind, host int, tick int64, chain int, detail string) {
	if t == nil {
		return
	}
	ev := Event{Query: q, Kind: kind, Host: host, Tick: tick, Chain: chain, Detail: detail}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev.Wall = t.nowFn()
	qt, ok := t.traces[q]
	if !ok {
		if len(t.order) >= t.maxQuery {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.traces, oldest)
			t.dropEvict.Inc()
		}
		qt = &queryTrace{query: q, events: make([]Event, t.perQuery)}
		t.traces[q] = qt
		t.order = append(t.order, q)
	}
	qt.record(ev)
}

// Events returns query q's recorded events, oldest first (nil for an
// untracked query or a nil tracer).
func (t *Tracer) Events(q int64) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	qt, ok := t.traces[q]
	if !ok {
		return nil
	}
	out := qt.list()
	for i := range out {
		out[i].KindName = out[i].Kind.String()
	}
	return out
}

// Queries returns the tracked query ids, oldest first.
func (t *Tracer) Queries() []int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int64, len(t.order))
	copy(out, t.order)
	return out
}
