package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestRegistrySnapshot pins the typed dump: every kind present, sorted,
// labels as maps, histogram counts non-cumulative — and the whole thing
// JSON round-trips unchanged, which is the cross-process contract the
// fleet collector depends on.
func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "b help", "reason=x").Add(3)
	reg.Counter("b_total", "b help", "reason=y").Add(4)
	reg.Gauge("a_gauge", "a help").Set(7)
	reg.GaugeFunc("f_gauge", "f help", func() float64 { return 2.5 })
	h := reg.Histogram("c_ms", "c help", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(99)

	snap := reg.Snapshot()
	if len(snap.Counters) != 2 || len(snap.Gauges) != 2 || len(snap.Histograms) != 1 {
		t.Fatalf("snapshot shape = %d counters, %d gauges, %d histograms",
			len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	}
	if c := snap.Counters[0]; c.Name != "b_total" || c.Labels["reason"] != "x" || c.Value != 3 {
		t.Fatalf("counter[0] = %+v", c)
	}
	if g := snap.Gauges[0]; g.Name != "a_gauge" || g.Value != 7 {
		t.Fatalf("gauge[0] = %+v", g)
	}
	if g := snap.Gauges[1]; g.Name != "f_gauge" || g.Value != 2.5 {
		t.Fatalf("sampled gauge = %+v", g)
	}
	hs := snap.Histograms[0]
	if hs.Count != 3 || hs.Sum != 102.5 {
		t.Fatalf("histogram count/sum = %d/%v", hs.Count, hs.Sum)
	}
	// Non-cumulative buckets: one per (bound…], plus the +Inf bucket.
	if want := []int64{1, 1, 1}; len(hs.Counts) != 3 ||
		hs.Counts[0] != want[0] || hs.Counts[1] != want[1] || hs.Counts[2] != want[2] {
		t.Fatalf("bucket counts = %v, want %v", hs.Counts, want)
	}

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back RegistrySnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Histograms[0].Quantile(0.5) != snap.Histograms[0].Quantile(0.5) {
		t.Fatal("quantile changed across the JSON round-trip")
	}
	if back.Counters[1].Value != 4 || back.Gauges[1].Value != 2.5 {
		t.Fatal("values changed across the JSON round-trip")
	}

	var nilReg *Registry
	if s := nilReg.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestTracerSnapshotChain pins that the chain depth survives recording,
// coalescing, snapshotting, and the JSON round-trip — it is the
// tiebreaker the fleet merger sorts same-tick events by.
func TestTracerSnapshotChain(t *testing.T) {
	tr := NewTracer(4, 8)
	tr.Record(7, EvIssued, -1, 0, "")
	tr.RecordChain(7, EvFrameDrop, 3, 2, 5, "host-dead")
	tr.RecordChain(7, EvFrameDrop, 3, 2, 6, "host-dead") // coalesces, chain updates

	qt := tr.QueryTrace(7)
	if qt.Query != 7 || len(qt.Events) != 2 {
		t.Fatalf("trace = %+v", qt)
	}
	drop := qt.Events[1]
	if drop.Chain != 6 || drop.Count != 2 {
		t.Fatalf("coalesced drop = chain %d count %d, want chain 6 count 2", drop.Chain, drop.Count)
	}

	raw, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back TraceSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Queries) != 1 || back.Queries[0].Events[1].Chain != 6 {
		t.Fatalf("chain lost in round-trip: %+v", back)
	}
	if back.Queries[0].Events[0].KindName != "issued" {
		t.Fatalf("kind name lost: %+v", back.Queries[0].Events[0])
	}

	// An untracked query is an empty answer, not an error.
	if qt := tr.QueryTrace(99); qt.Query != 99 || len(qt.Events) != 0 {
		t.Fatalf("untracked query trace = %+v", qt)
	}
}

// TestExpositionEscaping pins the text-format escaping rules: backslash,
// double quote, and newline in label values; backslash and newline in
// HELP. The pre-fix renderer escaped label values twice (manual escape
// then %q), so a value holding one backslash rendered four.
func TestExpositionEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("e_total", "help with \\ and\nnewline", `path=C:\dir`).Add(1)
	reg.Counter("e_total", "help with \\ and\nnewline", "msg=say \"hi\"\nbye").Add(2)
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP e_total help with \\ and\nnewline
# TYPE e_total counter
e_total{msg="say \"hi\"\nbye"} 2
e_total{path="C:\\dir"} 1
`
	if b.String() != want {
		t.Fatalf("escaping mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestQuantileEdges pins the readout's edge cases: empty histogram,
// single observation, and every observation past the last bound.
func TestQuantileEdges(t *testing.T) {
	reg := NewRegistry()
	empty := reg.Histogram("empty_ms", "", []float64{10, 20})
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	single := reg.Histogram("single_ms", "", []float64{10, 20})
	single.Observe(7)
	// One observation in (0,10]: the whole distribution is that bucket, so
	// q=1 reads the bucket's upper bound and q=0.5 interpolates inside it.
	if got := single.Quantile(1.0); got != 10 {
		t.Fatalf("single-obs q1 = %v, want 10", got)
	}
	if got := single.Quantile(0.5); got != 5 {
		t.Fatalf("single-obs q0.5 = %v, want 5", got)
	}
	over := reg.Histogram("over_ms", "", []float64{10})
	over.Observe(50)
	over.Observe(500)
	if got := over.Quantile(0.99); got != 10 {
		t.Fatalf("all-overflow quantile = %v, want saturation at last bound 10", got)
	}
}

// TestAddBuckets pins the fleet-merge hook: folding one histogram's
// snapshot counts into another equals having observed everything in one
// histogram — same buckets, same count, same sum, same quantiles —
// which is what makes merged fleet quantiles real quantiles.
func TestAddBuckets(t *testing.T) {
	bounds := []float64{10, 20, 50, 100, 200, 500, 1000}
	reg := NewRegistry()
	a := reg.Histogram("a_ms", "", bounds)
	b := reg.Histogram("b_ms", "", bounds)
	all := reg.Histogram("all_ms", "", bounds)
	for i := 1; i <= 700; i++ { // a: uniform (0,700]
		a.Observe(float64(i))
		all.Observe(float64(i))
	}
	for i := 301; i <= 1200; i++ { // b: uniform (300,1200], overflows past 1000
		b.Observe(float64(i))
		all.Observe(float64(i))
	}

	merged := reg.Histogram("merged_ms", "", bounds)
	for _, src := range []*Histogram{a, b} {
		counts := make([]int64, len(src.counts))
		for i := range src.counts {
			counts[i] = src.counts[i].Load()
		}
		if err := merged.AddBuckets(counts, src.Sum()); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != all.Count() || merged.Sum() != all.Sum() {
		t.Fatalf("merged count/sum = %d/%v, want %d/%v",
			merged.Count(), merged.Sum(), all.Count(), all.Sum())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		if got, want := merged.Quantile(q), all.Quantile(q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("q%.2f: merged %v != concatenated %v", q, got, want)
		}
	}
	// And the merged quantile tracks the true sample quantile to within
	// one bucket's resolution (the 0.5-quantile of the 1600 concatenated
	// samples is sample #800 ≈ 550, inside the (500,1000] bucket).
	if got := merged.Quantile(0.5); got < 500 || got > 1000 {
		t.Fatalf("median %v outside the bucket holding the true median", got)
	}

	if err := merged.AddBuckets([]int64{1, 2}, 0); err == nil {
		t.Fatal("bucket-count mismatch must error")
	}
}
