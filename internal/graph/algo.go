package graph

// Alive is a predicate over hosts; algorithms that take one ignore hosts
// for which it returns false (and every edge incident to them). A nil
// predicate means "all hosts alive".
type Alive func(HostID) bool

// BFS runs a breadth-first search from src, restricted to hosts for which
// alive returns true, and returns the distance (in hops) from src to every
// host. Unreachable (or dead) hosts get distance -1. If src itself is dead,
// every entry is -1.
func (g *Graph) BFS(src HostID, alive Alive) []int32 {
	dist := make([]int32, g.Len())
	for i := range dist {
		dist[i] = -1
	}
	if alive != nil && !alive(src) {
		return dist
	}
	queue := make([]HostID, 0, 64)
	queue = append(queue, src)
	dist[src] = 0
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, n := range g.adj[h] {
			if dist[n] >= 0 {
				continue
			}
			if alive != nil && !alive(n) {
				continue
			}
			dist[n] = dist[h] + 1
			queue = append(queue, n)
		}
	}
	return dist
}

// Eccentricity returns the largest finite BFS distance from src among
// alive hosts, or -1 if src is dead.
func (g *Graph) Eccentricity(src HostID, alive Alive) int {
	dist := g.BFS(src, alive)
	ecc := -1
	for _, d := range dist {
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter computes the exact diameter of the graph restricted to alive
// hosts: the maximum over sources of eccentricity. It is O(|H|·(|H|+|E|)),
// so use DiameterSampled for large graphs.
func (g *Graph) Diameter(alive Alive) int {
	max := 0
	for h := 0; h < g.Len(); h++ {
		if alive != nil && !alive(HostID(h)) {
			continue
		}
		if e := g.Eccentricity(HostID(h), alive); e > max {
			max = e
		}
	}
	return max
}

// DiameterSampled lower-bounds the diameter using the standard
// double-sweep heuristic repeated `sweeps` times: BFS from a start host to
// find a far host, then BFS from that far host. On small-world and grid
// topologies the bound is exact or within one hop, which is all the
// protocols need (they only require an overestimate D̂ ≥ D, obtained by
// adding slack to this value).
func (g *Graph) DiameterSampled(sweeps int, alive Alive) int {
	if g.Len() == 0 {
		return 0
	}
	best := 0
	start := HostID(0)
	for s := 0; s < sweeps; s++ {
		// Find the first alive host at or after start.
		src := None
		for i := 0; i < g.Len(); i++ {
			h := HostID((int(start) + i) % g.Len())
			if alive == nil || alive(h) {
				src = h
				break
			}
		}
		if src == None {
			return 0
		}
		dist := g.BFS(src, alive)
		far, fd := src, int32(0)
		for h, d := range dist {
			if d > fd {
				far, fd = HostID(h), d
			}
		}
		if e := g.Eccentricity(far, alive); e > best {
			best = e
		}
		start = far + 1
	}
	return best
}

// Component returns the IDs of all alive hosts reachable from src
// (including src itself). If src is dead it returns nil.
func (g *Graph) Component(src HostID, alive Alive) []HostID {
	dist := g.BFS(src, alive)
	var comp []HostID
	for h, d := range dist {
		if d >= 0 {
			comp = append(comp, HostID(h))
		}
	}
	return comp
}

// Components returns all connected components over alive hosts, largest
// first.
func (g *Graph) Components(alive Alive) [][]HostID {
	seen := make([]bool, g.Len())
	var comps [][]HostID
	for h := 0; h < g.Len(); h++ {
		id := HostID(h)
		if seen[h] || (alive != nil && !alive(id)) {
			continue
		}
		comp := g.Component(id, alive)
		for _, c := range comp {
			seen[c] = true
		}
		comps = append(comps, comp)
	}
	// Largest first (stable enough for tests: sizes then first element).
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			if len(comps[j]) > len(comps[i]) {
				comps[i], comps[j] = comps[j], comps[i]
			}
		}
	}
	return comps
}

// IsConnected reports whether all alive hosts form a single component.
func (g *Graph) IsConnected(alive Alive) bool {
	comps := g.Components(alive)
	return len(comps) <= 1
}

// Reachable reports whether dst is reachable from src over alive hosts.
func (g *Graph) Reachable(src, dst HostID, alive Alive) bool {
	dist := g.BFS(src, alive)
	return dist[dst] >= 0
}
