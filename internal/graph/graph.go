// Package graph provides the undirected-graph representation of a network
// of hosts, G = (H, E), together with the traversal and structural
// algorithms the rest of the system needs: breadth-first search, diameter
// estimation, connected components, and induced subgraphs.
//
// Hosts are identified by dense integer IDs so that adjacency can be stored
// in slices and visited sets in bitmaps; all algorithms here are
// allocation-conscious because the oracle and topology generators run them
// on networks of tens of thousands of hosts inside benchmark loops.
package graph

import (
	"fmt"
	"sort"
)

// HostID identifies a host in the network. IDs are dense: a graph with n
// hosts uses IDs 0..n-1.
type HostID int32

// None is the sentinel "no host" value.
const None HostID = -1

// Graph is an undirected graph over dense host IDs. The zero value is an
// empty graph; use New or NewWithCapacity to preallocate.
type Graph struct {
	adj   [][]HostID
	edges int
}

// New returns a graph with n hosts and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]HostID, n)}
}

// NewWithCapacity returns a graph with n hosts, preallocating per-host
// adjacency storage for approximately avgDegree neighbors.
func NewWithCapacity(n, avgDegree int) *Graph {
	g := &Graph{adj: make([][]HostID, n)}
	if avgDegree > 0 {
		backing := make([]HostID, 0, n*avgDegree)
		_ = backing // adjacency slices grow independently; hint only.
	}
	return g
}

// Len returns the number of hosts.
func (g *Graph) Len() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Neighbors returns the adjacency list of h. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(h HostID) []HostID { return g.adj[h] }

// Degree returns the number of neighbors of h.
func (g *Graph) Degree(h HostID) int { return len(g.adj[h]) }

// HasEdge reports whether the undirected edge (a, b) exists.
func (g *Graph) HasEdge(a, b HostID) bool {
	// Scan the smaller adjacency list.
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, n := range g.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge (a, b). Self-loops and duplicate
// edges are ignored. It reports whether the edge was added.
func (g *Graph) AddEdge(a, b HostID) bool {
	if a == b || a < 0 || b < 0 || int(a) >= len(g.adj) || int(b) >= len(g.adj) {
		return false
	}
	if g.HasEdge(a, b) {
		return false
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.edges++
	return true
}

// AddHost appends a new host with no edges and returns its ID.
func (g *Graph) AddHost() HostID {
	g.adj = append(g.adj, nil)
	return HostID(len(g.adj) - 1)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]HostID, len(g.adj)), edges: g.edges}
	for i, ns := range g.adj {
		if len(ns) > 0 {
			c.adj[i] = append([]HostID(nil), ns...)
		}
	}
	return c
}

// SortAdjacency sorts every adjacency list in ascending ID order, which
// makes iteration order (and therefore whole simulations) deterministic.
func (g *Graph) SortAdjacency() {
	for _, ns := range g.adj {
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
}

// Edges calls fn once per undirected edge (a < b). Iteration stops early if
// fn returns false.
func (g *Graph) Edges(fn func(a, b HostID) bool) {
	for a, ns := range g.adj {
		for _, b := range ns {
			if HostID(a) < b {
				if !fn(HostID(a), b) {
					return
				}
			}
		}
	}
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{hosts=%d edges=%d}", g.Len(), g.edges)
}

// AvgDegree returns the mean degree 2|E|/|H|, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.Len() == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(g.Len())
}

// MaxDegree returns the largest degree in the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, ns := range g.adj {
		if len(ns) > max {
			max = len(ns)
		}
	}
	return max
}

// DegreeHistogram returns a map from degree to the number of hosts with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, ns := range g.adj {
		h[len(ns)]++
	}
	return h
}
