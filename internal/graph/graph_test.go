package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.Len() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: got %v", g)
	}
	if g.AvgDegree() != 0 {
		t.Fatalf("empty graph avg degree: got %v", g.AvgDegree())
	}
	if d := g.DiameterSampled(2, nil); d != 0 {
		t.Fatalf("empty graph diameter: got %d", d)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) should succeed")
	}
	if g.AddEdge(0, 1) {
		t.Fatal("duplicate edge should be rejected")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("reversed duplicate edge should be rejected")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("self-loop should be rejected")
	}
	if g.AddEdge(0, 99) {
		t.Fatal("out-of-range edge should be rejected")
	}
	if g.AddEdge(-1, 0) {
		t.Fatal("negative host should be rejected")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("absent edge reported present")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degree bookkeeping wrong")
	}
}

func TestAddHost(t *testing.T) {
	g := New(2)
	id := g.AddHost()
	if id != 2 || g.Len() != 3 {
		t.Fatalf("AddHost: id=%d len=%d", id, g.Len())
	}
	if !g.AddEdge(id, 0) {
		t.Fatal("edge to new host should succeed")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
	if c.NumEdges() != 2 || g.NumEdges() != 1 {
		t.Fatalf("edge counts: clone=%d orig=%d", c.NumEdges(), g.NumEdges())
	}
}

// path builds a path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(HostID(i), HostID(i+1))
	}
	return g
}

// cycle builds a cycle graph of n hosts.
func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(0, HostID(n-1))
	return g
}

func TestBFSPath(t *testing.T) {
	g := path(5)
	dist := g.BFS(0, nil)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSWithDeadHosts(t *testing.T) {
	g := path(5)
	alive := func(h HostID) bool { return h != 2 }
	dist := g.BFS(0, alive)
	if dist[1] != 1 {
		t.Fatalf("dist[1] = %d, want 1", dist[1])
	}
	if dist[2] != -1 || dist[3] != -1 || dist[4] != -1 {
		t.Fatalf("hosts beyond dead host should be unreachable: %v", dist)
	}
}

func TestBFSDeadSource(t *testing.T) {
	g := path(3)
	dist := g.BFS(0, func(h HostID) bool { return h != 0 })
	for i, d := range dist {
		if d != -1 {
			t.Fatalf("dead source: dist[%d] = %d, want -1", i, d)
		}
	}
}

func TestDiameterExact(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{path(2), 1},
		{path(10), 9},
		{cycle(10), 5},
		{cycle(11), 5},
	}
	for i, c := range cases {
		if d := c.g.Diameter(nil); d != c.want {
			t.Errorf("case %d: diameter = %d, want %d", i, d, c.want)
		}
	}
}

func TestDiameterSampledMatchesExactOnSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(30)
		g := path(n) // connected backbone
		for e := 0; e < n/2; e++ {
			g.AddEdge(HostID(rng.Intn(n)), HostID(rng.Intn(n)))
		}
		exact := g.Diameter(nil)
		sampled := g.DiameterSampled(4, nil)
		if sampled > exact {
			t.Fatalf("sampled diameter %d exceeds exact %d", sampled, exact)
		}
		if exact-sampled > 1 {
			t.Errorf("trial %d: sampled %d too far below exact %d", trial, sampled, exact)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5, 6 isolated
	comps := g.Components(nil)
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	if len(comps[0]) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(comps[0]))
	}
	if g.IsConnected(nil) {
		t.Fatal("disconnected graph reported connected")
	}
	if !path(4).IsConnected(nil) {
		t.Fatal("path reported disconnected")
	}
}

func TestComponentAfterFailure(t *testing.T) {
	// Star: failing the hub isolates all leaves.
	g := New(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, HostID(i))
	}
	alive := func(h HostID) bool { return h != 0 }
	comp := g.Component(1, alive)
	if len(comp) != 1 || comp[0] != 1 {
		t.Fatalf("component of leaf after hub failure: %v", comp)
	}
	if g.Reachable(1, 2, alive) {
		t.Fatal("leaves should be mutually unreachable after hub failure")
	}
	if !g.Reachable(1, 2, nil) {
		t.Fatal("leaves reachable through alive hub")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := cycle(5)
	count := 0
	g.Edges(func(a, b HostID) bool {
		if a >= b {
			t.Fatalf("edge callback order: a=%d b=%d", a, b)
		}
		count++
		return true
	})
	if count != 5 {
		t.Fatalf("edge iteration count = %d, want 5", count)
	}
	// Early stop.
	count = 0
	g.Edges(func(a, b HostID) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early-stop iteration count = %d, want 1", count)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	h := g.DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Fatalf("degree histogram = %v", h)
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("max degree = %d, want 3", g.MaxDegree())
	}
}

// Property: adjacency is always symmetric regardless of insertion pattern.
func TestQuickAdjacencySymmetry(t *testing.T) {
	f := func(pairs []uint16) bool {
		g := New(64)
		for _, p := range pairs {
			a := HostID(p >> 8 & 63)
			b := HostID(p & 63)
			g.AddEdge(a, b)
		}
		ok := true
		g.Edges(func(a, b HostID) bool {
			if !g.HasEdge(b, a) {
				ok = false
				return false
			}
			return true
		})
		// Degree sum must equal 2|E|.
		sum := 0
		for h := 0; h < g.Len(); h++ {
			sum += g.Degree(HostID(h))
		}
		return ok && sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances obey the triangle property along edges —
// neighbors' distances differ by at most 1 when both are reachable.
func TestQuickBFSNeighborDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		for e := 0; e < 2*n; e++ {
			g.AddEdge(HostID(rng.Intn(n)), HostID(rng.Intn(n)))
		}
		dist := g.BFS(0, nil)
		bad := false
		g.Edges(func(a, b HostID) bool {
			da, db := dist[a], dist[b]
			if da >= 0 && db >= 0 {
				diff := da - db
				if diff < -1 || diff > 1 {
					bad = true
					return false
				}
			}
			if (da >= 0) != (db >= 0) {
				bad = true // one endpoint reachable, the other not: impossible
				return false
			}
			return true
		})
		if bad {
			t.Fatalf("trial %d: BFS neighbor distance invariant violated", trial)
		}
	}
}

func TestSortAdjacencyDeterminism(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.SortAdjacency()
	ns := g.Neighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("adjacency not sorted: %v", ns)
		}
	}
}

func BenchmarkBFS40K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 40000
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(HostID(i), HostID(rng.Intn(i)))
	}
	for e := 0; e < 2*n; e++ {
		g.AddEdge(HostID(rng.Intn(n)), HostID(rng.Intn(n)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(0, nil)
	}
}
