package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"validity/internal/capture"
	"validity/internal/ring"
)

// CaptureRecapture exercises the §5.4 Jolly–Seber continuous size
// estimator on a churning population and reports per-interval estimates
// against the true size.
func CaptureRecapture(opt Options) (*Table, error) {
	opt = opt.defaults()
	n := scaled(20000, opt.Scale, 500)
	sample := n / 10
	rng := rand.New(rand.NewSource(opt.Seed))
	pop := capture.NewPopulation(n, rng)
	est, err := capture.NewEstimator(pop, pop, sample, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "capture",
		Title:   "Continuous size estimation by capture-recapture (§5.4)",
		Columns: []string{"interval", "true |H_t|", "marked", "recaptured", "estimate", "rel.err"},
	}
	const intervals = 12
	var errSum float64
	var errN int
	for i := 0; i < intervals; i++ {
		if i > 0 {
			// Memoryless churn: 5% leave, matched joins (assumption 3).
			pop.Advance(0.05, int(0.05*float64(pop.Size())))
		}
		r := est.Step()
		cell, relCell := "-", "-"
		if !math.IsNaN(r.Estimate) {
			cell = fmt.Sprintf("%.0f", r.Estimate)
			rel := math.Abs(r.Estimate/float64(pop.Size()) - 1)
			relCell = fmt.Sprintf("%.3f", rel)
			errSum += rel
			errN++
		}
		t.AddRow(fmt.Sprintf("%d", r.Interval), fmt.Sprintf("%d", pop.Size()),
			fmt.Sprintf("%d", r.Marked), fmt.Sprintf("%d", r.Recaptured), cell, relCell)
	}
	if errN > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("mean relative error %.3f over %d estimating intervals", errSum/float64(errN), errN))
	}
	t.Notes = append(t.Notes,
		"§5.4 shape: estimation starts at interval 2 (M_1 = ∅) and tracks |H_t| under churn")
	return t, nil
}

// RingEstimator exercises the protocol-specific §5.4 estimator s/X_s on a
// Chord-like ring, sweeping the sample size s.
func RingEstimator(opt Options) (*Table, error) {
	opt = opt.defaults()
	n := scaled(20000, opt.Scale, 500)
	rng := rand.New(rand.NewSource(opt.Seed))
	r := ring.NewWithHosts(n, rng)
	t := &Table{
		ID:      "ring",
		Title:   "Ring segment-length size estimator s/X_s (§5.4)",
		Columns: []string{"sample s", "mean estimate", "rel.err"},
	}
	for _, s := range []int{8, 32, 128, 512} {
		var ests []float64
		for trial := 0; trial < opt.Trials; trial++ {
			e, err := r.EstimateSize(s)
			if err != nil {
				return nil, err
			}
			ests = append(ests, e)
		}
		m := summarize(ests)
		t.AddRow(fmt.Sprintf("%d", s), fmt.Sprintf("%.0f", m.Mean),
			fmt.Sprintf("%.3f", math.Abs(m.Mean/float64(n)-1)))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("true size %d; error shrinks as s grows (unbiased estimator, §5.4)", n))
	return t, nil
}
