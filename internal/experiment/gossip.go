package experiment

import (
	"fmt"
	"math"

	"math/rand"
	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
)

// GossipComparison is an extension experiment beyond the paper's figures:
// it quantifies §2.2's qualitative claim that epidemic algorithms offer
// only eventual consistency. Push-sum gossip (Kempe et al. [19]) is run
// for increasing round budgets against WILDFIRE on the same topology,
// failure-free and under churn, reporting accuracy and message cost. The
// point: gossip converges with enough rounds — eventual consistency — but
// no individual answer carries a guarantee the user could check, whereas
// WILDFIRE's answers ship H_C/H_U validity bounds at the cost of FM
// estimation error and a message premium.
func GossipComparison(opt Options) (*Table, error) {
	opt = opt.defaults()
	n := scaled(20000, opt.Scale, 300)
	g, values, d := buildTopology(topology.Random, n, opt.Seed)
	truth := agg.Exact(agg.Avg, values)

	t := &Table{
		ID:    "gossip",
		Title: "Push-sum gossip (eventual consistency, §2.2) vs WILDFIRE (validity)",
		Columns: []string{"rounds", "gossip rel.err (no churn)", "gossip msgs",
			"gossip rel.err (10% churn)", "wildfire rel.err", "wildfire msgs"},
	}

	r := g.Len() / 10
	q := protocol.Query{Kind: agg.Avg, Hq: 0, DHat: d + 2, Params: agg.Params{Vectors: 32, Bits: 32}}

	// One WILDFIRE reference run under the same churn draw.
	wfNet := sim.NewNetwork(sim.Config{Graph: g, Seed: opt.Seed, Values: values})
	wfSched := churn.UniformRemoval(g.Len(), r, q.Hq, 0, q.Deadline(), rand.New(rand.NewSource(opt.Seed)))
	wfSched.Apply(wfNet)
	wfV, wfStats, err := protocol.Run(protocol.NewWildfire(q), wfNet)
	if err != nil {
		return nil, err
	}
	wfErr := math.Abs(wfV/truth - 1)

	for _, rounds := range []int{10, 20, 40, 80} {
		clean := protocol.NewGossip(q, rounds)
		cleanNet := sim.NewNetwork(sim.Config{Graph: g, Seed: opt.Seed, Values: values})
		cv, cStats, err := protocol.Run(clean, cleanNet)
		if err != nil {
			return nil, err
		}
		churned := protocol.NewGossip(q, rounds)
		churnNet := sim.NewNetwork(sim.Config{Graph: g, Seed: opt.Seed, Values: values})
		sched := churn.UniformRemoval(g.Len(), r, q.Hq, 0, sim.Time(rounds),
			rand.New(rand.NewSource(opt.Seed)))
		sched.Apply(churnNet)
		hv, _, err := protocol.Run(churned, churnNet)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", rounds),
			fmt.Sprintf("%.3f", math.Abs(cv/truth-1)),
			fmt.Sprintf("%d", cStats.MessagesSent),
			fmt.Sprintf("%.3f", math.Abs(hv/truth-1)),
			fmt.Sprintf("%.3f", wfErr),
			fmt.Sprintf("%d", wfStats.MessagesSent))
		opt.progress("gossip: rounds=%d done", rounds)
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: §2.2 contrast made quantitative;",
		"shape: gossip converges with enough rounds (eventual consistency) and for avg under",
		"value-independent churn it even converges accurately — but no run carries a per-answer",
		"guarantee: the user cannot tell a converged answer from a mid-churn one. WILDFIRE's",
		"answer costs FM estimation error plus its message premium, and in exchange every",
		"answer ships checkable H_C/H_U validity bounds (the paper's trade)")
	return t, nil
}
