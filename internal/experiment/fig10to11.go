package experiment

import (
	"fmt"

	"validity/internal/agg"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
)

// Fig10 reproduces "Communication costs on Random" (§6.6): messages sent
// against network size |H| for a count query, with WILDFIRE run at several
// overestimates D̂ (the curves must overlap — cost is independent of D̂),
// SPANNINGTREE and DAG(k=2) near each other, and a Gnutella data point.
func Fig10(opt Options) (*Table, error) {
	opt = opt.defaults()
	sizes := []int{5000, 10000, 20000, 40000}
	var ns []int
	for _, s := range sizes {
		ns = append(ns, scaled(s, opt.Scale, 250))
	}
	t := &Table{
		ID:    "fig10",
		Title: "Communication costs on Random (count query, messages vs |H|)",
		Columns: []string{"|H|", "wildfire D̂=D+2", "wildfire D̂=D+5", "wildfire D̂=D+10",
			"spanningtree", "dag(k=2)"},
	}
	for _, n := range ns {
		g, values, d := buildTopology(topology.Random, n, opt.Seed)
		row := []string{fmt.Sprintf("%d", g.Len())}
		for _, extra := range []int{2, 5, 10} {
			tr, err := runTrial(g, values, agg.Count,
				protoSpec{"wildfire", func(q protocol.Query) protocol.Protocol { return protocol.NewWildfire(q) }},
				0, d+extra, opt.Seed, sim.MediumPointToPoint, false)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", tr.Stats.MessagesSent))
		}
		for _, spec := range []protoSpec{
			{"spanningtree", func(q protocol.Query) protocol.Protocol { return protocol.NewSpanningTree(q) }},
			{"dag(k=2)", func(q protocol.Query) protocol.Protocol { return protocol.NewDAG(q, 2) }},
		} {
			tr, err := runTrial(g, values, agg.Count, spec, 0, d+2, opt.Seed, sim.MediumPointToPoint, false)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", tr.Stats.MessagesSent))
		}
		t.AddRow(row...)
		opt.progress("fig10: |H|=%d done", g.Len())
	}
	// Gnutella data point (paper overlays it on the same axes).
	gn := scaled(topology.GnutellaSize, opt.Scale, 500)
	g, values, d := buildTopology(topology.Gnutella, gn, opt.Seed)
	wf, err := runTrial(g, values, agg.Count,
		protoSpec{"wildfire", func(q protocol.Query) protocol.Protocol { return protocol.NewWildfire(q) }},
		0, d+2, opt.Seed, sim.MediumPointToPoint, false)
	if err != nil {
		return nil, err
	}
	st, err := runTrial(g, values, agg.Count,
		protoSpec{"spanningtree", func(q protocol.Query) protocol.Protocol { return protocol.NewSpanningTree(q) }},
		0, d+2, opt.Seed, sim.MediumPointToPoint, false)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("gnutella point |H|=%d: wildfire=%d spanningtree=%d (ratio %.1f×)",
			g.Len(), wf.Stats.MessagesSent, st.Stats.MessagesSent,
			float64(wf.Stats.MessagesSent)/float64(st.Stats.MessagesSent)),
		"paper shape: wildfire curves for different D̂ overlap; wildfire ≈ 4-5× spanningtree; dag ≈ spanningtree")
	return t, nil
}

// Fig11 reproduces "Communication costs on Grid" (§6.6): grids with
// broadcast (wireless) radios, showing count/max/min under WILDFIRE
// against SPANNINGTREE and DAG. The paper's findings: DAG overlaps
// SPANNINGTREE (broadcast makes extra parents free), WILDFIRE count ≈ 5×
// SPANNINGTREE, and WILDFIRE min costs *less* than SPANNINGTREE thanks to
// early aggregation during broadcast.
func Fig11(opt Options) (*Table, error) {
	opt = opt.defaults()
	sizes := []int{2500, 5625, 10000}
	t := &Table{
		ID:    "fig11",
		Title: "Communication costs on Grid (wireless medium, messages vs |H|)",
		Columns: []string{"|H|", "wildfire-count", "wildfire-max", "wildfire-min",
			"spanningtree", "dag(k=2)"},
	}
	for _, s := range sizes {
		n := scaled(s, opt.Scale, 100)
		g, values, d := buildTopology(topology.Grid, n, opt.Seed)
		row := []string{fmt.Sprintf("%d", g.Len())}
		for _, kind := range []agg.Kind{agg.Count, agg.Max, agg.Min} {
			tr, err := runTrial(g, values, kind,
				protoSpec{"wildfire", func(q protocol.Query) protocol.Protocol { return protocol.NewWildfire(q) }},
				0, d+2, opt.Seed, sim.MediumWireless, false)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", tr.Stats.MessagesSent))
		}
		for _, spec := range []protoSpec{
			{"spanningtree", func(q protocol.Query) protocol.Protocol { return protocol.NewSpanningTree(q) }},
			{"dag(k=2)", func(q protocol.Query) protocol.Protocol { return protocol.NewDAG(q, 2) }},
		} {
			tr, err := runTrial(g, values, agg.Count, spec, 0, d+2, opt.Seed, sim.MediumWireless, false)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", tr.Stats.MessagesSent))
		}
		t.AddRow(row...)
		opt.progress("fig11: |H|=%d done", g.Len())
	}
	t.Notes = append(t.Notes,
		"paper shape: dag overlaps spanningtree under wireless; wildfire-count ≈ 5× spanningtree;",
		"wildfire-max < wildfire-count; wildfire-min < spanningtree (early aggregation, §6.6)")
	return t, nil
}
