package experiment

import (
	"fmt"
	"math/rand"

	"validity/internal/fm"
	"validity/internal/zipfval"
)

// Fig6 reproduces "Accuracy of count and sum operators" (§6.4): the ratio
// m̂/m of estimated to true value against the number of FM repetitions c,
// for operand multisets of sizes 2^10, 2^12 and 2^14 drawn from
// Zipf[10,500]. The paper's observation: the ratio converges to 1 quickly,
// with c ≈ 8 already sufficient.
func Fig6(opt Options) (*Table, error) {
	opt = opt.defaults()
	sizes := []int{1 << 10, 1 << 12, 1 << 14}
	if opt.Scale < 1 {
		sizes = []int{1 << 8, 1 << 10, 1 << 12}
	}
	cs := []int{1, 2, 4, 8, 16, 32}
	t := &Table{
		ID:    "fig6",
		Title: "Accuracy of count and sum operators (ratio estimate/actual vs repetitions c)",
		Columns: []string{"c",
			fmt.Sprintf("count m=%d", sizes[0]), fmt.Sprintf("count m=%d", sizes[1]), fmt.Sprintf("count m=%d", sizes[2]),
			fmt.Sprintf("sum m=%d", sizes[0]), fmt.Sprintf("sum m=%d", sizes[1]), fmt.Sprintf("sum m=%d", sizes[2])},
	}
	for _, c := range cs {
		row := []string{fmt.Sprintf("%d", c)}
		var countCells, sumCells []string
		for _, m := range sizes {
			var countRatios, sumRatios []float64
			for trial := 0; trial < opt.Trials; trial++ {
				seed := opt.Seed + int64(1000*c+10*m+trial)
				rng := rand.New(rand.NewSource(seed))
				values := zipfval.Default(seed).Values(m)
				// count: estimate |M|.
				cnt := fm.CountSet(m, c, fm.DefaultBits, rng)
				countRatios = append(countRatios, cnt.Estimate()/float64(m))
				// sum: estimate Σ values.
				var truth int64
				for _, v := range values {
					truth += v
				}
				sum := fm.SumSet(values, c, fm.DefaultBits, rng)
				sumRatios = append(sumRatios, sum.Estimate()/float64(truth))
			}
			countCells = append(countCells, fmt.Sprintf("%.2f", summarize(countRatios).Mean))
			sumCells = append(sumCells, fmt.Sprintf("%.2f", summarize(sumRatios).Mean))
		}
		row = append(row, countCells...)
		row = append(row, sumCells...)
		t.AddRow(row...)
		opt.progress("fig6: c=%d done", c)
	}
	t.Notes = append(t.Notes,
		"paper shape: ratios converge to 1 as c grows; c≈8 already accurate (§6.4)")
	return t, nil
}
