// Package experiment regenerates every table and figure of the paper's
// evaluation (§6). Each FigN function runs the corresponding experiment
// and returns a Table whose rows are the series the paper plots; the
// cmd/validitybench binary renders them, and bench_test.go at the
// repository root wires each one to a testing.B benchmark.
//
// Experiments accept an Options.Scale factor so the same code drives both
// quick benchmark-sized runs and full paper-sized runs (|H| = 39,046
// Gnutella, 40K synthetic, 100×100 grids).
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/oracle"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies the paper's workload sizes; 1.0 reproduces the
	// paper, smaller values shrink networks and trial counts
	// proportionally (sizes are clamped to sane minimums).
	Scale float64
	// Trials overrides the per-point repetition count (paper: 10).
	Trials int
	// Seed drives all randomness.
	Seed int64
	// Progress, when non-nil, receives one line per completed data point.
	Progress io.Writer
}

// Defaults fills unset fields.
func (o Options) defaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Trials <= 0 {
		o.Trials = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// scaled returns max(lo, round(v·scale)).
func scaled(v int, scale float64, lo int) int {
	n := int(math.Round(float64(v) * scale))
	if n < lo {
		n = lo
	}
	return n
}

// Table is a rendered experiment: the rows the paper's figure plots.
type Table struct {
	ID      string // e.g. "fig7"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV emits the table as CSV (header + rows) for external plotting
// tools; notes become trailing comment lines.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// summary is a mean with a 95% confidence interval over trials.
type summary struct {
	Mean float64
	CI   float64
	N    int
}

func summarize(xs []float64) summary {
	n := len(xs)
	if n == 0 {
		return summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return summary{Mean: mean, N: 1}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	// Normal approximation (paper uses 95% CIs over 10 trials).
	ci := 1.96 * sd / math.Sqrt(float64(n))
	return summary{Mean: mean, CI: ci, N: n}
}

func (s summary) String() string {
	if s.N <= 1 {
		return fmt.Sprintf("%.1f", s.Mean)
	}
	return fmt.Sprintf("%.1f±%.1f", s.Mean, s.CI)
}

// protoSpec names one protocol configuration in the comparisons.
type protoSpec struct {
	name  string
	build func(protocol.Query) protocol.Protocol
}

func comparedProtocols() []protoSpec {
	return []protoSpec{
		{"wildfire", func(q protocol.Query) protocol.Protocol { return protocol.NewWildfire(q) }},
		{"spanningtree", func(q protocol.Query) protocol.Protocol { return protocol.NewSpanningTree(q) }},
		{"dag(k=2)", func(q protocol.Query) protocol.Protocol { return protocol.NewDAG(q, 2) }},
		{"dag(k=3)", func(q protocol.Query) protocol.Protocol { return protocol.NewDAG(q, 3) }},
	}
}

// trialResult is one protocol run under one churn draw.
type trialResult struct {
	Value  float64
	Stats  *sim.Stats
	Bounds oracle.Bounds
}

// runTrial executes one protocol over g with R uniform removals.
func runTrial(g *graph.Graph, values []int64, kind agg.Kind, spec protoSpec,
	r int, dHat int, seed int64, medium sim.Medium, withOracle bool) (trialResult, error) {
	q := protocol.Query{Kind: kind, Hq: 0, DHat: dHat, Params: agg.DefaultParams()}
	nw := sim.NewNetwork(sim.Config{Graph: g, Medium: medium, Seed: seed, Values: values})
	var sched churn.Schedule
	if r > 0 {
		sched = churn.UniformRemoval(g.Len(), r, q.Hq, 0, q.Deadline(),
			rand.New(rand.NewSource(seed)))
	}
	sched.Apply(nw)
	p := spec.build(q)
	v, stats, err := protocol.Run(p, nw)
	if err != nil {
		return trialResult{}, fmt.Errorf("%s: %w", spec.name, err)
	}
	tr := trialResult{Value: v, Stats: stats}
	if withOracle {
		tr.Bounds = oracle.Compute(g, values, q.Hq, sched, q.Deadline(), kind)
	}
	return tr, nil
}

// buildTopology constructs a topology with Zipf attribute values.
func buildTopology(kind topology.Kind, n int, seed int64) (*graph.Graph, []int64, int) {
	g := topology.Generate(kind, n, seed)
	values := zipfval.Default(seed).Values(g.Len())
	d := g.DiameterSampled(2, nil)
	return g, values, d
}

// percentile returns the p-th percentile (0..100) of xs.
func percentile(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
