package experiment

import (
	"fmt"

	"validity/internal/agg"
	"validity/internal/sim"
	"validity/internal/topology"
)

// validityFigure runs the §6.5 experiment: query result v against the
// number of departures R for every protocol, with the ORACLE's H_C / H_U
// bounds as the frame of reference, averaged over trials with 95% CIs.
func validityFigure(id, title string, topo topology.Kind, n int, kind agg.Kind,
	medium sim.Medium, opt Options) (*Table, error) {
	opt = opt.defaults()
	n = scaled(n, opt.Scale, 200)
	g, values, d := buildTopology(topo, n, opt.Seed)
	dHat := d + 2

	rs := []int{256, 512, 1024, 2048, 4096}
	maxR := g.Len() / 4
	var rsScaled []int
	for _, r := range rs {
		r = scaled(r, opt.Scale, 4)
		if r > maxR {
			r = maxR
		}
		if len(rsScaled) > 0 && r <= rsScaled[len(rsScaled)-1] {
			continue
		}
		rsScaled = append(rsScaled, r)
	}

	specs := comparedProtocols()
	cols := []string{"R", "oracle-lower", "oracle-upper"}
	for _, s := range specs {
		cols = append(cols, s.name)
	}
	t := &Table{ID: id, Title: title, Columns: cols}

	for _, r := range rsScaled {
		var lower, upper []float64
		means := make([][]float64, len(specs))
		for trial := 0; trial < opt.Trials; trial++ {
			seed := opt.Seed + int64(trial)*7919
			for si, spec := range specs {
				tr, err := runTrial(g, values, kind, spec, r, dHat, seed, medium, si == 0)
				if err != nil {
					return nil, err
				}
				means[si] = append(means[si], tr.Value)
				if si == 0 {
					lower = append(lower, tr.Bounds.LowerValue)
					upper = append(upper, tr.Bounds.UpperValue)
				}
			}
		}
		row := []string{fmt.Sprintf("%d", r),
			summarize(lower).String(), summarize(upper).String()}
		for si := range specs {
			row = append(row, summarize(means[si]).String())
		}
		t.AddRow(row...)
		opt.progress("%s: R=%d done", id, r)
	}
	t.Notes = append(t.Notes,
		"paper shape: WILDFIRE stays within the oracle bounds at every R;",
		"SPANNINGTREE and DAG fall below oracle-lower as R grows, DAG(k=3) > DAG(k=2) > ST",
		fmt.Sprintf("|H|=%d |E|=%d D̂=%d; count/sum cells are FM estimates (c=%d)",
			g.Len(), g.NumEdges(), dHat, agg.DefaultParams().Vectors))
	return t, nil
}

// Fig7 reproduces "Count query on the Gnutella topology" (§6.5): result v
// vs departures R with ORACLE bounds.
func Fig7(opt Options) (*Table, error) {
	return validityFigure("fig7", "Count query on the Gnutella topology",
		topology.Gnutella, topology.GnutellaSize, agg.Count, sim.MediumPointToPoint, opt)
}

// Fig8 reproduces "Sum query on the Gnutella topology" (§6.5).
func Fig8(opt Options) (*Table, error) {
	return validityFigure("fig8", "Sum query on the Gnutella topology",
		topology.Gnutella, topology.GnutellaSize, agg.Sum, sim.MediumPointToPoint, opt)
}

// Fig9 reproduces "Count query on the Grid topology" (§6.5); the paper's
// grid is 100×100 = 10K sensors with broadcast radios.
func Fig9(opt Options) (*Table, error) {
	return validityFigure("fig9", "Count query on the Grid topology",
		topology.Grid, 10000, agg.Count, sim.MediumWireless, opt)
}
