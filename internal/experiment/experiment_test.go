package experiment

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

// tiny returns options that make every experiment run in well under a
// second.
func tiny() Options { return Options{Scale: 0.02, Trials: 2, Seed: 1} }

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := r(tiny())
			if err != nil {
				t.Fatal(err)
			}
			if tb.ID != id {
				t.Fatalf("table id %q != %q", tb.ID, id)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("no rows produced")
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tb.Columns))
				}
			}
			var buf bytes.Buffer
			tb.Render(&buf)
			if !strings.Contains(buf.String(), tb.Title) {
				t.Fatal("render missing title")
			}
		})
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary wrong")
	}
	s = summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.CI != 0 {
		t.Fatalf("singleton summary: %+v", s)
	}
	if s.String() != "5.0" {
		t.Fatalf("singleton string %q", s.String())
	}
	s = summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// sd = sqrt(2.5) ≈ 1.581; ci = 1.96·1.581/√5 ≈ 1.386.
	if math.Abs(s.CI-1.386) > 0.01 {
		t.Fatalf("ci = %v, want ≈ 1.386", s.CI)
	}
	if !strings.Contains(s.String(), "±") {
		t.Fatalf("multi-sample string %q lacks ±", s.String())
	}
}

func TestPercentile(t *testing.T) {
	xs := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if percentile(xs, 50) != 5 {
		t.Fatalf("p50 = %d", percentile(xs, 50))
	}
	if percentile(xs, 100) != 10 {
		t.Fatalf("p100 = %d", percentile(xs, 100))
	}
	if percentile(xs, 1) != 1 {
		t.Fatalf("p1 = %d", percentile(xs, 1))
	}
	if percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestScaled(t *testing.T) {
	if scaled(1000, 0.5, 10) != 500 {
		t.Fatal("scaled(1000, .5) != 500")
	}
	if scaled(1000, 0.001, 10) != 10 {
		t.Fatal("clamping failed")
	}
}

// Fig6 convergence: at small scale, the mean accuracy ratio at c=16 must
// be closer to 1 than at c=1 for the largest operand size.
func TestFig6ConvergenceShape(t *testing.T) {
	tb, err := Fig6(Options{Scale: 0.1, Trials: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dist := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[3], 64) // count at largest size
		if err != nil {
			t.Fatalf("bad cell %q", row[3])
		}
		return math.Abs(v - 1)
	}
	var c1, c16 []string
	for _, row := range tb.Rows {
		switch row[0] {
		case "1":
			c1 = row
		case "16":
			c16 = row
		}
	}
	if c1 == nil || c16 == nil {
		t.Fatal("missing rows for c=1/c=16")
	}
	if dist(c16) > dist(c1)+0.05 {
		t.Fatalf("accuracy did not improve with c: |c1-1|=%.2f |c16-1|=%.2f", dist(c1), dist(c16))
	}
}

// Fig7 shape at reduced scale: wildfire's mean must stay at or above the
// oracle lower bound at the highest churn level, spanningtree's must not
// exceed wildfire's.
func TestFig7ValidityShape(t *testing.T) {
	tb, err := Fig7(Options{Scale: 0.02, Trials: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	parse := func(cell string) float64 {
		cell = strings.SplitN(cell, "±", 2)[0]
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	lower := parse(last[1])
	wf := parse(last[3])
	st := parse(last[4])
	if wf < lower/6 {
		t.Fatalf("wildfire mean %v far below oracle lower %v", wf, lower)
	}
	if st > wf*1.5 {
		t.Fatalf("spanningtree (%v) above wildfire (%v) under churn", st, wf)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "T",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"hello"},
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n1,2\n3,4\n") || !strings.Contains(out, "# hello") {
		t.Fatalf("csv output:\n%s", out)
	}
}
