package experiment

import (
	"fmt"

	"validity/internal/agg"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
)

// Fig12 reproduces "Computation cost on Power-Law and Grid" (§6.6.1): the
// distribution of per-host computation cost (messages processed) for a
// count query. The paper plots #hosts against cost; we report the
// distribution's percentiles and maximum, which pin the same shape:
// WILDFIRE's curve is SPANNINGTREE's shifted right ≈ 2× on Power-Law,
// while on Grid the maximum is ≈ 40–44× SPANNINGTREE's.
func Fig12(opt Options) (*Table, error) {
	opt = opt.defaults()
	t := &Table{
		ID:      "fig12",
		Title:   "Computation cost distribution (count query): per-host messages processed",
		Columns: []string{"topology", "protocol", "p50", "p90", "p99", "max"},
	}
	topos := []struct {
		kind   topology.Kind
		n      int
		medium sim.Medium
	}{
		{topology.PowerLaw, 40000, sim.MediumPointToPoint},
		{topology.Grid, 10000, sim.MediumWireless},
	}
	specs := []protoSpec{
		{"wildfire", func(q protocol.Query) protocol.Protocol { return protocol.NewWildfire(q) }},
		{"spanningtree", func(q protocol.Query) protocol.Protocol { return protocol.NewSpanningTree(q) }},
	}
	ratios := make(map[topology.Kind]float64)
	for _, tp := range topos {
		n := scaled(tp.n, opt.Scale, 400)
		g, values, d := buildTopology(tp.kind, n, opt.Seed)
		var maxByProto []int64
		for _, spec := range specs {
			tr, err := runTrial(g, values, agg.Count, spec, 0, d+2, opt.Seed, tp.medium, false)
			if err != nil {
				return nil, err
			}
			per := tr.Stats.PerHostProcessed
			t.AddRow(tp.kind.String(), spec.name,
				fmt.Sprintf("%d", percentile(per, 50)),
				fmt.Sprintf("%d", percentile(per, 90)),
				fmt.Sprintf("%d", percentile(per, 99)),
				fmt.Sprintf("%d", tr.Stats.MaxComputation()))
			maxByProto = append(maxByProto, tr.Stats.MaxComputation())
			opt.progress("fig12: %s/%s done", tp.kind, spec.name)
		}
		if maxByProto[1] > 0 {
			ratios[tp.kind] = float64(maxByProto[0]) / float64(maxByProto[1])
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("max-computation ratio wildfire/spanningtree: power-law %.1f×, grid %.1f×",
			ratios[topology.PowerLaw], ratios[topology.Grid]),
		"paper shape: ≈2× on power-law (same curve shifted right); ≈40-44× on grid (§6.6.1)")
	return t, nil
}

// Fig13a reproduces "Time cost on Random" (§6.6.2): the protocol time cost
// against |H|. SPANNINGTREE has the least latency (its longest message
// chain); WILDFIRE declares at exactly 2D̂δ, so its cost is constant per
// D̂ and grows proportionally with the overestimate.
func Fig13a(opt Options) (*Table, error) {
	opt = opt.defaults()
	sizes := []int{5000, 10000, 20000, 40000}
	t := &Table{
		ID:    "fig13a",
		Title: "Time cost on Random (count query)",
		Columns: []string{"|H|", "spanningtree", "wildfire D̂=D+2", "wildfire D̂=D+5",
			"wildfire D̂=D+10"},
	}
	for _, s := range sizes {
		n := scaled(s, opt.Scale, 250)
		g, values, d := buildTopology(topology.Random, n, opt.Seed)
		st, err := runTrial(g, values, agg.Count,
			protoSpec{"spanningtree", func(q protocol.Query) protocol.Protocol { return protocol.NewSpanningTree(q) }},
			0, d+2, opt.Seed, sim.MediumPointToPoint, false)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", g.Len()), fmt.Sprintf("%d", st.Stats.TimeCost)}
		for _, extra := range []int{2, 5, 10} {
			// WILDFIRE's time cost is its deadline 2D̂δ (§6.6.2).
			row = append(row, fmt.Sprintf("%d", 2*(d+extra)))
		}
		t.AddRow(row...)
		opt.progress("fig13a: |H|=%d done", g.Len())
	}
	t.Notes = append(t.Notes,
		"paper shape: spanningtree lowest; wildfire = 2D̂δ, growing with the overestimate D̂")
	return t, nil
}

// Fig13b reproduces "number of messages sent by WILDFIRE at each time
// instant" (§6.6.2): the per-tick message trace of a count query on each
// topology. The paper's shape: traffic peaks near Dδ and drops to zero by
// 2Dδ, which is why overestimating D̂ costs time but no messages.
func Fig13b(opt Options) (*Table, error) {
	opt = opt.defaults()
	topos := []struct {
		kind topology.Kind
		n    int
	}{
		{topology.Random, 40000},
		{topology.PowerLaw, 40000},
		{topology.Grid, 10000},
		{topology.Gnutella, topology.GnutellaSize},
	}
	t := &Table{
		ID:      "fig13b",
		Title:   "Messages sent by WILDFIRE per time instant (count query)",
		Columns: []string{"topology", "D", "peak-tick", "peak-msgs", "last-tick-with-traffic", "2D"},
	}
	for _, tp := range topos {
		n := scaled(tp.n, opt.Scale, 400)
		g, values, d := buildTopology(tp.kind, n, opt.Seed)
		tr, err := runTrial(g, values, agg.Count,
			protoSpec{"wildfire", func(q protocol.Query) protocol.Protocol { return protocol.NewWildfire(q) }},
			0, d+5, opt.Seed, sim.MediumPointToPoint, false)
		if err != nil {
			return nil, err
		}
		trace := tr.Stats.PerTickSent
		peakTick, last := 0, 0
		var peak int64
		for i, m := range trace {
			if m > peak {
				peak, peakTick = m, i
			}
			if m > 0 {
				last = i
			}
		}
		t.AddRow(tp.kind.String(), fmt.Sprintf("%d", d), fmt.Sprintf("%d", peakTick),
			fmt.Sprintf("%d", peak), fmt.Sprintf("%d", last), fmt.Sprintf("%d", 2*d))
		opt.progress("fig13b: %s done", tp.kind)
	}
	t.Notes = append(t.Notes,
		"paper shape: peak near Dδ; no traffic after 2Dδ even when D̂ > D (so overestimates",
		"cost latency, not messages)")
	return t, nil
}
