package experiment

import (
	"fmt"
	"sort"
)

// Runner produces one experiment table.
type Runner func(Options) (*Table, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"fig6":    Fig6,
	"fig7":    Fig7,
	"fig8":    Fig8,
	"fig9":    Fig9,
	"fig10":   Fig10,
	"fig11":   Fig11,
	"fig12":   Fig12,
	"fig13a":  Fig13a,
	"fig13b":  Fig13b,
	"capture": CaptureRecapture,
	"ring":    RingEstimator,
	"gossip":  GossipComparison,
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup returns the runner for id.
func Lookup(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return r, nil
}
