package churn

import (
	"sort"

	"validity/internal/graph"
	"validity/internal/sim"
)

// Index is a Schedule prepared for repeated liveness queries: failures
// sorted by time for prefix scans plus a host→first-failure map for O(1)
// lookups. The plain Schedule methods (Failed, FailTime) scan the whole
// slice on every call, which is fine for one-shot reporting but quadratic
// when a loop probes every host — the oracle, the continuous driver, and
// the engine's per-query membership tables all go through an Index
// instead.
type Index struct {
	sorted Schedule
	first  map[graph.HostID]sim.Time
}

// Index builds the indexed view of the schedule. The schedule is not
// retained; duplicate entries for a host collapse to the earliest.
func (s Schedule) Index() *Index {
	ix := &Index{
		sorted: append(Schedule(nil), s...),
		first:  make(map[graph.HostID]sim.Time, len(s)),
	}
	sort.SliceStable(ix.sorted, func(i, j int) bool { return ix.sorted[i].T < ix.sorted[j].T })
	for _, f := range ix.sorted {
		if _, ok := ix.first[f.H]; !ok {
			ix.first[f.H] = f.T
		}
	}
	return ix
}

// Len returns the number of distinct hosts that ever fail.
func (ix *Index) Len() int { return len(ix.first) }

// FailTime returns the first failure time of h, or -1 if h never fails.
func (ix *Index) FailTime(h graph.HostID) sim.Time {
	if t, ok := ix.first[h]; ok {
		return t
	}
	return -1
}

// Alive reports whether h is still a member at time t: it never fails, or
// fails strictly after t.
func (ix *Index) Alive(h graph.HostID, t sim.Time) bool {
	ft, ok := ix.first[h]
	return !ok || ft > t
}

// Survives reports whether h outlives the whole interval [0, horizon]
// (fails strictly after it, or never) — the membership predicate behind
// the oracle's H_C.
func (ix *Index) Survives(h graph.HostID, horizon sim.Time) bool {
	return ix.Alive(h, horizon)
}

// FailedBy returns the hosts whose first failure is at or before t, in
// failure order. The prefix scan over the sorted slice costs O(answer),
// not O(schedule).
func (ix *Index) FailedBy(t sim.Time) []graph.HostID {
	var out []graph.HostID
	seen := make(map[graph.HostID]bool)
	for _, f := range ix.sorted {
		if f.T > t {
			break
		}
		if !seen[f.H] {
			seen[f.H] = true
			out = append(out, f.H)
		}
	}
	return out
}
