package churn

import (
	"math"
	"sort"

	"validity/internal/graph"
	"validity/internal/sim"
)

// forever is the open end of a membership span: the host never leaves
// again.
const forever = sim.Time(math.MaxInt64)

// span is one session of presence: the host is a member on [from, to).
type span struct {
	from, to sim.Time
}

// Index is a Timeline prepared for repeated membership queries: per-host
// presence spans for O(sessions) liveness probes, the normalized
// transition list each consumer replays (the engine schedules a timer
// per transition, the simulator an event), and the first-departure map
// the departures-only callers still use. The plain Timeline methods
// (Failed, FailTime) scan the whole slice on every call, which is fine
// for one-shot reporting but quadratic when a loop probes every host —
// the oracle, the continuous drivers, and the engine's per-query
// membership tables all go through an Index instead.
//
// Presence semantics: a host with no events is a member for the whole
// run. A Leave at t ends a session at t (the host is dead AT t, matching
// §3.2's "processes nothing more"); a Join at t starts one (the host is
// alive AT t). A host whose first event is a Join is a late joiner,
// absent on [0, join). Events that do not change state (a Leave while
// absent, a Join while present) are dropped during normalization, and
// ties at one tick order Leave before Join — the event loop's evFail <
// evJoin ordering — so a leave/join pair at one tick nets to presence.
type Index struct {
	sorted Timeline // all events time-sorted (stable), for FailedBy
	spans  map[graph.HostID][]span
	events map[graph.HostID]Timeline // normalized per-host transitions
	first  map[graph.HostID]sim.Time // first departure (FailTime)
	late   map[graph.HostID]bool     // first event is a Join
	hosts  []graph.HostID            // hosts with events, ascending
}

// Index builds the indexed view of the timeline. The timeline is not
// retained.
func (tl Timeline) Index() *Index {
	ix := &Index{
		sorted: append(Timeline(nil), tl...),
		spans:  make(map[graph.HostID][]span),
		events: make(map[graph.HostID]Timeline),
		first:  make(map[graph.HostID]sim.Time),
		late:   make(map[graph.HostID]bool),
	}
	sort.SliceStable(ix.sorted, func(i, j int) bool { return ix.sorted[i].T < ix.sorted[j].T })
	perHost := make(map[graph.HostID]Timeline)
	for _, e := range ix.sorted {
		perHost[e.H] = append(perHost[e.H], e)
		if e.Kind == Leave {
			if _, ok := ix.first[e.H]; !ok {
				ix.first[e.H] = e.T
			}
		}
	}
	for h, evs := range perHost {
		// Same-tick ties: Leave applies before Join (evFail < evJoin).
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].T != evs[j].T {
				return evs[i].T < evs[j].T
			}
			return evs[i].Kind < evs[j].Kind
		})
		alive := evs[0].Kind != Join
		if !alive {
			ix.late[h] = true
		}
		cur := sim.Time(0)
		var spans []span
		var norm Timeline
		for _, e := range evs {
			switch {
			case e.Kind == Leave && alive:
				if e.T > cur {
					spans = append(spans, span{from: cur, to: e.T})
				}
				alive = false
				norm = append(norm, e)
			case e.Kind == Join && !alive:
				cur = e.T
				alive = true
				norm = append(norm, e)
			}
		}
		if alive {
			spans = append(spans, span{from: cur, to: forever})
		}
		ix.spans[h] = spans
		ix.events[h] = norm
		ix.hosts = append(ix.hosts, h)
	}
	sort.Slice(ix.hosts, func(i, j int) bool { return ix.hosts[i] < ix.hosts[j] })
	return ix
}

// Len returns the number of distinct hosts that ever leave.
func (ix *Index) Len() int { return len(ix.first) }

// Hosts returns the hosts the timeline mentions at all, ascending.
// Hosts absent from it are members for the whole run.
func (ix *Index) Hosts() []graph.HostID { return ix.hosts }

// HostEvents returns h's normalized membership transitions in time
// order: state-changing Leaves and Joins only, no-ops dropped. Consumers
// that enforce the timeline (the engine's timer heap, the simulator's
// event queue) replay exactly these.
func (ix *Index) HostEvents(h graph.HostID) Timeline { return ix.events[h] }

// InitialMember reports whether h is part of the network at tick 0 —
// i.e. h is not a late joiner. Note a host that leaves at tick 0 is
// still an initial member: it was present at the starting instant.
func (ix *Index) InitialMember(h graph.HostID) bool { return !ix.late[h] }

// ArriveTime returns the tick h becomes part of the network: 0 for
// initial members, the first join tick for late joiners.
func (ix *Index) ArriveTime(h graph.HostID) sim.Time {
	if !ix.late[h] {
		return 0
	}
	return ix.events[h][0].T
}

// FailTime returns the first departure time of h, or -1 if h never
// leaves. With joins in play a departed host may return; probe AliveAt
// for current membership.
func (ix *Index) FailTime(h graph.HostID) sim.Time {
	if t, ok := ix.first[h]; ok {
		return t
	}
	return -1
}

// AliveAt reports whether h is a member at tick t: inside one of its
// presence sessions, or unmentioned by the timeline entirely.
func (ix *Index) AliveAt(h graph.HostID, t sim.Time) bool {
	spans, ok := ix.spans[h]
	if !ok {
		return t >= 0
	}
	for _, s := range spans {
		if s.from <= t && t < s.to {
			return true
		}
	}
	return false
}

// Alive is AliveAt under its departures-only name.
func (ix *Index) Alive(h graph.HostID, t sim.Time) bool { return ix.AliveAt(h, t) }

// AliveDuring reports whether h is a member at some instant of
// [start, end] — the per-host predicate behind H_U: arrivals inside the
// interval count even though the host was absent when it opened.
func (ix *Index) AliveDuring(h graph.HostID, start, end sim.Time) bool {
	spans, ok := ix.spans[h]
	if !ok {
		return true
	}
	for _, s := range spans {
		if s.from <= end && s.to > start {
			return true
		}
	}
	return false
}

// PresentThroughout reports whether h is a member during the entire
// interval [start, end] — the predicate behind H_C's stable paths
// (§4.1). A host that leaves and rejoins inside the interval does not
// qualify, no matter how brief the absence.
func (ix *Index) PresentThroughout(h graph.HostID, start, end sim.Time) bool {
	spans, ok := ix.spans[h]
	if !ok {
		return true
	}
	for _, s := range spans {
		if s.from <= start && s.to > end {
			return true
		}
	}
	return false
}

// Survives reports whether h is a member for the whole interval
// [0, horizon] — the membership predicate behind the oracle's H_C for
// one-shot queries.
func (ix *Index) Survives(h graph.HostID, horizon sim.Time) bool {
	return ix.PresentThroughout(h, 0, horizon)
}

// FailedBy returns the hosts whose first departure is at or before t, in
// departure order. The prefix scan over the sorted slice costs
// O(answer), not O(timeline).
func (ix *Index) FailedBy(t sim.Time) []graph.HostID {
	var out []graph.HostID
	seen := make(map[graph.HostID]bool)
	for _, e := range ix.sorted {
		if e.T > t {
			break
		}
		if e.Kind != Leave {
			continue
		}
		if !seen[e.H] {
			seen[e.H] = true
			out = append(out, e.H)
		}
	}
	return out
}
