package churn

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"validity/internal/graph"
	"validity/internal/sim"
)

// TestParseTraceGrammar pins the host,tick CSV grammar: departures parse
// in any order (the result is time-sorted), headers and comments and
// blank lines are skipped, and malformed or out-of-range lines fail with
// a message naming the line.
func TestParseTraceGrammar(t *testing.T) {
	cases := []struct {
		name  string
		input string
		n     int
		want  Schedule
		wrong string // non-empty: expect an error containing it
	}{
		{
			name:  "plain pairs",
			input: "3,5\n1,2\n",
			n:     10,
			want:  Schedule{{H: 1, T: 2}, {H: 3, T: 5}},
		},
		{
			name:  "header comments blanks and spaces",
			input: "host,tick\n# a capture\n\n 7 , 11 \n2,0\n",
			n:     10,
			want:  Schedule{{H: 2, T: 0}, {H: 7, T: 11}},
		},
		{
			name:  "uppercase header",
			input: "Host,Tick\n4,4\n",
			n:     10,
			want:  Schedule{{H: 4, T: 4}},
		},
		{
			name:  "header after provenance comment",
			input: "# exported 2026-07-28\n\nhost,tick\n3,5\n",
			n:     10,
			want:  Schedule{{H: 3, T: 5}},
		},
		{
			name:  "empty trace",
			input: "# nothing left\n",
			n:     10,
			want:  nil,
		},
		{
			name:  "same host twice keeps both (Index collapses)",
			input: "5,9\n5,3\n",
			n:     10,
			want:  Schedule{{H: 5, T: 3}, {H: 5, T: 9}},
		},
		{name: "missing comma", input: "5 9\n", n: 10, wrong: "host,tick"},
		{name: "non-numeric host", input: "x,9\n", n: 10, wrong: "host"},
		{name: "non-numeric tick", input: "5,y\n", n: 10, wrong: "tick"},
		{name: "host out of range", input: "10,1\n", n: 10, wrong: "outside"},
		{name: "negative host", input: "-1,1\n", n: 10, wrong: "outside"},
		{name: "negative tick", input: "5,-2\n", n: 10, wrong: "negative tick"},
		{name: "header not on first line", input: "1,1\nhost,tick\n", n: 10, wrong: "host"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseTrace(strings.NewReader(tc.input), tc.n)
			if tc.wrong != "" {
				if err == nil {
					t.Fatalf("parsed %q without error, want one mentioning %q", tc.input, tc.wrong)
				}
				if !strings.Contains(err.Error(), tc.wrong) {
					t.Fatalf("error %q does not mention %q", err, tc.wrong)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseTrace(%q): %v", tc.input, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("ParseTrace(%q) = %v, want %v", tc.input, got, tc.want)
			}
		})
	}
}

// TestParseSourceTrace wires the trace=FILE spec through ParseSource: the
// file loads as a Static source (identical schedule for every query,
// filtered by each query's horizon), and generator knobs are rejected
// alongside it.
func TestParseSourceTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.csv")
	if err := os.WriteFile(path, []byte("host,tick\n4,2\n9,40\n1,7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := ParseSource("trace="+path, 20)
	if err != nil {
		t.Fatal(err)
	}
	sched := src.Schedule(123, 0, 30) // seed must not matter; horizon drops 9@40
	want := Schedule{{H: 4, T: 2}, {H: 1, T: 7}}
	if !reflect.DeepEqual(sched, want) {
		t.Fatalf("trace schedule = %v, want %v", sched, want)
	}
	if other := src.Schedule(999, 0, 30); !reflect.DeepEqual(other, sched) {
		t.Fatalf("trace schedule depends on the seed: %v vs %v", other, sched)
	}
	if ix := src.Schedule(1, 0, sim.Time(100)).Index(); ix.FailTime(graph.HostID(9)) != 40 {
		t.Fatalf("horizon 100 should include 9@40: %v", ix)
	}
	// The Source protect contract holds for traces too: a capture naming
	// the querying host must not schedule it — the monitor outlives the
	// query regardless of what the session log recorded.
	if ix := src.Schedule(1, 4, 30).Index(); ix.FailTime(graph.HostID(4)) >= 0 {
		t.Fatalf("trace scheduled the protected querying host: %v", src.Schedule(1, 4, 30))
	}

	for _, bad := range []string{
		"trace=" + path + ",rate=3",
		"trace=" + path + ",model=sessions,mean=4",
		"trace=" + path + ",model=uniform", // explicit default model still conflicts
		"trace=" + path + ",window=9",
		"trace=",
		"trace=" + filepath.Join(t.TempDir(), "missing.csv"),
	} {
		if _, err := ParseSource(bad, 20); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
