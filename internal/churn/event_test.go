package churn

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"validity/internal/graph"
	"validity/internal/sim"
)

// TestIndexMultiSession pins the span semantics of the timeline index: a
// host with several sessions (leave, rejoin, leave) answers AliveAt per
// session, is never PresentThroughout an interval spanning an absence,
// and AliveDuring sees any overlap.
func TestIndexMultiSession(t *testing.T) {
	tl := Timeline{
		{H: 1, T: 10},             // leave
		{H: 1, T: 20, Kind: Join}, // rejoin
		{H: 1, T: 35},             // leave again
		{H: 2, T: 5, Kind: Join},  // late joiner: absent on [0, 5)
		{H: 3, T: 0},              // gone from the very first tick
	}
	ix := tl.Index()

	aliveCases := []struct {
		h    graph.HostID
		t    sim.Time
		want bool
	}{
		{1, 0, true}, {1, 9, true}, {1, 10, false}, {1, 19, false},
		{1, 20, true}, {1, 34, true}, {1, 35, false}, {1, 1000, false},
		{2, 0, false}, {2, 4, false}, {2, 5, true}, {2, 1000, true},
		{3, 0, false}, {3, 7, false},
		{9, 0, true}, {9, 999, true}, // unmentioned host: always a member
	}
	for _, tc := range aliveCases {
		if got := ix.AliveAt(tc.h, tc.t); got != tc.want {
			t.Errorf("AliveAt(%d, %d) = %t, want %t", tc.h, tc.t, got, tc.want)
		}
	}

	if !ix.AliveDuring(1, 15, 25) { // rejoins inside the interval
		t.Error("AliveDuring missed a rejoin inside the interval")
	}
	if ix.AliveDuring(1, 12, 18) { // fully inside the absence
		t.Error("AliveDuring(1, 12, 18) true during an absence")
	}
	if ix.PresentThroughout(1, 5, 25) {
		t.Error("PresentThroughout spanned an absence")
	}
	if !ix.PresentThroughout(1, 20, 34) {
		t.Error("PresentThroughout rejected a full second session")
	}
	if ix.PresentThroughout(2, 0, 10) {
		t.Error("a late joiner cannot be present from tick 0")
	}
	if !ix.PresentThroughout(2, 5, 1000) {
		t.Error("a joined host present ever after was rejected")
	}

	if ix.InitialMember(2) || !ix.InitialMember(1) || !ix.InitialMember(3) || !ix.InitialMember(9) {
		t.Error("InitialMember wrong: only the first-event-Join host is late")
	}
	if ix.ArriveTime(1) != 0 || ix.ArriveTime(2) != 5 || ix.ArriveTime(9) != 0 {
		t.Errorf("ArriveTime = %d, %d, %d; want 0, 5, 0",
			ix.ArriveTime(1), ix.ArriveTime(2), ix.ArriveTime(9))
	}
	if ix.FailTime(1) != 10 || ix.FailTime(2) != -1 || ix.FailTime(3) != 0 {
		t.Error("FailTime must stay the first departure")
	}
	if got := ix.Hosts(); !reflect.DeepEqual(got, []graph.HostID{1, 2, 3}) {
		t.Errorf("Hosts() = %v, want [1 2 3]", got)
	}
	// Normalized transitions: no-ops dropped, order preserved.
	if evs := ix.HostEvents(1); len(evs) != 3 || evs[1].Kind != Join || evs[1].T != 20 {
		t.Errorf("HostEvents(1) = %v", evs)
	}
}

// TestIndexSameTickLeaveJoin pins the tie rule: at one tick a Leave
// applies before a Join (the event loop's evFail < evJoin), so the pair
// nets to presence.
func TestIndexSameTickLeaveJoin(t *testing.T) {
	ix := Timeline{
		{H: 1, T: 8, Kind: Join}, // listed join-first on purpose
		{H: 1, T: 8},
	}.Index()
	if !ix.AliveAt(1, 8) || !ix.AliveAt(1, 100) {
		t.Fatal("leave+join at one tick must net to presence")
	}
	if ix.AliveAt(1, 7) != true {
		t.Fatal("the host was an initial member before the tie tick")
	}
	if ix.PresentThroughout(1, 0, 100) {
		t.Fatal("the membership still lapsed at the tie tick")
	}
}

// TestIndexNoOpEventsDropped: joins while present and leaves while
// absent change nothing and are dropped from the normalized transitions.
func TestIndexNoOpEventsDropped(t *testing.T) {
	ix := Timeline{
		{H: 4, T: 2},             // leave
		{H: 4, T: 5, Kind: Join}, // rejoin
		{H: 4, T: 6, Kind: Join}, // join while present: no-op
		{H: 4, T: 9},             // leave
		{H: 4, T: 10},            // leave while absent: no-op
	}.Index()
	want := Timeline{{H: 4, T: 2}, {H: 4, T: 5, Kind: Join}, {H: 4, T: 9}}
	if evs := ix.HostEvents(4); !reflect.DeepEqual(evs, want) {
		t.Fatalf("HostEvents normalized to %v, want %v", evs, want)
	}
	if !ix.InitialMember(4) {
		t.Fatal("host 4's first event is a leave; it is an initial member")
	}
}

// TestSessionTimelineRebirth: with a rejoin mean, hosts cycle
// leave/join/leave sessions; without one, the output is exactly
// ExponentialSessions.
func TestSessionTimelineRebirth(t *testing.T) {
	const n, horizon = 300, 2000
	base := ExponentialSessions(n, 0, 100, horizon, rand.New(rand.NewSource(9)))
	plain := SessionTimeline(n, 0, 100, 0, horizon, rand.New(rand.NewSource(9)))
	if !reflect.DeepEqual(base, plain) {
		t.Fatal("SessionTimeline with rejoin=0 must equal ExponentialSessions")
	}

	tl := SessionTimeline(n, 0, 100, 50, horizon, rand.New(rand.NewSource(9)))
	joins, leaves := 0, 0
	for _, e := range tl {
		if e.H == 0 {
			t.Fatal("protected host scheduled")
		}
		if e.T > horizon {
			t.Fatal("event beyond horizon")
		}
		if e.Kind == Join {
			joins++
		} else {
			leaves++
		}
	}
	if joins == 0 {
		t.Fatal("rebirth produced no joins")
	}
	if leaves <= joins {
		// Every join is preceded by that host's leave, so leaves lead.
		t.Fatalf("leaves %d not ahead of joins %d", leaves, joins)
	}
	// Per-host sanity: events alternate leave/join in time order.
	ix := tl.Index()
	for _, h := range ix.Hosts() {
		evs := ix.HostEvents(h)
		for i, e := range evs {
			wantJoin := i%2 == 1 // initial member: first transition is a leave
			if (e.Kind == Join) != wantJoin {
				t.Fatalf("host %d transition %d = %v; sessions must alternate", h, i, evs)
			}
		}
	}
	// Determinism across processes.
	again := SessionTimeline(n, 0, 100, 50, horizon, rand.New(rand.NewSource(9)))
	if !reflect.DeepEqual(tl, again) {
		t.Fatal("session timeline not deterministic for equal seeds")
	}
}

// TestBurstSource: a contiguous range leaves at one tick, protect
// survives, and the horizon gates the whole burst.
func TestBurstSource(t *testing.T) {
	b := Burst{From: 10, To: 14, At: 7}
	tl := b.Schedule(123, 12, 100)
	if len(tl) != 4 {
		t.Fatalf("burst scheduled %d departures, want 4 (range minus protect): %v", len(tl), tl)
	}
	for _, e := range tl {
		if e.H == 12 {
			t.Fatal("protected host scheduled in the burst")
		}
		if e.H < 10 || e.H > 14 || e.T != 7 || e.Kind != Leave {
			t.Fatalf("burst event %v outside the spec", e)
		}
	}
	if got := b.Schedule(1, 0, 5); got != nil {
		t.Fatalf("burst past the horizon still scheduled: %v", got)
	}
	if other := b.Schedule(999, 12, 100); !reflect.DeepEqual(other, tl) {
		t.Fatal("burst depends on the seed")
	}
}

// TestParseSourceJoinAndBurst extends the grammar table to the new
// knobs.
func TestParseSourceJoinAndBurst(t *testing.T) {
	cases := []struct {
		spec    string
		want    Source
		wantErr bool
	}{
		{spec: "model=sessions,mean=80,join=40", want: Sessions{N: 60, Mean: 80, Rejoin: 40}},
		{spec: "model=sessions,mean=80,join=40,window=30", want: Sessions{N: 60, Mean: 80, Window: 30, Rejoin: 40}},
		{spec: "model=burst,hosts=10-19,at=7", want: Burst{From: 10, To: 19, At: 7}},
		{spec: " model=burst , hosts= 10-19 , at=7 ", want: Burst{From: 10, To: 19, At: 7}},
		{spec: "join=40", wantErr: true},                        // sessions knob without the model
		{spec: "rate=6,join=40", wantErr: true},                 // uniform has no rebirth
		{spec: "model=sessions,mean=80,join=0", wantErr: true},  // non-positive downtime
		{spec: "model=sessions,mean=80,join=-4", wantErr: true}, // negative downtime
		{spec: "model=burst,hosts=10-19", wantErr: true},        // burst needs at=
		{spec: "model=burst,at=7", wantErr: true},               // burst needs hosts=
		{spec: "model=burst,hosts=19-10,at=7", wantErr: true},   // inverted range
		{spec: "model=burst,hosts=10-60,at=7", wantErr: true},   // outside the network
		// A whole-network burst is legal: Schedule spares the protected
		// querying host, so H_C = {h_q} and the query is well-defined.
		{spec: "model=burst,hosts=0-59,at=7", want: Burst{From: 0, To: 59, At: 7}},
		{spec: "model=burst,hosts=10-19,at=7,rate=3", wantErr: true},
		{spec: "model=burst,hosts=10-19,at=7,window=5", wantErr: true},
		{spec: "hosts=10-19,at=7", wantErr: true}, // burst knobs without the model
	}
	for _, tc := range cases {
		got, err := ParseSource(tc.spec, 60)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSource(%q) accepted, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSource(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseSource(%q) = %#v, want %#v", tc.spec, got, tc.want)
		}
	}
}

// TestParseEventsGrammar pins the -kill event grammar: bare host@tick
// departures, +host@tick joins, range and sign errors named.
func TestParseEventsGrammar(t *testing.T) {
	got, err := ParseEvents(" 3@5 , +4@9 , 3@12 ", 10)
	if err != nil {
		t.Fatal(err)
	}
	want := Timeline{{H: 3, T: 5}, {H: 4, T: 9, Kind: Join}, {H: 3, T: 12}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseEvents = %v, want %v", got, want)
	}
	if tl, err := ParseEvents("", 10); err != nil || tl != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", tl, err)
	}
	for spec, wrong := range map[string]string{
		"5":        "host@tick",
		"+5":       "host@tick",
		"x@3":      "x@3",
		"5@y":      "5@y",
		"10@3":     "outside",
		"+10@3":    "outside",
		"-1@3":     "outside",
		"5@-2":     "negative",
		"+ 5@nope": "5@nope",
	} {
		_, err := ParseEvents(spec, 10)
		if err == nil {
			t.Errorf("ParseEvents(%q) accepted, want error mentioning %q", spec, wrong)
			continue
		}
		if !strings.Contains(err.Error(), wrong) {
			t.Errorf("ParseEvents(%q) error %q does not mention %q", spec, err, wrong)
		}
	}
}

// TestTraceEventColumn: the optional third CSV column records joins, the
// three-column header is tolerated, and unknown events are named in the
// error.
func TestTraceEventColumn(t *testing.T) {
	got, err := ParseTrace(strings.NewReader(
		"host,tick,event\n# capture\n3,5,leave\n4,2,join\n3,9 , JOIN \n7,1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	want := Timeline{
		{H: 7, T: 1},
		{H: 4, T: 2, Kind: Join},
		{H: 3, T: 5},
		{H: 3, T: 9, Kind: Join},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseTrace = %v, want %v", got, want)
	}
	if _, err := ParseTrace(strings.NewReader("3,5,rejoin\n"), 10); err == nil ||
		!strings.Contains(err.Error(), "rejoin") {
		t.Fatalf("unknown event column accepted or unnamed: %v", err)
	}
}

// TestApplyJoins runs a timeline with joins through the deterministic
// event loop: a late joiner is absent until its join, a rebirth resumes
// the same host, and Start runs exactly once per host.
func TestApplyJoins(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tl := Timeline{
		{H: 1, T: 4},             // leave
		{H: 1, T: 8, Kind: Join}, // rebirth
		{H: 2, T: 6, Kind: Join}, // late joiner
	}
	// One fresh network per observation instant: Run starts handlers once
	// per call, so intermediate snapshots use their own simulations.
	build := func() (*sim.Network, []int) {
		nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1})
		starts := make([]int, 3)
		for h := 0; h < 3; h++ {
			nw.SetHandler(graph.HostID(h), startCounter{n: &starts[h]})
		}
		tl.Apply(nw)
		return nw, starts
	}

	nw, _ := build()
	if nw.Alive(2) {
		t.Fatal("late joiner alive before Run")
	}
	nw.Run(5)
	if nw.Alive(1) || nw.Alive(2) {
		t.Fatalf("at t=5: host 1 alive=%t (left at 4), host 2 alive=%t (joins at 6)",
			nw.Alive(1), nw.Alive(2))
	}

	nw, starts := build()
	nw.Run(10)
	if !nw.Alive(1) || !nw.Alive(2) {
		t.Fatalf("at t=10: host 1 alive=%t (rejoined at 8), host 2 alive=%t (joined at 6)",
			nw.Alive(1), nw.Alive(2))
	}
	if starts[0] != 1 || starts[1] != 1 || starts[2] != 1 {
		t.Fatalf("Start counts = %v, want exactly one per host (rebirth must not re-run it)", starts)
	}
}

type startCounter struct{ n *int }

func (s startCounter) Start(ctx *sim.Context)                    { *s.n++ }
func (s startCounter) Receive(ctx *sim.Context, msg sim.Message) {}
func (s startCounter) Timer(ctx *sim.Context, tag int)           {}
