package churn

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"validity/internal/graph"
	"validity/internal/sim"
)

// Source is the membership layer's generator of dynamism: it derives a
// membership timeline for one query deterministically from a seed. Equal
// (seed, protect, horizon) arguments yield byte-identical timelines on
// every process, which is what lets a sharded fleet agree on which hosts
// are dead for which query without exchanging a single coordination
// message — the same regenerate-from-seed discipline the node engine uses
// for topologies and FM coin tosses.
//
// Timeline times are ticks of δ on the consuming query's own clock: tick 0
// is the instant the query's traffic first reaches a process. The
// deterministic event loop consumes a Source by applying the derived
// Timeline to a sim.Network (Timeline.Apply); the live engine consumes it
// per query through node.QueryInstance.Churn.
type Source interface {
	// Schedule returns the membership timeline for one query. protect is
	// the querying host h_q, which must never be scheduled (the paper's
	// experiments protect it, §6.2); horizon is the query's deadline — no
	// event past it matters to the query, so none is emitted.
	Schedule(seed int64, protect graph.HostID, horizon sim.Time) Timeline
}

// QuerySeed derives the churn seed of one query from the fleet's shared
// seed. Same discipline as node.QuerySeed but a distinct mixing constant,
// so a query's churn timeline and its protocol coin tosses are independent
// streams of the one shared seed.
func QuerySeed(shared, id int64) int64 {
	return shared ^ (id+1)*0x6A09E667F3BCC909
}

// Static is a fixed timeline that ignores the seed: the operator named the
// events explicitly (validityd's -kill flag, departures and +host@tick
// joins alike). The same entries apply to every query, each on its own
// clock — the per-query generalization of the old engine-clock kill
// schedule.
type Static Timeline

// Schedule implements Source.
func (s Static) Schedule(seed int64, protect graph.HostID, horizon sim.Time) Timeline {
	out := make(Timeline, 0, len(s))
	for _, e := range s {
		if e.T <= horizon {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Uniform is the §6.2 removal model as a Source: Remove hosts of the
// N-host network leave at a uniform rate over [0, Window] ticks of the
// query clock (Window 0 means the query's horizon).
type Uniform struct {
	N      int
	Remove int
	Window sim.Time
}

// Schedule implements Source.
func (u Uniform) Schedule(seed int64, protect graph.HostID, horizon sim.Time) Timeline {
	win := u.Window
	if win <= 0 || win > horizon {
		win = horizon
	}
	return UniformRemoval(u.N, u.Remove, protect, 0, win, rand.New(rand.NewSource(seed)))
}

// Sessions is the session-based model as a Source: every host draws an
// exponentially distributed lifetime with the given mean (in ticks), the
// footnote-1 Gnutella model of §5.4. A positive Rejoin mean adds rebirth:
// departed hosts return after an exponentially distributed downtime and
// draw a fresh lifetime, cycling sessions until the window closes — the
// model under which populations grow as well as shrink. Window bounds the
// emitted events (0 means the query's horizon).
type Sessions struct {
	N      int
	Mean   float64
	Window sim.Time
	Rejoin float64
}

// Schedule implements Source.
func (s Sessions) Schedule(seed int64, protect graph.HostID, horizon sim.Time) Timeline {
	win := s.Window
	if win <= 0 || win > horizon {
		win = horizon
	}
	return SessionTimeline(s.N, protect, s.Mean, s.Rejoin, win, rand.New(rand.NewSource(seed)))
}

// Burst is the correlated failure model: the contiguous host range
// [From, To] leaves at one tick — a rack or subnet dropping off the
// network at once, the failure mode independent per-host models cannot
// produce. The seed is ignored (the range is the spec); protect survives
// as always.
type Burst struct {
	From, To graph.HostID
	At       sim.Time
}

// Schedule implements Source.
func (b Burst) Schedule(seed int64, protect graph.HostID, horizon sim.Time) Timeline {
	if b.At > horizon {
		return nil
	}
	var out Timeline
	for h := b.From; h <= b.To; h++ {
		if h == protect {
			continue
		}
		out = append(out, Event{H: h, T: b.At})
	}
	return out
}

// Merge concatenates timelines into one, ordered by time. Static kills
// plus a generated model compose this way (validityd's -kill and -churn
// flags together).
func Merge(tls ...Timeline) Timeline {
	var out Timeline
	for _, tl := range tls {
		out = append(out, tl...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// ParseSource parses the -churn flag grammar into a Source over an n-host
// network:
//
//	rate=R[,window=W]                          R hosts leave uniformly over [0,W]
//	model=sessions,mean=M[,join=D][,window=W]  exponential lifetimes, mean M;
//	                                           join=D adds rebirth after
//	                                           exp-distributed downtimes, mean D
//	model=burst,hosts=A-B,at=T                 hosts A..B leave together at tick T
//	trace=FILE                                 recorded host,tick[,event] CSV (ParseTrace)
//
// All times are ticks of δ on each query's own clock (the stream's
// absolute clock for continuous queries); window defaults to the query
// deadline. An empty spec yields a nil Source (no churn).
func ParseSource(spec string, n int) (Source, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var (
		model    = "uniform"
		modelSet bool
		rate     = -1
		window   sim.Time
		mean     float64
		rejoin   float64
		trace    string
		hostsLo  = -1
		hostsHi  = -1
		at       = sim.Time(-1)
	)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.IndexByte(part, '=')
		if i < 0 {
			return nil, fmt.Errorf("churn: spec entry %q is not key=value", part)
		}
		key, val := strings.TrimSpace(part[:i]), strings.TrimSpace(part[i+1:])
		switch key {
		case "model":
			model = val
			modelSet = true
		case "rate":
			r, err := strconv.Atoi(val)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("churn: rate %q must be a non-negative integer", val)
			}
			rate = r
		case "window":
			w, err := strconv.Atoi(val)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("churn: window %q must be a non-negative tick count", val)
			}
			window = sim.Time(w)
		case "mean":
			m, err := strconv.ParseFloat(val, 64)
			if err != nil || m <= 0 {
				return nil, fmt.Errorf("churn: mean %q must be a positive tick count", val)
			}
			mean = m
		case "join":
			d, err := strconv.ParseFloat(val, 64)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("churn: join %q must be a positive mean downtime in ticks", val)
			}
			rejoin = d
		case "hosts":
			j := strings.IndexByte(val, '-')
			if j < 0 {
				return nil, fmt.Errorf("churn: hosts %q must be a range A-B", val)
			}
			lo, err := strconv.Atoi(strings.TrimSpace(val[:j]))
			if err != nil {
				return nil, fmt.Errorf("churn: hosts range %q: %w", val, err)
			}
			hi, err := strconv.Atoi(strings.TrimSpace(val[j+1:]))
			if err != nil {
				return nil, fmt.Errorf("churn: hosts range %q: %w", val, err)
			}
			if lo > hi || lo < 0 || hi >= n {
				return nil, fmt.Errorf("churn: hosts range %q outside [0,%d)", val, n)
			}
			hostsLo, hostsHi = lo, hi
		case "at":
			a, err := strconv.Atoi(val)
			if err != nil || a < 0 {
				return nil, fmt.Errorf("churn: at %q must be a non-negative tick", val)
			}
			at = sim.Time(a)
		case "trace":
			if val == "" {
				return nil, fmt.Errorf("churn: trace needs a file path")
			}
			trace = val
		default:
			return nil, fmt.Errorf("churn: unknown spec key %q (want rate, window, model, mean, join, hosts, at, trace)", key)
		}
	}
	if trace != "" {
		// A recorded trace IS the timeline; generator knobs make no sense
		// alongside it.
		if modelSet || rate >= 0 || mean > 0 || rejoin > 0 || window != 0 || hostsLo >= 0 || at >= 0 {
			return nil, fmt.Errorf("churn: trace=FILE cannot be combined with rate, mean, join, model, hosts, at, or window")
		}
		tl, err := LoadTrace(trace, n)
		if err != nil {
			return nil, err
		}
		return Trace(tl), nil
	}
	if model != "burst" && (hostsLo >= 0 || at >= 0) {
		return nil, fmt.Errorf("churn: hosts and at apply to model=burst")
	}
	if model != "sessions" && rejoin > 0 {
		return nil, fmt.Errorf("churn: join applies to model=sessions")
	}
	switch model {
	case "uniform":
		if mean > 0 {
			return nil, fmt.Errorf("churn: mean applies to model=sessions, not uniform")
		}
		if rate < 0 {
			return nil, fmt.Errorf("churn: model=uniform needs rate=R")
		}
		if rate == 0 {
			return nil, nil
		}
		if rate >= n {
			return nil, fmt.Errorf("churn: rate %d leaves no survivors in an %d-host network", rate, n)
		}
		return Uniform{N: n, Remove: rate, Window: window}, nil
	case "sessions":
		if mean <= 0 {
			return nil, fmt.Errorf("churn: model=sessions needs mean=M")
		}
		if rate >= 0 {
			return nil, fmt.Errorf("churn: rate applies to model=uniform, not sessions")
		}
		return Sessions{N: n, Mean: mean, Window: window, Rejoin: rejoin}, nil
	case "burst":
		if rate >= 0 || mean > 0 {
			return nil, fmt.Errorf("churn: rate and mean do not apply to model=burst")
		}
		if window != 0 {
			return nil, fmt.Errorf("churn: window does not apply to model=burst (use at=T)")
		}
		if hostsLo < 0 {
			return nil, fmt.Errorf("churn: model=burst needs hosts=A-B")
		}
		if at < 0 {
			return nil, fmt.Errorf("churn: model=burst needs at=T")
		}
		// A burst over the whole range is fine: Schedule always spares the
		// protected querying host, so at least h_q survives.
		return Burst{From: graph.HostID(hostsLo), To: graph.HostID(hostsHi), At: at}, nil
	default:
		return nil, fmt.Errorf("churn: unknown model %q (want uniform, sessions, or burst)", model)
	}
}
