// Package churn is the membership layer: the one subsystem every
// execution layer consults for who is part of the network when. The
// deterministic event loop (internal/sim) applies a Timeline to its event
// queue, the live engine (internal/node) enforces one per query on each
// query's own clock, and the oracle (internal/oracle) reads the same
// timeline to bound what a valid answer may be — three consumers, one
// source of dynamism.
//
// Membership is an event timeline: hosts *leave* (§3.2) and *join*. The
// paper's validity semantics (§3–§4) are defined over networks where both
// happen — H_U is the union of all hosts present at some instant of the
// computation, so arrivals can push it past the initial host set, while
// H_C shrinks to the hosts continuously present (joiners never qualify;
// hosts that leave and return do not either). The primary experimental
// model (§6.2) removes R randomly selected hosts from G at a uniform rate
// over an interval [t0, tn]; the session-based model draws exponentially
// distributed host lifetimes (the median-60-minutes Gnutella sessions of
// footnote 1) and, with a rebirth mean, exponentially distributed
// downtimes after which departed hosts rejoin. All models sit behind the
// Source interface, which derives per-query timelines deterministically
// from a seed so every process of a fleet regenerates identical
// membership timelines without coordination.
package churn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"validity/internal/graph"
	"validity/internal/sim"
)

// EventKind says what a membership event does to its host.
type EventKind uint8

const (
	// Leave removes the host from the network at the event's tick (§3.2):
	// it processes nothing more and its traffic silently stops.
	Leave EventKind = iota
	// Join adds the host at the event's tick. A host whose first event is
	// a Join is a late joiner — absent from tick 0 until it arrives; a
	// Join after a Leave is a rebirth (the session model's rejoin).
	Join
)

func (k EventKind) String() string {
	switch k {
	case Leave:
		return "leave"
	case Join:
		return "join"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one membership transition: host H leaves or joins at tick T.
// The zero Kind is Leave, so departure-only literals written against the
// old Failure type ({H: h, T: t}) keep their meaning unchanged.
type Event struct {
	H    graph.HostID
	T    sim.Time
	Kind EventKind
}

// Failure is the departures-only name for Event, kept so existing
// schedules read naturally: a Failure is an Event whose zero Kind is
// Leave.
type Failure = Event

// Timeline is a set of membership events ordered by time. It replaces
// the departures-only Schedule; a Timeline holding only Leave events is
// exactly the old Schedule.
type Timeline []Event

// Schedule is the departures-only name for Timeline, kept for call sites
// that only ever schedule departures.
type Schedule = Timeline

// Apply installs every event on the network: leaves as scheduled
// failures, joins as scheduled arrivals. Hosts whose first event is a
// Join are marked initially dead so their Start runs at join time, not at
// tick 0.
func (tl Timeline) Apply(nw *sim.Network) {
	ix := tl.Index()
	for _, h := range ix.Hosts() {
		if !ix.InitialMember(h) {
			nw.SetInitiallyDead(h)
		}
	}
	for _, e := range tl {
		if e.Kind == Join {
			nw.JoinAt(e.H, e.T)
		} else {
			nw.FailAt(e.H, e.T)
		}
	}
}

// Failed returns the set of hosts whose first departure is at or before
// t. It scans the whole timeline; callers probing liveness in a loop
// should build an Index once instead (and, with joins in play, ask
// AliveAt — a departed host may have returned).
func (tl Timeline) Failed(t sim.Time) map[graph.HostID]bool {
	m := make(map[graph.HostID]bool)
	for _, e := range tl {
		if e.Kind == Leave && e.T <= t {
			m[e.H] = true
		}
	}
	return m
}

// FailTime returns the first departure time of h, or -1 if h never
// leaves. It is an O(n) scan; callers probing many hosts should build an
// Index once.
func (tl Timeline) FailTime(h graph.HostID) sim.Time {
	t := sim.Time(-1)
	for _, e := range tl {
		if e.H == h && e.Kind == Leave && (t < 0 || e.T < t) {
			t = e.T
		}
	}
	return t
}

// UniformRemoval selects R distinct hosts uniformly at random from the n
// hosts (excluding `protect`, normally the querying host h_q) and spreads
// their failure times at a uniform rate over [t0, tn] (§6.2). It panics if
// R exceeds the number of removable hosts.
func UniformRemoval(n, r int, protect graph.HostID, t0, tn sim.Time, rng *rand.Rand) Timeline {
	if tn < t0 {
		panic(fmt.Sprintf("churn: tn %d < t0 %d", tn, t0))
	}
	removable := make([]graph.HostID, 0, n)
	for h := 0; h < n; h++ {
		if graph.HostID(h) != protect {
			removable = append(removable, graph.HostID(h))
		}
	}
	if r > len(removable) {
		panic(fmt.Sprintf("churn: cannot remove %d of %d removable hosts", r, len(removable)))
	}
	rng.Shuffle(len(removable), func(i, j int) {
		removable[i], removable[j] = removable[j], removable[i]
	})
	out := make(Timeline, r)
	span := float64(tn - t0)
	for i := 0; i < r; i++ {
		// Uniform rate: failure i at t0 + (i+1)/(r+1) of the interval,
		// jittered within its slot for realism.
		base := span * float64(i) / float64(r)
		slot := span / float64(r)
		t := t0 + sim.Time(base+rng.Float64()*slot)
		if t > tn {
			t = tn
		}
		out[i] = Event{H: removable[i], T: t}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// ExponentialSessions draws, for every host except protect, an
// exponentially distributed lifetime with the given mean and schedules the
// host's departure at that time if it falls within [0, horizon]. Hosts
// whose lifetime exceeds the horizon never fail. This models the memoryless
// "every host has the same probability of leaving at each instant"
// assumption of §5.4. It is SessionTimeline without rebirth.
func ExponentialSessions(n int, protect graph.HostID, mean float64, horizon sim.Time, rng *rand.Rand) Timeline {
	return SessionTimeline(n, protect, mean, 0, horizon, rng)
}

// SessionTimeline is the session model with arrivals: every host except
// protect alternates exponentially distributed uptimes (mean `mean`
// ticks) and, when rejoin > 0, exponentially distributed downtimes (mean
// `rejoin` ticks) after which it returns — the leave/join/leave session
// cycles of a real P2P population. rejoin = 0 reproduces
// ExponentialSessions exactly: one lifetime per host, departures only.
// Events past the horizon are not emitted.
func SessionTimeline(n int, protect graph.HostID, mean, rejoin float64, horizon sim.Time, rng *rand.Rand) Timeline {
	if mean <= 0 {
		panic("churn: mean lifetime must be positive")
	}
	if rejoin < 0 {
		panic("churn: rejoin mean must be non-negative")
	}
	var out Timeline
	for h := 0; h < n; h++ {
		if graph.HostID(h) == protect {
			continue
		}
		life := rng.ExpFloat64() * mean
		if life > math.MaxInt32 {
			continue
		}
		t := sim.Time(life)
		if t > horizon {
			continue
		}
		out = append(out, Event{H: graph.HostID(h), T: t})
		if rejoin <= 0 {
			continue
		}
		// Rebirth: downtime, rejoin, a fresh lifetime, and so on until the
		// horizon. Clock arithmetic stays in float ticks so short cycles
		// do not collapse to zero-length sessions by truncation alone.
		at := life
		for {
			at += rng.ExpFloat64() * rejoin
			if at > math.MaxInt32 || sim.Time(at) > horizon {
				break
			}
			out = append(out, Event{H: graph.HostID(h), T: sim.Time(at), Kind: Join})
			at += rng.ExpFloat64() * mean
			if at > math.MaxInt32 || sim.Time(at) > horizon {
				break
			}
			out = append(out, Event{H: graph.HostID(h), T: sim.Time(at)})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// ParseEvents parses the operator event grammar into a Timeline over an
// n-host network:
//
//	host@tick     the host leaves at the tick (§3.2)
//	+host@tick    the host joins at the tick; with no earlier event of its
//	              own, it is a late joiner — absent from tick 0 until then
//
// Entries are comma-separated; ticks are δ units on the consuming clock
// (each query's own clock for one-shot queries, the stream's absolute
// clock in continuous mode). This is validityd's -kill grammar.
func ParseEvents(spec string, n int) (Timeline, error) {
	var out Timeline
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind := Leave
		if strings.HasPrefix(part, "+") {
			kind = Join
			part = strings.TrimSpace(part[1:])
		}
		i := strings.IndexByte(part, '@')
		if i < 0 {
			return nil, fmt.Errorf("churn: event entry %q is not host@tick or +host@tick", part)
		}
		h, err := strconv.Atoi(part[:i])
		if err != nil {
			return nil, fmt.Errorf("churn: event entry %q: %w", part, err)
		}
		t, err := strconv.Atoi(part[i+1:])
		if err != nil {
			return nil, fmt.Errorf("churn: event entry %q: %w", part, err)
		}
		if h < 0 || h >= n {
			return nil, fmt.Errorf("churn: event host %d outside [0,%d)", h, n)
		}
		if t < 0 {
			return nil, fmt.Errorf("churn: event tick %d is negative (ticks count from the clock's start)", t)
		}
		out = append(out, Event{H: graph.HostID(h), T: sim.Time(t), Kind: kind})
	}
	return out, nil
}
