// Package churn is the membership layer: the one subsystem every
// execution layer consults for who is part of the network when. The
// deterministic event loop (internal/sim) applies a Schedule to its event
// queue, the live engine (internal/node) enforces one per query on each
// query's own clock, and the oracle (internal/oracle) reads the same
// schedule to bound what a valid answer may be — three consumers, one
// source of dynamism.
//
// The primary model (§6.2) removes R randomly selected hosts from G at a
// uniform rate over an interval [t0, tn]; host joins are not modeled
// because hosts that join after the query starts may or may not contribute
// to a valid result (H_C is the interesting bound). As an extension the
// package also provides a session-based model with exponentially
// distributed host lifetimes (the median-60-minutes Gnutella sessions of
// footnote 1) for the continuous-query experiments of §5.4. Both are
// available behind the Source interface, which derives per-query schedules
// deterministically from a seed so every process of a fleet regenerates
// identical membership timelines without coordination.
package churn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"validity/internal/graph"
	"validity/internal/sim"
)

// Failure schedules host H to leave the network at time T.
type Failure struct {
	H graph.HostID
	T sim.Time
}

// Schedule is a set of failures ordered by time.
type Schedule []Failure

// Apply installs every failure on the network.
func (s Schedule) Apply(nw *sim.Network) {
	for _, f := range s {
		nw.FailAt(f.H, f.T)
	}
}

// Failed returns the set of hosts that fail at or before t. It scans the
// whole schedule; callers probing liveness in a loop should build an
// Index once instead.
func (s Schedule) Failed(t sim.Time) map[graph.HostID]bool {
	m := make(map[graph.HostID]bool)
	for _, f := range s {
		if f.T <= t {
			m[f.H] = true
		}
	}
	return m
}

// FailTime returns the failure time of h, or -1 if h never fails. It is
// an O(n) scan; callers probing many hosts should build an Index once.
func (s Schedule) FailTime(h graph.HostID) sim.Time {
	for _, f := range s {
		if f.H == h {
			return f.T
		}
	}
	return -1
}

// UniformRemoval selects R distinct hosts uniformly at random from the n
// hosts (excluding `protect`, normally the querying host h_q) and spreads
// their failure times at a uniform rate over [t0, tn] (§6.2). It panics if
// R exceeds the number of removable hosts.
func UniformRemoval(n, r int, protect graph.HostID, t0, tn sim.Time, rng *rand.Rand) Schedule {
	if tn < t0 {
		panic(fmt.Sprintf("churn: tn %d < t0 %d", tn, t0))
	}
	removable := make([]graph.HostID, 0, n)
	for h := 0; h < n; h++ {
		if graph.HostID(h) != protect {
			removable = append(removable, graph.HostID(h))
		}
	}
	if r > len(removable) {
		panic(fmt.Sprintf("churn: cannot remove %d of %d removable hosts", r, len(removable)))
	}
	rng.Shuffle(len(removable), func(i, j int) {
		removable[i], removable[j] = removable[j], removable[i]
	})
	out := make(Schedule, r)
	span := float64(tn - t0)
	for i := 0; i < r; i++ {
		// Uniform rate: failure i at t0 + (i+1)/(r+1) of the interval,
		// jittered within its slot for realism.
		base := span * float64(i) / float64(r)
		slot := span / float64(r)
		t := t0 + sim.Time(base+rng.Float64()*slot)
		if t > tn {
			t = tn
		}
		out[i] = Failure{H: removable[i], T: t}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// ExponentialSessions draws, for every host except protect, an
// exponentially distributed lifetime with the given mean and schedules the
// host's departure at that time if it falls within [0, horizon]. Hosts
// whose lifetime exceeds the horizon never fail. This models the memoryless
// "every host has the same probability of leaving at each instant"
// assumption of §5.4.
func ExponentialSessions(n int, protect graph.HostID, mean float64, horizon sim.Time, rng *rand.Rand) Schedule {
	if mean <= 0 {
		panic("churn: mean lifetime must be positive")
	}
	var out Schedule
	for h := 0; h < n; h++ {
		if graph.HostID(h) == protect {
			continue
		}
		life := rng.ExpFloat64() * mean
		if life > math.MaxInt32 {
			continue
		}
		t := sim.Time(life)
		if t <= horizon {
			out = append(out, Failure{H: graph.HostID(h), T: t})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
