package churn

import (
	"math/rand"
	"testing"

	"validity/internal/graph"
	"validity/internal/sim"
)

func TestUniformRemovalBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := UniformRemoval(1000, 100, 0, 0, 500, rng)
	if len(s) != 100 {
		t.Fatalf("schedule length = %d, want 100", len(s))
	}
	seen := make(map[graph.HostID]bool)
	for _, f := range s {
		if f.H == 0 {
			t.Fatal("protected host was scheduled to fail")
		}
		if seen[f.H] {
			t.Fatalf("host %d scheduled twice", f.H)
		}
		seen[f.H] = true
		if f.T < 0 || f.T > 500 {
			t.Fatalf("failure time %d outside [0,500]", f.T)
		}
	}
	// Sorted by time.
	for i := 1; i < len(s); i++ {
		if s[i].T < s[i-1].T {
			t.Fatal("schedule not sorted by time")
		}
	}
}

func TestUniformRemovalRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := UniformRemoval(5000, 1000, 0, 0, 1000, rng)
	// Uniform rate: about half the failures in the first half.
	firstHalf := 0
	for _, f := range s {
		if f.T < 500 {
			firstHalf++
		}
	}
	if firstHalf < 400 || firstHalf > 600 {
		t.Fatalf("first-half failures = %d/1000, want ≈ 500", firstHalf)
	}
}

func TestUniformRemovalPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for R > removable")
			}
		}()
		UniformRemoval(10, 10, 0, 0, 100, rng) // only 9 removable
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for tn < t0")
			}
		}()
		UniformRemoval(10, 1, 0, 100, 50, rng)
	}()
}

func TestScheduleHelpers(t *testing.T) {
	s := Schedule{{H: 3, T: 10}, {H: 5, T: 20}}
	failed := s.Failed(15)
	if !failed[3] || failed[5] {
		t.Fatalf("Failed(15) = %v", failed)
	}
	if s.FailTime(3) != 10 || s.FailTime(5) != 20 || s.FailTime(9) != -1 {
		t.Fatal("FailTime wrong")
	}
}

func TestApplyKillsHosts(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1})
	Schedule{{H: 1, T: 5}}.Apply(nw)
	nw.Run(10)
	if nw.Alive(1) {
		t.Fatal("host 1 should be dead after applied schedule")
	}
	if !nw.Alive(0) || !nw.Alive(2) {
		t.Fatal("unscheduled hosts died")
	}
}

func TestExponentialSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 10000
	const mean = 100.0
	s := ExponentialSessions(n, 0, mean, 1000, rng)
	for _, f := range s {
		if f.H == 0 {
			t.Fatal("protected host scheduled")
		}
		if f.T > 1000 {
			t.Fatal("failure beyond horizon")
		}
	}
	// With mean 100 and horizon 1000, nearly all hosts fail (1-e^-10).
	if len(s) < n*9/10 {
		t.Fatalf("only %d/%d hosts failed", len(s), n)
	}
	// Memorylessness: about 1-e^-1 ≈ 63%% fail before t=100.
	early := 0
	for _, f := range s {
		if f.T < 100 {
			early++
		}
	}
	frac := float64(early) / float64(len(s))
	if frac < 0.55 || frac < 0 || frac > 0.72 {
		t.Fatalf("fraction failing before mean = %.3f, want ≈ 0.63", frac)
	}
}

func TestExponentialSessionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive mean")
		}
	}()
	ExponentialSessions(10, 0, 0, 100, rand.New(rand.NewSource(1)))
}
