package churn

import (
	"reflect"
	"testing"

	"validity/internal/graph"
	"validity/internal/sim"
)

// TestSourceDeterminism pins the membership layer's core contract: two
// Sources built independently from the same configuration (as two fleet
// processes would, from shared flags) derive byte-identical schedules for
// the same (seed, protect, horizon), and different query seeds derive
// different schedules.
func TestSourceDeterminism(t *testing.T) {
	const n, horizon = 200, 40
	for name, build := range map[string]func() Source{
		"uniform":  func() Source { return Uniform{N: n, Remove: 25} },
		"sessions": func() Source { return Sessions{N: n, Mean: 80} },
	} {
		t.Run(name, func(t *testing.T) {
			procA, procB := build(), build()
			for id := int64(1); id <= 4; id++ {
				seed := QuerySeed(23, id)
				a := procA.Schedule(seed, 0, horizon)
				b := procB.Schedule(seed, 0, horizon)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("query %d: processes derived different schedules:\n%v\n%v", id, a, b)
				}
				for _, f := range a {
					if f.H == 0 {
						t.Fatalf("query %d: protected host scheduled at %d", id, f.T)
					}
					if f.T > horizon {
						t.Fatalf("query %d: failure at %d beyond horizon %d", id, f.T, horizon)
					}
				}
			}
			s1 := procA.Schedule(QuerySeed(23, 1), 0, horizon)
			s2 := procA.Schedule(QuerySeed(23, 2), 0, horizon)
			if reflect.DeepEqual(s1, s2) {
				t.Fatal("distinct query seeds derived identical schedules")
			}
		})
	}
}

func TestQuerySeedDistinctFromSharedSeed(t *testing.T) {
	if QuerySeed(23, 1) == QuerySeed(23, 2) {
		t.Fatal("query seeds collide across ids")
	}
	if QuerySeed(23, 1) == QuerySeed(24, 1) {
		t.Fatal("query seeds collide across shared seeds")
	}
}

func TestStaticSourceFiltersHorizon(t *testing.T) {
	src := Static{{H: 3, T: 10}, {H: 5, T: 99}, {H: 4, T: 2}}
	got := src.Schedule(1, 0, 50)
	want := Schedule{{H: 4, T: 2}, {H: 3, T: 10}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Static.Schedule = %v, want %v", got, want)
	}
}

func TestMerge(t *testing.T) {
	got := Merge(Schedule{{H: 1, T: 9}}, Schedule{{H: 2, T: 3}, {H: 3, T: 9}})
	want := Schedule{{H: 2, T: 3}, {H: 1, T: 9}, {H: 3, T: 9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
}

func TestParseSource(t *testing.T) {
	cases := []struct {
		spec    string
		want    Source
		wantErr bool
	}{
		{spec: "", want: nil},
		{spec: "rate=0", want: nil},
		{spec: "rate=6", want: Uniform{N: 60, Remove: 6}},
		{spec: "rate=6,window=12", want: Uniform{N: 60, Remove: 6, Window: 12}},
		{spec: " rate=6 , window=12 ", want: Uniform{N: 60, Remove: 6, Window: 12}},
		{spec: "model=sessions,mean=80", want: Sessions{N: 60, Mean: 80}},
		{spec: "model=sessions,mean=80,window=30", want: Sessions{N: 60, Mean: 80, Window: 30}},
		{spec: "rate=60", wantErr: true}, // no survivors
		{spec: "rate=-1", wantErr: true},
		{spec: "rate=x", wantErr: true},
		{spec: "window=5", wantErr: true}, // uniform without rate
		{spec: "model=sessions", wantErr: true},
		{spec: "model=sessions,rate=3,mean=8", wantErr: true},
		{spec: "rate=6,mean=20", wantErr: true}, // mean is a sessions knob
		{spec: "mean=0", wantErr: true},
		{spec: "model=bursty,rate=3", wantErr: true},
		{spec: "bogus", wantErr: true},
		{spec: "hosts=9", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseSource(tc.spec, 60)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSource(%q) accepted, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSource(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseSource(%q) = %#v, want %#v", tc.spec, got, tc.want)
		}
	}
}

func TestIndexMatchesScheduleScans(t *testing.T) {
	s := Schedule{{H: 7, T: 30}, {H: 3, T: 10}, {H: 7, T: 5}, {H: 9, T: 10}}
	ix := s.Index()
	for h := graph.HostID(0); h < 12; h++ {
		want := sim.Time(-1)
		for _, f := range s { // earliest, matching Index's collapse rule
			if f.H == h && (want < 0 || f.T < want) {
				want = f.T
			}
		}
		if got := ix.FailTime(h); got != want {
			t.Fatalf("Index.FailTime(%d) = %d, want %d", h, got, want)
		}
		for _, tt := range []sim.Time{0, 5, 10, 29, 30, 31} {
			wantAlive := want < 0 || want > tt
			if got := ix.Alive(h, tt); got != wantAlive {
				t.Fatalf("Index.Alive(%d, %d) = %t, want %t", h, tt, got, wantAlive)
			}
			if got := ix.Survives(h, tt); got != wantAlive {
				t.Fatalf("Index.Survives(%d, %d) = %t, want %t", h, tt, got, wantAlive)
			}
		}
	}
	if ix.Len() != 3 {
		t.Fatalf("Index.Len = %d, want 3 distinct hosts", ix.Len())
	}
	failed := ix.FailedBy(10)
	if len(failed) != 3 || failed[0] != 7 { // 7 fails first at t=5
		t.Fatalf("FailedBy(10) = %v, want [7 3 9] in failure order", failed)
	}
	m := s.Failed(10)
	if len(m) != len(failed) {
		t.Fatalf("FailedBy(10) = %v disagrees with Schedule.Failed = %v", failed, m)
	}
	for _, h := range failed {
		if !m[h] {
			t.Fatalf("host %d in FailedBy but not Schedule.Failed", h)
		}
	}
}

// The micro-benchmarks quantify the satellite fix: probing every host of
// a large schedule via the O(n)-scan Schedule methods vs the indexed map.
func benchSchedule(n int) Schedule {
	s := make(Schedule, n)
	for i := range s {
		s[i] = Failure{H: graph.HostID(i), T: sim.Time(i % 97)}
	}
	return s
}

func BenchmarkScheduleFailTimeScan(b *testing.B) {
	s := benchSchedule(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink sim.Time
		for h := graph.HostID(0); int(h) < 2000; h++ {
			sink += s.FailTime(h)
		}
		_ = sink
	}
}

func BenchmarkIndexFailTime(b *testing.B) {
	ix := benchSchedule(2000).Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink sim.Time
		for h := graph.HostID(0); int(h) < 2000; h++ {
			sink += ix.FailTime(h)
		}
		_ = sink
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	s := benchSchedule(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Index()
	}
}
