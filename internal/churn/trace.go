package churn

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"validity/internal/graph"
	"validity/internal/sim"
)

// ParseTrace reads a recorded membership trace — the departure log of a
// real P2P session capture — into a Schedule. The format is host,tick
// CSV: one departure per line, host a 0-based id within the n-host
// network, tick a non-negative time in δ units. Blank lines and
// #-comments are skipped, and an optional "host,tick" header line is
// tolerated so exported spreadsheets load unedited. The resulting
// schedule is consumed through the Trace source: identical for every
// query in one-shot mode, absolute stream time in continuous mode, the
// querying host always dropped — and because every process reads the
// same file, the no-coordination discipline of generated schedules
// carries over.
func ParseTrace(r io.Reader, n int) (Schedule, error) {
	var out Schedule
	sc := bufio.NewScanner(r)
	lineNo := 0
	first := true // header tolerated on the first content line, wherever it sits
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if first && strings.EqualFold(line, "host,tick") {
			first = false
			continue // header row
		}
		first = false
		i := strings.IndexByte(line, ',')
		if i < 0 {
			return nil, fmt.Errorf("churn: trace line %d: %q is not host,tick", lineNo, line)
		}
		h, err := strconv.Atoi(strings.TrimSpace(line[:i]))
		if err != nil {
			return nil, fmt.Errorf("churn: trace line %d: host %q: %w", lineNo, line[:i], err)
		}
		t, err := strconv.Atoi(strings.TrimSpace(line[i+1:]))
		if err != nil {
			return nil, fmt.Errorf("churn: trace line %d: tick %q: %w", lineNo, line[i+1:], err)
		}
		if h < 0 || h >= n {
			return nil, fmt.Errorf("churn: trace line %d: host %d outside [0,%d)", lineNo, h, n)
		}
		if t < 0 {
			return nil, fmt.Errorf("churn: trace line %d: negative tick %d", lineNo, t)
		}
		out = append(out, Failure{H: graph.HostID(h), T: sim.Time(t)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("churn: reading trace: %w", err)
	}
	return Merge(out), nil
}

// Trace is a recorded schedule as a Source. Like Static it ignores the
// seed (the file is the schedule), but unlike operator-named -kill
// entries it honors the Source protect contract: the querying host is
// dropped from the replayed trace, exactly as the generated models never
// schedule it — a session log records the monitored population's churn,
// and the monitor must outlive the query regardless of what the capture
// says.
type Trace Schedule

// Schedule implements Source.
func (tr Trace) Schedule(seed int64, protect graph.HostID, horizon sim.Time) Schedule {
	out := make(Schedule, 0, len(tr))
	for _, f := range tr {
		if f.H != protect && f.T <= horizon {
			out = append(out, f)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// LoadTrace is ParseTrace over a file path (the trace=FILE spec of
// ParseSource).
func LoadTrace(path string, n int) (Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("churn: trace: %w", err)
	}
	defer f.Close()
	sched, err := ParseTrace(f, n)
	if err != nil {
		return nil, fmt.Errorf("churn: trace %s: %w", path, err)
	}
	return sched, nil
}
