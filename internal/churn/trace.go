package churn

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"validity/internal/graph"
	"validity/internal/sim"
)

// ParseTrace reads a recorded membership trace — the session log of a
// real P2P capture — into a Timeline. The format is host,tick[,event]
// CSV: one event per line, host a 0-based id within the n-host network,
// tick a non-negative time in δ units, and the optional third column
// "leave" (the default) or "join". A host whose first recorded event is
// a join is a late joiner, absent until it arrives; a join after a leave
// is the same peer returning for another session. Blank lines and
// #-comments are skipped, and an optional "host,tick" or
// "host,tick,event" header line is tolerated so exported spreadsheets
// load unedited. The resulting timeline is consumed through the Trace
// source: identical for every query in one-shot mode, absolute stream
// time in continuous mode, the querying host always dropped — and
// because every process reads the same file, the no-coordination
// discipline of generated timelines carries over.
func ParseTrace(r io.Reader, n int) (Timeline, error) {
	var out Timeline
	sc := bufio.NewScanner(r)
	lineNo := 0
	first := true // header tolerated on the first content line, wherever it sits
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if first && (strings.EqualFold(line, "host,tick") || strings.EqualFold(line, "host,tick,event")) {
			first = false
			continue // header row
		}
		first = false
		fields := strings.SplitN(line, ",", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("churn: trace line %d: %q is not host,tick[,event]", lineNo, line)
		}
		h, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("churn: trace line %d: host %q: %w", lineNo, fields[0], err)
		}
		t, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("churn: trace line %d: tick %q: %w", lineNo, fields[1], err)
		}
		if h < 0 || h >= n {
			return nil, fmt.Errorf("churn: trace line %d: host %d outside [0,%d)", lineNo, h, n)
		}
		if t < 0 {
			return nil, fmt.Errorf("churn: trace line %d: negative tick %d", lineNo, t)
		}
		kind := Leave
		if len(fields) == 3 {
			switch ev := strings.ToLower(strings.TrimSpace(fields[2])); ev {
			case "leave", "":
				kind = Leave
			case "join":
				kind = Join
			default:
				return nil, fmt.Errorf("churn: trace line %d: event %q (want leave or join)", lineNo, fields[2])
			}
		}
		out = append(out, Event{H: graph.HostID(h), T: sim.Time(t), Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("churn: reading trace: %w", err)
	}
	return Merge(out), nil
}

// Trace is a recorded timeline as a Source. Like Static it ignores the
// seed (the file is the timeline), but unlike operator-named -kill
// entries it honors the Source protect contract: the querying host is
// dropped from the replayed trace, exactly as the generated models never
// schedule it — a session log records the monitored population's churn,
// and the monitor must outlive the query regardless of what the capture
// says.
type Trace Timeline

// Schedule implements Source.
func (tr Trace) Schedule(seed int64, protect graph.HostID, horizon sim.Time) Timeline {
	out := make(Timeline, 0, len(tr))
	for _, e := range tr {
		if e.H != protect && e.T <= horizon {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// LoadTrace is ParseTrace over a file path (the trace=FILE spec of
// ParseSource).
func LoadTrace(path string, n int) (Timeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("churn: trace: %w", err)
	}
	defer f.Close()
	tl, err := ParseTrace(f, n)
	if err != nil {
		return nil, fmt.Errorf("churn: trace %s: %w", path, err)
	}
	return tl, nil
}
