// Package stream is the continuous-query subsystem: it runs §4.2
// windowed queries natively on the live engine (node.Runtime over any
// transport), where internal/continuous runs them only under the
// deterministic event loop. A continuous query with id Q and window
// length W ≥ 2·D̂ is executed as a deterministic family of engine
// sub-queries: window k is the ordinary engine query WindowID(Q, k), so
// every process of a sharded fleet lazily materializes identical
// per-window protocol instances, FM coin tosses, and churn-schedule
// slices from the shared seed, the continuous query's id, and the window
// index alone — the same no-coordination discipline the engine already
// uses for one-shot queries, extended in time. Nothing about the stream
// crosses the wire: workers need no notion of "continuous" beyond a
// factory that recognizes window ids.
//
// Dynamism is expressed once, on the stream's absolute clock: an
// operator-named event timeline and/or a generated churn.Source spanning
// the whole run [0, N·W]. Slice re-bases it per window — an event at
// absolute tick t, departure or join, lands in window ⌊t/W⌋ at tick
// t mod W of that window's own clock, hosts absent when a window opens
// enter it dead at tick 0, and a join mid-window brings its host alive
// on the window sub-query's own clock — so the engine enforces each
// window's membership locally while the oracle (oracle.ComputeInterval)
// judges the window against its own H_C/H_U, whose population grows
// across windows when arrivals outpace departures. Results stream to the
// caller in window order with per-window §6.3 cost counters
// (stream.Stream, stream.Results).
package stream

import (
	"fmt"
	"sort"
	"sync"

	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/node"
	"validity/internal/oracle"
	"validity/internal/protocol"
	"validity/internal/sim"
)

// WindowID derives the engine QueryID of window k of continuous query q.
// The layout is positional — high bits carry k+1, the low 32 bits carry q
// — so window ids never collide with the small sequential ids of one-shot
// streams, and every process recovers (q, k) from a frame's id alone
// (SplitWindowID) with no registration traffic.
func WindowID(q node.QueryID, k int) node.QueryID {
	return node.QueryID(int64(k+1)<<32 | int64(q))
}

// SplitWindowID recovers the continuous query and window index from a
// window id; ok is false for ordinary (one-shot) query ids.
func SplitWindowID(id node.QueryID) (q node.QueryID, k int, ok bool) {
	hi := int64(id) >> 32
	if hi <= 0 {
		return 0, 0, false
	}
	return node.QueryID(int64(id) & 0xFFFFFFFF), int(hi - 1), true
}

// Slice splits an absolute membership timeline into n window-relative
// timelines: an event at absolute tick t lands in window k = ⌊t/w⌋ — the
// window whose [k·w, (k+1)·w) interval contains it — at tick t − k·w of
// that window's own clock, joins and departures alike, so every event
// lands in exactly one window. A tick of exactly k·w re-bases to tick 0
// of window k: a departing host was never a member of that window (and,
// by the oracle's convention, does not survive window k−1), a joining
// host is a member from the window's very first instant. Events at or
// past n·w are beyond the stream's horizon and are dropped; negative
// ticks clamp into window 0 at tick 0, mirroring the engine's
// before-the-query-existed rule.
func Slice(tl churn.Timeline, w sim.Time, n int) []churn.Timeline {
	out := make([]churn.Timeline, n)
	if w <= 0 || n <= 0 {
		return out
	}
	for _, e := range tl {
		if e.T < 0 {
			e.T = 0
		}
		k := int(e.T / w)
		if k >= n {
			continue
		}
		e.T -= sim.Time(k) * w
		out[k] = append(out[k], e)
	}
	for k := range out {
		sort.SliceStable(out[k], func(i, j int) bool { return out[k][i].T < out[k][j].T })
	}
	return out
}

// Plan is the shared description of one continuous query — the spec every
// process of the fleet derives identically from its flags, exactly like a
// one-shot query spec. The issuing process additionally drives a Stream
// over it; workers only need Factory.
type Plan struct {
	// Query is the continuous query's base id (≥ 1, below 2³²: window ids
	// pack it into their low 32 bits).
	Query node.QueryID
	// Spec is the per-window sub-query: aggregate, querying host, D̂, and
	// sketch sizing. Every window re-executes it with fresh per-window FM
	// coins.
	Spec protocol.Query
	// WindowLen is W in δ ticks; 0 means exactly 2·D̂, the §4.2
	// computability minimum W ≥ 2·D̂·δ below which a window cannot fit a
	// valid one-shot execution.
	WindowLen sim.Time
	// Windows is the number of windows N to stream.
	Windows int
	// Seed is the fleet's shared seed: per-window protocol coins and the
	// generated churn schedule both derive from it.
	Seed int64
	// Static lists operator-named membership events on the stream's
	// absolute clock (validityd's -kill in continuous mode, recorded
	// traces): departures and +host@tick joins alike.
	Static churn.Timeline
	// Source generates churn on the stream's absolute clock over the full
	// horizon [0, N·W]; nil means only Static applies.
	Source churn.Source

	once   sync.Once
	err    error
	abs    churn.Timeline
	ix     *churn.Index
	slices []churn.Timeline
}

// Validate normalizes defaults and rejects inconsistent plans.
func (p *Plan) Validate() error {
	if p.Query < 1 || int64(p.Query) >= 1<<32 {
		return fmt.Errorf("stream: continuous query id %d outside [1, 2³²)", p.Query)
	}
	if p.Windows < 1 {
		return fmt.Errorf("stream: need at least one window")
	}
	if p.Spec.DHat < 1 {
		return fmt.Errorf("stream: D̂ must be ≥ 1")
	}
	if p.WindowLen == 0 {
		p.WindowLen = p.Spec.Deadline()
	}
	if p.WindowLen < p.Spec.Deadline() {
		return fmt.Errorf("stream: window %d shorter than 2·D̂ = %d (§4.2 bound)",
			p.WindowLen, p.Spec.Deadline())
	}
	for _, f := range p.Static {
		if f.H == p.Spec.Hq {
			return fmt.Errorf("stream: monitoring host %d scheduled to %s at %d; it must outlive the whole run", f.H, f.Kind, f.T)
		}
	}
	return nil
}

// init derives the absolute schedule and its window slices exactly once;
// Factory contention on first contact blocks on the once, not on a lock
// held across schedule generation.
func (p *Plan) init() error {
	p.once.Do(func() {
		if p.err = p.Validate(); p.err != nil {
			return
		}
		// The stream's one absolute schedule: explicit departures plus the
		// generated model over the whole horizon, derived from seed + base
		// query id alone — every process regenerates it bit-identically.
		abs := churn.Static(p.Static).Schedule(0, p.Spec.Hq, p.Horizon())
		if p.Source != nil {
			abs = churn.Merge(abs, p.Source.Schedule(
				churn.QuerySeed(p.Seed, int64(p.Query)), p.Spec.Hq, p.Horizon()))
		}
		p.abs = abs
		p.ix = abs.Index()
		p.slices = Slice(abs, p.WindowLen, p.Windows)
	})
	return p.err
}

// Horizon is the stream's total length N·W in ticks.
func (p *Plan) Horizon() sim.Time { return p.WindowLen * sim.Time(p.Windows) }

// WindowStart returns window k's opening tick on the stream clock.
func (p *Plan) WindowStart(k int) sim.Time { return sim.Time(k) * p.WindowLen }

// WindowEnd returns window k's closing tick on the stream clock.
func (p *Plan) WindowEnd(k int) sim.Time { return sim.Time(k+1) * p.WindowLen }

// Schedule returns the stream's absolute membership timeline.
func (p *Plan) Schedule() (churn.Timeline, error) {
	if err := p.init(); err != nil {
		return nil, err
	}
	return p.abs, nil
}

// WindowSchedule derives window k's membership timeline in ticks of the
// window sub-query's own clock: hosts absent when the window opens —
// departed earlier, or late joiners still to arrive — enter dead at tick
// 0, and the window's own slice of the absolute timeline applies at
// re-based ticks (so a host rejoining mid-window enters dead and comes
// alive at its re-based join tick).
func (p *Plan) WindowSchedule(k int) (churn.Timeline, error) {
	if err := p.init(); err != nil {
		return nil, err
	}
	if k < 0 || k >= p.Windows {
		return nil, fmt.Errorf("stream: window %d outside the %d-window stream", k, p.Windows)
	}
	start := p.WindowStart(k)
	// Carryover: every host the timeline mentions that is not a member
	// just before the window opens enters it dead at tick 0 — the
	// engine's was-never-a-member convention. "Just before" keeps the
	// boundary rule: an event at exactly k·w is window k's own slice
	// entry (re-based to 0), so it must not also be carried over. For
	// window 0 the opening state is initial membership itself. Emission
	// follows the timeline's event order, keeping the derivation
	// byte-identical across processes.
	var out churn.Timeline
	seen := make(map[graph.HostID]bool)
	for _, e := range p.abs {
		if seen[e.H] {
			continue
		}
		seen[e.H] = true
		present := p.ix.InitialMember(e.H)
		if start > 0 {
			present = p.ix.AliveAt(e.H, start-1)
		}
		if !present {
			out = append(out, churn.Event{H: e.H, T: 0})
		}
	}
	return churn.Merge(out, p.slices[k]), nil
}

// WindowInstance materializes window k's engine query on rt: the standard
// BuildInstance path with the window's own derived seed plus its sliced
// membership timeline — byte-identical on every process of the fleet.
func (p *Plan) WindowInstance(rt *node.Runtime, k int) (*node.QueryInstance, error) {
	sched, err := p.WindowSchedule(k)
	if err != nil {
		return nil, err
	}
	inst, err := node.BuildInstance(rt, protocol.NewWildfire(p.Spec),
		node.QuerySeed(p.Seed, WindowID(p.Query, k)))
	if err != nil {
		return nil, err
	}
	inst.Churn = sched
	// Every window's issuer is the continuous query's h_q: with the
	// quiescence control plane on, worker processes announce per-window
	// silence there and the per-window reads inherit the fast path.
	inst.Origin = p.Spec.Hq
	return inst, nil
}

// Factory returns the node.QueryFactory serving this plan's window family
// — the only registration a worker process needs for a continuous query
// to materialize window by window on first contact. Callers that also
// serve one-shot queries dispatch on SplitWindowID themselves and fall
// through to their own factory for ordinary ids.
func (p *Plan) Factory(rt *node.Runtime) node.QueryFactory {
	return func(id node.QueryID) (*node.QueryInstance, error) {
		q, k, ok := SplitWindowID(id)
		if !ok || q != p.Query {
			return nil, fmt.Errorf("stream: query %d is not a window of continuous query %d", id, p.Query)
		}
		if k >= p.Windows {
			return nil, fmt.Errorf("stream: window %d beyond the %d-window stream", k, p.Windows)
		}
		return p.WindowInstance(rt, k)
	}
}

// Bounds computes window k's own Continuous Single-Site Validity bounds:
// H_U is everyone alive when the window opens, H_C the stable component
// of h_q among hosts surviving the whole window (oracle.ComputeInterval
// on the stream's absolute schedule).
func (p *Plan) Bounds(g *graph.Graph, values []int64, k int) (oracle.Bounds, error) {
	if err := p.init(); err != nil {
		return oracle.Bounds{}, err
	}
	return oracle.ComputeInterval(g, values, p.Spec.Hq, p.ix,
		p.WindowStart(k), p.WindowEnd(k), p.Spec.Kind), nil
}
