package stream

import (
	"math/rand"
	"reflect"
	"testing"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/node"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

func TestWindowIDRoundTrip(t *testing.T) {
	for _, q := range []node.QueryID{1, 2, 7, 1<<32 - 1} {
		for _, k := range []int{0, 1, 5, 1000} {
			id := WindowID(q, k)
			gq, gk, ok := SplitWindowID(id)
			if !ok || gq != q || gk != k {
				t.Fatalf("SplitWindowID(WindowID(%d, %d)) = (%d, %d, %v)", q, k, gq, gk, ok)
			}
			if id <= 0 {
				t.Fatalf("window id %d not positive; the engine rejects it", id)
			}
		}
	}
	// Ordinary one-shot ids never parse as windows.
	for _, id := range []node.QueryID{0, 1, 2, 1000, 1<<32 - 1} {
		if _, _, ok := SplitWindowID(id); ok {
			t.Fatalf("one-shot id %d parsed as a window id", id)
		}
	}
}

// TestSlicePreservesDepartures is the slicing property test: re-basing an
// absolute schedule into window-relative ticks preserves every in-horizon
// departure exactly once, in the window containing its tick.
func TestSlicePreservesDepartures(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const (
		w     = sim.Time(9)
		n     = 7
		hosts = 50
	)
	horizon := w * sim.Time(n)
	for trial := 0; trial < 50; trial++ {
		var sched churn.Schedule
		inHorizon := 0
		for i := 0; i < 40; i++ {
			// A quarter of the departures land past the horizon (dropped),
			// the rest anywhere inside it, duplicates and boundary ticks
			// included.
			tick := sim.Time(rng.Int63n(int64(horizon) + int64(horizon)/3))
			if tick < horizon {
				inHorizon++
			}
			sched = append(sched, churn.Failure{H: graph.HostID(rng.Intn(hosts)), T: tick})
		}
		slices := Slice(sched, w, n)
		if len(slices) != n {
			t.Fatalf("got %d slices, want %d", len(slices), n)
		}
		type dep struct {
			H graph.HostID
			T sim.Time
		}
		want := map[dep]int{}
		for _, f := range sched {
			if f.T < horizon {
				want[dep{f.H, f.T}]++
			}
		}
		got := map[dep]int{}
		total := 0
		for k, s := range slices {
			for _, f := range s {
				if f.T < 0 || f.T >= w {
					t.Fatalf("window %d holds out-of-window relative tick %d", k, f.T)
				}
				got[dep{f.H, sim.Time(k)*w + f.T}]++
				total++
			}
		}
		if total != inHorizon {
			t.Fatalf("sliced %d departures, want %d (every in-horizon departure exactly once)", total, inHorizon)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("slicing lost or duplicated departures:\n got %v\nwant %v", got, want)
		}
	}
}

func TestSliceClampsNegativeTicks(t *testing.T) {
	slices := Slice(churn.Schedule{{H: 3, T: -4}}, 10, 2)
	if len(slices[0]) != 1 || slices[0][0].T != 0 || len(slices[1]) != 0 {
		t.Fatalf("negative tick not clamped into window 0 at tick 0: %v", slices)
	}
}

// TestWindowScheduleCarriesDeadHostsForward pins the per-window membership
// derivation: a departure affects its own window at a re-based tick and
// every later window as dead-from-tick-0, and a boundary departure at
// exactly k·W belongs to window k, not k−1.
func TestWindowScheduleCarriesDeadHostsForward(t *testing.T) {
	plan := &Plan{
		Query:     1,
		Spec:      protocol.Query{Kind: agg.Count, Hq: 0, DHat: 2, Params: agg.Params{Vectors: 8, Bits: 32}},
		WindowLen: 9,
		Windows:   3,
		Seed:      5,
		Static: churn.Schedule{
			{H: 5, T: 3},  // window 0, relative 3
			{H: 7, T: 9},  // exactly the window-1 boundary: window 1, relative 0
			{H: 9, T: 13}, // window 1, relative 4
		},
	}
	want := [][]churn.Failure{
		{{H: 5, T: 3}},
		{{H: 5, T: 0}, {H: 7, T: 0}, {H: 9, T: 4}},
		{{H: 5, T: 0}, {H: 7, T: 0}, {H: 9, T: 0}},
	}
	for k, w := range want {
		got, err := plan.WindowSchedule(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, churn.Schedule(w)) {
			t.Fatalf("window %d schedule = %v, want %v", k, got, w)
		}
	}
	if _, err := plan.WindowSchedule(3); err == nil {
		t.Fatal("window beyond the stream accepted")
	}
}

// TestPlanDerivationIsDeterministic pins the fleet contract: two processes
// constructing the plan from the same shared inputs derive byte-identical
// absolute schedules and window slices, with no communication.
func TestPlanDerivationIsDeterministic(t *testing.T) {
	mk := func() *Plan {
		return &Plan{
			Query:     3,
			Spec:      protocol.Query{Kind: agg.Count, Hq: 1, DHat: 4, Params: agg.Params{Vectors: 8, Bits: 32}},
			WindowLen: 10,
			Windows:   4,
			Seed:      23,
			Static:    churn.Schedule{{H: 9, T: 12}},
			Source:    churn.Uniform{N: 30, Remove: 5},
		}
	}
	a, b := mk(), mk()
	sa, err := a.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("processes derived different absolute schedules:\n%v\n%v", sa, sb)
	}
	if len(sa) != 6 { // 5 churned + 1 static
		t.Fatalf("absolute schedule has %d failures, want 6: %v", len(sa), sa)
	}
	for k := 0; k < 4; k++ {
		wa, _ := a.WindowSchedule(k)
		wb, _ := b.WindowSchedule(k)
		if !reflect.DeepEqual(wa, wb) {
			t.Fatalf("window %d: processes derived different schedules:\n%v\n%v", k, wa, wb)
		}
	}
	if ix := sa.Index(); ix.FailTime(1) >= 0 {
		t.Fatal("monitoring host scheduled to fail by the generated model")
	}
}

func TestPlanValidation(t *testing.T) {
	base := func() *Plan {
		return &Plan{
			Query:   1,
			Spec:    protocol.Query{Kind: agg.Count, Hq: 0, DHat: 3, Params: agg.Params{Vectors: 8, Bits: 32}},
			Windows: 2,
		}
	}
	if p := base(); p.Validate() != nil {
		t.Fatal("minimal plan rejected")
	}
	p := base()
	if err := p.Validate(); err != nil || p.WindowLen != 6 {
		t.Fatalf("WindowLen default = %d, want 2·D̂ = 6", p.WindowLen)
	}
	p = base()
	p.WindowLen = 5
	if p.Validate() == nil {
		t.Fatal("window below the §4.2 bound accepted")
	}
	p = base()
	p.Windows = 0
	if p.Validate() == nil {
		t.Fatal("zero windows accepted")
	}
	p = base()
	p.Query = 0
	if p.Validate() == nil {
		t.Fatal("reserved query id accepted")
	}
	p = base()
	p.Static = churn.Schedule{{H: 0, T: 1}}
	if p.Validate() == nil {
		t.Fatal("schedule killing the monitoring host accepted")
	}
}

// TestLiveContinuousStream runs the whole subsystem end-to-end in one
// process: a churned 40-host fleet on the channel transport streams four
// windows, every window arriving in order with its own bounds satisfied,
// and the shrinking population showing up as shrinking H_U.
func TestLiveContinuousStream(t *testing.T) {
	const hosts = 40
	g := topology.Generate(topology.Random, hosts, 7)
	values := zipfval.Default(7).Values(hosts)
	dHat := g.Diameter(nil) + 2
	plan := &Plan{
		Query:   1,
		Spec:    protocol.Query{Kind: agg.Count, Hq: 0, DHat: dHat, Params: agg.Params{Vectors: 64, Bits: 32}},
		Windows: 4,
		Seed:    7,
		Static:  churn.Schedule{{H: 3, T: 1}},
		Source:  churn.Uniform{N: hosts, Remove: 8},
	}
	ln := node.NewLiveNetwork(g, values, testHop)
	s, err := Live(ln, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Stop()

	var rs []Result
	for r := range s.Results() {
		if r.Err != nil {
			t.Fatalf("window %d failed: %v", r.Window, r.Err)
		}
		rs = append(rs, r)
	}
	if len(rs) != plan.Windows {
		t.Fatalf("streamed %d windows, want %d", len(rs), plan.Windows)
	}
	for i, r := range rs {
		if r.Window != i {
			t.Fatalf("window %d arrived at position %d: results must stream in window order", r.Window, i)
		}
		if !r.Valid {
			t.Fatalf("window %d: %v outside its own bounds [%v, %v] (slack %v)",
				r.Window, r.Value, r.Lower, r.Upper, r.Slack)
		}
		if r.Stats.MessagesSent == 0 {
			t.Fatalf("window %d reports zero messages; per-window counters broken", r.Window)
		}
		if i > 0 && r.HU > rs[i-1].HU {
			t.Fatalf("H_U grew from %d to %d between windows; carryover deaths lost", rs[i-1].HU, r.HU)
		}
	}
	if last := rs[len(rs)-1]; last.HU >= hosts {
		t.Fatalf("final window H_U = %d; churn never bit", last.HU)
	}
}
