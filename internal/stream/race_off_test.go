//go:build !race

package stream

import "time"

// testHop is the wall-clock δ used by the live streaming tests; the race
// variant widens it under the detector's slowdown (race_on_test.go).
const testHop = 5 * time.Millisecond
