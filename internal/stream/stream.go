package stream

import (
	"fmt"
	"sync"
	"time"

	"validity/internal/node"
	"validity/internal/obs"
	"validity/internal/oracle"
)

// Result is one window's outcome, delivered in window order.
type Result struct {
	// Window is the 0-based window index; Start/End delimit the window
	// [Start, End) on the stream's absolute clock, in δ ticks.
	Window     int
	Start, End int64
	// Value is the result declared at h_q for this window.
	Value float64
	// Lower and Upper are this window's own q(H_C) / q(H_U) bounds; HC
	// and HU are the bound set sizes.
	Lower, Upper float64
	HC, HU       int
	// Slack is the multiplicative FM tolerance Valid was judged with.
	Slack float64
	// Valid reports whether Value satisfies this window's Continuous
	// Single-Site Validity (exactly for min/max, within Slack otherwise).
	Valid bool
	// Stats is this process's share of the window's §6.3 cost counters.
	Stats node.Stats
	// Latency is window-open to answer-in-hand wall time; adaptive result
	// reads make it track actual convergence, not the deadline.
	Latency time.Duration
	// Err, when non-nil, reports a window that could not be executed; the
	// stream stops after delivering it.
	Err error
}

// Results is the in-order window result channel of a Stream. It is
// closed after the last window (or after a Result carrying Err).
type Results <-chan Result

// Stream drives one continuous query on the issuing process: the
// runtime's shared timer heap opens window k's sub-query at stream tick
// k·W, a collector reads each window's result as soon as it has converged
// (Runtime.AwaitQueryResult, deadline as the hard cap), judges it against
// the window's own oracle bounds, and delivers Results in window order.
// Workers run no Stream — their window instances materialize from the
// Plan's factory on first contact, and the engine's ordinary retirement
// reclaims each window's state after its deadline.
type Stream struct {
	rt     *node.Runtime
	plan   *Plan
	out    chan Result
	opened []chan opening
	quit   chan struct{}
	once   sync.Once
	// lat is window-open→answer-in-hand latency on the runtime's registry
	// (nil when the runtime is uninstrumented).
	lat *obs.Histogram
}

// opening records when a window's sub-query was issued.
type opening struct {
	at  time.Time
	err error
}

// Start validates the plan and begins the stream: one timer-heap entry
// per window opens its sub-query on schedule, and the returned Stream's
// Results() delivers the windows in order. The runtime must already be
// started with a factory that serves the plan's window ids (Plan.Factory,
// or a dispatcher that falls through to it).
func Start(rt *node.Runtime, p *Plan) (*Stream, error) {
	if err := p.init(); err != nil {
		return nil, err
	}
	hop := rt.Hop()
	if hop <= 0 {
		return nil, fmt.Errorf("stream: runtime has no per-hop duration; windows need a wall clock")
	}
	s := &Stream{
		rt:     rt,
		plan:   p,
		out:    make(chan Result, p.Windows),
		opened: make([]chan opening, p.Windows),
		quit:   make(chan struct{}),
	}
	for k := range s.opened {
		s.opened[k] = make(chan opening, 1)
	}
	s.lat = rt.Obs().Histogram("stream_window_latency_ms",
		"Window open to answer-in-hand wall time, ms.", obs.LatencyBucketsMs)
	for k := 0; k < p.Windows; k++ {
		k := k
		rt.After(time.Duration(p.WindowStart(k))*hop, func() { s.open(k) })
	}
	go s.collect()
	return s, nil
}

// Results returns the in-order window result channel.
func (s *Stream) Results() Results { return s.out }

// Close abandons the stream: pending window opens become no-ops and the
// collector exits. Windows already in flight retire through the engine's
// ordinary lifecycle. Closing a completed stream is a no-op.
func (s *Stream) Close() { s.once.Do(func() { close(s.quit) }) }

// open issues window k's sub-query; it runs on a timer-heap goroutine at
// the window's scheduled tick.
func (s *Stream) open(k int) {
	select {
	case <-s.quit:
		return
	default:
	}
	at := time.Now()
	_, err := s.rt.StartQuery(WindowID(s.plan.Query, k))
	s.opened[k] <- opening{at: at, err: err}
}

// collect awaits each window's convergence in order and emits Results.
func (s *Stream) collect() {
	defer close(s.out)
	var (
		p      = s.plan
		spec   = p.Spec
		g      = s.rt.Graph()
		values = s.rt.Values()
		slack  = oracle.FMSlack(spec.Kind, spec.Params.Vectors)
	)
	// Adaptive read bracket per window, shared with the daemon's one-shot
	// reads (node.AwaitBracket): the runtime's sound floor, quiescence
	// settle, and the old sleep-out-the-deadline budget as the hard cap.
	floor, settle, hardCap := s.rt.AwaitBracket(spec.Deadline())
	for k := 0; k < p.Windows; k++ {
		var op opening
		select {
		case op = <-s.opened[k]:
		case <-s.quit:
			return
		}
		res := Result{
			Window: k,
			Start:  int64(p.WindowStart(k)),
			End:    int64(p.WindowEnd(k)),
			Slack:  slack,
		}
		if op.err != nil {
			res.Err = fmt.Errorf("stream: opening window %d: %w", k, op.err)
			s.emit(res)
			return
		}
		id := WindowID(p.Query, k)
		// Anchor the bracket at the window's open time, not at this call:
		// the sharded floor can exceed W·hop, so a collector that re-waited
		// the full floor per window would drift further behind every
		// window and eventually read windows already retired by the
		// engine. Elapsed collection lag counts against this window's
		// budget instead.
		lag := time.Since(op.at)
		f, c := floor-lag, hardCap-lag
		if f < 0 {
			f = 0
		}
		if c < 0 {
			c = 0
		}
		v, ok, err := s.rt.AwaitQueryResult(id, spec.Hq, f, settle, c)
		res.Latency = time.Since(op.at)
		s.lat.Observe(float64(res.Latency) / float64(time.Millisecond))
		if err == nil && !ok {
			err = fmt.Errorf("stream: window %d declared no result at h_q=%d", k, spec.Hq)
		}
		if err != nil {
			res.Err = err
			s.emit(res)
			return
		}
		b, err := p.Bounds(g, values, k)
		if err != nil {
			res.Err = err
			s.emit(res)
			return
		}
		res.Value = v
		res.Lower, res.Upper = b.LowerValue, b.UpperValue
		res.HC, res.HU = len(b.HC), len(b.HU)
		res.Valid = b.ValidFactor(v, slack)
		if st, known := s.rt.QueryStats(id); known {
			res.Stats = st
		}
		s.emit(res)
	}
}

func (s *Stream) emit(r Result) {
	select {
	case s.out <- r:
	case <-s.quit:
	}
}

// Live is the LiveNetwork continuous face: it registers the plan's window
// factory on ln's engine, starts the network, and opens the stream — the
// whole §4.2 execution in one call for single-process callers (the public
// validity facade, examples). The caller drains Results and then Stops
// the network.
func Live(ln *node.LiveNetwork, p *Plan) (*Stream, error) {
	if err := p.init(); err != nil {
		return nil, err
	}
	rt := ln.Runtime()
	rt.SetQueryFactory(p.Factory(rt))
	ln.Start()
	return Start(rt, p)
}
