//go:build race

package stream

import "time"

// testHop widens the wall-clock δ under the race detector's slowdown,
// matching the discipline of internal/node's race_on_test.go: δ must stay
// above the instrumented per-hop latency or deadline guards fire early.
const testHop = 25 * time.Millisecond
