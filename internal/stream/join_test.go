package stream

import (
	"math/rand"
	"reflect"
	"testing"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

// TestSlicePreservesJoins extends the slicing property test to the event
// timeline: re-basing an absolute timeline into window-relative ticks
// preserves every in-horizon event — joins and departures alike, kind
// included — exactly once, in the window containing its tick.
func TestSlicePreservesJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const (
		w     = sim.Time(9)
		n     = 7
		hosts = 50
	)
	horizon := w * sim.Time(n)
	for trial := 0; trial < 50; trial++ {
		var tl churn.Timeline
		inHorizon, joins := 0, 0
		for i := 0; i < 40; i++ {
			tick := sim.Time(rng.Int63n(int64(horizon) + int64(horizon)/3))
			kind := churn.Leave
			if rng.Intn(2) == 0 {
				kind = churn.Join
			}
			if tick < horizon {
				inHorizon++
				if kind == churn.Join {
					joins++
				}
			}
			tl = append(tl, churn.Event{H: graph.HostID(rng.Intn(hosts)), T: tick, Kind: kind})
		}
		if joins == 0 {
			continue // want every counted trial to actually exercise joins
		}
		slices := Slice(tl, w, n)
		type ev struct {
			H    graph.HostID
			T    sim.Time
			Kind churn.EventKind
		}
		want := map[ev]int{}
		for _, e := range tl {
			if e.T < horizon {
				want[ev{e.H, e.T, e.Kind}]++
			}
		}
		got := map[ev]int{}
		total, gotJoins := 0, 0
		for k, s := range slices {
			for _, e := range s {
				if e.T < 0 || e.T >= w {
					t.Fatalf("window %d holds out-of-window relative tick %d", k, e.T)
				}
				got[ev{e.H, sim.Time(k)*w + e.T, e.Kind}]++
				total++
				if e.Kind == churn.Join {
					gotJoins++
				}
			}
		}
		if total != inHorizon {
			t.Fatalf("sliced %d events, want %d (every in-horizon event exactly once)", total, inHorizon)
		}
		if gotJoins != joins {
			t.Fatalf("sliced %d joins, want %d (every join exactly once)", gotJoins, joins)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("slicing lost, duplicated, or re-kinded events:\n got %v\nwant %v", got, want)
		}
	}
}

// TestWindowScheduleWithJoins pins the per-window derivation over a full
// event timeline: a late joiner enters every earlier window dead at tick
// 0 and its own window via a re-based join; a multi-session host is
// carried dead into windows that open during its absence and alive into
// windows that open mid-session.
func TestWindowScheduleWithJoins(t *testing.T) {
	plan := &Plan{
		Query:     1,
		Spec:      protocol.Query{Kind: agg.Count, Hq: 0, DHat: 2, Params: agg.Params{Vectors: 8, Bits: 32}},
		WindowLen: 9,
		Windows:   3,
		Seed:      5,
		Static: churn.Timeline{
			{H: 5, T: 3},                    // leaves in window 0
			{H: 5, T: 12, Kind: churn.Join}, // rejoins in window 1
			{H: 7, T: 20, Kind: churn.Join}, // late joiner, window 2
			{H: 9, T: 9},                    // boundary leave: window 1 at tick 0
		},
	}
	want := []churn.Timeline{
		// Window 0: host 7 absent the whole window (dead at 0, ahead of
		// every in-window tick); host 5's leave at 3; host 9 still present.
		{{H: 7, T: 0}, {H: 5, T: 3}},
		// Window 1: host 5 absent at open, rejoins at re-based tick 3;
		// host 7 still absent; host 9's boundary leave re-bases to 0.
		{{H: 5, T: 0}, {H: 7, T: 0}, {H: 9, T: 0}, {H: 5, T: 3, Kind: churn.Join}},
		// Window 2: host 5 alive at open (nothing to say); host 9 long
		// gone; host 7 joins at re-based tick 2 (carryover order follows
		// the absolute timeline: 9's event precedes 7's).
		{{H: 9, T: 0}, {H: 7, T: 0}, {H: 7, T: 2, Kind: churn.Join}},
	}
	for k, w := range want {
		got, err := plan.WindowSchedule(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("window %d schedule = %v, want %v", k, got, w)
		}
	}
	// The oracle view of the same plan: the population grows when the
	// late joiner arrives.
	g := topology.Generate(topology.Random, 12, 5)
	values := zipfval.Default(5).Values(12)
	b1, err := plan.Bounds(g, values, 1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := plan.Bounds(g, values, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1 [9,18]: host 7 still absent and host 9 leaves at the
	// opening instant, so |H_U| = 10; host 5's mid-window rejoin keeps it
	// in. Window 2 [18,27]: host 7's arrival grows |H_U| to 11.
	if len(b1.HU) != 10 || len(b2.HU) != 11 {
		t.Fatalf("window |H_U| = %d, %d; want 10, 11", len(b1.HU), len(b2.HU))
	}
	if len(b2.HU) <= len(b1.HU) {
		t.Fatalf("window 2 |H_U| = %d not above window 1's %d despite an arrival",
			len(b2.HU), len(b1.HU))
	}
}
