// Package fm implements Flajolet–Martin probabilistic counting [FM83] and
// the paper's duplicate-insensitive distributed count and sum operators
// built on it (§5.2).
//
// A Sketch holds c bit-vectors B_1..B_c. Inserting one (distinct) element
// sets, in each vector, bit b where b is geometrically distributed:
// Pr[b = i] = 2^{-(i+1)} — the "coin toss sequence" of §5.2. Two sketches
// are combined with bitwise OR, which is commutative, associative and
// idempotent, so re-combining the same partial any number of times leaves
// the result unchanged; that is precisely the duplicate insensitivity the
// WILDFIRE convergecast needs.
//
// The estimate is 2^z̄/φ where z_i is the index of the lowest zero bit of
// B_i, z̄ their mean, and φ ≈ 0.77351 the Flajolet–Martin correction
// constant.
//
// For the sum operator a host holding value h inserts h distinct
// pseudo-elements (§5.2). AddN does this literally for small h and
// switches to an exact-distribution per-bit sampling fast path for large
// h; the ablation bench in the repository root measures the difference and
// a property test checks the two paths are statistically indistinguishable.
package fm

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// Phi is the Flajolet–Martin bias correction constant: E[2^z] ≈ φ·m.
const Phi = 0.77351

// DefaultVectors is the repetition count c the paper finds sufficient
// ("the number of repetitions required are small (≈ 8)", §6.4).
const DefaultVectors = 8

// DefaultBits is the bit-vector length. The paper sizes vectors at
// O(log |V|) and notes 32 bits suffice unless |H| > 2^32 (§5.2).
const DefaultBits = 32

// Sketch is an FM synopsis: c bit-vectors of up to 64 bits each.
type Sketch struct {
	vecs []uint64
	bits int
}

// NewSketch returns an empty sketch with c vectors of `bits` bits
// (1 ≤ bits ≤ 64).
func NewSketch(c, bits int) *Sketch {
	if c < 1 {
		panic("fm: need at least one vector")
	}
	if bits < 1 || bits > 64 {
		panic(fmt.Sprintf("fm: bits must be in [1,64], got %d", bits))
	}
	return &Sketch{vecs: make([]uint64, c), bits: bits}
}

// NewDefaultSketch returns a sketch with the paper's default parameters.
func NewDefaultSketch() *Sketch { return NewSketch(DefaultVectors, DefaultBits) }

// Vectors returns c, the number of bit-vectors.
func (s *Sketch) Vectors() int { return len(s.vecs) }

// Bits returns the length of each bit-vector.
func (s *Sketch) Bits() int { return s.bits }

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	return &Sketch{vecs: append([]uint64(nil), s.vecs...), bits: s.bits}
}

// geometricBit draws the index of the last Tail before the first Head in a
// fair coin-toss sequence: Pr[b=i] = 2^{-(i+1)}, truncated to the vector
// width.
func geometricBit(rng *rand.Rand, width int) int {
	// A 63-bit uniform word: the number of trailing zeros is geometric.
	u := rng.Int63()
	b := bits.TrailingZeros64(uint64(u) | 1<<62) // guarantee termination
	if b >= width {
		b = width - 1
	}
	return b
}

// AddDistinct inserts one element assumed distinct from all others (each
// host "pretends to have an element distinct from other hosts", §5.2).
func (s *Sketch) AddDistinct(rng *rand.Rand) {
	for i := range s.vecs {
		s.vecs[i] |= 1 << geometricBit(rng, s.bits)
	}
}

// addNExactThreshold is the addend size above which AddN switches from
// literal repeated insertion to the per-bit Bernoulli fast path.
const addNExactThreshold = 64

// AddN inserts n distinct pseudo-elements, the §5.2 sum encoding: a host
// with value n contributes n elements, OR-folded locally into one sketch.
func (s *Sketch) AddN(rng *rand.Rand, n int64) {
	if n <= 0 {
		return
	}
	if n <= addNExactThreshold {
		for k := int64(0); k < n; k++ {
			s.AddDistinct(rng)
		}
		return
	}
	s.addNFast(rng, n)
}

// addNFast sets each bit independently with its exact marginal probability
// 1 − (1 − p_b)^n, p_b = 2^{-(b+1)} (bit widths capped: the top bit
// absorbs the geometric tail). Bits of a vector are not independent under
// literal insertion, but the estimator depends only on the lowest zero
// bit, whose distribution is governed by the marginals of the low bits,
// where the dependence is negligible for large n; the property test
// TestSumFastPathMatchesExact quantifies this.
func (s *Sketch) addNFast(rng *rand.Rand, n int64) {
	for i := range s.vecs {
		for b := 0; b < s.bits; b++ {
			if s.vecs[i]&(1<<b) != 0 {
				continue
			}
			var p float64
			if b == s.bits-1 {
				p = math.Pow(2, -float64(b)) // tail mass 2^{-b}
			} else {
				p = math.Pow(2, -float64(b+1))
			}
			q := -math.Expm1(float64(n) * math.Log1p(-p)) // 1-(1-p)^n
			if rng.Float64() < q {
				s.vecs[i] |= 1 << b
			}
		}
	}
}

// Or merges other into s (bitwise OR per vector). Both sketches must have
// identical dimensions.
func (s *Sketch) Or(other *Sketch) {
	if len(s.vecs) != len(other.vecs) || s.bits != other.bits {
		panic(fmt.Sprintf("fm: OR of mismatched sketches (%d/%d vs %d/%d)",
			len(s.vecs), s.bits, len(other.vecs), other.bits))
	}
	for i := range s.vecs {
		s.vecs[i] |= other.vecs[i]
	}
}

// Equal reports whether two sketches have identical bit content.
func (s *Sketch) Equal(other *Sketch) bool {
	if len(s.vecs) != len(other.vecs) || s.bits != other.bits {
		return false
	}
	for i := range s.vecs {
		if s.vecs[i] != other.vecs[i] {
			return false
		}
	}
	return true
}

// Covers reports whether every bit set in other is also set in s; used to
// verify sketch-level Single-Site Validity (the query host's final sketch
// must cover the OR of all H_C sketches and be covered by the OR of all
// H_U sketches).
func (s *Sketch) Covers(other *Sketch) bool {
	if len(s.vecs) != len(other.vecs) || s.bits != other.bits {
		return false
	}
	for i := range s.vecs {
		if other.vecs[i]&^s.vecs[i] != 0 {
			return false
		}
	}
	return true
}

// lowestZero returns z_i: the index of the lowest 0 bit in vector i (equal
// to bits if the vector is saturated).
func (s *Sketch) lowestZero(i int) int {
	z := bits.TrailingZeros64(^s.vecs[i])
	if z > s.bits {
		z = s.bits
	}
	return z
}

// Estimate returns the FM cardinality estimate 2^z̄/φ, or 0 for an empty
// sketch.
func (s *Sketch) Estimate() float64 {
	sum := 0.0
	empty := true
	for i := range s.vecs {
		if s.vecs[i] != 0 {
			empty = false
		}
		sum += float64(s.lowestZero(i))
	}
	if empty {
		return 0
	}
	z := sum / float64(len(s.vecs))
	return math.Pow(2, z) / Phi
}

// String summarizes the sketch.
func (s *Sketch) String() string {
	return fmt.Sprintf("fm.Sketch{c=%d bits=%d est=%.1f}", len(s.vecs), s.bits, s.Estimate())
}

// Words exposes the raw vectors (for serialization); the returned slice is
// a copy.
func (s *Sketch) Words() []uint64 { return append([]uint64(nil), s.vecs...) }

// AppendWords appends the raw vectors to buf in little-endian order and
// returns the extended slice — the allocation-free twin of Words for
// encoders on the send hot path (internal/wire), which must not copy the
// vector slice per frame.
func (s *Sketch) AppendWords(buf []byte) []byte {
	for _, w := range s.vecs {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// FromWords reconstructs a sketch from raw vectors.
func FromWords(words []uint64, bitsPerVec int) *Sketch {
	sk := NewSketch(len(words), bitsPerVec)
	copy(sk.vecs, words)
	return sk
}

// CountSet builds the count synopsis for a set of m distinct elements in
// one shot (the centralized FM algorithm used in §6.4's accuracy
// experiment): it inserts m distinct elements into a fresh sketch.
func CountSet(m int, c, bitsPerVec int, rng *rand.Rand) *Sketch {
	s := NewSketch(c, bitsPerVec)
	for i := 0; i < m; i++ {
		s.AddDistinct(rng)
	}
	return s
}

// SumSet builds the sum synopsis of the given values (each value v
// contributes v distinct pseudo-elements), as a centralized reference for
// the distributed sum operator.
func SumSet(values []int64, c, bitsPerVec int, rng *rand.Rand) *Sketch {
	s := NewSketch(c, bitsPerVec)
	for _, v := range values {
		s.AddN(rng, v)
	}
	return s
}
