package fm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSketchValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewSketch(0, 32) },
		func() { NewSketch(8, 0) },
		func() { NewSketch(8, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for invalid sketch parameters")
				}
			}()
			bad()
		}()
	}
	s := NewSketch(4, 16)
	if s.Vectors() != 4 || s.Bits() != 16 {
		t.Fatalf("dimensions: %d/%d", s.Vectors(), s.Bits())
	}
}

func TestEmptySketchEstimateZero(t *testing.T) {
	s := NewDefaultSketch()
	if e := s.Estimate(); e != 0 {
		t.Fatalf("empty sketch estimate = %v, want 0", e)
	}
}

func TestEstimateGrowsWithCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := CountSet(100, 16, 32, rng)
	large := CountSet(10000, 16, 32, rng)
	if small.Estimate() >= large.Estimate() {
		t.Fatalf("estimate not monotone: small=%.1f large=%.1f",
			small.Estimate(), large.Estimate())
	}
}

// Lemma 5.1: Pr[1/c ≤ m̂/m ≤ c] ≥ 1 − 2/c. With c = 16 the failure
// probability is ≤ 1/8; over a handful of trials all should pass easily.
func TestLemma51Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const c = 16
	for _, m := range []int{1 << 10, 1 << 12, 1 << 14} {
		fails := 0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			s := CountSet(m, c, 32, rng)
			ratio := s.Estimate() / float64(m)
			if ratio < 1.0/c || ratio > c {
				fails++
			}
		}
		if fails > trials/4 {
			t.Fatalf("m=%d: %d/%d estimates outside [1/%d, %d]", m, fails, trials, c, c)
		}
	}
}

// §6.4: with c ≈ 8 repetitions the accuracy ratio should be near 1. We
// average over trials and demand a loose band (FM with φ correction is
// unbiased up to small-sample effects).
func TestAccuracyConvergesNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m = 1 << 12
	mean := func(c int) float64 {
		sum := 0.0
		const trials = 30
		for i := 0; i < trials; i++ {
			sum += CountSet(m, c, 32, rng).Estimate() / float64(m)
		}
		return sum / trials
	}
	m8 := mean(8)
	if m8 < 0.6 || m8 > 1.6 {
		t.Fatalf("mean accuracy at c=8: %.3f, want ≈ 1", m8)
	}
	// More repetitions should not hurt.
	m32 := mean(32)
	if m32 < 0.6 || m32 > 1.6 {
		t.Fatalf("mean accuracy at c=32: %.3f, want ≈ 1", m32)
	}
}

func TestOrMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched OR")
		}
	}()
	NewSketch(4, 32).Or(NewSketch(8, 32))
}

func TestOrIsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := CountSet(500, 8, 32, rng)
	b := CountSet(500, 8, 32, rng)
	u := a.Clone()
	u.Or(b)
	if !u.Covers(a) || !u.Covers(b) {
		t.Fatal("union does not cover operands")
	}
	// Union estimate at least the max of the parts (monotone bits).
	if u.Estimate()+1e-9 < math.Max(a.Estimate(), b.Estimate()) {
		t.Fatalf("union estimate %.1f below parts %.1f/%.1f",
			u.Estimate(), a.Estimate(), b.Estimate())
	}
}

// Duplicate insensitivity: OR-ing a sketch into an accumulator twice gives
// the same result as once.
func TestQuickDuplicateInsensitive(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		part := CountSet(int(n)+1, 4, 32, rng)
		acc1 := NewSketch(4, 32)
		acc1.Or(part)
		acc2 := NewSketch(4, 32)
		acc2.Or(part)
		acc2.Or(part)
		acc2.Or(part)
		return acc1.Equal(acc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// OR is commutative and associative.
func TestQuickOrCommutativeAssociative(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		mk := func(seed int64) *Sketch {
			rng := rand.New(rand.NewSource(seed))
			return CountSet(int(uint16(seed))%100+1, 4, 32, rng)
		}
		a, b, c := mk(s1), mk(s2), mk(s3)
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		if !ab.Equal(ba) {
			return false
		}
		abc1 := ab.Clone()
		abc1.Or(c)
		bc := b.Clone()
		bc.Or(c)
		abc2 := a.Clone()
		abc2.Or(bc)
		return abc1.Equal(abc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// OR is idempotent: x OR x = x.
func TestQuickOrIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := CountSet(int(uint16(seed))%200+1, 4, 32, rng)
		aa := a.Clone()
		aa.Or(a)
		return aa.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoversReflexiveAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := CountSet(100, 8, 32, rng)
	if !a.Covers(a) {
		t.Fatal("sketch must cover itself")
	}
	empty := NewSketch(8, 32)
	if !a.Covers(empty) {
		t.Fatal("any sketch covers the empty sketch")
	}
	if empty.Covers(a) {
		t.Fatal("empty sketch cannot cover a non-empty one")
	}
	if a.Covers(NewSketch(4, 32)) {
		t.Fatal("mismatched dimensions must not be covered")
	}
}

func TestGeometricBitDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 200000
	counts := make([]int, 64)
	for i := 0; i < n; i++ {
		counts[geometricBit(rng, 32)]++
	}
	// Pr[b=0] ≈ 1/2, Pr[b=1] ≈ 1/4, Pr[b=2] ≈ 1/8.
	for b, want := range []float64{0.5, 0.25, 0.125} {
		got := float64(counts[b]) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("Pr[b=%d] = %.4f, want ≈ %.3f", b, got, want)
		}
	}
}

func TestSumEncodingScales(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Sum of 64 hosts each holding 100 => 6400 pseudo-elements.
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = 100
	}
	s := SumSet(vals, 16, 32, rng)
	est := s.Estimate()
	if est < 6400.0/8 || est > 6400.0*8 {
		t.Fatalf("sum estimate %.0f wildly off 6400", est)
	}
}

// The AddN fast path must agree statistically with literal insertion.
func TestSumFastPathMatchesExact(t *testing.T) {
	const n = 1 << 12 // large enough to trigger the fast path
	const trials = 40
	meanEst := func(fast bool) float64 {
		rng := rand.New(rand.NewSource(8))
		sum := 0.0
		for i := 0; i < trials; i++ {
			s := NewSketch(8, 32)
			if fast {
				s.addNFast(rng, n)
			} else {
				for k := 0; k < n; k++ {
					s.AddDistinct(rng)
				}
			}
			sum += s.Estimate()
		}
		return sum / trials
	}
	exact, fast := meanEst(false), meanEst(true)
	if ratio := fast / exact; ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("fast path mean %.0f vs exact %.0f (ratio %.2f)", fast, exact, ratio)
	}
}

func TestAddNZeroAndNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSketch(4, 32)
	s.AddN(rng, 0)
	s.AddN(rng, -5)
	if s.Estimate() != 0 {
		t.Fatal("AddN(0) or AddN(negative) modified the sketch")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := CountSet(300, 8, 32, rng)
	b := FromWords(a.Words(), 32)
	if !a.Equal(b) {
		t.Fatal("Words/FromWords round trip failed")
	}
	// Words returns a copy.
	w := a.Words()
	w[0] = ^uint64(0)
	if a.Equal(FromWords(w, 32)) {
		t.Fatal("Words did not return a copy")
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := CountSet(100, 8, 32, rng)
	b := a.Clone()
	b.AddDistinct(rng)
	b.AddDistinct(rng)
	// a must be unchanged: b covers a but (likely) not vice versa; at
	// minimum a must still cover itself and equality must reflect clone
	// semantics right after cloning.
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("fresh clone differs from original")
	}
}

func TestStringFormat(t *testing.T) {
	s := NewDefaultSketch()
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
