package fm

import (
	"encoding/binary"
	"fmt"
)

// Sketches cross process boundaries inside protocol messages on the TCP
// transport (internal/transport), which frames everything with encoding/
// gob. A Sketch's fields are unexported by design, so it implements the
// GobEncoder/GobDecoder pair explicitly with a fixed little-endian layout:
//
//	u8 bits | u32 vector count | count × u64 vectors

// GobEncode implements gob.GobEncoder.
func (s *Sketch) GobEncode() ([]byte, error) {
	buf := make([]byte, 0, 5+8*len(s.vecs))
	buf = append(buf, uint8(s.bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.vecs)))
	for _, v := range s.vecs {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return buf, nil
}

// GobDecode implements gob.GobDecoder.
func (s *Sketch) GobDecode(b []byte) error {
	if len(b) < 5 {
		return fmt.Errorf("fm: sketch frame too short (%d bytes)", len(b))
	}
	bits := int(b[0])
	if bits < 1 || bits > 64 {
		return fmt.Errorf("fm: invalid bits %d", bits)
	}
	n := int(binary.LittleEndian.Uint32(b[1:5]))
	if n < 1 || len(b) != 5+8*n {
		return fmt.Errorf("fm: sketch frame of %d bytes does not hold %d vectors", len(b), n)
	}
	vecs := make([]uint64, n)
	for i := range vecs {
		vecs[i] = binary.LittleEndian.Uint64(b[5+8*i:])
	}
	s.bits = bits
	s.vecs = vecs
	return nil
}
