package fm

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// PCSA is the stochastic-averaging variant from the original
// Flajolet–Martin paper ("Probabilistic Counting with Stochastic
// Averaging"): instead of inserting every element into all c vectors —
// c geometric draws per insertion, as §5.2's operators do — each element
// is routed to one uniformly chosen vector and inserted there only. One
// draw per insertion, same OR-combine mergability, estimate
// c·2^z̄/φ.
//
// The repository's protocols use the paper's per-element-c encoding
// (Sketch); PCSA exists as the ablation partner: the
// BenchmarkAblationPCSA bench at the repository root compares insertion
// cost and accuracy of the two designs, and the tests pin that PCSA
// remains duplicate-insensitive under OR.
//
// One semantic difference matters for the distributed setting: two PCSA
// insertions of the *same* logical element must route to the same vector
// to stay duplicate-insensitive, so Add takes the element's hash rather
// than drawing the route from a private RNG. The §5.2 "each host pretends
// to have a distinct element" trick supplies that hash for free — a
// host's identity.
type PCSA struct {
	vecs []uint64
	bits int
}

// NewPCSA returns an empty PCSA synopsis with c vectors of `bits` bits.
func NewPCSA(c, bitsPerVec int) *PCSA {
	if c < 1 {
		panic("fm: PCSA needs at least one vector")
	}
	if bitsPerVec < 1 || bitsPerVec > 64 {
		panic(fmt.Sprintf("fm: PCSA bits must be in [1,64], got %d", bitsPerVec))
	}
	return &PCSA{vecs: make([]uint64, c), bits: bitsPerVec}
}

// Add inserts the element identified by hash. The low bits route to a
// vector; the remaining bits drive the geometric position, so equal
// hashes always set the same bit (duplicate insensitivity).
func (p *PCSA) Add(hash uint64) {
	c := uint64(len(p.vecs))
	vec := hash % c
	rest := hash / c
	b := bits.TrailingZeros64(rest | 1<<62)
	if b >= p.bits {
		b = p.bits - 1
	}
	p.vecs[vec] |= 1 << b
}

// AddRandom inserts a fresh pseudo-element drawn from rng (a host
// inventing a distinct element, §5.2).
func (p *PCSA) AddRandom(rng *rand.Rand) {
	p.Add(uint64(rng.Int63())<<1 | uint64(rng.Int63n(2)))
}

// Or merges other into p.
func (p *PCSA) Or(other *PCSA) {
	if len(p.vecs) != len(other.vecs) || p.bits != other.bits {
		panic("fm: OR of mismatched PCSA synopses")
	}
	for i := range p.vecs {
		p.vecs[i] |= other.vecs[i]
	}
}

// Equal reports bit-identical content.
func (p *PCSA) Equal(other *PCSA) bool {
	if len(p.vecs) != len(other.vecs) || p.bits != other.bits {
		return false
	}
	for i := range p.vecs {
		if p.vecs[i] != other.vecs[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (p *PCSA) Clone() *PCSA {
	return &PCSA{vecs: append([]uint64(nil), p.vecs...), bits: p.bits}
}

// Estimate returns c·2^z̄/φ, or 0 for an empty synopsis.
func (p *PCSA) Estimate() float64 {
	sum := 0.0
	empty := true
	for i := range p.vecs {
		if p.vecs[i] != 0 {
			empty = false
		}
		z := bits.TrailingZeros64(^p.vecs[i])
		if z > p.bits {
			z = p.bits
		}
		sum += float64(z)
	}
	if empty {
		return 0
	}
	z := sum / float64(len(p.vecs))
	return float64(len(p.vecs)) * math.Pow(2, z) / Phi
}
