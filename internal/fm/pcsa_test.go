package fm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPCSAValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewPCSA(0, 32) },
		func() { NewPCSA(8, 0) },
		func() { NewPCSA(8, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestPCSAEmptyEstimate(t *testing.T) {
	if NewPCSA(8, 32).Estimate() != 0 {
		t.Fatal("empty PCSA estimate not 0")
	}
}

func TestPCSADuplicateInsensitive(t *testing.T) {
	a := NewPCSA(8, 32)
	b := NewPCSA(8, 32)
	hashes := []uint64{12345, 678901, 1 << 40, 42}
	for _, h := range hashes {
		a.Add(h)
	}
	// Insert every hash three times into b.
	for i := 0; i < 3; i++ {
		for _, h := range hashes {
			b.Add(h)
		}
	}
	if !a.Equal(b) {
		t.Fatal("PCSA not duplicate-insensitive for equal hashes")
	}
}

func TestPCSAAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const m = 1 << 14
	p := NewPCSA(64, 32)
	for i := 0; i < m; i++ {
		p.AddRandom(rng)
	}
	est := p.Estimate()
	// PCSA at c=64 concentrates around the truth; the classic analysis
	// gives ~0.78/√c ≈ 10% standard error. Allow a wide band.
	if est < m/2 || est > m*2 {
		t.Fatalf("PCSA estimate %.0f far from %d", est, m)
	}
}

func TestPCSAEstimateMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	small := NewPCSA(16, 32)
	large := NewPCSA(16, 32)
	for i := 0; i < 100; i++ {
		small.AddRandom(rng)
	}
	for i := 0; i < 20000; i++ {
		large.AddRandom(rng)
	}
	if small.Estimate() >= large.Estimate() {
		t.Fatalf("PCSA not monotone: %.0f vs %.0f", small.Estimate(), large.Estimate())
	}
}

func TestQuickPCSAOrProperties(t *testing.T) {
	mk := func(seed int64, n int) *PCSA {
		rng := rand.New(rand.NewSource(seed))
		p := NewPCSA(8, 32)
		for i := 0; i < n; i++ {
			p.AddRandom(rng)
		}
		return p
	}
	f := func(s1, s2 int64, n1, n2 uint8) bool {
		a := mk(s1, int(n1)+1)
		b := mk(s2, int(n2)+1)
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		if !ab.Equal(ba) {
			return false
		}
		// Idempotence.
		aa := a.Clone()
		aa.Or(a)
		return aa.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPCSAOrMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPCSA(8, 32).Or(NewPCSA(4, 32))
}

// PCSA's design trade: one geometric draw per insertion instead of c.
// Verify the semantics agree with the per-element-c Sketch within noise.
func TestPCSAAgreesWithSketch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m = 1 << 13
	const trials = 5
	var pcsaSum, sketchSum float64
	for i := 0; i < trials; i++ {
		p := NewPCSA(32, 32)
		s := NewSketch(32, 32)
		for k := 0; k < m; k++ {
			p.AddRandom(rng)
			s.AddDistinct(rng)
		}
		pcsaSum += p.Estimate()
		sketchSum += s.Estimate()
	}
	ratio := pcsaSum / sketchSum
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("PCSA/Sketch mean estimate ratio %.2f; designs disagree", ratio)
	}
}
