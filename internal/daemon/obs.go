package daemon

import (
	"context"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"validity/internal/node"
	"validity/internal/obs"
	"validity/internal/obs/fleet"
)

// The daemon's observability surface: every validityd process carries a
// metrics registry and a query tracer (creating them is cheap and the hot
// paths pay one atomic add either way), and -metrics exposes them over
// HTTP — Prometheus text exposition on /metrics, typed JSON snapshots of
// the registry and trace rings on /debug/snapshot and /debug/trace (the
// endpoints the fleet collector scrapes), a JSON snapshot of live and
// retired queries on /debug/queries, and the standard pprof handlers
// under /debug/pprof/. With -fleet, /metrics/fleet additionally serves
// the fleet-rolled-up exposition of every listed process. The listener
// supports port 0; the bound address is logged so scripts (and the CI
// smoke test) can scrape without guessing.

// debugQueries is the /debug/queries payload: every query with live state
// on this process plus the compacted summaries of recently retired ones.
type debugQueries struct {
	Live    []node.QuerySnapshot `json:"live"`
	Retired []node.RetiredStats  `json:"retired"`
}

// startMetricsServer serves the observability endpoints on addr and
// returns a stop function. It fails fast on a bad address — a typo'd
// -metrics must not silently run unobservable. coll may be nil (no
// -fleet): /metrics/fleet then answers 404 with a hint.
func startMetricsServer(addr string, rt *node.Runtime, reg *obs.Registry,
	tracer *obs.Tracer, coll *fleet.Collector, logger *slog.Logger) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(reg))
	mux.Handle("/metrics/fleet", fleetMetricsHandler(coll))
	mux.Handle("/debug/snapshot", obs.SnapshotHandler(reg))
	mux.Handle("/debug/trace", obs.TraceHandler(tracer))
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(debugQueries{Live: rt.QuerySnapshots(), Retired: rt.RetiredStats()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	logger.Info("metrics listening", "addr", ln.Addr().String())
	return func() { srv.Close() }, nil
}

// fleetMetricsHandler serves the fleet-rolled-up exposition: one scrape
// round over every -fleet peer, counters summed, gauges per process,
// histograms bucket-merged so the rendered quantile buckets are real
// fleet-wide distributions. Down peers show up as fleet_peer_up 0.
func fleetMetricsHandler(coll *fleet.Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if coll == nil {
			http.Error(w, "no fleet configured; start validityd with -fleet", http.StatusNotFound)
			return
		}
		peers := coll.Registries(r.Context())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fleet.WriteExposition(w, peers)
	})
}

// slowThreshold is the issue→answer latency above which a query is logged
// as slow with its trace ring: the configured value, or 1.5× the query's
// wall-clock termination deadline 2·D̂δ — a converged query answers well
// inside the deadline, so anything past this is worth a dump.
func slowThreshold(cfg *Config, deadline time.Duration) time.Duration {
	if cfg.SlowQuery > 0 {
		return cfg.SlowQuery
	}
	return deadline + deadline/2
}

// logSlowQuery dumps one slow query. With a fleet collector, it pulls the
// query's trace ring from every listed process and prints one merged,
// causally-ordered timeline — events across the whole fleet sorted by
// query tick, then wire chain depth, then wall time, each line carrying
// the process it came from; peers that fail to answer are warned about
// individually and the rest still merge. Without a collector (or when no
// peer contributed an event) it falls back to the local ring — the dump
// degrades, it never goes silent.
func logSlowQuery(logger *slog.Logger, tracer *obs.Tracer, coll *fleet.Collector,
	id node.QueryID, lat, threshold time.Duration) {
	logger.Warn("slow query", "query", int64(id),
		"lat_ms", lat.Milliseconds(), "threshold_ms", threshold.Milliseconds())
	if coll != nil {
		peers := coll.QueryTrace(context.Background(), int64(id))
		for _, p := range peers {
			if p.Err != nil {
				logger.Warn("slow query trace scrape failed", "query", int64(id),
					"proc", p.Proc, "addr", p.Addr, "err", p.Err.Error())
			}
		}
		if merged := fleet.MergeTraces(peers); len(merged) > 0 {
			for _, ev := range merged {
				logger.Warn("slow query trace", "query", int64(id), "proc", ev.Proc,
					"event", ev.KindName, "host", ev.Host, "tick", ev.Tick, "chain", ev.Chain,
					"count", ev.Count, "detail", ev.Detail,
					"wall", ev.Wall.Format(time.RFC3339Nano))
			}
			return
		}
	}
	for _, ev := range tracer.Events(int64(id)) {
		logger.Warn("slow query trace", "query", int64(id),
			"event", ev.KindName, "host", ev.Host, "tick", ev.Tick, "chain", ev.Chain,
			"count", ev.Count, "detail", ev.Detail,
			"wall", ev.Wall.Format(time.RFC3339Nano))
	}
}
