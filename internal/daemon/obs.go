package daemon

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"validity/internal/node"
	"validity/internal/obs"
)

// The daemon's observability surface: every validityd process carries a
// metrics registry and a query tracer (creating them is cheap and the hot
// paths pay one atomic add either way), and -metrics exposes them over
// HTTP — Prometheus text exposition on /metrics, a JSON snapshot of live
// and retired queries on /debug/queries, and the standard pprof handlers
// under /debug/pprof/. The listener supports port 0; the bound address is
// logged so scripts (and the CI smoke test) can scrape without guessing.

// debugQueries is the /debug/queries payload: every query with live state
// on this process plus the compacted summaries of recently retired ones.
type debugQueries struct {
	Live    []node.QuerySnapshot `json:"live"`
	Retired []node.RetiredStats  `json:"retired"`
}

// startMetricsServer serves the observability endpoints on addr and
// returns a stop function. It fails fast on a bad address — a typo'd
// -metrics must not silently run unobservable.
func startMetricsServer(addr string, rt *node.Runtime, reg *obs.Registry, logger *slog.Logger) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(reg))
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(debugQueries{Live: rt.QuerySnapshots(), Retired: rt.RetiredStats()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	logger.Info("metrics listening", "addr", ln.Addr().String())
	return func() { srv.Close() }, nil
}

// slowThreshold is the issue→answer latency above which a query is logged
// as slow with its trace ring: the configured value, or 1.5× the query's
// wall-clock termination deadline 2·D̂δ — a converged query answers well
// inside the deadline, so anything past this is worth a dump.
func slowThreshold(cfg *Config, deadline time.Duration) time.Duration {
	if cfg.SlowQuery > 0 {
		return cfg.SlowQuery
	}
	return deadline + deadline/2
}

// logSlowQuery dumps one slow query: a warn line with the latency and
// threshold, then the query's trace ring — the per-event history of what
// the engine did (and dropped) on its behalf.
func logSlowQuery(logger *slog.Logger, tracer *obs.Tracer, id node.QueryID, lat, threshold time.Duration) {
	logger.Warn("slow query", "query", int64(id),
		"lat_ms", lat.Milliseconds(), "threshold_ms", threshold.Milliseconds())
	for _, ev := range tracer.Events(int64(id)) {
		logger.Warn("slow query trace", "query", int64(id),
			"event", ev.KindName, "host", ev.Host, "tick", ev.Tick,
			"count", ev.Count, "detail", ev.Detail,
			"wall", ev.Wall.Format(time.RFC3339Nano))
	}
}
