//go:build race

package daemon

import "time"

// testHop widens the wall-clock δ under the race detector's slowdown (see
// internal/node's race_on_test.go).
const testHop = 25 * time.Millisecond

// raceEnabled gates tests whose fleet size is sized for native execution
// (the 2K-host scale smoke): under the race detector they would take
// minutes, not seconds.
const raceEnabled = true
