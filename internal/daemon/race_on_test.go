//go:build race

package daemon

import "time"

// testHop widens the wall-clock δ under the race detector's slowdown (see
// internal/node's race_on_test.go).
const testHop = 25 * time.Millisecond
