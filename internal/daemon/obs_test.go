package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"validity/internal/obs"
	"validity/internal/obs/fleet"
)

// syncBuffer is an io.Writer safe to read while Run writes to it from
// another goroutine (the metrics-address log line arrives mid-run).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var metricsAddrRe = regexp.MustCompile(`msg="metrics listening" addr=([0-9.]+:[0-9]+)`)

// waitMetricsAddr polls the daemon's log until the metrics listener
// announces its bound address (the test passes port 0).
func waitMetricsAddr(t *testing.T, log *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := metricsAddrRe.FindStringSubmatch(log.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("metrics listener never announced its address; log:\n%s", log.String())
	return ""
}

// TestMetricsEndpointTCPFleet is the observability acceptance run: a
// three-process fleet answers queries over TCP while this test scrapes the
// issuer's -metrics endpoint mid-run, then reconciles the scraped §6.3
// counters against the per-query result lines. The registry totals keep
// counting trailing refloods after each result line snapshots its stats,
// so the reconciliation is registry ≥ sum-of-lines with a sane upper
// factor, not equality.
func TestMetricsEndpointTCPFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and sleeps out wall-clock query deadlines")
	}
	ports := freeAddrs(t, 3)
	peers := fmt.Sprintf("0-19=%s,20-39=%s,40-59=%s", ports[0], ports[1], ports[2])
	common := []string{
		"-transport", "tcp",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-peers", peers,
		// The workload shape the churned-stream race test established:
		// alternating count/min over two querying hosts with a pinned D̂
		// converges reliably across three race-instrumented processes.
		"-agg", "count,min",
		"-hq", "0,7",
		"-dhat", "12",
		"-hop", testHop.String(),
	}
	for _, serve := range []string{"20-39", "40-59"} {
		args := append(append([]string{}, common...), "-serve", serve, "-run-for", "60s")
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "VALIDITYD_CHILD_ARGS="+joinArgs(args))
		var childOut bytes.Buffer
		cmd.Stdout = &childOut
		cmd.Stderr = &childOut
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
			if t.Failed() {
				t.Logf("worker %s output:\n%s", serve, childOut.String())
			}
		})
	}
	waitListening(t, ports[1])
	waitListening(t, ports[2])

	var out bytes.Buffer
	log := &syncBuffer{}
	const queries = 8
	args := append(append([]string{}, common...),
		"-serve", "0-19", "-query",
		"-queries", strconv.Itoa(queries), "-concurrency", "2",
		"-metrics", "127.0.0.1:0")
	cfg, err := ParseArgs("validityd", args)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	cfg.LogOut = log
	reg := obs.NewRegistry()
	cfg.Obs = reg

	runErr := make(chan error, 1)
	go func() { runErr <- Run(cfg) }()
	addr := waitMetricsAddr(t, log)

	// Mid-run scrapes: the endpoint must serve parseable exposition and a
	// decodable query snapshot while queries are in flight. The server
	// closes when Run returns, so a refused connection after the stream
	// ends is the normal exit of this loop, not a failure.
	scrape := func(path string) (string, bool) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return "", false // server already closed: Run must have finished
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %s: status %d, err %v", path, resp.StatusCode, err)
		}
		return string(body), true
	}
	scrapes := 0
	var lastBody string
	for finished := false; !finished; {
		select {
		case err := <-runErr:
			if err != nil {
				t.Fatalf("query process failed: %v\noutput:\n%s\nlog:\n%s", err, out.String(), log.String())
			}
			finished = true
		default:
		}
		body, ok := scrape("/metrics")
		if ok {
			lastBody = body
			if !strings.Contains(body, "# TYPE node_messages_sent_total counter") {
				t.Fatalf("exposition missing node counters:\n%s", body)
			}
			if dbody, ok := scrape("/debug/queries"); ok {
				var dq debugQueries
				if err := json.Unmarshal([]byte(dbody), &dq); err != nil {
					t.Fatalf("mid-run /debug/queries decode: %v\n%s", err, dbody)
				}
				scrapes++
			}
		}
		if !finished {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if scrapes == 0 {
		t.Fatal("query stream finished before a single mid-run scrape")
	}
	if !strings.Contains(lastBody, "transport_frames_out_total{peer=") {
		t.Fatalf("exposition missing per-peer transport counters:\n%s", lastBody)
	}

	// Reconcile the registry against the §6.3 result lines: every send
	// counted on a result line was counted by the registry first, and the
	// registry's surplus is bounded trailing traffic, not runaway
	// double-counting.
	lines := resultRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != queries {
		t.Fatalf("got %d result lines, want %d:\n%s", len(lines), queries, out.String())
	}
	var lineMsgs, lineBytes int64
	for _, m := range lines {
		msgs, _ := strconv.ParseInt(m[5], 10, 64)
		bs, _ := strconv.ParseInt(m[6], 10, 64)
		lineMsgs += msgs
		lineBytes += bs
	}
	regMsgs := reg.Counter("node_messages_sent_total", "").Value()
	regBytes := reg.Counter("node_bytes_sent_total", "").Value()
	if regMsgs < lineMsgs || regMsgs > 3*lineMsgs {
		t.Fatalf("node_messages_sent_total = %d, result lines sum to %d (want within [sum, 3×sum])", regMsgs, lineMsgs)
	}
	if regBytes < lineBytes || regBytes > 3*lineBytes {
		t.Fatalf("node_bytes_sent_total = %d, result lines sum to %d (want within [sum, 3×sum])", regBytes, lineBytes)
	}
	lat := reg.Histogram("daemon_query_latency_ms", "", obs.LatencyBucketsMs)
	if lat.Count() != queries {
		t.Fatalf("daemon_query_latency_ms count = %d, want one observation per query (%d)", lat.Count(), queries)
	}
	framesIn := reg.Counter("transport_frames_in_total", "").Value()
	if framesIn == 0 {
		t.Fatal("transport_frames_in_total = 0; worker replies never counted")
	}
	var framesOut int64
	for _, port := range ports[1:] {
		framesOut += reg.Counter("transport_frames_out_total", "", "peer="+port).Value()
	}
	if framesOut == 0 {
		t.Fatal("per-peer transport_frames_out_total all zero")
	}
	if framesOut > regMsgs {
		t.Fatalf("transport wrote %d frames but the engine only sent %d messages", framesOut, regMsgs)
	}
}

// TestFleetObservabilityTCP is the fleet-plane acceptance run: a
// three-process TCP fleet with per-process -metrics endpoints, churn on
// both workers, and a threshold that makes every query slow. It checks
// the three cross-process claims end to end: (1) the slow-query dump is
// one merged timeline carrying events from all three processes (with a
// listed-but-down peer warned about, not fatal); (2) the issuer's
// /metrics/fleet endpoint serves the rolled-up exposition mid-run; (3)
// after the fleet quiesces, the merged counters equal the sum of the
// three per-process registries and the merged latency histogram holds
// exactly one observation per issued query.
func TestFleetObservabilityTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and sleeps out wall-clock query deadlines")
	}
	addrs := freeAddrs(t, 6)
	ports, maddrs := addrs[:3], addrs[3:]
	peers := fmt.Sprintf("0-19=%s,20-39=%s,40-59=%s", ports[0], ports[1], ports[2])
	// The fourth entry is deliberately dead: the collector must degrade
	// that peer's contribution, never the scrape.
	fleetSpec := fmt.Sprintf("issuer=%s,w1=%s,w2=%s,dead=127.0.0.1:1",
		maddrs[0], maddrs[1], maddrs[2])
	common := []string{
		"-transport", "tcp",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-peers", peers,
		"-agg", "count",
		"-hq", "0",
		"-dhat", "12",
		"-hop", testHop.String(),
		// One churn event on each worker's host range, so both workers
		// record churn-leave events for every query's timeline.
		"-kill", "25@2,45@3",
	}
	for i, serve := range []string{"20-39", "40-59"} {
		args := append(append([]string{}, common...),
			"-serve", serve, "-run-for", "60s", "-metrics", maddrs[i+1])
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "VALIDITYD_CHILD_ARGS="+joinArgs(args))
		var childOut bytes.Buffer
		cmd.Stdout = &childOut
		cmd.Stderr = &childOut
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
			if t.Failed() {
				t.Logf("worker %s output:\n%s", serve, childOut.String())
			}
		})
	}
	waitListening(t, ports[1])
	waitListening(t, ports[2])
	waitListening(t, maddrs[1])
	waitListening(t, maddrs[2])

	var out bytes.Buffer
	log := &syncBuffer{}
	const queries = 4
	args := append(append([]string{}, common...),
		"-serve", "0-19", "-query",
		"-queries", strconv.Itoa(queries), "-concurrency", "2",
		"-metrics", maddrs[0],
		"-fleet", fleetSpec,
		"-slow-query", "1ns") // every query dumps its merged trace
	cfg, err := ParseArgs("validityd", args)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	cfg.LogOut = log
	reg := obs.NewRegistry()
	cfg.Obs = reg

	runErr := make(chan error, 1)
	go func() { runErr <- Run(cfg) }()
	waitListening(t, maddrs[0])

	// Mid-run: the daemon's own /metrics/fleet must serve the rolled-up
	// exposition while queries are in flight. The server closes when Run
	// returns, so a refused connection just ends the polling.
	fleetScrapes := 0
	for finished := false; !finished; {
		select {
		case err := <-runErr:
			if err != nil {
				t.Fatalf("query process failed: %v\noutput:\n%s\nlog:\n%s", err, out.String(), log.String())
			}
			finished = true
		default:
		}
		if resp, err := http.Get("http://" + maddrs[0] + "/metrics/fleet"); err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				s := string(body)
				if !strings.Contains(s, "fleet_peer_up{") || !strings.Contains(s, "fleet_peers 4") {
					t.Fatalf("mid-run /metrics/fleet missing fleet meta-series:\n%s", s)
				}
				if !strings.Contains(s, `fleet_peer_up{proc="dead"} 0`) {
					t.Fatalf("mid-run /metrics/fleet does not report the dead peer down:\n%s", s)
				}
				fleetScrapes++
			}
		}
		if !finished {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if fleetScrapes == 0 {
		t.Fatal("query stream finished before a single /metrics/fleet scrape")
	}

	// (1) Merged slow-query timeline: events from all three processes in
	// one dump, the dead peer warned about individually.
	got := log.String()
	for _, want := range []string{
		`msg="slow query trace" query=1 proc=issuer`,
		`msg="slow query trace" query=1 proc=w1`,
		`msg="slow query trace" query=1 proc=w2`,
		"event=churn-leave",
		`msg="slow query trace scrape failed"`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("merged slow-query dump missing %q in log:\n%s", want, got)
		}
	}

	// (3) Reconcile the fleet rollup. Run closed the issuer's metrics
	// server, so re-serve its (injected) registry on the same address and
	// scrape all three processes with the collector until two consecutive
	// rounds agree — the workers' trailing refloods have quiesced — then
	// the merged counter must equal the sum of the per-process registries.
	ln, err := net.Listen("tcp", maddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/snapshot", obs.SnapshotHandler(reg))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	srcs, err := fleet.ParseSources(fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	coll := &fleet.Collector{Sources: srcs}
	var peersSnap []fleet.PeerRegistry
	var sum int64
	prev := int64(-1)
	deadline := time.Now().Add(20 * time.Second)
	for {
		peersSnap = coll.Registries(context.Background())
		sum = 0
		live := 0
		for _, p := range peersSnap {
			if p.Err == nil {
				live++
				sum += fleet.CounterTotal(p.Snap, "node_messages_sent_total")
			}
		}
		if live == 3 && sum > 0 && sum == prev {
			break
		}
		prev = sum
		if time.Now().After(deadline) {
			t.Fatalf("fleet never quiesced: live=%d sent=%d", live, sum)
		}
		time.Sleep(100 * time.Millisecond)
	}
	var b strings.Builder
	if _, err := fleet.WriteExposition(&b, peersSnap); err != nil {
		t.Fatal(err)
	}
	merged := b.String()
	if want := fmt.Sprintf("node_messages_sent_total %d\n", sum); !strings.Contains(merged, want) {
		t.Fatalf("merged exposition does not carry the per-process sum %d:\n%s", sum, merged)
	}
	if !strings.Contains(merged, `fleet_peer_up{proc="dead"} 0`) ||
		!strings.Contains(merged, `fleet_peer_up{proc="w1"} 1`) {
		t.Fatalf("merged exposition liveness wrong:\n%s", merged)
	}
	h, ok := fleet.MergeHistograms(peersSnap, "daemon_query_latency_ms")
	if !ok || h.Count != queries {
		t.Fatalf("merged latency histogram count = %d (ok=%v), want one observation per query (%d)",
			h.Count, ok, queries)
	}
}

// TestSlowQueryLog pins the slow-query dump: with a threshold every query
// exceeds, the daemon logs the query at warn level followed by its trace
// ring — which must carry the lifecycle events the tracer recorded.
func TestSlowQueryLog(t *testing.T) {
	var out bytes.Buffer
	log := &syncBuffer{}
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", "40", "-seed", "7",
		"-query", "-hq", "0", "-agg", "count",
		"-hop", testHop.String(),
		"-slow-query", "1ns",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	cfg.LogOut = log
	if err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	got := log.String()
	if !strings.Contains(got, `msg="slow query"`) {
		t.Fatalf("no slow-query warn line in log:\n%s", got)
	}
	if !strings.Contains(got, `msg="slow query trace"`) || !strings.Contains(got, "event=issued") {
		t.Fatalf("slow-query dump missing the trace ring (want an event=issued entry):\n%s", got)
	}
	if !strings.Contains(got, "event=answered") {
		t.Fatalf("slow-query dump missing the answered event:\n%s", got)
	}
}

// TestSlowQueryQuietByDefault pins the default threshold: a healthy
// in-process query converges well inside 1.5× its deadline, so the log
// stays free of slow-query warnings.
func TestSlowQueryQuietByDefault(t *testing.T) {
	var out bytes.Buffer
	log := &syncBuffer{}
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", "40", "-seed", "7",
		"-query", "-hq", "0", "-agg", "count",
		"-hop", testHop.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	cfg.LogOut = log
	if err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(log.String(), "slow query") {
		t.Fatalf("healthy query logged as slow:\n%s", log.String())
	}
}

// TestMetricsBadAddress pins fail-fast: a daemon asked to expose metrics
// on an unusable address must refuse to run unobservable.
func TestMetricsBadAddress(t *testing.T) {
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", "10", "-seed", "1",
		"-query", "-hq", "0",
		"-hop", testHop.String(),
		"-metrics", "256.256.256.256:99999",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = io.Discard
	cfg.LogOut = io.Discard
	if err := Run(cfg); err == nil {
		t.Fatal("unusable -metrics address accepted")
	}
}

// TestLogLevelFiltering pins -log-level: error suppresses the info-level
// metrics announcement, and an unknown level is rejected.
func TestLogLevelFiltering(t *testing.T) {
	var out bytes.Buffer
	log := &syncBuffer{}
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", "10", "-seed", "1",
		"-query", "-hq", "0",
		"-hop", testHop.String(),
		"-metrics", "127.0.0.1:0",
		"-log-level", "error",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	cfg.LogOut = log
	if err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(log.String(), "metrics listening") {
		t.Fatalf("-log-level error leaked an info line:\n%s", log.String())
	}
	cfg2, err := ParseArgs("validityd", []string{"-transport", "chan", "-log-level", "loud"})
	if err != nil {
		t.Fatal(err)
	}
	cfg2.Out = io.Discard
	cfg2.LogOut = io.Discard
	if err := Run(cfg2); err == nil || !strings.Contains(err.Error(), "unknown log level") {
		t.Fatalf("unknown -log-level accepted (err=%v)", err)
	}
}
