package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"validity/internal/obs"
)

// TestConflictingFlagsRejected pins the flag-validation contract: flag
// combinations that previously were silently ignored now fail fast.
func TestConflictingFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"peers under chan", []string{"-transport", "chan", "-peers", "0-9=x:1"}, "-peers"},
		{"serve under chan", []string{"-transport", "chan", "-serve", "0-9"}, "-serve"},
		{"run-for under query", []string{"-query", "-run-for", "5s"}, "-run-for"},
		{"queries on a worker", []string{"-queries", "4"}, "-queries"},
		{"concurrency on a worker", []string{"-concurrency", "2"}, "-concurrency"},
		{"zero queries", []string{"-query", "-queries", "0"}, "-queries"},
		{"tcp without peers", []string{"-transport", "tcp"}, "-peers"},
		{"vectors beyond wire format", []string{"-query", "-c", "300"}, "-c"},
		{"malformed churn spec", []string{"-query", "-churn", "bogus"}, "churn"},
		{"late-joiner querying host", []string{"-query", "-hq", "0", "-kill", "+0@5"}, "late joiner"},
		{"churn without survivors", []string{"-query", "-hosts", "60", "-churn", "rate=60"}, "churn"},
		{"sessions churn without mean", []string{"-query", "-churn", "model=sessions"}, "churn"},
		{"flush-window under chan", []string{"-flush-window", "1ms"}, "-flush-window"},
		{"flush-window eats the hop bound", []string{"-transport", "tcp",
			"-peers", "0-99=127.0.0.1:1", "-serve", "0-99", "-flush-window", "10ms"}, "-flush-window"},
		{"fleet without metrics or query", []string{"-fleet", "127.0.0.1:9101"}, "-fleet"},
		{"malformed fleet entry", []string{"-query", "-fleet", "noport"}, "-fleet"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := ParseArgs("validityd", tc.args)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Out = &bytes.Buffer{}
			err = Run(cfg)
			if err == nil {
				t.Fatalf("args %v accepted; want an error mentioning %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestInProcessQueryStream answers a mixed COUNT/MIN stream fully in
// process: 6 queries, 2 in flight, alternating aggregate and querying
// host, each judged against its own oracle bounds.
func TestInProcessQueryStream(t *testing.T) {
	var out bytes.Buffer
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-query", "-hq", "0,7", "-agg", "count,min",
		"-queries", "6", "-concurrency", "2",
		"-hop", testHop.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatalf("query stream failed: %v\n%s", err, out.String())
	}
	lines := resultRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != 6 {
		t.Fatalf("got %d result lines, want 6:\n%s", len(lines), out.String())
	}
	for _, m := range lines {
		if m[4] != "true" {
			t.Fatalf("a query was judged invalid:\n%s", out.String())
		}
	}
	if !strings.Contains(out.String(), "queries/sec") {
		t.Fatalf("no throughput summary:\n%s", out.String())
	}
}

var streamLineRe = regexp.MustCompile(
	`validityd: q=(\d+) agg=(\w+) hq=(\d+) result=[0-9.]+ lower=[0-9.]+ upper=[0-9.]+ slack=[0-9.]+ valid=(true|false) msgs=([0-9]+) bytes=([0-9]+)`)

// TestConcurrentTCPQueryStream is the acceptance demo for the engine: a
// single three-process fleet on loopback answers 8 overlapping queries
// (concurrency 2, COUNT and MIN alternating between two querying hosts)
// without any restart. Every result must be valid against its own oracle
// bounds, and same-spec queries must cost about the same number of
// messages — multiplexing must not leak one query's traffic into
// another's accounting.
func TestConcurrentTCPQueryStream(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and sleeps out wall-clock query deadlines")
	}
	ports := freeAddrs(t, 3)
	peers := fmt.Sprintf("0-19=%s,20-39=%s,40-59=%s", ports[0], ports[1], ports[2])
	common := []string{
		"-transport", "tcp",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-peers", peers,
		"-agg", "count,min",
		"-hq", "0,7",
		// D̂ is the operator's overestimate of the stable diameter (§5.1);
		// the default diameter+2 leaves no headroom for concurrent queries
		// sharing host goroutines plus first-contact TCP dials, so the
		// fleet runs with the slack a deployment would configure.
		"-dhat", "12",
		"-hop", testHop.String(),
		// A positive write-coalescing window, well under hop/2: the e2e
		// must produce byte-identical result lines with batching on.
		"-flush-window", "1ms",
	}

	// Workers serve indefinitely (no -run-for): the engine, not a
	// per-query lifetime, owns them. The test kills them at cleanup.
	for _, serve := range []string{"20-39", "40-59"} {
		args := append(append([]string{}, common...), "-serve", serve)
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "VALIDITYD_CHILD_ARGS="+joinArgs(args))
		var childOut bytes.Buffer
		cmd.Stdout = &childOut
		cmd.Stderr = &childOut
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
			if t.Failed() {
				t.Logf("worker %s output:\n%s", serve, childOut.String())
			}
		})
	}
	waitListening(t, ports[1])
	waitListening(t, ports[2])

	var out bytes.Buffer
	args := append(append([]string{}, common...),
		"-serve", "0-19", "-query", "-queries", "8", "-concurrency", "2")
	cfg, err := ParseArgs("validityd", args)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatalf("query stream failed: %v\n%s", err, out.String())
	}

	lines := streamLineRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != 8 {
		t.Fatalf("got %d result lines, want 8:\n%s", len(lines), out.String())
	}
	msgsByQuery := make(map[int]int64)
	aggByQuery := make(map[int]string)
	for _, m := range lines {
		if m[4] != "true" {
			t.Fatalf("query %s judged invalid:\n%s", m[1], out.String())
		}
		id, _ := strconv.Atoi(m[1])
		msgs, _ := strconv.ParseInt(m[5], 10, 64)
		if msgs == 0 {
			t.Fatalf("query %s reports zero messages:\n%s", m[1], out.String())
		}
		bytesOnWire, _ := strconv.ParseInt(m[6], 10, 64)
		if bytesOnWire == 0 {
			t.Fatalf("query %s reports zero bytes on the wire:\n%s", m[1], out.String())
		}
		msgsByQuery[id] = msgs
		aggByQuery[id] = m[2]
	}
	msgsByAgg := make(map[string][]int64)
	for id := 1; id <= 8; id++ { // issue order, so index 0 is the cold start
		msgsByAgg[aggByQuery[id]] = append(msgsByAgg[aggByQuery[id]], msgsByQuery[id])
	}
	// Queries of identical spec differ only in their per-query coin
	// tosses, so no warm count may sit far ABOVE the median — an inflated
	// count means the demux leaked another query's traffic into this
	// one's accounting. The check is one-sided: stats are snapshotted at
	// answer-in-hand (adaptive reads), so a query read mid-trailing-
	// reflood legitimately shows a truncated count, while a leak only
	// ever adds. The first query of each kind is excluded: it pays the
	// fleet's one-time cold start (lazy instantiation stretches its
	// rounds, §5.1 refloods on every late-arriving partial), which is
	// exactly the cost the engine amortizes away for every query after
	// it.
	for kind, counts := range msgsByAgg {
		if len(counts) != 4 {
			t.Fatalf("expected 4 %s queries, got %d", kind, len(counts))
		}
		warm := append([]int64(nil), counts[1:]...)
		sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })
		median := warm[len(warm)/2]
		if hi := warm[len(warm)-1]; float64(hi) > 2.5*float64(median) {
			t.Fatalf("%s warm per-query message counts diverge above the median: %v", kind, counts)
		}
	}
}

// TestBenchEngine is the `make bench` harness: gated on BENCH_ENGINE_OUT,
// it answers a fixed query stream in process — once over a static network
// and once under per-query churn, the paper's actual regime — and writes
// both queries/sec figures to the named JSON file so the perf trajectory
// tracks dynamism, not just the static best case.
func TestBenchEngine(t *testing.T) {
	outPath := os.Getenv("BENCH_ENGINE_OUT")
	if outPath == "" {
		t.Skip("set BENCH_ENGINE_OUT=<file> to run the engine benchmark")
	}
	const (
		hosts       = 60
		queries     = 16
		concurrency = 4
		churnRate   = 6
	)
	churnSpec := "rate=" + strconv.Itoa(churnRate) + ",window=12"
	// Each regime runs on its own registry so the daemon_query_latency_ms
	// histogram holds exactly that regime's observations — throughput says
	// how fast the stream drained, the tail percentiles say what a single
	// query paid for it.
	runStream := func(extra ...string) (float64, *obs.Histogram, float64) {
		t.Helper()
		var out bytes.Buffer
		args := append([]string{
			"-transport", "chan",
			"-topology", "random", "-hosts", strconv.Itoa(hosts), "-seed", "23",
			"-query", "-hq", "0,7", "-agg", "count,min",
			"-queries", strconv.Itoa(queries), "-concurrency", strconv.Itoa(concurrency),
			"-hop", testHop.String(),
		}, extra...)
		cfg, err := ParseArgs("validityd", args)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Out = &out
		cfg.Obs = obs.NewRegistry()
		start := time.Now()
		if err := Run(cfg); err != nil {
			t.Fatalf("bench stream %v failed: %v\n%s", extra, err, out.String())
		}
		lat := cfg.Obs.Histogram("daemon_query_latency_ms", "", obs.LatencyBucketsMs)
		if lat.Count() != queries {
			t.Fatalf("bench stream %v observed %d latencies, want %d", extra, lat.Count(), queries)
		}
		// Wire bytes per query, off the engine's §6.3 counter — the exact
		// transport-frame cost of every send, so the framing overhead
		// trend is tracked alongside throughput and tails.
		bytesPerQuery := float64(cfg.Obs.Counter("node_bytes_sent_total", "").Value()) / float64(queries)
		return float64(queries) / time.Since(start).Seconds(), lat, bytesPerQuery
	}
	staticQPS, staticLat, staticBPQ := runStream()
	churnQPS, churnLat, _ := runStream("-churn", churnSpec)

	// Join churn: session lifetimes with rebirth, so queries run over a
	// population that shrinks AND grows — the arrivals regime the event
	// timeline opened. Mean lifetime comfortably above the 24-tick
	// deadline keeps most hosts up at any instant while still cycling
	// sessions through every query.
	joinSpec := "model=sessions,mean=60,join=20"
	joinQPS, joinLat, _ := runStream("-churn", joinSpec)

	// Continuous throughput: one windowed query streamed in process, static
	// and churned, measured in windows/sec. Window length stays at the §4.2
	// minimum 2·D̂ so the figure tracks the engine, not idle window tail.
	const benchWindows = 12
	runContinuousStream := func(extra ...string) float64 {
		t.Helper()
		var out bytes.Buffer
		args := append([]string{
			"-transport", "chan",
			"-topology", "random", "-hosts", strconv.Itoa(hosts), "-seed", "23",
			"-query", "-continuous", "-windows", strconv.Itoa(benchWindows),
			"-hq", "0", "-agg", "count",
			"-hop", testHop.String(),
		}, extra...)
		cfg, err := ParseArgs("validityd", args)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Out = &out
		start := time.Now()
		if err := Run(cfg); err != nil {
			t.Fatalf("bench continuous %v failed: %v\n%s", extra, err, out.String())
		}
		return float64(benchWindows) / time.Since(start).Seconds()
	}
	staticWPS := runContinuousStream()
	churnWPS := runContinuousStream("-churn", "rate="+strconv.Itoa(churnRate))
	joinWPS := runContinuousStream("-churn", joinSpec)

	// Scale regime: the host-sharded scheduler's headline — a 2,048-host
	// fleet in one process on the chan transport. Alongside throughput it
	// records the two numbers the sharding is supposed to bound: peak live
	// goroutines (O(shards), not O(hosts)) and peak heap in use (no
	// per-host inbox buffers). Params mirror TestScaleSmoke2K: a 2K-host
	// flood needs δ wide enough for ~10K messages a round and D̂ headroom
	// over the derived diameter+2.
	const (
		scaleHosts   = 2048
		scaleQueries = 4
	)
	scalePeaks := sampleRuntimePeaks(5 * time.Millisecond)
	var scaleOut bytes.Buffer
	scaleCfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", strconv.Itoa(scaleHosts), "-seed", "23",
		"-query", "-hq", "0", "-agg", "count",
		"-queries", strconv.Itoa(scaleQueries), "-concurrency", "1",
		"-hop", "10ms",
		"-dhat", "16",
	})
	if err != nil {
		t.Fatal(err)
	}
	scaleCfg.Out = &scaleOut
	scaleStart := time.Now()
	if err := Run(scaleCfg); err != nil {
		t.Fatalf("bench scale stream failed: %v\n%s", err, scaleOut.String())
	}
	scaleQPS := float64(scaleQueries) / time.Since(scaleStart).Seconds()
	scalePeakG, scalePeakHeap := scalePeaks.stop()

	// Sharded-TCP regime: the 60-host stream of the static run, but split
	// across three OS processes on loopback with an explicit -shards 4, so
	// the trajectory also tracks the engine behind real sockets.
	tcpQPS, tcpLat := func() (float64, *obs.Histogram) {
		ports := freeAddrs(t, 3)
		peers := fmt.Sprintf("0-19=%s,20-39=%s,40-59=%s", ports[0], ports[1], ports[2])
		common := []string{
			"-transport", "tcp",
			"-topology", "random", "-hosts", strconv.Itoa(hosts), "-seed", "23",
			"-peers", peers,
			"-agg", "count,min",
			"-hq", "0,7",
			"-dhat", "12",
			"-hop", testHop.String(),
			"-shards", "4",
		}
		for _, serve := range []string{"20-39", "40-59"} {
			args := append(append([]string{}, common...), "-serve", serve)
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), "VALIDITYD_CHILD_ARGS="+joinArgs(args))
			var childOut bytes.Buffer
			cmd.Stdout = &childOut
			cmd.Stderr = &childOut
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() {
				cmd.Process.Kill()
				cmd.Wait()
			})
		}
		waitListening(t, ports[1])
		waitListening(t, ports[2])
		var out bytes.Buffer
		args := append(append([]string{}, common...),
			"-serve", "0-19", "-query",
			"-queries", strconv.Itoa(queries), "-concurrency", strconv.Itoa(concurrency))
		cfg, err := ParseArgs("validityd", args)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Out = &out
		cfg.Obs = obs.NewRegistry()
		start := time.Now()
		if err := Run(cfg); err != nil {
			t.Fatalf("bench tcp-sharded stream failed: %v\n%s", err, out.String())
		}
		lat := cfg.Obs.Histogram("daemon_query_latency_ms", "", obs.LatencyBucketsMs)
		return float64(queries) / time.Since(start).Seconds(), lat
	}()

	// Obs-overhead regime: the per-frame instrumentation workload the
	// engine hot path pays — two counter adds and one histogram
	// observation — timed on a real registry and on the nil-disabled
	// form. The pair bounds what the observability plane costs a frame
	// and pins that the disabled form stays a branch, not a lock.
	obsFrameNs := func(reg *obs.Registry) float64 {
		c1 := reg.Counter("bench_frames_total", "")
		c2 := reg.Counter("bench_bytes_total", "")
		h := reg.Histogram("bench_lat_ms", "", obs.LatencyBucketsMs)
		const iters = 2_000_000
		start := time.Now()
		for i := 0; i < iters; i++ {
			c1.Inc()
			c2.Add(int64(i & 0xff))
			h.Observe(float64(i % 1000))
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	obsInstrNs := obsFrameNs(obs.NewRegistry())
	obsNilNs := obsFrameNs(nil)

	report := map[string]any{
		"bench":                       "engine_query_stream",
		"fleet_hosts":                 hosts,
		"queries":                     queries,
		"concurrency":                 concurrency,
		"hop":                         testHop.String(),
		"queries_per_sec":             staticQPS,
		"bytes_per_query":             staticBPQ,
		"churn_spec":                  churnSpec,
		"queries_per_sec_churn":       churnQPS,
		"join_churn_spec":             joinSpec,
		"queries_per_sec_join":        joinQPS,
		"latency_ms_p50":              staticLat.Quantile(0.50),
		"latency_ms_p95":              staticLat.Quantile(0.95),
		"latency_ms_p99":              staticLat.Quantile(0.99),
		"latency_ms_p95_churn":        churnLat.Quantile(0.95),
		"latency_ms_p99_churn":        churnLat.Quantile(0.99),
		"latency_ms_p95_join":         joinLat.Quantile(0.95),
		"latency_ms_p99_join":         joinLat.Quantile(0.99),
		"windows":                     benchWindows,
		"windows_per_sec":             staticWPS,
		"windows_per_sec_churn":       churnWPS,
		"windows_per_sec_join":        joinWPS,
		"queries_per_sec_tcp_sharded": tcpQPS,
		"latency_ms_p50_tcp_sharded":  tcpLat.Quantile(0.50),
		"latency_ms_p95_tcp_sharded":  tcpLat.Quantile(0.95),
		"latency_ms_p99_tcp_sharded":  tcpLat.Quantile(0.99),
		"scale_hosts":                 scaleHosts,
		"scale_queries_per_sec":       scaleQPS,
		"scale_peak_goroutines":       scalePeakG,
		"scale_heap_inuse_bytes":      scalePeakHeap,
		"obs_frame_ns_instrumented":   obsInstrNs,
		"obs_frame_ns_nil":            obsNilNs,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%.2f static / %.2f churned / %.2f join-churned / %.2f tcp-sharded queries/sec (static p50/p95/p99 %.0f/%.0f/%.0f ms), %.2f static / %.2f churned / %.2f join-churned windows/sec over %d hosts; scale: %.2f queries/sec over %d hosts, peak %d goroutines, peak heap %.1f MB; obs %.1f ns/frame instrumented, %.1f ns/frame nil -> %s",
		staticQPS, churnQPS, joinQPS, tcpQPS,
		staticLat.Quantile(0.50), staticLat.Quantile(0.95), staticLat.Quantile(0.99),
		staticWPS, churnWPS, joinWPS, hosts,
		scaleQPS, scaleHosts, scalePeakG, float64(scalePeakHeap)/(1<<20),
		obsInstrNs, obsNilNs, outPath)
}
