package daemon

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"
)

// TestMultiProcessTCPQuiesceEarlyRead is the tentpole's acceptance test:
// three OS processes shard 60 hosts over TCP, churn removes six hosts
// from each query's timeline, and the quiescence control plane must
// deliver at least one answer strictly below the old full-deadline floor
// (deadline+2 hops — what every sharded read paid before the control
// plane existed), with every answer still oracle-valid. D̂ is set high
// (20, against a real diameter around 5) exactly because that is the
// regime the fast path targets: the worse the overestimate, the bigger
// the gap between convergence and the 2·D̂δ worst case.
func TestMultiProcessTCPQuiesceEarlyRead(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and runs wall-clock queries")
	}
	ports := freeAddrs(t, 3)
	peers := fmt.Sprintf("0-19=%s,20-39=%s,40-59=%s", ports[0], ports[1], ports[2])
	const dhat = 20
	common := []string{
		"-transport", "tcp",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-peers", peers,
		"-agg", "count",
		"-dhat", strconv.Itoa(dhat),
		"-churn", "rate=6,window=12",
		"-hop", testHop.String(),
	}

	for _, serve := range []string{"20-39", "40-59"} {
		args := append(append([]string{}, common...), "-serve", serve, "-run-for", "120s")
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "VALIDITYD_CHILD_ARGS="+joinArgs(args))
		var childOut bytes.Buffer
		cmd.Stdout = &childOut
		cmd.Stderr = &childOut
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
			if t.Failed() {
				t.Logf("worker %s output:\n%s", serve, childOut.String())
			}
		})
	}
	waitListening(t, ports[1])
	waitListening(t, ports[2])

	var out bytes.Buffer
	args := append(append([]string{}, common...),
		"-serve", "0-19", "-query", "-hq", "0", "-queries", "3")
	cfg, err := ParseArgs("validityd", args)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	// latRe (churn_test.go): group 4 = valid, group 5 = lat ms.
	lines := latRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != 3 {
		t.Fatalf("want 3 result lines, got %d:\n%s", len(lines), out.String())
	}
	// The floor every sharded read paid before cross-process quiescence:
	// ResultFloor's (deadline+2)·δ with deadline = 2·D̂.
	oldFloor := time.Duration(2*dhat+2) * testHop
	minLat := time.Duration(-1)
	for _, m := range lines {
		if m[4] != "true" {
			t.Fatalf("early-read answer judged oracle-invalid:\n%s", out.String())
		}
		ms, _ := strconv.Atoi(m[5])
		if lat := time.Duration(ms) * time.Millisecond; minLat < 0 || lat < minLat {
			minLat = lat
		}
	}
	if minLat >= oldFloor {
		t.Fatalf("no early read: fastest answer took %v, old deadline floor is %v:\n%s",
			minLat, oldFloor, out.String())
	}
}
