// Package daemon is the engine behind cmd/validityd: it turns a topology,
// a shard assignment, and a transport choice into a long-running fleet of
// hosts answering WILDFIRE aggregate queries with Single-Site Validity
// reporting against the oracle.
//
// Every participating process is given the same topology (a generator
// kind + seed, or an edge-list file) and the same host→address map, and
// serves a disjoint subset of hosts. Worker processes serve indefinitely;
// the process given -query issues a stream of queries (-queries N, up to
// -concurrency K in flight) over the same fleet without any restarts.
// Query i's spec — aggregate kind and querying host, cycled from the
// comma-separated -agg and -hq lists — is derived from the query id and
// the shared flags alone, so every process lazily instantiates an
// identical protocol instance on first contact with a query's frames.
// Dynamism is per query: -kill names explicit membership events —
// host@tick departures and +host@tick joins (late joiners absent until
// they arrive, rebirths of hosts that left earlier) — and -churn draws
// them from a generated model (uniform removal, exponential sessions
// with optional join=D rebirth, a correlated burst, or a recorded
// trace=FILE with an optional leave/join event column), all in ticks of
// each query's own clock. Every process derives every query's timeline
// from the shared seed and the query id alone — workers enforce it
// locally, the issuer's oracle judges against it, and no churn
// coordination ever crosses the wire. Each
// query's declared result is read adaptively — at quiescence, with the
// 2D̂δ deadline as the hard cap — and printed next to the oracle's
// q(H_C) / q(H_U) bounds for its own membership timeline along with its
// own §6.3 cost counters (messages, bytes on the wire, computation, time)
// and issue-to-answer latency, and a throughput summary closes the
// stream. With -transport chan the same binary answers the queries fully
// in process — the zero-config smoke test of the exact code path the
// fleet runs.
//
// -continuous switches the fleet to the §4.2 streaming mode
// (internal/stream): the -query process runs one continuous query as a
// deterministic family of per-window engine sub-queries — window k is
// query stream.WindowID(1, k), opened at stream tick k·W by the runtime's
// timer heap — and prints one line per window, in window order, each
// judged against that window's own H_C/H_U. -windows N sets the window
// count, -window W the window length in ticks (≥ 2·D̂; 0 means exactly
// 2·D̂). Churn flags move to the stream's absolute clock and the plan
// slices them per window. Workers need nothing new: handed the same
// flags, they materialize window instances on first contact from seed +
// query id + window index alone, so no churn or window coordination ever
// crosses the wire in this mode either.
//
// The logic lives in this package (rather than in cmd/validityd's main)
// so the multi-process end-to-end tests can re-exec the test binary as a
// fleet of real OS processes without building the daemon first.
package daemon

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/node"
	"validity/internal/obs"
	"validity/internal/obs/fleet"
	"validity/internal/oracle"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/stream"
	"validity/internal/topology"
	"validity/internal/transport"
	"validity/internal/zipfval"
)

// Config is one validityd process's configuration.
type Config struct {
	// Topology selects a §6.1 generator (random | power-law | grid |
	// gnutella); TopoFile overrides it with an edge-list file. Every
	// process must use identical settings — the graph is regenerated
	// locally from the shared seed, never shipped.
	Topology string
	TopoFile string
	Hosts    int
	Seed     int64

	// Transport is "chan" (all hosts in this process) or "tcp" (hosts
	// sharded across processes per Peers/Serve).
	Transport string
	// Peers maps host ranges to addresses: "0-19=127.0.0.1:7001,20-39=…".
	// Every host must be covered (tcp only).
	Peers string
	// Serve lists the hosts this process runs: "20-39" or "0,5,7-9"
	// (tcp only; chan serves everything).
	Serve string
	// Quiesce enables the cross-process quiescence control plane on a
	// tcp fleet (default true): worker processes announce per-query
	// silence to the issuer, whose reads may then return at true global
	// quiescence instead of sleeping out the sharded worst-case floor.
	// -quiesce=false opts out; the hard 2·D̂δ cap applies either way.
	Quiesce bool

	// Query makes this process issue the query stream; other processes
	// serve their hosts (indefinitely, unless RunFor bounds them).
	Query bool
	// Hq is a comma-separated list of querying hosts; query i uses entry
	// i mod len. Every listed host must be served by the -query process.
	Hq string
	// Agg is a comma-separated list of aggregates; query i uses entry
	// i mod len.
	Agg string
	// Queries is the number of queries the -query process issues.
	Queries int
	// Concurrency bounds how many queries are in flight at once.
	Concurrency int
	// Continuous switches the fleet to the §4.2 streaming mode: the
	// -query process runs one continuous query as a family of per-window
	// engine sub-queries (internal/stream) and reports one line per
	// window against that window's own H_C/H_U bounds. Workers given the
	// same flags serve the windows like any other queries — window
	// instances materialize on first contact from seed + query id +
	// window index alone.
	Continuous bool
	// Windows is the number of windows N a continuous query streams
	// (0 = 8).
	Windows int
	// Window is the window length W in δ ticks; 0 means the §4.2 minimum
	// 2·D̂.
	Window int
	// DHat is the stable-diameter overestimate D̂; 0 derives diameter+2
	// from the topology.
	DHat    int
	Vectors int
	// Hop is the wall-clock realization of the per-hop bound δ.
	Hop time.Duration

	// Kill schedules membership events, "host@tick,+host@tick", ticks on
	// each query's own clock: every query of the stream sees the named
	// hosts leave (bare entries, §3.2) or join ("+" entries — a host with
	// no earlier event of its own is a late joiner, absent from tick 0
	// until it arrives) at the named ticks of its own timeline. Entries
	// for hosts served here are enforced; all entries feed each query's
	// oracle timeline, so every process can be handed the same flag.
	Kill string

	// Churn selects a generated membership model applied per query
	// (churn.ParseSource grammar): "rate=R[,window=W]" removes R hosts
	// uniformly over [0,W] ticks of each query's clock (window defaults
	// to the query deadline); "model=sessions,mean=M[,join=D][,window=W]"
	// draws exponential lifetimes with mean M ticks, and join=D adds
	// rebirth — departed hosts return after exponential downtimes of mean
	// D ticks; "model=burst,hosts=A-B,at=T" drops the contiguous range
	// A..B at one tick (rack-loss style). Each query's timeline is
	// derived from the shared seed and the query id alone, so workers
	// regenerate identical timelines with no coordination messages.
	Churn string

	// Shards is the number of worker goroutines executing host callbacks
	// in the engine (node.Config.Shards): 0 defaults to one per available
	// CPU, clamped to the local host count. The knob that lets one process
	// serve thousands of hosts without a goroutine per host.
	Shards int
	// MaxLiveQueries caps queries with live state per process
	// (node.Config.MaxLiveQueries): 0 applies the engine default, negative
	// disables the cap. Instantiation beyond it is rejected and counted on
	// engine_queries_rejected_total.
	MaxLiveQueries int

	// FlushWindow is the TCP transport's write-coalescing linger: how long
	// a peer's writer goroutine waits for more frames before flushing one
	// batched write. Zero (the default) coalesces only opportunistically,
	// adding no latency; positive values must stay under δ/2 (half of Hop)
	// so batching never eats the per-hop bound the protocols assume.
	FlushWindow time.Duration

	// RunFor bounds a non-query process's lifetime (0 = serve forever).
	RunFor time.Duration

	// Metrics, when non-empty, serves the observability endpoints on this
	// address: Prometheus text exposition on /metrics, typed JSON snapshots
	// on /debug/snapshot and /debug/trace, a JSON snapshot of live and
	// retired queries on /debug/queries, and net/http/pprof under
	// /debug/pprof/. Port 0 picks a free port; the bound address is logged.
	Metrics string
	// Fleet lists the whole fleet's -metrics addresses — comma-separated
	// "host:port" or "name=host:port" entries, so a -peers-style map with
	// ports swapped pastes straight in. It arms the cross-process half of
	// the observability plane: /metrics/fleet serves the fleet-rolled-up
	// exposition (counters summed, histograms bucket-merged so fleet
	// quantiles are real), and a slow query's dump merges the trace rings
	// of every listed process into one causally-ordered timeline. A peer
	// that is down degrades that peer's contribution, never the scrape.
	Fleet string
	// LogLevel filters the diagnostic log on stderr: debug | info | warn |
	// error ("" = info). Result lines on stdout are unaffected.
	LogLevel string
	// SlowQuery is the issue→answer latency above which a query's trace
	// ring is dumped at warn level; 0 derives 1.5× the query's wall-clock
	// termination deadline 2·D̂δ.
	SlowQuery time.Duration

	// Obs and Trace override the process's metrics registry and query
	// tracer (the bench harness injects a registry to read the latency
	// histograms). Nil means Run creates its own — every daemon process is
	// instrumented; -metrics only controls the HTTP endpoint.
	Obs   *obs.Registry
	Trace *obs.Tracer

	// Out receives the report lines (defaults to os.Stdout). LogOut
	// receives the diagnostic slog lines (defaults to os.Stderr), kept
	// separate so the machine-parsed result lines stay byte-stable.
	Out    io.Writer
	LogOut io.Writer
}

// Flags binds a Config to a FlagSet, so cmd/validityd and the test
// harness parse identically.
func Flags(fs *flag.FlagSet) *Config {
	cfg := &Config{}
	fs.StringVar(&cfg.Topology, "topology", "random", "random | power-law | grid | gnutella")
	fs.StringVar(&cfg.TopoFile, "topology-file", "", "edge-list file overriding -topology")
	fs.IntVar(&cfg.Hosts, "hosts", 100, "network size |H| (generated topologies)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "shared seed: topology, values, sketch coin tosses")
	fs.StringVar(&cfg.Transport, "transport", "chan", "chan (in-process) | tcp (sharded fleet)")
	fs.StringVar(&cfg.Peers, "peers", "", "host→address map, e.g. 0-19=127.0.0.1:7001,20-39=127.0.0.1:7002")
	fs.StringVar(&cfg.Serve, "serve", "", "hosts this process serves, e.g. 20-39")
	fs.BoolVar(&cfg.Quiesce, "quiesce", true, "tcp: announce per-query quiescence across processes so reads can return before the full 2·D̂δ deadline (-quiesce=false opts out)")
	fs.BoolVar(&cfg.Query, "query", false, "issue the query stream and report results")
	fs.StringVar(&cfg.Hq, "hq", "0", "querying host(s), comma-separated; query i uses entry i mod len")
	fs.StringVar(&cfg.Agg, "agg", "count", "aggregate(s) min|max|count|sum|avg, comma-separated; query i uses entry i mod len")
	fs.IntVar(&cfg.Queries, "queries", 1, "number of queries to issue (query process only)")
	fs.IntVar(&cfg.Concurrency, "concurrency", 1, "maximum queries in flight at once")
	fs.BoolVar(&cfg.Continuous, "continuous", false, "stream one continuous §4.2 query as per-window sub-queries")
	fs.IntVar(&cfg.Windows, "windows", 0, "continuous: number of windows to stream (0 = 8)")
	fs.IntVar(&cfg.Window, "window", 0, "continuous: window length W in δ ticks (0 = 2·D̂, the §4.2 minimum)")
	fs.IntVar(&cfg.DHat, "dhat", 0, "stable-diameter overestimate D̂ (0 = diameter+2)")
	fs.IntVar(&cfg.Vectors, "c", 64, "FM sketch repetitions for count/sum/avg")
	fs.DurationVar(&cfg.Hop, "hop", 5*time.Millisecond, "wall-clock per-hop delay bound δ")
	fs.StringVar(&cfg.Kill, "kill", "", "membership events host@tick (leave, §3.2) and +host@tick (join), per query on its own clock")
	fs.StringVar(&cfg.Churn, "churn", "", "per-query churn model: rate=R[,window=W], model=sessions,mean=M[,join=D][,window=W], model=burst,hosts=A-B,at=T, or trace=FILE (ticks on each query's clock)")
	fs.IntVar(&cfg.Shards, "shards", 0, "engine worker goroutines sharding the local hosts (0 = one per CPU)")
	fs.IntVar(&cfg.MaxLiveQueries, "max-live-queries", 0, "admission cap on queries with live state per process (0 = engine default, <0 = unlimited)")
	fs.DurationVar(&cfg.FlushWindow, "flush-window", 0, "tcp write-coalescing linger per peer (0 = flush immediately; must be < hop/2)")
	fs.DurationVar(&cfg.RunFor, "run-for", 0, "serving lifetime of a non-query process (0 = forever)")
	fs.StringVar(&cfg.Metrics, "metrics", "", "serve /metrics, /debug/queries, /debug/snapshot, /debug/trace, and /debug/pprof/ on this address (e.g. 127.0.0.1:7190; port 0 picks one)")
	fs.StringVar(&cfg.Fleet, "fleet", "", "every fleet member's -metrics address (host:port or name=host:port, comma-separated): serves /metrics/fleet and merges slow-query traces across processes")
	fs.StringVar(&cfg.LogLevel, "log-level", "info", "diagnostic log level on stderr: debug | info | warn | error")
	fs.DurationVar(&cfg.SlowQuery, "slow-query", 0, "dump a query's trace when issue→answer latency exceeds this (0 = 1.5× the 2·D̂δ deadline)")
	return cfg
}

// ParseArgs parses command-line arguments into a Config.
func ParseArgs(name string, args []string) (*Config, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	cfg := Flags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}

// validate rejects flag combinations that would otherwise be silently
// ignored.
func validate(cfg *Config) error {
	switch cfg.Transport {
	case "chan":
		if cfg.Peers != "" || cfg.Serve != "" {
			return fmt.Errorf("daemon: -peers/-serve apply only to -transport tcp (chan serves every host in process)")
		}
	case "tcp":
		if cfg.Peers == "" || cfg.Serve == "" {
			return fmt.Errorf("daemon: -transport tcp needs -peers and -serve")
		}
	default:
		return fmt.Errorf("daemon: unknown transport %q", cfg.Transport)
	}
	if cfg.Query && cfg.RunFor != 0 {
		return fmt.Errorf("daemon: -run-for applies only to worker processes; the -query process exits after its query stream")
	}
	if !cfg.Query && (cfg.Queries != 1 || cfg.Concurrency != 1) {
		return fmt.Errorf("daemon: -queries/-concurrency apply only to the -query process")
	}
	if cfg.Queries < 1 {
		return fmt.Errorf("daemon: -queries must be ≥ 1, got %d", cfg.Queries)
	}
	if cfg.Concurrency < 1 {
		return fmt.Errorf("daemon: -concurrency must be ≥ 1, got %d", cfg.Concurrency)
	}
	if !cfg.Continuous && (cfg.Windows != 0 || cfg.Window != 0) {
		return fmt.Errorf("daemon: -windows/-window apply only with -continuous")
	}
	if cfg.Continuous {
		if cfg.Queries != 1 || cfg.Concurrency != 1 {
			return fmt.Errorf("daemon: -queries/-concurrency apply to one-shot streams; -continuous runs one windowed query")
		}
		if cfg.Windows < 0 {
			return fmt.Errorf("daemon: -windows must be ≥ 1, got %d", cfg.Windows)
		}
		if cfg.Windows == 0 {
			cfg.Windows = 8
		}
		if cfg.Window < 0 {
			return fmt.Errorf("daemon: -window must be ≥ 0 ticks, got %d", cfg.Window)
		}
	}
	if cfg.FlushWindow != 0 {
		if cfg.Transport != "tcp" {
			return fmt.Errorf("daemon: -flush-window applies only to -transport tcp (chan never batches writes)")
		}
		if cfg.FlushWindow < 0 {
			return fmt.Errorf("daemon: -flush-window must be ≥ 0, got %v", cfg.FlushWindow)
		}
		if cfg.FlushWindow >= cfg.Hop/2 {
			// The flush linger is added latency on every remote hop; at
			// δ/2 and beyond it alone would consume the processing
			// headroom the per-hop bound δ reserves.
			return fmt.Errorf("daemon: -flush-window %v must stay under half of -hop (%v)", cfg.FlushWindow, cfg.Hop)
		}
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("daemon: -shards must be ≥ 0, got %d", cfg.Shards)
	}
	if cfg.Fleet != "" && cfg.Metrics == "" && !cfg.Query {
		// The collector feeds /metrics/fleet (needs -metrics) and the
		// merged slow-query dump (needs -query); with neither it would be
		// parsed and never used.
		return fmt.Errorf("daemon: -fleet needs -metrics (to serve /metrics/fleet) or -query (to merge slow-query traces)")
	}
	if cfg.Vectors < 1 || cfg.Vectors > 255 {
		// The canonical wire format carries the repetition count in one
		// byte; beyond it the per-query bytes accounting could not cover
		// the traffic.
		return fmt.Errorf("daemon: -c must be in [1,255], got %d", cfg.Vectors)
	}
	return nil
}

// parseHostSet parses "0-19,25,40-44" into a sorted host list.
func parseHostSet(spec string, n int) ([]graph.HostID, error) {
	var out []graph.HostID
	seen := make(map[graph.HostID]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi := part, part
		if i := strings.IndexByte(part, '-'); i >= 0 {
			lo, hi = part[:i], part[i+1:]
		}
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("daemon: host set %q: %w", spec, err)
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, fmt.Errorf("daemon: host set %q: %w", spec, err)
		}
		if a > b || a < 0 || b >= n {
			return nil, fmt.Errorf("daemon: host range %q outside [0,%d)", part, n)
		}
		for h := a; h <= b; h++ {
			if !seen[graph.HostID(h)] {
				seen[graph.HostID(h)] = true
				out = append(out, graph.HostID(h))
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("daemon: empty host set %q", spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// parseHqList parses the -hq list, preserving order (query i uses entry
// i mod len, so order is part of the spec every process must share).
func parseHqList(spec string, n int) ([]graph.HostID, error) {
	var out []graph.HostID
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		h, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("daemon: -hq entry %q: %w", part, err)
		}
		if h < 0 || h >= n {
			return nil, fmt.Errorf("daemon: h_q %d outside graph of %d hosts", h, n)
		}
		out = append(out, graph.HostID(h))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("daemon: empty -hq list %q", spec)
	}
	return out, nil
}

// parseAggList parses the -agg list, preserving order.
func parseAggList(spec string) ([]agg.Kind, error) {
	var out []agg.Kind
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := agg.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("daemon: empty -agg list %q", spec)
	}
	return out, nil
}

// parsePeers expands the range=addr map into a per-host address table.
func parsePeers(spec string, n int) ([]string, error) {
	addrs := make([]string, n)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.IndexByte(part, '=')
		if i < 0 {
			return nil, fmt.Errorf("daemon: peer entry %q is not range=addr", part)
		}
		hosts, err := parseHostSet(part[:i], n)
		if err != nil {
			return nil, err
		}
		addr := strings.TrimSpace(part[i+1:])
		if addr == "" {
			return nil, fmt.Errorf("daemon: peer entry %q has empty address", part)
		}
		for _, h := range hosts {
			addrs[h] = addr
		}
	}
	for h, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("daemon: host %d has no address in -peers", h)
		}
	}
	return addrs, nil
}

// parseKills parses the -kill grammar — "host@tick" departures and
// "+host@tick" joins — via the membership layer's event parser.
func parseKills(spec string, n int) (churn.Timeline, error) {
	tl, err := churn.ParseEvents(spec, n)
	if err != nil {
		return nil, fmt.Errorf("daemon: -kill: %w", err)
	}
	return tl, nil
}

// churnPlan is the daemon's slice of the membership layer: the static
// -kill events (departures and joins) plus the generated -churn Source,
// combined into one membership timeline per query. A query's timeline
// depends only on the shared flags, the shared seed, and the query id —
// every process of the fleet regenerates the identical timeline, so the
// issuer's oracle judges exactly the membership the workers enforce,
// with no churn coordination messages on the wire.
type churnPlan struct {
	seed   int64
	static churn.Timeline
	src    churn.Source
}

func newChurnPlan(cfg *Config, n int) (*churnPlan, error) {
	static, err := parseKills(cfg.Kill, n)
	if err != nil {
		return nil, err
	}
	src, err := churn.ParseSource(cfg.Churn, n)
	if err != nil {
		return nil, err
	}
	return &churnPlan{seed: cfg.Seed, static: static, src: src}, nil
}

// active reports whether any dynamism is configured.
func (p *churnPlan) active() bool { return len(p.static) > 0 || p.src != nil }

// forQuery derives query id's membership timeline, in ticks of that
// query's own clock, protecting its querying host from the generated
// model.
func (p *churnPlan) forQuery(id node.QueryID, hq graph.HostID, deadline sim.Time) churn.Timeline {
	sched := churn.Static(p.static).Schedule(0, hq, deadline)
	if p.src != nil {
		sched = churn.Merge(sched, p.src.Schedule(churn.QuerySeed(p.seed, int64(id)), hq, deadline))
	}
	return sched
}

// buildGraph regenerates the shared topology.
func buildGraph(cfg *Config) (*graph.Graph, error) {
	if cfg.TopoFile != "" {
		f, err := os.Open(cfg.TopoFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.LoadEdgeList(f)
	}
	kind, err := topology.ParseKind(cfg.Topology)
	if err != nil {
		return nil, err
	}
	if cfg.Hosts < 2 {
		return nil, fmt.Errorf("daemon: need ≥ 2 hosts, got %d", cfg.Hosts)
	}
	return topology.Generate(kind, cfg.Hosts, cfg.Seed), nil
}

// Run executes one validityd process: workers serve until RunFor (or
// forever), the query process drives its stream to completion.
func Run(cfg *Config) error {
	out := cfg.Out
	if out == nil {
		out = os.Stdout
	}
	logOut := cfg.LogOut
	if logOut == nil {
		logOut = os.Stderr
	}
	level, err := obs.ParseLevel(cfg.LogLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(logOut, level)
	// Every daemon process is instrumented — a registry and tracer cost one
	// atomic add per hot-path event — and -metrics merely decides whether
	// they are scrapeable. Tests and the bench harness inject their own.
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := cfg.Trace
	if tracer == nil {
		tracer = obs.NewTracer(0, 0) // defaults
	}
	if err := validate(cfg); err != nil {
		return err
	}
	// The fleet collector scrapes every listed process's /debug/snapshot
	// and /debug/trace; nil when -fleet is unset, and every consumer
	// degrades to the local-only view.
	var coll *fleet.Collector
	if cfg.Fleet != "" {
		srcs, err := fleet.ParseSources(cfg.Fleet)
		if err != nil {
			return fmt.Errorf("daemon: -fleet: %w", err)
		}
		coll = &fleet.Collector{Sources: srcs}
	}
	g, err := buildGraph(cfg)
	if err != nil {
		return err
	}
	n := g.Len()
	values := zipfval.Default(cfg.Seed).Values(n)
	aggs, err := parseAggList(cfg.Agg)
	if err != nil {
		return err
	}
	hqs, err := parseHqList(cfg.Hq, n)
	if err != nil {
		return err
	}
	dHat := cfg.DHat
	if dHat == 0 {
		dHat = g.Diameter(nil) + 2
	}
	plan, err := newChurnPlan(cfg, n)
	if err != nil {
		return err
	}
	// A query is issued AT h_q at time 0, so no querying host may be a
	// late joiner of the static -kill timeline (generated models already
	// protect h_q; continuous mode rejects any h_q event via the plan).
	// Checked on every process — the flags are shared, so issuer and
	// workers fail identically instead of hanging a query.
	staticIx := plan.static.Index()
	for _, hq := range hqs {
		if !staticIx.InitialMember(hq) {
			return fmt.Errorf("daemon: -kill schedules querying host %d as a late joiner; every -hq host must be present when its query is issued", hq)
		}
	}

	var (
		tr     transport.Transport
		local  []graph.HostID // nil = all
		roster []int          // host→process index, tcp only
	)
	switch cfg.Transport {
	case "chan":
		// Delivery at δ/2 leaves the same processing headroom under the
		// bound that node.NewLiveNetwork documents.
		tr = transport.NewChannel(n, cfg.Hop/2)
	case "tcp":
		addrs, err := parsePeers(cfg.Peers, n)
		if err != nil {
			return err
		}
		if local, err = parseHostSet(cfg.Serve, n); err != nil {
			return err
		}
		// The host→process roster the quiescence plane needs falls out
		// of -peers: hosts sharing a transport address share a process.
		// Indexing by first appearance gives every process the identical
		// numbering from the identical flag.
		procIdx := make(map[string]int)
		roster = make([]int, n)
		for h, a := range addrs {
			p, ok := procIdx[a]
			if !ok {
				p = len(procIdx)
				procIdx[a] = p
			}
			roster[h] = p
		}
		tcp := transport.NewTCP(addrs)
		tcp.Obs = reg
		tcp.FlushWindow = cfg.FlushWindow
		tr = tcp
	}

	rt, err := node.New(node.Config{
		Graph:          g,
		Values:         values,
		Transport:      tr,
		Hop:            cfg.Hop,
		Local:          local,
		Shards:         cfg.Shards,
		MaxLiveQueries: cfg.MaxLiveQueries,
		Quiesce:        cfg.Quiesce,
		Roster:         roster,
		Obs:            reg,
		Trace:          tracer,
	})
	if err != nil {
		return err
	}
	if cfg.Query {
		for _, hq := range hqs {
			if !rt.Local(hq) {
				return fmt.Errorf("daemon: -query requires every -hq host in -serve; %d is not", hq)
			}
		}
	}

	// specFor derives query id's spec from the shared flags alone, so
	// every process of the fleet — issuer and workers alike — builds the
	// identical protocol instance for a query the moment its first frame
	// arrives.
	specFor := func(id node.QueryID) protocol.Query {
		i := int(id-1) % len(aggs)
		j := int(id-1) % len(hqs)
		return protocol.Query{
			Kind:   aggs[i],
			Hq:     hqs[j],
			DHat:   dHat,
			Params: agg.Params{Vectors: cfg.Vectors, Bits: 32},
		}
	}
	// The continuous-query plan: identical on every process handed the
	// same flags, exactly like a one-shot query spec. The base query id is
	// 1; dynamism moves to the stream's absolute clock (static -kill
	// entries and the -churn source span the whole N·W-tick run and are
	// sliced per window by the plan).
	var splan *stream.Plan
	if cfg.Continuous {
		splan = &stream.Plan{
			Query:     1,
			Spec:      specFor(1),
			WindowLen: sim.Time(cfg.Window),
			Windows:   cfg.Windows,
			Seed:      cfg.Seed,
			Static:    plan.static,
			Source:    plan.src,
		}
		if err := splan.Validate(); err != nil {
			return err
		}
	}

	// The factory attaches each query's membership timeline to its
	// instance: the node engine enforces it on the local hosts (a host is
	// dead for a query once that query's schedule says so), and because
	// every process derives the identical schedule from seed + id, issuer
	// and workers agree without exchanging a single churn message. Window
	// ids of a continuous query dispatch to the stream plan — a worker
	// serves windows exactly as it serves one-shot queries, materializing
	// each on first contact.
	var windowFactory node.QueryFactory
	if splan != nil {
		windowFactory = splan.Factory(rt)
	}
	rt.SetQueryFactory(func(id node.QueryID) (*node.QueryInstance, error) {
		if _, _, isWindow := stream.SplitWindowID(id); isWindow {
			if windowFactory == nil {
				return nil, fmt.Errorf("daemon: window frame for query %d but this process was not started with -continuous", id)
			}
			return windowFactory(id)
		}
		spec := specFor(id)
		inst, err := node.BuildInstance(rt, protocol.NewWildfire(spec), node.QuerySeed(cfg.Seed, id))
		if err != nil {
			return nil, err
		}
		inst.Churn = plan.forQuery(id, spec.Hq, spec.Deadline())
		inst.Origin = spec.Hq
		return inst, nil
	})
	if err := rt.Start(); err != nil {
		return err
	}
	defer rt.Stop()
	if cfg.Metrics != "" {
		stop, err := startMetricsServer(cfg.Metrics, rt, reg, tracer, coll, logger)
		if err != nil {
			return fmt.Errorf("daemon: -metrics %s: %w", cfg.Metrics, err)
		}
		defer stop()
	}
	logger.Debug("engine started", "hosts", len(localOrAll(local, n)), "of", n,
		"transport", cfg.Transport, "hop", cfg.Hop.String())

	if !cfg.Query {
		lifetime := "indefinitely"
		if cfg.RunFor > 0 {
			lifetime = "for " + cfg.RunFor.String()
		}
		fmt.Fprintf(out, "validityd: serving %d/%d hosts over %s %s\n",
			len(localOrAll(local, n)), n, cfg.Transport, lifetime)
		if cfg.RunFor > 0 {
			time.Sleep(cfg.RunFor)
		} else {
			select {} // serve until killed
		}
		return nil
	}

	churnNote := ""
	if plan.active() {
		churnNote = fmt.Sprintf(", churn kill=%q model=%q", cfg.Kill, cfg.Churn)
	}
	if cfg.Continuous {
		fmt.Fprintf(out, "validityd: continuous wildfire over %d hosts, D̂=%d, δ=%v, transport=%s: %d windows of %d ticks, agg=%s, hq=%d%s\n",
			n, dHat, cfg.Hop, cfg.Transport, splan.Windows, splan.WindowLen, splan.Spec.Kind, splan.Spec.Hq, churnNote)
		return runContinuous(cfg, rt, splan, out)
	}
	fmt.Fprintf(out, "validityd: wildfire over %d hosts, D̂=%d, δ=%v, transport=%s: %d queries, concurrency %d, agg=%s, hq=%s%s\n",
		n, dHat, cfg.Hop, cfg.Transport, cfg.Queries, cfg.Concurrency, cfg.Agg, cfg.Hq, churnNote)
	return runQueryStream(cfg, rt, g, values, plan, specFor, out, logger, tracer, coll)
}

// runContinuous drives one continuous query over the running engine: the
// stream opens window k's sub-query at stream tick k·W on the runtime's
// timer heap, reads each window at quiescence (deadline-capped), and this
// loop prints one line per window — in window order, each against the
// window's own H_C/H_U — then a windows/sec summary.
func runContinuous(cfg *Config, rt *node.Runtime, splan *stream.Plan, out io.Writer) error {
	start := time.Now()
	s, err := stream.Start(rt, splan)
	if err != nil {
		return err
	}
	var (
		windows    int
		valid      int
		totalMsgs  int64
		totalBytes int64
	)
	for r := range s.Results() {
		if r.Err != nil {
			return r.Err
		}
		windows++
		if r.Valid {
			valid++
		}
		totalMsgs += r.Stats.MessagesSent
		totalBytes += r.Stats.BytesOnWire
		// pop= is the window's own |H_U| — everyone who is a member at
		// some instant of it — so a run with arrivals shows the
		// population growing window over window, not just shrinking.
		fmt.Fprintf(out,
			"validityd: q=%d window=%d span=[%d,%d) agg=%s hq=%d pop=%d result=%.2f lower=%.2f upper=%.2f slack=%.2f valid=%t msgs=%d bytes=%d lat=%dms\n",
			splan.Query, r.Window, r.Start, r.End, splan.Spec.Kind, splan.Spec.Hq, r.HU,
			r.Value, r.Lower, r.Upper, r.Slack, r.Valid,
			r.Stats.MessagesSent, r.Stats.BytesOnWire, r.Latency.Milliseconds())
	}
	elapsed := time.Since(start)
	if windows != splan.Windows {
		return fmt.Errorf("daemon: stream delivered %d of %d windows", windows, splan.Windows)
	}
	fmt.Fprintf(out, "validityd: streamed %d windows (%d valid) in %v (%.2f windows/sec) msgs=%d bytes=%d\n",
		windows, valid, elapsed.Round(time.Millisecond),
		float64(windows)/elapsed.Seconds(), totalMsgs, totalBytes)
	if valid != windows {
		return fmt.Errorf("daemon: %d of %d windows judged invalid", windows-valid, windows)
	}
	return nil
}

// runQueryStream issues cfg.Queries queries over the running engine, up to
// cfg.Concurrency in flight, printing each result against the oracle
// bounds of its own membership timeline and a closing throughput summary.
func runQueryStream(cfg *Config, rt *node.Runtime, g *graph.Graph, values []int64,
	plan *churnPlan, specFor func(node.QueryID) protocol.Query, out io.Writer,
	logger *slog.Logger, tracer *obs.Tracer, coll *fleet.Collector) error {

	// Issue→answer latency feeds the same histogram type the engine's
	// exposition serves; the bench harness reads its quantiles for the
	// latency_ms_p50/p95/p99 report keys.
	lath := rt.Obs().Histogram("daemon_query_latency_ms",
		"Issue to answer-in-hand wall time of one-shot queries, ms.", obs.LatencyBucketsMs)
	var (
		mu         sync.Mutex // serializes result lines and totals
		firstErr   error
		valid      int
		totalMsgs  int64
		totalBytes int64
		wg         sync.WaitGroup
	)
	sem := make(chan struct{}, cfg.Concurrency)
	start := time.Now()
	for i := 1; i <= cfg.Queries; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(id node.QueryID) {
			defer wg.Done()
			defer func() { <-sem }()
			spec := specFor(id)
			qStart := time.Now()
			if _, err := rt.StartQuery(id); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			// Adaptive result read: after the runtime's sound floor (one
			// broadcast sweep in process, the protocol deadline when the
			// fleet is sharded), local quiescence ends the wait — the
			// answer is in hand when the query converges, not when the
			// worst-case budget expires. The old sleep-out-the-deadline
			// budget stays as the hard cap.
			floor, settle, hardCap := rt.AwaitBracket(spec.Deadline())
			v, ok, err := rt.AwaitQueryResult(id, spec.Hq, floor, settle, hardCap)
			if err == nil && !ok {
				err = fmt.Errorf("daemon: query %d declared no result at h_q=%d", id, spec.Hq)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			// Latency is issue-to-answer-in-hand wall time and now tracks
			// actual convergence (the warm-dial guarantee is pinned at the
			// transport layer, TestTCPWarmPreDials, and at runtime boot,
			// TestRuntimeWarmsTransportAtStart).
			lat := time.Since(qStart)
			lath.Observe(float64(lat) / float64(time.Millisecond))
			if cfg.Hop > 0 {
				tracer.Record(int64(id), obs.EvAnswered, -1, int64(lat/cfg.Hop), "")
			}
			if threshold := slowThreshold(cfg, time.Duration(spec.Deadline())*cfg.Hop); lat > threshold {
				logSlowQuery(logger, tracer, coll, id, lat, threshold)
			}
			// Each query is judged against its own H_C/H_U: the oracle is
			// handed the query's own schedule on the query's own clock.
			b := oracle.Compute(g, values, spec.Hq, plan.forQuery(id, spec.Hq, spec.Deadline()),
				spec.Deadline(), spec.Kind)
			slack := oracle.FMSlack(spec.Kind, cfg.Vectors)
			st, _ := rt.QueryStats(id)
			ok = b.ValidFactor(v, slack)
			mu.Lock()
			if ok {
				valid++
			}
			totalMsgs += st.MessagesSent
			totalBytes += st.BytesOnWire
			fmt.Fprintf(out,
				"validityd: q=%d agg=%s hq=%d result=%.2f lower=%.2f upper=%.2f slack=%.2f valid=%t msgs=%d bytes=%d maxproc=%d timecost=%d lat=%dms\n",
				id, spec.Kind, spec.Hq, v, b.LowerValue, b.UpperValue, slack, ok,
				st.MessagesSent, st.BytesOnWire, st.MaxComputation(), st.TimeCost,
				lat.Milliseconds())
			mu.Unlock()
		}(node.QueryID(i))
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}
	fmt.Fprintf(out, "validityd: served %d queries (%d valid) in %v (%.2f queries/sec) msgs=%d bytes=%d\n",
		cfg.Queries, valid, elapsed.Round(time.Millisecond),
		float64(cfg.Queries)/elapsed.Seconds(), totalMsgs, totalBytes)
	if valid != cfg.Queries {
		return fmt.Errorf("daemon: %d of %d queries judged invalid", cfg.Queries-valid, cfg.Queries)
	}
	return nil
}

func localOrAll(local []graph.HostID, n int) []graph.HostID {
	if local != nil {
		return local
	}
	all := make([]graph.HostID, n)
	for i := range all {
		all[i] = graph.HostID(i)
	}
	return all
}
