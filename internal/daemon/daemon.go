// Package daemon is the engine behind cmd/validityd: it turns a topology,
// a shard assignment, and a transport choice into a running set of hosts
// answering one WILDFIRE aggregate query with Single-Site Validity
// reporting against the oracle.
//
// Every participating process is given the same topology (a generator
// kind + seed, or an edge-list file) and the same host→address map, and
// serves a disjoint subset of hosts. The process serving h_q issues the
// query, waits out the 2D̂δ deadline in wall-clock time, and prints the
// declared result next to the oracle's q(H_C) / q(H_U) bounds. With
// -transport chan the same binary answers the query fully in process —
// the zero-config smoke test of the exact code path the fleet runs.
//
// The logic lives in this package (rather than in cmd/validityd's main)
// so the multi-process end-to-end test can re-exec the test binary as a
// fleet of real OS processes without building the daemon first.
package daemon

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/node"
	"validity/internal/oracle"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/transport"
	"validity/internal/zipfval"
)

// Config is one validityd process's configuration.
type Config struct {
	// Topology selects a §6.1 generator (random | power-law | grid |
	// gnutella); TopoFile overrides it with an edge-list file. Every
	// process must use identical settings — the graph is regenerated
	// locally from the shared seed, never shipped.
	Topology string
	TopoFile string
	Hosts    int
	Seed     int64

	// Transport is "chan" (all hosts in this process) or "tcp" (hosts
	// sharded across processes per Peers/Serve).
	Transport string
	// Peers maps host ranges to addresses: "0-19=127.0.0.1:7001,20-39=…".
	// Every host must be covered (tcp only).
	Peers string
	// Serve lists the hosts this process runs: "20-39" or "0,5,7-9"
	// (tcp only; chan serves everything).
	Serve string

	// Query makes this process issue the aggregate query at Hq (which
	// must be served here) and print the result; other processes just
	// serve their hosts for RunFor.
	Query bool
	Hq    int
	Agg   string
	// DHat is the stable-diameter overestimate D̂; 0 derives diameter+2
	// from the topology.
	DHat    int
	Vectors int
	// Hop is the wall-clock realization of the per-hop bound δ.
	Hop time.Duration

	// Kill schedules departures, "host@tick,host@tick". Entries for hosts
	// served here are executed; all entries feed the oracle's churn
	// schedule, so every process can be handed the same flag.
	Kill string

	// RunFor bounds a non-query process's lifetime (0 = derived from the
	// query deadline with generous slack).
	RunFor time.Duration

	// Out receives the report lines (defaults to os.Stdout).
	Out io.Writer
}

// Flags binds a Config to a FlagSet, so cmd/validityd and the test
// harness parse identically.
func Flags(fs *flag.FlagSet) *Config {
	cfg := &Config{}
	fs.StringVar(&cfg.Topology, "topology", "random", "random | power-law | grid | gnutella")
	fs.StringVar(&cfg.TopoFile, "topology-file", "", "edge-list file overriding -topology")
	fs.IntVar(&cfg.Hosts, "hosts", 100, "network size |H| (generated topologies)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "shared seed: topology, values, sketch coin tosses")
	fs.StringVar(&cfg.Transport, "transport", "chan", "chan (in-process) | tcp (sharded fleet)")
	fs.StringVar(&cfg.Peers, "peers", "", "host→address map, e.g. 0-19=127.0.0.1:7001,20-39=127.0.0.1:7002")
	fs.StringVar(&cfg.Serve, "serve", "", "hosts this process serves, e.g. 20-39")
	fs.BoolVar(&cfg.Query, "query", false, "issue the query at -hq and report the result")
	fs.IntVar(&cfg.Hq, "hq", 0, "querying host h_q")
	fs.StringVar(&cfg.Agg, "agg", "count", "min | max | count | sum | avg")
	fs.IntVar(&cfg.DHat, "dhat", 0, "stable-diameter overestimate D̂ (0 = diameter+2)")
	fs.IntVar(&cfg.Vectors, "c", 64, "FM sketch repetitions for count/sum/avg")
	fs.DurationVar(&cfg.Hop, "hop", 5*time.Millisecond, "wall-clock per-hop delay bound δ")
	fs.StringVar(&cfg.Kill, "kill", "", "departure schedule host@tick,host@tick (§3.2)")
	fs.DurationVar(&cfg.RunFor, "run-for", 0, "serving lifetime of a non-query process (0 = auto)")
	return cfg
}

// ParseArgs parses command-line arguments into a Config.
func ParseArgs(name string, args []string) (*Config, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	cfg := Flags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}

// parseHostSet parses "0-19,25,40-44" into a sorted host list.
func parseHostSet(spec string, n int) ([]graph.HostID, error) {
	var out []graph.HostID
	seen := make(map[graph.HostID]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi := part, part
		if i := strings.IndexByte(part, '-'); i >= 0 {
			lo, hi = part[:i], part[i+1:]
		}
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("daemon: host set %q: %w", spec, err)
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, fmt.Errorf("daemon: host set %q: %w", spec, err)
		}
		if a > b || a < 0 || b >= n {
			return nil, fmt.Errorf("daemon: host range %q outside [0,%d)", part, n)
		}
		for h := a; h <= b; h++ {
			if !seen[graph.HostID(h)] {
				seen[graph.HostID(h)] = true
				out = append(out, graph.HostID(h))
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("daemon: empty host set %q", spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// parsePeers expands the range=addr map into a per-host address table.
func parsePeers(spec string, n int) ([]string, error) {
	addrs := make([]string, n)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.IndexByte(part, '=')
		if i < 0 {
			return nil, fmt.Errorf("daemon: peer entry %q is not range=addr", part)
		}
		hosts, err := parseHostSet(part[:i], n)
		if err != nil {
			return nil, err
		}
		addr := strings.TrimSpace(part[i+1:])
		if addr == "" {
			return nil, fmt.Errorf("daemon: peer entry %q has empty address", part)
		}
		for _, h := range hosts {
			addrs[h] = addr
		}
	}
	for h, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("daemon: host %d has no address in -peers", h)
		}
	}
	return addrs, nil
}

// killEntry is one parsed -kill item.
type killEntry struct {
	h graph.HostID
	t sim.Time
}

func parseKills(spec string, n int) ([]killEntry, error) {
	var out []killEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.IndexByte(part, '@')
		if i < 0 {
			return nil, fmt.Errorf("daemon: kill entry %q is not host@tick", part)
		}
		h, err := strconv.Atoi(part[:i])
		if err != nil {
			return nil, fmt.Errorf("daemon: kill entry %q: %w", part, err)
		}
		t, err := strconv.Atoi(part[i+1:])
		if err != nil {
			return nil, fmt.Errorf("daemon: kill entry %q: %w", part, err)
		}
		if h < 0 || h >= n {
			return nil, fmt.Errorf("daemon: kill host %d outside [0,%d)", h, n)
		}
		out = append(out, killEntry{h: graph.HostID(h), t: sim.Time(t)})
	}
	return out, nil
}

// fmSlack is the multiplicative tolerance granted to FM estimates when
// judging validity: 1 + 4·(0.78/√c), four standard errors of the
// Flajolet–Martin estimator at c repetitions.
func fmSlack(kind agg.Kind, vectors int) float64 {
	if !kind.DuplicateSensitive() {
		return 1 // min/max are exact
	}
	return 1 + 4*0.78/math.Sqrt(float64(vectors))
}

// buildGraph regenerates the shared topology.
func buildGraph(cfg *Config) (*graph.Graph, error) {
	if cfg.TopoFile != "" {
		f, err := os.Open(cfg.TopoFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.LoadEdgeList(f)
	}
	kind, err := topology.ParseKind(cfg.Topology)
	if err != nil {
		return nil, err
	}
	if cfg.Hosts < 2 {
		return nil, fmt.Errorf("daemon: need ≥ 2 hosts, got %d", cfg.Hosts)
	}
	return topology.Generate(kind, cfg.Hosts, cfg.Seed), nil
}

// Run executes one validityd process to completion.
func Run(cfg *Config) error {
	out := cfg.Out
	if out == nil {
		out = os.Stdout
	}
	g, err := buildGraph(cfg)
	if err != nil {
		return err
	}
	n := g.Len()
	values := zipfval.Default(cfg.Seed).Values(n)
	kind, err := agg.ParseKind(cfg.Agg)
	if err != nil {
		return err
	}
	dHat := cfg.DHat
	if dHat == 0 {
		dHat = g.Diameter(nil) + 2
	}
	if cfg.Hq < 0 || cfg.Hq >= n {
		return fmt.Errorf("daemon: h_q %d outside graph of %d hosts", cfg.Hq, n)
	}
	kills, err := parseKills(cfg.Kill, n)
	if err != nil {
		return err
	}

	var (
		tr    transport.Transport
		local []graph.HostID // nil = all
	)
	switch cfg.Transport {
	case "chan":
		// Delivery at δ/2 leaves the same processing headroom under the
		// bound that node.NewLiveNetwork documents.
		tr = transport.NewChannel(n, cfg.Hop/2)
	case "tcp":
		if cfg.Peers == "" || cfg.Serve == "" {
			return fmt.Errorf("daemon: -transport tcp needs -peers and -serve")
		}
		addrs, err := parsePeers(cfg.Peers, n)
		if err != nil {
			return err
		}
		if local, err = parseHostSet(cfg.Serve, n); err != nil {
			return err
		}
		tr = transport.NewTCP(addrs)
	default:
		return fmt.Errorf("daemon: unknown transport %q", cfg.Transport)
	}

	rt, err := node.New(node.Config{
		Graph:     g,
		Values:    values,
		Transport: tr,
		Hop:       cfg.Hop,
		Local:     local,
	})
	if err != nil {
		return err
	}
	if cfg.Query && !rt.Local(graph.HostID(cfg.Hq)) {
		return fmt.Errorf("daemon: -query requires h_q %d in -serve", cfg.Hq)
	}

	q := protocol.Query{
		Kind:   kind,
		Hq:     graph.HostID(cfg.Hq),
		DHat:   dHat,
		Params: agg.Params{Vectors: cfg.Vectors, Bits: 32},
	}
	wf := protocol.NewWildfire(q)
	if err := node.Install(rt, wf, cfg.Seed); err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	defer rt.Stop()

	// Departures: local entries are executed at their tick on the query
	// clock; all entries inform the oracle, so every process of a fleet
	// can be handed the identical -kill flag.
	var sched churn.Schedule
	for _, k := range kills {
		sched = append(sched, churn.Failure{H: k.h, T: k.t})
		rt.KillAt(k.h, k.t)
	}

	deadline := time.Duration(2*dHat)*cfg.Hop + 10*cfg.Hop + 100*time.Millisecond
	if !cfg.Query {
		runFor := cfg.RunFor
		if runFor == 0 {
			runFor = 4*deadline + 2*time.Second
		}
		fmt.Fprintf(out, "validityd: serving %d/%d hosts over %s for %v\n",
			len(localOrAll(local, n)), n, cfg.Transport, runFor)
		time.Sleep(runFor)
		return nil
	}

	fmt.Fprintf(out, "validityd: %s(%s) at h_q=%d over %d hosts, D̂=%d, δ=%v, transport=%s\n",
		"wildfire", kind, cfg.Hq, n, dHat, cfg.Hop, cfg.Transport)
	time.Sleep(deadline)
	rt.Stop() // quiesce every local host before reading protocol state
	v, ok := wf.Result()
	if !ok {
		return fmt.Errorf("daemon: wildfire declared no result at h_q")
	}

	b := oracle.Compute(g, values, q.Hq, sched, q.Deadline(), kind)
	slack := fmSlack(kind, cfg.Vectors)
	st := rt.Stats()
	fmt.Fprintf(out,
		"validityd: result=%.2f lower=%.2f upper=%.2f slack=%.2f valid=%t msgs=%d maxproc=%d timecost=%d\n",
		v, b.LowerValue, b.UpperValue, slack, b.ValidFactor(v, slack),
		st.MessagesSent, st.MaxComputation(), st.TimeCost)
	return nil
}

func localOrAll(local []graph.HostID, n int) []graph.HostID {
	if local != nil {
		return local
	}
	all := make([]graph.HostID, n)
	for i := range all {
		all[i] = graph.HostID(i)
	}
	return all
}
