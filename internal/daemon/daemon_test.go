package daemon

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"testing"
	"time"

	"validity/internal/churn"
)

// The multi-process test re-execs this test binary as validityd worker
// processes: TestMain diverts to daemon.Run when the marker variable is
// set, so real OS processes run the real daemon with zero build steps.
func TestMain(m *testing.M) {
	if args := os.Getenv("VALIDITYD_CHILD_ARGS"); args != "" {
		cfg, err := ParseArgs("validityd-child", splitArgs(args))
		if err == nil {
			err = Run(cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "validityd child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// splitArgs splits on the record separator so addresses with colons and
// commas pass through untouched.
func splitArgs(s string) []string {
	var out []string
	for _, f := range bytes.Split([]byte(s), []byte{0x1e}) {
		if len(f) > 0 {
			out = append(out, string(f))
		}
	}
	return out
}

func joinArgs(args []string) string {
	return string(bytes.Join(toBytes(args), []byte{0x1e}))
}

func toBytes(ss []string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

var resultRe = regexp.MustCompile(
	`validityd: q=\d+ agg=\w+ hq=\d+ result=([0-9.]+) lower=([0-9.]+) upper=([0-9.]+) slack=[0-9.]+ valid=(true|false) msgs=([0-9]+) bytes=([0-9]+)`)

// parseReport extracts (result, lower, upper, valid) from Run's output.
func parseReport(t *testing.T, out string) (v, lo, hi float64, valid bool) {
	t.Helper()
	m := resultRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no result line in output:\n%s", out)
	}
	v, _ = strconv.ParseFloat(m[1], 64)
	lo, _ = strconv.ParseFloat(m[2], 64)
	hi, _ = strconv.ParseFloat(m[3], 64)
	valid = m[4] == "true"
	return v, lo, hi, valid
}

func TestInProcessChannelQuery(t *testing.T) {
	var out bytes.Buffer
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", "80", "-seed", "7",
		"-query", "-hq", "0", "-agg", "count",
		"-hop", testHop.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	v, lo, hi, valid := parseReport(t, out.String())
	if lo != 80 || hi != 80 {
		t.Fatalf("oracle bounds [%v, %v], want [80, 80]", lo, hi)
	}
	if !valid {
		t.Fatalf("in-process count %.1f judged invalid:\n%s", v, out.String())
	}
}

func TestInProcessChannelQueryWithKills(t *testing.T) {
	var out bytes.Buffer
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", "80", "-seed", "9",
		"-query", "-hq", "0", "-agg", "count",
		"-hop", testHop.String(),
		"-kill", "3@0,11@0,17@2,29@2,41@4",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	v, lo, hi, valid := parseReport(t, out.String())
	if lo >= hi {
		t.Fatalf("churn produced degenerate bounds [%v, %v]", lo, hi)
	}
	if !valid {
		t.Fatalf("count %.1f under churn judged invalid (bounds [%v, %v]):\n%s",
			v, lo, hi, out.String())
	}
}

// waitListening polls until addr accepts connections, so the query only
// starts once the serving processes are reachable.
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("worker at %s never started listening", addr)
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	ls := make([]net.Listener, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range ls {
		l.Close()
	}
	return addrs
}

// TestMultiProcessTCPQuery is the acceptance demo: three OS processes on
// loopback — two re-exec'd workers plus this process — shard 60 hosts and
// complete a WILDFIRE COUNT over the TCP transport, with the estimate
// validated against the oracle's Single-Site Validity bounds.
func TestMultiProcessTCPQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and sleeps out a wall-clock query deadline")
	}
	ports := freeAddrs(t, 3)
	peers := fmt.Sprintf("0-19=%s,20-39=%s,40-59=%s", ports[0], ports[1], ports[2])
	common := []string{
		"-transport", "tcp",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-peers", peers,
		"-agg", "count",
		"-hop", testHop.String(),
	}

	for _, serve := range []string{"20-39", "40-59"} {
		args := append(append([]string{}, common...), "-serve", serve, "-run-for", "60s")
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "VALIDITYD_CHILD_ARGS="+joinArgs(args))
		var childOut bytes.Buffer
		cmd.Stdout = &childOut
		cmd.Stderr = &childOut
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
			if t.Failed() {
				t.Logf("worker %s output:\n%s", serve, childOut.String())
			}
		})
	}
	waitListening(t, ports[1])
	waitListening(t, ports[2])

	var out bytes.Buffer
	args := append(append([]string{}, common...), "-serve", "0-19", "-query", "-hq", "0")
	cfg, err := ParseArgs("validityd", args)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	v, lo, hi, valid := parseReport(t, out.String())
	if lo != 60 || hi != 60 {
		t.Fatalf("oracle bounds [%v, %v], want [60, 60]", lo, hi)
	}
	if !valid {
		t.Fatalf("multi-process count %.1f judged invalid:\n%s", v, out.String())
	}
}

func TestParsePeersAndHostSets(t *testing.T) {
	addrs, err := parsePeers("0-2=a:1,3=b:2,4-5=c:3", 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a:1", "a:1", "a:1", "b:2", "c:3", "c:3"}
	for i, a := range addrs {
		if a != want[i] {
			t.Fatalf("addrs[%d] = %q, want %q", i, a, want[i])
		}
	}
	if _, err := parsePeers("0-2=a:1", 4); err == nil {
		t.Fatal("uncovered host accepted")
	}
	if _, err := parseHostSet("3-1", 6); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := parseKills("5@nope", 6); err == nil {
		t.Fatal("malformed kill accepted")
	}
	if _, err := parseKills("5@-1", 6); err == nil {
		t.Fatal("negative kill tick accepted; the engine would never execute it while the oracle counts the host dead")
	}
	if _, err := parseKills("+5@-1", 6); err == nil {
		t.Fatal("negative join tick accepted")
	}
	ks, err := parseKills("1@0, 2@7, +3@9", 6)
	if err != nil || len(ks) != 3 || ks[1].H != 2 || ks[1].T != 7 {
		t.Fatalf("parseKills = %v, %v", ks, err)
	}
	if ks[1].Kind != churn.Leave || ks[2].Kind != churn.Join || ks[2].H != 3 || ks[2].T != 9 {
		t.Fatalf("parseKills event kinds wrong: %v", ks)
	}
}
