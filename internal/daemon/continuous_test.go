package daemon

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"validity/internal/agg"
	"validity/internal/protocol"
	"validity/internal/stream"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

var windowLineRe = regexp.MustCompile(
	`validityd: q=(\d+) window=(\d+) span=\[(\d+),(\d+)\) agg=(\w+) hq=(\d+) pop=(\d+) result=([0-9.]+) lower=([0-9.]+) upper=([0-9.]+) slack=[0-9.]+ valid=(true|false) msgs=([0-9]+) bytes=([0-9]+) lat=([0-9]+)ms`)

// TestContinuousFlagsRejected extends the flag-validation contract to the
// streaming mode.
func TestContinuousFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"windows without continuous", []string{"-query", "-windows", "4"}, "-windows"},
		{"window without continuous", []string{"-query", "-window", "24"}, "-windows"},
		{"continuous with queries", []string{"-query", "-continuous", "-queries", "4"}, "-queries"},
		{"continuous with concurrency", []string{"-query", "-continuous", "-concurrency", "2"}, "-concurrency"},
		{"negative windows", []string{"-query", "-continuous", "-windows", "-1"}, "-windows"},
		{"window below 4.2 bound", []string{"-query", "-continuous", "-dhat", "12", "-window", "5"}, "window"},
		{"continuous kill of hq", []string{"-query", "-continuous", "-hq", "0", "-kill", "0@3"}, "outlive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := ParseArgs("validityd", tc.args)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Out = &bytes.Buffer{}
			err = Run(cfg)
			if err == nil {
				t.Fatalf("args %v accepted; want an error mentioning %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestInProcessContinuousStream answers a churned continuous COUNT fully
// in process: one windowed query, every window line valid against its own
// bounds, windows in order, and a windows/sec summary.
func TestInProcessContinuousStream(t *testing.T) {
	var out bytes.Buffer
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-query", "-continuous", "-windows", "4",
		"-hq", "0", "-agg", "count",
		"-churn", "rate=9",
		"-hop", testHop.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatalf("continuous stream failed: %v\n%s", err, out.String())
	}
	lines := windowLineRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != 4 {
		t.Fatalf("got %d window lines, want 4:\n%s", len(lines), out.String())
	}
	for i, m := range lines {
		if w, _ := strconv.Atoi(m[2]); w != i {
			t.Fatalf("window %s at position %d; windows must stream in order:\n%s", m[2], i, out.String())
		}
		if m[11] != "true" {
			t.Fatalf("window %s judged invalid:\n%s", m[2], out.String())
		}
	}
	if !strings.Contains(out.String(), "windows/sec") {
		t.Fatalf("no windows/sec summary:\n%s", out.String())
	}
}

// TestContinuousTCPStream is the acceptance demo of the streaming
// subsystem: a three-process fleet on loopback streams a continuous COUNT
// under churn. Every window result arrives in order, each line carries
// the window's own H_C/H_U bounds and valid=true, the bounds match an
// independent recomputation of each window's membership from the shared
// flags alone (no churn or window coordination on the wire — workers
// regenerate everything from seed + query id + window index), and the
// shrinking population shows up as a shrinking per-window upper bound.
func TestContinuousTCPStream(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and streams wall-clock windows")
	}
	const windows = 5
	ports := freeAddrs(t, 3)
	peers := fmt.Sprintf("0-19=%s,20-39=%s,40-59=%s", ports[0], ports[1], ports[2])
	common := []string{
		"-transport", "tcp",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-peers", peers,
		"-agg", "count",
		"-hq", "0",
		"-dhat", "12",
		"-continuous", "-windows", strconv.Itoa(windows), "-window", "24",
		// Churn on the stream's absolute clock: 12 departures spread over
		// the whole 5·24-tick run, so later windows open with fewer hosts.
		"-churn", "rate=12",
		"-kill", "29@4",
		"-hop", testHop.String(),
	}

	// Workers are handed the same flags minus -query, exactly like the
	// one-shot fleets: nothing worker-specific is needed for windows to
	// materialize on first contact.
	for _, serve := range []string{"20-39", "40-59"} {
		args := append(append([]string{}, common...), "-serve", serve)
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "VALIDITYD_CHILD_ARGS="+joinArgs(args))
		var childOut bytes.Buffer
		cmd.Stdout = &childOut
		cmd.Stderr = &childOut
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
			if t.Failed() {
				t.Logf("worker %s output:\n%s", serve, childOut.String())
			}
		})
	}
	waitListening(t, ports[1])
	waitListening(t, ports[2])

	var out bytes.Buffer
	args := append(append([]string{}, common...), "-serve", "0-19", "-query")
	cfg, err := ParseArgs("validityd", args)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatalf("continuous stream failed: %v\n%s", err, out.String())
	}

	lines := windowLineRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != windows {
		t.Fatalf("got %d window lines, want %d:\n%s", len(lines), windows, out.String())
	}

	// Recompute every window's bounds independently, as any process of the
	// fleet can: the same flags derive the same plan, whose absolute
	// schedule slices into the same per-window membership.
	g := topology.Generate(topology.Random, 60, 23)
	values := zipfval.Default(23).Values(60)
	cfgA, planA := planFromArgs(t, append(append([]string{}, common...), "-serve", "0-19"), 60)
	splan := &stream.Plan{
		Query: 1,
		Spec: protocol.Query{
			Kind:   agg.Count,
			Hq:     0,
			DHat:   12,
			Params: agg.Params{Vectors: cfgA.Vectors, Bits: 32},
		},
		WindowLen: 24,
		Windows:   windows,
		Seed:      cfgA.Seed,
		Static:    planA.static,
		Source:    planA.src,
	}
	var uppers []float64
	for i, m := range lines {
		if w, _ := strconv.Atoi(m[2]); w != i {
			t.Fatalf("window %s arrived at position %d; windows must stream in order:\n%s", m[2], i, out.String())
		}
		if m[11] != "true" {
			t.Fatalf("window %s judged invalid:\n%s", m[2], out.String())
		}
		wantStart, wantEnd := int64(i)*24, int64(i+1)*24
		if s, _ := strconv.ParseInt(m[3], 10, 64); s != wantStart {
			t.Fatalf("window %d span starts at %d, want %d", i, s, wantStart)
		}
		if e, _ := strconv.ParseInt(m[4], 10, 64); e != wantEnd {
			t.Fatalf("window %d span ends at %d, want %d", i, e, wantEnd)
		}
		lo, _ := strconv.ParseFloat(m[9], 64)
		hi, _ := strconv.ParseFloat(m[10], 64)
		b, err := splan.Bounds(g, values, i)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%.2f", b.LowerValue) != fmt.Sprintf("%.2f", lo) ||
			fmt.Sprintf("%.2f", b.UpperValue) != fmt.Sprintf("%.2f", hi) {
			t.Fatalf("window %d bounds [%.2f, %.2f] do not match an independent recomputation [%.2f, %.2f]",
				i, lo, hi, b.LowerValue, b.UpperValue)
		}
		if msgs, _ := strconv.ParseInt(m[12], 10, 64); msgs == 0 {
			t.Fatalf("window %d reports zero messages:\n%s", i, out.String())
		}
		uppers = append(uppers, hi)
	}
	// The churn spans the whole stream, so the population — and with it
	// each window's own upper COUNT bound — must shrink across windows.
	for i := 1; i < len(uppers); i++ {
		if uppers[i] > uppers[i-1] {
			t.Fatalf("window %d upper bound %v above window %d's %v; H_U may never grow without joins",
				i, uppers[i], i-1, uppers[i-1])
		}
	}
	if uppers[len(uppers)-1] >= uppers[0] {
		t.Fatalf("upper bounds never shrank (%v); churn did not bite across windows", uppers)
	}
	if !strings.Contains(out.String(), "windows/sec") {
		t.Fatalf("no windows/sec summary:\n%s", out.String())
	}
}
