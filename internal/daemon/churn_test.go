package daemon

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"testing"
	"time"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/node"
	"validity/internal/oracle"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

// planFromArgs builds the membership plan exactly as one validityd
// process would from its flags.
func planFromArgs(t *testing.T, args []string, n int) (*Config, *churnPlan) {
	t.Helper()
	cfg, err := ParseArgs("validityd", args)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := newChurnPlan(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, plan
}

// TestDerivedSchedulesIdenticalAcrossProcesses pins the membership
// layer's no-coordination contract at the daemon level: two processes
// parsing the same flags derive byte-identical per-query schedules from
// seed + id alone, every query gets a different schedule, and no schedule
// ever touches the query's own h_q.
func TestDerivedSchedulesIdenticalAcrossProcesses(t *testing.T) {
	args := []string{"-seed", "23", "-churn", "rate=6,window=12", "-kill", "29@4"}
	const n, hq, deadline = 60, 0, 24
	_, planA := planFromArgs(t, args, n)
	_, planB := planFromArgs(t, args, n)

	var schedules []churn.Schedule
	for id := node.QueryID(1); id <= 8; id++ {
		a := planA.forQuery(id, hq, deadline)
		b := planB.forQuery(id, hq, deadline)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: processes derived different schedules:\n%v\n%v", id, a, b)
		}
		if len(a) != 7 { // 6 churned + 1 static kill
			t.Fatalf("query %d: schedule has %d failures, want 7: %v", id, len(a), a)
		}
		ix := a.Index()
		if ix.FailTime(hq) >= 0 {
			t.Fatalf("query %d: querying host scheduled to fail", id)
		}
		if ix.FailTime(29) != 4 {
			t.Fatalf("query %d: static -kill entry missing: %v", id, a)
		}
		schedules = append(schedules, a)
	}
	for i := range schedules {
		for j := i + 1; j < len(schedules); j++ {
			if reflect.DeepEqual(schedules[i], schedules[j]) {
				t.Fatalf("queries %d and %d derived identical churn schedules", i+1, j+1)
			}
		}
	}
}

// TestChurnedInProcessQueryStream lifts the old single-query -kill
// restriction: a concurrent stream runs with both explicit kills and a
// generated churn model, and every query is judged valid against the
// bounds of its own membership timeline.
func TestChurnedInProcessQueryStream(t *testing.T) {
	var out bytes.Buffer
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-query", "-hq", "0,7", "-agg", "count,min",
		"-queries", "6", "-concurrency", "2",
		"-churn", "rate=6,window=12",
		"-kill", "29@4",
		"-hop", testHop.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatalf("churned stream failed: %v\n%s", err, out.String())
	}
	lines := streamLineRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != 6 {
		t.Fatalf("got %d result lines, want 6:\n%s", len(lines), out.String())
	}
	widened := false
	for _, m := range lines {
		if m[4] != "true" {
			t.Fatalf("a churned query was judged invalid:\n%s", out.String())
		}
	}
	// Churn must actually bite: count queries lose the churned hosts from
	// H_C, so their lower bound sits below the static-network value 60.
	countLower := regexp.MustCompile(`agg=count hq=\d+ result=[0-9.]+ lower=([0-9.]+)`)
	for _, m := range countLower.FindAllStringSubmatch(out.String(), -1) {
		lo, _ := strconv.ParseFloat(m[1], 64)
		if lo < 60 {
			widened = true
		}
	}
	if !widened {
		t.Fatalf("no count query saw churn-widened bounds:\n%s", out.String())
	}
}

var latRe = regexp.MustCompile(`validityd: q=(\d+) agg=\w+ hq=\d+ result=[0-9.]+ lower=([0-9.]+) upper=([0-9.]+) slack=[0-9.]+ valid=(true|false) msgs=[0-9]+ bytes=[0-9]+ maxproc=[0-9]+ timecost=[0-9]+ lat=([0-9]+)ms`)

// TestConcurrentTCPChurnedQueryStream is the acceptance demo of the
// membership layer: a three-process fleet on loopback answers 8
// overlapping queries while every query sees its own derived churn
// schedule (plus a shared static kill), with workers regenerating the
// schedules from seed alone. Each printed bound pair must equal the
// oracle bounds this process computes from that query's own timeline, and
// — thanks to the warm-up dials at boot — the first query's latency must
// sit within 2× of the median.
func TestConcurrentTCPChurnedQueryStream(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and sleeps out wall-clock query deadlines")
	}
	ports := freeAddrs(t, 3)
	peers := fmt.Sprintf("0-19=%s,20-39=%s,40-59=%s", ports[0], ports[1], ports[2])
	common := []string{
		"-transport", "tcp",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-peers", peers,
		"-agg", "count,min",
		"-hq", "0,7",
		"-dhat", "12",
		"-churn", "rate=6,window=12",
		"-kill", "29@4",
		"-hop", testHop.String(),
	}

	for _, serve := range []string{"20-39", "40-59"} {
		args := append(append([]string{}, common...), "-serve", serve)
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "VALIDITYD_CHILD_ARGS="+joinArgs(args))
		var childOut bytes.Buffer
		cmd.Stdout = &childOut
		cmd.Stderr = &childOut
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
			if t.Failed() {
				t.Logf("worker %s output:\n%s", serve, childOut.String())
			}
		})
	}
	waitListening(t, ports[1])
	waitListening(t, ports[2])

	var out bytes.Buffer
	args := append(append([]string{}, common...),
		"-serve", "0-19", "-query", "-queries", "8", "-concurrency", "2")
	cfg, err := ParseArgs("validityd", args)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatalf("churned query stream failed: %v\n%s", err, out.String())
	}

	lines := latRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != 8 {
		t.Fatalf("got %d result lines, want 8:\n%s", len(lines), out.String())
	}

	// Recompute every query's oracle bounds from its derived schedule, as
	// any process of the fleet can: the printed bounds must match its own
	// timeline's H_C/H_U exactly.
	g := topology.Generate(topology.Random, 60, 23)
	values := zipfval.Default(23).Values(60)
	_, plan := planFromArgs(t, common, 60)
	if !plan.active() {
		t.Fatal("membership plan inactive despite -churn and -kill")
	}
	var lats []float64
	latByQuery := make(map[int]float64)
	for _, m := range lines {
		id, _ := strconv.Atoi(m[1])
		lo, _ := strconv.ParseFloat(m[2], 64)
		hi, _ := strconv.ParseFloat(m[3], 64)
		if m[4] != "true" {
			t.Fatalf("churned query %d judged invalid:\n%s", id, out.String())
		}
		kind, hq := agg.Count, graph.HostID(0)
		if id%2 == 0 {
			kind, hq = agg.Min, 7
		}
		sched := plan.forQuery(node.QueryID(id), hq, 24) // deadline 2·D̂ = 24
		b := oracle.Compute(g, values, hq, sched, 24, kind)
		if fmt.Sprintf("%.2f", b.LowerValue) != fmt.Sprintf("%.2f", lo) ||
			fmt.Sprintf("%.2f", b.UpperValue) != fmt.Sprintf("%.2f", hi) {
			t.Fatalf("query %d bounds [%.2f, %.2f] do not match its own timeline's [%.2f, %.2f]",
				id, lo, hi, b.LowerValue, b.UpperValue)
		}
		lat, _ := strconv.ParseFloat(m[5], 64)
		lats = append(lats, lat)
		latByQuery[id] = lat
	}
	// Adaptive result reads: latencies now track convergence, not the
	// worst-case deadline. The median answer must beat the hard cap by a
	// clear margin — more than half the stream returned at quiescence
	// instead of sleeping out the full budget (a broken quiescence poll
	// reads at the cap, never under it). Under the race detector the
	// protocols legitimately use most of their widened deadline, so the
	// margin is a couple of hops, not a fraction of the cap.
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	capMs := float64((2*12*testHop + 10*testHop + 100*time.Millisecond).Milliseconds())
	if margin := float64((2 * testHop).Milliseconds()); median > capMs-margin {
		t.Fatalf("median latency %vms within %vms of the %vms hard cap: adaptive reads never bit", median, margin, capMs)
	}
	// Warm-up dials: the cold fleet's first query converges like the rest
	// (within 3× of the median — convergence time varies where deadline
	// pacing did not). A cold-dial regression would push query 1 to the
	// cap while the warm median stays low; the dial behavior itself is
	// pinned at the transport layer (TestTCPWarmPreDials) and at runtime
	// boot (TestRuntimeWarmsTransportAtStart).
	if first := latByQuery[1]; first > 3*median {
		t.Fatalf("first query latency %vms exceeds 3× median %vms: warm-up dials not effective", first, median)
	}
}
