package daemon

import (
	"bytes"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// runtimePeaks samples the two process-health numbers the sharded engine
// is supposed to bound — live goroutines and heap in use — on a fixed
// cadence until stop() is called, which returns the observed peaks.
type runtimePeaks struct {
	goroutines int
	heapInuse  uint64
	done       chan struct{}
	stopped    chan struct{}
}

func sampleRuntimePeaks(every time.Duration) *runtimePeaks {
	p := &runtimePeaks{done: make(chan struct{}), stopped: make(chan struct{})}
	go func() {
		defer close(p.stopped)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			if n := runtime.NumGoroutine(); n > p.goroutines {
				p.goroutines = n
			}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > p.heapInuse {
				p.heapInuse = ms.HeapInuse
			}
			select {
			case <-p.done:
				return
			case <-tick.C:
			}
		}
	}()
	return p
}

// stop ends sampling and returns (peak goroutines, peak heap-inuse bytes).
func (p *runtimePeaks) stop() (int, uint64) {
	close(p.done)
	<-p.stopped
	return p.goroutines, p.heapInuse
}

// TestScaleSmoke2K is the bounded scale gate in `make ci`: a 2,048-host
// single-process fleet answers a short query stream on the chan transport
// in seconds, and the goroutine peak must be O(shards + constant) — a
// regression back to goroutine-per-host (or to goroutine-per-in-flight-
// send in the chan transport) blows the bound by two orders of magnitude.
// Skipped under the race detector: the fleet size is calibrated for
// native execution, and the shard scheduler's serialization is already
// race-checked at small scale by internal/node's property tests.
func TestScaleSmoke2K(t *testing.T) {
	if raceEnabled {
		t.Skip("2K-host smoke is sized for native execution; run via make scale-smoke")
	}
	if testing.Short() {
		t.Skip("2K-host fleet takes a few seconds")
	}
	const hosts = 2048
	peaks := sampleRuntimePeaks(5 * time.Millisecond)
	var out bytes.Buffer
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", strconv.Itoa(hosts), "-seed", "23",
		"-query", "-hq", "0", "-agg", "count",
		"-queries", "2", "-concurrency", "1",
		// A 2K-host flood moves ~10K messages per round: δ must cover the
		// round's processing on this many hosts, and D̂ carries headroom
		// over the derived diameter+2 like any real deployment (§5.1).
		"-hop", "10ms",
		"-dhat", "16",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatalf("2K-host stream failed: %v\n%s", err, out.String())
	}
	peakG, peakHeap := peaks.stop()

	lines := resultRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != 2 {
		t.Fatalf("got %d result lines, want 2:\n%s", len(lines), out.String())
	}
	for _, m := range lines {
		if m[4] != "true" {
			t.Fatalf("a 2K-host query was judged invalid:\n%s", out.String())
		}
	}

	// O(shards + transport + harness), NOT O(hosts): the shard workers
	// (≤ GOMAXPROCS), the timer loop, the chan transport's one delivery
	// scheduler, transient overflow drainers, and the stream/test harness.
	// 2048 hosts under the old goroutine-per-host runtime floored this at
	// hosts + extras ≈ 2100.
	bound := runtime.GOMAXPROCS(0) + 64
	if peakG > bound {
		t.Fatalf("peak goroutines %d exceeds O(shards) bound %d for %d hosts", peakG, bound, hosts)
	}
	// The old runtime eagerly allocated hosts × 4096-slot inbox channels
	// (~800 MB of channel buffers at 2K hosts before any query state).
	// The sharded queues make the footprint query-dominated; half a GB of
	// headroom still catches a per-host-buffer regression at this scale.
	const heapCap = 512 << 20
	if peakHeap > heapCap {
		t.Fatalf("peak heap-inuse %d bytes exceeds %d for %d hosts", peakHeap, heapCap, hosts)
	}
	t.Logf("2K-host smoke: peak %d goroutines (bound %d), peak heap %.1f MB", peakG, bound, float64(peakHeap)/(1<<20))
}
