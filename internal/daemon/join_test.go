package daemon

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/node"
	"validity/internal/oracle"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

// TestConcurrentTCPJoinQueryStream is the acceptance demo of the join
// half of the membership timeline: a three-process fleet on loopback
// answers a concurrent query stream while host 45 — served by a worker —
// is a late joiner, absent from every query's tick 0 until it arrives at
// tick 6 of that query's own clock (-kill +45@6). Every printed bound
// pair must match the oracle bounds this process recomputes from the
// shared flags alone, and those bounds must show |H_U| strictly above
// the initial host count: the population grew mid-query, the state the
// departures-only membership layer could never reach.
func TestConcurrentTCPJoinQueryStream(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and sleeps out wall-clock query deadlines")
	}
	ports := freeAddrs(t, 3)
	peers := fmt.Sprintf("0-19=%s,20-39=%s,40-59=%s", ports[0], ports[1], ports[2])
	common := []string{
		"-transport", "tcp",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-peers", peers,
		"-agg", "count,min",
		"-hq", "0,7",
		"-dhat", "12",
		// One departure plus one arrival, per query on its own clock: host
		// 29 leaves at tick 4, host 45 joins at tick 6 (it is absent from
		// tick 0 — a late joiner on a worker shard).
		"-kill", "29@4,+45@6",
		"-hop", testHop.String(),
	}

	for _, serve := range []string{"20-39", "40-59"} {
		args := append(append([]string{}, common...), "-serve", serve)
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "VALIDITYD_CHILD_ARGS="+joinArgs(args))
		var childOut bytes.Buffer
		cmd.Stdout = &childOut
		cmd.Stderr = &childOut
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
			if t.Failed() {
				t.Logf("worker %s output:\n%s", serve, childOut.String())
			}
		})
	}
	waitListening(t, ports[1])
	waitListening(t, ports[2])

	var out bytes.Buffer
	args := append(append([]string{}, common...),
		"-serve", "0-19", "-query", "-queries", "4", "-concurrency", "2")
	cfg, err := ParseArgs("validityd", args)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatalf("join query stream failed: %v\n%s", err, out.String())
	}

	lines := streamLineRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != 4 {
		t.Fatalf("got %d result lines, want 4:\n%s", len(lines), out.String())
	}

	g := topology.Generate(topology.Random, 60, 23)
	values := zipfval.Default(23).Values(60)
	_, plan := planFromArgs(t, common, 60)
	for _, m := range lines {
		id, _ := strconv.Atoi(m[1])
		if m[4] != "true" {
			t.Fatalf("query %d with a mid-query join judged invalid:\n%s", id, out.String())
		}
		kind, hq := agg.Count, graph.HostID(0)
		if id%2 == 0 {
			kind, hq = agg.Min, 7
		}
		tl := plan.forQuery(node.QueryID(id), hq, 24) // deadline 2·D̂ = 24
		ix := tl.Index()
		initial := 0
		for h := 0; h < 60; h++ {
			if ix.InitialMember(graph.HostID(h)) {
				initial++
			}
		}
		if initial != 59 {
			t.Fatalf("query %d: initial host set = %d, want 59 (host 45 arrives late)", id, initial)
		}
		b := oracle.Compute(g, values, hq, tl, 24, kind)
		if len(b.HU) <= initial {
			t.Fatalf("query %d: |H_U| = %d not above the initial host count %d", id, len(b.HU), initial)
		}
		if len(b.HU) != 60 {
			t.Fatalf("query %d: |H_U| = %d, want 60 (the joiner arrived before the deadline)", id, len(b.HU))
		}
		// The printed bounds are exactly this recomputation — the workers
		// enforced a timeline the issuer's oracle derived without any
		// churn coordination on the wire.
		wantLo, wantHi := fmt.Sprintf("%.2f", b.LowerValue), fmt.Sprintf("%.2f", b.UpperValue)
		lineLo, lineHi := boundsOf(t, out.String(), id)
		if wantLo != lineLo || wantHi != lineHi {
			t.Fatalf("query %d bounds [%s, %s] do not match the recomputed [%s, %s]",
				id, lineLo, lineHi, wantLo, wantHi)
		}
	}
}

// boundsOf extracts query id's printed lower/upper bounds.
func boundsOf(t *testing.T, out string, id int) (lo, hi string) {
	t.Helper()
	for _, m := range latRe.FindAllStringSubmatch(out, -1) {
		if got, _ := strconv.Atoi(m[1]); got == id {
			return m[2], m[3]
		}
	}
	t.Fatalf("no result line for query %d:\n%s", id, out)
	return "", ""
}

// TestContinuousJoinPopulationGrows streams a continuous COUNT over a
// fleet whose population only grows: two late joiners arrive mid-run, so
// the per-window pop= column — each window's own |H_U| — must rise
// across windows, the growth the departures-only timeline could never
// show.
func TestContinuousJoinPopulationGrows(t *testing.T) {
	var out bytes.Buffer
	cfg, err := ParseArgs("validityd", []string{
		"-transport", "chan",
		"-topology", "random", "-hosts", "60", "-seed", "23",
		"-query", "-continuous", "-windows", "3", "-window", "24",
		"-hq", "0", "-agg", "count",
		// Absolute stream clock: hosts 30 and 31 are late joiners landing
		// in windows 1 and 2 respectively.
		"-kill", "+30@30,+31@55",
		"-hop", testHop.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Out = &out
	if err := Run(cfg); err != nil {
		t.Fatalf("continuous join stream failed: %v\n%s", err, out.String())
	}
	lines := windowLineRe.FindAllStringSubmatch(out.String(), -1)
	if len(lines) != 3 {
		t.Fatalf("got %d window lines, want 3:\n%s", len(lines), out.String())
	}
	var pops []int
	for i, m := range lines {
		if m[11] != "true" {
			t.Fatalf("window %d judged invalid:\n%s", i, out.String())
		}
		pop, _ := strconv.Atoi(m[7])
		pops = append(pops, pop)
	}
	want := []int{58, 59, 60}
	for i, p := range pops {
		if p != want[i] {
			t.Fatalf("window populations = %v, want %v (arrivals must grow them):\n%s",
				pops, want, out.String())
		}
	}
}
