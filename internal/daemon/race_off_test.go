//go:build !race

package daemon

import "time"

// testHop is the wall-clock δ used by these tests; see race_on_test.go.
const testHop = 5 * time.Millisecond
