//go:build !race

package daemon

import "time"

// testHop is the wall-clock δ used by these tests; see race_on_test.go.
const testHop = 5 * time.Millisecond

// raceEnabled gates tests whose fleet size is sized for native execution
// (the 2K-host scale smoke): under the race detector they would take
// minutes, not seconds.
const raceEnabled = false
