package ring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJoinLeave(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := New(rng)
	if r.Size() != 0 {
		t.Fatal("fresh ring not empty")
	}
	id := r.Join()
	if r.Size() != 1 {
		t.Fatal("join did not grow ring")
	}
	if !r.Leave(id) {
		t.Fatal("leave of present host failed")
	}
	if r.Leave(id) {
		t.Fatal("leave of absent host succeeded")
	}
	if r.Size() != 0 {
		t.Fatal("ring not empty after leave")
	}
}

func TestSegmentsPartitionUnitCircle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewWithHosts(500, rng)
	var total float64
	for _, id := range r.SampleHosts(500) {
		seg, err := r.SegmentLength(id)
		if err != nil {
			t.Fatal(err)
		}
		if seg <= 0 || seg > 1 {
			t.Fatalf("segment length %v out of (0,1]", seg)
		}
		total += seg
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("segments sum to %v, want 1", total)
	}
}

func TestSingleHostOwnsWholeRing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := New(rng)
	id := r.Join()
	seg, err := r.SegmentLength(id)
	if err != nil || seg != 1 {
		t.Fatalf("single host segment = %v (err %v), want 1", seg, err)
	}
}

func TestSuccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := New(rng)
	if _, err := r.Successor(0.5); err == nil {
		t.Fatal("successor on empty ring should error")
	}
	r.Join()
	r.Join()
	r.Join()
	ids := r.SampleHosts(3)
	for _, id := range ids {
		s, err := r.Successor(id)
		if err != nil || s != id {
			t.Fatalf("successor of own id should be itself: %v vs %v", s, id)
		}
	}
	// A point past the largest id wraps to the smallest.
	min, max := 1.0, 0.0
	for _, id := range ids {
		if id < min {
			min = id
		}
		if id > max {
			max = id
		}
	}
	s, err := r.Successor(max + (1-max)/2)
	if err != nil || s != min {
		t.Fatalf("wrap-around successor = %v, want %v", s, min)
	}
}

func TestEstimateAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 5000
	r := NewWithHosts(n, rng)
	// s/X_s concentrates as s grows. Average a few estimates at s=500.
	var sum float64
	const trials = 10
	for i := 0; i < trials; i++ {
		est, err := r.EstimateSize(500)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	mean := sum / trials
	if mean < n*0.8 || mean > n*1.2 {
		t.Fatalf("mean estimate %.0f, want ≈ %d", mean, n)
	}
}

func TestEstimateTracksChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := NewWithHosts(4000, rng)
	// Half the hosts leave (uniformly at random, assumption 3).
	for i := 0; i < 2000; i++ {
		if _, ok := r.LeaveRandom(); !ok {
			t.Fatal("leave failed")
		}
	}
	var sum float64
	const trials = 10
	for i := 0; i < trials; i++ {
		est, err := r.EstimateSize(400)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	mean := sum / trials
	if mean < 2000*0.75 || mean > 2000*1.25 {
		t.Fatalf("post-churn mean estimate %.0f, want ≈ 2000", mean)
	}
}

func TestEstimateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := New(rng)
	if _, err := r.EstimateSize(5); err == nil {
		t.Fatal("estimate on empty ring should error")
	}
	if _, ok := r.LeaveRandom(); ok {
		t.Fatal("LeaveRandom on empty ring should fail")
	}
}

func TestSegmentLengthUnknownHost(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := NewWithHosts(10, rng)
	if _, err := r.SegmentLength(2.0); err == nil {
		t.Fatal("segment of absent id should error")
	}
}

// Property: after arbitrary join/leave sequences, segments always
// partition the circle.
func TestQuickPartitionInvariant(t *testing.T) {
	f := func(seed int64, ops []bool) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(rng)
		for _, join := range ops {
			if join || r.Size() == 0 {
				r.Join()
			} else {
				r.LeaveRandom()
			}
		}
		if r.Size() == 0 {
			return true
		}
		var total float64
		for _, id := range r.SampleHosts(r.Size()) {
			seg, err := r.SegmentLength(id)
			if err != nil {
				return false
			}
			total += seg
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleHostsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewWithHosts(5, rng)
	if got := r.SampleHosts(10); len(got) != 5 {
		t.Fatalf("oversized sample returned %d hosts", len(got))
	}
	if got := r.SampleHosts(3); len(got) != 3 {
		t.Fatalf("sample returned %d hosts, want 3", len(got))
	}
}
