// Package ring implements the protocol-specific network-size estimator of
// §5.4: some P2P protocols (Chord, Viceroy, Pastry [23,34,36]) place hosts
// at random identifiers on a unit-length ring, each host managing the
// segment between its own identifier and its immediate clockwise
// predecessor. If X_s is the total segment length managed by a uniform
// sample of s hosts, then s/X_s is an unbiased estimator of |H|.
//
// The package provides the ring overlay itself (join/leave with correct
// segment reassignment, successor lookup) and the estimator, together
// with the §5.4 validity assumptions encoded as options for tests to
// violate deliberately.
package ring

import (
	"fmt"
	"math/rand"
	"sort"
)

// Ring is a unit-circumference identifier ring. Host identifiers are
// float64 points in [0, 1); each host manages the segment from its
// predecessor (exclusive) to itself (inclusive), wrapping at 1.
type Ring struct {
	rng *rand.Rand
	ids []float64 // sorted
}

// New creates an empty ring whose joins draw identifiers from rng.
func New(rng *rand.Rand) *Ring { return &Ring{rng: rng} }

// NewWithHosts creates a ring and joins n hosts.
func NewWithHosts(n int, rng *rand.Rand) *Ring {
	r := New(rng)
	for i := 0; i < n; i++ {
		r.Join()
	}
	return r
}

// Size returns the number of hosts on the ring.
func (r *Ring) Size() int { return len(r.ids) }

// Join places a new host at a uniformly random identifier and returns it.
func (r *Ring) Join() float64 {
	id := r.rng.Float64()
	i := sort.SearchFloat64s(r.ids, id)
	r.ids = append(r.ids, 0)
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = id
	return id
}

// Leave removes the host with the given identifier; it reports whether
// the host existed. Its segment is absorbed by its successor, exactly as
// in Chord-style protocols.
func (r *Ring) Leave(id float64) bool {
	i := sort.SearchFloat64s(r.ids, id)
	if i >= len(r.ids) || r.ids[i] != id {
		return false
	}
	r.ids = append(r.ids[:i], r.ids[i+1:]...)
	return true
}

// LeaveRandom removes a uniformly random host and returns its identifier;
// ok is false on an empty ring.
func (r *Ring) LeaveRandom() (id float64, ok bool) {
	if len(r.ids) == 0 {
		return 0, false
	}
	i := r.rng.Intn(len(r.ids))
	id = r.ids[i]
	r.ids = append(r.ids[:i], r.ids[i+1:]...)
	return id, true
}

// Successor returns the host managing point p: the first identifier
// clockwise at or after p (wrapping to the smallest identifier).
func (r *Ring) Successor(p float64) (float64, error) {
	if len(r.ids) == 0 {
		return 0, fmt.Errorf("ring: empty")
	}
	i := sort.SearchFloat64s(r.ids, p)
	if i == len(r.ids) {
		i = 0
	}
	return r.ids[i], nil
}

// SegmentLength returns the length of the segment managed by the host
// with identifier id (distance back to its predecessor).
func (r *Ring) SegmentLength(id float64) (float64, error) {
	i := sort.SearchFloat64s(r.ids, id)
	if i >= len(r.ids) || r.ids[i] != id {
		return 0, fmt.Errorf("ring: host %v not present", id)
	}
	if len(r.ids) == 1 {
		return 1, nil
	}
	prev := i - 1
	if prev < 0 {
		prev = len(r.ids) - 1
	}
	seg := r.ids[i] - r.ids[prev]
	if seg <= 0 {
		seg += 1
	}
	return seg, nil
}

// SampleHosts draws s distinct hosts uniformly at random (all hosts if s
// exceeds the ring size).
func (r *Ring) SampleHosts(s int) []float64 {
	n := len(r.ids)
	if s > n {
		s = n
	}
	perm := r.rng.Perm(n)[:s]
	out := make([]float64, s)
	for i, idx := range perm {
		out[i] = r.ids[idx]
	}
	return out
}

// EstimateSize implements the §5.4 estimator: draw s hosts, sum their
// segment lengths X_s and return s/X_s. The estimate satisfies
// Approximate Single-Site Validity under the §5.4 assumptions
// (instantaneous sampling, identical leave probability across hosts).
func (r *Ring) EstimateSize(s int) (float64, error) {
	if len(r.ids) == 0 {
		return 0, fmt.Errorf("ring: empty")
	}
	hosts := r.SampleHosts(s)
	var xs float64
	for _, h := range hosts {
		seg, err := r.SegmentLength(h)
		if err != nil {
			return 0, err
		}
		xs += seg
	}
	if xs == 0 {
		return 0, fmt.Errorf("ring: zero total segment length")
	}
	return float64(len(hosts)) / xs, nil
}
