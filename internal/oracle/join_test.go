package oracle

import (
	"testing"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
)

// TestJoinGrowsHU is the membership timeline's headline property: a host
// joining mid-query pushes H_U past the initial host set while staying
// out of H_C.
func TestJoinGrowsHU(t *testing.T) {
	g, vals := chain()
	tl := churn.Timeline{{H: 4, T: 30, Kind: churn.Join}} // late joiner: absent on [0, 30)
	b := Compute(g, vals, 0, tl, 100, agg.Count)

	initial := 0
	ix := tl.Index()
	for h := 0; h < g.Len(); h++ {
		if ix.InitialMember(graph.HostID(h)) {
			initial++
		}
	}
	if initial != 4 {
		t.Fatalf("initial host set = %d, want 4 (host 4 arrives late)", initial)
	}
	if len(b.HU) <= initial {
		t.Fatalf("|H_U| = %d not above the initial host set %d; joins must grow it", len(b.HU), initial)
	}
	if len(b.HU) != 5 {
		t.Fatalf("|H_U| = %d, want 5 (everyone is a member at some instant)", len(b.HU))
	}
	// The joiner was not present throughout, so it cannot be in H_C.
	if len(b.HC) != 4 {
		t.Fatalf("|H_C| = %d, want 4 (the joiner has no stable path over the whole interval)", len(b.HC))
	}
	if b.LowerValue != 4 || b.UpperValue != 5 {
		t.Fatalf("count bounds = %v..%v, want 4..5", b.LowerValue, b.UpperValue)
	}
}

// TestJoinAfterDeadlineOutsideHU: a host arriving after the query ends
// was never a member of its interval.
func TestJoinAfterDeadlineOutsideHU(t *testing.T) {
	g, vals := chain()
	tl := churn.Timeline{{H: 4, T: 150, Kind: churn.Join}}
	b := Compute(g, vals, 0, tl, 100, agg.Count)
	if len(b.HU) != 4 {
		t.Fatalf("|H_U| = %d, want 4 (the join falls past the deadline)", len(b.HU))
	}
	if len(b.HC) != 4 {
		t.Fatalf("|H_C| = %d, want 4", len(b.HC))
	}
}

// TestMultiSessionHostCountedOnce: a host that leaves, rejoins, and
// leaves again inside the interval is in H_U exactly once and never in
// H_C — brief absences break the stable path no matter how the sessions
// line up.
func TestMultiSessionHostCountedOnce(t *testing.T) {
	g, vals := chain()
	tl := churn.Timeline{
		{H: 2, T: 10},
		{H: 2, T: 20, Kind: churn.Join},
		{H: 2, T: 60},
	}
	b := Compute(g, vals, 0, tl, 100, agg.Count)
	seen := 0
	for _, h := range b.HU {
		if h == 2 {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("multi-session host appears %d times in H_U, want exactly once", seen)
	}
	if len(b.HU) != 5 {
		t.Fatalf("|H_U| = %d, want 5", len(b.HU))
	}
	// H_C: host 2's absences cut the chain for 3 and 4 too.
	if len(b.HC) != 2 {
		t.Fatalf("|H_C| = %d, want 2 (hosts 0,1)", len(b.HC))
	}
}

// TestComputeIntervalPopulationGrows: windows over a growing population
// show H_U growing, and a mid-window joiner counts toward that window's
// H_U without entering its H_C.
func TestComputeIntervalPopulationGrows(t *testing.T) {
	g, vals := chain()
	// Hosts 3 and 4 arrive during window 1 ([24, 48]); host 4 later
	// leaves in window 2.
	tl := churn.Timeline{
		{H: 3, T: 30, Kind: churn.Join},
		{H: 4, T: 40, Kind: churn.Join},
		{H: 4, T: 60},
	}
	ix := tl.Index()
	b0 := ComputeInterval(g, vals, 0, ix, 0, 24, agg.Count)
	b1 := ComputeInterval(g, vals, 0, ix, 24, 48, agg.Count)
	b2 := ComputeInterval(g, vals, 0, ix, 48, 72, agg.Count)
	if len(b0.HU) != 3 {
		t.Fatalf("window 0 |H_U| = %d, want 3 (joiners still absent)", len(b0.HU))
	}
	if len(b1.HU) != 5 {
		t.Fatalf("window 1 |H_U| = %d, want 5 (both arrivals fall inside it)", len(b1.HU))
	}
	if len(b1.HU) <= len(b0.HU) {
		t.Fatal("window population did not grow across an arrival")
	}
	if len(b1.HC) != 3 {
		t.Fatalf("window 1 |H_C| = %d, want 3 (mid-window joiners are not stable)", len(b1.HC))
	}
	// Window 2: host 3 is now a full member (joined before, never
	// leaves); host 4 leaves mid-window — in H_U, not H_C.
	if len(b2.HU) != 5 {
		t.Fatalf("window 2 |H_U| = %d, want 5", len(b2.HU))
	}
	if len(b2.HC) != 4 {
		t.Fatalf("window 2 |H_C| = %d, want 4 (host 4 departs mid-window)", len(b2.HC))
	}
}

// TestIntervalRejoinWithinWindow: a host absent when the window opens
// but rejoining inside it belongs to that window's H_U (it is a member
// at some instant), not its H_C.
func TestIntervalRejoinWithinWindow(t *testing.T) {
	g, vals := chain()
	tl := churn.Timeline{
		{H: 4, T: 10},
		{H: 4, T: 30, Kind: churn.Join},
	}
	ix := tl.Index()
	b := ComputeInterval(g, vals, 0, ix, 24, 48, agg.Count)
	if len(b.HU) != 5 {
		t.Fatalf("|H_U| = %d, want 5 (host 4 rejoins mid-window)", len(b.HU))
	}
	if len(b.HC) != 4 {
		t.Fatalf("|H_C| = %d, want 4", len(b.HC))
	}
}
