package oracle

import (
	"math"
	"testing"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
)

// chain builds 0-1-2-3-4 with values 1,2,3,4,5.
func chain() (*graph.Graph, []int64) {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID(i+1))
	}
	return g, []int64{1, 2, 3, 4, 5}
}

func TestNoChurnBoundsCoincide(t *testing.T) {
	g, vals := chain()
	b := Compute(g, vals, 0, nil, 100, agg.Count)
	if len(b.HC) != 5 || len(b.HU) != 5 {
		t.Fatalf("|HC|=%d |HU|=%d, want 5/5", len(b.HC), len(b.HU))
	}
	if b.LowerValue != 5 || b.UpperValue != 5 {
		t.Fatalf("bounds = %v..%v, want 5..5", b.LowerValue, b.UpperValue)
	}
}

func TestFailureCutsHC(t *testing.T) {
	g, vals := chain()
	// Host 2 fails at t=10 < T: hosts 3,4 lose their stable path.
	sched := churn.Schedule{{H: 2, T: 10}}
	b := Compute(g, vals, 0, sched, 100, agg.Count)
	if len(b.HC) != 2 {
		t.Fatalf("|HC| = %d, want 2 (hosts 0,1)", len(b.HC))
	}
	if len(b.HU) != 5 {
		t.Fatalf("|HU| = %d, want 5", len(b.HU))
	}
	if b.LowerValue != 2 || b.UpperValue != 5 {
		t.Fatalf("count bounds = %v..%v, want 2..5", b.LowerValue, b.UpperValue)
	}
}

func TestFailureAfterDeadlineDoesNotCount(t *testing.T) {
	g, vals := chain()
	sched := churn.Schedule{{H: 2, T: 150}}
	b := Compute(g, vals, 0, sched, 100, agg.Count)
	if len(b.HC) != 5 {
		t.Fatalf("|HC| = %d, want 5 (failure after T)", len(b.HC))
	}
}

func TestFailureExactlyAtDeadlineCounts(t *testing.T) {
	g, vals := chain()
	// Fails at exactly T: not alive during the entire closed interval.
	sched := churn.Schedule{{H: 4, T: 100}}
	b := Compute(g, vals, 0, sched, 100, agg.Count)
	if len(b.HC) != 4 {
		t.Fatalf("|HC| = %d, want 4", len(b.HC))
	}
}

func TestQueryHostFailureEmptiesHC(t *testing.T) {
	g, vals := chain()
	sched := churn.Schedule{{H: 0, T: 5}}
	b := Compute(g, vals, 0, sched, 100, agg.Count)
	if len(b.HC) != 0 {
		t.Fatalf("|HC| = %d, want 0 when hq fails", len(b.HC))
	}
	if b.LowerValue != 0 {
		t.Fatalf("lower bound = %v, want 0", b.LowerValue)
	}
}

func TestSumAndMinMaxBounds(t *testing.T) {
	g, vals := chain()
	sched := churn.Schedule{{H: 2, T: 10}}
	sum := Compute(g, vals, 0, sched, 100, agg.Sum)
	if sum.LowerValue != 3 || sum.UpperValue != 15 {
		t.Fatalf("sum bounds = %v..%v, want 3..15", sum.LowerValue, sum.UpperValue)
	}
	max := Compute(g, vals, 0, sched, 100, agg.Max)
	if max.LowerValue != 2 || max.UpperValue != 5 {
		t.Fatalf("max bounds = %v..%v, want 2..5", max.LowerValue, max.UpperValue)
	}
	min := Compute(g, vals, 0, sched, 100, agg.Min)
	// q(HC)=1, q(HU)=1: host 0 has the global min and is in HC.
	if min.LowerValue != 1 || min.UpperValue != 1 {
		t.Fatalf("min bounds = %v..%v", min.LowerValue, min.UpperValue)
	}
}

func TestValid(t *testing.T) {
	g, vals := chain()
	sched := churn.Schedule{{H: 2, T: 10}}
	b := Compute(g, vals, 0, sched, 100, agg.Count)
	for _, v := range []float64{2, 3, 5} {
		if !b.Valid(v, 0) {
			t.Errorf("count %v should be valid in [2,5]", v)
		}
	}
	for _, v := range []float64{1, 6} {
		if b.Valid(v, 0) {
			t.Errorf("count %v should be invalid", v)
		}
	}
	if !b.Valid(5.4, 0.5) {
		t.Error("eps slack not applied")
	}
}

func TestValidMinOrientation(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	vals := []int64{10, 5, 1}
	// Host 1 fails: HC = {0}, q_min(HC)=10; HU q_min = 1.
	sched := churn.Schedule{{H: 1, T: 1}}
	b := Compute(g, vals, 0, sched, 100, agg.Min)
	if b.LowerValue != 10 || b.UpperValue != 1 {
		t.Fatalf("min bounds = %v..%v, want 10..1", b.LowerValue, b.UpperValue)
	}
	// Any value between 1 and 10 corresponds to some valid H.
	for _, v := range []float64{1, 5, 10} {
		if !b.Valid(v, 0) {
			t.Errorf("min %v should be valid", v)
		}
	}
	if b.Valid(0.5, 0) || b.Valid(11, 0) {
		t.Error("out-of-band min accepted")
	}
}

func TestValidFactor(t *testing.T) {
	g, vals := chain()
	sched := churn.Schedule{{H: 2, T: 10}}
	b := Compute(g, vals, 0, sched, 100, agg.Count) // [2,5]
	if !b.ValidFactor(7.5, 2) {                     // ≤ 5·2
		t.Error("7.5 within factor 2 of upper bound 5")
	}
	if b.ValidFactor(11, 2) {
		t.Error("11 outside factor 2 of [2,5]")
	}
	if !b.ValidFactor(1.2, 2) { // ≥ 2/2
		t.Error("1.2 within factor 2 of lower bound 2")
	}
	if b.ValidFactor(0.5, 2) {
		t.Error("0.5 outside factor 2")
	}
	// f < 1 clamps to exact.
	if !b.ValidFactor(3, 0.1) {
		t.Error("clamped factor should behave like exact bounds")
	}
}

func TestMetrics(t *testing.T) {
	if Completeness(5, 10) != 0.5 || Completeness(0, 0) != 0 {
		t.Fatal("completeness wrong")
	}
	if math.Abs(RelativeError(110, 100)-0.1) > 1e-12 {
		t.Fatalf("relative error = %v", RelativeError(110, 100))
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Fatal("relative error vs zero truth should be +Inf")
	}
	if RelativeError(0, 0) != 0 {
		t.Fatal("0/0 relative error should be 0")
	}
}

func TestComputePanicsOnLengthMismatch(t *testing.T) {
	g, _ := chain()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on value length mismatch")
		}
	}()
	Compute(g, []int64{1}, 0, nil, 10, agg.Count)
}

func TestEarliestFailureWins(t *testing.T) {
	g, vals := chain()
	// Same host with two schedule entries: the earlier one governs.
	sched := churn.Schedule{{H: 2, T: 200}, {H: 2, T: 10}}
	b := Compute(g, vals, 0, sched, 100, agg.Count)
	if len(b.HC) != 2 {
		t.Fatalf("|HC| = %d, want 2 (earliest failure governs)", len(b.HC))
	}
}
