// Package oracle implements the paper's ORACLE (§6.2): an omniscient
// observer of all events in G that computes the Single-Site Validity
// bounds for a query issued at h_q over the interval [0, T]:
//
//   - H_U = ∪_t H_t, the hosts that are members at some instant of the
//     interval: every initial member (including one that departs the very
//     first tick — it was present at the starting instant) plus every
//     late joiner whose arrival falls inside the interval, so with joins
//     modeled H_U can exceed the initial host set;
//   - H_C, the hosts with at least one stable path to h_q: a path all of
//     whose hosts (and edges) stay alive during the entire interval
//     (§4.1). Continuous presence is required — a host that leaves and
//     rejoins mid-interval drops out of H_C no matter how brief the
//     absence, exactly like a late joiner.
//
// Because link failures are not modeled separately, a stable path is
// exactly a path inside the subgraph induced by hosts present throughout
// [0, T]; H_C is therefore the connected component of h_q in that
// subgraph (provided h_q itself is, which experiments guarantee by
// protecting it from churn).
//
// The oracle also evaluates the q(H_C) and q(H_U) bounds for any aggregate
// and provides the §2.4 post-hoc validity metrics (Completeness, Relative
// Error) that best-effort work used before Single-Site Validity existed.
package oracle

import (
	"fmt"
	"math"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/sim"
)

// Bounds captures the oracle's view of one query interval.
type Bounds struct {
	// HC is the lower-bounding host set (stable-path reachable).
	HC []graph.HostID
	// HU is the upper-bounding host set (alive at some instant).
	HU []graph.HostID
	// LowerValue and UpperValue are q(H_C) and q(H_U). For monotone
	// aggregates (count, sum over non-negative values, max) Lower ≤ Upper;
	// for min the inequality flips and for avg neither bounds the other —
	// Valid() handles each kind.
	LowerValue float64
	UpperValue float64
	// Kind is the aggregate the values were computed for.
	Kind agg.Kind
}

// Compute derives the bounds for a query issued at hq at time 0 with
// deadline T, given the initial topology g, per-host values, and the
// membership timeline. Hosts whose every membership transition falls
// strictly after T count as present for the interval.
//
// Times are ticks on the query's own clock: under the engine's per-query
// churn, every concurrent query hands its own timeline here and gets its
// own H_C/H_U sets back — there is no shared clock to rebase onto.
func Compute(g *graph.Graph, values []int64, hq graph.HostID, tl churn.Timeline, T sim.Time, kind agg.Kind) Bounds {
	if len(values) != g.Len() {
		panic(fmt.Sprintf("oracle: %d values for %d hosts", len(values), g.Len()))
	}
	ix := tl.Index()
	survives := func(h graph.HostID) bool { return ix.Survives(h, T) }
	// H_U: a member at some instant of [0, T] — every initial host
	// qualifies (present at the starting instant, even one departing at
	// tick 0), and so does every late joiner arriving by the deadline.
	// ArriveTime is 0 for initial members, so one predicate covers both.
	hu := make([]graph.HostID, 0, g.Len())
	for h := 0; h < g.Len(); h++ {
		if ix.ArriveTime(graph.HostID(h)) <= T {
			hu = append(hu, graph.HostID(h))
		}
	}
	// H_C: component of hq among hosts present throughout the interval.
	var hc []graph.HostID
	if survives(hq) {
		hc = g.Component(hq, survives)
	}
	b := Bounds{HC: hc, HU: hu, Kind: kind}
	b.LowerValue = agg.Exact(kind, gather(values, hc))
	b.UpperValue = agg.Exact(kind, gather(values, hu))
	return b
}

// ComputeInterval derives the bounds of one window [start, end] of a
// continuous query (§4.2), given the stream's absolute membership
// timeline as an Index. H_U is the set of hosts that are members at some
// instant of the window — everyone alive when it opens plus everyone
// arriving before it closes, so a window over a growing population shows
// H_U growing — and H_C is the connected component of hq among hosts
// present throughout the window. Every window of a stream is judged
// against its own pair, which is what makes the answer sequence
// Continuous Single-Site Valid rather than a one-time bound stretched
// over a churning interval.
func ComputeInterval(g *graph.Graph, values []int64, hq graph.HostID, ix *churn.Index, start, end sim.Time, kind agg.Kind) Bounds {
	if len(values) != g.Len() {
		panic(fmt.Sprintf("oracle: %d values for %d hosts", len(values), g.Len()))
	}
	survives := func(h graph.HostID) bool { return ix.PresentThroughout(h, start, end) }
	hu := make([]graph.HostID, 0, g.Len())
	for h := 0; h < g.Len(); h++ {
		if ix.AliveDuring(graph.HostID(h), start, end) {
			hu = append(hu, graph.HostID(h))
		}
	}
	var hc []graph.HostID
	if survives(hq) {
		hc = g.Component(hq, survives)
	}
	b := Bounds{HC: hc, HU: hu, Kind: kind}
	b.LowerValue = agg.Exact(kind, gather(values, hc))
	b.UpperValue = agg.Exact(kind, gather(values, hu))
	return b
}

// FMSlack is the multiplicative tolerance granted to FM-estimated results
// when judging them against the bounds: 1 + 4·(0.78/√c), four standard
// errors of the Flajolet–Martin estimator at c repetitions. Min/max are
// exact and get no slack.
func FMSlack(kind agg.Kind, vectors int) float64 {
	if !kind.DuplicateSensitive() {
		return 1
	}
	return 1 + 4*0.78/math.Sqrt(float64(vectors))
}

func gather(values []int64, hosts []graph.HostID) []int64 {
	out := make([]int64, len(hosts))
	for i, h := range hosts {
		out[i] = values[h]
	}
	return out
}

// Valid reports whether a reported result v satisfies Single-Site
// Validity's value-level consequence: v = q(H) for some H_C ⊆ H ⊆ H_U.
// For monotone aggregates this is exactly Lower ≤ v ≤ Upper (count, sum of
// non-negative values, and max grow with H; min shrinks). For avg any
// value between the min and max attribute value of H_U could be q(H) of
// some valid H, so the check is necessarily looser; callers doing
// sketch-level verification should use SketchValid instead.
//
// eps loosens the comparison for estimate-based results (count/sum/avg
// report FM estimates, which Theorem 5.3 only bounds within a factor).
func (b Bounds) Valid(v, eps float64) bool {
	lo, hi := b.LowerValue, b.UpperValue
	if b.Kind == agg.Min {
		lo, hi = hi, lo
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return v >= lo-eps && v <= hi+eps
}

// ValidFactor is Valid with multiplicative slack: accepts v within
// [Lower/f, Upper·f] (for the monotone orientation). Used for FM-estimate
// results where Theorem 5.2 bounds error by a factor.
func (b Bounds) ValidFactor(v, f float64) bool {
	if f < 1 {
		f = 1
	}
	lo, hi := b.LowerValue, b.UpperValue
	if b.Kind == agg.Min {
		lo, hi = hi, lo
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return v >= lo/f && v <= hi*f
}

// Completeness is the §2.4 metric: the fraction of hosts in the network
// whose data contributed to the result, given the set that actually
// contributed.
func Completeness(contributed, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(contributed) / float64(total)
}

// RelativeError is the §2.4 metric |v̂/v − 1|.
func RelativeError(reported, truth float64) float64 {
	if truth == 0 {
		if reported == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(reported/truth - 1)
}
