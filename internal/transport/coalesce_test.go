package transport

import (
	"math/rand"
	"testing"
	"time"

	"validity/internal/agg"
	"validity/internal/obs"
	"validity/internal/wire"
)

// TestTCPWriteCoalescing checks the tentpole property of the writer
// goroutines: a burst of sends to one peer is packed into far fewer
// connection writes, and the batching metrics account for every frame.
func TestTCPWriteCoalescing(t *testing.T) {
	ports := freeAddrs(t, 2)
	addrs := []string{ports[0], ports[1]}
	a, b := NewTCP(addrs), NewTCP(addrs)
	reg := obs.NewRegistry()
	a.Obs = reg
	a.FlushWindow = 10 * time.Millisecond
	var ca, cb collector
	if err := a.Bind(0, ca.recv); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(1, cb.recv); err != nil {
		t.Fatal(err)
	}
	if err := a.Open(); err != nil {
		t.Fatal(err)
	}
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })

	const n = 48
	for i := 0; i < n; i++ {
		if err := a.Send(Message{From: 0, To: 1, Chain: i, Payload: "burst"}); err != nil {
			t.Fatal(err)
		}
	}
	cb.waitFor(t, n, 5*time.Second)

	flushes := reg.Counter("transport_batch_flushes_total", "").Value()
	framesOut := reg.Counter("transport_frames_out_total", "", "peer="+ports[1]).Value()
	dropped := reg.Counter("transport_frames_dropped_total", "").Value()
	hist := reg.Histogram("transport_frames_per_write", "", batchBuckets)
	if framesOut != n {
		t.Fatalf("frames_out = %d, want %d", framesOut, n)
	}
	if dropped != 0 {
		t.Fatalf("%d frames dropped", dropped)
	}
	if flushes == 0 || flushes >= n/2 {
		t.Fatalf("flushes = %d for %d frames: writes are not coalescing", flushes, n)
	}
	if hist.Count() != flushes {
		t.Fatalf("frames_per_write observations = %d, flushes = %d", hist.Count(), flushes)
	}
	if int64(hist.Sum()) != n {
		t.Fatalf("frames_per_write sum = %.0f, want %d frames", hist.Sum(), n)
	}
}

// TestTCPUnknownPeerCounterFallback is the regression test for the
// nil-counter branch: the per-peer outbound counters are built once at
// Open, and an address that looked local then (another host sharing this
// process's address but bound elsewhere) has no per-peer series — its
// frames must land on the peer=unknown pair instead of a nil counter.
func TestTCPUnknownPeerCounterFallback(t *testing.T) {
	ports := freeAddrs(t, 1)
	// Hosts 0 and 1 share one address; only host 0 is bound here, so a
	// send to host 1 goes over the wire to an address initMetrics skipped
	// as local.
	addrs := []string{ports[0], ports[0]}
	tr := NewTCP(addrs)
	reg := obs.NewRegistry()
	tr.Obs = reg
	var c0 collector
	if err := tr.Bind(0, c0.recv); err != nil {
		t.Fatal(err)
	}
	if err := tr.Open(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })

	if err := tr.Send(Message{From: 0, To: 1, Chain: 1, Payload: "stray"}); err != nil {
		t.Fatal(err)
	}
	unknownFrames := reg.Counter("transport_frames_out_total", "", "peer=unknown")
	unknownBytes := reg.Counter("transport_bytes_out_total", "", "peer=unknown")
	deadline := time.Now().Add(5 * time.Second)
	for unknownFrames.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := unknownFrames.Value(); got != 1 {
		t.Fatalf("peer=unknown frames = %d, want 1", got)
	}
	if unknownBytes.Value() <= wire.FrameHeaderSize {
		t.Fatalf("peer=unknown bytes = %d, want a full frame", unknownBytes.Value())
	}
	if dropped := reg.Counter("transport_frames_dropped_total", "").Value(); dropped != 0 {
		t.Fatalf("%d frames dropped", dropped)
	}
}

// TestWireFrameEncodeAllocFree pins the steady-state encode allocation
// budget at zero: with the payload interface boxed once (as it is inside
// Message) and the destination buffer recycled (as the frame pool does),
// AppendFrame must not allocate even for a sketch-carrying payload.
func TestWireFrameEncodeAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := agg.NewPartial(agg.Count, 3, agg.Params{Vectors: 64, Bits: 32}, rng)
	var payload any = sketchPayload{Round: 9, A: p}
	fr := wire.Frame{From: 1, To: 2, Query: 42, Chain: 1, Payload: payload}
	buf := make([]byte, 0, 2048)
	allocs := testing.AllocsPerRun(500, func() {
		var err error
		buf, err = wire.AppendFrame(buf[:0], fr)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendFrame allocates %.1f times per frame, want 0", allocs)
	}
}
