package transport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"validity/internal/agg"
	"validity/internal/graph"
)

// sketchPayload exercises the wire path the protocols rely on: an
// interface field carrying a partial aggregate, shipped through the codec
// registered in wiretest_test.go.
type sketchPayload struct {
	Round int
	A     agg.Partial
}

// collector accumulates delivered messages.
type collector struct {
	mu   sync.Mutex
	msgs []Message
}

func (c *collector) recv(m Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) waitFor(t *testing.T, n int, timeout time.Duration) []Message {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := append([]Message(nil), c.msgs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d messages (got %d)", n, c.count())
	return nil
}

func TestChannelRoundTrip(t *testing.T) {
	tr := NewChannel(2, 0)
	defer tr.Close()
	var c0, c1 collector
	if err := tr.Bind(0, c0.recv); err != nil {
		t.Fatal(err)
	}
	if err := tr.Bind(1, c1.recv); err != nil {
		t.Fatal(err)
	}
	if err := tr.Open(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{From: 0, To: 1, Chain: 1, Payload: "ping"}); err != nil {
		t.Fatal(err)
	}
	got := c1.waitFor(t, 1, time.Second)
	if got[0].Payload != "ping" || got[0].Chain != 1 {
		t.Fatalf("got %+v", got[0])
	}
	if err := tr.Send(Message{From: 1, To: 0, Chain: 2, Payload: "pong"}); err != nil {
		t.Fatal(err)
	}
	c0.waitFor(t, 1, time.Second)
}

func TestChannelKillDropsDelivery(t *testing.T) {
	tr := NewChannel(2, time.Millisecond)
	defer tr.Close()
	var c1 collector
	if err := tr.Bind(1, c1.recv); err != nil {
		t.Fatal(err)
	}
	tr.Kill(1)
	if tr.Alive(1) {
		t.Fatal("killed host reported alive")
	}
	if err := tr.Send(Message{From: 0, To: 1, Payload: "x"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if n := c1.count(); n != 0 {
		t.Fatalf("killed host received %d messages", n)
	}
}

func TestChannelDoubleBindFails(t *testing.T) {
	tr := NewChannel(1, 0)
	defer tr.Close()
	if err := tr.Bind(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Bind(0, func(Message) {}); err == nil {
		t.Fatal("double bind succeeded")
	}
}

// freeAddrs reserves n distinct loopback addresses by briefly listening on
// port 0 and releasing the listeners.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	ls := make([]net.Listener, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range ls {
		l.Close()
	}
	return addrs
}

// newTCPPair builds two TCP transports emulating two processes: transport
// A serves host 0, transport B serves hosts 1 and 2 (the co-located pair
// exercises the shared-listener path).
func newTCPPair(t *testing.T) (a, b *TCP, ca, cb1, cb2 *collector) {
	t.Helper()
	ports := freeAddrs(t, 2)
	addrs := []string{ports[0], ports[1], ports[1]}
	a, b = NewTCP(addrs), NewTCP(addrs)
	ca, cb1, cb2 = &collector{}, &collector{}, &collector{}
	if err := a.Bind(0, ca.recv); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(1, cb1.recv); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(2, cb2.recv); err != nil {
		t.Fatal(err)
	}
	if err := a.Open(); err != nil {
		t.Fatal(err)
	}
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, ca, cb1, cb2
}

func TestTCPLoopbackRoundTrip(t *testing.T) {
	a, b, ca, cb1, _ := newTCPPair(t)
	// A → B carrying an FM count partial, B → A echoing it back: the
	// partial must survive two wire-frame trips intact.
	rng := rand.New(rand.NewSource(1))
	p := agg.NewPartial(agg.Count, 1, agg.Params{Vectors: 8, Bits: 32}, rng)
	if err := a.Send(Message{From: 0, To: 1, Chain: 1, Payload: sketchPayload{Round: 7, A: p}}); err != nil {
		t.Fatal(err)
	}
	got := cb1.waitFor(t, 1, 2*time.Second)
	pl, ok := got[0].Payload.(sketchPayload)
	if !ok {
		t.Fatalf("payload decoded as %T", got[0].Payload)
	}
	if pl.Round != 7 || !pl.A.Equal(p) {
		t.Fatalf("payload corrupted in transit: %+v", pl)
	}
	if got[0].From != 0 || got[0].To != 1 || got[0].Chain != 1 {
		t.Fatalf("envelope corrupted: %+v", got[0])
	}
	if err := b.Send(Message{From: 1, To: 0, Chain: 2, Payload: pl}); err != nil {
		t.Fatal(err)
	}
	back := ca.waitFor(t, 1, 2*time.Second)
	if !back[0].Payload.(sketchPayload).A.Equal(p) {
		t.Fatal("echoed partial corrupted")
	}
}

func TestTCPLocalShortcut(t *testing.T) {
	_, b, _, _, cb2 := newTCPPair(t)
	// Host 1 and 2 share transport B: delivery must work without a socket.
	if err := b.Send(Message{From: 1, To: 2, Payload: "hi"}); err != nil {
		t.Fatal(err)
	}
	if got := cb2.waitFor(t, 1, time.Second); got[0].Payload != "hi" {
		t.Fatalf("got %+v", got[0])
	}
}

func TestTCPKillMidQuery(t *testing.T) {
	a, b, ca, cb1, _ := newTCPPair(t)
	if err := a.Send(Message{From: 0, To: 1, Payload: "before"}); err != nil {
		t.Fatal(err)
	}
	cb1.waitFor(t, 1, 2*time.Second)

	// Kill host 1 on its own process: in-flight and future frames to it
	// must vanish, and its own sends must be swallowed (§3.2).
	b.Kill(1)
	if b.Alive(1) {
		t.Fatal("killed host reported alive")
	}
	for i := 0; i < 5; i++ {
		if err := a.Send(Message{From: 0, To: 1, Payload: fmt.Sprintf("after-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Send(Message{From: 1, To: 0, Payload: "dead-speech"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if n := cb1.count(); n != 1 {
		t.Fatalf("killed host processed %d messages, want 1 (pre-kill only)", n)
	}
	if n := ca.count(); n != 0 {
		t.Fatalf("killed host's send was delivered (%d messages at A)", n)
	}
	// The surviving co-located host keeps working.
	if err := a.Send(Message{From: 0, To: 2, Payload: "alive"}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPSendUnboundHostDropsSilently(t *testing.T) {
	a, _, _, _, _ := newTCPPair(t)
	// Host 2's address is B; a frame for a host B never bound (here: a
	// wrong ID mapped to B's address) must not wedge the stream. Send to a
	// bound host afterwards still works.
	if err := a.Send(Message{From: 0, To: 2, Payload: "ok"}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPDialRetryToleratesLateListener(t *testing.T) {
	ports := freeAddrs(t, 2)
	addrs := []string{ports[0], ports[1]}
	a := NewTCP(addrs)
	if err := a.Bind(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Open(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var cb collector
	b := NewTCP(addrs)
	if err := b.Bind(1, cb.recv); err != nil {
		t.Fatal(err)
	}

	// Start sending before B listens; the lazy dial must retry until B's
	// listener appears (validityd fleets start in arbitrary order).
	errCh := make(chan error, 1)
	go func() { errCh <- a.Send(Message{From: 0, To: 1, Payload: "early"}) }()
	time.Sleep(200 * time.Millisecond)
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := <-errCh; err != nil {
		t.Fatalf("send did not survive late listener: %v", err)
	}
	cb.waitFor(t, 1, 2*time.Second)
}

// TestTCPDialBackoffSchedule pins the reconnect policy: waits are jittered
// within [cur/2, 3·cur/2), the backoff doubles per failure, and it never
// exceeds the cap. Deterministic rnd stubs make the bounds exact.
func TestTCPDialBackoffSchedule(t *testing.T) {
	const max = 160 * time.Millisecond
	low := func(int64) int64 { return 0 }
	cur := 20 * time.Millisecond
	var wantNext = []time.Duration{40, 80, 160, 160, 160} // ms, capped
	for i, wn := range wantNext {
		wait, next := dialBackoff(cur, max, low)
		if wait != cur/2 {
			t.Fatalf("step %d: zero-jitter wait = %v, want %v", i, wait, cur/2)
		}
		if next != wn*time.Millisecond {
			t.Fatalf("step %d: next backoff = %v, want %v", i, next, wn*time.Millisecond)
		}
		cur = next
	}
	// Maximum jitter: wait approaches 3·cur/2 but never reaches it.
	high := func(n int64) int64 { return n - 1 }
	wait, _ := dialBackoff(40*time.Millisecond, max, high)
	if wait < 40*time.Millisecond || wait >= 60*time.Millisecond {
		t.Fatalf("max-jitter wait %v outside [cur, 3·cur/2)", wait)
	}
	// A zero current backoff falls back to the default instead of spinning.
	wait, next := dialBackoff(0, max, low)
	if wait <= 0 || next <= 0 {
		t.Fatalf("degenerate backoff: wait=%v next=%v", wait, next)
	}
	// Unlimited cap (0) keeps the current backoff: no runaway doubling
	// without an explicit ceiling.
	if _, next := dialBackoff(80*time.Millisecond, 0, low); next != 80*time.Millisecond {
		t.Fatalf("uncapped backoff escalated to %v", next)
	}
	// A starting backoff above the cap is clamped down to it, both for
	// the wait and for every retry after.
	wait, next = dialBackoff(time.Second, max, low)
	if wait != max/2 || next != max {
		t.Fatalf("over-cap backoff not clamped: wait=%v next=%v, want %v/%v", wait, next, max/2, max)
	}
}

// TestTCPSendNotBlockedByWarmBackoff pins the single-flight granularity:
// a Warm retrying a still-booting peer escalates to long backoff sleeps,
// and a Send issued the moment the peer finally appears must dial
// immediately instead of waiting out the warmer's schedule (the
// regression crippled a cold fleet's first query: its convergecast
// replies sat behind a 500ms warm sleep while the 2D̂δ deadline expired).
func TestTCPSendNotBlockedByWarmBackoff(t *testing.T) {
	ports := freeAddrs(t, 2)
	addrs := []string{ports[0], ports[1]}
	a := NewTCP(addrs)
	// Pathological backoff makes the stall unmistakable if Send ever
	// shares the warmer's sleep.
	a.DialBackoff = 2 * time.Second
	a.DialBackoffMax = 2 * time.Second
	a.DialBudget = 30 * time.Second
	if err := a.Bind(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Open(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Warm() // peer 1 is down: the warm dial fails and enters its backoff

	time.Sleep(100 * time.Millisecond) // let the first warm attempt fail

	var cb collector
	b := NewTCP(addrs)
	if err := b.Bind(1, cb.recv); err != nil {
		t.Fatal(err)
	}
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	start := time.Now()
	if err := a.Send(Message{From: 0, To: 1, Payload: "now"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("send stalled %v behind the warmer's backoff sleep", elapsed)
	}
	cb.waitFor(t, 1, 2*time.Second)
}

// TestTCPBackoffSurvivesLongOutage covers a peer that comes up well after
// the first dial wave: the sender's capped exponential backoff must keep
// retrying across several doublings (20→40→80→160…ms) and deliver once
// the listener finally appears.
func TestTCPBackoffSurvivesLongOutage(t *testing.T) {
	ports := freeAddrs(t, 2)
	addrs := []string{ports[0], ports[1]}
	a := NewTCP(addrs)
	if err := a.Bind(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Open(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var cb collector
	b := NewTCP(addrs)
	if err := b.Bind(1, cb.recv); err != nil {
		t.Fatal(err)
	}

	const outage = 600 * time.Millisecond
	start := time.Now()
	errCh := make(chan error, 1)
	go func() { errCh <- a.Send(Message{From: 0, To: 1, Payload: "patient"}) }()
	time.Sleep(outage)
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := <-errCh; err != nil {
		t.Fatalf("send did not survive %v outage: %v", outage, err)
	}
	if elapsed := time.Since(start); elapsed < outage {
		t.Fatalf("send returned after %v, before the peer existed", elapsed)
	}
	cb.waitFor(t, 1, 2*time.Second)
}

func TestGraphHostIDWireStability(t *testing.T) {
	// HostID is int32; the wire must not silently truncate.
	tr := NewChannel(1, 0)
	defer tr.Close()
	var c collector
	if err := tr.Bind(0, c.recv); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{From: graph.HostID(0), To: 0, Payload: int64(1 << 40)}); err != nil {
		t.Fatal(err)
	}
	if got := c.waitFor(t, 1, time.Second); got[0].Payload.(int64) != 1<<40 {
		t.Fatal("payload truncated")
	}
}

// TestTCPWarmPreDials checks the warm-up path: Warm establishes the
// connection to every remote peer in the background, so the first Send
// finds a hot cache instead of paying a dial, and Warm toward a peer that
// never comes up neither blocks the caller nor wedges Close.
func TestTCPWarmPreDials(t *testing.T) {
	a, _, _, cb1, _ := newTCPPair(t)
	a.Warm()
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.mu.Lock()
		_, warmed := a.conns[a.addrs[1]]
		a.mu.Unlock()
		if warmed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Warm never established the peer connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The warmed connection must be the one Send uses (no re-dial, frames
	// flow immediately).
	if err := a.Send(Message{From: 0, To: 1, Payload: "warm"}); err != nil {
		t.Fatal(err)
	}
	if got := cb1.waitFor(t, 1, 2*time.Second); got[0].Payload != "warm" {
		t.Fatalf("payload %v over warmed connection", got[0].Payload)
	}

	// A fleet member that never starts: Warm returns immediately and the
	// background dial gives up quietly once the transport closes.
	ports := freeAddrs(t, 2)
	lone := NewTCP([]string{ports[0], ports[1]})
	lone.DialBudget = 200 * time.Millisecond
	if err := lone.Bind(0, (&collector{}).recv); err != nil {
		t.Fatal(err)
	}
	if err := lone.Open(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	lone.Warm()
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("Warm blocked the caller for %v", elapsed)
	}
	if err := lone.Close(); err != nil {
		t.Fatal(err)
	}
}
