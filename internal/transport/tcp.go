package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"validity/internal/graph"
	"validity/internal/obs"
	"validity/internal/wire"
)

// maxFrame bounds one wire frame. Protocol messages are a few hundred
// bytes (an FM partial is vectors×8 bytes plus a small envelope); anything
// near this limit is a corrupt or hostile stream.
const maxFrame = 1 << 24

// defaultMaxBatch caps the frames one writer packs into a single
// conn.Write: enough to amortize the syscall across a busy connection's
// backlog, small enough that one flush never buffers unbounded memory.
const defaultMaxBatch = 128

// TCP is the cross-process Transport: hosts are assigned to addresses, and
// every process serves the hosts whose address it listens on. Frames are
// internal/wire version-2 binary frames — a 4-byte big-endian length
// prefix followed by a fixed 24-byte header (magic, version, payload tag,
// from, to, query, chain) and the payload body of the tag's registered
// codec. The QueryID in every header lets one long-running fleet carry
// many concurrent queries over the same connections. Encoding appends
// into sync.Pool-recycled buffers and decoding is a tag-table lookup, so
// a steady-state send performs no reflection and no allocation; payload
// types must be registered with wire.RegisterPayload (internal/protocol
// registers the protocol messages in package init, test harnesses use
// tags ≥ wire.TagReservedBase).
//
// Sends do not write the socket directly: each connection has a writer
// goroutine draining a per-peer queue, packing every frame queued at that
// moment into one buffered write. FlushWindow > 0 additionally lets the
// writer linger that long for stragglers before flushing — batching
// compounds under -concurrency, since one connection already multiplexes
// many queries' traffic. The default FlushWindow of 0 batches only
// opportunistically (whatever queued while the previous write was in
// flight), adding no latency.
//
// Hosts that share an address short-circuit in process without touching a
// socket, which is what makes sharding |H| hosts across a handful of OS
// processes cheap. Outbound connections are dialed lazily with retry, so
// a fleet of validityd processes can start in any order.
type TCP struct {
	addrs []string // host → advertised address

	// DialTimeout bounds one connection attempt; DialBudget bounds the
	// total time Send spends retrying a dial (peers may still be starting).
	// WriteTimeout bounds one batch write, so a stalled peer (full kernel
	// buffer, blackholed link) cannot freeze the writer goroutine — the
	// write errors, the connection drops, and the writer redials and
	// retries the batch once.
	DialTimeout  time.Duration
	DialBudget   time.Duration
	WriteTimeout time.Duration
	// Failed dials retry with capped exponential backoff: the wait starts
	// at DialBackoff, doubles per failure up to DialBackoffMax, and each
	// sleep is jittered ±50% so a fleet booting in lockstep does not
	// hammer a slow peer in synchronized waves.
	DialBackoff    time.Duration
	DialBackoffMax time.Duration

	// FlushWindow is how long a peer's writer lingers for more frames
	// after picking up a batch before writing it out. Zero (the default)
	// flushes immediately, coalescing only what queued while the previous
	// write was in flight. A positive window trades that much added
	// per-hop latency for fewer, larger writes, so it must stay well under
	// half the engine's hop bound δ — the daemon's -flush-window flag
	// enforces this. Set before Open.
	FlushWindow time.Duration
	// MaxBatch caps frames per write (0 = 128). Set before Open.
	MaxBatch int

	// Obs, when set before Open, receives the transport's wire metrics:
	// dial attempts and backoff sleeps, inbound frames/bytes, outbound
	// frames/bytes per peer address, and the write-coalescing figures
	// (batch flushes, frames-per-write distribution, frames dropped on
	// write failure). Nil leaves the transport uninstrumented (every
	// update is one nil branch).
	Obs *obs.Registry

	// met holds the pre-registered counters, built once in Open; its
	// per-peer maps are read-only afterwards, so writers touch no lock for
	// metrics. The zero value (all nil) is the disabled form.
	met tcpMetrics

	mu        sync.Mutex
	recv      map[graph.HostID]RecvFunc
	dead      map[graph.HostID]bool
	listeners map[string]net.Listener
	conns     map[string]*tcpConn
	dialing   map[string]*sync.Mutex
	writers   map[string]*peerWriter
	opened    bool
	closed    bool
	quit      chan struct{}
	wg        sync.WaitGroup
}

// tcpMetrics is the transport's pre-registered counter set; nil counters
// (no registry) make every update a no-op.
type tcpMetrics struct {
	dialAttempts *obs.Counter
	dialBackoffs *obs.Counter
	framesIn     *obs.Counter
	bytesIn      *obs.Counter
	batchFlushes *obs.Counter
	framesPerWr  *obs.Histogram
	framesDrop   *obs.Counter
	framesOut    map[string]*obs.Counter // by peer address
	bytesOut     map[string]*obs.Counter
	// The unknown-peer pair catches frames routed to an address outside
	// the static map built at Open (a peer table extended after boot):
	// they are counted under peer=unknown instead of vanishing into a nil
	// counter.
	framesOutUnknown *obs.Counter
	bytesOutUnknown  *obs.Counter
}

// outCounters resolves the per-peer outbound pair, falling back to the
// peer=unknown series for addresses missing from the static map.
func (m *tcpMetrics) outCounters(addr string) (frames, bytes *obs.Counter) {
	if f, ok := m.framesOut[addr]; ok {
		return f, m.bytesOut[addr]
	}
	return m.framesOutUnknown, m.bytesOutUnknown
}

// initMetrics registers the transport's counters, one labeled series per
// distinct peer address for the outbound pair. Called from Open under t.mu.
func (t *TCP) initMetrics() {
	reg := t.Obs
	if reg == nil {
		return
	}
	t.met = tcpMetrics{
		dialAttempts: reg.Counter("transport_dial_attempts_total", "Outbound TCP dial attempts (including retries)."),
		dialBackoffs: reg.Counter("transport_dial_backoffs_total", "Backoff sleeps between failed dial attempts."),
		framesIn:     reg.Counter("transport_frames_in_total", "Frames decoded off inbound connections."),
		bytesIn:      reg.Counter("transport_bytes_in_total", "Wire bytes read off inbound connections (length prefix included)."),
		batchFlushes: reg.Counter("transport_batch_flushes_total", "Coalesced batch writes flushed to peers."),
		framesPerWr:  reg.Histogram("transport_frames_per_write", "Frames packed into one connection write.", batchBuckets),
		framesDrop:   reg.Counter("transport_frames_dropped_total", "Outbound frames dropped after a failed write and failed retry."),
		framesOut:    make(map[string]*obs.Counter),
		bytesOut:     make(map[string]*obs.Counter),
		framesOutUnknown: reg.Counter("transport_frames_out_total",
			"Frames written to a peer.", "peer=unknown"),
		bytesOutUnknown: reg.Counter("transport_bytes_out_total",
			"Wire bytes written to a peer (length prefix included).", "peer=unknown"),
	}
	local := make(map[string]bool, len(t.recv))
	for h := range t.recv {
		local[t.addrs[h]] = true
	}
	for _, addr := range t.addrs {
		if local[addr] {
			continue // same-process deliveries never touch the wire
		}
		if _, ok := t.met.framesOut[addr]; ok {
			continue
		}
		t.met.framesOut[addr] = reg.Counter("transport_frames_out_total", "Frames written to a peer.", "peer="+addr)
		t.met.bytesOut[addr] = reg.Counter("transport_bytes_out_total", "Wire bytes written to a peer (length prefix included).", "peer="+addr)
	}
}

// batchBuckets grades the frames-per-write histogram: 1 means no
// coalescing happened, the upper buckets say how hard the writer is
// packing under load.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// tcpConn serializes frame writes on one outbound connection.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// outFrame is one encoded frame awaiting its peer's writer; the buffers
// recycle through framePool so steady-state sends allocate nothing.
type outFrame struct {
	b []byte
}

var framePool = sync.Pool{New: func() any { return &outFrame{b: make([]byte, 0, 1024)} }}

// NewTCP returns a TCP transport where addrs[h] is the address serving
// host h. The caller Binds its local hosts and then Opens; one listener is
// created per distinct local address.
func NewTCP(addrs []string) *TCP {
	return &TCP{
		addrs:          addrs,
		DialTimeout:    500 * time.Millisecond,
		DialBudget:     5 * time.Second,
		WriteTimeout:   10 * time.Second,
		DialBackoff:    20 * time.Millisecond,
		DialBackoffMax: 500 * time.Millisecond,
		recv:           make(map[graph.HostID]RecvFunc),
		dead:           make(map[graph.HostID]bool),
		listeners:      make(map[string]net.Listener),
		conns:          make(map[string]*tcpConn),
		dialing:        make(map[string]*sync.Mutex),
		writers:        make(map[string]*peerWriter),
		quit:           make(chan struct{}),
	}
}

// Bind implements Transport.
func (t *TCP) Bind(h graph.HostID, recv RecvFunc) error {
	if h < 0 || int(h) >= len(t.addrs) {
		return fmt.Errorf("transport: host %d has no address", h)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.opened {
		return fmt.Errorf("transport: bind after open")
	}
	if _, ok := t.recv[h]; ok {
		return fmt.Errorf("transport: host %d already bound", h)
	}
	t.recv[h] = recv
	return nil
}

// Open implements Transport: one listener per distinct address among the
// bound hosts starts accepting inbound frames.
func (t *TCP) Open() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.opened {
		return fmt.Errorf("transport: already open")
	}
	t.opened = true
	t.initMetrics()
	for h := range t.recv {
		addr := t.addrs[h]
		if _, ok := t.listeners[addr]; ok {
			continue
		}
		l, err := net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("transport: listen %s: %w", addr, err)
		}
		t.listeners[addr] = l
		t.wg.Add(1)
		go t.acceptLoop(l)
	}
	return nil
}

func (t *TCP) acceptLoop(l net.Listener) {
	defer t.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCP) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	done := make(chan struct{})
	defer close(done)
	go func() { // unblock the pending Read when the transport closes
		select {
		case <-t.quit:
			c.Close()
		case <-done: // connection ended on its own; don't linger
		}
	}()
	// The peer coalesces many frames into one write, so one kernel read
	// commonly carries a whole batch; the buffered reader slices frames
	// out of it without a syscall each.
	br := bufio.NewReaderSize(c, 64<<10)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		f, err := wire.DecodeFrameBody(body)
		if err != nil {
			return // corrupt or hostile stream: drop the connection
		}
		t.met.framesIn.Inc()
		t.met.bytesIn.Add(int64(n) + 4)
		t.deliverLocal(Message{
			From:    f.From,
			To:      f.To,
			Query:   QueryID(f.Query),
			Chain:   f.Chain,
			Payload: f.Payload,
		})
	}
}

// deliverLocal hands msg to the bound RecvFunc, dropping it if the
// destination is not served here or has been killed.
func (t *TCP) deliverLocal(msg Message) {
	t.mu.Lock()
	fn := t.recv[msg.To]
	if t.dead[msg.To] || t.closed {
		fn = nil
	}
	t.mu.Unlock()
	if fn != nil {
		fn(msg)
	}
}

// Send implements Transport. Destinations served by this process are
// delivered directly; remote destinations are encoded into a pooled
// buffer and enqueued on the destination peer's writer, which packs
// queued frames into batched connection writes. Send still dials
// synchronously when no connection exists — with the same retry budget as
// before — so a fleet booting in arbitrary order blocks senders, not the
// writer goroutines, until the peer appears.
func (t *TCP) Send(msg Message) error {
	if msg.To < 0 || int(msg.To) >= len(t.addrs) {
		return fmt.Errorf("transport: destination %d has no address", msg.To)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport: send on closed transport")
	}
	if t.dead[msg.From] {
		t.mu.Unlock()
		return nil // a departed host says nothing more (§3.2)
	}
	_, local := t.recv[msg.To]
	t.mu.Unlock()

	if local {
		t.deliverLocal(msg)
		return nil
	}

	fr := framePool.Get().(*outFrame)
	b, err := wire.AppendFrame(fr.b[:0], wire.Frame{
		From:    msg.From,
		To:      msg.To,
		Query:   int64(msg.Query),
		Chain:   msg.Chain,
		Payload: msg.Payload,
	})
	if err != nil {
		framePool.Put(fr)
		return fmt.Errorf("transport: encode to %d: %w", msg.To, err)
	}
	fr.b = b

	addr := t.addrs[msg.To]
	if _, err := t.conn(addr); err != nil {
		framePool.Put(fr)
		return err
	}
	w, err := t.writer(addr)
	if err != nil {
		framePool.Put(fr)
		return err
	}
	w.enqueue(fr)
	return nil
}

// writer returns addr's writer goroutine, starting it on first use.
func (t *TCP) writer(addr string) (*peerWriter, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("transport: send on closed transport")
	}
	if w, ok := t.writers[addr]; ok {
		return w, nil
	}
	w := &peerWriter{t: t, addr: addr, kick: make(chan struct{}, 1)}
	w.framesOut, w.bytesOut = t.met.outCounters(addr)
	t.writers[addr] = w
	t.wg.Add(1)
	go w.loop()
	return w, nil
}

// peerWriter drains one peer's outbound queue, packing every frame queued
// at pickup — plus, with FlushWindow > 0, stragglers arriving within the
// window — into a single connection write.
type peerWriter struct {
	t    *TCP
	addr string
	kick chan struct{} // buffered(1): coalesces enqueue signals

	mu    sync.Mutex
	queue []*outFrame

	framesOut *obs.Counter
	bytesOut  *obs.Counter
}

func (w *peerWriter) enqueue(fr *outFrame) {
	w.mu.Lock()
	w.queue = append(w.queue, fr)
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default: // a wake-up is already pending; the writer will see this frame
	}
}

// take removes up to max frames from the queue (all of them if max ≤ 0).
func (w *peerWriter) take(max int) []*outFrame {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.queue)
	if n == 0 {
		return nil
	}
	if max > 0 && n > max {
		n = max
	}
	batch := w.queue[:n:n]
	w.queue = append([]*outFrame(nil), w.queue[n:]...)
	return batch
}

func (w *peerWriter) loop() {
	t := w.t
	defer t.wg.Done()
	maxBatch := t.MaxBatch
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	var wbuf []byte // batch assembly buffer, reused across flushes
	for {
		select {
		case <-t.quit:
			return
		case <-w.kick:
		}
		if t.FlushWindow > 0 {
			// Linger once per wake-up: frames sent by other host
			// goroutines within the window join this batch.
			select {
			case <-t.quit:
				return
			case <-time.After(t.FlushWindow):
			}
		}
		for {
			batch := w.take(maxBatch)
			if len(batch) == 0 {
				break
			}
			wbuf = wbuf[:0]
			for _, fr := range batch {
				wbuf = append(wbuf, fr.b...)
			}
			err := w.flush(wbuf)
			for _, fr := range batch {
				framePool.Put(fr)
			}
			if err != nil {
				t.met.framesDrop.Add(int64(len(batch)))
			} else {
				t.met.batchFlushes.Inc()
				t.met.framesPerWr.Observe(float64(len(batch)))
				w.framesOut.Add(int64(len(batch)))
				w.bytesOut.Add(int64(len(wbuf)))
			}
		}
	}
}

// flush writes one assembled batch, redialing and retrying once on a
// write error (the peer may have restarted); a second failure drops the
// batch — the protocols tolerate loss, and the engine's per-query drop
// counters surface it.
func (w *peerWriter) flush(batch []byte) error {
	t := w.t
	for attempt := 0; ; attempt++ {
		conn, err := t.conn(w.addr)
		if err != nil {
			return err
		}
		conn.mu.Lock()
		if t.WriteTimeout > 0 {
			conn.c.SetWriteDeadline(time.Now().Add(t.WriteTimeout))
		}
		_, err = conn.c.Write(batch)
		conn.mu.Unlock()
		if err == nil {
			return nil
		}
		t.dropConn(w.addr, conn)
		if attempt == 1 {
			return fmt.Errorf("transport: write to %s: %w", w.addr, err)
		}
	}
}

// conn returns the cached connection to addr, dialing with retry if none
// exists. Dials to distinct addresses proceed in parallel; concurrent
// senders to the same address share one dial attempt at a time through a
// per-address single-flight lock. The lock is held only across one
// attempt, never across a backoff sleep: a host-goroutine Send racing a
// Warm that is backing off from a still-booting peer dials immediately
// instead of waiting out the warmer's (possibly long) retry schedule.
func (t *TCP) conn(addr string) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return c, nil
	}
	dmu, ok := t.dialing[addr]
	if !ok {
		dmu = &sync.Mutex{}
		t.dialing[addr] = dmu
	}
	t.mu.Unlock()

	deadline := time.Now().Add(t.DialBudget)
	backoff := t.DialBackoff
	if backoff <= 0 {
		backoff = 20 * time.Millisecond
	}
	for {
		c, err := t.dialOnce(addr, dmu)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
		}
		var wait time.Duration
		wait, backoff = dialBackoff(backoff, t.DialBackoffMax, rand.Int63n)
		t.met.dialBackoffs.Inc()
		select {
		case <-time.After(wait):
		case <-t.quit:
			return nil, fmt.Errorf("transport: closed while dialing %s", addr)
		}
	}
}

// dialOnce performs a single dial attempt to addr under the per-address
// single-flight lock, re-checking the cache first (another sender may
// have won while we waited for the lock or slept out a backoff).
func (t *TCP) dialOnce(addr string, dmu *sync.Mutex) (*tcpConn, error) {
	dmu.Lock()
	defer dmu.Unlock()
	t.mu.Lock()
	if c, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	t.met.dialAttempts.Inc()
	c, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{c: c}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("transport: closed while dialing %s", addr)
	}
	t.conns[addr] = tc
	t.mu.Unlock()
	return tc, nil
}

// dialBackoff returns the jittered wait before the next dial attempt and
// the escalated backoff for the attempt after it: capped exponential with
// ±50% jitter. A peer that is still booting is retried quickly at first,
// then ever more gently, and concurrent processes desynchronize instead
// of re-dialing a slow peer in lockstep waves. rnd is rand.Int63n
// (injected for deterministic tests).
func dialBackoff(cur, max time.Duration, rnd func(int64) int64) (wait, next time.Duration) {
	if cur <= 0 {
		cur = 20 * time.Millisecond
	}
	if max > 0 && cur > max {
		cur = max // a starting backoff above the cap still honors the cap
	}
	wait = cur/2 + time.Duration(rnd(int64(cur)))
	next = cur
	if max > 0 && cur < max {
		next = 2 * cur
		if next > max {
			next = max
		}
	}
	return wait, next
}

func (t *TCP) dropConn(addr string, c *tcpConn) {
	t.mu.Lock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	c.c.Close()
}

// Warm implements Warmer: every distinct remote address is dialed in the
// background so the connection cache is hot before the first query's
// frames need it. Dial attempts share the per-address single-flight locks
// with Send, so a send racing a warm-up blocks on one attempt at most —
// never on the warmer's backoff sleeps — and duplicate connections are
// not opened. Failures are ignored — a peer that is still booting will be
// dialed again lazily on first send.
func (t *TCP) Warm() {
	t.mu.Lock()
	local := make(map[string]bool, len(t.recv))
	for h := range t.recv {
		local[t.addrs[h]] = true
	}
	remote := make(map[string]bool)
	for _, addr := range t.addrs {
		if !local[addr] {
			remote[addr] = true
		}
	}
	t.mu.Unlock()
	for addr := range remote {
		t.wg.Add(1)
		go func(addr string) {
			defer t.wg.Done()
			t.conn(addr) // cache on success; lazy dial retries on failure
		}(addr)
	}
}

// Kill implements Transport: local host h goes silent — inbound frames for
// it are dropped from now on and its sends are swallowed. Kill is the
// all-queries degenerate case of the engine's membership layer: a host
// dead for only some queries stays transport-alive and the node runtime
// filters per query.
func (t *TCP) Kill(h graph.HostID) {
	t.mu.Lock()
	t.dead[h] = true
	t.mu.Unlock()
}

// Alive implements Transport.
func (t *TCP) Alive(h graph.HostID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, bound := t.recv[h]
	return bound && !t.dead[h]
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.quit)
	for _, l := range t.listeners {
		l.Close()
	}
	for _, c := range t.conns {
		c.c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
