package transport

import (
	"fmt"
	"sync"
	"time"

	"validity/internal/graph"
)

// Channel is the in-process Transport: every host lives in the calling
// process and messages are handed between goroutines directly. An optional
// delay emulates the per-hop bound δ in wall-clock time, which is what
// lets the node runtime's tick arithmetic (deadlines, early-deadline
// guards) stay faithful to the paper's model when no real network is
// involved.
//
// In-flight messages sit on one FIFO delivery queue drained by a single
// scheduler goroutine, not a goroutine per send: every send shares the
// same delay, so due times are monotone in send order and the queue head
// is always the next delivery — no timer heap, and a 2K-host fleet's
// flood of in-flight messages costs one goroutine plus a queue entry each
// instead of a goroutine each.
type Channel struct {
	n     int
	delay time.Duration

	mu      sync.Mutex
	recv    []RecvFunc
	dead    []bool
	closed  bool
	pending []delivery
	// wake nudges the scheduler when a send lands on an empty queue; cap 1
	// because one pending signal is enough — the scheduler re-examines the
	// whole queue every pass.
	wake chan struct{}
	quit chan struct{}
	// The scheduler starts lazily on the first send (sync.Once), not in
	// Open: encode/decode tests legitimately Send on a never-Opened
	// transport, and an idle transport should cost nothing.
	startOnce sync.Once
	wg        sync.WaitGroup
}

// delivery is one in-flight message and the instant it becomes due.
type delivery struct {
	due time.Time
	msg Message
}

// NewChannel returns an in-process transport for hosts 0..n-1 where each
// delivery takes `delay` of wall-clock time (0 = immediate).
func NewChannel(n int, delay time.Duration) *Channel {
	return &Channel{
		n:     n,
		delay: delay,
		recv:  make([]RecvFunc, n),
		dead:  make([]bool, n),
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
}

// Bind implements Transport.
func (c *Channel) Bind(h graph.HostID, recv RecvFunc) error {
	if h < 0 || int(h) >= c.n {
		return fmt.Errorf("transport: host %d outside [0,%d)", h, c.n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.recv[h] != nil {
		return fmt.Errorf("transport: host %d already bound", h)
	}
	c.recv[h] = recv
	return nil
}

// Open implements Transport; the channel transport needs no setup.
func (c *Channel) Open() error { return nil }

// Send implements Transport: the message is delivered to the destination's
// RecvFunc after the configured delay, provided the destination is still
// alive at delivery time (a host that dies with messages in flight simply
// never sees them, §3.2).
func (c *Channel) Send(msg Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("transport: send on closed channel transport")
	}
	if msg.To < 0 || int(msg.To) >= c.n {
		c.mu.Unlock()
		return fmt.Errorf("transport: destination %d outside [0,%d)", msg.To, c.n)
	}
	c.pending = append(c.pending, delivery{due: time.Now().Add(c.delay), msg: msg})
	c.mu.Unlock()
	c.startOnce.Do(func() {
		c.wg.Add(1)
		go c.schedule()
	})
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return nil
}

// schedule is the delivery scheduler: it sleeps until the queue head is
// due, then delivers it. Due times are monotone in send order (all sends
// share one delay and enqueue under c.mu), so plain FIFO order is also
// earliest-deadline order. Liveness is re-checked at delivery time, so a
// Kill with messages in flight still drops them.
func (c *Channel) schedule() {
	defer c.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if len(c.pending) == 0 {
			c.pending = nil // let a drained burst's backing array go
			c.mu.Unlock()
			select {
			case <-c.wake:
				continue
			case <-c.quit:
				return
			}
		}
		d := c.pending[0]
		if wait := time.Until(d.due); wait > 0 {
			c.mu.Unlock()
			timer.Reset(wait)
			select {
			case <-timer.C:
				continue
			case <-c.quit:
				timer.Stop()
				return
			}
		}
		c.pending = c.pending[1:]
		fn := c.recv[d.msg.To]
		if c.dead[d.msg.To] {
			fn = nil
		}
		c.mu.Unlock()
		if fn != nil {
			fn(d.msg)
		}
	}
}

// Kill implements Transport.
func (c *Channel) Kill(h graph.HostID) {
	if h < 0 || int(h) >= c.n {
		return
	}
	c.mu.Lock()
	c.dead[h] = true
	c.mu.Unlock()
}

// Alive implements Transport.
func (c *Channel) Alive(h graph.HostID) bool {
	if h < 0 || int(h) >= c.n {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recv[h] != nil && !c.dead[h]
}

// Close implements Transport.
func (c *Channel) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.quit)
	}
	c.mu.Unlock()
	c.wg.Wait()
	return nil
}
