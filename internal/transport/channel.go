package transport

import (
	"fmt"
	"sync"
	"time"

	"validity/internal/graph"
)

// Channel is the in-process Transport: every host lives in the calling
// process and messages are handed between goroutines directly. An optional
// delay emulates the per-hop bound δ in wall-clock time, which is what
// lets the node runtime's tick arithmetic (deadlines, early-deadline
// guards) stay faithful to the paper's model when no real network is
// involved.
type Channel struct {
	n     int
	delay time.Duration

	mu     sync.Mutex
	recv   []RecvFunc
	dead   []bool
	closed bool
	quit   chan struct{}
	wg     sync.WaitGroup
}

// NewChannel returns an in-process transport for hosts 0..n-1 where each
// delivery takes `delay` of wall-clock time (0 = immediate).
func NewChannel(n int, delay time.Duration) *Channel {
	return &Channel{
		n:     n,
		delay: delay,
		recv:  make([]RecvFunc, n),
		dead:  make([]bool, n),
		quit:  make(chan struct{}),
	}
}

// Bind implements Transport.
func (c *Channel) Bind(h graph.HostID, recv RecvFunc) error {
	if h < 0 || int(h) >= c.n {
		return fmt.Errorf("transport: host %d outside [0,%d)", h, c.n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.recv[h] != nil {
		return fmt.Errorf("transport: host %d already bound", h)
	}
	c.recv[h] = recv
	return nil
}

// Open implements Transport; the channel transport needs no setup.
func (c *Channel) Open() error { return nil }

// Send implements Transport: the message is delivered to the destination's
// RecvFunc after the configured delay, provided the destination is still
// alive at delivery time (a host that dies with messages in flight simply
// never sees them, §3.2).
func (c *Channel) Send(msg Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("transport: send on closed channel transport")
	}
	if msg.To < 0 || int(msg.To) >= c.n {
		c.mu.Unlock()
		return fmt.Errorf("transport: destination %d outside [0,%d)", msg.To, c.n)
	}
	c.wg.Add(1)
	c.mu.Unlock()

	go func() {
		defer c.wg.Done()
		if c.delay > 0 {
			timer := time.NewTimer(c.delay)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-c.quit:
				return
			}
		}
		c.mu.Lock()
		fn := c.recv[msg.To]
		if c.dead[msg.To] || c.closed {
			fn = nil
		}
		c.mu.Unlock()
		if fn != nil {
			fn(msg)
		}
	}()
	return nil
}

// Kill implements Transport.
func (c *Channel) Kill(h graph.HostID) {
	if h < 0 || int(h) >= c.n {
		return
	}
	c.mu.Lock()
	c.dead[h] = true
	c.mu.Unlock()
}

// Alive implements Transport.
func (c *Channel) Alive(h graph.HostID) bool {
	if h < 0 || int(h) >= c.n {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recv[h] != nil && !c.dead[h]
}

// Close implements Transport.
func (c *Channel) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.quit)
	}
	c.mu.Unlock()
	c.wg.Wait()
	return nil
}
