// Package transport abstracts the message-passing substrate the node
// runtime (internal/node) executes the paper's protocols on. Where
// internal/sim realizes the §3.1 system model with a deterministic event
// loop, a Transport realizes it with real concurrency: hosts are addressed
// endpoints, sends are asynchronous, and delivery reaches only hosts that
// are still alive — a killed host silently swallows everything addressed
// to it, matching the fail-stop departures of §3.2.
//
// Two implementations are provided:
//
//   - Channel: all hosts live in one process; delivery goes through
//     goroutines with an optional per-hop delay that emulates the
//     universal delay bound δ in wall-clock time.
//   - TCP: hosts are sharded across OS processes; frames travel as
//     length-prefixed internal/wire binary frames over loopback or a real
//     network — batched per peer by a write-coalescing goroutine — so N
//     processes can jointly answer one WILDFIRE query (cmd/validityd).
//
// The Transport does not know the topology: neighbor-only communication
// (§3.1 "messages travel only along edges of G") is enforced one layer up,
// by sim.Context, before a message ever reaches Send.
//
// Control frames ride the same path as protocol traffic: the node
// runtime's cross-process quiescence announces (wire.Quiesce, tag 239)
// are ordinary Messages addressed to the query's issuing host, so both
// transports route them with no special casing — the Channel passes the
// payload as a Go value, the TCP transport encodes it through the tag's
// registered codec like any protocol frame, and the receiving runtime
// diverts them before the per-query demux. The one property the node
// layer relies on is per-sender ordering: both transports deliver one
// peer's frames in send order (the Channel through its FIFO scheduler,
// TCP through the per-peer stream), which is what lets a same-epoch
// quiet claim supersede the busy claim before it.
package transport

import "validity/internal/graph"

// QueryID identifies one in-flight query across the whole fleet. The node
// runtime multiplexes many concurrent queries over one transport: every
// frame is stamped with the query it belongs to, and the receiving process
// demultiplexes it to that query's protocol instance. ID 0 is reserved for
// the runtime's default (single-query) face; engine-issued queries use
// IDs ≥ 1.
type QueryID int64

// Message is one protocol payload in flight between two hosts. Query
// names the query instance the payload belongs to. Chain is the causal
// depth of the message (1 + the depth of the message whose processing
// triggered the send); carrying both in every frame keeps the per-query
// §6.3 cost accounting exact across process boundaries.
type Message struct {
	From    graph.HostID
	To      graph.HostID
	Query   QueryID
	Chain   int
	Payload any
}

// RecvFunc is the delivery callback a bound host registers. It is invoked
// from transport-owned goroutines; implementations must be safe for
// concurrent calls and should hand the message off quickly (the node
// runtime enqueues into a per-host inbox).
type RecvFunc func(Message)

// Transport moves Messages between hosts, possibly across processes.
//
// Lifecycle: Bind every locally-served host, then Open once to start
// accepting traffic, then Send freely; Close tears everything down. Kill
// switches one local host off mid-flight (§3.2): pending and future
// deliveries to it are dropped, and the runtime stops accepting sends from
// it. Kill of a non-local host is a no-op — a process can only switch off
// its own peers; remote departures are observed as silence, exactly as in
// the paper's model.
type Transport interface {
	// Bind registers h as locally served and routes its inbound messages
	// to recv. Binding the same host twice, or a host the transport does
	// not serve, is an error.
	Bind(h graph.HostID, recv RecvFunc) error
	// Open starts accepting traffic (listeners, background loops). Bind
	// must not be called after Open.
	Open() error
	// Send delivers msg to its destination asynchronously. A returned
	// error means the message is known lost (e.g. unreachable peer);
	// silent drops at a dead destination are not errors.
	Send(msg Message) error
	// Kill switches local host h off: no further delivery to it, no
	// further sends from it.
	Kill(h graph.HostID)
	// Alive reports whether local host h is bound and not killed.
	// Non-local hosts report false.
	Alive(h graph.HostID) bool
	// Close releases all resources and stops delivery goroutines.
	Close() error
}

// Warmer is implemented by transports that can pre-establish their peer
// links. Warm starts dialing every remote peer in the background and
// returns immediately; it is an optimization only — lazy dialing on first
// send remains the correctness path. The node runtime calls Warm right
// after Open, so a cold fleet's first query does not pay connection setup
// (and its retries) inside its own per-hop budget.
type Warmer interface {
	Warm()
}
