package transport

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"validity/internal/agg"
	"validity/internal/wire"
)

// The benchmarks compare the retired transport codec (a fresh gob stream
// per frame, exactly as the pre-v2 TCP transport framed messages) against
// the version-2 wire frames, on the workload that dominates a query: a
// broadcast-shaped message carrying a 64-vector FM count partial.

func init() { gob.Register(sketchPayload{}) }

func benchMessage() Message {
	rng := rand.New(rand.NewSource(17))
	p := agg.NewPartial(agg.Count, 3, agg.Params{Vectors: 64, Bits: 32}, rng)
	return Message{From: 1, To: 2, Query: 42, Chain: 1, Payload: sketchPayload{Round: 9, A: p}}
}

func BenchmarkGobFrame(b *testing.B) {
	msg := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
			b.Fatal(err)
		}
		var out Message
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireFrame(b *testing.B) {
	msg := benchMessage()
	fr := wire.Frame{
		From: msg.From, To: msg.To,
		Query: int64(msg.Query), Chain: msg.Chain, Payload: msg.Payload,
	}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.AppendFrame(buf[:0], fr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodeFrameBody(buf[4:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireFrameEncode isolates the send half — the path inside
// TCP.Send that must stay allocation-free.
func BenchmarkWireFrameEncode(b *testing.B) {
	msg := benchMessage()
	fr := wire.Frame{
		From: msg.From, To: msg.To,
		Query: int64(msg.Query), Chain: msg.Chain, Payload: msg.Payload,
	}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.AppendFrame(buf[:0], fr)
		if err != nil {
			b.Fatal(err)
		}
	}
}
