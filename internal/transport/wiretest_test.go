package transport

import (
	"encoding/binary"
	"fmt"

	"validity/internal/agg"
	"validity/internal/wire"
)

// The TCP transport ships version-2 wire frames, so every payload type a
// test puts on the wire needs a codec in the reserved test tag space
// (≥ wire.TagReservedBase) — the live-path twin of what internal/protocol
// registers for the real protocol messages.
const (
	testTagString uint8 = wire.TagReservedBase     // plain string payloads
	testTagSketch uint8 = wire.TagReservedBase + 1 // sketchPayload
)

func init() {
	wire.RegisterTagger(func(payload any) (uint8, bool) {
		switch payload.(type) {
		case string:
			return testTagString, true
		case sketchPayload:
			return testTagSketch, true
		}
		return 0, false
	})
	wire.RegisterPayload(testTagString, wire.PayloadCodec{
		Name: "test-string",
		Append: func(buf []byte, payload any) ([]byte, error) {
			return append(buf, payload.(string)...), nil
		},
		Size: func(payload any) (int, error) { return len(payload.(string)), nil },
		Decode: func(body []byte) (any, error) {
			return string(body), nil
		},
	})
	wire.RegisterPayload(testTagSketch, wire.PayloadCodec{
		Name: "test-sketch",
		Append: func(buf []byte, payload any) ([]byte, error) {
			m := payload.(sketchPayload)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.Round)))
			if m.A == nil {
				return append(buf, 0), nil
			}
			k, ok := agg.KindOf(m.A)
			if !ok {
				return nil, fmt.Errorf("unknown partial %T", m.A)
			}
			buf = append(buf, 1)
			return wire.AppendPartial(buf, k, m.A)
		},
		Size: func(payload any) (int, error) {
			m := payload.(sketchPayload)
			if m.A == nil {
				return 9, nil
			}
			k, ok := agg.KindOf(m.A)
			if !ok {
				return 0, fmt.Errorf("unknown partial %T", m.A)
			}
			n, err := wire.PartialSize(k, m.A)
			if err != nil {
				return 0, err
			}
			return 9 + n, nil
		},
		Decode: func(body []byte) (any, error) {
			if len(body) < 9 {
				return nil, fmt.Errorf("truncated sketchPayload")
			}
			m := sketchPayload{Round: int(int64(binary.LittleEndian.Uint64(body[0:8])))}
			switch body[8] {
			case 0:
				if len(body) != 9 {
					return nil, fmt.Errorf("trailing bytes after empty sketchPayload")
				}
			case 1:
				p, _, n, err := wire.DecodePartial(body[9:])
				if err != nil {
					return nil, err
				}
				if 9+n != len(body) {
					return nil, fmt.Errorf("trailing bytes after sketchPayload partial")
				}
				m.A = p
			default:
				return nil, fmt.Errorf("bad sketchPayload flag %d", body[8])
			}
			return m, nil
		},
	})
}
