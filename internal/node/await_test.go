package node

import (
	"testing"
	"time"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/protocol"
	"validity/internal/topology"
	"validity/internal/transport"
	"validity/internal/zipfval"
)

// newWildfireEngine builds a single-process engine over a random topology
// with a WILDFIRE factory — the setup the daemon runs, in miniature.
func newWildfireEngine(t *testing.T, hosts int, hop time.Duration) (*Runtime, protocol.Query) {
	t.Helper()
	g := topology.Generate(topology.Random, hosts, 11)
	values := zipfval.Default(11).Values(hosts)
	spec := protocol.Query{
		Kind:   agg.Count,
		Hq:     0,
		DHat:   g.Diameter(nil) + 2,
		Params: agg.Params{Vectors: 16, Bits: 32},
	}
	rt, err := New(Config{
		Graph:     g,
		Values:    values,
		Transport: transport.NewChannel(hosts, hop/2),
		Hop:       hop,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		return BuildInstance(rt, protocol.NewWildfire(spec), QuerySeed(11, id))
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	return rt, spec
}

// TestAwaitQueryResultConvergesEarly pins the adaptive-read satellite: on
// a quiet single-process fleet the result is read at quiescence, well
// before the hard cap, never before the floor, and it matches what the
// old sleep-out-the-deadline read would have returned.
func TestAwaitQueryResultConvergesEarly(t *testing.T) {
	hop := raceSlowdown * 5 * time.Millisecond
	rt, spec := newWildfireEngine(t, 30, hop)
	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	floor := time.Duration(spec.DHat+2) * hop
	settle := 2 * hop
	cap := 2*time.Duration(spec.DHat)*hop + 10*hop + 5*time.Second

	start := time.Now()
	v, ok, err := rt.AwaitQueryResult(1, spec.Hq, floor, settle, cap)
	elapsed := time.Since(start)
	if err != nil || !ok {
		t.Fatalf("await failed: v=%v ok=%v err=%v", v, ok, err)
	}
	if elapsed < floor {
		t.Fatalf("result read after %v, before the %v floor", elapsed, floor)
	}
	if elapsed >= cap/2 {
		t.Fatalf("result took %v of a %v cap; quiescence polling never bit", elapsed, cap)
	}
	// The early read must be the converged value: nothing may change it
	// between quiescence and the protocol deadline.
	time.Sleep(2 * time.Duration(spec.DHat) * hop)
	late, ok, err := rt.QueryResult(1, spec.Hq)
	if err != nil || !ok {
		t.Fatalf("late read failed: %v", err)
	}
	if late != v {
		t.Fatalf("early read %v differs from deadline read %v; quiescence declared too soon", v, late)
	}
}

// TestAwaitQueryResultHonorsHardCap forces quiescence to stay undeclared
// (an unreachable settle window): the read must fall back to the cap,
// exactly the old deadline semantics.
func TestAwaitQueryResultHonorsHardCap(t *testing.T) {
	hop := raceSlowdown * 5 * time.Millisecond
	rt, spec := newWildfireEngine(t, 10, hop)
	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	cap := 10 * hop
	start := time.Now()
	_, ok, err := rt.AwaitQueryResult(1, spec.Hq, 0, time.Hour, cap)
	elapsed := time.Since(start)
	if err != nil || !ok {
		t.Fatalf("capped await failed: ok=%v err=%v", ok, err)
	}
	if elapsed < cap {
		t.Fatalf("await returned after %v, before its %v hard cap, despite no quiescence", elapsed, cap)
	}
}

// TestResultFloorPolicy pins the soundness split of adaptive reads: a
// fully local runtime may read at quiescence after one broadcast sweep,
// but a sharded one must wait out the protocol deadline — remote workers
// still materializing instances are indistinguishable from a converged
// fleet in the local counters (the bug this policy fixed showed windows
// read at one sweep over TCP declaring a third of the true count).
func TestResultFloorPolicy(t *testing.T) {
	hop := 5 * time.Millisecond
	g := topology.Generate(topology.Random, 20, 1)
	all, err := New(Config{Graph: g, Transport: transport.NewChannel(20, hop/2), Hop: hop})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := all.ResultFloor(24), 14*hop; got != want {
		t.Fatalf("all-local floor = %v, want one sweep %v", got, want)
	}
	sharded, err := New(Config{
		Graph:     g,
		Transport: transport.NewChannel(20, hop/2),
		Hop:       hop,
		Local:     []graph.HostID{0, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sharded.ResultFloor(24), 26*hop; got != want {
		t.Fatalf("sharded floor = %v, want deadline-plus-margin %v", got, want)
	}
}

// TestAfterFiresOnTheSharedHeap pins Runtime.After: the closure fires on
// the shared timer heap no earlier than scheduled.
func TestAfterFiresOnTheSharedHeap(t *testing.T) {
	hop := raceSlowdown * 5 * time.Millisecond
	rt, _ := newWildfireEngine(t, 2, hop)
	fired := make(chan time.Time, 1)
	start := time.Now()
	rt.After(3*hop, func() { fired <- time.Now() })
	select {
	case at := <-fired:
		if at.Sub(start) < 3*hop {
			t.Fatalf("After(3 hops) fired after %v", at.Sub(start))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("After closure never fired")
	}
}
