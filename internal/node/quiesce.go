package node

import (
	"fmt"
	"time"

	"validity/internal/graph"
	"validity/internal/obs"
	"validity/internal/sim"
	"validity/internal/transport"
	"validity/internal/wire"
)

// Cross-process quiescence: the control plane that lets a sharded fleet
// answer before the full 2·D̂δ deadline.
//
// ResultFloor's sharded case exists because local silence cannot witness
// remote progress — a worker still materializing its instances looks, in
// the issuer's counters, exactly like a converged fleet. This file turns
// that absence of evidence into positive evidence: every worker process
// watches each query's local activity counter (sends + deliveries +
// drops, the same monotone signal AwaitQueryResult polls), and once the
// counter has held still past one broadcast sweep (D̂/2 ticks — the
// longest a partial change anywhere takes to reflood through this
// process) it sends a wire.Quiesce control frame to the query's issuing
// process. Later local activity bumps the claim's epoch and sends a busy
// re-announce, so a stale "quiet" is always superseded; the issuer only
// trusts the highest epoch seen per process. When every peer process of
// the roster reports a stable quiet epoch and the issuer's own settle
// window has passed, AwaitQueryResult reads the result early — under the
// paper's §3.1 model (δ bounds every hop's delay) a sweep of global
// silence means no frame is still in flight, so the partial at h_q is
// final. The unchanged hard cap remains the soundness backstop: a lost
// or never-sent announce only costs latency, never correctness.
//
// Quiesce frames are control plane, not protocol traffic: they bypass
// the per-query demux (no instance is ever built for them), are not
// charged to the query's §6.3 message/byte cost, and do not touch the
// activity counter they report on — announcing quiet must not make the
// fleet look busy.

// quiesceReport is the issuer-side record of one peer process's latest
// claim about one query.
type quiesceReport struct {
	epoch uint32
	act   int64
	quiet bool
}

// quiesceSilence is the announce threshold: one broadcast sweep (half
// the 2·D̂ deadline) of local stillness before a worker claims quiet.
func (rt *Runtime) quiesceSilence(deadline sim.Time) time.Duration {
	return time.Duration(deadline/2) * rt.hop
}

// quiesceInterval is the worker's check cadence: a quarter sweep, but
// never finer than one hop — the claim's resolution does not need to
// beat the signal's own timescale.
func (rt *Runtime) quiesceInterval(deadline sim.Time) time.Duration {
	iv := rt.quiesceSilence(deadline) / 4
	if iv < rt.hop {
		iv = rt.hop
	}
	return iv
}

// quiesceAnnouncer reports whether this runtime should announce
// quiescence for qs: the protocol is enabled, the query has a real
// deadline, and its issuing host lives in another process (the issuer
// never announces to itself — its own counters are already visible).
func (rt *Runtime) quiesceAnnouncer(qs *queryState) bool {
	if !rt.quiesce || qs.deadline <= 0 {
		return false
	}
	o := qs.origin
	return o >= 0 && int(o) < len(rt.local) && !rt.local[o]
}

// armQuiesce schedules the first announce check; called once from
// armClock with the clock-arm instant, so the silence window measures
// from the query's first local traffic.
func (rt *Runtime) armQuiesce(qs *queryState, t time.Time) {
	if !rt.quiesceAnnouncer(qs) {
		return
	}
	qs.qmu.Lock()
	qs.qActSince = t
	qs.qmu.Unlock()
	rt.scheduleEntry(&timerEntry{
		when: t.Add(rt.quiesceInterval(qs.deadline)),
		kind: tkQuiesce,
		qs:   qs,
	})
}

// quiesceStep is one announce decision: compare the activity counter
// against the last check, update the silence window, and return the
// announce to send (nil for none). Separated from the timer callback so
// the epoch machine is unit-testable without a transport.
func (qs *queryState) quiesceStep(rt *Runtime, now time.Time) *wire.Quiesce {
	act := qs.sent.Load() + qs.delivered.Load() + qs.dropped.Load()
	qs.qmu.Lock()
	defer qs.qmu.Unlock()
	switch {
	case act != qs.qLastAct:
		qs.qLastAct = act
		qs.qActSince = now
		if qs.qAnnounced {
			// Activity resumed after a quiet claim: bump the epoch and
			// withdraw it, so the issuer's early-read path cannot act on
			// a claim events have overtaken.
			qs.qEpoch++
			qs.qAnnounced = false
			return &wire.Quiesce{Epoch: qs.qEpoch, Activity: act, Quiet: false}
		}
	case !qs.qAnnounced && act > 0 && now.Sub(qs.qActSince) >= rt.quiesceSilence(qs.deadline):
		qs.qAnnounced = true
		return &wire.Quiesce{Epoch: qs.qEpoch, Activity: act, Quiet: true}
	}
	return nil
}

// quiesceCheck is the tkQuiesce timer callback: run one step, ship any
// resulting announce, and re-arm. It must not block the timer loop —
// the step is a few atomic loads under a cold mutex, and the transport
// send (which may block on a congested peer) goes to its own goroutine.
// A retired query stops re-arming; its announce state is garbage with
// the rest of the query state.
func (rt *Runtime) quiesceCheck(qs *queryState) {
	if qs.retired.Load() {
		return
	}
	now := time.Now()
	if ann := qs.quiesceStep(rt, now); ann != nil {
		go rt.sendQuiesce(qs, *ann)
	}
	rt.scheduleEntry(&timerEntry{
		when: now.Add(rt.quiesceInterval(qs.deadline)),
		kind: tkQuiesce,
		qs:   qs,
	})
}

// sendQuiesce ships one announce to the query's issuing process. The
// From host only identifies this process to the issuer's roster (any
// local host works — the roster maps them all to this process); a dead
// or unroutable source just drops the announce, which costs the fast
// path, never correctness.
func (rt *Runtime) sendQuiesce(qs *queryState, q wire.Quiesce) {
	err := rt.tr.Send(transport.Message{
		From:    rt.localHosts[0],
		To:      qs.origin,
		Query:   qs.id,
		Payload: q,
	})
	if err != nil {
		return
	}
	rt.met.quiesceSent.Inc()
	if rt.trace != nil {
		detail := "announce-busy"
		if q.Quiet {
			detail = "announce-quiet"
		}
		rt.trace.Record(int64(qs.id), obs.EvQuiesce, int(qs.origin), qs.tickNow(rt), detail)
	}
}

// handleQuiesce is the issuer side: recvFunc routes wire.Quiesce frames
// here before the per-query demux, so a hostile or stray control frame
// can never instantiate a query. The report lands in the query's
// per-process table under the epoch supersession rule — a claim below
// the highest epoch seen from that process is stale and ignored; at
// equal or higher epoch the last write wins (the transports deliver one
// peer's frames in order, so a same-epoch quiet follows its busy).
func (rt *Runtime) handleQuiesce(m transport.Message, q wire.Quiesce) {
	rt.met.quiesceRecv.Inc()
	if !rt.quiesce || m.From < 0 || int(m.From) >= len(rt.procOf) {
		return
	}
	qs := rt.lookupQuery(m.Query)
	if qs == nil || qs.retired.Load() {
		return
	}
	proc := rt.procOf[m.From]
	qs.qmu.Lock()
	cur, seen := qs.peerQuiet[proc]
	stale := seen && q.Epoch < cur.epoch
	if !stale {
		if qs.peerQuiet == nil {
			qs.peerQuiet = make(map[int32]quiesceReport, len(rt.remoteProcs))
		}
		qs.peerQuiet[proc] = quiesceReport{epoch: q.Epoch, act: q.Activity, quiet: q.Quiet}
	}
	qs.qmu.Unlock()
	if !stale && rt.trace != nil {
		detail := "peer-busy"
		if q.Quiet {
			detail = "peer-quiet"
		}
		rt.trace.Record(int64(qs.id), obs.EvQuiesce, int(m.From), qs.tickNow(rt), detail)
	}
}

// remoteQuiet reports whether every peer process of the roster currently
// claims quiescence for qs. A process that has never reported — dead,
// partitioned, or running with -quiesce=false — keeps this false
// forever, which is exactly the fallback: the read then waits for the
// classic floor or the hard cap.
func (rt *Runtime) remoteQuiet(qs *queryState) bool {
	if qs == nil || !rt.quiesce {
		return false
	}
	qs.qmu.Lock()
	defer qs.qmu.Unlock()
	if len(qs.peerQuiet) < len(rt.remoteProcs) {
		return false
	}
	for _, p := range rt.remoteProcs {
		if r, ok := qs.peerQuiet[p]; !ok || !r.quiet {
			return false
		}
	}
	return true
}

// quiesceFloor is the earliest elapsed time at which a quiesce-backed
// early read is considered: the all-local floor — one broadcast sweep
// plus margin — because with every peer process affirmatively quiet the
// sharded fleet's counters are as trustworthy as a single process's.
// Returns -1 when the fast path is unavailable for this query.
func (rt *Runtime) quiesceFloor(qs *queryState) time.Duration {
	if qs == nil || !rt.quiesce || qs.deadline <= 0 {
		return -1
	}
	return time.Duration(qs.deadline/2+2) * rt.hop
}

// rosterProcs derives the per-host process partition facts New needs
// from a Config roster.
func buildRoster(roster []int, n int, local []bool, localHosts []graph.HostID) (procOf []int32, self int32, remote []int32, err error) {
	if len(roster) != n {
		return nil, 0, nil, fmt.Errorf("node: roster has %d entries for %d hosts", len(roster), n)
	}
	procOf = make([]int32, n)
	for h, p := range roster {
		if p < 0 {
			return nil, 0, nil, fmt.Errorf("node: roster maps host %d to negative process %d", h, p)
		}
		procOf[h] = int32(p)
	}
	self = procOf[localHosts[0]]
	seen := make(map[int32]bool)
	for h := 0; h < n; h++ {
		if local[h] {
			continue
		}
		if p := procOf[h]; p != self && !seen[p] {
			seen[p] = true
			remote = append(remote, p)
		}
	}
	return procOf, self, remote, nil
}
