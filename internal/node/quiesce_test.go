package node

import (
	"testing"
	"time"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/transport"
	"validity/internal/wire"
)

// quiesceWorkerState builds a runtime that serves hosts 0..6 of an
// 8-host graph whose query issuer (host 7) lives in another process per
// the roster, plus a query state for it — the announcer-side setup, with
// no traffic flowing so the epoch machine can be driven by hand.
func quiesceWorkerState(t *testing.T, hop time.Duration) (*Runtime, *queryState) {
	t.Helper()
	g := topology.Generate(topology.Random, 8, 7)
	localHosts := []graph.HostID{0, 1, 2, 3, 4, 5, 6}
	rt, err := New(Config{
		Graph:     g,
		Transport: transport.NewChannel(8, 0),
		Hop:       hop,
		Local:     localHosts,
		Quiesce:   true,
		Roster:    []int{0, 0, 0, 0, 0, 0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rt.quiesce {
		t.Fatal("runtime with a remote issuer did not enable quiescence")
	}
	inst := &QueryInstance{Handlers: make([]sim.Handler, 8), Deadline: 24, Origin: 7}
	qs := newQueryState(rt, 1, inst, inst.Deadline)
	if !rt.quiesceAnnouncer(qs) {
		t.Fatal("worker state with a remote origin is not an announcer")
	}
	return rt, qs
}

// TestQuiesceStepEpochMachine drives the announcer's decision function
// with fabricated clocks: a quiet claim needs one sweep of stillness,
// resumed activity withdraws it under a bumped epoch (late-activity
// invalidation), and re-quiescing re-announces under the new epoch.
func TestQuiesceStepEpochMachine(t *testing.T) {
	hop := 4 * time.Millisecond
	rt, qs := quiesceWorkerState(t, hop)
	silence := rt.quiesceSilence(qs.deadline)
	if silence != 12*hop {
		t.Fatalf("silence threshold = %v, want one sweep %v", silence, 12*hop)
	}

	t0 := time.Now()
	rt.armQuiesce(qs, t0)
	if ann := qs.quiesceStep(rt, t0.Add(2*silence)); ann != nil {
		t.Fatalf("announced %+v with zero activity", ann)
	}

	qs.delivered.Add(3)
	if ann := qs.quiesceStep(rt, t0.Add(2*silence)); ann != nil {
		t.Fatalf("announced %+v on the step that saw activity change", ann)
	}
	quietAt := t0.Add(3 * silence)
	ann := qs.quiesceStep(rt, quietAt)
	if ann == nil || !ann.Quiet || ann.Epoch != 0 || ann.Activity != 3 {
		t.Fatalf("after a sweep of silence got %+v, want quiet epoch 0 act 3", ann)
	}
	if ann := qs.quiesceStep(rt, quietAt.Add(silence)); ann != nil {
		t.Fatalf("re-announced %+v while still quiet", ann)
	}

	// Late activity: the outstanding quiet claim must be withdrawn under
	// a higher epoch immediately, not after another sweep.
	qs.sent.Add(1)
	busyAt := quietAt.Add(2 * silence)
	ann = qs.quiesceStep(rt, busyAt)
	if ann == nil || ann.Quiet || ann.Epoch != 1 || ann.Activity != 4 {
		t.Fatalf("after late activity got %+v, want busy epoch 1 act 4", ann)
	}

	ann = qs.quiesceStep(rt, busyAt.Add(silence))
	if ann == nil || !ann.Quiet || ann.Epoch != 1 {
		t.Fatalf("re-quiescing got %+v, want quiet epoch 1", ann)
	}
}

// quiesceIssuerState builds the mirror setup: this runtime serves hosts
// 0..6 including the issuer (host 0), and host 7 belongs to peer
// process 1 — so remoteQuiet waits on exactly one peer's claim.
func quiesceIssuerState(t *testing.T, hop time.Duration) (*Runtime, *queryState) {
	t.Helper()
	g := topology.Generate(topology.Random, 8, 7)
	rt, err := New(Config{
		Graph:     g,
		Transport: transport.NewChannel(8, 0),
		Hop:       hop,
		Local:     []graph.HostID{0, 1, 2, 3, 4, 5, 6},
		Quiesce:   true,
		Roster:    []int{0, 0, 0, 0, 0, 0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := &QueryInstance{Handlers: make([]sim.Handler, 8), Deadline: 24, Origin: 0}
	qs := newQueryState(rt, 1, inst, inst.Deadline)
	e := &queryEntry{qs: qs}
	e.once.Do(func() {})
	rt.mu.Lock()
	rt.queries[1] = e
	rt.mu.Unlock()
	return rt, qs
}

// TestQuiesceSupersession pins the issuer-side epoch rule: a busy
// re-announce invalidates the quiet claim it supersedes, a stale report
// from an earlier epoch is discarded, and only a quiet claim at the
// highest seen epoch satisfies remoteQuiet.
func TestQuiesceSupersession(t *testing.T) {
	rt, qs := quiesceIssuerState(t, 4*time.Millisecond)
	report := func(epoch uint32, quiet bool) {
		rt.handleQuiesce(transport.Message{From: 7, To: 0, Query: 1},
			wire.Quiesce{Epoch: epoch, Activity: 9, Quiet: quiet})
	}

	if rt.remoteQuiet(qs) {
		t.Fatal("remoteQuiet with no reports")
	}
	report(0, true)
	if !rt.remoteQuiet(qs) {
		t.Fatal("peer's quiet claim not registered")
	}
	report(1, false)
	if rt.remoteQuiet(qs) {
		t.Fatal("busy re-announce did not withdraw the quiet claim")
	}
	report(0, true) // stale: epoch 0 after epoch 1 must be ignored
	if rt.remoteQuiet(qs) {
		t.Fatal("stale lower-epoch quiet claim was believed")
	}
	report(1, true)
	if !rt.remoteQuiet(qs) {
		t.Fatal("quiet claim at the current epoch not believed")
	}

	// Hostile inputs must neither panic nor conjure state: a From host
	// outside the graph, and a claim for a query this process never saw.
	rt.handleQuiesce(transport.Message{From: 99, To: 0, Query: 1}, wire.Quiesce{Quiet: true})
	rt.handleQuiesce(transport.Message{From: 7, To: 0, Query: 404}, wire.Quiesce{Quiet: true})
	if rt.lookupQuery(404) != nil {
		t.Fatal("a quiesce frame instantiated a query")
	}
}

// newShardedWildfire builds a live engine in the issuer role: WILDFIRE
// over 8 hosts with h_q=0 local and host 7 assigned to an absent peer
// process — sends to it vanish, its announce never comes unless the test
// injects one. Exactly the dead-peer topology of the fallback test.
func newShardedWildfire(t *testing.T, hop time.Duration) (*Runtime, protocol.Query) {
	t.Helper()
	g := topology.Generate(topology.Random, 8, 7)
	spec := protocol.Query{
		Kind:   agg.Min,
		Hq:     0,
		DHat:   12,
		Params: agg.Params{Vectors: 16, Bits: 32},
	}
	// MIN is exact (no sketch noise), so convergence is checkable as a
	// value: the minimum over the seven served hosts is 10; the absent
	// peer's host 7 holds the global minimum 3, which must NOT appear.
	rt, err := New(Config{
		Graph:     g,
		Values:    []int64{10, 11, 12, 13, 14, 15, 16, 3},
		Transport: transport.NewChannel(8, hop/2),
		Hop:       hop,
		Local:     []graph.HostID{0, 1, 2, 3, 4, 5, 6},
		Quiesce:   true,
		Roster:    []int{0, 0, 0, 0, 0, 0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		inst, err := BuildInstance(rt, protocol.NewWildfire(spec), QuerySeed(7, id))
		if err != nil {
			return nil, err
		}
		inst.Origin = spec.Hq
		return inst, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	return rt, spec
}

// TestAwaitQuiesceDeadPeerFallsBackToFloor pins the fallback: with a
// peer process that never reports (dead, partitioned, or opted out),
// the quiesce fast path must never fire — the read wait is the classic
// sharded floor, and correctness rides the unchanged cap.
func TestAwaitQuiesceDeadPeerFallsBackToFloor(t *testing.T) {
	hop := raceSlowdown * 3 * time.Millisecond
	rt, spec := newShardedWildfire(t, hop)
	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	deadline := 2 * sim.Time(spec.DHat)
	floor := rt.ResultFloor(deadline)
	start := time.Now()
	v, ok, err := rt.AwaitQueryResult(1, spec.Hq, floor, 2*hop, floor+20*hop)
	elapsed := time.Since(start)
	if err != nil || !ok {
		t.Fatalf("await failed: ok=%v err=%v", ok, err)
	}
	if elapsed < floor {
		t.Fatalf("read after %v, below the %v sharded floor, with no peer report", elapsed, floor)
	}
	if v != 10 {
		t.Fatalf("min = %v, want 10 over the served hosts", v)
	}
}

// TestAwaitQuiesceEarlyRead pins the fast path end to end on the await
// side: once the (sole) peer process claims quiescence, the read returns
// strictly below the sharded floor — at the quiesce floor plus settle —
// with the converged value.
func TestAwaitQuiesceEarlyRead(t *testing.T) {
	hop := raceSlowdown * 3 * time.Millisecond
	rt, spec := newShardedWildfire(t, hop)
	if _, err := rt.StartQuery(2); err != nil {
		t.Fatal(err)
	}
	// The peer's quiet announce, arriving early in the query's life.
	rt.handleQuiesce(transport.Message{From: 7, To: 0, Query: 2},
		wire.Quiesce{Epoch: 0, Activity: 1, Quiet: true})

	deadline := 2 * sim.Time(spec.DHat)
	floor := rt.ResultFloor(deadline)
	start := time.Now()
	v, ok, err := rt.AwaitQueryResult(2, spec.Hq, floor, 2*hop, floor+20*hop)
	elapsed := time.Since(start)
	if err != nil || !ok {
		t.Fatalf("await failed: ok=%v err=%v", ok, err)
	}
	if elapsed >= floor {
		t.Fatalf("read took %v, not below the %v sharded floor despite a quiet peer", elapsed, floor)
	}
	qFloor := rt.quiesceFloor(rt.lookupQuery(2))
	if elapsed < qFloor {
		t.Fatalf("read after %v, below even the %v quiesce floor", elapsed, qFloor)
	}
	if v != 10 {
		t.Fatalf("min = %v, want 10 over the served hosts", v)
	}
	// The early read must already be final: nothing may change it through
	// the protocol deadline.
	time.Sleep(time.Duration(deadline)*hop - elapsed + 2*hop)
	late, ok, err := rt.QueryResult(2, spec.Hq)
	if err != nil || !ok || late != v {
		t.Fatalf("deadline read (%v, %v, %v) differs from early read %v", late, ok, err, v)
	}
}
