package node

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/obs"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/transport"
	"validity/internal/wire"
)

// QueryInstance is one query's materialized protocol state on this
// process: the protocol object (for result reading at the issuing
// process), the per-host handlers, the query's deadline in ticks, and the
// query's membership timeline.
type QueryInstance struct {
	// Protocol is the installed protocol; nil for handler-only instances.
	Protocol protocol.Protocol
	// Handlers[h] is host h's state machine (nil for non-local hosts).
	Handlers []sim.Handler
	// Deadline is the query's termination time 2·D̂ in δ ticks; the engine
	// retires the query's state well after it has passed.
	Deadline sim.Time
	// Origin is the query's issuing host h_q. Factories must set it for
	// cross-process quiescence to engage: worker processes send their
	// quiet announces to the process serving Origin, and a process that
	// serves Origin itself never announces. With quiescence disabled (or
	// no roster) the field is inert.
	Origin graph.HostID
	// Churn is the query's membership timeline, in ticks of this query's
	// own clock: from a Leave tick on, host h is dead for this query —
	// drops its frames, fires no timers, says nothing — while other
	// queries sharing the fleet keep hearing from it; a Join tick
	// un-suppresses it again (frames, timers, and sends resume on this
	// query's clock), with a late joiner's handler started lazily exactly
	// like first contact. Factories must derive it deterministically from
	// the shared seed and the query id (churn.Source + churn.QuerySeed),
	// so every process enforces the identical timeline with no churn
	// coordination on the wire. Runtime.Kill remains the degenerate
	// all-queries case.
	Churn churn.Timeline
}

// QueryFactory builds the local protocol instance for a query on first
// contact. Every process of a fleet must register a factory that derives
// an identical query spec from the id alone (shared flags + seed), so a
// frame arriving for a not-yet-seen query can be answered without any
// registration handshake.
type QueryFactory func(id QueryID) (*QueryInstance, error)

// SetQueryFactory registers the factory used to lazily instantiate
// queries. It must be set before traffic arrives (i.e. before Start).
func (rt *Runtime) SetQueryFactory(f QueryFactory) {
	rt.mu.Lock()
	rt.factory = f
	rt.mu.Unlock()
}

// QuerySeed derives the per-query RNG seed from the fleet's shared seed.
// It depends only on (shared, id), so every process builds identical FM
// coin tosses for a host regardless of which process serves it.
func QuerySeed(shared int64, id QueryID) int64 {
	return shared ^ (int64(id)+1)*0x2545F4914F6CDD1D
}

// BuildInstance materializes p's per-host handlers for rt's local hosts,
// each wrapped with an independent per-host RNG derived from seed — the
// standard QueryFactory body. Protocols build their handlers in
// Install(*sim.Network), so a scratch event-loop network over the same
// graph is used purely as a handler factory; it is never run.
func BuildInstance(rt *Runtime, p protocol.Protocol, seed int64) (*QueryInstance, error) {
	hs, err := materializeHandlers(rt, p, seed)
	if err != nil {
		return nil, err
	}
	return &QueryInstance{Protocol: p, Handlers: hs, Deadline: p.Deadline()}, nil
}

// StartQuery instantiates query id locally via the registered factory and
// invokes Start on every local host's handler — the issuing side of the
// engine. Remote processes need no call: their instances materialize on
// first contact with the query's frames.
func (rt *Runtime) StartQuery(id QueryID) (*QueryInstance, error) {
	if id <= DefaultQuery {
		return nil, fmt.Errorf("node: query ids must be ≥ 1 (%d is reserved for the single-query face)", DefaultQuery)
	}
	qs, created, err := rt.queryForErr(id, true)
	if err != nil {
		return nil, err
	}
	if qs == nil {
		return nil, fmt.Errorf("node: no query factory registered")
	}
	if !created {
		return nil, fmt.Errorf("node: query %d already instantiated", id)
	}
	if rt.trace != nil {
		rt.trace.Record(int64(id), obs.EvIssued, -1, 0, "")
	}
	for _, h := range rt.localHosts {
		rt.enqueue(h, item{kind: itemStart, qs: qs})
	}
	return qs.inst.Load(), nil
}

// QueryResult reads query id's declared result at host h, executing the
// read on h's shard worker so it cannot race in-flight handler callbacks.
func (rt *Runtime) QueryResult(id QueryID, h graph.HostID) (float64, bool, error) {
	qs := rt.lookupQuery(id)
	if qs == nil {
		return 0, false, fmt.Errorf("node: query %d has no protocol instance here", id)
	}
	inst := qs.inst.Load()
	if inst == nil || inst.Protocol == nil {
		return 0, false, fmt.Errorf("node: query %d has no protocol instance here (retired?)", id)
	}
	var v float64
	var ok bool
	if err := rt.Do(h, func() { v, ok = inst.Protocol.Result() }); err != nil {
		return 0, false, err
	}
	return v, ok, nil
}

// queryEntry is the demux map's slot for one QueryID. The factory runs
// inside the entry's once, outside rt.mu: materializing handlers for a
// 10K-host query takes real time, and holding the runtime lock for it
// would stall every host callback and transport delivery in the process.
// Concurrent first contacts for the same id block on the once instead.
type queryEntry struct {
	once sync.Once
	qs   *queryState // nil while the factory is still running
	err  error       // non-nil if the factory failed (qs is a tombstone)
}

// queryFor resolves id to its local state, lazily instantiating it via the
// factory when create is set. Factory failures leave a retired tombstone
// so the factory runs at most once per id.
func (rt *Runtime) queryFor(id QueryID, create bool) *queryState {
	qs, _, _ := rt.queryForErr(id, create)
	return qs
}

// lookupQuery returns id's state without instantiating anything (nil while
// unknown or still materializing).
func (rt *Runtime) lookupQuery(id QueryID) *queryState {
	rt.mu.Lock()
	e := rt.queries[id]
	rt.mu.Unlock()
	if e == nil {
		return nil
	}
	return e.qs
}

func (rt *Runtime) queryForErr(id QueryID, create bool) (*queryState, bool, error) {
	if id < DefaultQuery {
		// QueryID is read off the network: a corrupt or hostile frame must
		// not reach the factory (whose spec derivation assumes ids ≥ 1).
		return nil, false, nil
	}
	rt.mu.Lock()
	e, ok := rt.queries[id]
	f := rt.factory // the once body may run on any contender's goroutine
	if !ok {
		if rt.retired.seen(id) {
			// Compacted id: a straggler frame must not resurrect the query
			// through the factory — the engine does not recycle ids.
			rt.mu.Unlock()
			return nil, false, nil
		}
		if !create || f == nil {
			rt.mu.Unlock()
			return nil, false, nil
		}
		// Admission control: a saturated runtime refuses to materialize new
		// query state (the default entry does not count against the cap).
		// No entry or tombstone is created, so a retry after load drops —
		// or after retired queries compact away — can still succeed.
		if rt.maxLive >= 0 && len(rt.queries)-1 >= rt.maxLive {
			rt.mu.Unlock()
			rt.met.rejected.Inc()
			if rt.trace != nil {
				rt.trace.Record(int64(id), obs.EvFrameDrop, -1, 0, dropRejected)
			}
			return nil, false, fmt.Errorf("node: query %d: %w (cap %d)", id, ErrQueryRejected, rt.maxLive)
		}
		e = &queryEntry{}
		rt.queries[id] = e
	}
	rt.mu.Unlock()

	created := false
	e.once.Do(func() {
		created = true
		inst, err := f(id)
		var qs *queryState
		if err != nil || inst == nil {
			if err == nil {
				err = fmt.Errorf("node: factory returned no instance for query %d", id)
			}
			qs = newQueryState(rt, id, nil, 0)
			qs.retired.Store(true) // tombstone: the factory runs once per id
			e.err = fmt.Errorf("node: instantiating query %d: %w", id, err)
		} else {
			qs = newQueryState(rt, id, inst, inst.Deadline)
			rt.met.instantiated.Inc()
		}
		// Publish under rt.mu: lookupQuery/Stats read e.qs without going
		// through the once.
		rt.mu.Lock()
		e.qs = qs
		rt.mu.Unlock()
		if e.err == nil {
			rt.scheduleRetire(qs)
		} else {
			// Tombstones must not leak either: compact them onto the ring
			// after the grace window, so an unbounded stream of failing (or
			// hostile unknown) ids cannot grow the demux map forever.
			rt.scheduleEntry(&timerEntry{
				when: time.Now().Add(retireGrace),
				kind: tkCompact,
				qs:   qs,
			})
		}
	})
	if e.err != nil {
		return nil, created, e.err
	}
	return e.qs, created, nil
}

// retire marks qs dead to the dispatcher, drops the protocol instance —
// which pins every host's protocol state, so results must be read before
// the deadline-plus-grace window closes — and hands each host's shard
// worker the job of dropping the host's handler reference, so nothing is
// freed while an in-flight callback could still touch it. Stats counters
// survive retirement.
func (rt *Runtime) retire(qs *queryState) {
	if qs.id == DefaultQuery {
		return
	}
	qs.retired.Store(true)
	qs.inst.Store(nil)
	rt.met.retired.Inc()
	if rt.trace != nil {
		rt.trace.Record(int64(qs.id), obs.EvRetired, -1, qs.tickNow(rt), "")
	}
	for _, h := range rt.localHosts {
		rt.dispatch(h, item{kind: itemRetire, qs: qs})
	}
}

// retireGrace is wall-clock slack past twice the query deadline before
// state is retired: late frames within it still count as (dropped)
// traffic, after it they are indistinguishable from a new query's id being
// recycled, which the engine does not allow.
const retireGrace = 2 * time.Second

// queryState is the engine's per-query bookkeeping: handlers, clock, and
// §6.3 counters.
type queryState struct {
	id QueryID
	// inst pins the protocol object (and through it every host's state)
	// until retirement clears it, after which results are no longer
	// readable and the GC can reclaim the query's protocol state.
	inst     atomic.Pointer[QueryInstance]
	handlers []sim.Handler
	be       *queryBackend
	deadline sim.Time

	// The query clock arms at the query's first send or delivery in this
	// process, not at instantiation: shards see a query at different wall
	// times, and the protocols' tick guards measure time since the query
	// reached them. A host at distance l from h_q therefore reads a clock
	// late by at most l·δ — the same skew any real deployment of the §3.1
	// model lives with. Monotonic (time.Time anchor), per query: a query
	// starting late must not inherit an earlier query's elapsed ticks.
	clockOnce  sync.Once
	clockStart atomic.Pointer[time.Time]

	// started[h] records that host h's handler has run Start for this
	// query. It is read and written only from the shard worker owning h
	// (Start, Receive and Timer of a host all serialize through its
	// shard), so no synchronization is needed.
	started []bool

	// Per-query membership (nil when the query has no churn timeline):
	// membership indexes the timeline on this query's clock, and dead[h]
	// tracks h's current state — seeded at instantiation from the
	// timeline's tick-0 membership (a tick-0 departure or a late joiner
	// starts dead), then flipped by timer-heap entries armed when the
	// query clock arms: a Leave tick marks the host dead for this query, a
	// Join tick marks it alive again and re-runs its lazy Start if it
	// never lived. Dead-for-this-query hosts drop deliveries, fire no
	// timers, and send nothing, all without touching the host's liveness
	// on any other query.
	membership *churn.Index
	dead       []atomic.Bool

	// Cross-process quiescence state (quiesce.go), all under qmu. On a
	// worker process (origin remote) the q* fields drive the announce
	// epoch machine; on the issuer peerQuiet holds the latest report per
	// peer process. origin is the instance's issuing host, -1 when the
	// instance declared none.
	origin     graph.HostID
	qmu        sync.Mutex
	qEpoch     uint32
	qAnnounced bool
	qLastAct   int64
	qActSince  time.Time
	peerQuiet  map[int32]quiesceReport

	retired   atomic.Bool
	sent      atomic.Int64
	bytes     atomic.Int64
	delivered atomic.Int64
	dropped   atomic.Int64
	processed []int64 // updated with atomics
	timeCost  atomic.Int64
}

func newQueryState(rt *Runtime, id QueryID, inst *QueryInstance, deadline sim.Time) *queryState {
	n := rt.g.Len()
	qs := &queryState{
		id:        id,
		handlers:  make([]sim.Handler, n),
		deadline:  deadline,
		origin:    -1,
		started:   make([]bool, n),
		processed: make([]int64, n),
	}
	if inst != nil {
		qs.inst.Store(inst)
		if inst.Origin >= 0 && int(inst.Origin) < n {
			qs.origin = inst.Origin
		}
		for _, h := range rt.localHosts {
			if int(h) < len(inst.Handlers) {
				qs.handlers[h] = inst.Handlers[h]
			}
		}
		if len(inst.Churn) > 0 {
			// Degenerate negative event times mean "before the query
			// existed": clamp them to tick 0 so a departure reads as
			// dead-from-the-start and a join as present-from-the-start.
			tl := make(churn.Timeline, len(inst.Churn))
			for i, e := range inst.Churn {
				if e.T < 0 {
					e.T = 0
				}
				tl[i] = e
			}
			qs.membership = tl.Index()
			qs.dead = make([]atomic.Bool, n)
			for h := 0; h < n; h++ {
				// Tick-0 state: a departure at tick 0 precedes any traffic
				// (the host was never a member of this query, so it must
				// not even run Start), and a late joiner is dead until its
				// join tick fires.
				if !qs.membership.AliveAt(graph.HostID(h), 0) {
					qs.dead[h].Store(true)
				}
			}
		}
	}
	qs.be = &queryBackend{rt: rt, qs: qs}
	return qs
}

// hostDead reports whether h has departed on this query's membership
// timeline (independent of the host's liveness for other queries).
func (qs *queryState) hostDead(h graph.HostID) bool {
	return qs.dead != nil && qs.dead[h].Load()
}

// markDead executes h's scheduled departure for this query.
func (qs *queryState) markDead(h graph.HostID) {
	if qs.dead != nil {
		qs.dead[h].Store(true)
	}
}

// markAlive executes h's scheduled join for this query: the host's
// frames, timers, and sends resume on this query's clock. The caller
// (the timer loop) follows up with an itemStart dispatch so a late
// joiner's handler runs Start lazily, exactly like first contact.
func (qs *queryState) markAlive(h graph.HostID) {
	if qs.dead != nil {
		qs.dead[h].Store(false)
	}
}

// startHost runs hd.Start exactly once for host h; must be called from
// the shard worker owning h.
func (qs *queryState) startHost(rt *Runtime, h graph.HostID, hd sim.Handler) {
	if qs.started[h] {
		return
	}
	qs.started[h] = true
	hd.Start(sim.BackendContext(qs.be, h, 0))
}

// armClock starts the query clock if it is not yet running, converts the
// query's membership timeline into absolute timer-heap entries for the
// local hosts (a transition at tick k fires k·δ after the clock armed —
// departures as tkQueryDead, joins as tkQueryJoin), and arms the engine
// clock alongside it.
func (qs *queryState) armClock(rt *Runtime) {
	qs.clockOnce.Do(func() {
		t := time.Now()
		qs.clockStart.Store(&t)
		if rt.trace != nil {
			rt.trace.Record(int64(qs.id), obs.EvFirstTraffic, -1, 0, "")
		}
		// Quiescence announces measure silence from first traffic, so the
		// worker's epoch machine arms with the clock.
		rt.armQuiesce(qs, t)
		if qs.membership != nil {
			for _, h := range rt.localHosts {
				for _, e := range qs.membership.HostEvents(h) {
					if e.T <= 0 {
						continue // tick-0 state was seeded at instantiation
					}
					kind := tkQueryDead
					if e.Kind == churn.Join {
						kind = tkQueryJoin
					}
					rt.scheduleEntry(&timerEntry{
						when: t.Add(time.Duration(e.T) * rt.hop),
						kind: kind,
						h:    h,
						qs:   qs,
					})
				}
			}
		}
	})
	rt.armEngineClock()
}

func (qs *queryState) observeChain(chain int) {
	for {
		cur := qs.timeCost.Load()
		if int64(chain) <= cur || qs.timeCost.CompareAndSwap(cur, int64(chain)) {
			return
		}
	}
}

func (qs *queryState) snapshot() Stats {
	s := Stats{
		MessagesSent:      qs.sent.Load(),
		BytesOnWire:       qs.bytes.Load(),
		MessagesDelivered: qs.delivered.Load(),
		MessagesDropped:   qs.dropped.Load(),
		PerHostProcessed:  make([]int64, len(qs.processed)),
		TimeCost:          int(qs.timeCost.Load()),
	}
	for h := range qs.processed {
		s.PerHostProcessed[h] = atomic.LoadInt64(&qs.processed[h])
	}
	return s
}

// --- sim.Backend, one per query ------------------------------------------

// queryBackend implements sim.Backend for one query on one runtime: its
// Now is the query clock, its Send stamps frames with the QueryID and
// feeds the query's cost counters, and its SetTimer goes through the
// runtime's shared timer heap.
type queryBackend struct {
	rt *Runtime
	qs *queryState
}

// Now implements sim.Backend: wall time since this query's clock armed, in
// δ hop units; zero until the query has seen any traffic here.
func (b *queryBackend) Now() sim.Time {
	start := b.qs.clockStart.Load()
	if start == nil || b.rt.hop <= 0 {
		return 0
	}
	return sim.Time(time.Since(*start) / b.rt.hop)
}

// Value implements sim.Backend.
func (b *queryBackend) Value(h graph.HostID) int64 { return b.rt.values[h] }

// Graph implements sim.Backend.
func (b *queryBackend) Graph() *graph.Graph { return b.rt.g }

// Send implements sim.Backend: the message goes to the transport stamped
// with the query id, and is delivered if the destination is alive at
// arrival.
func (b *queryBackend) Send(from, to graph.HostID, payload any, chain int) {
	rt, qs := b.rt, b.qs
	if !rt.aliveHost(from) || qs.hostDead(from) {
		return // a departed host says nothing more (§3.2), per query here
	}
	qs.armClock(rt)
	size := int64(payloadWireSize(payload))
	qs.sent.Add(1)
	qs.bytes.Add(size)
	rt.met.sent.Inc()
	rt.met.bytesOut.Add(size)
	err := rt.tr.Send(transport.Message{From: from, To: to, Query: qs.id, Chain: chain, Payload: payload})
	if err != nil {
		qs.dropped.Add(1)
		rt.met.dropSendErr.Inc()
		rt.traceDrop(qs, from, chain, dropSendErr)
	}
}

// SetTimer implements sim.Backend: the tick delta becomes an entry on the
// runtime's timer heap whose firing is serialized through the host's inbox
// like any other callback.
//
// A timer for the current tick means "end of this round": the event loop
// fires it after all of the tick's deliveries (evDeliver orders before
// evTimer), which is how WILDFIRE batches a round's arrivals into one
// flush (Example 5.1). The live realization is a quarter-hop delay — long
// enough to gather the messages of the same causal round, short enough
// that receive (≤ δ/2 on the channel transport) plus flush stays within
// the advertised per-hop bound δ.
func (b *queryBackend) SetTimer(h graph.HostID, at sim.Time, tag, chain int) {
	delay := time.Duration(at-b.Now()) * b.rt.hop
	if delay <= 0 {
		delay = b.rt.hop / 4
	}
	b.rt.scheduleEntry(&timerEntry{
		when:  time.Now().Add(delay),
		kind:  tkTimer,
		h:     h,
		qs:    b.qs,
		tag:   tag,
		chain: chain,
	})
}

// payloadWireSize is the canonical on-wire cost of a payload: the exact
// version-2 transport frame size (length prefix + header + payload body)
// where a payload codec is registered, zero otherwise (payloads outside
// the wire format). This is byte-for-byte what the TCP transport writes,
// so the §6.3 accounting charges the cost we actually pay — the chan
// transport never serializes, but is charged as if it had.
func payloadWireSize(payload any) int {
	n, err := wire.FrameSize(payload)
	if err != nil {
		return 0
	}
	return n
}
