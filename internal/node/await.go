package node

import (
	"time"

	"validity/internal/graph"
	"validity/internal/obs"
	"validity/internal/sim"
)

// ResultFloor returns the earliest wall-clock wait after which a
// quiescence-based early result read of a query with the given deadline
// (in δ ticks) is sound on this runtime.
//
// When every host of G is served locally, local silence IS global
// silence: once the pipes are empty nothing can mutate h_q's partial
// again, so one full broadcast sweep (half the 2·D̂ deadline) plus margin
// suffices and quiescence does the rest. When some hosts are served by
// other processes, remote progress is invisible to local counters — a
// worker still materializing its instances looks exactly like a
// converged fleet — so only the protocol's own deadline makes the local
// partial final: a WILDFIRE host at distance l stops combining at
// (2D̂−l+1)δ, hence h_q accepts nothing after 2D̂δ on the query clock and
// its partial is frozen once the deadline (plus a processing margin) has
// passed. The adaptive saving on a sharded fleet is the scheduling slack
// past the deadline, not the deadline itself.
//
// The sharded floor is the *unassisted* bound. With the cross-process
// quiescence control plane enabled (Config.Quiesce + Roster, quiesce.go),
// AwaitQueryResult additionally holds affirmative evidence — every peer
// process claiming a stable quiet epoch — and may then read as early as
// the all-local floor; ResultFloor itself stays the worst case so the
// bracket's cap never loosens.
func (rt *Runtime) ResultFloor(deadline sim.Time) time.Duration {
	if len(rt.localHosts) == rt.g.Len() {
		return time.Duration(deadline/2+2) * rt.hop
	}
	return time.Duration(deadline+2) * rt.hop
}

// queryActivity returns a monotone counter of every event this runtime
// has locally observed for query id — sends, deliveries, and drops. The
// counter goes quiet exactly when the query's local traffic does, which
// is the signal AwaitQueryResult polls for.
func (rt *Runtime) queryActivity(id QueryID) (int64, bool) {
	qs := rt.lookupQuery(id)
	if qs == nil {
		return 0, false
	}
	return qs.sent.Load() + qs.delivered.Load() + qs.dropped.Load(), true
}

// AwaitBracket derives the standard adaptive-read parameters for a query
// with termination time `deadline` (2·D̂, in δ ticks): the sound floor
// for this runtime (ResultFloor), a quiescence settle window of a
// quarter deadline clamped to at least two hops, and the hard cap — the
// full wall-clock budget of the old sleep-out-the-deadline path (the
// protocol deadline plus slack for scheduler noise and the last hop's
// flush). One derivation shared by the daemon's one-shot reads and the
// streaming subsystem's per-window reads keeps their latencies
// comparable.
func (rt *Runtime) AwaitBracket(deadline sim.Time) (floor, settle, hardCap time.Duration) {
	floor = rt.ResultFloor(deadline)
	settle = time.Duration(deadline) * rt.hop / 4
	if settle < 2*rt.hop {
		settle = 2 * rt.hop
	}
	hardCap = time.Duration(deadline)*rt.hop + 10*rt.hop + 100*time.Millisecond
	return floor, settle, hardCap
}

// AwaitQueryResult reads query id's declared result at local host h as
// soon as the query has converged, instead of sleeping out the full
// wall-clock deadline:
//
//   - floor is the minimum wait before any early read — ResultFloor
//     derives the sound value for this runtime (one broadcast sweep when
//     every host is local, the full protocol deadline when sharded);
//   - settle is the silence window: once the query's locally observed
//     traffic (sends, deliveries, drops) has been quiet for settle after
//     the floor, the protocol state is treated as final and the result is
//     read. WILDFIRE refloods on every partial change (§5.1), so local
//     silence means nothing en route through this shard is still mutating
//     h's partial;
//   - hardCap is the hard deadline: at hardCap the result is read
//     unconditionally, exactly as the old sleep-out-the-deadline path
//     did. Convergence can only ever shorten the wait, never loosen the
//     §3.1 deadline.
//
// On a runtime with the quiescence control plane enabled there is a
// second early path that undercuts a sharded floor: once every peer
// process of the roster reports a stable quiet epoch (remoteQuiet) and
// the local settle window has passed, the read happens as early as the
// all-local floor — the peers' affirmative claims substitute for the
// remote visibility the sharded floor otherwise has to assume away.
//
// The result read itself runs through Runtime.Do on h's own goroutine, so
// it can never race in-flight handler callbacks. The returned latency-
// relevant guarantee is the point: one-shot and per-window answer times
// reflect actual convergence, not the worst-case bound.
func (rt *Runtime) AwaitQueryResult(id QueryID, h graph.HostID, floor, settle, hardCap time.Duration) (float64, bool, error) {
	start := time.Now()
	hard := start.Add(hardCap)
	if settle <= 0 {
		settle = rt.hop
	}
	basePoll := rt.hop / 2
	if basePoll <= 0 {
		basePoll = time.Millisecond
	}
	poll := basePoll
	// Geometric backoff once an early read is in reach: half-hop polling
	// exists to catch the settle edge promptly, but a long quiet wait for
	// the floor (or a query that never settles before the cap) should not
	// spin at hop/2 for seconds. The ceiling keeps half the settle
	// window's resolution, so the edge is still seen on time.
	maxPoll := settle / 2
	if maxPoll < basePoll {
		maxPoll = basePoll
	}
	qs := rt.lookupQuery(id)
	// The quiesce fast path's own floor: never below the caller's floor
	// when that is already shorter (streams pass lag-adjusted floors).
	qFloor := rt.quiesceFloor(qs)
	if qFloor >= 0 && floor < qFloor {
		qFloor = floor
	}
	lastAct := int64(-1)
	quietSince := start
	for {
		now := time.Now()
		if !now.Before(hard) {
			break
		}
		if act, known := rt.queryActivity(id); known && act != lastAct {
			lastAct = act
			quietSince = now
			poll = basePoll
		}
		// Early read: some traffic observed, silent for the whole settle
		// window, and past either the sound floor or — with every peer
		// process affirmatively quiet — the quiesce floor.
		if lastAct > 0 && now.Sub(quietSince) >= settle {
			settled := now.Sub(start) >= floor
			quiesced := !settled && qFloor >= 0 && now.Sub(start) >= qFloor && rt.remoteQuiet(qs)
			if settled || quiesced {
				v, ok, err := rt.QueryResult(id, h)
				if err == nil && ok {
					rt.met.earlyReads.Inc()
					if rt.trace != nil && qs != nil {
						detail := "settle"
						if quiesced {
							detail = "quiesce"
						}
						rt.trace.Record(int64(id), obs.EvEarlyRead, -1, qs.tickNow(rt), detail)
					}
					return v, true, nil
				}
				// No declared result yet (or a transient read failure):
				// keep polling until the hard cap.
			}
		}
		if now.Sub(start) >= floor || (qFloor >= 0 && now.Sub(start) >= qFloor) {
			if poll < maxPoll {
				poll *= 2
				if poll > maxPoll {
					poll = maxPoll
				}
			}
		}
		wait := poll
		if rem := hard.Sub(time.Now()); rem < wait {
			wait = rem
		}
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-rt.quit:
				return rt.QueryResult(id, h)
			}
		}
	}
	rt.met.deadlineReads.Inc()
	return rt.QueryResult(id, h)
}
