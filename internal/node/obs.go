package node

import (
	"sort"
	"time"

	"validity/internal/graph"
	"validity/internal/obs"
)

// Observability wiring for the engine. The runtime holds pre-registered
// metric pointers (runtimeMetrics) so every hot-path update is one atomic
// add — and, when no registry is configured, one predictable nil branch:
// the disabled runtime behaves identically to the uninstrumented one, so
// the sim layer's byte-for-byte determinism is untouched. Queue depths
// and heap lengths are surfaced as gauge functions sampled at scrape
// time instead of updated per enqueue, which keeps the inbox and timer
// paths free of extra writes.

// Frame-drop reasons, the labels on node_frames_dropped_total and the
// Detail strings of EvFrameDrop trace events. Static strings: recording
// them allocates nothing.
const (
	dropHostDead  = "host-dead"          // delivery to a Kill'd host
	dropQueryDead = "query-dead"         // host departed on this query's timeline
	dropRetired   = "retired"            // straggler frame for a retired query
	dropUnknown   = "unknown-query"      // no factory (or invalid id) for the frame
	dropSendErr   = "send-error"         // transport reported the send lost
	dropRejected  = "admission-rejected" // live-query cap reached; not instantiated
)

// runtimeMetrics is the engine's pre-registered counter set. The zero
// value (all nil) is the disabled form.
type runtimeMetrics struct {
	framesIn      *obs.Counter
	delivered     *obs.Counter
	sent          *obs.Counter
	bytesOut      *obs.Counter
	dropHostDead  *obs.Counter
	dropQueryDead *obs.Counter
	dropRetired   *obs.Counter
	dropUnknown   *obs.Counter
	dropSendErr   *obs.Counter
	timersFired   *obs.Counter
	instantiated  *obs.Counter
	rejected      *obs.Counter
	retired       *obs.Counter
	compacted     *obs.Counter
	quiesceSent   *obs.Counter
	quiesceRecv   *obs.Counter
	earlyReads    *obs.Counter
	deadlineReads *obs.Counter
}

// initObs registers the runtime's metrics and sampled gauges on reg and
// fills rt.met. Called from New; reg may be nil (disabled).
func (rt *Runtime) initObs(reg *obs.Registry, tracer *obs.Tracer) {
	rt.obs = reg
	rt.trace = tracer
	if reg == nil {
		return
	}
	const drops = "node_frames_dropped_total"
	const dropsHelp = "Frames dropped by the engine, by reason."
	rt.met = runtimeMetrics{
		framesIn:      reg.Counter("node_frames_demuxed_total", "Transport frames demultiplexed to a query."),
		delivered:     reg.Counter("node_messages_delivered_total", "Messages delivered to alive local handlers (§6.3)."),
		sent:          reg.Counter("node_messages_sent_total", "Messages sent by local hosts (§6.3)."),
		bytesOut:      reg.Counter("node_bytes_sent_total", "Canonical wire bytes of sent payloads (§6.3)."),
		dropHostDead:  reg.Counter(drops, dropsHelp, "reason="+dropHostDead),
		dropQueryDead: reg.Counter(drops, dropsHelp, "reason="+dropQueryDead),
		dropRetired:   reg.Counter(drops, dropsHelp, "reason="+dropRetired),
		dropUnknown:   reg.Counter(drops, dropsHelp, "reason="+dropUnknown),
		dropSendErr:   reg.Counter(drops, dropsHelp, "reason="+dropSendErr),
		timersFired:   reg.Counter("node_timers_fired_total", "Protocol timer callbacks fired off the shared heap."),
		instantiated:  reg.Counter("node_queries_instantiated_total", "Query instances materialized (issued or first contact)."),
		rejected:      reg.Counter("engine_queries_rejected_total", "Query instantiations rejected by the live-query admission cap."),
		retired:       reg.Counter("node_queries_retired_total", "Queries whose protocol state was retired."),
		compacted:     reg.Counter("node_queries_compacted_total", "Retired queries compacted to ring summaries."),
		quiesceSent:   reg.Counter("node_quiesce_frames_sent_total", "Quiescence announces sent to issuing processes."),
		quiesceRecv:   reg.Counter("node_quiesce_frames_received_total", "Quiescence announces received from worker processes."),
		earlyReads:    reg.Counter("node_early_reads_total", "AwaitQueryResult reads returned before the hard deadline cap."),
		deadlineReads: reg.Counter("node_deadline_reads_total", "AwaitQueryResult reads that fell through to the hard deadline cap."),
	}
	reg.Gauge("node_shards", "Shard workers executing host callbacks.").Set(int64(len(rt.shards)))
	reg.GaugeFunc("node_shard_queue_depth_max", "Deepest per-shard callback backlog (queued plus parked).", func() float64 {
		var max int
		for _, s := range rt.shards {
			if n := s.depth(); n > max {
				max = n
			}
		}
		return float64(max)
	})
	reg.GaugeFunc("node_shard_queue_depth_total", "Pending callbacks across all shard queues (queued plus parked).", func() float64 {
		var total int
		for _, s := range rt.shards {
			total += s.depth()
		}
		return float64(total)
	})
	reg.GaugeFunc("node_timer_heap_len", "Entries on the shared timer heap.", func() float64 {
		rt.tmu.Lock()
		n := len(rt.theap)
		rt.tmu.Unlock()
		return float64(n)
	})
	reg.GaugeFunc("node_overflow_parked", "Items parked on congested shards' overflow queues.", func() float64 {
		var total int
		for _, s := range rt.shards {
			s.mu.Lock()
			total += len(s.ov)
			s.mu.Unlock()
		}
		return float64(total)
	})
	reg.GaugeFunc("node_queries_live", "Queries with live (not yet compacted) state.", func() float64 {
		rt.mu.Lock()
		n := len(rt.queries)
		rt.mu.Unlock()
		return float64(n)
	})
	obs.RegisterRuntimeHealth(reg)
}

// Obs returns the runtime's metrics registry (nil when disabled); the
// streaming subsystem and the daemon register their own histograms on it.
func (rt *Runtime) Obs() *obs.Registry { return rt.obs }

// Trace returns the runtime's query tracer (nil when disabled).
func (rt *Runtime) Trace() *obs.Tracer { return rt.trace }

// tickNow is the query's current tick on its own clock (0 before the
// clock arms), the stamp trace events carry.
func (qs *queryState) tickNow(rt *Runtime) int64 {
	start := qs.clockStart.Load()
	if start == nil || rt.hop <= 0 {
		return 0
	}
	return int64(time.Since(*start) / rt.hop)
}

// traceDrop records one dropped frame for qs in the trace ring; the
// matching counter is bumped at the call site. chain is the frame's
// causal depth (0 when no frame is in hand), the tiebreaker the fleet
// merger uses to order same-tick events across processes.
func (rt *Runtime) traceDrop(qs *queryState, h graph.HostID, chain int, reason string) {
	if rt.trace == nil {
		return
	}
	rt.trace.RecordChain(int64(qs.id), obs.EvFrameDrop, int(h), qs.tickNow(rt), chain, reason)
}

// QuerySnapshot is one live query's state for /debug/queries: the §6.3
// counters with the per-host computation array collapsed to its maximum,
// plus the query's current tick and retirement flag.
type QuerySnapshot struct {
	Query             QueryID `json:"query"`
	Retired           bool    `json:"retired"`
	Tick              int64   `json:"tick"`
	MessagesSent      int64   `json:"messages_sent"`
	BytesOnWire       int64   `json:"bytes_on_wire"`
	MessagesDelivered int64   `json:"messages_delivered"`
	MessagesDropped   int64   `json:"messages_dropped"`
	MaxComputation    int64   `json:"max_computation"`
	TimeCost          int     `json:"time_cost"`
}

// QuerySnapshots returns a point-in-time view of every query with live
// state on this runtime (including retired-but-not-yet-compacted ones),
// sorted by id. Compacted history is available through RetiredStats.
func (rt *Runtime) QuerySnapshots() []QuerySnapshot {
	rt.mu.Lock()
	qss := make([]*queryState, 0, len(rt.queries))
	for _, e := range rt.queries {
		if e.qs != nil {
			qss = append(qss, e.qs)
		}
	}
	rt.mu.Unlock()
	out := make([]QuerySnapshot, 0, len(qss))
	for _, qs := range qss {
		s := qs.snapshot()
		out = append(out, QuerySnapshot{
			Query:             qs.id,
			Retired:           qs.retired.Load(),
			Tick:              qs.tickNow(rt),
			MessagesSent:      s.MessagesSent,
			BytesOnWire:       s.BytesOnWire,
			MessagesDelivered: s.MessagesDelivered,
			MessagesDropped:   s.MessagesDropped,
			MaxComputation:    s.MaxComputation(),
			TimeCost:          s.TimeCost,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}
