package node

import (
	"math/rand"

	"validity/internal/graph"
	"validity/internal/protocol"
	"validity/internal/sim"
)

// Install materializes p's per-host handlers and moves the local ones onto
// rt, each wrapped with an independent per-host RNG derived from seed.
//
// Protocols build their handlers in Install(*sim.Network), so a scratch
// event-loop network over the same graph is used purely as a handler
// factory — it is never run. The per-host seed derivation depends only on
// (seed, host), so a fleet of processes sharding one topology builds
// identical sketch coin-tosses for any given host no matter which process
// serves it, which keeps multi-process results reproducible.
func Install(rt *Runtime, p protocol.Protocol, seed int64) error {
	scratch := sim.NewNetwork(sim.Config{Graph: rt.Graph(), Seed: seed})
	if err := p.Install(scratch); err != nil {
		return err
	}
	for h := 0; h < rt.Graph().Len(); h++ {
		id := graph.HostID(h)
		if !rt.Local(id) {
			continue
		}
		rng := rand.New(rand.NewSource(seed ^ (int64(h)+1)*0x5851F42D4C957F2D))
		rt.SetHandler(id, WithRand(scratch.Handler(id), rng))
	}
	return nil
}

// InstallLive is Install for the single-process LiveNetwork face.
func InstallLive(ln *LiveNetwork, p protocol.Protocol, seed int64) error {
	return Install(ln.rt, p, seed)
}
