package node

import (
	"math/rand"

	"validity/internal/graph"
	"validity/internal/protocol"
	"validity/internal/sim"
)

// materializeHandlers builds p's per-host handlers, wrapping each local
// one with an independent per-host RNG derived from seed.
//
// Protocols build their handlers in Install(*sim.Network), so a scratch
// event-loop network over the same graph is used purely as a handler
// factory — it is never run. The per-host seed derivation depends only on
// (seed, host), so a fleet of processes sharding one topology builds
// identical sketch coin-tosses for any given host no matter which process
// serves it, which keeps multi-process results reproducible.
func materializeHandlers(rt *Runtime, p protocol.Protocol, seed int64) ([]sim.Handler, error) {
	scratch := sim.NewNetwork(sim.Config{Graph: rt.Graph(), Seed: seed})
	if err := p.Install(scratch); err != nil {
		return nil, err
	}
	hs := make([]sim.Handler, rt.Graph().Len())
	for h := range hs {
		id := graph.HostID(h)
		if !rt.Local(id) {
			continue
		}
		rng := rand.New(rand.NewSource(seed ^ (int64(h)+1)*0x5851F42D4C957F2D))
		hs[h] = WithRand(scratch.Handler(id), rng)
	}
	return hs, nil
}

// Install materializes p's per-host handlers and moves the local ones onto
// rt's default query — the single-query face over the engine (multi-query
// callers register a QueryFactory built on BuildInstance instead).
func Install(rt *Runtime, p protocol.Protocol, seed int64) error {
	hs, err := materializeHandlers(rt, p, seed)
	if err != nil {
		return err
	}
	for h, hd := range hs {
		if hd != nil {
			rt.SetHandler(graph.HostID(h), hd)
		}
	}
	return nil
}

// InstallLive is Install for the single-process LiveNetwork face.
func InstallLive(ln *LiveNetwork, p protocol.Protocol, seed int64) error {
	return Install(ln.rt, p, seed)
}
