package node

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/sim"
	"validity/internal/transport"
)

// payloadRecorder records the payload strings a host receives. The
// optional hooks are set before Start and never mutated, so they need no
// locking.
type payloadRecorder struct {
	mu     sync.Mutex
	got    []string
	onRecv func(ctx *sim.Context) // runs once, on the first delivery
	fire   func(ctx *sim.Context, tag int)
	seen   atomic.Bool
}

func (r *payloadRecorder) Start(ctx *sim.Context) {}
func (r *payloadRecorder) Receive(ctx *sim.Context, msg sim.Message) {
	r.mu.Lock()
	r.got = append(r.got, msg.Payload.(string))
	r.mu.Unlock()
	if r.onRecv != nil && r.seen.CompareAndSwap(false, true) {
		r.onRecv(ctx)
	}
}
func (r *payloadRecorder) Timer(ctx *sim.Context, tag int) {
	if r.fire != nil {
		r.fire(ctx, tag)
	}
}
func (r *payloadRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.got...)
}

// pinger sends one payload at Start and another from a timer.
type pinger struct {
	to      graph.HostID
	laterAt sim.Time
}

func (p *pinger) Start(ctx *sim.Context) {
	ctx.Send(p.to, "start")
	if p.laterAt > 0 {
		ctx.SetTimer(p.laterAt, 1)
	}
}
func (p *pinger) Receive(ctx *sim.Context, msg sim.Message) {}
func (p *pinger) Timer(ctx *sim.Context, tag int)           { ctx.Send(p.to, "later") }

// TestPerQueryChurnIsolation is the membership layer's core engine test:
// one fleet, two concurrent queries, and host 1 is dead from tick 0 for
// query 1 only. Query 1's traffic to it must be swallowed while query 2
// keeps hearing from the very same host — and the host stays alive at
// runtime and transport level throughout (per-query death never touches
// the degenerate all-queries kill path).
func TestPerQueryChurnIsolation(t *testing.T) {
	const hop = raceSlowdown * 10 * time.Millisecond
	g := line(2)
	tr := transport.NewChannel(2, hop/2)
	rt, err := New(Config{Graph: g, Transport: tr, Hop: hop})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	recorders := make(map[QueryID]*payloadRecorder)
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		r := &payloadRecorder{}
		mu.Lock()
		recorders[id] = r
		mu.Unlock()
		inst := &QueryInstance{
			Handlers: []sim.Handler{&pinger{to: 1}, r},
			Deadline: 1000,
		}
		if id == 1 {
			inst.Churn = churn.Schedule{{H: 1, T: 0}}
		}
		return inst, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	for _, id := range []QueryID{1, 2} {
		if _, err := rt.StartQuery(id); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		q2got := len(recorders[2].snapshot())
		mu.Unlock()
		st1, _ := rt.QueryStats(1)
		if q2got > 0 && st1.MessagesDropped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query 2 delivered %d, query 1 dropped %d; want >0 and >0",
				q2got, st1.MessagesDropped)
		}
		time.Sleep(time.Millisecond)
	}
	if got := recorders[1].snapshot(); len(got) != 0 {
		t.Fatalf("host 1 is dead for query 1 but received %v", got)
	}
	st1, _ := rt.QueryStats(1)
	if st1.MessagesDelivered != 0 {
		t.Fatalf("query 1 delivered %d messages to a dead-for-query host", st1.MessagesDelivered)
	}
	if !rt.Alive(1) || !tr.Alive(1) {
		t.Fatal("per-query death leaked into runtime/transport liveness")
	}
}

// TestPerQueryChurnTimedDeparture drives a mid-query departure through
// the shared timer heap: host 1 leaves query 1 at tick 3 of that query's
// clock, so the tick-0 payload lands, the tick-6 payload is dropped, and
// the tick-5 timer host 1 armed before departing never fires.
func TestPerQueryChurnTimedDeparture(t *testing.T) {
	const hop = raceSlowdown * 10 * time.Millisecond
	g := line(2)
	rt, err := New(Config{Graph: g, Transport: transport.NewChannel(2, hop/2), Hop: hop})
	if err != nil {
		t.Fatal(err)
	}
	var deadTimerFired atomic.Bool
	r := &payloadRecorder{
		onRecv: func(ctx *sim.Context) { ctx.SetTimer(5, 9) },
		fire:   func(ctx *sim.Context, tag int) { deadTimerFired.Store(true) },
	}
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		return &QueryInstance{
			Handlers: []sim.Handler{&pinger{to: 1, laterAt: 6}, r},
			Deadline: 1000,
			Churn:    churn.Schedule{{H: 1, T: 3}},
		}, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(r.snapshot()) < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("host 1 received %v, want the tick-0 payload", r.snapshot())
		}
		time.Sleep(time.Millisecond)
	}

	// Wait past tick 6's send plus slack: the "later" payload must have
	// been dropped at the now-departed host, and the tick-5 timer host 1
	// armed at its first delivery must have been suppressed.
	time.Sleep(12 * hop)
	if got := r.snapshot(); len(got) != 1 || got[0] != "start" {
		t.Fatalf("host 1 received %v, want only the pre-departure payload", got)
	}
	if deadTimerFired.Load() {
		t.Fatal("a timer fired at a host after its per-query departure")
	}
	st, _ := rt.QueryStats(1)
	if st.MessagesDropped == 0 {
		t.Fatal("post-departure payload was not counted as dropped")
	}
}

// TestRetiredRing exercises the bounded summary ring directly: eviction
// order, id lookup, and the recycling guard's view.
func TestRetiredRing(t *testing.T) {
	var r retiredRing
	for i := 1; i <= retiredRingCap+40; i++ {
		r.push(RetiredStats{Query: QueryID(i), MessagesSent: int64(i)})
	}
	list := r.list()
	if len(list) != retiredRingCap {
		t.Fatalf("ring holds %d summaries, want %d", len(list), retiredRingCap)
	}
	if list[0].Query != 41 || list[len(list)-1].Query != QueryID(retiredRingCap+40) {
		t.Fatalf("ring spans [%d, %d], want [41, %d]",
			list[0].Query, list[len(list)-1].Query, retiredRingCap+40)
	}
	if r.seen(40) || !r.seen(41) {
		t.Fatal("eviction did not track ids")
	}
	if s, ok := r.get(100); !ok || s.MessagesSent != 100 {
		t.Fatalf("get(100) = %+v, %t", s, ok)
	}
}

// TestQueryCompaction follows a query past retirement into compaction:
// its O(hosts) state and demux entry are dropped, its summary lands on
// the ring (readable via RetiredStats and QueryStats), runtime totals
// still include it, and a straggler frame neither re-invokes the factory
// nor resurrects the query.
func TestQueryCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps out the retirement and compaction grace windows")
	}
	g := line(2)
	tr := transport.NewChannel(2, 0)
	rt, err := New(Config{Graph: g, Transport: tr, Hop: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var factoryCalls atomic.Int64
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		factoryCalls.Add(1)
		r := &payloadRecorder{}
		return &QueryInstance{Handlers: []sim.Handler{r, r}, Deadline: 1}, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(transport.Message{From: 0, To: 1, Query: 1, Chain: 1, Payload: "live"}); err != nil {
		t.Fatal(err)
	}
	totalBefore := rt.Stats()
	if totalBefore.MessagesDelivered == 0 {
		// The frame may still be in flight; wait for it so the compacted
		// totals comparison below is meaningful.
		deadline := time.Now().Add(5 * time.Second)
		for rt.Stats().MessagesDelivered == 0 {
			if time.Now().After(deadline) {
				t.Fatal("probe frame never delivered")
			}
			time.Sleep(time.Millisecond)
		}
	}

	deadline := time.Now().Add(2*retireGrace + 10*time.Second)
	for {
		if rs := rt.RetiredStats(); len(rs) == 1 && rs[0].Query == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query 1 never compacted onto the retired ring")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rt.lookupQuery(1) != nil {
		t.Fatal("compaction left the demux entry behind")
	}
	sum := rt.RetiredStats()[0]
	if sum.MessagesDelivered == 0 {
		t.Fatalf("compacted summary lost the delivery count: %+v", sum)
	}
	st, ok := rt.QueryStats(1)
	if !ok || st.MessagesDelivered != sum.MessagesDelivered {
		t.Fatalf("QueryStats after compaction = %+v, %t; want ring summary", st, ok)
	}
	if total := rt.Stats(); total.MessagesDelivered == 0 {
		t.Fatal("runtime totals forgot the compacted query")
	}

	calls := factoryCalls.Load()
	if err := tr.Send(transport.Message{From: 0, To: 1, Query: 1, Chain: 1, Payload: "straggler"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if factoryCalls.Load() != calls {
		t.Fatal("straggler frame re-invoked the factory for a compacted id")
	}
	if rt.lookupQuery(1) != nil {
		t.Fatal("straggler frame resurrected a compacted query")
	}
}

// TestRuntimeWarmsTransportAtStart pins the boot-time half of the
// warm-up-dial contract: Start alone — no query, no traffic — makes the
// runtime pre-establish connections to remote peers. The test poses as
// the remote process with a bare listener and must see an inbound
// connection without ever being sent a frame.
func TestRuntimeWarmsTransportAtStart(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ports := freeAddrs(t, 1)
	addrs := []string{ports[0], l.Addr().String()}

	accepted := make(chan struct{})
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Close()
		close(accepted)
	}()

	rt, err := New(Config{
		Graph:     line(2),
		Transport: transport.NewTCP(addrs),
		Hop:       time.Millisecond,
		Local:     []graph.HostID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	select {
	case <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("runtime Start never warmed the connection to the remote peer")
	}
}

// TestTombstoneCompaction: a query id whose factory fails must not leave
// a demux entry behind forever — the tombstone compacts onto the ring
// like any retired query, and later frames for the id neither re-run the
// factory nor recreate the entry.
func TestTombstoneCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps out the tombstone grace window")
	}
	g := line(2)
	tr := transport.NewChannel(2, 0)
	rt, err := New(Config{Graph: g, Transport: tr, Hop: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var factoryCalls atomic.Int64
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		factoryCalls.Add(1)
		return nil, fmt.Errorf("boom")
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	if err := tr.Send(transport.Message{From: 0, To: 1, Query: 9, Chain: 1, Payload: "x"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(retireGrace + 10*time.Second)
	for factoryCalls.Load() == 0 { // the frame delivers asynchronously
		if time.Now().After(deadline) {
			t.Fatal("frame never reached the factory")
		}
		time.Sleep(time.Millisecond)
	}
	for {
		rt.mu.Lock()
		_, present := rt.queries[9]
		rt.mu.Unlock()
		if !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("factory-failure tombstone never compacted out of the demux map")
		}
		time.Sleep(10 * time.Millisecond)
	}
	calls := factoryCalls.Load()
	if calls != 1 {
		t.Fatalf("factory ran %d times before compaction, want 1", calls)
	}
	if err := tr.Send(transport.Message{From: 0, To: 1, Query: 9, Chain: 1, Payload: "again"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if factoryCalls.Load() != calls {
		t.Fatal("straggler frame re-ran the factory for a compacted tombstone id")
	}
	rt.mu.Lock()
	_, present := rt.queries[9]
	rt.mu.Unlock()
	if present {
		t.Fatal("straggler frame recreated the compacted tombstone entry")
	}
}
