package node

import (
	"net"
	"testing"
	"time"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/oracle"
	"validity/internal/protocol"
	"validity/internal/topology"
	"validity/internal/transport"
)

// fmFactor is the multiplicative slack allowed for FM-sketch estimates in
// these tests: with c = 64 repetitions the estimator's relative standard
// error is ≈ 0.78/√c ≈ 10%, so 1.5× is > 4σ of headroom.
const fmFactor = 1.5

var fmParams = agg.Params{Vectors: 64, Bits: 32}

// testHop is the wall-clock δ used by these tests, widened under -race.
const testHop = raceSlowdown * 5 * time.Millisecond

// waitQuery sleeps past the query deadline with slack for scheduler noise.
func waitQuery(dHat int, hop time.Duration) {
	time.Sleep(time.Duration(2*dHat+10)*hop + 50*time.Millisecond)
}

func TestRuntimeWildfireCountMatchesOracle(t *testing.T) {
	const n = 150
	g := topology.NewGnutella(n, 11)
	dHat := g.Diameter(nil) + 2
	q := protocol.Query{Kind: agg.Count, Hq: 0, DHat: dHat, Params: fmParams}
	wf := protocol.NewWildfire(q)

	ln := NewLiveNetwork(g, nil, testHop)
	if err := InstallLive(ln, wf, 17); err != nil {
		t.Fatal(err)
	}
	ln.Start()
	waitQuery(dHat, testHop)
	ln.Stop()

	v, ok := wf.Result()
	if !ok {
		t.Fatal("wildfire declared no result")
	}
	b := oracle.Compute(g, make([]int64, n), 0, nil, q.Deadline(), agg.Count)
	if b.LowerValue != n || b.UpperValue != n {
		t.Fatalf("oracle bounds [%v, %v], want [%d, %d]", b.LowerValue, b.UpperValue, n, n)
	}
	if !b.ValidFactor(v, fmFactor) {
		t.Fatalf("estimate %.1f outside FM bounds [%.1f, %.1f] × %.1f",
			v, b.LowerValue, b.UpperValue, fmFactor)
	}
	st := ln.Runtime().Stats()
	if st.MessagesSent == 0 || st.MaxComputation() == 0 || st.TimeCost == 0 {
		t.Fatalf("cost accounting empty: %+v", st)
	}
	if st.TimeCost > 4*dHat {
		t.Fatalf("time cost %d exceeds any causal chain a %d-deadline query can make", st.TimeCost, 2*dHat)
	}
}

func TestRuntimeWildfireCountUnderKill(t *testing.T) {
	const n = 120
	g := topology.NewGnutella(n, 13)
	dHat := g.Diameter(nil) + 2
	q := protocol.Query{Kind: agg.Count, Hq: 0, DHat: dHat, Params: fmParams}
	wf := protocol.NewWildfire(q)

	ln := NewLiveNetwork(g, nil, testHop)
	if err := InstallLive(ln, wf, 19); err != nil {
		t.Fatal(err)
	}
	// A tenth of the network is switched off before the query starts
	// (§3.2 departures; h_q itself is protected as in the experiments).
	var sched churn.Schedule
	for h := graph.HostID(1); int(h) <= n/10; h++ {
		ln.Kill(h)
		sched = append(sched, churn.Failure{H: h, T: 0})
	}
	ln.Start()
	waitQuery(dHat, testHop)
	ln.Stop()

	v, ok := wf.Result()
	if !ok {
		t.Fatal("wildfire declared no result")
	}
	b := oracle.Compute(g, make([]int64, n), 0, sched, q.Deadline(), agg.Count)
	if b.LowerValue >= b.UpperValue {
		t.Fatalf("degenerate oracle bounds [%v, %v]", b.LowerValue, b.UpperValue)
	}
	if !b.ValidFactor(v, fmFactor) {
		t.Fatalf("estimate %.1f outside single-site validity bounds [%.1f, %.1f] × %.1f",
			v, b.LowerValue, b.UpperValue, fmFactor)
	}
}

// freeAddrs reserves n distinct loopback addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	ls := make([]net.Listener, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range ls {
		l.Close()
	}
	return addrs
}

// TestRuntimeShardedOverTCP runs one WILDFIRE COUNT with the topology
// sharded across two runtimes connected by the TCP transport — the
// in-process twin of the cmd/validityd multi-process demo.
func TestRuntimeShardedOverTCP(t *testing.T) {
	const n = 60
	const hop = testHop
	g := topology.NewRandom(n, 5, 23)
	dHat := g.Diameter(nil) + 2

	ports := freeAddrs(t, 2)
	addrs := make([]string, n)
	var localA, localB []graph.HostID
	for h := 0; h < n; h++ {
		if h < n/2 {
			addrs[h] = ports[0]
			localA = append(localA, graph.HostID(h))
		} else {
			addrs[h] = ports[1]
			localB = append(localB, graph.HostID(h))
		}
	}

	newShard := func(local []graph.HostID) (*Runtime, *protocol.Wildfire) {
		q := protocol.Query{Kind: agg.Count, Hq: 0, DHat: dHat, Params: fmParams}
		wf := protocol.NewWildfire(q)
		rt, err := New(Config{
			Graph:     g,
			Transport: transport.NewTCP(addrs),
			Hop:       hop,
			Local:     local,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := Install(rt, wf, 29); err != nil {
			t.Fatal(err)
		}
		return rt, wf
	}

	rtB, _ := newShard(localB)
	if err := rtB.Start(); err != nil {
		t.Fatal(err)
	}
	defer rtB.Stop()
	rtA, wfA := newShard(localA)
	if err := rtA.Start(); err != nil {
		t.Fatal(err)
	}
	defer rtA.Stop()

	waitQuery(dHat, hop)
	rtA.Stop()
	rtB.Stop()

	v, ok := wfA.Result()
	if !ok {
		t.Fatal("wildfire declared no result at the sharded h_q")
	}
	b := oracle.Compute(g, make([]int64, n), 0, nil, protocol.Query{DHat: dHat}.Deadline(), agg.Count)
	if !b.ValidFactor(v, fmFactor) {
		t.Fatalf("sharded estimate %.1f outside [%.1f, %.1f] × %.1f",
			v, b.LowerValue, b.UpperValue, fmFactor)
	}
	if rtA.Stats().MessagesSent == 0 || rtB.Stats().MessagesSent == 0 {
		t.Fatal("a shard sent no messages; the query never crossed the wire")
	}
}
