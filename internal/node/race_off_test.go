//go:build !race

package node

// raceSlowdown is 1 without the race detector; see race_on_test.go.
const raceSlowdown = 1
