package node

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"validity/internal/graph"
	"validity/internal/obs"
	"validity/internal/sim"
	"validity/internal/transport"
)

// orderProbe is a handler asserting the shard scheduler's correctness
// invariant at one host: callbacks arrive in enqueue order and never run
// concurrently. `next` is a deliberately plain (non-atomic) field — under
// `go test -race`, two shard workers touching the same host would trip
// the race detector even if the CAS guard happened to miss the overlap.
type orderProbe struct {
	h    graph.HostID
	busy atomic.Bool
	next int
	errs chan string
}

func (p *orderProbe) Start(ctx *sim.Context) {}
func (p *orderProbe) Receive(ctx *sim.Context, msg sim.Message) {
	if !p.busy.CompareAndSwap(false, true) {
		p.errs <- fmt.Sprintf("host %d: concurrent callbacks", p.h)
		return
	}
	if seq := msg.Payload.(int); seq != p.next {
		p.errs <- fmt.Sprintf("host %d: seq %d delivered, want %d (reorder)", p.h, seq, p.next)
	}
	p.next++
	p.busy.Store(false)
}
func (p *orderProbe) Timer(ctx *sim.Context, tag int) {}

// TestShardSerializationProperty is the property test for host-sharded
// execution: 16 hosts multiplexed onto 4 shard workers with a queue small
// enough to exercise back-pressure, each host fed an independent ordered
// message stream from its own producer goroutine. Every host must see its
// stream strictly in order with no concurrent callbacks (the plain `next`
// counter doubles as a race-detector tripwire), and a final Do per host —
// which serializes behind the host's queued callbacks — must observe the
// complete stream.
func TestShardSerializationProperty(t *testing.T) {
	const (
		hosts   = 16
		msgs    = 150
		nshards = 4
	)
	g := line(hosts)
	tr := transport.NewChannel(hosts, 0)
	rt, err := New(Config{
		Graph:      g,
		Transport:  tr,
		Hop:        time.Millisecond,
		Shards:     nshards,
		ShardQueue: 8, // force back-pressure and queue reuse
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Shards(); got != nshards {
		t.Fatalf("runtime has %d shards, want %d", got, nshards)
	}
	errs := make(chan string, hosts*msgs)
	probes := make([]*orderProbe, hosts)
	for h := 0; h < hosts; h++ {
		probes[h] = &orderProbe{h: graph.HostID(h), errs: errs}
		rt.SetHandler(graph.HostID(h), probes[h])
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	// One producer per host: the channel transport's single delivery
	// scheduler preserves global send order, so each host's stream arrives
	// at its shard in sequence even while 16 streams interleave.
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h graph.HostID) {
			defer wg.Done()
			for seq := 0; seq < msgs; seq++ {
				if err := tr.Send(transport.Message{From: h, To: h, Query: DefaultQuery, Payload: seq}); err != nil {
					errs <- fmt.Sprintf("host %d: send %d: %v", h, seq, err)
					return
				}
			}
		}(graph.HostID(h))
	}
	wg.Wait()

	// Do serializes behind everything already queued for the host, so when
	// it runs, the host's full stream must have been processed — and the
	// closure reads `next` from the shard worker, not the test goroutine.
	for h := 0; h < hosts; h++ {
		h := graph.HostID(h)
		deadline := time.Now().Add(10 * time.Second)
		for {
			var got int
			if err := rt.Do(h, func() { got = probes[h].next }); err != nil {
				t.Fatal(err)
			}
			if got == msgs {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("host %d processed %d/%d messages", h, got, msgs)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// gateHandler blocks its shard worker inside Receive until released —
// the congested-host fixture.
type gateHandler struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
	seen    []int
}

func (gh *gateHandler) Start(ctx *sim.Context) {}
func (gh *gateHandler) Receive(ctx *sim.Context, msg sim.Message) {
	gh.once.Do(func() {
		close(gh.entered)
		<-gh.release
	})
	gh.seen = append(gh.seen, msg.Payload.(int))
}
func (gh *gateHandler) Timer(ctx *sim.Context, tag int) {}

// TestDispatchCongestionDoesNotBlockTimers wedges one shard — its worker
// parked inside a handler, its queue full, dispatch spilling to the
// overflow list — and checks the two halves of the timer-loop contract:
// a timer owned by another shard still fires on time, and the congested
// shard's parked items drain in FIFO order once the handler returns.
func TestDispatchCongestionDoesNotBlockTimers(t *testing.T) {
	const hop = raceSlowdown * 10 * time.Millisecond
	g := line(2)
	tr := transport.NewChannel(2, 0)
	rt, err := New(Config{
		Graph:      g,
		Transport:  tr,
		Hop:        hop,
		Shards:     2, // host 0 → shard 0, host 1 → shard 1
		ShardQueue: 1, // widened to 2 (hostsInShard+1) by New
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateHandler{entered: make(chan struct{}), release: make(chan struct{})}
	rt.SetHandler(0, gate)
	fired := make(chan int, 1)
	rt.SetHandler(1, &timerHandler{
		onStart: func(ctx *sim.Context) {},
		onTimer: func(tag int) { fired <- tag },
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	// Wedge shard 0: first message parks the worker inside Receive...
	if err := tr.Send(transport.Message{From: 0, To: 0, Query: DefaultQuery, Payload: 0}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("handler never entered")
	}
	// ...then timer-loop-style dispatches overfill its queue (cap 2) and
	// spill onto the overflow list. dispatch must return without blocking —
	// the test would hang here if it didn't.
	const parked = 10
	for seq := 1; seq <= parked; seq++ {
		rt.dispatch(0, item{kind: itemMsg, qs: rt.def, msg: transport.Message{
			From: 0, To: 0, Query: DefaultQuery, Payload: seq,
		}})
	}
	if d := rt.shards[rt.shardOf[0]].depth(); d < parked-2 {
		t.Fatalf("congested shard depth %d, want ≥ %d (overflow never engaged)", d, parked-2)
	}

	// The other shard's timer must fire while shard 0 is wedged.
	rt.scheduleEntry(&timerEntry{when: time.Now().Add(hop), kind: tkTimer, h: 1, qs: rt.def, tag: 7})
	select {
	case tag := <-fired:
		if tag != 7 {
			t.Fatalf("timer fired with tag %d, want 7", tag)
		}
	case <-time.After(10 * hop):
		t.Fatal("timer on the idle shard never fired: the timer loop blocked on the congested shard")
	}

	// Release the wedge: queued and parked items must drain in FIFO order.
	close(gate.release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var seen []int
		if err := rt.Do(0, func() { seen = append([]int(nil), gate.seen...) }); err != nil {
			t.Fatal(err)
		}
		if len(seen) == parked+1 {
			for i, s := range seen {
				if s != i {
					t.Fatalf("drained order %v: overflow items out of FIFO order", seen)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("congested shard drained %d/%d items", len(seen), parked+1)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionControlCapsLiveQueries fills a runtime to its
// MaxLiveQueries cap and checks instantiation beyond it is refused on
// both ingress paths — StartQuery returns ErrQueryRejected, an unknown
// query's frame never reaches the factory — with the rejection counted
// on engine_queries_rejected_total and traced in the per-query event
// ring. No tombstone is created, so capacity freed later readmits the id.
func TestAdmissionControlCapsLiveQueries(t *testing.T) {
	g := line(2)
	tr := transport.NewChannel(2, 0)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16, 16)
	rt, err := New(Config{
		Graph:          g,
		Transport:      tr,
		Hop:            time.Millisecond,
		MaxLiveQueries: 2,
		Obs:            reg,
		Trace:          tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	var factoryCalls atomic.Int64
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		factoryCalls.Add(1)
		r := &seqRecorder{}
		return &QueryInstance{Handlers: []sim.Handler{r, r}, Deadline: 1000}, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	for _, id := range []QueryID{1, 2} {
		if _, err := rt.StartQuery(id); err != nil {
			t.Fatalf("query %d under the cap rejected: %v", id, err)
		}
	}
	if _, err := rt.StartQuery(3); !errors.Is(err, ErrQueryRejected) {
		t.Fatalf("StartQuery over the cap returned %v, want ErrQueryRejected", err)
	}

	// The lazy-instantiation ingress is capped too: a frame for an unknown
	// query must be refused before the factory, not after.
	before := factoryCalls.Load()
	if err := tr.Send(transport.Message{From: 0, To: 1, Query: 4, Chain: 1, Payload: "ping"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := factoryCalls.Load(); n != before {
		t.Fatalf("factory invoked for a frame over the admission cap (%d → %d calls)", before, n)
	}
	if _, ok := rt.QueryStats(4); ok {
		t.Fatal("rejected query 4 left state behind")
	}
	if got := rt.met.rejected.Value(); got != 2 {
		t.Fatalf("engine_queries_rejected_total = %d, want 2", got)
	}
	assertTracedRejection := func(id int64) {
		t.Helper()
		for _, ev := range tracer.Events(id) {
			if ev.Kind == obs.EvFrameDrop && ev.Detail == dropRejected {
				return
			}
		}
		t.Fatalf("query %d has no %q event in its trace ring", id, dropRejected)
	}
	assertTracedRejection(3)
	assertTracedRejection(4)
}

// TestShardDefaultsClamp pins the shard-count defaulting: zero Shards
// resolves to at least one worker, and never more workers than local
// hosts.
func TestShardDefaultsClamp(t *testing.T) {
	g := line(3)
	rt, err := New(Config{Graph: g, Transport: transport.NewChannel(3, 0), Hop: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Shards(); got < 1 || got > 3 {
		t.Fatalf("default shard count %d for 3 hosts, want 1..3", got)
	}
	rt2, err := New(Config{Graph: g, Transport: transport.NewChannel(3, 0), Hop: time.Millisecond, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.Shards(); got != 3 {
		t.Fatalf("shard count %d for 3 hosts with Shards=64, want clamp to 3", got)
	}
}
