package node

import (
	"validity/internal/wire"
)

// Several engine tests ship bare string payloads across the TCP transport
// (tick pingers, demux probes); the version-2 wire frames need a codec
// for them, registered in the reserved test tag space exactly as a test
// harness outside the repo would.
func init() {
	wire.RegisterTagger(func(payload any) (uint8, bool) {
		if _, ok := payload.(string); ok {
			return wire.TagReservedBase, true
		}
		return 0, false
	})
	wire.RegisterPayload(wire.TagReservedBase, wire.PayloadCodec{
		Name: "test-string",
		Append: func(buf []byte, payload any) ([]byte, error) {
			return append(buf, payload.(string)...), nil
		},
		Size:   func(payload any) (int, error) { return len(payload.(string)), nil },
		Decode: func(body []byte) (any, error) { return string(body), nil },
	})
}
