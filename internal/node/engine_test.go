package node

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/oracle"
	"validity/internal/protocol"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/transport"
)

// probeInst records the virtual time host 1 observed when a query's ping
// reached it — the observable that separates per-query clocks from a
// shared one.
type probeInst struct {
	recvSeen atomic.Bool
	recvNow  atomic.Int64
}

type probeSender struct{}

func (probeSender) Start(ctx *sim.Context) { ctx.Send(1, "ping") }
func (probeSender) Receive(ctx *sim.Context, msg sim.Message) {
}
func (probeSender) Timer(ctx *sim.Context, tag int) {}

type probeRecv struct{ p *probeInst }

func (r *probeRecv) Start(ctx *sim.Context) {}
func (r *probeRecv) Receive(ctx *sim.Context, msg sim.Message) {
	if r.p.recvSeen.CompareAndSwap(false, true) {
		r.p.recvNow.Store(int64(ctx.Now()))
	}
}
func (r *probeRecv) Timer(ctx *sim.Context, tag int) {}

// TestPerQueryClockIsolation starts query 2 ten hops after query 1's
// traffic began. Query 2's first delivery must observe a fresh clock
// (ticks ≈ 0): inheriting query 1's elapsed ticks — the old global-clock
// behavior — would make late-arriving queries believe their deadline was
// already half spent.
func TestPerQueryClockIsolation(t *testing.T) {
	const hop = raceSlowdown * 10 * time.Millisecond
	g := line(2)
	rt, err := New(Config{Graph: g, Transport: transport.NewChannel(2, hop/2), Hop: hop})
	if err != nil {
		t.Fatal(err)
	}
	probes := make(map[QueryID]*probeInst)
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		p := &probeInst{}
		probes[id] = p // factory calls are serialized per id under rt.mu
		return &QueryInstance{
			Handlers: []sim.Handler{probeSender{}, &probeRecv{p: p}},
			Deadline: 1000,
		}, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	waitSeen := func(p *probeInst) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !p.recvSeen.Load() {
			if time.Now().After(deadline) {
				t.Fatal("probe ping never delivered")
			}
			time.Sleep(time.Millisecond)
		}
	}

	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	waitSeen(probes[1])
	time.Sleep(10 * hop) // query 1's clock is now ≥ 10 ticks in
	if _, err := rt.StartQuery(2); err != nil {
		t.Fatal(err)
	}
	waitSeen(probes[2])

	if now := probes[2].recvNow.Load(); now > 3 {
		t.Fatalf("query 2's first delivery saw tick %d; its clock inherited another query's elapsed time", now)
	}
	if now := probes[1].recvNow.Load(); now > 3 {
		t.Fatalf("query 1's first delivery saw tick %d, want ≈ 0", now)
	}
}

// TestTimerHeapOrder exercises the heap directly: entries pop in firing
// order, FIFO among equal times.
func TestTimerHeapOrder(t *testing.T) {
	base := time.Now()
	var q timerHeap
	at := func(d time.Duration, seq uint64) *timerEntry {
		return &timerEntry{when: base.Add(d), seq: seq, tag: int(seq)}
	}
	for _, e := range []*timerEntry{
		at(30*time.Millisecond, 0),
		at(10*time.Millisecond, 1),
		at(20*time.Millisecond, 2),
		at(10*time.Millisecond, 3), // same instant as seq 1: FIFO tiebreak
		at(0, 4),
	} {
		heap.Push(&q, e)
	}
	want := []int{4, 1, 3, 2, 0}
	for i, w := range want {
		e := heap.Pop(&q).(*timerEntry)
		if e.tag != w {
			t.Fatalf("pop %d = entry %d, want %d", i, e.tag, w)
		}
	}
}

// TestEngineTimerOrdering schedules timers out of order from one Start
// callback and checks the shared timer loop fires them in tick order.
func TestEngineTimerOrdering(t *testing.T) {
	const hop = raceSlowdown * 10 * time.Millisecond
	g := line(2)
	rt, err := New(Config{Graph: g, Transport: transport.NewChannel(2, 0), Hop: hop})
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan int, 3)
	rt.SetHandler(0, &timerHandler{
		onStart: func(ctx *sim.Context) {
			ctx.SetTimer(6, 6)
			ctx.SetTimer(2, 2)
			ctx.SetTimer(4, 4)
		},
		onTimer: func(tag int) { fired <- tag },
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	var got []int
	for len(got) < 3 {
		select {
		case tag := <-fired:
			got = append(got, tag)
		case <-time.After(10 * time.Second):
			t.Fatalf("timers never fired; got %v", got)
		}
	}
	for i, want := range []int{2, 4, 6} {
		if got[i] != want {
			t.Fatalf("timer order %v, want [2 4 6]", got)
		}
	}
}

// TestConcurrentQueriesOneRuntime overlaps a COUNT and a MIN query, at
// different querying hosts, on one runtime — the in-process core of the
// multiplexed engine: separate protocol instances, separate clocks,
// separate §6.3 accounting, one fleet.
func TestConcurrentQueriesOneRuntime(t *testing.T) {
	const n = 60
	const hop = testHop
	g := topology.NewRandom(n, 5, 23)
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(100 + (i*37)%211)
	}
	dHat := g.Diameter(nil) + 2

	rt, err := New(Config{
		Graph:     g,
		Values:    values,
		Transport: transport.NewChannel(n, hop/2),
		Hop:       hop,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := func(id QueryID) protocol.Query {
		q := protocol.Query{Kind: agg.Count, Hq: 0, DHat: dHat, Params: fmParams}
		if id%2 == 0 {
			q.Kind, q.Hq = agg.Min, 7
		}
		return q
	}
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		return BuildInstance(rt, protocol.NewWildfire(spec(id)), QuerySeed(29, id))
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * hop) // overlap, not serialize
	if _, err := rt.StartQuery(2); err != nil {
		t.Fatal(err)
	}
	waitQuery(dHat, hop)

	for _, id := range []QueryID{1, 2} {
		q := spec(id)
		v, ok, err := rt.QueryResult(id, q.Hq)
		if err != nil || !ok {
			t.Fatalf("query %d declared no result (err=%v)", id, err)
		}
		b := oracle.Compute(g, values, q.Hq, nil, q.Deadline(), q.Kind)
		slack := 1.0
		if q.Kind.DuplicateSensitive() {
			slack = fmFactor
		}
		if !b.ValidFactor(v, slack) {
			t.Fatalf("query %d (%v) result %.1f outside [%.1f, %.1f] × %.2f",
				id, q.Kind, v, b.LowerValue, b.UpperValue, slack)
		}
		st, seen := rt.QueryStats(id)
		if !seen || st.MessagesSent == 0 || st.MaxComputation() == 0 {
			t.Fatalf("query %d cost accounting empty: %+v", id, st)
		}
		if st.BytesOnWire == 0 {
			t.Fatalf("query %d reported no bytes on the wire", id)
		}
	}
	s1, _ := rt.QueryStats(1)
	s2, _ := rt.QueryStats(2)
	total := rt.Stats()
	if total.MessagesSent != s1.MessagesSent+s2.MessagesSent {
		t.Fatalf("merged stats %d ≠ per-query sum %d+%d",
			total.MessagesSent, s1.MessagesSent, s2.MessagesSent)
	}
}

// TestLazyInstantiationAcrossShards runs two runtimes over TCP where only
// shard A issues the query; shard B has just a factory and must
// materialize its handlers on first contact with the query's frames.
func TestLazyInstantiationAcrossShards(t *testing.T) {
	const n = 40
	const hop = testHop
	g := topology.NewRandom(n, 5, 31)
	dHat := g.Diameter(nil) + 2

	ports := freeAddrs(t, 2)
	addrs := make([]string, n)
	var localA, localB []graph.HostID
	for h := 0; h < n; h++ {
		if h < n/2 {
			addrs[h] = ports[0]
			localA = append(localA, graph.HostID(h))
		} else {
			addrs[h] = ports[1]
			localB = append(localB, graph.HostID(h))
		}
	}
	newShard := func(local []graph.HostID) *Runtime {
		rt, err := New(Config{
			Graph:     g,
			Transport: transport.NewTCP(addrs),
			Hop:       hop,
			Local:     local,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
			q := protocol.Query{Kind: agg.Count, Hq: 0, DHat: dHat, Params: fmParams}
			return BuildInstance(rt, protocol.NewWildfire(q), QuerySeed(41, id))
		})
		return rt
	}

	rtB := newShard(localB)
	if err := rtB.Start(); err != nil {
		t.Fatal(err)
	}
	defer rtB.Stop()
	rtA := newShard(localA)
	if err := rtA.Start(); err != nil {
		t.Fatal(err)
	}
	defer rtA.Stop()

	if _, err := rtA.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	waitQuery(dHat, hop)

	v, ok, err := rtA.QueryResult(1, 0)
	if err != nil || !ok {
		t.Fatalf("no result at the issuing shard (err=%v)", err)
	}
	b := oracle.Compute(g, make([]int64, n), 0, nil, protocol.Query{DHat: dHat}.Deadline(), agg.Count)
	if !b.ValidFactor(v, fmFactor) {
		t.Fatalf("estimate %.1f outside [%.1f, %.1f] × %.1f: shard B never joined",
			v, b.LowerValue, b.UpperValue, fmFactor)
	}
	stB, seen := rtB.QueryStats(1)
	if !seen || stB.MessagesSent == 0 {
		t.Fatalf("shard B never lazily instantiated query 1 (stats %+v)", stB)
	}
}

// seqRecorder records the order of lifecycle callbacks at one host.
type seqRecorder struct {
	mu     sync.Mutex
	events []string
}

func (r *seqRecorder) Start(ctx *sim.Context) { r.record("start") }
func (r *seqRecorder) Receive(ctx *sim.Context, msg sim.Message) {
	r.record("recv")
}
func (r *seqRecorder) Timer(ctx *sim.Context, tag int) {}
func (r *seqRecorder) record(e string) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}
func (r *seqRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

// TestLazyQueryStartsBeforeReceive injects a frame for a never-announced
// query, as a remote shard's broadcast would: the lazily materialized
// handler must get its Start before the first Receive, so protocols that
// initialize per-host state in Start work on worker shards that never see
// StartQuery. It also pins the trust boundary: a frame with a corrupt
// (negative) QueryID must neither panic nor reach the factory.
func TestLazyQueryStartsBeforeReceive(t *testing.T) {
	g := line(2)
	tr := transport.NewChannel(2, 0)
	rt, err := New(Config{Graph: g, Transport: tr, Hop: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu        sync.Mutex
		factoryID []QueryID
		recorders = make(map[QueryID]*seqRecorder)
	)
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		mu.Lock()
		factoryID = append(factoryID, id)
		r := &seqRecorder{}
		recorders[id] = r
		mu.Unlock()
		return &QueryInstance{Handlers: []sim.Handler{r, r}, Deadline: 100}, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	if err := tr.Send(transport.Message{From: 0, To: 1, Query: 5, Chain: 1, Payload: "ping"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(transport.Message{From: 0, To: 1, Query: -4, Chain: 1, Payload: "ping"}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		r := recorders[5]
		mu.Unlock()
		if r != nil {
			if ev := r.snapshot(); len(ev) >= 2 {
				if ev[0] != "start" || ev[1] != "recv" {
					t.Fatalf("lazy instantiation callback order %v, want [start recv ...]", ev)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("lazy query never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := rt.QueryStats(-4); ok {
		t.Fatal("corrupt negative QueryID was instantiated")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range factoryID {
		if id < 1 {
			t.Fatalf("factory invoked for invalid query id %d", id)
		}
	}
}

// TestQueryRetirement waits out a query's deadline-plus-grace window and
// checks the engine retires its state: late frames are counted as dropped
// instead of delivered, and the factory is not re-invoked for the id.
func TestQueryRetirement(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps out the retirement grace window")
	}
	g := line(2)
	tr := transport.NewChannel(2, 0)
	rt, err := New(Config{Graph: g, Transport: tr, Hop: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var factoryCalls atomic.Int64
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		factoryCalls.Add(1)
		r := &seqRecorder{}
		return &QueryInstance{Handlers: []sim.Handler{r, r}, Deadline: 1}, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(transport.Message{From: 0, To: 1, Query: 1, Chain: 1, Payload: "live"}); err != nil {
		t.Fatal(err)
	}

	// Deadline is 1 tick at a 1ms hop: retirement fires at ~2ms+grace.
	deadline := time.Now().Add(retireGrace + 5*time.Second)
	for {
		if qs := rt.lookupQuery(1); qs != nil && qs.retired.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query 1 never retired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	before, _ := rt.QueryStats(1)

	if err := tr.Send(transport.Message{From: 0, To: 1, Query: 1, Chain: 1, Payload: "late"}); err != nil {
		t.Fatal(err)
	}
	waitFor := time.Now().Add(5 * time.Second)
	for {
		st, _ := rt.QueryStats(1)
		if st.MessagesDropped > before.MessagesDropped {
			if st.MessagesDelivered != before.MessagesDelivered {
				t.Fatalf("late frame was delivered to a retired query (delivered %d -> %d)",
					before.MessagesDelivered, st.MessagesDelivered)
			}
			break
		}
		if time.Now().After(waitFor) {
			t.Fatalf("late frame neither dropped nor delivered: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if n := factoryCalls.Load(); n != 1 {
		t.Fatalf("factory invoked %d times for one query id", n)
	}
}

// ExampleQuerySeed pins the cross-process seed derivation: every process
// must derive the same per-query seed or shards disagree on coin tosses.
func ExampleQuerySeed() {
	fmt.Println(QuerySeed(23, 1) == QuerySeed(23, 1), QuerySeed(23, 1) == QuerySeed(23, 2))
	// Output: true false
}
