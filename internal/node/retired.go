package node

import "validity/internal/obs"

// Retired-query compaction: a long-running fleet answers an unbounded
// stream of queries, so per-query state must not accumulate forever.
// Retirement (timer.go) already drops the protocol instance; one grace
// window later the engine compacts the rest — the O(hosts) counter arrays
// and the demux map entry — down to one fixed-size summary on a bounded
// ring. The ring doubles as the recycling guard: a straggler frame for a
// compacted query id is recognized and dropped instead of re-instantiating
// the query through the factory. Only once an id has fallen off the ring
// (retiredRingCap retirements later) is it forgotten entirely; by then any
// frame for it is ancient beyond every grace window the engine grants.

// retiredRingCap bounds how many retired-query summaries the engine keeps.
const retiredRingCap = 256

// RetiredStats is the compact §6.3 summary kept for a retired query after
// its per-host state is dropped: the counters of Stats with the per-host
// computation array collapsed to its maximum (the cost measure the paper
// reports).
type RetiredStats struct {
	Query             QueryID
	MessagesSent      int64
	BytesOnWire       int64
	MessagesDelivered int64
	MessagesDropped   int64
	MaxComputation    int64
	TimeCost          int
}

// retiredRing is a fixed-capacity circular buffer of summaries with an id
// index for O(1) recycling checks. All access is under Runtime.mu.
type retiredRing struct {
	buf  []RetiredStats
	next int
	full bool
	byID map[QueryID]int
}

func (r *retiredRing) push(s RetiredStats) {
	if r.buf == nil {
		r.buf = make([]RetiredStats, retiredRingCap)
		r.byID = make(map[QueryID]int, retiredRingCap)
	}
	if r.full {
		delete(r.byID, r.buf[r.next].Query)
	}
	r.buf[r.next] = s
	r.byID[s.Query] = r.next
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

func (r *retiredRing) seen(id QueryID) bool {
	_, ok := r.byID[id]
	return ok
}

func (r *retiredRing) get(id QueryID) (RetiredStats, bool) {
	i, ok := r.byID[id]
	if !ok {
		return RetiredStats{}, false
	}
	return r.buf[i], true
}

// list returns the summaries oldest-first.
func (r *retiredRing) list() []RetiredStats {
	if r.buf == nil {
		return nil
	}
	var out []RetiredStats
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// summarize collapses a Stats snapshot to the ring's fixed-size form.
func summarize(id QueryID, s Stats) RetiredStats {
	return RetiredStats{
		Query:             id,
		MessagesSent:      s.MessagesSent,
		BytesOnWire:       s.BytesOnWire,
		MessagesDelivered: s.MessagesDelivered,
		MessagesDropped:   s.MessagesDropped,
		MaxComputation:    s.MaxComputation(),
		TimeCost:          s.TimeCost,
	}
}

// compact drops a retired query's remaining state: its counters fold into
// the runtime-wide retired totals (so Stats keeps reporting the fleet's
// full history) and a summary lands on the ring, then the demux map entry
// is deleted. Fired from the timer heap one grace window after retirement.
//
// The snapshot is taken under rt.mu, in the same critical section that
// drops the demux entry: straggler increments for a retired query go
// through dropRetired, which takes the same lock, so every such increment
// either lands before the snapshot (and is folded) or observes the entry
// gone (and lands on the folded totals directly) — none can fall between
// the snapshot and the delete and be lost.
func (rt *Runtime) compact(qs *queryState) {
	if qs.id == DefaultQuery {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e := rt.queries[qs.id]
	if e == nil || e.qs != qs {
		return // already compacted
	}
	snap := qs.snapshot()
	delete(rt.queries, qs.id)
	rt.retiredTotal.merge(snap)
	rt.retired.push(summarize(qs.id, snap))
	rt.met.compacted.Inc()
	if rt.trace != nil {
		rt.trace.Record(int64(qs.id), obs.EvCompacted, -1, qs.tickNow(rt), "")
	}
}

// dropRetired counts one frame dropped at a retired query. It serializes
// with compact through rt.mu: while the query's demux entry survives, the
// increment goes to the query's own counter (the compaction snapshot will
// fold it); once the entry is gone, it goes straight into the folded
// totals and the ring summary. An increment racing the compaction instant
// is therefore counted exactly once — the pre-fix window where a counter
// bump could land after the snapshot but before the fold no longer
// exists.
func (rt *Runtime) dropRetired(qs *queryState) {
	rt.met.dropRetired.Inc()
	rt.traceDrop(qs, -1, 0, dropRetired)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if e := rt.queries[qs.id]; e != nil && e.qs == qs {
		qs.dropped.Add(1)
		return
	}
	rt.retiredTotal.MessagesDropped++
	rt.retired.bump(qs.id)
}

// bump adds one dropped message to id's ring summary, if it still holds
// one. Called under Runtime.mu.
func (r *retiredRing) bump(id QueryID) {
	if i, ok := r.byID[id]; ok {
		r.buf[i].MessagesDropped++
	}
}

// RetiredStats returns the summaries of recently retired-and-compacted
// queries, oldest first. The ring keeps the last retiredRingCap of them;
// queries still live (or still inside their post-retirement grace window)
// are readable through QueryStats instead.
func (rt *Runtime) RetiredStats() []RetiredStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.retired.list()
}
