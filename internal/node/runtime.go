// Package node is the goroutine-per-peer runtime that executes the
// protocol state machines of internal/protocol — unchanged sim.Handler
// implementations — on real concurrent peers over any transport
// (internal/transport). It is the layer that turns the paper's
// reproduction into a deployable system: the same WILDFIRE handler that
// runs under the deterministic event loop for the figures runs here over
// in-process channels for the examples, or over TCP sockets for a fleet
// of validityd processes jointly answering queries (cmd/validityd).
//
// The runtime is a query engine: one long-running fleet multiplexes many
// concurrent queries. Every transport frame carries a QueryID, and each
// process demultiplexes frames to per-query protocol instances — lazily
// built on first contact from a registered QueryFactory, seeded per
// (query, host) so a sharded fleet builds identical FM coin tosses for a
// host no matter which process serves it. Each query gets its own
// monotonic clock (armed at that query's first traffic in this process)
// and its own §6.3 cost accounting, so per-answer validity deadlines stay
// individually checkable while the fleet amortizes its infrastructure
// across queries. Query state is retired after the deadline has safely
// passed.
//
// The mapping to the paper's model (§3.1–3.2): each peer is a host of G,
// Kill is an end-user switching the application off mid-query, and the
// per-hop delay bound δ is a configured wall-clock duration Hop — timers
// and deadlines expressed in ticks are realized as multiples of it. Every
// callback of a given host runs on that host's single goroutine: receives
// (across all queries), timer firings, and Start are serialized through
// one inbox, so handlers written for the single-threaded event loop need
// no extra locking here. Timers across all hosts and queries share one
// per-runtime timer heap drained by a single goroutine, so 10K hosts ×
// many queries does not churn a goroutine per timer.
//
// Cost accounting mirrors §6.3 and sim.Stats per query: messages sent,
// bytes on the wire (internal/wire's canonical encoding), messages
// processed per host (computation cost is the max), and the longest
// causal chain of messages (time cost), carried across process boundaries
// in every transport frame.
package node

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"validity/internal/graph"
	"validity/internal/obs"
	"validity/internal/sim"
	"validity/internal/transport"
)

// QueryID identifies one in-flight query across the fleet; it is the
// demux key carried in every transport frame. ID 0 is the runtime's
// default query — the single-query face used by SetHandler/Install and
// LiveNetwork — and is never retired.
type QueryID = transport.QueryID

// DefaultQuery is the reserved QueryID of the single-query face.
const DefaultQuery QueryID = 0

// inboxCap bounds a host's pending-callback queue. Transport delivery
// goroutines block when it fills, which back-pressures senders instead of
// growing memory without bound.
const inboxCap = 4096

// item is one serialized callback for a host goroutine.
type item struct {
	kind  itemKind
	qs    *queryState
	msg   transport.Message
	tag   int
	chain int
	fn    func()
}

type itemKind uint8

const (
	itemStart itemKind = iota
	itemMsg
	itemTimer
	itemFunc   // run an arbitrary closure on the host goroutine (Do)
	itemRetire // drop the host's handler for a retired query
)

// Config configures a Runtime.
type Config struct {
	// Graph is the global topology G; every participating process must
	// hold the same one (validityd regenerates it from a shared seed or
	// topology file).
	Graph *graph.Graph
	// Values are per-host attribute values (nil = all zeros). Only the
	// entries of locally served hosts are read.
	Values []int64
	// Transport carries messages between hosts. The Runtime binds its
	// local hosts on it and owns its lifecycle from Start to Stop.
	Transport transport.Transport
	// Hop is the wall-clock realization of the per-hop delay bound δ;
	// virtual time is time since a query's clock armed, divided by Hop.
	// Zero pins virtual time at 0 and fires all timers immediately
	// (useful only for tests).
	Hop time.Duration
	// Local lists the hosts this runtime serves; nil means all of them
	// (the single-process case).
	Local []graph.HostID
	// Obs, when non-nil, receives the engine's metrics: demux and drop
	// counters, §6.3 sends/bytes, query lifecycle counts, and sampled
	// gauges for inbox depth and timer-heap length (see obs.go). Nil
	// disables instrumentation at the cost of one branch per update. A
	// registry must not be shared between runtimes in one process — the
	// sampled gauges are per-runtime closures.
	Obs *obs.Registry
	// Trace, when non-nil, records per-query lifecycle events (issued,
	// first traffic, churn transitions, frame-drop reasons, retirement,
	// compaction) on bounded rings, each stamped with the query's own
	// tick. Nil disables tracing.
	Trace *obs.Tracer
}

// Stats aggregates the §6.3 cost measures observed by this runtime for
// one query (QueryStats) or summed over all queries (Stats). In a
// multi-process deployment each process sees its own share; totals are the
// sum over processes (messages, bytes) and max over hosts (computation,
// time).
type Stats struct {
	// MessagesSent counts sends issued by local hosts.
	MessagesSent int64
	// BytesOnWire is the exact internal/wire transport-frame size of
	// every sent payload — byte-for-byte what the TCP transport writes
	// (zero for payloads outside the wire format).
	BytesOnWire int64
	// MessagesDelivered counts callbacks delivered to alive local hosts.
	MessagesDelivered int64
	// MessagesDropped counts messages lost at a dead local host, a failed
	// transport send, or a retired query.
	MessagesDropped int64
	// PerHostProcessed[h] is the computation cost of local host h
	// (zero for hosts served elsewhere).
	PerHostProcessed []int64
	// TimeCost is the longest causal chain observed at a local host.
	TimeCost int
}

// MaxComputation returns the maximum per-host computation cost.
func (s *Stats) MaxComputation() int64 {
	var max int64
	for _, c := range s.PerHostProcessed {
		if c > max {
			max = c
		}
	}
	return max
}

// merge folds o into s (sums counters, maxes the time cost).
func (s *Stats) merge(o Stats) {
	s.MessagesSent += o.MessagesSent
	s.BytesOnWire += o.BytesOnWire
	s.MessagesDelivered += o.MessagesDelivered
	s.MessagesDropped += o.MessagesDropped
	for h, c := range o.PerHostProcessed {
		s.PerHostProcessed[h] += c
	}
	if o.TimeCost > s.TimeCost {
		s.TimeCost = o.TimeCost
	}
}

// Runtime executes sim.Handlers for a set of local hosts over a Transport,
// multiplexing any number of concurrent queries.
type Runtime struct {
	g          *graph.Graph
	values     []int64
	tr         transport.Transport
	hop        time.Duration
	local      []bool
	localHosts []graph.HostID

	inbox []chan item

	mu      sync.Mutex
	alive   []bool
	started bool
	closed  bool
	factory QueryFactory
	queries map[QueryID]*queryEntry
	def     *queryState
	// Compacted history: retired queries shrink to ring summaries and fold
	// their counters into retiredTotal (see retired.go).
	retired      retiredRing
	retiredTotal Stats

	quit chan struct{}
	wg   sync.WaitGroup

	// The engine clock arms at the runtime's first traffic of any query;
	// KillAt departures are scheduled against it (a host dies for every
	// query at once). Per-query protocol clocks are separate — see
	// queryState. The anchor is a time.Time so elapsed time rides Go's
	// monotonic clock: an NTP step mid-query must not move deadlines.
	clockOnce  sync.Once
	clockStart atomic.Pointer[time.Time]

	// Timer heap shared by all hosts and queries; see timer.go.
	tmu          sync.Mutex
	theap        timerHeap
	timerSeq     uint64
	timerWake    chan struct{}
	pendingKills []pendingKill

	// Per-host overflow queues for dispatch(): when a host's inbox is
	// full, its items park here in FIFO order and at most one drainer
	// goroutine per congested host feeds them in, so the timer loop never
	// blocks behind one slow host and per-host ordering is preserved.
	omu      sync.Mutex
	overflow map[graph.HostID][]item

	// Observability (obs.go): nil obs/trace disable instrumentation; met
	// holds pre-registered counters so hot paths never look anything up.
	obs   *obs.Registry
	trace *obs.Tracer
	met   runtimeMetrics
}

// New builds a runtime over cfg. Single-query callers install handlers
// with SetHandler before Start; multi-query callers register a
// QueryFactory and issue queries with StartQuery.
func New(cfg Config) (*Runtime, error) {
	n := cfg.Graph.Len()
	values := cfg.Values
	if values == nil {
		values = make([]int64, n)
	}
	if len(values) != n {
		return nil, fmt.Errorf("node: %d values for %d hosts", len(values), n)
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("node: nil transport")
	}
	rt := &Runtime{
		g:            cfg.Graph,
		values:       values,
		tr:           cfg.Transport,
		hop:          cfg.Hop,
		local:        make([]bool, n),
		inbox:        make([]chan item, n),
		alive:        make([]bool, n),
		queries:      make(map[QueryID]*queryEntry),
		retiredTotal: Stats{PerHostProcessed: make([]int64, n)},
		quit:         make(chan struct{}),
		timerWake:    make(chan struct{}, 1),
		overflow:     make(map[graph.HostID][]item),
	}
	if cfg.Local == nil {
		for h := range rt.local {
			rt.local[h] = true
		}
	} else {
		for _, h := range cfg.Local {
			if h < 0 || int(h) >= n {
				return nil, fmt.Errorf("node: local host %d outside graph of %d hosts", h, n)
			}
			rt.local[h] = true
		}
	}
	for h := range rt.local {
		if rt.local[h] {
			rt.alive[h] = true
			rt.inbox[h] = make(chan item, inboxCap)
			rt.localHosts = append(rt.localHosts, graph.HostID(h))
		}
	}
	rt.initObs(cfg.Obs, cfg.Trace)
	rt.def = newQueryState(rt, DefaultQuery, nil, 0)
	defEntry := &queryEntry{qs: rt.def}
	defEntry.once.Do(func() {}) // pre-consumed: the default face has no factory
	rt.queries[DefaultQuery] = defEntry
	return rt, nil
}

// Graph returns the topology.
func (rt *Runtime) Graph() *graph.Graph { return rt.g }

// Hop returns the wall-clock realization of the per-hop delay bound δ.
func (rt *Runtime) Hop() time.Duration { return rt.hop }

// Values returns the per-host attribute values. The slice is the
// runtime's own backing array: callers must treat it as read-only.
func (rt *Runtime) Values() []int64 { return rt.values }

// Local reports whether h is served by this runtime.
func (rt *Runtime) Local(h graph.HostID) bool { return rt.local[h] }

// SetHandler installs the protocol state machine for local host h on the
// default query. Handlers for hosts served elsewhere are ignored, so
// callers can install a full protocol (e.g. protocol.Wildfire materialized
// on a scratch sim.Network) without tracking the shard boundary
// themselves.
func (rt *Runtime) SetHandler(h graph.HostID, hd sim.Handler) {
	if rt.local[h] {
		rt.def.handlers[h] = hd
	}
}

// Handler returns the default-query handler installed at local host h
// (nil otherwise).
func (rt *Runtime) Handler(h graph.HostID) sim.Handler { return rt.def.handlers[h] }

// Start binds every local host on the transport, opens it, launches one
// goroutine per local host plus the timer loop, and invokes each
// default-query handler's Start on its own goroutine.
func (rt *Runtime) Start() error {
	rt.mu.Lock()
	if rt.started {
		rt.mu.Unlock()
		return fmt.Errorf("node: runtime already started")
	}
	rt.started = true
	rt.mu.Unlock()

	for _, h := range rt.localHosts {
		// Start is enqueued before the host is reachable, so it is always
		// the first callback the host goroutine runs.
		rt.inbox[h] <- item{kind: itemStart, qs: rt.def}
		if err := rt.tr.Bind(h, rt.recvFunc(h)); err != nil {
			return err
		}
	}
	if err := rt.tr.Open(); err != nil {
		return err
	}
	// Warm-up dials: transports that can pre-establish peer connections do
	// so now, in the background, so a cold fleet's first query does not pay
	// dial latency (and its retries) inside its own per-hop budget.
	if w, ok := rt.tr.(transport.Warmer); ok {
		w.Warm()
	}
	for _, h := range rt.localHosts {
		rt.wg.Add(1)
		go rt.hostLoop(h)
	}
	rt.wg.Add(1)
	go rt.timerLoop()
	return nil
}

// recvFunc demultiplexes a transport delivery into h's inbox: the frame's
// QueryID selects (or lazily instantiates) the query it belongs to.
func (rt *Runtime) recvFunc(h graph.HostID) transport.RecvFunc {
	return func(m transport.Message) {
		rt.met.framesIn.Inc()
		qs := rt.queryFor(m.Query, true)
		if qs == nil {
			// Unknown query and no factory to build it. Counted but not
			// traced: hostile ids must not churn the tracer's query rings.
			rt.met.dropUnknown.Inc()
			return
		}
		if qs.retired.Load() {
			// Serialized with compaction: the drop is folded exactly once
			// whether it lands before or after the counters collapse.
			rt.dropRetired(qs)
			return
		}
		select {
		case rt.inbox[h] <- item{kind: itemMsg, qs: qs, msg: m}:
		case <-rt.quit:
		}
	}
}

// enqueue places it into h's inbox, blocking under back-pressure (a full
// inbox already means the per-hop budget is blown). For callers that must
// not stall — the timer loop — use dispatch instead. The quit select
// keeps shutdown from hanging on a congested host.
func (rt *Runtime) enqueue(h graph.HostID, it item) {
	select {
	case rt.inbox[h] <- it:
	case <-rt.quit:
	}
}

// dispatch is enqueue for the timer loop: it never blocks the caller. A
// full inbox parks the item on the host's overflow queue, fed in FIFO
// order by at most one drainer goroutine per congested host, so one slow
// host cannot stall timers, kills, or retirements of every other host,
// and a host's items still arrive in the order they fired.
func (rt *Runtime) dispatch(h graph.HostID, it item) {
	rt.omu.Lock()
	if q, busy := rt.overflow[h]; busy {
		rt.overflow[h] = append(q, it) // keep FIFO behind parked items
		rt.omu.Unlock()
		return
	}
	rt.omu.Unlock()
	select {
	case rt.inbox[h] <- it:
		return
	case <-rt.quit:
		return
	default:
	}
	rt.omu.Lock()
	if q, busy := rt.overflow[h]; busy {
		rt.overflow[h] = append(q, it)
		rt.omu.Unlock()
		return
	}
	rt.overflow[h] = []item{it}
	rt.omu.Unlock()
	go rt.drainOverflow(h)
}

// drainOverflow feeds h's parked items into its inbox in order, exiting
// once the queue empties (or the runtime stops).
func (rt *Runtime) drainOverflow(h graph.HostID) {
	for {
		rt.omu.Lock()
		q := rt.overflow[h]
		if len(q) == 0 {
			delete(rt.overflow, h)
			rt.omu.Unlock()
			return
		}
		it := q[0]
		rt.overflow[h] = q[1:]
		rt.omu.Unlock()
		select {
		case rt.inbox[h] <- it:
		case <-rt.quit:
			return
		}
	}
}

// hostLoop is host h: it drains the inbox, running every callback of h —
// across all queries — on this single goroutine.
func (rt *Runtime) hostLoop(h graph.HostID) {
	defer rt.wg.Done()
	for {
		select {
		case <-rt.quit:
			return
		case it := <-rt.inbox[h]:
			switch it.kind {
			case itemFunc:
				it.fn() // runs even on a dead host: state reads stay safe
				continue
			case itemRetire:
				it.qs.handlers[h] = nil
				continue
			}
			qs := it.qs
			// Retirement is checked before host liveness so that EVERY
			// retired-query drop — including one at a Kill'd host — goes
			// through dropRetired's serialization with compact; a lock-free
			// increment here could land after the compaction snapshot and
			// be lost from the folded totals.
			if qs.retired.Load() {
				if it.kind == itemMsg {
					rt.dropRetired(qs)
				}
				continue
			}
			if !rt.aliveHost(h) {
				if it.kind == itemMsg {
					qs.dropped.Add(1)
					rt.met.dropHostDead.Inc()
					rt.traceDrop(qs, h, dropHostDead)
				}
				continue
			}
			if it.kind == itemMsg {
				// First traffic arms the query clock even when the local
				// target is dead on this query's timeline: the frame proves
				// the query reached this process, and the clock is what
				// schedules the timeline's own join ticks — a shard whose
				// every local host starts absent must still wake them.
				qs.armClock(rt)
			}
			if qs.hostDead(h) {
				// Dead on this query's membership timeline: its frames are
				// swallowed and its timers never fire, while the host keeps
				// serving every other query of the fleet.
				if it.kind == itemMsg {
					qs.dropped.Add(1)
					rt.met.dropQueryDead.Inc()
					rt.traceDrop(qs, h, dropQueryDead)
				}
				continue
			}
			hd := qs.handlers[h]
			if hd == nil {
				continue
			}
			switch it.kind {
			case itemStart:
				qs.startHost(rt, h, hd)
			case itemMsg:
				// A lazily instantiated handler's first contact IS its
				// start-of-life: run Start before the first Receive, so
				// protocols that initialize per-host state in Start (not
				// just at h_q) work on worker shards that never see
				// StartQuery. started[h] makes it exactly-once against the
				// explicit itemStart of the issuing process.
				qs.startHost(rt, h, hd)
				qs.delivered.Add(1)
				rt.met.delivered.Inc()
				atomic.AddInt64(&qs.processed[h], 1)
				qs.observeChain(it.msg.Chain)
				msg := sim.MakeMessage(it.msg.From, it.msg.To, it.msg.Payload, it.msg.Chain)
				hd.Receive(sim.BackendContext(qs.be, h, it.msg.Chain), msg)
			case itemTimer:
				hd.Timer(sim.BackendContext(qs.be, h, it.chain), it.tag)
			}
		}
	}
}

func (rt *Runtime) aliveHost(h graph.HostID) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.alive[h]
}

// Kill switches local host h off mid-run (§3.2) for every query: it
// processes nothing more, its timers never fire, and the transport drops
// traffic to and from it. It is the degenerate all-queries case of the
// membership layer — per-query departures ride QueryInstance.Churn and
// never touch the transport. Killing a host served by another process is
// that process's call to make; here it is a no-op.
func (rt *Runtime) Kill(h graph.HostID) {
	if !rt.local[h] {
		return
	}
	rt.mu.Lock()
	rt.alive[h] = false
	rt.mu.Unlock()
	rt.tr.Kill(h)
}

// Alive reports whether local host h is alive.
func (rt *Runtime) Alive(h graph.HostID) bool { return rt.local[h] && rt.aliveHost(h) }

// Do runs fn on host h's goroutine, serialized with every callback of h,
// and returns once fn has completed. It is how callers read protocol state
// (results, partials) of an in-flight query without racing the handlers.
func (rt *Runtime) Do(h graph.HostID, fn func()) error {
	if !rt.local[h] {
		return fmt.Errorf("node: host %d not served by this runtime", h)
	}
	done := make(chan struct{})
	it := item{kind: itemFunc, fn: func() { fn(); close(done) }}
	select {
	case rt.inbox[h] <- it:
	case <-rt.quit:
		return fmt.Errorf("node: runtime stopped")
	}
	select {
	case <-done:
		return nil
	case <-rt.quit:
		return fmt.Errorf("node: runtime stopped")
	}
}

// Stop terminates all host goroutines and the timer loop, closes the
// transport, and waits for everything to drain. Safe to call more than
// once.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	close(rt.quit)
	rt.mu.Unlock()
	rt.tr.Close()
	rt.wg.Wait()
}

// Stats returns a snapshot of the cost counters summed over all queries,
// live and compacted alike.
func (rt *Runtime) Stats() Stats {
	total := Stats{PerHostProcessed: make([]int64, rt.g.Len())}
	rt.mu.Lock()
	qss := make([]*queryState, 0, len(rt.queries))
	for _, e := range rt.queries {
		if e.qs != nil { // skip entries whose factory is still running
			qss = append(qss, e.qs)
		}
	}
	total.merge(rt.retiredTotal)
	rt.mu.Unlock()
	for _, qs := range qss {
		total.merge(qs.snapshot())
	}
	return total
}

// QueryStats returns the cost counters of one query; ok is false if this
// runtime never saw the query. For a query already compacted to the
// retired ring, the summary counters are returned with a nil per-host
// array (use RetiredStats for the compact form including MaxComputation).
func (rt *Runtime) QueryStats(id QueryID) (Stats, bool) {
	qs := rt.lookupQuery(id)
	if qs == nil {
		rt.mu.Lock()
		rs, ok := rt.retired.get(id)
		rt.mu.Unlock()
		if !ok {
			return Stats{}, false
		}
		return Stats{
			MessagesSent:      rs.MessagesSent,
			BytesOnWire:       rs.BytesOnWire,
			MessagesDelivered: rs.MessagesDelivered,
			MessagesDropped:   rs.MessagesDropped,
			TimeCost:          rs.TimeCost,
		}, true
	}
	return qs.snapshot(), true
}

// armEngineClock starts the engine clock (KillAt's reference) if it is not
// yet running, converting any departures scheduled before first traffic
// into absolute timer-heap entries.
func (rt *Runtime) armEngineClock() {
	rt.clockOnce.Do(func() {
		t := time.Now()
		rt.clockStart.Store(&t)
		rt.tmu.Lock()
		for _, pk := range rt.pendingKills {
			rt.pushTimerLocked(&timerEntry{
				when: t.Add(time.Duration(pk.at) * rt.hop),
				kind: tkKill,
				h:    pk.h,
			})
		}
		rt.pendingKills = nil
		rt.tmu.Unlock()
		rt.wakeTimer()
	})
}

// --- handler helpers -----------------------------------------------------

// WithRand wraps hd so that every callback context carries rng. Live
// backends have no shared deterministic RNG (sim.Context.Rand returns nil
// there), but FM-sketch partials need coin tosses at activation; the
// runtime serializes all callbacks of a host on one goroutine, so an
// unsynchronized per-host source is safe.
func WithRand(hd sim.Handler, rng *rand.Rand) sim.Handler {
	return &randHandler{inner: hd, rng: rng}
}

type randHandler struct {
	inner sim.Handler
	rng   *rand.Rand
}

func (r *randHandler) Start(ctx *sim.Context) { r.inner.Start(ctx.WithRand(r.rng)) }
func (r *randHandler) Receive(ctx *sim.Context, msg sim.Message) {
	r.inner.Receive(ctx.WithRand(r.rng), msg)
}
func (r *randHandler) Timer(ctx *sim.Context, tag int) { r.inner.Timer(ctx.WithRand(r.rng), tag) }
