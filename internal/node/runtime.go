// Package node is the goroutine-per-peer runtime that executes the
// protocol state machines of internal/protocol — unchanged sim.Handler
// implementations — on real concurrent peers over any transport
// (internal/transport). It is the layer that turns the paper's
// reproduction into a deployable system: the same WILDFIRE handler that
// runs under the deterministic event loop for the figures runs here over
// in-process channels for the examples, or over TCP sockets for a fleet
// of validityd processes jointly answering one query (cmd/validityd).
//
// The mapping to the paper's model (§3.1–3.2): each peer is a host of G,
// Kill is an end-user switching the application off mid-query, and the
// per-hop delay bound δ is a configured wall-clock duration Hop — timers
// and deadlines expressed in ticks are realized as multiples of it. Every
// callback of a given host runs on that host's single goroutine: receives,
// timer firings, and Start are serialized through one inbox, so handlers
// written for the single-threaded event loop need no extra locking here.
//
// Cost accounting mirrors §6.3 and sim.Stats: messages sent, messages
// processed per host (computation cost is the max), and the longest causal
// chain of messages (time cost), carried across process boundaries in
// every transport frame.
package node

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"validity/internal/graph"
	"validity/internal/sim"
	"validity/internal/transport"
)

// inboxCap bounds a host's pending-callback queue. Transport delivery
// goroutines block when it fills, which back-pressures senders instead of
// growing memory without bound.
const inboxCap = 4096

// item is one serialized callback for a host goroutine.
type item struct {
	kind  itemKind
	msg   transport.Message
	tag   int
	chain int
}

type itemKind uint8

const (
	itemStart itemKind = iota
	itemMsg
	itemTimer
)

// Config configures a Runtime.
type Config struct {
	// Graph is the global topology G; every participating process must
	// hold the same one (validityd regenerates it from a shared seed or
	// topology file).
	Graph *graph.Graph
	// Values are per-host attribute values (nil = all zeros). Only the
	// entries of locally served hosts are read.
	Values []int64
	// Transport carries messages between hosts. The Runtime binds its
	// local hosts on it and owns its lifecycle from Start to Stop.
	Transport transport.Transport
	// Hop is the wall-clock realization of the per-hop delay bound δ;
	// virtual time is time.Since(start)/Hop. Zero pins virtual time at 0
	// and fires all timers immediately (useful only for tests).
	Hop time.Duration
	// Local lists the hosts this runtime serves; nil means all of them
	// (the single-process case).
	Local []graph.HostID
}

// Stats aggregates the §6.3 cost measures observed by this runtime. In a
// multi-process deployment each process sees its own share; totals are the
// sum over processes (messages) and max over hosts (computation, time).
type Stats struct {
	// MessagesSent counts sends issued by local hosts.
	MessagesSent int64
	// MessagesDelivered counts callbacks delivered to alive local hosts.
	MessagesDelivered int64
	// MessagesDropped counts messages lost at a dead local host or a
	// failed transport send.
	MessagesDropped int64
	// PerHostProcessed[h] is the computation cost of local host h
	// (zero for hosts served elsewhere).
	PerHostProcessed []int64
	// TimeCost is the longest causal chain observed at a local host.
	TimeCost int
}

// MaxComputation returns the maximum per-host computation cost.
func (s *Stats) MaxComputation() int64 {
	var max int64
	for _, c := range s.PerHostProcessed {
		if c > max {
			max = c
		}
	}
	return max
}

// Runtime executes sim.Handlers for a set of local hosts over a Transport.
type Runtime struct {
	g      *graph.Graph
	values []int64
	tr     transport.Transport
	hop    time.Duration
	local  []bool

	handlers []sim.Handler
	inbox    []chan item

	mu      sync.Mutex
	alive   []bool
	started bool
	closed  bool
	quit    chan struct{}
	wg      sync.WaitGroup

	// The virtual clock arms at the runtime's first send or delivery, not
	// at Start: in a multi-process deployment the shards boot at different
	// wall times, and the protocols' tick guards measure time since the
	// query reached them (a host that boots minutes early must not believe
	// the query deadline has already passed). A host at distance l from
	// h_q therefore reads a clock late by at most l·δ — the same skew any
	// real deployment of the §3.1 model lives with. The anchor is a
	// time.Time so elapsed time rides Go's monotonic clock: an NTP step
	// mid-query must not move the deadline guards.
	clockOnce  sync.Once
	clockStart atomic.Pointer[time.Time]

	sent      atomic.Int64
	delivered atomic.Int64
	dropped   atomic.Int64
	processed []int64 // updated with atomics
	timeCost  atomic.Int64
}

// New builds a runtime over cfg. Handlers are installed with SetHandler
// before Start.
func New(cfg Config) (*Runtime, error) {
	n := cfg.Graph.Len()
	values := cfg.Values
	if values == nil {
		values = make([]int64, n)
	}
	if len(values) != n {
		return nil, fmt.Errorf("node: %d values for %d hosts", len(values), n)
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("node: nil transport")
	}
	rt := &Runtime{
		g:         cfg.Graph,
		values:    values,
		tr:        cfg.Transport,
		hop:       cfg.Hop,
		local:     make([]bool, n),
		handlers:  make([]sim.Handler, n),
		inbox:     make([]chan item, n),
		alive:     make([]bool, n),
		quit:      make(chan struct{}),
		processed: make([]int64, n),
	}
	if cfg.Local == nil {
		for h := range rt.local {
			rt.local[h] = true
		}
	} else {
		for _, h := range cfg.Local {
			if h < 0 || int(h) >= n {
				return nil, fmt.Errorf("node: local host %d outside graph of %d hosts", h, n)
			}
			rt.local[h] = true
		}
	}
	for h := range rt.local {
		if rt.local[h] {
			rt.alive[h] = true
			rt.inbox[h] = make(chan item, inboxCap)
		}
	}
	return rt, nil
}

// Graph returns the topology.
func (rt *Runtime) Graph() *graph.Graph { return rt.g }

// Local reports whether h is served by this runtime.
func (rt *Runtime) Local(h graph.HostID) bool { return rt.local[h] }

// SetHandler installs the protocol state machine for local host h.
// Handlers for hosts served elsewhere are ignored, so callers can install
// a full protocol (e.g. protocol.Wildfire materialized on a scratch
// sim.Network) without tracking the shard boundary themselves.
func (rt *Runtime) SetHandler(h graph.HostID, hd sim.Handler) {
	if rt.local[h] {
		rt.handlers[h] = hd
	}
}

// Handler returns the handler installed at local host h (nil otherwise).
func (rt *Runtime) Handler(h graph.HostID) sim.Handler { return rt.handlers[h] }

// Start binds every local host on the transport, opens it, launches one
// goroutine per local host, and invokes each handler's Start on its own
// goroutine.
func (rt *Runtime) Start() error {
	rt.mu.Lock()
	if rt.started {
		rt.mu.Unlock()
		return fmt.Errorf("node: runtime already started")
	}
	rt.started = true
	rt.mu.Unlock()

	for h := 0; h < rt.g.Len(); h++ {
		if !rt.local[h] {
			continue
		}
		id := graph.HostID(h)
		// Start is enqueued before the host is reachable, so it is always
		// the first callback the host goroutine runs.
		rt.inbox[h] <- item{kind: itemStart}
		if err := rt.tr.Bind(id, rt.recvFunc(id)); err != nil {
			return err
		}
	}
	if err := rt.tr.Open(); err != nil {
		return err
	}
	for h := 0; h < rt.g.Len(); h++ {
		if rt.local[h] {
			rt.wg.Add(1)
			go rt.hostLoop(graph.HostID(h))
		}
	}
	return nil
}

// recvFunc enqueues a transport delivery into h's inbox.
func (rt *Runtime) recvFunc(h graph.HostID) transport.RecvFunc {
	return func(m transport.Message) {
		select {
		case rt.inbox[h] <- item{kind: itemMsg, msg: m}:
		case <-rt.quit:
		}
	}
}

// hostLoop is host h: it drains the inbox, running every callback of h on
// this single goroutine.
func (rt *Runtime) hostLoop(h graph.HostID) {
	defer rt.wg.Done()
	for {
		select {
		case <-rt.quit:
			return
		case it := <-rt.inbox[h]:
			if !rt.aliveHost(h) {
				if it.kind == itemMsg {
					rt.dropped.Add(1)
				}
				continue
			}
			hd := rt.handlers[h]
			if hd == nil {
				continue
			}
			switch it.kind {
			case itemStart:
				hd.Start(sim.BackendContext(rt, h, 0))
			case itemMsg:
				rt.armClock()
				rt.delivered.Add(1)
				atomic.AddInt64(&rt.processed[h], 1)
				rt.observeChain(it.msg.Chain)
				msg := sim.MakeMessage(it.msg.From, it.msg.To, it.msg.Payload, it.msg.Chain)
				hd.Receive(sim.BackendContext(rt, h, it.msg.Chain), msg)
			case itemTimer:
				hd.Timer(sim.BackendContext(rt, h, it.chain), it.tag)
			}
		}
	}
}

func (rt *Runtime) observeChain(chain int) {
	for {
		cur := rt.timeCost.Load()
		if int64(chain) <= cur || rt.timeCost.CompareAndSwap(cur, int64(chain)) {
			return
		}
	}
}

func (rt *Runtime) aliveHost(h graph.HostID) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.alive[h]
}

// Kill switches local host h off mid-run (§3.2): it processes nothing
// more, its timers never fire, and the transport drops traffic to and from
// it. Killing a host served by another process is that process's call to
// make; here it is a no-op.
func (rt *Runtime) Kill(h graph.HostID) {
	if !rt.local[h] {
		return
	}
	rt.mu.Lock()
	rt.alive[h] = false
	rt.mu.Unlock()
	rt.tr.Kill(h)
}

// Alive reports whether local host h is alive.
func (rt *Runtime) Alive(h graph.HostID) bool { return rt.local[h] && rt.aliveHost(h) }

// KillAt schedules Kill(h) at virtual tick `at` on the runtime's query
// clock. Because the clock arms at the first traffic, a departure
// scheduled for tick 10 happens 10 δ after the query reaches this
// process, no matter how much earlier the process booted.
func (rt *Runtime) KillAt(h graph.HostID, at sim.Time) {
	if !rt.local[h] {
		return
	}
	go func() {
		poll := rt.hop / 2
		if poll <= 0 {
			poll = time.Millisecond
		}
		for rt.clockStart.Load() == nil {
			select {
			case <-time.After(poll):
			case <-rt.quit:
				return
			}
		}
		delay := time.Duration(at-rt.Now()) * rt.hop
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-rt.quit:
				return
			}
		}
		rt.Kill(h)
	}()
}

// Stop terminates all host goroutines, closes the transport, and waits
// for everything to drain. Safe to call more than once.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	close(rt.quit)
	rt.mu.Unlock()
	rt.tr.Close()
	rt.wg.Wait()
}

// Stats returns a snapshot of the cost counters.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		MessagesSent:      rt.sent.Load(),
		MessagesDelivered: rt.delivered.Load(),
		MessagesDropped:   rt.dropped.Load(),
		PerHostProcessed:  make([]int64, len(rt.processed)),
		TimeCost:          int(rt.timeCost.Load()),
	}
	for h := range rt.processed {
		s.PerHostProcessed[h] = atomic.LoadInt64(&rt.processed[h])
	}
	return s
}

// --- sim.Backend implementation -----------------------------------------

// armClock starts the virtual clock if it is not yet running.
func (rt *Runtime) armClock() {
	rt.clockOnce.Do(func() {
		t := time.Now()
		rt.clockStart.Store(&t)
	})
}

// Now implements sim.Backend: wall time since the clock armed, in δ hop
// units; zero until the runtime has seen any traffic.
func (rt *Runtime) Now() sim.Time {
	start := rt.clockStart.Load()
	if start == nil || rt.hop <= 0 {
		return 0
	}
	return sim.Time(time.Since(*start) / rt.hop)
}

// Value implements sim.Backend.
func (rt *Runtime) Value(h graph.HostID) int64 { return rt.values[h] }

// Send implements sim.Backend: the message goes to the transport, which
// delivers it if the destination is alive at arrival.
func (rt *Runtime) Send(from, to graph.HostID, payload any, chain int) {
	if !rt.aliveHost(from) {
		return // a departed host says nothing more
	}
	rt.armClock()
	rt.sent.Add(1)
	err := rt.tr.Send(transport.Message{From: from, To: to, Chain: chain, Payload: payload})
	if err != nil {
		rt.dropped.Add(1)
	}
}

// SetTimer implements sim.Backend: the tick delta becomes a wall-clock
// timer whose firing is serialized through the host's inbox like any other
// callback.
//
// A timer for the current tick means "end of this round": the event loop
// fires it after all of the tick's deliveries (evDeliver orders before
// evTimer), which is how WILDFIRE batches a round's arrivals into one
// flush (Example 5.1). The live realization is a quarter-hop delay — long
// enough to gather the messages of the same causal round, short enough
// that receive (≤ δ/2 on the channel transport) plus flush stays within
// the advertised per-hop bound δ.
func (rt *Runtime) SetTimer(h graph.HostID, at sim.Time, tag, chain int) {
	delay := time.Duration(at-rt.Now()) * rt.hop
	if delay <= 0 {
		delay = rt.hop / 4
	}
	go func() {
		if delay > 0 {
			timer := time.NewTimer(delay)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-rt.quit:
				return
			}
		}
		select {
		case rt.inbox[h] <- item{kind: itemTimer, tag: tag, chain: chain}:
		case <-rt.quit:
		}
	}()
}

// --- handler helpers -----------------------------------------------------

// WithRand wraps hd so that every callback context carries rng. Live
// backends have no shared deterministic RNG (sim.Context.Rand returns nil
// there), but FM-sketch partials need coin tosses at activation; the
// runtime serializes all callbacks of a host on one goroutine, so an
// unsynchronized per-host source is safe.
func WithRand(hd sim.Handler, rng *rand.Rand) sim.Handler {
	return &randHandler{inner: hd, rng: rng}
}

type randHandler struct {
	inner sim.Handler
	rng   *rand.Rand
}

func (r *randHandler) Start(ctx *sim.Context) { r.inner.Start(ctx.WithRand(r.rng)) }
func (r *randHandler) Receive(ctx *sim.Context, msg sim.Message) {
	r.inner.Receive(ctx.WithRand(r.rng), msg)
}
func (r *randHandler) Timer(ctx *sim.Context, tag int) { r.inner.Timer(ctx.WithRand(r.rng), tag) }
