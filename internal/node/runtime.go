// Package node is the host-sharded runtime that executes the protocol
// state machines of internal/protocol — unchanged sim.Handler
// implementations — on real concurrent peers over any transport
// (internal/transport). It is the layer that turns the paper's
// reproduction into a deployable system: the same WILDFIRE handler that
// runs under the deterministic event loop for the figures runs here over
// in-process channels for the examples, or over TCP sockets for a fleet
// of validityd processes jointly answering queries (cmd/validityd).
//
// The runtime is a query engine: one long-running fleet multiplexes many
// concurrent queries. Every transport frame carries a QueryID, and each
// process demultiplexes frames to per-query protocol instances — lazily
// built on first contact from a registered QueryFactory, seeded per
// (query, host) so a sharded fleet builds identical FM coin tosses for a
// host no matter which process serves it. Each query gets its own
// monotonic clock (armed at that query's first traffic in this process)
// and its own §6.3 cost accounting, so per-answer validity deadlines stay
// individually checkable while the fleet amortizes its infrastructure
// across queries. Query state is retired after the deadline has safely
// passed, and a live-query admission cap (Config.MaxLiveQueries) rejects
// new instantiations once the fleet saturates, so overload degrades into
// counted rejections instead of unbounded state.
//
// The mapping to the paper's model (§3.1–3.2): each peer is a host of G,
// Kill is an end-user switching the application off mid-query, and the
// per-hop delay bound δ is a configured wall-clock duration Hop — timers
// and deadlines expressed in ticks are realized as multiples of it.
//
// Execution is host-sharded (§6 runs at 10,000 hosts; one goroutine and
// one deep inbox channel per host would cost ~10K goroutines and
// gigabytes of eagerly allocated buffers before a single query runs): a
// small pool of Config.Shards worker goroutines — by default one per
// available CPU — each owns a fixed partition of the local hosts and
// drains one bounded per-shard queue. All callbacks of a given host
// (receives across all queries, timer firings, Start, Do closures) are
// routed to that host's shard, so they still execute serialized and in
// enqueue order on a single goroutine — handlers written for the
// single-threaded event loop need no extra locking here — while memory
// drops from O(hosts × inboxCap) to O(shards × shardCap). Timers across
// all hosts and queries share one per-runtime timer heap drained by a
// single goroutine, and that loop never blocks on a congested shard: a
// full shard queue parks items on the shard's overflow list, fed in FIFO
// order by a transient drainer goroutine.
//
// Cost accounting mirrors §6.3 and sim.Stats per query: messages sent,
// bytes on the wire (internal/wire's canonical encoding), messages
// processed per host (computation cost is the max), and the longest
// causal chain of messages (time cost), carried across process boundaries
// in every transport frame.
package node

import (
	"errors"
	"fmt"
	"math/rand"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"validity/internal/graph"
	"validity/internal/obs"
	"validity/internal/sim"
	"validity/internal/transport"
	"validity/internal/wire"
)

// QueryID identifies one in-flight query across the fleet; it is the
// demux key carried in every transport frame. ID 0 is the runtime's
// default query — the single-query face used by SetHandler/Install and
// LiveNetwork — and is never retired.
type QueryID = transport.QueryID

// DefaultQuery is the reserved QueryID of the single-query face.
const DefaultQuery QueryID = 0

// shardQueueCap is the default bound on a shard's pending-callback queue.
// Transport delivery goroutines block when it fills, which back-pressures
// senders instead of growing memory without bound. Each shard's queue is
// widened to hold at least one Start item per owned host, so Start can
// seed every host before the workers launch without wedging.
const shardQueueCap = 1024

// DefaultMaxLiveQueries is the admission cap applied when
// Config.MaxLiveQueries is zero: the number of queries with live
// (not-yet-compacted) state one runtime will hold before rejecting new
// instantiations.
const DefaultMaxLiveQueries = 4096

// ErrQueryRejected is returned (wrapped) by StartQuery when the live-query
// admission cap is reached; frames for not-yet-instantiated queries are
// dropped with the same accounting (engine_queries_rejected_total).
var ErrQueryRejected = errors.New("live-query admission cap reached")

// item is one serialized callback for a host, routed to the shard worker
// that owns the host.
type item struct {
	kind  itemKind
	h     graph.HostID
	qs    *queryState
	msg   transport.Message
	tag   int
	chain int
	fn    func()
}

type itemKind uint8

const (
	itemStart itemKind = iota
	itemMsg
	itemTimer
	itemFunc   // run an arbitrary closure on the host's shard worker (Do)
	itemRetire // drop the host's handler for a retired query
)

// shard is one worker's slice of the runtime: a bounded queue of host
// callbacks plus the overflow list the timer loop parks into when the
// queue is full. Every local host maps to exactly one shard (Runtime.
// shardOf), and only that shard's worker runs the host's callbacks, which
// is what keeps per-host execution serialized without a goroutine per
// host.
type shard struct {
	ch chan item

	// Overflow for dispatch(): items parked when ch is full, fed in FIFO
	// order by at most one drainer goroutine (busy) so the timer loop
	// never blocks behind a congested shard and per-host ordering is
	// preserved.
	mu   sync.Mutex
	ov   []item
	busy bool
}

// depth is the shard's pending-callback count: queued plus parked.
func (s *shard) depth() int {
	s.mu.Lock()
	parked := len(s.ov)
	s.mu.Unlock()
	return len(s.ch) + parked
}

// Config configures a Runtime.
type Config struct {
	// Graph is the global topology G; every participating process must
	// hold the same one (validityd regenerates it from a shared seed or
	// topology file).
	Graph *graph.Graph
	// Values are per-host attribute values (nil = all zeros). Only the
	// entries of locally served hosts are read.
	Values []int64
	// Transport carries messages between hosts. The Runtime binds its
	// local hosts on it and owns its lifecycle from Start to Stop.
	Transport transport.Transport
	// Hop is the wall-clock realization of the per-hop delay bound δ;
	// virtual time is time since a query's clock armed, divided by Hop.
	// Zero pins virtual time at 0 and fires all timers immediately
	// (useful only for tests).
	Hop time.Duration
	// Local lists the hosts this runtime serves; nil means all of them
	// (the single-process case).
	Local []graph.HostID
	// Shards is the number of worker goroutines executing host callbacks;
	// each owns a fixed partition of the local hosts. Zero means one per
	// available CPU (GOMAXPROCS), and the count is clamped to the local
	// host count — a 10K-host process runs ~NumCPU workers, not 10K
	// goroutines.
	Shards int
	// ShardQueue bounds each shard's pending-callback queue (0 = the
	// shardQueueCap default). Mainly a test knob: tiny queues force the
	// overflow path.
	ShardQueue int
	// MaxLiveQueries caps how many queries may hold live (not-yet-
	// compacted) state at once; instantiation beyond it — StartQuery or a
	// frame's first contact — is rejected and counted
	// (engine_queries_rejected_total), so a saturated fleet degrades into
	// predictable rejections instead of growing state. Zero applies
	// DefaultMaxLiveQueries; negative disables the cap.
	MaxLiveQueries int
	// Quiesce enables the cross-process quiescence control plane (see
	// quiesce.go): worker processes announce per-query silence to the
	// query's issuing process, whose AwaitQueryResult may then return at
	// true global quiescence instead of sleeping out the sharded
	// worst-case floor. It engages only together with a Roster and a
	// positive Hop, and only when some hosts are actually remote; an
	// all-local runtime already reads at one sweep.
	Quiesce bool
	// Roster maps every host to the index of the process serving it —
	// the same partition on every process of the fleet (validityd
	// derives it from -peers). Required for Quiesce: the issuer must
	// know how many distinct peer processes owe it an announce, and
	// which process a frame's From host speaks for.
	Roster []int
	// Obs, when non-nil, receives the engine's metrics: demux and drop
	// counters, §6.3 sends/bytes, query lifecycle counts, and sampled
	// gauges for shard queue depth and timer-heap length (see obs.go).
	// Nil disables instrumentation at the cost of one branch per update.
	// A registry must not be shared between runtimes in one process — the
	// sampled gauges are per-runtime closures.
	Obs *obs.Registry
	// Trace, when non-nil, records per-query lifecycle events (issued,
	// first traffic, churn transitions, frame-drop reasons, retirement,
	// compaction) on bounded rings, each stamped with the query's own
	// tick. Nil disables tracing.
	Trace *obs.Tracer
}

// Stats aggregates the §6.3 cost measures observed by this runtime for
// one query (QueryStats) or summed over all queries (Stats). In a
// multi-process deployment each process sees its own share; totals are the
// sum over processes (messages, bytes) and max over hosts (computation,
// time).
type Stats struct {
	// MessagesSent counts sends issued by local hosts.
	MessagesSent int64
	// BytesOnWire is the exact internal/wire transport-frame size of
	// every sent payload — byte-for-byte what the TCP transport writes
	// (zero for payloads outside the wire format).
	BytesOnWire int64
	// MessagesDelivered counts callbacks delivered to alive local hosts.
	MessagesDelivered int64
	// MessagesDropped counts messages lost at a dead local host, a failed
	// transport send, or a retired query.
	MessagesDropped int64
	// PerHostProcessed[h] is the computation cost of local host h
	// (zero for hosts served elsewhere).
	PerHostProcessed []int64
	// TimeCost is the longest causal chain observed at a local host.
	TimeCost int
}

// MaxComputation returns the maximum per-host computation cost.
func (s *Stats) MaxComputation() int64 {
	var max int64
	for _, c := range s.PerHostProcessed {
		if c > max {
			max = c
		}
	}
	return max
}

// merge folds o into s (sums counters, maxes the time cost).
func (s *Stats) merge(o Stats) {
	s.MessagesSent += o.MessagesSent
	s.BytesOnWire += o.BytesOnWire
	s.MessagesDelivered += o.MessagesDelivered
	s.MessagesDropped += o.MessagesDropped
	for h, c := range o.PerHostProcessed {
		s.PerHostProcessed[h] += c
	}
	if o.TimeCost > s.TimeCost {
		s.TimeCost = o.TimeCost
	}
}

// Runtime executes sim.Handlers for a set of local hosts over a Transport,
// multiplexing any number of concurrent queries.
type Runtime struct {
	g          *graph.Graph
	values     []int64
	tr         transport.Transport
	hop        time.Duration
	local      []bool
	localHosts []graph.HostID

	// Host-sharded execution: shardOf[h] names the one shard whose worker
	// runs every callback of local host h (-1 for hosts served
	// elsewhere). The partition is fixed at construction, so per-host
	// serialization needs no locking — it is single-ownership.
	shards  []*shard
	shardOf []int32
	maxLive int // admission cap; -1 = unlimited

	// Cross-process quiescence (quiesce.go): procOf is the host→process
	// roster, selfProc this process's own index, remoteProcs the
	// distinct peer processes serving at least one host. quiesce is true
	// only when the protocol is enabled and some hosts are remote — an
	// all-local runtime has nobody to hear from.
	quiesce     bool
	procOf      []int32
	selfProc    int32
	remoteProcs []int32

	mu      sync.Mutex
	alive   []bool
	started bool
	closed  bool
	factory QueryFactory
	queries map[QueryID]*queryEntry
	def     *queryState
	// Compacted history: retired queries shrink to ring summaries and fold
	// their counters into retiredTotal (see retired.go).
	retired      retiredRing
	retiredTotal Stats

	quit chan struct{}
	wg   sync.WaitGroup

	// The engine clock arms at the runtime's first traffic of any query;
	// KillAt departures are scheduled against it (a host dies for every
	// query at once). Per-query protocol clocks are separate — see
	// queryState. The anchor is a time.Time so elapsed time rides Go's
	// monotonic clock: an NTP step mid-query must not move deadlines.
	clockOnce  sync.Once
	clockStart atomic.Pointer[time.Time]

	// Timer heap shared by all hosts and queries; see timer.go.
	tmu          sync.Mutex
	theap        timerHeap
	timerSeq     uint64
	timerWake    chan struct{}
	pendingKills []pendingKill

	// Observability (obs.go): nil obs/trace disable instrumentation; met
	// holds pre-registered counters so hot paths never look anything up.
	obs   *obs.Registry
	trace *obs.Tracer
	met   runtimeMetrics
}

// New builds a runtime over cfg. Single-query callers install handlers
// with SetHandler before Start; multi-query callers register a
// QueryFactory and issue queries with StartQuery.
func New(cfg Config) (*Runtime, error) {
	n := cfg.Graph.Len()
	values := cfg.Values
	if values == nil {
		values = make([]int64, n)
	}
	if len(values) != n {
		return nil, fmt.Errorf("node: %d values for %d hosts", len(values), n)
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("node: nil transport")
	}
	rt := &Runtime{
		g:            cfg.Graph,
		values:       values,
		tr:           cfg.Transport,
		hop:          cfg.Hop,
		local:        make([]bool, n),
		shardOf:      make([]int32, n),
		alive:        make([]bool, n),
		queries:      make(map[QueryID]*queryEntry),
		retiredTotal: Stats{PerHostProcessed: make([]int64, n)},
		quit:         make(chan struct{}),
		timerWake:    make(chan struct{}, 1),
	}
	if cfg.Local == nil {
		for h := range rt.local {
			rt.local[h] = true
		}
	} else {
		for _, h := range cfg.Local {
			if h < 0 || int(h) >= n {
				return nil, fmt.Errorf("node: local host %d outside graph of %d hosts", h, n)
			}
			rt.local[h] = true
		}
	}
	for h := range rt.shardOf {
		rt.shardOf[h] = -1
	}
	for h := range rt.local {
		if rt.local[h] {
			rt.alive[h] = true
			rt.localHosts = append(rt.localHosts, graph.HostID(h))
		}
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = gort.GOMAXPROCS(0)
	}
	if nshards > len(rt.localHosts) {
		nshards = len(rt.localHosts)
	}
	if nshards < 1 {
		nshards = 1
	}
	// Round-robin over the sorted local host list: partitions stay within
	// one host of each other in size no matter how the shard boundary of
	// the process was drawn.
	perShard := make([]int, nshards)
	for i, h := range rt.localHosts {
		s := i % nshards
		rt.shardOf[h] = int32(s)
		perShard[s]++
	}
	qcap := cfg.ShardQueue
	if qcap <= 0 {
		qcap = shardQueueCap
	}
	rt.shards = make([]*shard, nshards)
	for s := range rt.shards {
		c := qcap
		// Start seeds one itemStart per owned host before the workers
		// launch; the queue must absorb them all without a drain.
		if min := perShard[s] + 1; c < min {
			c = min
		}
		rt.shards[s] = &shard{ch: make(chan item, c)}
	}
	switch {
	case cfg.MaxLiveQueries < 0:
		rt.maxLive = -1
	case cfg.MaxLiveQueries == 0:
		rt.maxLive = DefaultMaxLiveQueries
	default:
		rt.maxLive = cfg.MaxLiveQueries
	}
	if cfg.Quiesce && cfg.Roster != nil && cfg.Hop > 0 && len(rt.localHosts) > 0 {
		procOf, self, remote, err := buildRoster(cfg.Roster, n, rt.local, rt.localHosts)
		if err != nil {
			return nil, err
		}
		rt.procOf, rt.selfProc, rt.remoteProcs = procOf, self, remote
		rt.quiesce = len(remote) > 0
	}
	rt.initObs(cfg.Obs, cfg.Trace)
	rt.def = newQueryState(rt, DefaultQuery, nil, 0)
	defEntry := &queryEntry{qs: rt.def}
	defEntry.once.Do(func() {}) // pre-consumed: the default face has no factory
	rt.queries[DefaultQuery] = defEntry
	return rt, nil
}

// Graph returns the topology.
func (rt *Runtime) Graph() *graph.Graph { return rt.g }

// Hop returns the wall-clock realization of the per-hop delay bound δ.
func (rt *Runtime) Hop() time.Duration { return rt.hop }

// Shards returns the number of shard workers executing host callbacks.
func (rt *Runtime) Shards() int { return len(rt.shards) }

// Values returns the per-host attribute values. The slice is the
// runtime's own backing array: callers must treat it as read-only.
func (rt *Runtime) Values() []int64 { return rt.values }

// Local reports whether h is served by this runtime.
func (rt *Runtime) Local(h graph.HostID) bool { return rt.local[h] }

// SetHandler installs the protocol state machine for local host h on the
// default query. Handlers for hosts served elsewhere are ignored, so
// callers can install a full protocol (e.g. protocol.Wildfire materialized
// on a scratch sim.Network) without tracking the shard boundary
// themselves.
func (rt *Runtime) SetHandler(h graph.HostID, hd sim.Handler) {
	if rt.local[h] {
		rt.def.handlers[h] = hd
	}
}

// Handler returns the default-query handler installed at local host h
// (nil otherwise).
func (rt *Runtime) Handler(h graph.HostID) sim.Handler { return rt.def.handlers[h] }

// Start binds every local host on the transport, opens it, launches the
// shard workers plus the timer loop, and invokes each default-query
// handler's Start on its host's shard.
func (rt *Runtime) Start() error {
	rt.mu.Lock()
	if rt.started {
		rt.mu.Unlock()
		return fmt.Errorf("node: runtime already started")
	}
	rt.started = true
	rt.mu.Unlock()

	for _, h := range rt.localHosts {
		// Start is enqueued before the host is reachable, so it is the
		// first callback of the host its shard worker runs (and startHost
		// is exactly-once even against a frame that would race it).
		rt.enqueue(h, item{kind: itemStart, qs: rt.def})
		if err := rt.tr.Bind(h, rt.recvFunc(h)); err != nil {
			return err
		}
	}
	if err := rt.tr.Open(); err != nil {
		return err
	}
	// Warm-up dials: transports that can pre-establish peer connections do
	// so now, in the background, so a cold fleet's first query does not pay
	// dial latency (and its retries) inside its own per-hop budget.
	if w, ok := rt.tr.(transport.Warmer); ok {
		w.Warm()
	}
	for _, s := range rt.shards {
		rt.wg.Add(1)
		go rt.shardLoop(s)
	}
	rt.wg.Add(1)
	go rt.timerLoop()
	return nil
}

// recvFunc demultiplexes a transport delivery into h's shard queue: the
// frame's QueryID selects (or lazily instantiates) the query it belongs
// to.
func (rt *Runtime) recvFunc(h graph.HostID) transport.RecvFunc {
	return func(m transport.Message) {
		// Control plane first: quiesce announces carry a QueryID only to
		// name the query they report on; they must never instantiate one
		// (a hostile control frame would otherwise conjure state) and are
		// not demuxed protocol traffic.
		if q, ok := m.Payload.(wire.Quiesce); ok {
			rt.handleQuiesce(m, q)
			return
		}
		rt.met.framesIn.Inc()
		qs, _, err := rt.queryForErr(m.Query, true)
		if err != nil && errors.Is(err, ErrQueryRejected) {
			// Admission control: the rejection was counted (and traced)
			// where it was decided; the frame is simply not demuxed.
			return
		}
		if qs == nil {
			// Unknown query and no factory to build it (or the factory
			// failed). Counted but not traced: hostile ids must not churn
			// the tracer's query rings.
			rt.met.dropUnknown.Inc()
			return
		}
		if qs.retired.Load() {
			// Serialized with compaction: the drop is folded exactly once
			// whether it lands before or after the counters collapse.
			rt.dropRetired(qs)
			return
		}
		rt.enqueue(h, item{kind: itemMsg, qs: qs, msg: m})
	}
}

// enqueue places it on h's shard queue, blocking under back-pressure (a
// full shard already means the per-hop budget is blown). For callers that
// must not stall — the timer loop — use dispatch instead. The quit select
// keeps shutdown from hanging on a congested shard.
func (rt *Runtime) enqueue(h graph.HostID, it item) {
	it.h = h
	s := rt.shards[rt.shardOf[h]]
	select {
	case s.ch <- it:
	case <-rt.quit:
	}
}

// dispatch is enqueue for the timer loop: it never blocks the caller. A
// full shard queue parks the item on the shard's overflow list, fed in
// FIFO order by at most one drainer goroutine per congested shard, so one
// slow shard cannot stall timers, kills, or retirements of every other
// shard, and a host's items still arrive in the order they fired.
func (rt *Runtime) dispatch(h graph.HostID, it item) {
	it.h = h
	s := rt.shards[rt.shardOf[h]]
	s.mu.Lock()
	if s.busy {
		s.ov = append(s.ov, it) // keep FIFO behind parked items
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	select {
	case s.ch <- it:
		return
	case <-rt.quit:
		return
	default:
	}
	s.mu.Lock()
	if s.busy {
		s.ov = append(s.ov, it)
		s.mu.Unlock()
		return
	}
	s.busy = true
	s.ov = append(s.ov, it)
	s.mu.Unlock()
	go rt.drainOverflow(s)
}

// drainOverflow feeds s's parked items into its queue in order, exiting
// once the overflow empties (or the runtime stops).
func (rt *Runtime) drainOverflow(s *shard) {
	for {
		s.mu.Lock()
		if len(s.ov) == 0 {
			s.busy = false
			s.ov = nil
			s.mu.Unlock()
			return
		}
		it := s.ov[0]
		s.ov = s.ov[1:]
		s.mu.Unlock()
		select {
		case s.ch <- it:
		case <-rt.quit:
			return
		}
	}
}

// shardLoop is one shard worker: it drains the shard's queue, running
// every callback of every host the shard owns on this single goroutine.
// A host's callbacks all land on one shard (shardOf is fixed), so they
// execute serialized and in enqueue order without per-host goroutines.
func (rt *Runtime) shardLoop(s *shard) {
	defer rt.wg.Done()
	for {
		select {
		case <-rt.quit:
			return
		case it := <-s.ch:
			rt.runItem(it)
		}
	}
}

// runItem executes one host callback; must only be called from the shard
// worker owning it.h.
func (rt *Runtime) runItem(it item) {
	h := it.h
	switch it.kind {
	case itemFunc:
		it.fn() // runs even on a dead host: state reads stay safe
		return
	case itemRetire:
		it.qs.handlers[h] = nil
		return
	}
	qs := it.qs
	// Retirement is checked before host liveness so that EVERY
	// retired-query drop — including one at a Kill'd host — goes
	// through dropRetired's serialization with compact; a lock-free
	// increment here could land after the compaction snapshot and
	// be lost from the folded totals.
	if qs.retired.Load() {
		if it.kind == itemMsg {
			rt.dropRetired(qs)
		}
		return
	}
	if !rt.aliveHost(h) {
		if it.kind == itemMsg {
			qs.dropped.Add(1)
			rt.met.dropHostDead.Inc()
			rt.traceDrop(qs, h, it.msg.Chain, dropHostDead)
		}
		return
	}
	if it.kind == itemMsg {
		// First traffic arms the query clock even when the local
		// target is dead on this query's timeline: the frame proves
		// the query reached this process, and the clock is what
		// schedules the timeline's own join ticks — a shard whose
		// every local host starts absent must still wake them.
		qs.armClock(rt)
	}
	if qs.hostDead(h) {
		// Dead on this query's membership timeline: its frames are
		// swallowed and its timers never fire, while the host keeps
		// serving every other query of the fleet.
		if it.kind == itemMsg {
			qs.dropped.Add(1)
			rt.met.dropQueryDead.Inc()
			rt.traceDrop(qs, h, it.msg.Chain, dropQueryDead)
		}
		return
	}
	hd := qs.handlers[h]
	if hd == nil {
		return
	}
	switch it.kind {
	case itemStart:
		qs.startHost(rt, h, hd)
	case itemMsg:
		// A lazily instantiated handler's first contact IS its
		// start-of-life: run Start before the first Receive, so
		// protocols that initialize per-host state in Start (not
		// just at h_q) work on worker shards that never see
		// StartQuery. started[h] makes it exactly-once against the
		// explicit itemStart of the issuing process.
		qs.startHost(rt, h, hd)
		qs.delivered.Add(1)
		rt.met.delivered.Inc()
		atomic.AddInt64(&qs.processed[h], 1)
		qs.observeChain(it.msg.Chain)
		msg := sim.MakeMessage(it.msg.From, it.msg.To, it.msg.Payload, it.msg.Chain)
		hd.Receive(sim.BackendContext(qs.be, h, it.msg.Chain), msg)
	case itemTimer:
		hd.Timer(sim.BackendContext(qs.be, h, it.chain), it.tag)
	}
}

func (rt *Runtime) aliveHost(h graph.HostID) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.alive[h]
}

// Kill switches local host h off mid-run (§3.2) for every query: it
// processes nothing more, its timers never fire, and the transport drops
// traffic to and from it. It is the degenerate all-queries case of the
// membership layer — per-query departures ride QueryInstance.Churn and
// never touch the transport. Killing a host served by another process is
// that process's call to make; here it is a no-op.
func (rt *Runtime) Kill(h graph.HostID) {
	if !rt.local[h] {
		return
	}
	rt.mu.Lock()
	rt.alive[h] = false
	rt.mu.Unlock()
	rt.tr.Kill(h)
}

// Alive reports whether local host h is alive.
func (rt *Runtime) Alive(h graph.HostID) bool { return rt.local[h] && rt.aliveHost(h) }

// Do runs fn on the shard worker owning host h, serialized with every
// callback of h, and returns once fn has completed. It is how callers
// read protocol state (results, partials) of an in-flight query without
// racing the handlers.
func (rt *Runtime) Do(h graph.HostID, fn func()) error {
	if !rt.local[h] {
		return fmt.Errorf("node: host %d not served by this runtime", h)
	}
	done := make(chan struct{})
	it := item{kind: itemFunc, h: h, fn: func() { fn(); close(done) }}
	s := rt.shards[rt.shardOf[h]]
	select {
	case s.ch <- it:
	case <-rt.quit:
		return fmt.Errorf("node: runtime stopped")
	}
	select {
	case <-done:
		return nil
	case <-rt.quit:
		return fmt.Errorf("node: runtime stopped")
	}
}

// Stop terminates the shard workers and the timer loop, closes the
// transport, and waits for everything to drain. Safe to call more than
// once.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	close(rt.quit)
	rt.mu.Unlock()
	rt.tr.Close()
	rt.wg.Wait()
}

// Stats returns a snapshot of the cost counters summed over all queries,
// live and compacted alike.
func (rt *Runtime) Stats() Stats {
	total := Stats{PerHostProcessed: make([]int64, rt.g.Len())}
	rt.mu.Lock()
	qss := make([]*queryState, 0, len(rt.queries))
	for _, e := range rt.queries {
		if e.qs != nil { // skip entries whose factory is still running
			qss = append(qss, e.qs)
		}
	}
	total.merge(rt.retiredTotal)
	rt.mu.Unlock()
	for _, qs := range qss {
		total.merge(qs.snapshot())
	}
	return total
}

// QueryStats returns the cost counters of one query; ok is false if this
// runtime never saw the query. For a query already compacted to the
// retired ring, the summary counters are returned with a nil per-host
// array (use RetiredStats for the compact form including MaxComputation).
func (rt *Runtime) QueryStats(id QueryID) (Stats, bool) {
	qs := rt.lookupQuery(id)
	if qs == nil {
		rt.mu.Lock()
		rs, ok := rt.retired.get(id)
		rt.mu.Unlock()
		if !ok {
			return Stats{}, false
		}
		return Stats{
			MessagesSent:      rs.MessagesSent,
			BytesOnWire:       rs.BytesOnWire,
			MessagesDelivered: rs.MessagesDelivered,
			MessagesDropped:   rs.MessagesDropped,
			TimeCost:          rs.TimeCost,
		}, true
	}
	return qs.snapshot(), true
}

// armEngineClock starts the engine clock (KillAt's reference) if it is not
// yet running, converting any departures scheduled before first traffic
// into absolute timer-heap entries.
func (rt *Runtime) armEngineClock() {
	rt.clockOnce.Do(func() {
		t := time.Now()
		rt.clockStart.Store(&t)
		rt.tmu.Lock()
		for _, pk := range rt.pendingKills {
			rt.pushTimerLocked(&timerEntry{
				when: t.Add(time.Duration(pk.at) * rt.hop),
				kind: tkKill,
				h:    pk.h,
			})
		}
		rt.pendingKills = nil
		rt.tmu.Unlock()
		rt.wakeTimer()
	})
}

// --- handler helpers -----------------------------------------------------

// WithRand wraps hd so that every callback context carries rng. Live
// backends have no shared deterministic RNG (sim.Context.Rand returns nil
// there), but FM-sketch partials need coin tosses at activation; the
// runtime serializes all callbacks of a host on one shard worker, so an
// unsynchronized per-host source is safe.
func WithRand(hd sim.Handler, rng *rand.Rand) sim.Handler {
	return &randHandler{inner: hd, rng: rng}
}

type randHandler struct {
	inner sim.Handler
	rng   *rand.Rand
}

func (r *randHandler) Start(ctx *sim.Context) { r.inner.Start(ctx.WithRand(r.rng)) }
func (r *randHandler) Receive(ctx *sim.Context, msg sim.Message) {
	r.inner.Receive(ctx.WithRand(r.rng), msg)
}
func (r *randHandler) Timer(ctx *sim.Context, tag int) { r.inner.Timer(ctx.WithRand(r.rng), tag) }
