package node

import (
	"sync"
	"testing"
	"time"

	"validity/internal/graph"
	"validity/internal/sim"
)

// line builds a path graph 0-1-…-(n-1).
func line(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID(i+1))
	}
	g.SortAdjacency()
	return g
}

// liveEcho floods a token once; concurrency-safe because each host's
// callbacks are serialized, but sawToken is read cross-goroutine.
type liveEcho struct {
	mu       sync.Mutex
	initiate bool
	seen     bool
}

func (e *liveEcho) Start(ctx *sim.Context) {
	if e.initiate {
		e.mu.Lock()
		e.seen = true
		e.mu.Unlock()
		ctx.SendAll("token")
	}
}

func (e *liveEcho) Receive(ctx *sim.Context, msg sim.Message) {
	e.mu.Lock()
	if e.seen {
		e.mu.Unlock()
		return
	}
	e.seen = true
	e.mu.Unlock()
	ctx.SendAllExcept(msg.From, "token")
}

func (e *liveEcho) Timer(ctx *sim.Context, tag int) {}

func (e *liveEcho) sawToken() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seen
}

func TestLiveNetworkFloodReachesAll(t *testing.T) {
	g := line(8)
	ln := NewLiveNetwork(g, nil, time.Millisecond)
	hs := make([]*liveEcho, g.Len())
	for i := range hs {
		hs[i] = &liveEcho{initiate: i == 0}
		ln.SetHandler(graph.HostID(i), hs[i])
	}
	ln.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		all := true
		for _, h := range hs {
			if !h.sawToken() {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			ln.Stop()
			t.Fatal("live flood did not reach all hosts in time")
		}
		time.Sleep(time.Millisecond)
	}
	ln.Stop()
	if ln.MessagesSent() == 0 {
		t.Fatal("no messages recorded")
	}
}

func TestLiveNetworkKillBlocksPropagation(t *testing.T) {
	g := line(4)
	ln := NewLiveNetwork(g, nil, 2*time.Millisecond)
	hs := make([]*liveEcho, g.Len())
	for i := range hs {
		hs[i] = &liveEcho{initiate: i == 0}
		ln.SetHandler(graph.HostID(i), hs[i])
	}
	ln.Kill(1) // dead before start: token can never pass host 1
	ln.Start()
	time.Sleep(100 * time.Millisecond)
	ln.Stop()
	if hs[2].sawToken() || hs[3].sawToken() {
		t.Fatal("token crossed a killed host")
	}
}

func TestLiveNetworkStopIdempotent(t *testing.T) {
	g := line(2)
	ln := NewLiveNetwork(g, nil, time.Millisecond)
	ln.Start()
	ln.Stop()
	ln.Stop() // must not panic or deadlock
}

// timerHandler drives SetTimer/Timer callbacks.
type timerHandler struct {
	onStart func(ctx *sim.Context)
	onTimer func(tag int)
}

func (h *timerHandler) Start(ctx *sim.Context) {
	if h.onStart != nil {
		h.onStart(ctx)
	}
}
func (h *timerHandler) Receive(ctx *sim.Context, msg sim.Message) {}
func (h *timerHandler) Timer(ctx *sim.Context, tag int) {
	if h.onTimer != nil {
		h.onTimer(tag)
	}
}

func TestLiveNetworkTimer(t *testing.T) {
	g := line(2)
	ln := NewLiveNetwork(g, nil, time.Millisecond)
	done := make(chan int, 1)
	ln.SetHandler(0, &timerHandler{
		onStart: func(ctx *sim.Context) { ctx.SetTimer(ctx.Now()+5, 7) },
		onTimer: func(tag int) {
			select {
			case done <- tag:
			default:
			}
		},
	})
	ln.Start()
	select {
	case tag := <-done:
		if tag != 7 {
			t.Fatalf("timer tag = %d, want 7", tag)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("live timer never fired")
	}
	ln.Stop()
}
