package node

import (
	"strconv"
	"testing"
	"time"

	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/sim"
	"validity/internal/transport"
)

// tickPinger sends one tagged payload per scheduled tick: "t0" at Start,
// then "t<k>" from a timer per entry of at.
type tickPinger struct {
	to graph.HostID
	at []sim.Time
}

func (p *tickPinger) Start(ctx *sim.Context) {
	ctx.Send(p.to, "t0")
	for i, at := range p.at {
		ctx.SetTimer(at, i)
	}
}
func (p *tickPinger) Receive(ctx *sim.Context, msg sim.Message) {}
func (p *tickPinger) Timer(ctx *sim.Context, tag int) {
	ctx.Send(p.to, "t"+strconv.Itoa(int(p.at[tag])))
}

// TestPerQueryLateJoiner drives a join through the shared timer heap:
// host 1 is a late joiner of query 1, absent until tick 3 of that
// query's clock. The tick-0 payload must be swallowed, the tick-6
// payload delivered — and the host's handler Start runs lazily at the
// join, exactly like first contact.
func TestPerQueryLateJoiner(t *testing.T) {
	const hop = raceSlowdown * 10 * time.Millisecond
	g := line(2)
	rt, err := New(Config{Graph: g, Transport: transport.NewChannel(2, hop/2), Hop: hop})
	if err != nil {
		t.Fatal(err)
	}
	r := &payloadRecorder{}
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		return &QueryInstance{
			Handlers: []sim.Handler{&tickPinger{to: 1, at: []sim.Time{6}}, r},
			Deadline: 1000,
			Churn:    churn.Timeline{{H: 1, T: 3, Kind: churn.Join}},
		}, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(r.snapshot()) < 1 {
		if time.Now().After(deadline) {
			st, _ := rt.QueryStats(1)
			t.Fatalf("joined host received %v (stats %+v); want the post-join payload", r.snapshot(), st)
		}
		time.Sleep(time.Millisecond)
	}
	if got := r.snapshot(); len(got) != 1 || got[0] != "t6" {
		t.Fatalf("host 1 received %v, want only the post-join payload t6", got)
	}
	st, _ := rt.QueryStats(1)
	if st.MessagesDropped == 0 {
		t.Fatal("the pre-join payload was not counted as dropped")
	}
	if st.MessagesDelivered != 1 {
		t.Fatalf("delivered = %d, want 1", st.MessagesDelivered)
	}
	if !rt.Alive(1) {
		t.Fatal("per-query membership leaked into runtime liveness")
	}
}

// TestPerQueryRebirth follows a full leave/rejoin session on one query:
// host 1 leaves at tick 3 and returns at tick 9, so of the payloads sent
// at ticks 0, 6, and 12 exactly the middle one vanishes.
func TestPerQueryRebirth(t *testing.T) {
	const hop = raceSlowdown * 10 * time.Millisecond
	g := line(2)
	rt, err := New(Config{Graph: g, Transport: transport.NewChannel(2, hop/2), Hop: hop})
	if err != nil {
		t.Fatal(err)
	}
	r := &payloadRecorder{}
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		return &QueryInstance{
			Handlers: []sim.Handler{&tickPinger{to: 1, at: []sim.Time{6, 12}}, r},
			Deadline: 1000,
			Churn: churn.Timeline{
				{H: 1, T: 3},
				{H: 1, T: 9, Kind: churn.Join},
			},
		}, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(r.snapshot()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("host 1 received %v; want the tick-0 and tick-12 payloads", r.snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	// A settle beat: no further payload may trickle in late.
	time.Sleep(4 * hop)
	got := r.snapshot()
	if len(got) != 2 || got[0] != "t0" || got[1] != "t12" {
		t.Fatalf("host 1 received %v; want [t0 t12] — the mid-absence payload must vanish", got)
	}
	st, _ := rt.QueryStats(1)
	if st.MessagesDropped == 0 {
		t.Fatal("the mid-absence payload was not counted as dropped")
	}
}

// TestJoinFiresOnAllAbsentShard pins the clock-arming rule for joins: a
// process whose every local host is absent at tick 0 for a query must
// still arm that query's clock on the first frame it sees — the frame is
// dropped at the dead host, but the clock it arms is what schedules the
// timeline's join ticks. Before the fix, such a shard never woke its
// late joiners: frames were dropped before the clock could arm.
func TestJoinFiresOnAllAbsentShard(t *testing.T) {
	const hop = raceSlowdown * 10 * time.Millisecond
	g := line(2)
	ports := freeAddrs(t, 2)
	addrs := []string{ports[0], ports[1]}

	r := &payloadRecorder{}
	newShard := func(local []graph.HostID, rec *payloadRecorder) *Runtime {
		rt, err := New(Config{
			Graph:     g,
			Transport: transport.NewTCP(addrs),
			Hop:       hop,
			Local:     local,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
			return &QueryInstance{
				Handlers: []sim.Handler{&tickPinger{to: 1, at: []sim.Time{6, 9, 12}}, rec},
				Deadline: 1000,
				Churn:    churn.Timeline{{H: 1, T: 3, Kind: churn.Join}},
			}, nil
		})
		return rt
	}

	rtB := newShard([]graph.HostID{1}, r) // serves only the late joiner
	if err := rtB.Start(); err != nil {
		t.Fatal(err)
	}
	defer rtB.Stop()
	rtA := newShard([]graph.HostID{0}, &payloadRecorder{})
	if err := rtA.Start(); err != nil {
		t.Fatal(err)
	}
	defer rtA.Stop()

	if _, err := rtA.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	// The tick-0 frame lands at rtB while host 1 is still absent — it is
	// dropped, but must arm rtB's query clock so the tick-3 join fires
	// and a later payload gets through.
	deadline := time.Now().Add(15 * time.Second)
	for len(r.snapshot()) == 0 {
		if time.Now().After(deadline) {
			st, _ := rtB.QueryStats(1)
			t.Fatalf("late joiner never woke on the all-absent shard (stats %+v)", st)
		}
		time.Sleep(time.Millisecond)
	}
	for _, got := range r.snapshot() {
		if got == "t0" {
			t.Fatalf("pre-join payload delivered: %v", r.snapshot())
		}
	}
	if st, _ := rtB.QueryStats(1); st.MessagesDropped == 0 {
		t.Fatal("the pre-join frame was not counted as dropped")
	}
}

// TestDropRetiredFoldsOnce pins the compaction straggler fix: a drop
// that lands before compaction is folded with the query's counters, one
// that lands after goes straight to the runtime totals and the ring
// summary — and nothing is counted twice or lost in between.
func TestDropRetiredFoldsOnce(t *testing.T) {
	g := line(2)
	rt, err := New(Config{Graph: g, Transport: transport.NewChannel(2, 0), Hop: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r := &payloadRecorder{}
	rt.SetQueryFactory(func(id QueryID) (*QueryInstance, error) {
		return &QueryInstance{Handlers: []sim.Handler{r, r}, Deadline: 1000}, nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if _, err := rt.StartQuery(1); err != nil {
		t.Fatal(err)
	}
	qs := rt.lookupQuery(1)
	if qs == nil {
		t.Fatal("query 1 has no state")
	}
	rt.retire(qs)

	// Straggler before compaction: serialized against the (not yet run)
	// fold, lands on the query's own counter.
	rt.dropRetired(qs)
	if st, _ := rt.QueryStats(1); st.MessagesDropped != 1 {
		t.Fatalf("pre-compaction drop count = %d, want 1", st.MessagesDropped)
	}

	rt.compact(qs)
	if total := rt.Stats(); total.MessagesDropped != 1 {
		t.Fatalf("compaction folded %d drops, want 1", total.MessagesDropped)
	}

	// Straggler after compaction: the demux entry is gone, so the drop
	// lands directly on the folded totals and the ring summary.
	rt.dropRetired(qs)
	if total := rt.Stats(); total.MessagesDropped != 2 {
		t.Fatalf("post-compaction drop lost: totals show %d, want 2", total.MessagesDropped)
	}
	rs := rt.RetiredStats()
	if len(rs) != 1 || rs[0].MessagesDropped != 2 {
		t.Fatalf("ring summary = %+v, want 2 dropped", rs)
	}
	// compact is idempotent: a second call must not double-fold.
	rt.compact(qs)
	if total := rt.Stats(); total.MessagesDropped != 2 {
		t.Fatalf("re-compaction double-folded: totals show %d, want 2", total.MessagesDropped)
	}
}
