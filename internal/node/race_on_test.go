//go:build race

package node

// raceSlowdown widens wall-clock budgets under the race detector, whose
// instrumentation slows execution severalfold; the per-hop bound δ must
// stay above the (now longer) real per-hop latency or the protocols'
// deadline guards fire early and the tests measure the scheduler, not the
// system.
const raceSlowdown = 5
