package node

import (
	"time"

	"validity/internal/graph"
	"validity/internal/sim"
	"validity/internal/transport"
)

// LiveNetwork runs every host of a topology in the calling process — one
// goroutine per host, messages over the in-process channel transport, the
// per-hop delay bound δ realized as `hop` of wall-clock time. It is the
// single-process, single-query convenience face over the engine: handlers
// installed here live on the runtime's default query, so the API the
// examples have always used keeps working unchanged on top of the
// multi-query Runtime (it previously lived in internal/sim; it moved here
// when the runtime grew pluggable transports, because sim cannot import
// node without a cycle). Its continuous face is stream.Live (that package
// imports this one, so the entry point lives there): a §4.2 windowed
// query runs over the same in-process engine, one engine sub-query per
// window.
type LiveNetwork struct {
	rt *Runtime
}

// NewLiveNetwork creates a live runner over g where hop is the wall-clock
// realization of the per-hop delay bound δ. Values may be nil (all zeros).
//
// δ is a *bound* (§3.1): actual delivery must come in under it with room
// for queueing and handler processing, or wall-clock time outruns the
// causal progress of the protocols and their 2D̂δ deadline guards cut
// convergecast short. The channel transport therefore delivers at δ/2,
// the same margin a deployment would engineer between its observed
// latency and the δ it advertises.
func NewLiveNetwork(g *graph.Graph, values []int64, hop time.Duration) *LiveNetwork {
	rt, err := New(Config{
		Graph:     g,
		Values:    values,
		Transport: transport.NewChannel(g.Len(), hop/2),
		Hop:       hop,
	})
	if err != nil {
		panic(err) // only reachable on len(values) ≠ g.Len(), as before
	}
	return &LiveNetwork{rt: rt}
}

// SetHandler installs the protocol state machine for host h.
func (ln *LiveNetwork) SetHandler(h graph.HostID, hd sim.Handler) { ln.rt.SetHandler(h, hd) }

// MessagesSent returns the number of messages sent so far.
func (ln *LiveNetwork) MessagesSent() int64 { return ln.rt.Stats().MessagesSent }

// Start launches one goroutine per host and invokes every handler's Start.
func (ln *LiveNetwork) Start() {
	if err := ln.rt.Start(); err != nil {
		panic(err) // channel transport binds cannot fail on fresh runtime
	}
}

// Kill marks host h failed; it stops processing messages immediately.
func (ln *LiveNetwork) Kill(h graph.HostID) { ln.rt.Kill(h) }

// Stop terminates all host goroutines and waits for them to exit.
func (ln *LiveNetwork) Stop() { ln.rt.Stop() }

// Runtime exposes the underlying runtime (for stats beyond MessagesSent).
func (ln *LiveNetwork) Runtime() *Runtime { return ln.rt }
