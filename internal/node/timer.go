package node

import (
	"container/heap"
	"time"

	"validity/internal/graph"
	"validity/internal/obs"
	"validity/internal/sim"
)

// The runtime keeps a single timer heap drained by one goroutine instead
// of a goroutine per armed timer: a 10K-host fleet multiplexing many
// queries arms a protocol flush timer per (host, query, round), and
// spawning a goroutine for each would churn the scheduler for no benefit.
// The heap orders entries by wall-clock firing time with a sequence-number
// tiebreak (FIFO among equal times, matching the event loop's
// determinism), and covers protocol timers, scheduled membership
// transitions — the all-queries KillAt kind plus per-query departures and
// joins — and query-state retirement and compaction alike.

type timerKind uint8

const (
	// tkTimer fires a protocol timer callback on a host goroutine.
	tkTimer timerKind = iota
	// tkKill executes a scheduled all-queries departure (§3.2).
	tkKill
	// tkQueryDead executes a departure on one query's membership timeline:
	// the host goes silent for that query and that query only.
	tkQueryDead
	// tkQueryJoin executes an arrival on one query's membership timeline:
	// the host's frames, timers, and sends resume for that query, and a
	// late joiner's handler is started lazily like any first contact.
	tkQueryJoin
	// tkRetire retires a query's state after its deadline safely passed.
	tkRetire
	// tkCompact folds a retired query's counters into the bounded ring of
	// summaries and drops its O(hosts) state.
	tkCompact
	// tkFunc runs an arbitrary scheduled closure (Runtime.After): the
	// streaming subsystem opens its windows through these, so window
	// cadence rides the same heap as every protocol timer.
	tkFunc
	// tkQuiesce runs one cross-process quiescence check for a query
	// (quiesce.go): compare the activity counter, announce or withdraw a
	// quiet claim, and re-arm.
	tkQuiesce
)

// timerEntry is one scheduled firing.
type timerEntry struct {
	when  time.Time
	seq   uint64
	kind  timerKind
	h     graph.HostID
	qs    *queryState
	tag   int
	chain int
	fn    func()
}

// timerHeap is a min-heap of entries by (when, seq).
type timerHeap []*timerEntry

func (q timerHeap) Len() int { return len(q) }
func (q timerHeap) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq
}
func (q timerHeap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *timerHeap) Push(x any)   { *q = append(*q, x.(*timerEntry)) }
func (q *timerHeap) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// pendingKill is a departure scheduled before the engine clock armed; it
// converts to an absolute heap entry at arm time (armEngineClock).
type pendingKill struct {
	h  graph.HostID
	at sim.Time
}

// pushTimerLocked adds e to the heap; rt.tmu must be held.
func (rt *Runtime) pushTimerLocked(e *timerEntry) {
	e.seq = rt.timerSeq
	rt.timerSeq++
	heap.Push(&rt.theap, e)
}

// scheduleEntry adds e to the heap and wakes the timer loop so a new
// earliest entry shortens the current sleep.
func (rt *Runtime) scheduleEntry(e *timerEntry) {
	rt.tmu.Lock()
	rt.pushTimerLocked(e)
	rt.tmu.Unlock()
	rt.wakeTimer()
}

func (rt *Runtime) wakeTimer() {
	select {
	case rt.timerWake <- struct{}{}:
	default:
	}
}

// scheduleRetire arms query-state retirement and, one more grace later,
// compaction. Twice the deadline in wall clock plus grace leaves the
// issuing process ample room to read the result and straggler frames to
// be counted before the protocol state is dropped; the extra compaction
// window keeps the counters readable for late reporting before they
// shrink to a ring summary.
func (rt *Runtime) scheduleRetire(qs *queryState) {
	if qs.deadline <= 0 {
		return // the default face and deadline-less instances never retire
	}
	retireAt := time.Now().Add(2*time.Duration(qs.deadline)*rt.hop + retireGrace)
	rt.scheduleEntry(&timerEntry{when: retireAt, kind: tkRetire, qs: qs})
	rt.scheduleEntry(&timerEntry{when: retireAt.Add(retireGrace), kind: tkCompact, qs: qs})
}

// timerLoop drains the heap: it sleeps until the earliest entry is due,
// fires everything due, and re-sleeps. scheduleEntry wakes it early when a
// new entry preempts the current earliest.
func (rt *Runtime) timerLoop() {
	defer rt.wg.Done()
	for {
		rt.tmu.Lock()
		now := time.Now()
		var due []*timerEntry
		for len(rt.theap) > 0 && !rt.theap[0].when.After(now) {
			due = append(due, heap.Pop(&rt.theap).(*timerEntry))
		}
		wait := time.Duration(-1)
		if len(rt.theap) > 0 {
			wait = rt.theap[0].when.Sub(now)
		}
		rt.tmu.Unlock()

		for _, e := range due {
			rt.fireTimer(e)
		}

		var timeout <-chan time.Time
		var timer *time.Timer
		if wait >= 0 {
			timer = time.NewTimer(wait)
			timeout = timer.C
		}
		select {
		case <-rt.quit:
			if timer != nil {
				timer.Stop()
			}
			return
		case <-rt.timerWake:
		case <-timeout:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

func (rt *Runtime) fireTimer(e *timerEntry) {
	switch e.kind {
	case tkTimer:
		// dispatch, not enqueue: the loop must not block behind one
		// congested shard while other shards' timers are due.
		rt.met.timersFired.Inc()
		rt.dispatch(e.h, item{kind: itemTimer, qs: e.qs, tag: e.tag, chain: e.chain})
	case tkKill:
		rt.Kill(e.h)
	case tkQueryDead:
		e.qs.markDead(e.h)
		if rt.trace != nil {
			rt.trace.Record(int64(e.qs.id), obs.EvChurnLeave, int(e.h), e.qs.tickNow(rt), "")
		}
	case tkQueryJoin:
		// Un-suppress first, then hand the host's shard a Start item:
		// startHost is exactly-once per (query, host), so a rebirth (the
		// host lived before) reduces to the un-suppression alone, while a
		// late joiner's handler starts now — the same lazy
		// instantiate-on-first-contact path worker shards already run.
		e.qs.markAlive(e.h)
		if rt.trace != nil {
			rt.trace.Record(int64(e.qs.id), obs.EvChurnJoin, int(e.h), e.qs.tickNow(rt), "")
		}
		rt.dispatch(e.h, item{kind: itemStart, qs: e.qs})
	case tkRetire:
		rt.retire(e.qs)
	case tkCompact:
		rt.compact(e.qs)
	case tkFunc:
		// Own goroutine: the closure may block (StartQuery enqueues into
		// shard queues under back-pressure) and the loop must keep firing
		// other hosts' timers on time.
		go e.fn()
	case tkQuiesce:
		// Inline: the check is a few atomic loads, and any resulting
		// transport send — the only part that can block — is spawned on
		// its own goroutine inside.
		rt.quiesceCheck(e.qs)
	}
}

// After schedules fn to run d from now on the runtime's shared timer heap
// — the same heap that drives protocol timers, departures, and query
// retirement, so scheduled work needs no goroutine parked per deadline.
// fn runs on its own goroutine and may block; a runtime that stops before
// the entry fires drops it.
func (rt *Runtime) After(d time.Duration, fn func()) {
	rt.scheduleEntry(&timerEntry{when: time.Now().Add(d), kind: tkFunc, fn: fn})
}

// KillAt schedules Kill(h) at virtual tick `at` on the engine clock (which
// arms at the runtime's first traffic of any query): a departure scheduled
// for tick 10 happens 10 δ after the first query reaches this process, no
// matter how much earlier the process booted.
func (rt *Runtime) KillAt(h graph.HostID, at sim.Time) {
	if !rt.local[h] {
		return
	}
	rt.tmu.Lock()
	if start := rt.clockStart.Load(); start != nil {
		rt.pushTimerLocked(&timerEntry{when: start.Add(time.Duration(at) * rt.hop), kind: tkKill, h: h})
	} else {
		rt.pendingKills = append(rt.pendingKills, pendingKill{h: h, at: at})
	}
	rt.tmu.Unlock()
	rt.wakeTimer()
}
