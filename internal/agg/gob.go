package agg

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"validity/internal/fm"
)

// Partials ride inside protocol messages as interface values, so the TCP
// transport's gob frames need every concrete Partial registered and
// encodable. The fields are unexported by design (the partial's algebra is
// its whole contract), hence explicit GobEncoder/GobDecoder
// implementations; sketch-backed partials delegate to fm.Sketch's own gob
// layout.

func init() {
	gob.Register(&scalarPartial{})
	gob.Register(&countPartial{})
	gob.Register(&sumPartial{})
	gob.Register(&avgPartial{})
}

// GobEncode implements gob.GobEncoder: u8 kind | i64 value.
func (s *scalarPartial) GobEncode() ([]byte, error) {
	buf := make([]byte, 0, 9)
	buf = append(buf, uint8(s.kind))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.val))
	return buf, nil
}

// GobDecode implements gob.GobDecoder.
func (s *scalarPartial) GobDecode(b []byte) error {
	if len(b) != 9 {
		return fmt.Errorf("agg: scalar partial frame of %d bytes", len(b))
	}
	k := Kind(b[0])
	if k != Min && k != Max {
		return fmt.Errorf("agg: scalar partial of kind %d", b[0])
	}
	s.kind = k
	s.val = int64(binary.LittleEndian.Uint64(b[1:9]))
	return nil
}

// GobEncode implements gob.GobEncoder.
func (c *countPartial) GobEncode() ([]byte, error) { return c.sk.GobEncode() }

// GobDecode implements gob.GobDecoder.
func (c *countPartial) GobDecode(b []byte) error {
	c.sk = new(fm.Sketch)
	return c.sk.GobDecode(b)
}

// GobEncode implements gob.GobEncoder.
func (s *sumPartial) GobEncode() ([]byte, error) { return s.sk.GobEncode() }

// GobDecode implements gob.GobDecoder.
func (s *sumPartial) GobDecode(b []byte) error {
	s.sk = new(fm.Sketch)
	return s.sk.GobDecode(b)
}

// GobEncode implements gob.GobEncoder: u32 sum-frame length | sum frame |
// count frame.
func (a *avgPartial) GobEncode() ([]byte, error) {
	sum, err := a.sum.GobEncode()
	if err != nil {
		return nil, err
	}
	cnt, err := a.cnt.GobEncode()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 4+len(sum)+len(cnt))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sum)))
	buf = append(buf, sum...)
	buf = append(buf, cnt...)
	return buf, nil
}

// GobDecode implements gob.GobDecoder.
func (a *avgPartial) GobDecode(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("agg: avg partial frame of %d bytes", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b[:4]))
	if len(b) < 4+n {
		return fmt.Errorf("agg: avg partial sum frame truncated")
	}
	a.sum = new(fm.Sketch)
	if err := a.sum.GobDecode(b[4 : 4+n]); err != nil {
		return err
	}
	a.cnt = new(fm.Sketch)
	return a.cnt.GobDecode(b[4+n:])
}
