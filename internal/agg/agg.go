// Package agg defines the aggregate queries of the paper — minimum,
// maximum, count, sum and average (§1, §5) — and the partial-aggregate
// states the protocols exchange.
//
// Two families of partials exist:
//
//   - Scalar partials for min/max, whose combine function is the query
//     itself and is naturally duplicate-insensitive (§5.1).
//   - Sketch partials for count/sum/avg, which carry Flajolet–Martin
//     bit-vectors whose combine function is bitwise OR (§5.2). Average is
//     a (sum, count) sketch pair.
//
// Exact reference evaluation over a value multiset is also provided; the
// oracle uses it to compute the q(H_C) and q(H_U) validity bounds.
package agg

import (
	"fmt"
	"math/rand"

	"validity/internal/fm"
)

// Kind enumerates the aggregate queries.
type Kind int

const (
	Min Kind = iota
	Max
	Count
	Sum
	Avg
)

func (k Kind) String() string {
	switch k {
	case Min:
		return "min"
	case Max:
		return "max"
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a query name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	case "count":
		return Count, nil
	case "sum":
		return Sum, nil
	case "avg", "average":
		return Avg, nil
	}
	return 0, fmt.Errorf("agg: unknown aggregate %q", s)
}

// DuplicateSensitive reports whether the conventional combine function for
// k is duplicate-sensitive (+). Such kinds need the FM sketch encoding to
// run on WILDFIRE (§5.2).
func (k Kind) DuplicateSensitive() bool {
	return k == Count || k == Sum || k == Avg
}

// Exact evaluates the aggregate exactly over values (the Oracle's view).
// Count ignores the magnitudes. Avg of an empty set is 0.
func Exact(k Kind, values []int64) float64 {
	if len(values) == 0 {
		return 0
	}
	switch k {
	case Min:
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return float64(m)
	case Max:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return float64(m)
	case Count:
		return float64(len(values))
	case Sum:
		var s int64
		for _, v := range values {
			s += v
		}
		return float64(s)
	case Avg:
		var s int64
		for _, v := range values {
			s += v
		}
		return float64(s) / float64(len(values))
	default:
		panic(fmt.Sprintf("agg: unknown kind %d", int(k)))
	}
}

// Partial is a host's partial aggregate A_h (§5.1): the state initialized
// when the host becomes active, combined with neighbors' partials during
// convergecast, and evaluated at the querying host at the deadline.
type Partial interface {
	// Combine merges other into the receiver and reports whether the
	// receiver changed (WILDFIRE only re-floods on change).
	Combine(other Partial) bool
	// Clone returns an independent deep copy, safe to hand to a message.
	Clone() Partial
	// Equal reports whether two partials hold identical state.
	Equal(other Partial) bool
	// Dominates reports whether the receiver already subsumes other:
	// combining other into the receiver would change nothing. WILDFIRE
	// skips sending to neighbors known to dominate the sender's state.
	Dominates(other Partial) bool
	// Result converts the partial into the query answer.
	Result() float64
}

// Params configures sketch-backed partials.
type Params struct {
	// Vectors is the FM repetition count c.
	Vectors int
	// Bits is the FM vector width (the paper's l_M overestimate; 32 covers
	// networks up to 2^32 pseudo-elements, §5.2).
	Bits int
}

// DefaultParams matches the paper's evaluation defaults.
func DefaultParams() Params { return Params{Vectors: fm.DefaultVectors, Bits: fm.DefaultBits} }

// NewPartial initializes the partial aggregate for a host with attribute
// value v, using rng for the FM coin tosses (sketch kinds only).
func NewPartial(k Kind, v int64, p Params, rng *rand.Rand) Partial {
	switch k {
	case Min:
		return &scalarPartial{kind: Min, val: v}
	case Max:
		return &scalarPartial{kind: Max, val: v}
	case Count:
		s := fm.NewSketch(p.Vectors, p.Bits)
		s.AddDistinct(rng)
		return &countPartial{sk: s}
	case Sum:
		s := fm.NewSketch(p.Vectors, p.Bits)
		s.AddN(rng, v)
		return &sumPartial{sk: s}
	case Avg:
		sum := fm.NewSketch(p.Vectors, p.Bits)
		sum.AddN(rng, v)
		cnt := fm.NewSketch(p.Vectors, p.Bits)
		cnt.AddDistinct(rng)
		return &avgPartial{sum: sum, cnt: cnt}
	default:
		panic(fmt.Sprintf("agg: unknown kind %d", int(k)))
	}
}

// scalarPartial carries min/max state.
type scalarPartial struct {
	kind Kind
	val  int64
}

func (s *scalarPartial) Combine(other Partial) bool {
	o, ok := other.(*scalarPartial)
	if !ok || o.kind != s.kind {
		panic("agg: combining mismatched partials")
	}
	switch {
	case s.kind == Min && o.val < s.val:
		s.val = o.val
		return true
	case s.kind == Max && o.val > s.val:
		s.val = o.val
		return true
	}
	return false
}

func (s *scalarPartial) Clone() Partial { c := *s; return &c }

func (s *scalarPartial) Dominates(other Partial) bool {
	o, ok := other.(*scalarPartial)
	if !ok || o.kind != s.kind {
		return false
	}
	if s.kind == Min {
		return s.val <= o.val
	}
	return s.val >= o.val
}

func (s *scalarPartial) Equal(other Partial) bool {
	o, ok := other.(*scalarPartial)
	return ok && o.kind == s.kind && o.val == s.val
}

func (s *scalarPartial) Result() float64 { return float64(s.val) }

// countPartial carries an FM count sketch.
type countPartial struct{ sk *fm.Sketch }

func (c *countPartial) Combine(other Partial) bool {
	o, ok := other.(*countPartial)
	if !ok {
		panic("agg: combining mismatched partials")
	}
	if c.sk.Covers(o.sk) {
		return false
	}
	c.sk.Or(o.sk)
	return true
}

func (c *countPartial) Clone() Partial { return &countPartial{sk: c.sk.Clone()} }

func (c *countPartial) Dominates(other Partial) bool {
	o, ok := other.(*countPartial)
	return ok && c.sk.Covers(o.sk)
}

func (c *countPartial) Equal(other Partial) bool {
	o, ok := other.(*countPartial)
	return ok && c.sk.Equal(o.sk)
}

func (c *countPartial) Result() float64 { return c.sk.Estimate() }

// Sketch exposes the underlying sketch (for validity checking).
func (c *countPartial) Sketch() *fm.Sketch { return c.sk }

// sumPartial carries an FM sum sketch.
type sumPartial struct{ sk *fm.Sketch }

func (s *sumPartial) Combine(other Partial) bool {
	o, ok := other.(*sumPartial)
	if !ok {
		panic("agg: combining mismatched partials")
	}
	if s.sk.Covers(o.sk) {
		return false
	}
	s.sk.Or(o.sk)
	return true
}

func (s *sumPartial) Clone() Partial { return &sumPartial{sk: s.sk.Clone()} }

func (s *sumPartial) Dominates(other Partial) bool {
	o, ok := other.(*sumPartial)
	return ok && s.sk.Covers(o.sk)
}

func (s *sumPartial) Equal(other Partial) bool {
	o, ok := other.(*sumPartial)
	return ok && s.sk.Equal(o.sk)
}

func (s *sumPartial) Result() float64 { return s.sk.Estimate() }

func (s *sumPartial) Sketch() *fm.Sketch { return s.sk }

// avgPartial is a (sum, count) sketch pair; avg = sum/count (§5, Thm 5.3's
// "average" class).
type avgPartial struct {
	sum *fm.Sketch
	cnt *fm.Sketch
}

func (a *avgPartial) Combine(other Partial) bool {
	o, ok := other.(*avgPartial)
	if !ok {
		panic("agg: combining mismatched partials")
	}
	changed := false
	if !a.sum.Covers(o.sum) {
		a.sum.Or(o.sum)
		changed = true
	}
	if !a.cnt.Covers(o.cnt) {
		a.cnt.Or(o.cnt)
		changed = true
	}
	return changed
}

func (a *avgPartial) Clone() Partial {
	return &avgPartial{sum: a.sum.Clone(), cnt: a.cnt.Clone()}
}

func (a *avgPartial) Dominates(other Partial) bool {
	o, ok := other.(*avgPartial)
	return ok && a.sum.Covers(o.sum) && a.cnt.Covers(o.cnt)
}

func (a *avgPartial) Equal(other Partial) bool {
	o, ok := other.(*avgPartial)
	return ok && a.sum.Equal(o.sum) && a.cnt.Equal(o.cnt)
}

func (a *avgPartial) Result() float64 {
	c := a.cnt.Estimate()
	if c == 0 {
		return 0
	}
	return a.sum.Estimate() / c
}

// PartialFromSketches reconstructs a sketch-backed partial from raw FM
// sketches (one for count/sum, [sum, count] for avg) — the decoding half
// of the wire format. The sketches are adopted, not copied.
func PartialFromSketches(k Kind, sks []*fm.Sketch) (Partial, error) {
	switch k {
	case Count:
		if len(sks) != 1 {
			return nil, fmt.Errorf("agg: count partial needs 1 sketch, got %d", len(sks))
		}
		return &countPartial{sk: sks[0]}, nil
	case Sum:
		if len(sks) != 1 {
			return nil, fmt.Errorf("agg: sum partial needs 1 sketch, got %d", len(sks))
		}
		return &sumPartial{sk: sks[0]}, nil
	case Avg:
		if len(sks) != 2 {
			return nil, fmt.Errorf("agg: avg partial needs 2 sketches, got %d", len(sks))
		}
		return &avgPartial{sum: sks[0], cnt: sks[1]}, nil
	}
	return nil, fmt.Errorf("agg: kind %v is not sketch-backed", k)
}

// KindOf reports the aggregate kind a partial was built for. The node
// engine uses it to frame partials as wire envelopes when accounting
// per-query bytes on the wire.
func KindOf(p Partial) (Kind, bool) {
	switch v := p.(type) {
	case *scalarPartial:
		return v.kind, true
	case *countPartial:
		return Count, true
	case *sumPartial:
		return Sum, true
	case *avgPartial:
		return Avg, true
	default:
		return 0, false
	}
}

// Sketcher is implemented by sketch-backed partials; the oracle uses it
// for sketch-level validity checks.
type Sketcher interface {
	Sketch() *fm.Sketch
}

// WireSketches returns the sketches carried by p without allocating: a is
// the sole sketch for count/sum and the sum sketch for avg, b the avg
// count sketch (nil otherwise). Both nil for scalar partials. The wire
// encoder sits on the send hot path of every host goroutine, where
// Sketches' per-call slice would be the only allocation of a send.
func WireSketches(p Partial) (a, b *fm.Sketch) {
	switch v := p.(type) {
	case *countPartial:
		return v.sk, nil
	case *sumPartial:
		return v.sk, nil
	case *avgPartial:
		return v.sum, v.cnt
	}
	return nil, nil
}

// Sketches returns the FM sketches carried by p: one for count/sum, two
// (sum, count) for avg, none for scalars.
func Sketches(p Partial) []*fm.Sketch {
	switch v := p.(type) {
	case *countPartial:
		return []*fm.Sketch{v.sk}
	case *sumPartial:
		return []*fm.Sketch{v.sk}
	case *avgPartial:
		return []*fm.Sketch{v.sum, v.cnt}
	default:
		return nil
	}
}
