package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"validity/internal/fm"
)

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range []Kind{Min, Max, Count, Sum, Avg} {
		s := k.String()
		if s == "" {
			t.Fatalf("empty name for %d", int(k))
		}
		back, err := ParseKind(s)
		if err != nil || back != k {
			t.Fatalf("round trip %v failed", k)
		}
	}
	if _, err := ParseKind("median"); err == nil {
		t.Fatal("ParseKind accepted unknown aggregate")
	}
	if k, err := ParseKind("average"); err != nil || k != Avg {
		t.Fatal("ParseKind should accept 'average'")
	}
}

func TestDuplicateSensitive(t *testing.T) {
	if Min.DuplicateSensitive() || Max.DuplicateSensitive() {
		t.Fatal("min/max are duplicate-insensitive")
	}
	if !Count.DuplicateSensitive() || !Sum.DuplicateSensitive() || !Avg.DuplicateSensitive() {
		t.Fatal("count/sum/avg are duplicate-sensitive")
	}
}

func TestExact(t *testing.T) {
	vals := []int64{5, 3, 9, 3}
	cases := []struct {
		k    Kind
		want float64
	}{
		{Min, 3}, {Max, 9}, {Count, 4}, {Sum, 20}, {Avg, 5},
	}
	for _, c := range cases {
		if got := Exact(c.k, vals); got != c.want {
			t.Errorf("Exact(%v) = %v, want %v", c.k, got, c.want)
		}
	}
	for _, k := range []Kind{Min, Max, Count, Sum, Avg} {
		if Exact(k, nil) != 0 {
			t.Errorf("Exact(%v, empty) != 0", k)
		}
	}
}

func params() Params { return Params{Vectors: 8, Bits: 32} }

func TestScalarCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewPartial(Min, 10, params(), rng)
	b := NewPartial(Min, 5, params(), rng)
	if !a.Combine(b) {
		t.Fatal("min combine with smaller value should change")
	}
	if a.Result() != 5 {
		t.Fatalf("min result = %v", a.Result())
	}
	if a.Combine(b) {
		t.Fatal("second combine should be a no-op")
	}
	c := NewPartial(Max, 10, params(), rng)
	d := NewPartial(Max, 20, params(), rng)
	if !c.Combine(d) || c.Result() != 20 {
		t.Fatalf("max combine: %v", c.Result())
	}
	if c.Combine(NewPartial(Max, 3, params(), rng)) {
		t.Fatal("max combine with smaller value should not change")
	}
}

func TestMismatchedCombinePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := [][2]Partial{
		{NewPartial(Min, 1, params(), rng), NewPartial(Max, 1, params(), rng)},
		{NewPartial(Count, 1, params(), rng), NewPartial(Sum, 1, params(), rng)},
		{NewPartial(Sum, 1, params(), rng), NewPartial(Avg, 1, params(), rng)},
		{NewPartial(Avg, 1, params(), rng), NewPartial(Min, 1, params(), rng)},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			c[0].Combine(c[1])
		}()
	}
}

func TestCountPartialEstimatesNetworkSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 4096
	acc := NewPartial(Count, 0, Params{Vectors: 16, Bits: 32}, rng)
	for i := 1; i < n; i++ {
		acc.Combine(NewPartial(Count, 0, Params{Vectors: 16, Bits: 32}, rng))
	}
	est := acc.Result()
	if est < n/8 || est > n*8 {
		t.Fatalf("count estimate %.0f far from %d", est, n)
	}
}

func TestSumPartialEstimatesTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, v = 256, 50
	acc := NewPartial(Sum, v, Params{Vectors: 16, Bits: 32}, rng)
	for i := 1; i < n; i++ {
		acc.Combine(NewPartial(Sum, v, Params{Vectors: 16, Bits: 32}, rng))
	}
	want := float64(n * v)
	est := acc.Result()
	if est < want/8 || est > want*8 {
		t.Fatalf("sum estimate %.0f far from %.0f", est, want)
	}
}

func TestAvgPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, v = 512, 40
	p := Params{Vectors: 16, Bits: 32}
	acc := NewPartial(Avg, v, p, rng)
	for i := 1; i < n; i++ {
		acc.Combine(NewPartial(Avg, v, p, rng))
	}
	est := acc.Result()
	// All hosts hold v, so the true average is v; FM error enters as a
	// ratio of two estimates, typically well inside a factor of 4.
	if est < v/4 || est > v*4 {
		t.Fatalf("avg estimate %.1f far from %d", est, v)
	}
}

func TestAvgEmptyResultZero(t *testing.T) {
	// An avg partial always contains at least its own host in real runs;
	// check the division guard directly with empty sketches.
	a := &avgPartial{sum: fm.NewSketch(8, 32), cnt: fm.NewSketch(8, 32)}
	if a.Result() != 0 {
		t.Fatal("avg with empty count should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, k := range []Kind{Min, Max, Count, Sum, Avg} {
		a := NewPartial(k, 10, params(), rng)
		b := a.Clone()
		if !a.Equal(b) {
			t.Fatalf("%v: clone not equal", k)
		}
		b.Combine(NewPartial(k, 99, params(), rng))
		// After mutation the clone may differ; the original must be intact:
		c := a.Clone()
		if !a.Equal(c) {
			t.Fatalf("%v: original changed by clone mutation", k)
		}
	}
}

func TestEqualAcrossTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewPartial(Min, 1, params(), rng)
	b := NewPartial(Count, 1, params(), rng)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("partials of different kinds must not be equal")
	}
}

// Property: scalar combine implements the aggregate algebra — combining a
// sequence of min partials yields the true minimum.
func TestQuickScalarCombineAlgebra(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(1))
		minP := NewPartial(Min, int64(vals[0]), params(), rng)
		maxP := NewPartial(Max, int64(vals[0]), params(), rng)
		for _, v := range vals[1:] {
			minP.Combine(NewPartial(Min, int64(v), params(), rng))
			maxP.Combine(NewPartial(Max, int64(v), params(), rng))
		}
		ints := make([]int64, len(vals))
		for i, v := range vals {
			ints[i] = int64(v)
		}
		return minP.Result() == Exact(Min, ints) && maxP.Result() == Exact(Max, ints)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sketch combine is order-independent — combining partials in
// any order yields the same final sketch.
func TestQuickSketchCombineOrderIndependent(t *testing.T) {
	f := func(seed int64, perm []bool) bool {
		mk := func() []Partial {
			rng := rand.New(rand.NewSource(seed))
			ps := make([]Partial, 8)
			for i := range ps {
				ps[i] = NewPartial(Count, 1, params(), rng)
			}
			return ps
		}
		ps1, ps2 := mk(), mk()
		acc1 := ps1[0]
		for _, p := range ps1[1:] {
			acc1.Combine(p)
		}
		// Reverse order.
		acc2 := ps2[len(ps2)-1]
		for i := len(ps2) - 2; i >= 0; i-- {
			acc2.Combine(ps2[i])
		}
		return acc1.Equal(acc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSketchesAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if Sketches(NewPartial(Min, 1, params(), rng)) != nil {
		t.Fatal("scalar partial should expose no sketches")
	}
	if len(Sketches(NewPartial(Count, 1, params(), rng))) != 1 {
		t.Fatal("count partial should expose one sketch")
	}
	if len(Sketches(NewPartial(Sum, 1, params(), rng))) != 1 {
		t.Fatal("sum partial should expose one sketch")
	}
	if len(Sketches(NewPartial(Avg, 1, params(), rng))) != 2 {
		t.Fatal("avg partial should expose two sketches")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Vectors != 8 || p.Bits != 32 {
		t.Fatalf("defaults = %+v", p)
	}
}

func TestExactAvgFractional(t *testing.T) {
	got := Exact(Avg, []int64{1, 2})
	if math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("avg = %v, want 1.5", got)
	}
}

func TestDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	// Scalars: min dominates smaller-or-equal, max larger-or-equal.
	min5 := NewPartial(Min, 5, params(), rng)
	min9 := NewPartial(Min, 9, params(), rng)
	if !min5.Dominates(min9) || min9.Dominates(min5) {
		t.Fatal("min domination wrong")
	}
	if !min5.Dominates(min5.Clone()) {
		t.Fatal("domination not reflexive")
	}
	max9 := NewPartial(Max, 9, params(), rng)
	max5 := NewPartial(Max, 5, params(), rng)
	if !max9.Dominates(max5) || max5.Dominates(max9) {
		t.Fatal("max domination wrong")
	}
	if min5.Dominates(max5) || max5.Dominates(min5) {
		t.Fatal("cross-kind domination must be false")
	}
	// Sketches: after combining, the accumulator dominates its inputs.
	for _, k := range []Kind{Count, Sum, Avg} {
		a := NewPartial(k, 3, params(), rng)
		b := NewPartial(k, 7, params(), rng)
		acc := a.Clone()
		acc.Combine(b)
		if !acc.Dominates(a) || !acc.Dominates(b) {
			t.Fatalf("%v: combined partial must dominate inputs", k)
		}
		if b.Dominates(acc) && !b.Equal(acc) {
			t.Fatalf("%v: input dominates strictly larger accumulator", k)
		}
		if a.Dominates(NewPartial(Min, 1, params(), rng)) {
			t.Fatalf("%v: cross-kind domination must be false", k)
		}
	}
}

func TestPartialFromSketchesErrors(t *testing.T) {
	if _, err := PartialFromSketches(Min, nil); err == nil {
		t.Fatal("scalar kind accepted")
	}
	if _, err := PartialFromSketches(Count, nil); err == nil {
		t.Fatal("count with 0 sketches accepted")
	}
	if _, err := PartialFromSketches(Sum, []*fm.Sketch{fm.NewSketch(4, 32), fm.NewSketch(4, 32)}); err == nil {
		t.Fatal("sum with 2 sketches accepted")
	}
	if _, err := PartialFromSketches(Avg, []*fm.Sketch{fm.NewSketch(4, 32)}); err == nil {
		t.Fatal("avg with 1 sketch accepted")
	}
	p, err := PartialFromSketches(Avg, []*fm.Sketch{fm.NewSketch(4, 32), fm.NewSketch(4, 32)})
	if err != nil || p == nil {
		t.Fatal("valid avg reconstruction failed")
	}
}
