package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"validity/internal/agg"
)

func params() agg.Params { return agg.Params{Vectors: 8, Bits: 32} }

func TestScalarRoundTrip(t *testing.T) {
	for _, k := range []agg.Kind{agg.Min, agg.Max} {
		for _, v := range []int64{0, 1, -5, 1 << 40} {
			p := agg.NewPartial(k, v, params(), nil)
			buf, err := AppendPartial(nil, k, p)
			if err != nil {
				t.Fatal(err)
			}
			got, gotK, n, err := DecodePartial(buf)
			if err != nil {
				t.Fatal(err)
			}
			if gotK != k || n != len(buf) {
				t.Fatalf("kind=%v n=%d, want %v/%d", gotK, n, k, len(buf))
			}
			if !got.Equal(p) {
				t.Fatalf("%v(%d): round trip mismatch", k, v)
			}
		}
	}
}

func TestSketchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []agg.Kind{agg.Count, agg.Sum, agg.Avg} {
		p := agg.NewPartial(k, 123, params(), rng)
		// Fold in more state so the sketch is non-trivial.
		for i := 0; i < 20; i++ {
			p.Combine(agg.NewPartial(k, int64(i*7+1), params(), rng))
		}
		buf, err := AppendPartial(nil, k, p)
		if err != nil {
			t.Fatal(err)
		}
		got, gotK, n, err := DecodePartial(buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotK != k || n != len(buf) {
			t.Fatalf("kind=%v n=%d len=%d", gotK, n, len(buf))
		}
		if !got.Equal(p) {
			t.Fatalf("%v: round trip mismatch", k)
		}
		if got.Result() != p.Result() {
			t.Fatalf("%v: results differ after round trip", k)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := agg.NewPartial(agg.Count, 1, params(), rng)
	e := Envelope{Kind: MsgBroadcast, Hop: 7, Partial: p, AggKind: agg.Count}
	buf, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != MsgBroadcast || got.Hop != 7 || got.AggKind != agg.Count {
		t.Fatalf("envelope fields: %+v", got)
	}
	if !got.Partial.Equal(p) {
		t.Fatal("partial mismatch")
	}
}

func TestEnvelopeWithoutPartial(t *testing.T) {
	e := Envelope{Kind: MsgReport, Hop: 0}
	buf, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial != nil || got.Kind != MsgReport {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := agg.NewPartial(agg.Sum, 5, params(), rng)
	good, err := Encode(Envelope{Kind: MsgConverge, Partial: p, AggKind: agg.Sum})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:4],
		"bad magic":   append([]byte{0, 0}, good[2:]...),
		"bad version": append(append([]byte{}, good[:2]...), append([]byte{99}, good[3:]...)...),
		"bad kind":    append(append([]byte{}, good[:3]...), append([]byte{77}, good[4:]...)...),
		"truncated":   good[:len(good)-5],
		"empty body":  good[:7],
		"bad agg tag": func() []byte { b := append([]byte{}, good...); b[7] = 99; return b }(),
	}
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("%s: decode accepted corrupt frame", name)
		}
	}
}

func TestDecodePartialErrors(t *testing.T) {
	if _, _, _, err := DecodePartial(nil); err == nil {
		t.Fatal("empty partial accepted")
	}
	if _, _, _, err := DecodePartial([]byte{1, 0}); err == nil {
		t.Fatal("truncated scalar accepted")
	}
	if _, _, _, err := DecodePartial([]byte{3, 8}); err == nil {
		t.Fatal("truncated sketch header accepted")
	}
	if _, _, _, err := DecodePartial([]byte{3, 0, 32}); err == nil {
		t.Fatal("zero-vector sketch accepted")
	}
	if _, _, _, err := DecodePartial([]byte{3, 1, 99}); err == nil {
		t.Fatal("oversized bits accepted")
	}
	if _, _, _, err := DecodePartial([]byte{3, 4, 32, 0}); err == nil {
		t.Fatal("truncated sketch body accepted")
	}
}

// Combining after a round trip behaves identically to combining the
// original — the wire format is lossless for protocol purposes.
func TestCombineAfterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := agg.NewPartial(agg.Count, 1, params(), rng)
	b := agg.NewPartial(agg.Count, 1, params(), rng)
	buf, err := AppendPartial(nil, agg.Count, a)
	if err != nil {
		t.Fatal(err)
	}
	decoded, _, _, err := DecodePartial(buf)
	if err != nil {
		t.Fatal(err)
	}
	direct := b.Clone()
	direct.Combine(a)
	viaWire := b.Clone()
	viaWire.Combine(decoded)
	if !direct.Equal(viaWire) {
		t.Fatal("combine result differs after wire round trip")
	}
}

// Property: encoding is deterministic and parse-back stable for random
// sketch contents.
func TestQuickEnvelopeRoundTrip(t *testing.T) {
	f := func(seed int64, hop uint16, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := agg.NewPartial(agg.Avg, int64(n)+1, params(), rng)
		for i := 0; i < int(n%16); i++ {
			p.Combine(agg.NewPartial(agg.Avg, int64(i+1), params(), rng))
		}
		e := Envelope{Kind: MsgConverge, Hop: hop, Partial: p, AggKind: agg.Avg}
		buf1, err := Encode(e)
		if err != nil {
			return false
		}
		buf2, _ := Encode(e)
		if string(buf1) != string(buf2) {
			return false
		}
		got, err := Decode(buf1)
		if err != nil {
			return false
		}
		return got.Hop == hop && got.Partial.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The paper claims small fixed-size messages (§6.3): a count partial with
// the default c=8, 32-bit vectors must encode in well under 100 bytes.
func TestMessageSizeSmallAndFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sizes := make(map[int]bool)
	for i := 0; i < 10; i++ {
		p := agg.NewPartial(agg.Count, int64(i), params(), rng)
		for j := 0; j < i*10; j++ {
			p.Combine(agg.NewPartial(agg.Count, 1, params(), rng))
		}
		n, err := Size(Envelope{Kind: MsgConverge, Partial: p, AggKind: agg.Count})
		if err != nil {
			t.Fatal(err)
		}
		sizes[n] = true
		if n > 100 {
			t.Fatalf("count frame %d bytes; paper expects small fixed-size messages", n)
		}
	}
	if len(sizes) != 1 {
		t.Fatalf("count frames vary in size: %v (must be fixed-size)", sizes)
	}
}

func TestMsgKindString(t *testing.T) {
	for _, k := range []MsgKind{MsgBroadcast, MsgConverge, MsgReport} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if MsgKind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestSizeOfMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	envs := []Envelope{
		{Kind: MsgBroadcast, Hop: 3},
		{Kind: MsgReport},
	}
	for _, k := range []agg.Kind{agg.Min, agg.Max, agg.Count, agg.Sum, agg.Avg} {
		envs = append(envs, Envelope{
			Kind:    MsgConverge,
			Partial: agg.NewPartial(k, 42, params(), rng),
			AggKind: k,
		})
	}
	for _, e := range envs {
		buf, err := Encode(e)
		if err != nil {
			t.Fatal(err)
		}
		n, err := SizeOf(e)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Fatalf("SizeOf(%v/%v) = %d, Encode produced %d bytes", e.Kind, e.AggKind, n, len(buf))
		}
	}
}

func TestSizeOfRejectsUnencodable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	big := agg.NewPartial(agg.Count, 1, agg.Params{Vectors: 300, Bits: 32}, rng)
	e := Envelope{Kind: MsgConverge, Partial: big, AggKind: agg.Count}
	if _, err := Encode(e); err == nil {
		t.Fatal("Encode accepted 300 vectors")
	}
	if _, err := SizeOf(e); err == nil {
		t.Fatal("SizeOf reported a size for an envelope Encode rejects")
	}
}
