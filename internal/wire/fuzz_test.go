package wire

import (
	"math/rand"
	"testing"

	"validity/internal/agg"
)

// Seed corpus for the envelope decoders: valid encodings of every message
// kind with and without partials, plus every truncation of one of them —
// the hostile inputs a broken peer is most likely to produce.
func envelopeSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	var seeds [][]byte
	add := func(e Envelope) {
		buf, err := Encode(e)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, buf)
	}
	add(Envelope{Kind: MsgBroadcast, Hop: 3})
	add(Envelope{Kind: MsgConverge})
	for _, k := range []agg.Kind{agg.Min, agg.Max, agg.Count, agg.Sum, agg.Avg} {
		add(Envelope{
			Kind:    MsgConverge,
			Partial: agg.NewPartial(k, 42, params(), rng),
			AggKind: k,
		})
	}
	full := seeds[len(seeds)-1]
	for i := range full {
		seeds = append(seeds, full[:i])
	}
	return seeds
}

// FuzzDecode feeds arbitrary bytes to the envelope decoder. Hostile input
// must come back as an error — never a panic, and never an allocation
// sized from unvalidated lengths.
func FuzzDecode(f *testing.F) {
	for _, s := range envelopeSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data)
		if err == nil {
			// Anything that decodes must re-encode: the codec may not
			// accept envelopes it cannot itself produce.
			if _, err := Encode(e); err != nil {
				t.Fatalf("decoded envelope does not re-encode: %v", err)
			}
		}
	})
}

// FuzzDecodePartial covers the partial-only decoder used by snapshot
// restore, where the payload arrives without an envelope header.
func FuzzDecodePartial(f *testing.F) {
	rng := rand.New(rand.NewSource(8))
	for _, k := range []agg.Kind{agg.Min, agg.Count, agg.Avg} {
		buf, err := AppendPartial(nil, k, agg.NewPartial(k, 9, params(), rng))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)/2])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _, _ = DecodePartial(data)
	})
}
