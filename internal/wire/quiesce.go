package wire

import (
	"encoding/binary"
	"fmt"
)

// QuiesceTag is the reserved control tag for cross-process quiescence
// announces. It sits at the top of the protocol tag space, just below
// TagReservedBase, so it can never collide with an aggregation payload:
// protocol message tags grow upward from 1, control tags grow downward
// from 239.
const QuiesceTag uint8 = 239

// Quiesce is the per-query quiescence announce a worker process sends to
// a query's issuing process. The frame header carries the routing facts
// (QueryID in Frame.Query, announcing process's representative host in
// Frame.From); the body carries the claim itself:
//
//   - Epoch: bumped by the announcer every time local activity resumes
//     after a quiet claim, so any later announce supersedes an earlier
//     one. The issuer discards reports whose epoch is below the highest
//     it has seen from that process.
//   - Activity: the announcer's monotone per-query activity counter
//     (sends + deliveries + drops) at announce time. Diagnostic — the
//     issuer keys only on (Epoch, Quiet) — but it makes traces and a
//     wire capture self-explaining.
//   - Quiet: true for "this process has been silent on this query for at
//     least one broadcast sweep", false for a busy re-announce that
//     withdraws a previous quiet claim.
//
// A Quiesce frame is control plane, not protocol traffic: it is never
// counted in a query's §6.3 message/byte cost and never touches the
// activity counter it reports on.
type Quiesce struct {
	Epoch    uint32
	Activity int64
	Quiet    bool
}

// quiesceBodySize is the fixed body: epoch u32 | activity i64 | quiet u8.
const quiesceBodySize = 13

func init() {
	RegisterTagger(func(payload any) (uint8, bool) {
		if _, ok := payload.(Quiesce); ok {
			return QuiesceTag, true
		}
		return 0, false
	})
	RegisterPayload(QuiesceTag, PayloadCodec{
		Name: "quiesce",
		Append: func(buf []byte, payload any) ([]byte, error) {
			q := payload.(Quiesce)
			buf = binary.LittleEndian.AppendUint32(buf, q.Epoch)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(q.Activity))
			flag := byte(0)
			if q.Quiet {
				flag = 1
			}
			return append(buf, flag), nil
		},
		Size: func(payload any) (int, error) {
			return quiesceBodySize, nil
		},
		Decode: func(body []byte) (any, error) {
			if len(body) != quiesceBodySize {
				return nil, fmt.Errorf("quiesce body is %d bytes, want %d", len(body), quiesceBodySize)
			}
			if body[12] > 1 {
				return nil, fmt.Errorf("quiesce quiet flag %d is not a bool", body[12])
			}
			return Quiesce{
				Epoch:    binary.LittleEndian.Uint32(body[0:4]),
				Activity: int64(binary.LittleEndian.Uint64(body[4:12])),
				Quiet:    body[12] == 1,
			}, nil
		},
	})
}
