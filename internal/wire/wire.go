// Package wire defines the binary encoding for everything the protocols
// put on the network: partial aggregates (scalars and FM sketches), the
// protocol message envelopes, and — since wire version 2 — the full
// transport frame the TCP transport ships. The simulator passes Go values
// directly, but a real deployment of WILDFIRE ships bytes; this package is
// the boundary where the paper's "small fixed-size messages" claim (§4.4,
// §6.3) becomes checkable — SizeOf/FrameSize report the exact on-wire cost
// of every message, and the encoding round-trips through encoding/binary
// with no reflection.
//
// Frame layout, version 2 (the unit one conn.Write carries; length prefix
// big-endian, everything after it little-endian unless noted):
//
//	offset  size  field
//	0       4     length   u32 BE — bytes that follow (header + payload)
//	4       2     magic    u16    — 0xDA7A
//	6       1     version  u8     — Version (2)
//	7       1     tag      u8     — payload tag (RegisterPayload)
//	8       4     from     u32    — sending host id
//	12      4     to       u32    — destination host id
//	16      8     query    u64    — QueryID, two's complement
//	24      4     chain    u32    — causal chain, two's complement
//	28      ...   payload body (tag's codec; exact length enforced)
//
// Payload tags 1–239 belong to protocol messages (internal/protocol
// registers its codecs in package init); 240–255 are reserved for
// out-of-tree payloads such as test harness messages. Explicit tags
// replace gob interface registration: decode is a table lookup, not a
// reflection walk, and encode appends into a caller-owned buffer so a
// steady-state send allocates nothing.
//
// Control frames share the same framing. The one control tag so far is
// the quiescence announce (QuiesceTag, 239 — control tags grow downward
// from the top of the protocol space), which workers send to a query's
// issuing process when the query's local activity counter has been
// silent past one broadcast sweep:
//
//	quiesce body: epoch u32 | activity i64 | quiet u8 (0|1)
//
// QueryID rides the frame header's query field and the announcing
// process is identified by the header's from host. Epochs make stale
// claims supersedable: late local activity bumps the epoch and triggers
// a busy re-announce, so the issuer's early-read path only trusts the
// highest epoch seen per process. See internal/node's quiesce tracker.
//
// Envelope/partial layout (version-2 bodies, unchanged from version 1):
//
//	envelope: magic u16 | version u8 | kind u8 | hop u16 | has u8 | partial?
//	scalar partial:  aggKind u8 | value i64
//	sketch partial:  aggKind u8 | vectors u8 | bits u8 | vectors × u64
//	avg partial:     aggKind u8 | vectors u8 | bits u8 | 2 × vectors × u64
package wire

import (
	"encoding/binary"
	"fmt"

	"validity/internal/agg"
	"validity/internal/fm"
)

// Magic identifies a validity-protocol frame.
const Magic uint16 = 0xDA7A

// Version is the current wire version. Version 2 added the transport
// frame (explicit payload tags, host/query/chain header) on top of the
// version-1 envelope and partial bodies, which are unchanged.
const Version uint8 = 2

// MsgKind tags the envelope body.
type MsgKind uint8

// Message kinds carried on the wire.
const (
	MsgBroadcast MsgKind = iota + 1
	MsgConverge
	MsgReport
)

func (k MsgKind) String() string {
	switch k {
	case MsgBroadcast:
		return "broadcast"
	case MsgConverge:
		return "converge"
	case MsgReport:
		return "report"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// partial wire tags mirror agg.Kind but are pinned explicitly so that the
// wire format never shifts if the enum is reordered.
const (
	tagMin   uint8 = 1
	tagMax   uint8 = 2
	tagCount uint8 = 3
	tagSum   uint8 = 4
	tagAvg   uint8 = 5
)

func kindTag(k agg.Kind) (uint8, error) {
	switch k {
	case agg.Min:
		return tagMin, nil
	case agg.Max:
		return tagMax, nil
	case agg.Count:
		return tagCount, nil
	case agg.Sum:
		return tagSum, nil
	case agg.Avg:
		return tagAvg, nil
	}
	return 0, fmt.Errorf("wire: unknown aggregate kind %d", int(k))
}

func tagKind(t uint8) (agg.Kind, error) {
	switch t {
	case tagMin:
		return agg.Min, nil
	case tagMax:
		return agg.Max, nil
	case tagCount:
		return agg.Count, nil
	case tagSum:
		return agg.Sum, nil
	case tagAvg:
		return agg.Avg, nil
	}
	return 0, fmt.Errorf("wire: unknown aggregate tag %d", t)
}

// AppendPartial encodes p (a partial aggregate of kind k) onto buf and
// returns the extended slice.
func AppendPartial(buf []byte, k agg.Kind, p agg.Partial) ([]byte, error) {
	tag, err := kindTag(k)
	if err != nil {
		return nil, err
	}
	buf = append(buf, tag)
	switch k {
	case agg.Min, agg.Max:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(p.Result())))
		return buf, nil
	case agg.Count, agg.Sum, agg.Avg:
		a, b, err := wireSketches(k, p)
		if err != nil {
			return nil, err
		}
		buf = append(buf, uint8(a.Vectors()), uint8(a.Bits()))
		buf = a.AppendWords(buf)
		if b != nil {
			buf = b.AppendWords(buf)
		}
		return buf, nil
	}
	return nil, fmt.Errorf("wire: unencodable kind %v", k)
}

// PartialSize is AppendPartial's output length, computed arithmetically
// without encoding — the payload codecs use it to size frames on the send
// hot path.
func PartialSize(k agg.Kind, p agg.Partial) (int, error) { return partialSize(k, p) }

// wireSketches fetches and validates the sketches of a sketch partial
// without allocating: the shared front half of AppendPartial and
// partialSize, so encoding and arithmetic sizing can never disagree on
// what is representable.
func wireSketches(k agg.Kind, p agg.Partial) (a, b *fm.Sketch, err error) {
	a, b = agg.WireSketches(p)
	if a == nil {
		return nil, nil, fmt.Errorf("wire: %v partial carries no sketches", k)
	}
	if a.Vectors() > 255 || a.Bits() > 64 {
		return nil, nil, fmt.Errorf("wire: sketch dimensions %d/%d exceed wire limits",
			a.Vectors(), a.Bits())
	}
	if b != nil && (b.Vectors() != a.Vectors() || b.Bits() != a.Bits()) {
		return nil, nil, fmt.Errorf("wire: mismatched sketch dimensions within partial")
	}
	return a, b, nil
}

// partialSize is AppendPartial's output length, computed arithmetically.
func partialSize(k agg.Kind, p agg.Partial) (int, error) {
	switch k {
	case agg.Min, agg.Max:
		return 1 + 8, nil // tag + i64 value
	case agg.Count, agg.Sum, agg.Avg:
		a, b, err := wireSketches(k, p)
		if err != nil {
			return 0, err
		}
		nSketches := 1
		if b != nil {
			nSketches = 2
		}
		// tag + vectors + bits header, then the sketch words.
		return 3 + 8*nSketches*a.Vectors(), nil
	}
	return 0, fmt.Errorf("wire: unencodable kind %v", k)
}

// DecodePartial decodes a partial from buf, returning the partial, its
// kind and the number of bytes consumed. Scalar partials are
// reconstructed directly; sketch partials are rebuilt from their words.
func DecodePartial(buf []byte) (agg.Partial, agg.Kind, int, error) {
	if len(buf) < 1 {
		return nil, 0, 0, fmt.Errorf("wire: empty partial")
	}
	k, err := tagKind(buf[0])
	if err != nil {
		return nil, 0, 0, err
	}
	switch k {
	case agg.Min, agg.Max:
		if len(buf) < 9 {
			return nil, 0, 0, fmt.Errorf("wire: truncated scalar partial")
		}
		v := int64(binary.LittleEndian.Uint64(buf[1:9]))
		// Reconstruct through the public constructor: a scalar partial's
		// state is exactly its value.
		p := agg.NewPartial(k, v, agg.Params{Vectors: 1, Bits: 1}, nil)
		return p, k, 9, nil
	case agg.Count, agg.Sum, agg.Avg:
		if len(buf) < 3 {
			return nil, 0, 0, fmt.Errorf("wire: truncated sketch header")
		}
		vectors, bits := int(buf[1]), int(buf[2])
		if vectors < 1 || bits < 1 || bits > 64 {
			return nil, 0, 0, fmt.Errorf("wire: invalid sketch dimensions %d/%d", vectors, bits)
		}
		nSketches := 1
		if k == agg.Avg {
			nSketches = 2
		}
		need := 3 + 8*vectors*nSketches
		if len(buf) < need {
			return nil, 0, 0, fmt.Errorf("wire: truncated sketch body (%d < %d)", len(buf), need)
		}
		sks := make([]*fm.Sketch, nSketches)
		off := 3
		for i := range sks {
			words := make([]uint64, vectors)
			for w := range words {
				words[w] = binary.LittleEndian.Uint64(buf[off : off+8])
				off += 8
			}
			sks[i] = fm.FromWords(words, bits)
		}
		p, err := agg.PartialFromSketches(k, sks)
		if err != nil {
			return nil, 0, 0, err
		}
		return p, k, need, nil
	}
	return nil, 0, 0, fmt.Errorf("wire: unreachable kind %v", k)
}

// Envelope is a decoded protocol frame.
type Envelope struct {
	Kind MsgKind
	// Hop is meaningful for broadcast frames (sender distance + 1).
	Hop uint16
	// Partial is the piggybacked partial aggregate, nil for frames
	// without one.
	Partial agg.Partial
	// AggKind is the aggregate kind of Partial when present.
	AggKind agg.Kind
}

// Encode serializes an envelope.
func Encode(e Envelope) ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = binary.LittleEndian.AppendUint16(buf, Magic)
	buf = append(buf, Version, uint8(e.Kind))
	buf = binary.LittleEndian.AppendUint16(buf, e.Hop)
	if e.Partial == nil {
		buf = append(buf, 0)
		return buf, nil
	}
	buf = append(buf, 1)
	return AppendPartial(buf, e.AggKind, e.Partial)
}

// Decode parses an envelope produced by Encode.
func Decode(buf []byte) (Envelope, error) {
	var e Envelope
	if len(buf) < 7 {
		return e, fmt.Errorf("wire: frame too short (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint16(buf[0:2]) != Magic {
		return e, fmt.Errorf("wire: bad magic %#x", binary.LittleEndian.Uint16(buf[0:2]))
	}
	if buf[2] != Version {
		return e, fmt.Errorf("wire: unsupported version %d", buf[2])
	}
	e.Kind = MsgKind(buf[3])
	switch e.Kind {
	case MsgBroadcast, MsgConverge, MsgReport:
	default:
		return e, fmt.Errorf("wire: unknown message kind %d", buf[3])
	}
	e.Hop = binary.LittleEndian.Uint16(buf[4:6])
	hasPartial := buf[6]
	if hasPartial == 0 {
		return e, nil
	}
	p, k, _, err := DecodePartial(buf[7:])
	if err != nil {
		return e, err
	}
	e.Partial = p
	e.AggKind = k
	return e, nil
}

// Size returns the encoded size of an envelope (convenience for cost
// accounting); it delegates to SizeOf's arithmetic path rather than
// paying a throwaway Encode.
func Size(e Envelope) (int, error) { return SizeOf(e) }

// envelopeHeaderSize is Encode's fixed prefix: magic (2), version (1),
// kind (1), hop (2), has-partial flag (1).
const envelopeHeaderSize = 7

// SizeOf computes Encode's output length arithmetically, without
// encoding. The node engine charges every sent payload its on-wire size,
// so this sits on the runtime's hot path where Size's throwaway encode
// would eat into the per-hop budget δ.
func SizeOf(e Envelope) (int, error) {
	if e.Partial == nil {
		return envelopeHeaderSize, nil
	}
	// partialSize mirrors AppendPartial's validation: a size must only be
	// reported for envelopes the encoding can actually represent.
	n, err := partialSize(e.AggKind, e.Partial)
	if err != nil {
		return 0, err
	}
	return envelopeHeaderSize + n, nil
}
