package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"validity/internal/agg"
	"validity/internal/graph"
)

// The wire package cannot import internal/protocol (protocol imports
// wire), so the frame tests register their own codec in the reserved test
// tag space — exercising exactly the registration path out-of-tree
// payloads use.
const frameTestTag = TagReservedBase + 15 // 255

func init() {
	RegisterTagger(func(payload any) (uint8, bool) {
		if _, ok := payload.(string); ok {
			return frameTestTag, true
		}
		return 0, false
	})
	RegisterPayload(frameTestTag, PayloadCodec{
		Name: "frame-test-string",
		Append: func(buf []byte, payload any) ([]byte, error) {
			return append(buf, payload.(string)...), nil
		},
		Size:   func(payload any) (int, error) { return len(payload.(string)), nil },
		Decode: func(body []byte) (any, error) { return string(body), nil },
	})
}

// TestFrameGoldenBytes pins the version-2 layout byte for byte: the frame
// format is an interchange contract, and an accidental field reorder must
// fail loudly, not just round-trip differently.
func TestFrameGoldenBytes(t *testing.T) {
	buf, err := AppendFrame(nil, Frame{
		From:    1,
		To:      2,
		Query:   0x0102030405060708,
		Chain:   9,
		Payload: "hi",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0, 0, 0, 26, // length prefix, BE: 24-byte header + 2-byte payload
		0x7A, 0xDA, // magic, LE
		2,            // version
		frameTestTag, // payload tag
		1, 0, 0, 0,   // from, LE
		2, 0, 0, 0, // to, LE
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // query, LE
		9, 0, 0, 0, // chain, LE
		'h', 'i', // payload body
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("frame bytes\n got %v\nwant %v", buf, want)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{From: 0, To: 1, Query: 1, Chain: 1, Payload: "x"},
		{From: math.MaxInt32, To: 0, Query: -4, Chain: -7, Payload: ""},
		{From: 3, To: 5, Query: math.MinInt64, Chain: math.MaxInt32, Payload: "payload"},
	}
	for _, f := range frames {
		buf, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("%+v: %v", f, err)
		}
		got, err := DecodeFrameBody(buf[4:])
		if err != nil {
			t.Fatalf("%+v: %v", f, err)
		}
		if got != f {
			t.Fatalf("round trip: got %+v, want %+v", got, f)
		}
	}
}

// Frames append cleanly onto a buffer already holding earlier frames —
// the property the transport's batch writer relies on.
func TestFrameAppendsOntoBatch(t *testing.T) {
	buf, err := AppendFrame(nil, Frame{From: 1, To: 2, Query: 1, Payload: "first"})
	if err != nil {
		t.Fatal(err)
	}
	split := len(buf)
	buf, err = AppendFrame(buf, Frame{From: 2, To: 1, Query: 2, Payload: "second"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := DecodeFrameBody(buf[4:split])
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeFrameBody(buf[split+4:])
	if err != nil {
		t.Fatal(err)
	}
	if a.Payload != "first" || b.Payload != "second" {
		t.Fatalf("batch decode: %v, %v", a.Payload, b.Payload)
	}
}

func TestFrameSizeMatchesAppend(t *testing.T) {
	f := func(from, to uint16, query int64, chain int32, payload string) bool {
		fr := Frame{
			From: graph.HostID(from), To: graph.HostID(to),
			Query: query, Chain: int(chain), Payload: payload,
		}
		buf, err := AppendFrame(nil, fr)
		if err != nil {
			return false
		}
		n, err := FrameSize(payload)
		return err == nil && n == len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendFrameErrors(t *testing.T) {
	if _, err := AppendFrame(nil, Frame{Payload: 3.14}); err == nil {
		t.Fatal("unregistered payload type accepted")
	}
	if _, err := AppendFrame(nil, Frame{From: -1, Payload: "x"}); err == nil {
		t.Fatal("negative host id accepted")
	}
	if _, err := AppendFrame(nil, Frame{Chain: math.MaxInt32 + 1, Payload: "x"}); err == nil {
		t.Fatal("chain beyond int32 accepted")
	}
	if _, err := FrameSize(3.14); err == nil {
		t.Fatal("FrameSize sized an unregistered payload")
	}
}

func TestDecodeFrameBodyErrors(t *testing.T) {
	good, err := AppendFrame(nil, Frame{From: 1, To: 2, Query: 3, Chain: 4, Payload: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	body := good[4:]
	corrupt := func(off int, b byte) []byte {
		c := append([]byte(nil), body...)
		c[off] = b
		return c
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       body[:FrameHeaderSize-1],
		"bad magic":   corrupt(0, 0),
		"bad version": corrupt(2, 99),
		"unknown tag": corrupt(3, 200),
		"zero tag":    corrupt(3, 0),
		"oversize from": func() []byte {
			c := append([]byte(nil), body...)
			c[7] = 0xFF // from's top byte: > MaxInt32
			return c
		}(),
	}
	for name, b := range cases {
		if _, err := DecodeFrameBody(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Property (satellite): Size and SizeOf agree with Encode's actual output
// for generated envelopes, with and without partials.
func TestQuickSizeMatchesEncode(t *testing.T) {
	kinds := []agg.Kind{agg.Min, agg.Max, agg.Count, agg.Sum, agg.Avg}
	f := func(seed int64, hop uint16, pick uint8, bare bool) bool {
		e := Envelope{Kind: MsgBroadcast, Hop: hop}
		if !bare {
			k := kinds[int(pick)%len(kinds)]
			rng := rand.New(rand.NewSource(seed))
			e.Partial = agg.NewPartial(k, int64(pick)+1, params(), rng)
			e.AggKind = k
		}
		buf, err := Encode(e)
		if err != nil {
			return false
		}
		n1, err1 := SizeOf(e)
		n2, err2 := Size(e)
		return err1 == nil && err2 == nil && n1 == len(buf) && n2 == len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
