package wire

import (
	"testing"
)

// TestQuiesceRoundTrip pins the control-frame codec: a quiescence
// announce survives AppendFrame/DecodeFrameBody bit-for-bit, including
// the header routing fields the tracker keys on (From = announcing
// process's host, Query = the query the claim is about).
func TestQuiesceRoundTrip(t *testing.T) {
	cases := []Quiesce{
		{Epoch: 0, Activity: 0, Quiet: false},
		{Epoch: 1, Activity: 42, Quiet: true},
		{Epoch: 0xFFFFFFFF, Activity: -7, Quiet: true},
	}
	for _, q := range cases {
		in := Frame{From: 21, To: 3, Query: 9, Chain: 0, Payload: q}
		buf, err := AppendFrame(nil, in)
		if err != nil {
			t.Fatalf("encode %+v: %v", q, err)
		}
		if got, want := len(buf), FrameOverhead+quiesceBodySize; got != want {
			t.Fatalf("quiesce frame is %d bytes, want %d", got, want)
		}
		out, err := DecodeFrameBody(buf[4:])
		if err != nil {
			t.Fatalf("decode %+v: %v", q, err)
		}
		if out.From != in.From || out.To != in.To || out.Query != in.Query {
			t.Fatalf("header mangled: got %+v, want %+v", out, in)
		}
		if got := out.Payload.(Quiesce); got != q {
			t.Fatalf("payload round trip: got %+v, want %+v", got, q)
		}
	}
}

// TestQuiesceHostileBodies pins the decode hardening: wrong lengths and
// non-boolean quiet flags error instead of yielding a half-decoded claim
// (the fuzz corpus in internal/protocol exercises the same property
// under mutation).
func TestQuiesceHostileBodies(t *testing.T) {
	good, err := AppendFrame(nil, Frame{From: 1, To: 0, Query: 5, Payload: Quiesce{Epoch: 3, Activity: 10, Quiet: true}})
	if err != nil {
		t.Fatal(err)
	}
	body := good[4:]

	truncated := body[:len(body)-1]
	if _, err := DecodeFrameBody(truncated); err == nil {
		t.Fatal("truncated quiesce body decoded without error")
	}
	padded := append(append([]byte(nil), body...), 0)
	if _, err := DecodeFrameBody(padded); err == nil {
		t.Fatal("padded quiesce body decoded without error")
	}
	badFlag := append([]byte(nil), body...)
	badFlag[len(badFlag)-1] = 2
	if _, err := DecodeFrameBody(badFlag); err == nil {
		t.Fatal("quiet flag 2 decoded without error")
	}
}
