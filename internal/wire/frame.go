package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"validity/internal/graph"
)

// The transport frame (wire version 2): the unit one connection write
// carries. The 4-byte big-endian length prefix counts everything after
// itself — a 24-byte fixed header followed by the payload body owned by
// the payload tag's codec. See the package doc for the field table.
const (
	// FrameHeaderSize is the fixed header after the length prefix:
	// magic (2) + version (1) + tag (1) + from (4) + to (4) +
	// query (8) + chain (4).
	FrameHeaderSize = 24
	// FrameOverhead is the full fixed cost of one frame: length prefix
	// plus header. FrameSize(payload) = FrameOverhead + the payload
	// codec's body size.
	FrameOverhead = 4 + FrameHeaderSize
)

// Payload tag space: explicit, pinned tags replace gob's reflective
// interface registration. Protocol messages own 1–239; 240–255 are
// reserved for out-of-tree payloads (test harnesses register theirs
// there). Tag 0 is invalid on the wire.
const (
	// TagReservedBase is the first tag available to out-of-tree payload
	// codecs (tests); tags below it belong to internal/protocol.
	TagReservedBase uint8 = 240
)

// Frame is one decoded transport frame: the routing header the node
// runtime demultiplexes on, plus the decoded payload.
type Frame struct {
	From, To graph.HostID
	Query    int64
	Chain    int
	Payload  any
}

// PayloadCodec encodes and decodes one concrete payload type. Append and
// Size must agree exactly (Append grows buf by Size bytes); Decode must
// consume the whole body and reject any other length, so a truncated or
// padded frame is an error, never a silent partial decode.
type PayloadCodec struct {
	// Name labels the codec in errors ("wfBroadcast").
	Name string
	// Append encodes payload onto buf and returns the extended slice.
	Append func(buf []byte, payload any) ([]byte, error)
	// Size is Append's growth in bytes, computed without encoding.
	Size func(payload any) (int, error)
	// Decode rebuilds the payload from exactly the body bytes.
	Decode func(body []byte) (any, error)
}

// The registry is written only from package init functions (protocol and
// test packages register their codecs before any goroutine touches the
// wire), so the hot-path lookups are plain loads with no lock.
var (
	payloadCodecs [256]*PayloadCodec
	taggers       []func(payload any) (uint8, bool)
)

// RegisterPayload binds tag to codec. Call from package init only — the
// registry is read lock-free on the send and receive hot paths. Tag 0 and
// double registration panic: both are wiring bugs, not runtime inputs.
func RegisterPayload(tag uint8, codec PayloadCodec) {
	if tag == 0 {
		panic("wire: payload tag 0 is reserved")
	}
	if payloadCodecs[tag] != nil {
		panic(fmt.Sprintf("wire: payload tag %d registered twice (%s, %s)",
			tag, payloadCodecs[tag].Name, codec.Name))
	}
	if codec.Append == nil || codec.Size == nil || codec.Decode == nil {
		panic(fmt.Sprintf("wire: payload codec %s is missing a function", codec.Name))
	}
	c := codec
	payloadCodecs[tag] = &c
}

// RegisterTagger adds a payload→tag mapping (one type switch per
// registering package). Call from package init only.
func RegisterTagger(fn func(payload any) (uint8, bool)) {
	taggers = append(taggers, fn)
}

// PayloadTag resolves a payload value to its registered wire tag.
func PayloadTag(payload any) (uint8, bool) {
	for _, fn := range taggers {
		if tag, ok := fn(payload); ok {
			return tag, true
		}
	}
	return 0, false
}

// PayloadSize returns the body size the payload's codec will append, or an
// error for payloads with no registered codec.
func PayloadSize(payload any) (int, error) {
	tag, ok := PayloadTag(payload)
	if !ok {
		return 0, fmt.Errorf("wire: no payload codec for %T", payload)
	}
	return payloadCodecs[tag].Size(payload)
}

// FrameSize is the exact number of bytes AppendFrame emits for f: the
// fixed overhead plus the payload body. This is the size the node engine
// charges per sent message (§6.3 bytes-on-the-wire accounting).
func FrameSize(payload any) (int, error) {
	n, err := PayloadSize(payload)
	if err != nil {
		return 0, err
	}
	return FrameOverhead + n, nil
}

// AppendFrame encodes f — length prefix, header, payload body — onto buf
// and returns the extended slice. With a registered codec and a buffer of
// sufficient capacity it performs no allocation, which is what lets the
// transport recycle send buffers through a sync.Pool.
func AppendFrame(buf []byte, f Frame) ([]byte, error) {
	tag, ok := PayloadTag(f.Payload)
	if !ok {
		return nil, fmt.Errorf("wire: no payload codec for %T", f.Payload)
	}
	if f.From < 0 || f.To < 0 {
		return nil, fmt.Errorf("wire: negative host id %d→%d", f.From, f.To)
	}
	if f.Chain < math.MinInt32 || f.Chain > math.MaxInt32 {
		return nil, fmt.Errorf("wire: chain %d outside int32", f.Chain)
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length prefix, patched below
	buf = binary.LittleEndian.AppendUint16(buf, Magic)
	buf = append(buf, Version, tag)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.To))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Query))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(f.Chain)))
	buf, err := payloadCodecs[tag].Append(buf, f.Payload)
	if err != nil {
		return nil, fmt.Errorf("wire: encode %s: %w", payloadCodecs[tag].Name, err)
	}
	binary.BigEndian.PutUint32(buf[start:start+4], uint32(len(buf)-start-4))
	return buf, nil
}

// DecodeFrameBody parses one frame body — everything after the length
// prefix, which the transport has already consumed to delimit the frame.
// Hostile input errors; it never panics, and it allocates nothing beyond
// what the payload codec builds.
func DecodeFrameBody(body []byte) (Frame, error) {
	var f Frame
	if len(body) < FrameHeaderSize {
		return f, fmt.Errorf("wire: frame body too short (%d bytes)", len(body))
	}
	if binary.LittleEndian.Uint16(body[0:2]) != Magic {
		return f, fmt.Errorf("wire: bad frame magic %#x", binary.LittleEndian.Uint16(body[0:2]))
	}
	if body[2] != Version {
		return f, fmt.Errorf("wire: unsupported frame version %d", body[2])
	}
	tag := body[3]
	codec := payloadCodecs[tag]
	if codec == nil {
		return f, fmt.Errorf("wire: unknown payload tag %d", tag)
	}
	from := binary.LittleEndian.Uint32(body[4:8])
	to := binary.LittleEndian.Uint32(body[8:12])
	if from > math.MaxInt32 || to > math.MaxInt32 {
		return f, fmt.Errorf("wire: host id %d→%d outside int32", from, to)
	}
	f.From = graph.HostID(from)
	f.To = graph.HostID(to)
	f.Query = int64(binary.LittleEndian.Uint64(body[12:20]))
	f.Chain = int(int32(binary.LittleEndian.Uint32(body[20:24])))
	payload, err := codec.Decode(body[FrameHeaderSize:])
	if err != nil {
		return f, fmt.Errorf("wire: decode %s: %w", codec.Name, err)
	}
	f.Payload = payload
	return f, nil
}
