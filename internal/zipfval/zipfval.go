// Package zipfval generates the attribute values of the paper's workload:
// integers drawn from a Zipfian distribution over the range [10, 500]
// (§6.1). The generator supports an arbitrary range and exponent so that
// examples and extensions can reuse it.
//
// The implementation samples ranks by inverse transform over the exact
// normalized Zipf probability mass function, which is fast enough at the
// paper's range width (491 distinct values) and exactly distributed —
// unlike rejection methods it wastes no draws.
package zipfval

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultLo and DefaultHi delimit the paper's attribute-value range.
const (
	DefaultLo = 10
	DefaultHi = 500
	// DefaultExponent is the Zipf skew; the paper does not state s, so we
	// use the classic s = 1.
	DefaultExponent = 1.0
)

// Gen draws Zipf-distributed integers in [Lo, Hi]: value Lo has the
// highest probability, decaying as rank^(-s).
type Gen struct {
	lo, hi int64
	cdf    []float64 // cumulative mass over ranks 0..hi-lo
	rng    *rand.Rand
}

// New returns a generator over [lo, hi] with exponent s > 0.
func New(lo, hi int64, s float64, seed int64) (*Gen, error) {
	if hi < lo {
		return nil, fmt.Errorf("zipfval: hi %d < lo %d", hi, lo)
	}
	if s <= 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("zipfval: exponent must be positive, got %v", s)
	}
	n := int(hi - lo + 1)
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1), -s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	return &Gen{lo: lo, hi: hi, cdf: cdf, rng: rand.New(rand.NewSource(seed))}, nil
}

// Default returns the paper's [10,500], s=1 generator.
func Default(seed int64) *Gen {
	g, err := New(DefaultLo, DefaultHi, DefaultExponent, seed)
	if err != nil {
		panic(err) // constants are valid
	}
	return g
}

// Next draws one value.
func (g *Gen) Next() int64 {
	u := g.rng.Float64()
	// Binary search for the first rank with cdf ≥ u.
	lo, hi := 0, len(g.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.lo + int64(lo)
}

// Values draws n values.
func (g *Gen) Values(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Range returns the inclusive bounds of the generator.
func (g *Gen) Range() (lo, hi int64) { return g.lo, g.hi }
