package zipfval

import (
	"testing"
)

func TestValuesWithinRange(t *testing.T) {
	g := Default(1)
	for i := 0; i < 10000; i++ {
		v := g.Next()
		if v < DefaultLo || v > DefaultHi {
			t.Fatalf("value %d out of [%d,%d]", v, DefaultLo, DefaultHi)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := Default(2)
	const n = 200000
	counts := make(map[int64]int)
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	// Rank-1 value (10) should appear roughly twice as often as rank-2
	// value (11) under s=1; allow wide tolerance.
	c10, c11 := counts[10], counts[11]
	if c10 == 0 || c11 == 0 {
		t.Fatalf("head values missing: c10=%d c11=%d", c10, c11)
	}
	ratio := float64(c10) / float64(c11)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("p(10)/p(11) = %.2f, want ≈ 2", ratio)
	}
	// Head must dominate tail: 10 far more frequent than 400.
	if counts[10] < 20*counts[400]+1 {
		t.Fatalf("head not dominant: c10=%d c400=%d", counts[10], counts[400])
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := Default(7).Values(100)
	b := Default(7).Values(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(10, 5, 1, 1); err == nil {
		t.Fatal("hi < lo should error")
	}
	if _, err := New(1, 10, 0, 1); err == nil {
		t.Fatal("zero exponent should error")
	}
	if _, err := New(1, 10, -1, 1); err == nil {
		t.Fatal("negative exponent should error")
	}
}

func TestSingletonRange(t *testing.T) {
	g, err := New(42, 42, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v := g.Next(); v != 42 {
			t.Fatalf("singleton range produced %d", v)
		}
	}
	lo, hi := g.Range()
	if lo != 42 || hi != 42 {
		t.Fatalf("Range() = %d,%d", lo, hi)
	}
}

func TestValuesLen(t *testing.T) {
	vs := Default(3).Values(17)
	if len(vs) != 17 {
		t.Fatalf("Values(17) returned %d values", len(vs))
	}
}

func TestHigherExponentMoreSkewed(t *testing.T) {
	const n = 50000
	headShare := func(s float64) float64 {
		g, err := New(10, 500, s, 9)
		if err != nil {
			t.Fatal(err)
		}
		head := 0
		for i := 0; i < n; i++ {
			if g.Next() == 10 {
				head++
			}
		}
		return float64(head) / n
	}
	if headShare(2.0) <= headShare(1.0) {
		t.Fatal("higher exponent should concentrate more mass on the head")
	}
}
