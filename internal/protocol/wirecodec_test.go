package protocol

import (
	"bytes"
	"math/rand"
	"testing"

	"validity/internal/agg"
	"validity/internal/wire"
)

func codecParams() agg.Params { return agg.Params{Vectors: 8, Bits: 32} }

// allMessages returns one representative of every protocol message type
// that crosses the TCP transport, exercising both branches of every
// optional-partial field.
func allMessages(tb testing.TB) []any {
	tb.Helper()
	rng := rand.New(rand.NewSource(11))
	return []any{
		wfBroadcast{Hop: 3},
		wfBroadcast{Hop: 0, A: agg.NewPartial(agg.Count, 5, codecParams(), rng)},
		wfConverge{},
		wfConverge{A: agg.NewPartial(agg.Avg, 7, codecParams(), rng)},
		stBroadcast{Level: 4},
		stReport{},
		stReport{A: &ExactPartial{Count: 2, Sum: -9, Min: -11, Max: 3}},
		dagBroadcast{Level: 1},
		dagReport{},
		dagReport{A: agg.NewPartial(agg.Sum, 13, codecParams(), rng)},
		arBroadcast{},
		arReport{Origin: 17, Value: -42},
		rrBroadcast{},
		rrReport{},
		gsPair{Sum: 3.25, Weight: 0.5},
		// Not a protocol message: the quiescence control frame rides the
		// same framing, so it belongs in the same round-trip, hostile-body,
		// and fuzz coverage.
		wire.Quiesce{Epoch: 2, Activity: 5, Quiet: true},
	}
}

// TestWireCodecRoundTrip pushes every protocol message through the full
// transport codec — AppendFrame then DecodeFrameBody — and checks the
// decoded message re-encodes to identical bytes. Byte-stable re-encoding
// is a stronger property than field equality for messages carrying
// interface-typed partials.
func TestWireCodecRoundTrip(t *testing.T) {
	for _, msg := range allMessages(t) {
		fr := wire.Frame{From: 1, To: 2, Query: 99, Chain: 1, Payload: msg}
		buf, err := wire.AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		got, err := wire.DecodeFrameBody(buf[4:])
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		if got.From != fr.From || got.To != fr.To || got.Query != fr.Query || got.Chain != fr.Chain {
			t.Fatalf("%T: header round trip: got %+v", msg, got)
		}
		buf2, err := wire.AppendFrame(nil, wire.Frame{
			From: got.From, To: got.To, Query: got.Query, Chain: got.Chain, Payload: got.Payload,
		})
		if err != nil {
			t.Fatalf("%T: re-encode: %v", msg, err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("%T: re-encode differs\n first %v\nsecond %v", msg, buf, buf2)
		}
	}
}

// TestWireCodecSizeExact checks FrameSize against the encoder for every
// message type: the node's §6.3 bytes-on-wire accounting uses FrameSize
// and must charge exactly what TCP writes.
func TestWireCodecSizeExact(t *testing.T) {
	for _, msg := range allMessages(t) {
		buf, err := wire.AppendFrame(nil, wire.Frame{From: 1, To: 2, Query: 1, Payload: msg})
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		n, err := wire.FrameSize(msg)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		if n != len(buf) {
			t.Fatalf("%T: FrameSize %d, encoded %d", msg, n, len(buf))
		}
	}
}

// TestWireCodecRejectsMalformedBodies feeds each codec a body with one
// trailing byte: every decoder must enforce exact body length, since
// frames are packed back to back inside coalesced writes.
func TestWireCodecRejectsMalformedBodies(t *testing.T) {
	for _, msg := range allMessages(t) {
		buf, err := wire.AppendFrame(nil, wire.Frame{From: 1, To: 2, Query: 1, Payload: msg})
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		grown := append(append([]byte(nil), buf[4:]...), 0xEE)
		if _, err := wire.DecodeFrameBody(grown); err == nil {
			t.Errorf("%T: accepted a body with a trailing byte", msg)
		}
	}
}

// FuzzDecodeFrameBody runs the frame decoder with all protocol codecs
// registered, over seeds of every valid message plus truncations. Any
// panic on hostile input fails the run.
func FuzzDecodeFrameBody(f *testing.F) {
	for _, msg := range allMessages(f) {
		buf, err := wire.AppendFrame(nil, wire.Frame{From: 1, To: 2, Query: 7, Chain: 1, Payload: msg})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[4:])
		f.Add(buf[4 : 4+len(buf[4:])/2])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := wire.DecodeFrameBody(data)
		if err == nil {
			// A frame the decoder accepts must re-encode; the codec may
			// not produce messages it cannot itself serialize.
			if _, err := wire.AppendFrame(nil, fr); err != nil {
				t.Fatalf("decoded frame does not re-encode: %v", err)
			}
		}
	})
}
