package protocol

import (
	"fmt"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/sim"
)

// DAG is the DIRECTEDACYCLICGRAPH best-effort baseline (§4.4, [7,22]):
// like SPANNINGTREE, but each host keeps up to k parents — every neighbor
// whose copy of the query arrived from a strictly smaller depth — and
// sends its partial aggregate to all of them. Because a partial then
// reaches h_q along multiple paths, the partials must be duplicate-
// insensitive; following the paper's evaluation ("our implementation of
// DIRECTEDACYCLICGRAPH uses the distributed count and sum operators",
// §6), DAG carries agg.Partial (FM sketches for count/sum/avg, scalars
// for min/max).
type DAG struct {
	Query Query
	// K is the maximum number of parents per host (the paper evaluates
	// k = 2 and k = 3).
	K int

	hosts []*dagHost
}

// NewDAG returns an uninstalled DAG instance with k parents per host.
func NewDAG(q Query, k int) *DAG { return &DAG{Query: q, K: k} }

// Name implements Protocol.
func (d *DAG) Name() string { return fmt.Sprintf("dag(k=%d)", d.K) }

// Deadline implements Protocol.
func (d *DAG) Deadline() sim.Time { return d.Query.Deadline() }

// Install implements Protocol.
func (d *DAG) Install(nw *sim.Network) error {
	if err := d.Query.Validate(nw.Graph()); err != nil {
		return err
	}
	if d.K < 1 {
		return fmt.Errorf("protocol: DAG needs k ≥ 1, got %d", d.K)
	}
	n := nw.Graph().Len()
	d.hosts = make([]*dagHost, n)
	for i := 0; i < n; i++ {
		h := &dagHost{d: d, isHq: graph.HostID(i) == d.Query.Hq}
		d.hosts[i] = h
		nw.SetHandler(graph.HostID(i), h)
	}
	return nil
}

// Result implements Protocol.
func (d *DAG) Result() (float64, bool) {
	hq := d.hosts[d.Query.Hq]
	if !hq.active || hq.partial == nil {
		return 0, false
	}
	return hq.partial.Result(), true
}

// Parents returns the parent set chosen by host h.
func (d *DAG) Parents(h graph.HostID) []graph.HostID { return d.hosts[h].parents }

type dagBroadcast struct {
	Level int
}

type dagReport struct {
	A agg.Partial
}

const dagTagReport = 2

type dagHost struct {
	d       *DAG
	isHq    bool
	active  bool
	level   int
	parents []graph.HostID
	partial agg.Partial
}

func (h *dagHost) Start(ctx *sim.Context) {
	if !h.isHq {
		return
	}
	h.active = true
	h.level = 0
	h.partial = agg.NewPartial(h.d.Query.Kind, ctx.Value(), h.d.Query.Params, ctx.Rand())
	ctx.SendAll(dagBroadcast{Level: 1})
}

func (h *dagHost) Receive(ctx *sim.Context, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case dagBroadcast:
		h.onBroadcast(ctx, msg.From, m)
	case dagReport:
		if h.active {
			h.partial.Combine(m.A)
		}
	}
}

func (h *dagHost) onBroadcast(ctx *sim.Context, from graph.HostID, m dagBroadcast) {
	if h.isHq {
		return
	}
	if !h.active {
		if ctx.Now() >= sim.Time(2*h.d.Query.DHat) {
			return
		}
		h.active = true
		h.level = m.Level
		h.parents = append(h.parents, from)
		h.partial = agg.NewPartial(h.d.Query.Kind, ctx.Value(), h.d.Query.Params, ctx.Rand())
		ctx.SendAllExcept(from, dagBroadcast{Level: h.level + 1})
		t := sim.Time(2*h.d.Query.DHat - h.level)
		if t <= ctx.Now() {
			t = ctx.Now() + 1
		}
		ctx.SetTimer(t, dagTagReport)
		return
	}
	// An additional parent candidate: the sender sits at depth m.Level−1;
	// accept it if that is strictly above us and we have parent budget.
	if m.Level-1 < h.level && len(h.parents) < h.d.K && !h.hasParent(from) {
		h.parents = append(h.parents, from)
	}
}

func (h *dagHost) hasParent(p graph.HostID) bool {
	for _, x := range h.parents {
		if x == p {
			return true
		}
	}
	return false
}

func (h *dagHost) Timer(ctx *sim.Context, tag int) {
	if tag != dagTagReport || h.isHq || !h.active {
		return
	}
	for _, p := range h.parents {
		ctx.Send(p, dagReport{A: h.partial.Clone()})
	}
}
