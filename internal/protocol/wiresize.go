package protocol

import (
	"validity/internal/agg"
	"validity/internal/wire"
)

// WireEnvelope maps a protocol message payload to its canonical wire
// envelope (internal/wire), the compact binary format a real deployment
// would ship. The node engine uses it to account per-query bytes on the
// wire next to the §6.3 message counts, so the paper's "small fixed-size
// messages" claim stays checkable on the live runtime, not just in the
// encoder's unit tests.
//
// Payloads without a wire mapping (the gossip pairs, and partial types
// outside the wire format such as SPANNINGTREE's ExactPartial) report
// ok=false; the engine charges those nothing, so BytesOnWire covers
// exactly the traffic the wire format can carry.
func WireEnvelope(payload any) (wire.Envelope, bool) {
	switch m := payload.(type) {
	case wfBroadcast:
		if e, ok := partialEnvelope(wire.MsgBroadcast, uint16(clampHop(m.Hop)), m.A); ok {
			return e, true
		}
	case wfConverge:
		if e, ok := partialEnvelope(wire.MsgConverge, 0, m.A); ok {
			return e, true
		}
	case stBroadcast:
		return wire.Envelope{Kind: wire.MsgBroadcast, Hop: uint16(clampHop(m.Level))}, true
	case dagBroadcast:
		return wire.Envelope{Kind: wire.MsgBroadcast, Hop: uint16(clampHop(m.Level))}, true
	case dagReport:
		if e, ok := partialEnvelope(wire.MsgReport, 0, m.A); ok {
			return e, true
		}
	case arBroadcast, rrBroadcast:
		return wire.Envelope{Kind: wire.MsgBroadcast}, true
	case arReport, rrReport:
		return wire.Envelope{Kind: wire.MsgReport}, true
	}
	return wire.Envelope{}, false
}

func partialEnvelope(kind wire.MsgKind, hop uint16, p agg.Partial) (wire.Envelope, bool) {
	if p == nil {
		return wire.Envelope{Kind: kind, Hop: hop}, true
	}
	ak, ok := agg.KindOf(p)
	if !ok {
		return wire.Envelope{}, false
	}
	return wire.Envelope{Kind: kind, Hop: hop, Partial: p, AggKind: ak}, true
}

func clampHop(h int) int {
	if h < 0 {
		return 0
	}
	if h > 0xFFFF {
		return 0xFFFF
	}
	return h
}
