package protocol

import (
	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/sim"
)

// ReliableAllReport is ALLREPORT hardened with the §3.1 failure-detection
// machinery: every host monitors its reverse-path parent with heartbeats
// (period T_hb, suspicion after T_hb + δ of silence), buffers the reports
// it has relayed, and when the parent is suspected re-parents to another
// alive neighbor and re-sends the buffer. Reports carry their origin, so
// h_q deduplicates re-sent copies by origin — making the report stream
// duplicate-insensitive the same way WILDFIRE's sketches are.
//
// This closes the gap documented on AllReport: the plain protocol drops a
// report when a reverse-path relay dies even though the origin may still
// have a stable path to h_q. With rerouting, a report reaches h_q
// whenever some path of hosts that stay alive (and get T_hb + δ to notice
// each failure) exists — the routing substrate Theorem 4.3's abstract
// "send its value to h_q" presumes. Detection latency still consumes
// deadline slack, so D̂ should be padded by a few T_hb when heavy churn is
// expected.
type ReliableAllReport struct {
	Query Query
	// Thb is the heartbeat period in ticks (default 2).
	Thb sim.Time

	hosts []*rarHost
}

// NewReliableAllReport returns an uninstalled instance with T_hb = 2.
func NewReliableAllReport(q Query) *ReliableAllReport {
	return &ReliableAllReport{Query: q, Thb: 2}
}

// Name implements Protocol.
func (a *ReliableAllReport) Name() string { return "reliable-allreport" }

// Deadline implements Protocol.
func (a *ReliableAllReport) Deadline() sim.Time { return a.Query.Deadline() }

// Install implements Protocol.
func (a *ReliableAllReport) Install(nw *sim.Network) error {
	if err := a.Query.Validate(nw.Graph()); err != nil {
		return err
	}
	if a.Thb < 1 {
		a.Thb = 2
	}
	n := nw.Graph().Len()
	a.hosts = make([]*rarHost, n)
	for i := 0; i < n; i++ {
		h := &rarHost{
			a:       a,
			isHq:    graph.HostID(i) == a.Query.Hq,
			parent:  graph.None,
			relayed: make(map[graph.HostID]bool),
			seen:    make(map[graph.HostID]bool),
		}
		h.monitor = sim.NewHeartbeatMonitor(h, a.Thb)
		a.hosts[i] = h
		nw.SetHandler(graph.HostID(i), h.monitor)
	}
	return nil
}

// Result implements Protocol: q(M) over distinct origins received at h_q.
func (a *ReliableAllReport) Result() (float64, bool) {
	if a.hosts == nil {
		return 0, false
	}
	hq := a.hosts[a.Query.Hq]
	if !hq.started {
		return 0, false
	}
	return agg.Exact(a.Query.Kind, hq.collected), true
}

// Reports returns the number of distinct origins collected at h_q.
func (a *ReliableAllReport) Reports() int { return len(a.hosts[a.Query.Hq].collected) }

const rarTagCheck = 5

type rarHost struct {
	a       *ReliableAllReport
	monitor *sim.HeartbeatMonitor
	isHq    bool
	started bool
	active  bool
	parent  graph.HostID
	// candidates are neighbors the broadcast arrived from — all of them
	// sit closer to h_q on some path and are re-parenting targets.
	candidates []graph.HostID
	// buffer holds one report per origin this host originated or relayed,
	// for re-sending after a re-parent.
	buffer []arReport
	// relayed marks origins already forwarded once; without it, a
	// re-parent cycle (A's backup is B while B's backup is A) would
	// bounce the same report until the deadline.
	relayed map[graph.HostID]bool
	// seen dedups origins at h_q.
	seen      map[graph.HostID]bool
	collected []int64 // h_q only
}

func (h *rarHost) Start(ctx *sim.Context) {
	if !h.isHq {
		return
	}
	h.started = true
	h.active = true
	h.seen[ctx.Self()] = true
	h.collected = append(h.collected, ctx.Value())
	ctx.SendAll(arBroadcast{})
}

func (h *rarHost) Receive(ctx *sim.Context, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case arBroadcast:
		if h.isHq {
			return
		}
		if !h.active {
			if ctx.Now() >= sim.Time(2*h.a.Query.DHat) {
				return
			}
			h.active = true
			h.parent = msg.From
			h.candidates = append(h.candidates, msg.From)
			ctx.SendAllExcept(msg.From, arBroadcast{})
			report := arReport{Origin: ctx.Self(), Value: ctx.Value()}
			h.buffer = append(h.buffer, report)
			ctx.Send(h.parent, report)
			ctx.SetTimer(ctx.Now()+h.a.Thb, rarTagCheck)
			return
		}
		// Additional broadcast copies reveal alternate parents.
		if msg.From != h.parent && !h.hasCandidate(msg.From) {
			h.candidates = append(h.candidates, msg.From)
		}
	case arReport:
		if h.isHq {
			if !h.seen[m.Origin] {
				h.seen[m.Origin] = true
				h.collected = append(h.collected, m.Value)
			}
			return
		}
		if h.active && h.parent != graph.None && !h.relayed[m.Origin] {
			h.relayed[m.Origin] = true
			h.buffer = append(h.buffer, m)
			ctx.Send(h.parent, m)
		}
	}
}

func (h *rarHost) hasCandidate(n graph.HostID) bool {
	for _, c := range h.candidates {
		if c == n {
			return true
		}
	}
	return false
}

func (h *rarHost) Timer(ctx *sim.Context, tag int) {
	if tag != rarTagCheck || !h.active || h.isHq {
		return
	}
	if ctx.Now() >= sim.Time(2*h.a.Query.DHat) {
		return
	}
	if h.parent != graph.None && !h.monitor.NeighborAlive(ctx.Now(), h.parent) {
		h.reparent(ctx)
	}
	ctx.SetTimer(ctx.Now()+h.a.Thb, rarTagCheck)
}

// reparent picks the first unsuspected candidate (or any unsuspected
// neighbor as a last resort) and replays the buffered reports to it.
func (h *rarHost) reparent(ctx *sim.Context) {
	old := h.parent
	h.parent = graph.None
	for _, c := range h.candidates {
		if c != old && h.monitor.NeighborAlive(ctx.Now(), c) {
			h.parent = c
			break
		}
	}
	if h.parent == graph.None {
		for _, n := range ctx.Neighbors() {
			if n != old && h.monitor.NeighborAlive(ctx.Now(), n) {
				h.parent = n
				break
			}
		}
	}
	if h.parent == graph.None {
		return // isolated: nothing to do
	}
	for _, r := range h.buffer {
		ctx.Send(h.parent, r)
	}
}
