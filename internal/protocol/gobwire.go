package protocol

import "encoding/gob"

// The node runtime (internal/node) carries protocol messages over
// pluggable transports; the TCP transport gob-encodes each message's
// payload as an interface value, which requires every concrete message
// type registered here. The partial-aggregate types riding inside them are
// registered by internal/agg.
//
// Empty marker messages (the bare broadcasts and 1-bit reports) implement
// GobEncoder/GobDecoder explicitly because gob refuses struct types with
// no exported fields; their entire information content is their type.

func init() {
	gob.Register(wfBroadcast{})
	gob.Register(wfConverge{})
	gob.Register(stBroadcast{})
	gob.Register(stReport{})
	gob.Register(dagBroadcast{})
	gob.Register(dagReport{})
	gob.Register(arBroadcast{})
	gob.Register(arReport{})
	gob.Register(rrBroadcast{})
	gob.Register(rrReport{})
	gob.Register(gsPair{})
}

// GobEncode implements gob.GobEncoder.
func (arBroadcast) GobEncode() ([]byte, error) { return []byte{}, nil }

// GobDecode implements gob.GobDecoder.
func (*arBroadcast) GobDecode([]byte) error { return nil }

// GobEncode implements gob.GobEncoder.
func (rrBroadcast) GobEncode() ([]byte, error) { return []byte{}, nil }

// GobDecode implements gob.GobDecoder.
func (*rrBroadcast) GobDecode([]byte) error { return nil }

// GobEncode implements gob.GobEncoder.
func (rrReport) GobEncode() ([]byte, error) { return []byte{}, nil }

// GobDecode implements gob.GobDecoder.
func (*rrReport) GobDecode([]byte) error { return nil }
