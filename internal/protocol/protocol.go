// Package protocol implements the paper's query-processing protocols as
// per-host state machines over the internal/sim substrate:
//
//   - WILDFIRE (§5.1, Figs. 3–4): the paper's contribution. Broadcast
//     floods the query with no edge-subset construction; convergecast
//     refloods a host's partial aggregate whenever it changes. With
//     duplicate-insensitive combine functions (min/max natively, FM
//     sketches for count/sum/avg) the result at h_q satisfies Single-Site
//     Validity (Theorems 5.1 and 5.3).
//   - SPANNINGTREE (§4.4): the TAG-style best-effort baseline. Broadcast
//     builds a tree (parent = first host the query arrived from);
//     convergecast propagates exact partial aggregates leaf-to-root on a
//     level schedule. A single interior failure loses an entire subtree.
//   - DIRECTEDACYCLICGRAPH (§4.4): like SPANNINGTREE but each host keeps
//     up to k parents and partials are duplicate-insensitive, so losing
//     one parent need not lose the subtree.
//   - ALLREPORT (§4.1, Fig. 2): direct delivery; every host routes its
//     attribute value to h_q along the reverse broadcast path.
//   - RANDOMIZEDREPORT (§4.3): ALLREPORT sampling hosts with probability
//     p to estimate network size within (1±ε) with probability 1−ζ.
//
// Every protocol implements the Protocol interface: Install handlers on a
// sim.Network, Run the network until Deadline, then read Result.
package protocol

import (
	"fmt"
	"math"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/sim"
)

// Query describes one aggregate query issued at Hq at virtual time 0.
type Query struct {
	// Kind is the aggregate to compute.
	Kind agg.Kind
	// Hq is the querying host.
	Hq graph.HostID
	// DHat is the overestimate D̂ of the stable diameter; every protocol
	// terminates at time 2·D̂·δ (δ = 1 tick).
	DHat int
	// Params sizes the FM sketches for count/sum/avg queries.
	Params agg.Params
}

// Deadline returns the query's termination time T = 2·D̂·δ.
func (q Query) Deadline() sim.Time { return sim.Time(2 * q.DHat) }

// Validate reports configuration errors early.
func (q Query) Validate(g *graph.Graph) error {
	if q.DHat < 1 {
		return fmt.Errorf("protocol: D̂ must be ≥ 1, got %d", q.DHat)
	}
	if q.Hq < 0 || int(q.Hq) >= g.Len() {
		return fmt.Errorf("protocol: querying host %d outside graph of %d hosts", q.Hq, g.Len())
	}
	if q.Params.Vectors == 0 {
		return fmt.Errorf("protocol: zero FM vectors; use agg.DefaultParams")
	}
	return nil
}

// Protocol is a query-processing scheme that can be installed on a
// network.
type Protocol interface {
	// Name identifies the protocol in tables and logs.
	Name() string
	// Install creates and registers a handler on every host of nw.
	Install(nw *sim.Network) error
	// Deadline is the time the querying host declares its result.
	Deadline() sim.Time
	// Result returns the value declared at h_q; ok is false if the
	// protocol never produced one (e.g. h_q failed).
	Result() (v float64, ok bool)
}

// Run is a convenience helper: install p on nw, run to p's deadline, and
// return the declared result along with the run's statistics.
func Run(p Protocol, nw *sim.Network) (float64, *sim.Stats, error) {
	if err := p.Install(nw); err != nil {
		return 0, nil, err
	}
	stats := nw.Run(p.Deadline())
	v, ok := p.Result()
	if !ok {
		return math.NaN(), stats, fmt.Errorf("protocol %s: no result declared", p.Name())
	}
	return v, stats, nil
}

// ExactPartial is the conventional (duplicate-sensitive) partial aggregate
// used by SPANNINGTREE: exact running count, sum, min and max, combined
// with + / min / max. Combining the same partial twice double-counts —
// which is exactly why WILDFIRE cannot use it (§5.2).
type ExactPartial struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// NewExactPartial returns the partial for a single host holding v.
func NewExactPartial(v int64) *ExactPartial {
	return &ExactPartial{Count: 1, Sum: v, Min: v, Max: v}
}

// Merge folds other into p with the conventional combine functions.
func (p *ExactPartial) Merge(other *ExactPartial) {
	if other.Count == 0 {
		return
	}
	if p.Count == 0 {
		*p = *other
		return
	}
	p.Count += other.Count
	p.Sum += other.Sum
	if other.Min < p.Min {
		p.Min = other.Min
	}
	if other.Max > p.Max {
		p.Max = other.Max
	}
}

// Clone returns a copy safe to put in a message.
func (p *ExactPartial) Clone() *ExactPartial { c := *p; return &c }

// Result evaluates the partial for the given aggregate kind.
func (p *ExactPartial) Result(k agg.Kind) float64 {
	switch k {
	case agg.Min:
		return float64(p.Min)
	case agg.Max:
		return float64(p.Max)
	case agg.Count:
		return float64(p.Count)
	case agg.Sum:
		return float64(p.Sum)
	case agg.Avg:
		if p.Count == 0 {
			return 0
		}
		return float64(p.Sum) / float64(p.Count)
	default:
		panic(fmt.Sprintf("protocol: unknown kind %d", int(k)))
	}
}
