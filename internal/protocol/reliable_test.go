package protocol

import (
	"testing"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/sim"
	"validity/internal/topology"
)

func TestReliableAllReportFailureFreeMatchesPlain(t *testing.T) {
	g, vals := fig5Network()
	for _, k := range []agg.Kind{agg.Min, agg.Max, agg.Count, agg.Sum} {
		q := Query{Kind: k, Hq: 0, DHat: 4, Params: params()}
		plain := NewAllReport(q)
		vp, _, err := Run(plain, newNet(g, vals, 1))
		if err != nil {
			t.Fatal(err)
		}
		rel := NewReliableAllReport(q)
		vr, _, err := Run(rel, newNet(g, vals, 1))
		if err != nil {
			t.Fatal(err)
		}
		if vp != vr {
			t.Fatalf("%v: reliable (%v) differs from plain (%v) without churn", k, vr, vp)
		}
	}
}

// The scenario AllReport documents as its loss mode: a relay dies after
// forwarding the broadcast but before relaying a downstream report. The
// reliable variant re-parents and recovers the report.
func TestReliableAllReportReroutesAroundRelayFailure(t *testing.T) {
	// Diamond: 0-(1,2)-3. Host 3's reverse path goes through whichever of
	// 1,2 delivered the broadcast first; kill both candidates one at a
	// time to cover either choice deterministically.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	vals := []int64{1, 1, 1, 1}
	// Generous D̂: rerouting consumes detection latency (T_hb + δ).
	q := Query{Kind: agg.Count, Hq: 0, DHat: 10, Params: params()}

	for _, victim := range []graph.HostID{1, 2} {
		plain := NewAllReport(q)
		nwP := newNet(g, vals, 1)
		nwP.FailAt(victim, 2) // after broadcast passes (t=1), before 3's report relays (t=3)
		vp, _, err := Run(plain, nwP)
		if err != nil {
			t.Fatal(err)
		}
		rel := NewReliableAllReport(q)
		nwR := newNet(g, vals, 1)
		nwR.FailAt(victim, 2)
		vr, _, err := Run(rel, nwR)
		if err != nil {
			t.Fatal(err)
		}
		if vr < vp {
			t.Fatalf("victim %d: reliable (%v) worse than plain (%v)", victim, vr, vp)
		}
		// All three survivors must be counted; the victim's own report may
		// also have escaped before its death (victim ∈ H_U), so 4 is fine.
		if vr < 3 || vr > 4 {
			t.Fatalf("victim %d: reliable count = %v, want 3 or 4", victim, vr)
		}
	}
}

func TestReliableAllReportChainRecovery(t *testing.T) {
	// Chain with a bypass: 0-1-2 and 0-3-2. Host 2 reports through its
	// first parent; killing that parent must not lose host 2.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 2)
	vals := []int64{10, 20, 99, 30}
	q := Query{Kind: agg.Max, Hq: 0, DHat: 12, Params: params()}
	rel := NewReliableAllReport(q)
	nw := newNet(g, vals, 1)
	nw.FailAt(1, 2)
	v, _, err := Run(rel, nw)
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Fatalf("reliable max = %v, want 99 recovered via bypass", v)
	}
}

func TestReliableAllReportNoLoopStorm(t *testing.T) {
	// Densely connected graph with churn: the per-origin relay guard must
	// keep traffic bounded well below the deadline-long worst case.
	g := topology.NewRandom(200, 6, 3)
	vals := make([]int64, g.Len())
	for i := range vals {
		vals[i] = 1
	}
	q := Query{Kind: agg.Count, Hq: 0, DHat: 14, Params: params()}
	rel := NewReliableAllReport(q)
	nw := newNet(g, vals, 3)
	for i := 1; i <= 20; i++ {
		nw.FailAt(graph.HostID(i*7), sim.Time(1+i%10))
	}
	v, stats, err := Run(rel, nw)
	if err != nil {
		t.Fatal(err)
	}
	if v < 100 {
		t.Fatalf("count %v collapsed under churn", v)
	}
	// Heartbeats dominate: every host beats to all neighbors each T_hb,
	// ≈ hosts × (deadline/T_hb) × degree messages; a loop storm would
	// blow far past this.
	bound := int64(float64(g.Len())*float64(q.Deadline())*(g.AvgDegree()+1)) +
		int64(g.NumEdges()*4)
	if stats.MessagesSent > bound {
		t.Fatalf("traffic %d exceeds loop-storm bound %d", stats.MessagesSent, bound)
	}
}

func TestReliableAllReportDefaults(t *testing.T) {
	q := Query{Kind: agg.Count, Hq: 0, DHat: 3, Params: params()}
	r := NewReliableAllReport(q)
	if r.Thb != 2 || r.Name() != "reliable-allreport" || r.Deadline() != 6 {
		t.Fatalf("defaults wrong: %+v", r)
	}
	if _, ok := r.Result(); ok {
		t.Fatal("result before install should not be ok")
	}
	g, vals := fig5Network()
	r2 := &ReliableAllReport{Query: q, Thb: 0} // zero Thb falls back to 2
	if err := r2.Install(newNet(g, vals, 1)); err != nil {
		t.Fatal(err)
	}
	if r2.Thb != 2 {
		t.Fatalf("Thb fallback = %d, want 2", r2.Thb)
	}
}
