package protocol

import (
	"fmt"
	"math"

	"validity/internal/graph"
	"validity/internal/sim"
)

// RandomizedReport implements the §4.3 sampling estimator of network size
// |H|: h_q floods the query carrying a report probability p; each host
// that receives it reports a 1 back to h_q with probability p; at
// T = 2D̂δ the estimate is |M|/p. With p ≥ (4/(ε²·n))·ln(2/ζ) the result
// satisfies Approximate Single-Site Validity within (1±ε) with probability
// at least 1−ζ, using roughly (1−p)|H| fewer report messages than
// ALLREPORT.
type RandomizedReport struct {
	Query Query
	// P is the report probability flooded with the query.
	P float64

	hosts []*rrHost
}

// NewRandomizedReport returns an instance with an explicit p.
func NewRandomizedReport(q Query, p float64) *RandomizedReport {
	return &RandomizedReport{Query: q, P: p}
}

// ReportProbability computes the §4.3 bound p = (4/(ε²·n))·ln(2/ζ),
// clamped to (0, 1], for a caller-supplied (over)estimate n of the
// network size.
func ReportProbability(eps, zeta float64, n int) float64 {
	if eps <= 0 || eps >= 1 || zeta <= 0 || zeta >= 1 || n <= 0 {
		return 1
	}
	p := 4 / (eps * eps * float64(n)) * math.Log(2/zeta)
	if p > 1 {
		return 1
	}
	return p
}

// Name implements Protocol.
func (r *RandomizedReport) Name() string { return "randomizedreport" }

// Deadline implements Protocol.
func (r *RandomizedReport) Deadline() sim.Time { return r.Query.Deadline() }

// Install implements Protocol.
func (r *RandomizedReport) Install(nw *sim.Network) error {
	if err := r.Query.Validate(nw.Graph()); err != nil {
		return err
	}
	if r.P <= 0 || r.P > 1 {
		return fmt.Errorf("protocol: report probability %v outside (0,1]", r.P)
	}
	n := nw.Graph().Len()
	r.hosts = make([]*rrHost, n)
	for i := 0; i < n; i++ {
		h := &rrHost{r: r, isHq: graph.HostID(i) == r.Query.Hq, parent: graph.None}
		r.hosts[i] = h
		nw.SetHandler(graph.HostID(i), h)
	}
	return nil
}

// Result implements Protocol: the size estimate |M|/p.
func (r *RandomizedReport) Result() (float64, bool) {
	hq := r.hosts[r.Query.Hq]
	if !hq.started {
		return 0, false
	}
	return float64(hq.reports) / r.P, true
}

// Reports returns the raw number of 1-reports received (|M|).
func (r *RandomizedReport) Reports() int { return r.hosts[r.Query.Hq].reports }

type rrBroadcast struct{}

type rrReport struct{}

type rrHost struct {
	r       *RandomizedReport
	isHq    bool
	started bool
	active  bool
	parent  graph.HostID
	reports int // h_q only
}

func (h *rrHost) Start(ctx *sim.Context) {
	if !h.isHq {
		return
	}
	h.started = true
	h.active = true
	if ctx.Rand().Float64() < h.r.P {
		h.reports++ // h_q samples itself like any other host
	}
	ctx.SendAll(rrBroadcast{})
}

func (h *rrHost) Receive(ctx *sim.Context, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case rrBroadcast:
		if h.active {
			return
		}
		if ctx.Now() >= sim.Time(2*h.r.Query.DHat) {
			return
		}
		h.active = true
		h.parent = msg.From
		ctx.SendAllExcept(msg.From, rrBroadcast{})
		if ctx.Rand().Float64() < h.r.P {
			ctx.Send(h.parent, rrReport{})
		}
	case rrReport:
		if h.isHq {
			h.reports++
			return
		}
		if h.active && h.parent != graph.None {
			ctx.Send(h.parent, m)
		}
	}
}

func (h *rrHost) Timer(ctx *sim.Context, tag int) {}
