package protocol

import (
	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/sim"
)

// AllReport is the direct-delivery algorithm of Fig. 2 (Theorem 4.3's
// constructive proof that Single-Site Validity is achievable, and the
// "Direct Delivery" baseline of Yao and Gehrke studied in §4.4): h_q
// floods the query, and each host that receives it sends its attribute
// value back to h_q, which aggregates the collected set M at T = 2D̂δ.
//
// The paper's abstract model says a host "sends its attribute value to
// h_q" and leaves routing implicit. On the simulator messages travel only
// along edges of G, so reports are relayed hop-by-hop along the reverse
// broadcast path (each host forwards toward the neighbor its copy of the
// query arrived from). This realizes the high per-hop communication cost
// §4.4 attributes to direct delivery. One honest deviation: if a reverse-
// path relay fails after the broadcast passed, the report is lost even
// though the origin may have another stable path — the abstract model
// assumes routing finds the stable path, which needs a routing substrate
// the paper does not specify. Tests pin validity in the failure-free case
// and bound the loss under churn.
type AllReport struct {
	Query Query

	hosts []*arHost
}

// NewAllReport returns an uninstalled ALLREPORT instance.
func NewAllReport(q Query) *AllReport { return &AllReport{Query: q} }

// Name implements Protocol.
func (a *AllReport) Name() string { return "allreport" }

// Deadline implements Protocol.
func (a *AllReport) Deadline() sim.Time { return a.Query.Deadline() }

// Install implements Protocol.
func (a *AllReport) Install(nw *sim.Network) error {
	if err := a.Query.Validate(nw.Graph()); err != nil {
		return err
	}
	n := nw.Graph().Len()
	a.hosts = make([]*arHost, n)
	for i := 0; i < n; i++ {
		h := &arHost{a: a, isHq: graph.HostID(i) == a.Query.Hq, parent: graph.None}
		a.hosts[i] = h
		nw.SetHandler(graph.HostID(i), h)
	}
	return nil
}

// Result implements Protocol: q(M) over the values received at h_q
// (including h_q's own).
func (a *AllReport) Result() (float64, bool) {
	hq := a.hosts[a.Query.Hq]
	if !hq.started {
		return 0, false
	}
	return agg.Exact(a.Query.Kind, hq.collected), true
}

// Reports returns the number of values collected at h_q.
func (a *AllReport) Reports() int { return len(a.hosts[a.Query.Hq].collected) }

type arBroadcast struct{}

// arReport carries one host's attribute value toward h_q.
type arReport struct {
	Origin graph.HostID
	Value  int64
}

type arHost struct {
	a         *AllReport
	isHq      bool
	started   bool
	active    bool
	parent    graph.HostID
	collected []int64 // h_q only
}

func (h *arHost) Start(ctx *sim.Context) {
	if !h.isHq {
		return
	}
	h.started = true
	h.active = true
	h.collected = append(h.collected, ctx.Value())
	ctx.SendAll(arBroadcast{})
}

func (h *arHost) Receive(ctx *sim.Context, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case arBroadcast:
		if h.active {
			return
		}
		if ctx.Now() >= sim.Time(2*h.a.Query.DHat) {
			return
		}
		h.active = true
		h.parent = msg.From
		ctx.SendAllExcept(msg.From, arBroadcast{})
		ctx.Send(h.parent, arReport{Origin: ctx.Self(), Value: ctx.Value()})
	case arReport:
		if h.isHq {
			h.collected = append(h.collected, m.Value)
			return
		}
		if h.active && h.parent != graph.None {
			ctx.Send(h.parent, m)
		}
	}
}

func (h *arHost) Timer(ctx *sim.Context, tag int) {}
