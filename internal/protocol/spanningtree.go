package protocol

import (
	"validity/internal/graph"
	"validity/internal/sim"
)

// SpanningTree is the TAG-style best-effort baseline (§4.4, [22,38,40]).
// Broadcast builds a spanning tree rooted at h_q: a host's parent is the
// neighbor its first copy of the query arrived from. Convergecast runs on
// a level schedule: a host at depth l sends its exact partial aggregate to
// its parent at time (2D̂ − l)δ, by which time all of its children (depth
// l+1, scheduled at (2D̂ − l − 1)δ) have reported.
//
// The protocol is communication-optimal (|E| broadcast + |H| convergecast
// messages) but forsakes validity: if a host fails before its report is
// sent, the values of its entire subtree are silently lost (Example 1.1,
// Theorem 4.4).
type SpanningTree struct {
	Query Query

	hosts []*stHost
}

// NewSpanningTree returns an uninstalled SPANNINGTREE instance.
func NewSpanningTree(q Query) *SpanningTree { return &SpanningTree{Query: q} }

// Name implements Protocol.
func (s *SpanningTree) Name() string { return "spanningtree" }

// Deadline implements Protocol.
func (s *SpanningTree) Deadline() sim.Time { return s.Query.Deadline() }

// Install implements Protocol.
func (s *SpanningTree) Install(nw *sim.Network) error {
	if err := s.Query.Validate(nw.Graph()); err != nil {
		return err
	}
	n := nw.Graph().Len()
	s.hosts = make([]*stHost, n)
	for i := 0; i < n; i++ {
		h := &stHost{s: s, isHq: graph.HostID(i) == s.Query.Hq, parent: graph.None}
		s.hosts[i] = h
		nw.SetHandler(graph.HostID(i), h)
	}
	return nil
}

// Result implements Protocol.
func (s *SpanningTree) Result() (float64, bool) {
	hq := s.hosts[s.Query.Hq]
	if !hq.active {
		return 0, false
	}
	return hq.partial.Result(s.Query.Kind), true
}

// Parent returns the tree parent chosen by host h (None for h_q or hosts
// the broadcast never reached); tests and the DAG comparison use it.
func (s *SpanningTree) Parent(h graph.HostID) graph.HostID { return s.hosts[h].parent }

// stBroadcast carries the query down the tree; Level is the receiver's
// prospective depth.
type stBroadcast struct {
	Level int
}

// stReport carries a subtree's exact partial aggregate up one edge.
type stReport struct {
	A *ExactPartial
}

const stTagReport = 1

type stHost struct {
	s       *SpanningTree
	isHq    bool
	active  bool
	parent  graph.HostID
	level   int
	partial *ExactPartial
}

func (h *stHost) Start(ctx *sim.Context) {
	if !h.isHq {
		return
	}
	h.active = true
	h.level = 0
	h.partial = NewExactPartial(ctx.Value())
	ctx.SendAll(stBroadcast{Level: 1})
}

func (h *stHost) Receive(ctx *sim.Context, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case stBroadcast:
		if h.active {
			return // keep the first parent
		}
		if ctx.Now() >= sim.Time(2*h.s.Query.DHat) {
			return
		}
		h.active = true
		h.parent = msg.From
		h.level = m.Level
		h.partial = NewExactPartial(ctx.Value())
		ctx.SendAllExcept(msg.From, stBroadcast{Level: h.level + 1})
		// Schedule the subtree report: by 2D̂−l all children have reported.
		t := sim.Time(2*h.s.Query.DHat - h.level)
		if t <= ctx.Now() {
			t = ctx.Now() + 1
		}
		ctx.SetTimer(t, stTagReport)
	case stReport:
		if !h.active {
			return
		}
		h.partial.Merge(m.A)
	}
}

func (h *stHost) Timer(ctx *sim.Context, tag int) {
	if tag != stTagReport || h.isHq || !h.active {
		return
	}
	// If the parent has already failed, the message is silently dropped by
	// the network — that is the protocol's whole failure mode.
	ctx.Send(h.parent, stReport{A: h.partial.Clone()})
}
