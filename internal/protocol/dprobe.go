package protocol

import (
	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/sim"
)

// DiameterProbe implements the §6.6.2 heuristic for choosing a good D̂:
// "initially use WILDFIRE itself with a large D̂ to find the maximum D
// among hosts in G, and then use the result to construct D̂ for
// subsequent queries."
//
// Each host's attribute value for this query is its broadcast distance
// from h_q — known the moment it activates (the ad-hoc query model of
// §3.1, realized through Wildfire.ValueFn) — and the aggregate is max,
// which is duplicate-insensitive, so the probe inherits WILDFIRE's
// Single-Site Validity: the result is the eccentricity of h_q over some
// host set between H_C and H_U.
type DiameterProbe struct {
	// Hq is the probing host.
	Hq graph.HostID
	// Cap is the large initial overestimate (the probe's own D̂); it
	// bounds how far the probe can see. Defaults to 64, ample for
	// small-world networks (§3.2: Gnutella D = 12, social networks 6).
	Cap int

	wf *Wildfire
}

// NewDiameterProbe returns a probe from hq with the default cap.
func NewDiameterProbe(hq graph.HostID) *DiameterProbe {
	return &DiameterProbe{Hq: hq, Cap: 64}
}

// Name implements Protocol.
func (d *DiameterProbe) Name() string { return "diameterprobe" }

// Deadline implements Protocol.
func (d *DiameterProbe) Deadline() sim.Time { return sim.Time(2 * d.Cap) }

// Install implements Protocol.
func (d *DiameterProbe) Install(nw *sim.Network) error {
	q := Query{Kind: agg.Max, Hq: d.Hq, DHat: d.Cap, Params: agg.DefaultParams()}
	d.wf = NewWildfire(q)
	d.wf.ValueFn = func(h graph.HostID, dist int) int64 { return int64(dist) }
	return d.wf.Install(nw)
}

// Result implements Protocol: the observed eccentricity of h_q.
func (d *DiameterProbe) Result() (float64, bool) {
	if d.wf == nil {
		return 0, false
	}
	return d.wf.Result()
}

// RecommendedDHat converts the probe result into a D̂ for subsequent
// queries: eccentricity plus slack for hosts whose stable paths are a
// little longer than their broadcast paths.
func (d *DiameterProbe) RecommendedDHat() (int, bool) {
	v, ok := d.Result()
	if !ok {
		return 0, false
	}
	return int(v) + 2, true
}
