package protocol

import (
	"fmt"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/sim"
)

// Gossip implements the epidemic baseline the paper contrasts against in
// §2.2 [9,14,19,37]: Kempe–Dobra–Gehrke push-sum. Every host maintains a
// (sum, weight) pair; in each round it splits the pair in half and sends
// one half to a uniformly random neighbor, keeping the other. The ratio
// sum/weight at every host converges to the average of the initial
// values; avg · count recovers sum, and a parallel counting instance
// (one host seeded with weight mass) estimates count.
//
// The point of including it: gossip offers *eventual consistency* — under
// churn mass is lost with failed hosts and the guarantee degrades to
// "correct once the network stabilizes" — not Single-Site Validity. The
// tests and benches use it to show where the paper's semantics differ
// from the epidemic alternative (§2.2), and what gossip costs to reach
// comparable accuracy.
//
// Supported kinds: Avg (native), Count and Sum (via the weight trick).
// Min/Max degenerate to flooding and are better served by WILDFIRE.
type Gossip struct {
	Query Query
	// Rounds is the number of gossip rounds (each round = one tick; the
	// classic analysis needs O(log n + log 1/ε) rounds on good expanders).
	Rounds int

	hosts []*gsHost
}

// NewGossip returns an uninstalled push-sum instance.
func NewGossip(q Query, rounds int) *Gossip { return &Gossip{Query: q, Rounds: rounds} }

// Name implements Protocol.
func (g *Gossip) Name() string { return "gossip" }

// Deadline implements Protocol.
func (g *Gossip) Deadline() sim.Time { return sim.Time(g.Rounds + 1) }

// Install implements Protocol.
func (g *Gossip) Install(nw *sim.Network) error {
	switch g.Query.Kind {
	case agg.Avg, agg.Count, agg.Sum:
	default:
		return fmt.Errorf("protocol: gossip supports avg/count/sum, not %v", g.Query.Kind)
	}
	if g.Rounds < 1 {
		return fmt.Errorf("protocol: gossip needs ≥ 1 round, got %d", g.Rounds)
	}
	if err := g.Query.Validate(nw.Graph()); err != nil {
		return err
	}
	n := nw.Graph().Len()
	g.hosts = make([]*gsHost, n)
	for i := 0; i < n; i++ {
		h := &gsHost{g: g, isHq: graph.HostID(i) == g.Query.Hq}
		g.hosts[i] = h
		nw.SetHandler(graph.HostID(i), h)
	}
	return nil
}

// Result implements Protocol. For Avg it is sum/weight at h_q; for Count,
// weight mass is seeded only at h_q so every host's value/weight ratio
// estimates n (we read h_q's); for Sum, the same with values.
func (g *Gossip) Result() (float64, bool) {
	if g.hosts == nil {
		return 0, false
	}
	hq := g.hosts[g.Query.Hq]
	if hq == nil || !hq.started || hq.weight == 0 {
		return 0, false
	}
	return hq.sum / hq.weight, true
}

// HostEstimate returns host h's current local estimate (gossip's defining
// property is that *every* host converges to the answer).
func (g *Gossip) HostEstimate(h graph.HostID) (float64, bool) {
	gh := g.hosts[h]
	if gh == nil || !gh.started || gh.weight == 0 {
		return 0, false
	}
	return gh.sum / gh.weight, true
}

// gsPair is one push-sum share.
type gsPair struct {
	Sum    float64
	Weight float64
}

const gsTagRound = 4

type gsHost struct {
	g       *Gossip
	isHq    bool
	started bool
	sum     float64
	weight  float64
}

func (h *gsHost) Start(ctx *sim.Context) {
	h.started = true
	switch h.g.Query.Kind {
	case agg.Avg:
		// Classic push-sum: sum = value, weight = 1 everywhere.
		h.sum, h.weight = float64(ctx.Value()), 1
	case agg.Count:
		// sum = 1 everywhere, weight seeded at h_q only: sum/weight → n.
		h.sum = 1
		if h.isHq {
			h.weight = 1
		}
	case agg.Sum:
		// sum = value everywhere, weight at h_q only: sum/weight → Σv.
		h.sum = float64(ctx.Value())
		if h.isHq {
			h.weight = 1
		}
	}
	ctx.SetTimer(1, gsTagRound)
}

func (h *gsHost) Receive(ctx *sim.Context, msg sim.Message) {
	if p, ok := msg.Payload.(gsPair); ok {
		h.sum += p.Sum
		h.weight += p.Weight
	}
}

func (h *gsHost) Timer(ctx *sim.Context, tag int) {
	if tag != gsTagRound {
		return
	}
	if ctx.Now() > sim.Time(h.g.Rounds) {
		return
	}
	// Push half our mass to one uniformly random neighbor.
	ns := ctx.Neighbors()
	if len(ns) > 0 && (h.sum != 0 || h.weight != 0) {
		target := ns[ctx.Rand().Intn(len(ns))]
		half := gsPair{Sum: h.sum / 2, Weight: h.weight / 2}
		h.sum -= half.Sum
		h.weight -= half.Weight
		ctx.Send(target, half)
	}
	ctx.SetTimer(ctx.Now()+1, gsTagRound)
}
