package protocol

import (
	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/sim"
)

// Wildfire is the paper's protocol (§5.1). Broadcast floods the query with
// the sender's partial aggregate piggybacked (footnote 4); from the moment
// a host becomes active it participates in convergecast: whenever its
// partial aggregate changes it refloods the new partial to its neighbors.
// Because the combine function is duplicate-insensitive, values may travel
// along every surviving path, which is what buys Single-Site Validity.
//
// The protocol operates in the paper's synchronous-round style: all
// messages arriving at a host in the same tick are combined first and at
// most one updated partial per tick is sent out (Example 5.1 walks exactly
// such rounds). Per-neighbor duplicate suppression skips neighbors that
// are already known to hold the host's current partial — the Fig. 4 /
// Example 5.1 "skips sending the value back" refinement generalized.
//
// Two engineering optimizations from §5.3 are implemented:
//
//   - EarlyDeadline: a host at distance l from h_q participates until
//     (2D̂ − l + 1)δ instead of 2D̂δ (a message sent later could not reach
//     h_q in time anyway).
//   - The wireless medium optimization is inherited from the simulator:
//     under sim.MediumWireless a send-to-all-neighbors costs one message.
type Wildfire struct {
	Query Query
	// EarlyDeadline enables the per-distance participation deadline.
	EarlyDeadline bool
	// ValueFn, when non-nil, overrides the attribute value a host
	// contributes; it receives the host ID and its broadcast distance
	// from h_q. This realizes the ad-hoc query model of §3.1 (values
	// "generated at each host in a query-dependent manner") — the
	// DiameterProbe uses it to aggregate distances instead of stored
	// values.
	ValueFn func(h graph.HostID, dist int) int64

	hosts []*wfHost
}

// NewWildfire returns an uninstalled WILDFIRE instance with the §5.3
// early-deadline optimization enabled (as in the paper's evaluation).
func NewWildfire(q Query) *Wildfire {
	return &Wildfire{Query: q, EarlyDeadline: true}
}

// Name implements Protocol.
func (w *Wildfire) Name() string { return "wildfire" }

// Deadline implements Protocol.
func (w *Wildfire) Deadline() sim.Time { return w.Query.Deadline() }

// Install implements Protocol.
func (w *Wildfire) Install(nw *sim.Network) error {
	if err := w.Query.Validate(nw.Graph()); err != nil {
		return err
	}
	n := nw.Graph().Len()
	w.hosts = make([]*wfHost, n)
	for i := 0; i < n; i++ {
		h := &wfHost{w: w, isHq: graph.HostID(i) == w.Query.Hq}
		w.hosts[i] = h
		nw.SetHandler(graph.HostID(i), h)
	}
	return nil
}

// Result implements Protocol: the partial aggregate at h_q at the
// deadline.
func (w *Wildfire) Result() (float64, bool) {
	hq := w.hosts[w.Query.Hq]
	if hq == nil || !hq.active || hq.partial == nil {
		return 0, false
	}
	return hq.partial.Result(), true
}

// Partial exposes h_q's final partial aggregate (the oracle uses its
// sketches for sketch-level validity verification).
func (w *Wildfire) Partial() agg.Partial {
	hq := w.hosts[w.Query.Hq]
	if hq == nil {
		return nil
	}
	return hq.partial
}

// HostPartial exposes any host's final partial (tests use it).
func (w *Wildfire) HostPartial(h graph.HostID) agg.Partial { return w.hosts[h].partial }

// HostActive reports whether host h ever became active.
func (w *Wildfire) HostActive(h graph.HostID) bool { return w.hosts[h].active }

// HostInitial returns the partial aggregate host h held the instant it
// became active, before combining anything — its own contribution to the
// query. The oracle's sketch-level validity check needs these: h_q's final
// sketch must cover the OR of the initial sketches of every host in H_C
// and be covered by the OR over H_U (Theorem 5.3).
func (w *Wildfire) HostInitial(h graph.HostID) agg.Partial { return w.hosts[h].initial }

// wfBroadcast is the Phase I message [q, 0, D̂] with the sender's partial
// aggregate piggybacked (§5.1 footnote 4). Hop is the sender's distance
// from h_q plus one.
type wfBroadcast struct {
	Hop int
	A   agg.Partial
}

// wfConverge is the Phase II message [q, A_h'].
type wfConverge struct {
	A agg.Partial
}

const wfTagFlush = 3

type wfHost struct {
	w       *Wildfire
	isHq    bool
	active  bool
	dist    int // hops from h_q along the activation path
	partial agg.Partial
	initial agg.Partial // own contribution, frozen at activation
	// lastSent[n] is the partial most recently sent to neighbor n;
	// a neighbor already holding our exact state is skipped on flush.
	lastSent map[graph.HostID]agg.Partial
	// lastRecv[n] is the partial most recently received from neighbor n;
	// a neighbor whose known state dominates ours is skipped on flush
	// (it already holds everything we could tell it).
	lastRecv map[graph.HostID]agg.Partial
	dirty    bool
	flushing bool // a flush timer is pending for the current tick
}

// limit is this host's participation deadline.
func (h *wfHost) limit() sim.Time {
	full := sim.Time(2 * h.w.Query.DHat)
	if !h.w.EarlyDeadline || !h.active {
		return full
	}
	early := sim.Time(2*h.w.Query.DHat - h.dist + 1)
	if early > full {
		return full
	}
	return early
}

func (h *wfHost) Start(ctx *sim.Context) {
	if !h.isHq {
		return
	}
	h.activate(ctx, 0, nil)
	bc := wfBroadcast{Hop: 1, A: h.partial.Clone()}
	ctx.SendAll(bc)
	h.noteSentToAll(ctx, graph.None)
}

// activate initializes the host's state; incoming, when non-nil, is the
// piggybacked partial of the activating broadcast.
func (h *wfHost) activate(ctx *sim.Context, dist int, incoming agg.Partial) {
	h.active = true
	h.dist = dist
	value := ctx.Value()
	if h.w.ValueFn != nil {
		value = h.w.ValueFn(ctx.Self(), dist)
	}
	h.partial = agg.NewPartial(h.w.Query.Kind, value, h.w.Query.Params, ctx.Rand())
	h.initial = h.partial.Clone()
	h.lastSent = make(map[graph.HostID]agg.Partial, ctx.Degree())
	h.lastRecv = make(map[graph.HostID]agg.Partial, ctx.Degree())
	if incoming != nil {
		h.partial.Combine(incoming)
	}
}

func (h *wfHost) noteSentToAll(ctx *sim.Context, skip graph.HostID) {
	snapshot := h.partial.Clone()
	for _, n := range ctx.Neighbors() {
		if n == skip {
			continue
		}
		h.lastSent[n] = snapshot
	}
}

func (h *wfHost) Receive(ctx *sim.Context, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case wfBroadcast:
		h.onBroadcast(ctx, msg.From, m)
	case wfConverge:
		h.onConverge(ctx, msg.From, m.A)
	}
}

func (h *wfHost) onBroadcast(ctx *sim.Context, from graph.HostID, m wfBroadcast) {
	if h.active {
		// Fig. 3: an active host drops the Broadcast message — but the
		// piggybacked partial is still convergecast information (§5.1).
		h.onConverge(ctx, from, m.A)
		return
	}
	// Fig. 3 guard: activate only if t < 2D̂δ.
	if ctx.Now() >= sim.Time(2*h.w.Query.DHat) {
		return
	}
	h.activate(ctx, m.Hop, m.A)
	h.lastRecv[from] = m.A
	// Forward the query with our partial piggybacked (the first
	// convergecast message rides on the broadcast, footnote 4).
	ctx.SendAllExcept(from, wfBroadcast{Hop: h.dist + 1, A: h.partial.Clone()})
	h.noteSentToAll(ctx, from)
	// If combining changed anything relative to what the sender already
	// knows, the end-of-tick flush will reply to the sender (Example 5.1:
	// x sends A_x back to w; y skips because A_y equals what w sent).
	if !h.partial.Equal(m.A) {
		h.markDirty(ctx)
	} else {
		h.lastSent[from] = h.partial.Clone() // sender already holds this state
	}
}

func (h *wfHost) onConverge(ctx *sim.Context, from graph.HostID, a agg.Partial) {
	if !h.active {
		return // cannot hold a partial before activation
	}
	// Fig. 4 guard: participate only until the (possibly early) deadline.
	if ctx.Now() > h.limit() {
		return
	}
	h.lastRecv[from] = a
	changed := h.partial.Combine(a)
	if h.partial.Equal(a) {
		// The sender holds exactly our state now; no need to update it.
		h.lastSent[from] = h.partial.Clone()
	}
	if changed {
		h.markDirty(ctx)
		return
	}
	if !h.partial.Equal(a) {
		// We learned nothing but the sender lags behind (Fig. 4's
		// else-branch): schedule the catch-up reply with the same batch.
		h.markDirty(ctx)
	}
}

// markDirty schedules a flush at the end of the current tick; all
// messages arriving this tick are combined before anything is sent, which
// realizes the paper's synchronous rounds (Example 5.1).
func (h *wfHost) markDirty(ctx *sim.Context) {
	h.dirty = true
	if !h.flushing {
		h.flushing = true
		ctx.SetTimer(ctx.Now(), wfTagFlush)
	}
}

func (h *wfHost) Timer(ctx *sim.Context, tag int) {
	if tag != wfTagFlush {
		return
	}
	h.flushing = false
	if !h.dirty || !h.active {
		return
	}
	h.dirty = false
	if ctx.Now() > h.limit() {
		return
	}
	if ctx.Medium() == sim.MediumWireless {
		// One radio transmission reaches everyone; selective suppression
		// saves nothing (§5.3).
		ctx.SendAll(wfConverge{A: h.partial.Clone()})
		h.noteSentToAll(ctx, graph.None)
		return
	}
	snapshot := h.partial.Clone()
	for _, n := range ctx.Neighbors() {
		if prev, ok := h.lastSent[n]; ok && prev.Equal(snapshot) {
			continue
		}
		if known, ok := h.lastRecv[n]; ok && known.Dominates(snapshot) {
			continue // the neighbor provably holds a superset already
		}
		ctx.Send(n, wfConverge{A: snapshot})
		h.lastSent[n] = snapshot
	}
}
