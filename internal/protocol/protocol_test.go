package protocol

import (
	"math"
	"testing"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/sim"
)

func params() agg.Params { return agg.Params{Vectors: 16, Bits: 32} }

func newNet(g *graph.Graph, values []int64, seed int64) *sim.Network {
	return sim.NewNetwork(sim.Config{Graph: g, Seed: seed, Values: values})
}

// fig5Network builds the 4-host P2P network of Example 5.1 / Fig. 5:
// w(5) — x(15), w — y(1), x — z(25), y — z.
func fig5Network() (*graph.Graph, []int64) {
	g := graph.New(4)
	const w, x, y, z = 0, 1, 2, 3
	g.AddEdge(w, x)
	g.AddEdge(w, y)
	g.AddEdge(x, z)
	g.AddEdge(y, z)
	return g, []int64{5, 15, 1, 25}
}

func TestExactPartial(t *testing.T) {
	p := NewExactPartial(10)
	p.Merge(NewExactPartial(4))
	p.Merge(NewExactPartial(20))
	if p.Result(agg.Count) != 3 || p.Result(agg.Sum) != 34 ||
		p.Result(agg.Min) != 4 || p.Result(agg.Max) != 20 {
		t.Fatalf("exact partial wrong: %+v", p)
	}
	if math.Abs(p.Result(agg.Avg)-34.0/3) > 1e-12 {
		t.Fatalf("avg = %v", p.Result(agg.Avg))
	}
	var zero ExactPartial
	if zero.Result(agg.Avg) != 0 {
		t.Fatal("empty avg should be 0")
	}
	zero.Merge(p.Clone())
	if zero.Count != 3 {
		t.Fatal("merge into zero partial should copy")
	}
	p2 := p.Clone()
	p2.Merge(&ExactPartial{})
	if p2.Count != 3 {
		t.Fatal("merging empty partial should be a no-op")
	}
}

func TestQueryValidate(t *testing.T) {
	g := graph.New(3)
	if err := (Query{Kind: agg.Count, Hq: 0, DHat: 0, Params: params()}).Validate(g); err == nil {
		t.Fatal("DHat=0 should fail validation")
	}
	if err := (Query{Kind: agg.Count, Hq: 5, DHat: 2, Params: params()}).Validate(g); err == nil {
		t.Fatal("out-of-range hq should fail")
	}
	if err := (Query{Kind: agg.Count, Hq: 0, DHat: 2}).Validate(g); err == nil {
		t.Fatal("zero params should fail")
	}
	if err := (Query{Kind: agg.Count, Hq: 0, DHat: 2, Params: params()}).Validate(g); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
}

// Example 5.1: WILDFIRE computes max = 25 on the Fig. 5 network.
func TestWildfireExample51Max(t *testing.T) {
	g, vals := fig5Network()
	q := Query{Kind: agg.Max, Hq: 0, DHat: 3, Params: params()}
	w := NewWildfire(q)
	v, _, err := Run(w, newNet(g, vals, 1))
	if err != nil {
		t.Fatal(err)
	}
	if v != 25 {
		t.Fatalf("max = %v, want 25", v)
	}
}

// Example 5.1's failure discussion: if x fails, w still obtains z's value
// through y; if both x and y fail, w outputs its own 5 (H_C = {w}).
func TestWildfireRedundantPaths(t *testing.T) {
	g, vals := fig5Network()
	q := Query{Kind: agg.Max, Hq: 0, DHat: 3, Params: params()}

	w := NewWildfire(q)
	nw := newNet(g, vals, 1)
	nw.FailAt(1, 1) // x fails as the broadcast reaches it
	if v, _, err := Run(w, nw); err != nil || v != 25 {
		t.Fatalf("with x failed: v=%v err=%v, want 25 via y", v, err)
	}

	w2 := NewWildfire(q)
	nw2 := newNet(g, vals, 1)
	nw2.FailAt(1, 1)
	nw2.FailAt(2, 1) // both x and y fail
	if v, _, err := Run(w2, nw2); err != nil || v != 5 {
		t.Fatalf("with x,y failed: v=%v err=%v, want 5 (H_C={w})", v, err)
	}
}

func TestWildfireMinFailureFree(t *testing.T) {
	g, vals := fig5Network()
	q := Query{Kind: agg.Min, Hq: 0, DHat: 3, Params: params()}
	v, _, err := Run(NewWildfire(q), newNet(g, vals, 1))
	if err != nil || v != 1 {
		t.Fatalf("min = %v (err %v), want 1", v, err)
	}
}

func TestWildfireCountSumEstimates(t *testing.T) {
	// A 64-host random-ish graph; failure-free count should estimate 64
	// within the FM factor and sum should estimate the total.
	g := graph.New(64)
	for i := 1; i < 64; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID((i*7)%i))
	}
	for i := 0; i < 64; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID((i+1)%64))
	}
	vals := make([]int64, 64)
	var total int64
	for i := range vals {
		vals[i] = int64(10 + i)
		total += vals[i]
	}
	qc := Query{Kind: agg.Count, Hq: 0, DHat: 12, Params: params()}
	vc, _, err := Run(NewWildfire(qc), newNet(g, vals, 2))
	if err != nil {
		t.Fatal(err)
	}
	if vc < 64/6 || vc > 64*6 {
		t.Fatalf("count estimate %v far from 64", vc)
	}
	qs := Query{Kind: agg.Sum, Hq: 0, DHat: 12, Params: params()}
	vs, _, err := Run(NewWildfire(qs), newNet(g, vals, 3))
	if err != nil {
		t.Fatal(err)
	}
	if vs < float64(total)/6 || vs > float64(total)*6 {
		t.Fatalf("sum estimate %v far from %d", vs, total)
	}
}

func TestWildfireAvg(t *testing.T) {
	g := graph.New(32)
	for i := 1; i < 32; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID(i-1))
	}
	vals := make([]int64, 32)
	for i := range vals {
		vals[i] = 50
	}
	q := Query{Kind: agg.Avg, Hq: 0, DHat: 40, Params: params()}
	v, _, err := Run(NewWildfire(q), newNet(g, vals, 4))
	if err != nil {
		t.Fatal(err)
	}
	if v < 50.0/4 || v > 50.0*4 {
		t.Fatalf("avg estimate %v far from 50", v)
	}
}

// Example 1.1: SPANNINGTREE loses a whole subtree when an interior host
// fails after broadcast, while WILDFIRE does not.
func TestSpanningTreeLosesSubtree(t *testing.T) {
	// Star-of-chains: hq=0 at the head of a chain 0-1-2-3-4-5.
	g := graph.New(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID(i+1))
	}
	vals := []int64{1, 1, 1, 1, 1, 1}
	q := Query{Kind: agg.Count, Hq: 0, DHat: 6, Params: params()}

	// Failure-free: exact count 6.
	st := NewSpanningTree(q)
	if v, _, err := Run(st, newNet(g, vals, 1)); err != nil || v != 6 {
		t.Fatalf("failure-free spanning tree count = %v (err %v), want 6", v, err)
	}

	// Host 1 fails after broadcast but before its report (reports flow at
	// 2D̂−l; host 1 reports at t=11, so fail at t=8): counts 2..5 are lost.
	st2 := NewSpanningTree(q)
	nw := newNet(g, vals, 1)
	nw.FailAt(1, 8)
	v, _, err := Run(st2, nw)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("spanning tree count with interior failure = %v, want 1 (subtree lost)", v)
	}
}

func TestSpanningTreeParentAssignment(t *testing.T) {
	g, vals := fig5Network()
	q := Query{Kind: agg.Count, Hq: 0, DHat: 3, Params: params()}
	st := NewSpanningTree(q)
	if _, _, err := Run(st, newNet(g, vals, 1)); err != nil {
		t.Fatal(err)
	}
	if st.Parent(0) != graph.None {
		t.Fatal("root must have no parent")
	}
	if st.Parent(1) != 0 || st.Parent(2) != 0 {
		t.Fatalf("x,y should parent to w: got %d, %d", st.Parent(1), st.Parent(2))
	}
	if p := st.Parent(3); p != 1 && p != 2 {
		t.Fatalf("z should parent to x or y, got %d", p)
	}
}

// Theorem 4.4 construction: 2n+2 hosts in a cycle plus a pendant at the
// antipode. If h_q's neighbor on the longer side fails after broadcast,
// SPANNINGTREE returns at most |H_C|/2.
func TestTheorem44SpanningTreeArbitrarilyBad(t *testing.T) {
	const n = 8 // cycle of 2n+2 = 18 hosts + pendant
	cycleLen := 2*n + 2
	g := graph.New(cycleLen + 1)
	for i := 0; i < cycleLen; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID((i+1)%cycleLen))
	}
	pendant := graph.HostID(cycleLen)
	g.AddEdge(pendant, graph.HostID(n+1)) // connected at the antipode
	vals := make([]int64, g.Len())
	for i := range vals {
		vals[i] = 1
	}
	q := Query{Kind: agg.Count, Hq: 0, DHat: cycleLen, Params: params()}
	st := NewSpanningTree(q)
	nw := newNet(g, vals, 1)
	// Host 1 (h_q's neighbor on one side) fails right after forwarding the
	// broadcast: its chain of the cycle reports through it and is lost.
	nw.FailAt(1, 3)
	v, _, err := Run(st, nw)
	if err != nil {
		t.Fatal(err)
	}
	// H_C = everyone except host 1 (the cycle keeps the rest connected):
	// |H_C| = 2n+2. The theorem promises v ≤ |H_C|/2 for this instance.
	hc := float64(cycleLen)
	if v > hc/2 {
		t.Fatalf("spanning tree count = %v, theorem expects ≤ %v", v, hc/2)
	}
	// WILDFIRE on the same run stays valid: count estimate must cover all
	// of H_C up to the FM factor; with exact min/max we can assert
	// tightly, so check max over values 1..n instead.
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	qm := Query{Kind: agg.Max, Hq: 0, DHat: cycleLen, Params: params()}
	w := NewWildfire(qm)
	nw2 := newNet(g, vals, 1)
	nw2.FailAt(1, 3)
	vm, _, err := Run(w, nw2)
	if err != nil {
		t.Fatal(err)
	}
	if vm != float64(g.Len()) {
		t.Fatalf("wildfire max = %v, want %d (reaches the far side around the cycle)", vm, g.Len())
	}
}

func TestDAGSurvivesSingleParentFailure(t *testing.T) {
	// Diamond: 0-(1,2)-3 then a tail 3-4. DAG with k=2 gives host 3 two
	// parents; killing parent 1 after broadcast must not lose 3 and 4.
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	vals := []int64{0, 0, 0, 0, 99}
	q := Query{Kind: agg.Max, Hq: 0, DHat: 4, Params: params()}

	d := NewDAG(q, 2)
	nw := newNet(g, vals, 1)
	nw.FailAt(1, 4) // after broadcast (t≤2), before reports (t=2D̂−l≥5)
	v, _, err := Run(d, nw)
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Fatalf("dag(k=2) max = %v, want 99 via surviving parent", v)
	}
	if len(d.Parents(3)) != 2 {
		t.Fatalf("host 3 parents = %v, want 2", d.Parents(3))
	}

	// SPANNINGTREE on the same failure may lose the tail (if 3 parented
	// through 1). Host 3's parent is whichever of 1,2 delivered first —
	// deterministic per seed; assert only that DAG ≥ ST here.
	st := NewSpanningTree(q)
	nw2 := newNet(g, vals, 1)
	nw2.FailAt(1, 4)
	vs, _, err := Run(st, nw2)
	if err != nil {
		t.Fatal(err)
	}
	if vs > v {
		t.Fatalf("spanning tree (%v) beat dag (%v) under failure", vs, v)
	}
}

func TestDAGRequiresPositiveK(t *testing.T) {
	g, vals := fig5Network()
	q := Query{Kind: agg.Count, Hq: 0, DHat: 3, Params: params()}
	d := NewDAG(q, 0)
	if err := d.Install(newNet(g, vals, 1)); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestDAGCountFailureFree(t *testing.T) {
	g, vals := fig5Network()
	q := Query{Kind: agg.Count, Hq: 0, DHat: 3, Params: params()}
	v, _, err := Run(NewDAG(q, 3), newNet(g, vals, 5))
	if err != nil {
		t.Fatal(err)
	}
	if v < 1 || v > 4*8 {
		t.Fatalf("dag count estimate = %v for 4 hosts", v)
	}
}

func TestAllReportExactFailureFree(t *testing.T) {
	g, vals := fig5Network()
	for _, k := range []agg.Kind{agg.Min, agg.Max, agg.Count, agg.Sum, agg.Avg} {
		q := Query{Kind: k, Hq: 0, DHat: 3, Params: params()}
		ar := NewAllReport(q)
		v, _, err := Run(ar, newNet(g, vals, 1))
		if err != nil {
			t.Fatal(err)
		}
		want := agg.Exact(k, vals)
		if v != want {
			t.Fatalf("allreport %v = %v, want %v", k, v, want)
		}
	}
}

func TestAllReportCollectsAll(t *testing.T) {
	g, vals := fig5Network()
	q := Query{Kind: agg.Count, Hq: 0, DHat: 3, Params: params()}
	ar := NewAllReport(q)
	if _, _, err := Run(ar, newNet(g, vals, 1)); err != nil {
		t.Fatal(err)
	}
	if ar.Reports() != 4 {
		t.Fatalf("reports = %d, want 4", ar.Reports())
	}
}

func TestAllReportLossUnderRelayFailure(t *testing.T) {
	// Chain 0-1-2: if 1 dies before relaying 2's report, the report is
	// lost (the documented deviation from the abstract model).
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	vals := []int64{1, 1, 1}
	q := Query{Kind: agg.Count, Hq: 0, DHat: 3, Params: params()}
	ar := NewAllReport(q)
	nw := newNet(g, vals, 1)
	nw.FailAt(1, 2) // 1 reported at t=1→arrives t=2; 2's report arrives at 1 at t=3: dropped
	v, _, err := Run(ar, nw)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("allreport count = %v, want 2 (hq + host 1)", v)
	}
}

func TestRandomizedReportEstimate(t *testing.T) {
	// 400-host connected graph, p = 0.5: estimate should land near 400.
	n := 400
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID((i-1)/2)) // binary tree
	}
	vals := make([]int64, n)
	q := Query{Kind: agg.Count, Hq: 0, DHat: 12, Params: params()}
	rr := NewRandomizedReport(q, 0.5)
	v, stats, err := Run(rr, newNet(g, vals, 6))
	if err != nil {
		t.Fatal(err)
	}
	if v < float64(n)*0.7 || v > float64(n)*1.3 {
		t.Fatalf("randomized estimate %v far from %d", v, n)
	}
	// Sampling must send fewer report messages than ALLREPORT would.
	ar := NewAllReport(q)
	_, statsAll, err := Run(ar, newNet(g, vals, 6))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesSent >= statsAll.MessagesSent {
		t.Fatalf("randomized (%d msgs) not cheaper than allreport (%d)",
			stats.MessagesSent, statsAll.MessagesSent)
	}
}

func TestReportProbability(t *testing.T) {
	p := ReportProbability(0.1, 0.05, 100000)
	if p <= 0 || p > 1 {
		t.Fatalf("p = %v out of range", p)
	}
	if ReportProbability(0.1, 0.05, 10) != 1 {
		t.Fatal("tiny n should clamp p to 1")
	}
	if ReportProbability(0, 0.05, 1000) != 1 || ReportProbability(0.1, 0, 1000) != 1 {
		t.Fatal("degenerate parameters should clamp to 1")
	}
}

func TestRandomizedReportValidation(t *testing.T) {
	g, vals := fig5Network()
	q := Query{Kind: agg.Count, Hq: 0, DHat: 3, Params: params()}
	rr := NewRandomizedReport(q, 0)
	if err := rr.Install(newNet(g, vals, 1)); err == nil {
		t.Fatal("p=0 should fail install")
	}
	rr2 := NewRandomizedReport(q, 1.5)
	if err := rr2.Install(newNet(g, vals, 1)); err == nil {
		t.Fatal("p>1 should fail install")
	}
}

func TestRunErrorWhenHqFails(t *testing.T) {
	g, vals := fig5Network()
	q := Query{Kind: agg.Max, Hq: 0, DHat: 3, Params: params()}
	w := NewWildfire(q)
	nw := newNet(g, vals, 1)
	if err := w.Install(nw); err != nil {
		t.Fatal(err)
	}
	// hq never starts because we kill it at t=0 via a pre-start trick: we
	// cannot fail before Start, so instead verify Result ok=false when no
	// handler was started at all (fresh instance).
	w2 := NewWildfire(q)
	if err := w2.Install(newNet(g, vals, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := w2.Result(); ok {
		t.Fatal("result before run should not be ok")
	}
}

func TestWildfireCheaperForMinThanCount(t *testing.T) {
	// §6.6: early aggregation during broadcast suppresses min/max traffic
	// relative to count (sketches keep changing, scalars saturate).
	g := graph.New(100)
	for i := 1; i < 100; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID((i-1)/2))
	}
	for i := 0; i < 99; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID(i+1))
	}
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(100 - i)
	}
	run := func(k agg.Kind) int64 {
		q := Query{Kind: k, Hq: 0, DHat: 10, Params: params()}
		_, st, err := Run(NewWildfire(q), newNet(g, vals, 7))
		if err != nil {
			t.Fatal(err)
		}
		return st.MessagesSent
	}
	if mi, cnt := run(agg.Min), run(agg.Count); mi >= cnt {
		t.Fatalf("min traffic (%d) should undercut count traffic (%d)", mi, cnt)
	}
}

func TestWildfireEarlyDeadlineReducesOrEqualsTraffic(t *testing.T) {
	g := graph.New(64)
	for i := 1; i < 64; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID((i-1)/2))
	}
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i)
	}
	run := func(early bool) int64 {
		q := Query{Kind: agg.Count, Hq: 0, DHat: 20, Params: params()}
		w := NewWildfire(q)
		w.EarlyDeadline = early
		_, st, err := Run(w, newNet(g, vals, 8))
		if err != nil {
			t.Fatal(err)
		}
		return st.MessagesSent
	}
	if e, f := run(true), run(false); e > f {
		t.Fatalf("early deadline increased traffic: %d > %d", e, f)
	}
}

func TestProtocolNames(t *testing.T) {
	q := Query{Kind: agg.Count, Hq: 0, DHat: 1, Params: params()}
	if NewWildfire(q).Name() != "wildfire" ||
		NewSpanningTree(q).Name() != "spanningtree" ||
		NewDAG(q, 2).Name() != "dag(k=2)" ||
		NewAllReport(q).Name() != "allreport" ||
		NewRandomizedReport(q, 0.5).Name() != "randomizedreport" {
		t.Fatal("protocol names wrong")
	}
}
