package protocol

import (
	"math/rand"
	"testing"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/graph"
	"validity/internal/oracle"
	"validity/internal/sim"
	"validity/internal/topology"
)

// Two communities joined by a single bridge host; killing the bridge
// partitions the network (§3.2's "overlay network partitions").
func bridged() (*graph.Graph, graph.HostID) {
	g := graph.New(21)
	// Community A: 0..9 (ring), community B: 11..20 (ring), bridge: 10.
	for i := 0; i < 10; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID((i+1)%10))
	}
	for i := 11; i < 21; i++ {
		next := i + 1
		if next == 21 {
			next = 11
		}
		g.AddEdge(graph.HostID(i), graph.HostID(next))
	}
	g.AddEdge(9, 10)
	g.AddEdge(10, 11)
	return g, 10
}

func TestPartitionMidQueryWildfireRespectsHC(t *testing.T) {
	g, bridge := bridged()
	vals := make([]int64, g.Len())
	for i := range vals {
		vals[i] = int64(i + 1) // max lives at host 20, across the bridge
	}
	q := Query{Kind: agg.Max, Hq: 0, DHat: 25, Params: params()}

	// Bridge dies before the broadcast can cross (it sits ≥ 5 hops out;
	// kill at t=1): community B never participates, H_C = community A +
	// nothing beyond, and the result must be the max of A.
	w := NewWildfire(q)
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1, Values: vals})
	nw.FailAt(bridge, 1)
	v, _, err := Run(w, nw)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Fatalf("partitioned max = %v, want 10 (community A only)", v)
	}
	sched := churn.Schedule{{H: bridge, T: 1}}
	b := oracle.Compute(g, vals, 0, sched, q.Deadline(), agg.Max)
	if !b.Valid(v, 0) {
		t.Fatalf("partitioned result %v outside oracle [%v,%v]", v, b.LowerValue, b.UpperValue)
	}

	// Bridge dies after the flood crossed but before convergecast can
	// return (bridge ~6 hops out; flood crosses by t≈7; kill at 9).
	// Values from B are then not required — B has no stable path — but
	// anything that made it back early may legitimately be included
	// (H ⊆ H_U). The result must be ≥ max(A).
	w2 := NewWildfire(q)
	nw2 := sim.NewNetwork(sim.Config{Graph: g, Seed: 1, Values: vals})
	nw2.FailAt(bridge, 9)
	v2, _, err := Run(w2, nw2)
	if err != nil {
		t.Fatal(err)
	}
	if v2 < 10 || v2 > 21 {
		t.Fatalf("late-partition max = %v, want within [10,21]", v2)
	}
	sched2 := churn.Schedule{{H: bridge, T: 9}}
	b2 := oracle.Compute(g, vals, 0, sched2, q.Deadline(), agg.Max)
	if !b2.Valid(v2, 0) {
		t.Fatalf("late-partition result %v outside oracle [%v,%v]", v2, b2.LowerValue, b2.UpperValue)
	}
}

func TestJoinersMayContributeButNeverRequired(t *testing.T) {
	// A host joining mid-query sits in H_U but not H_C: its value may or
	// may not appear; validity holds either way. Join host 3 (value 99)
	// onto a 3-chain at t=2 (while the query is live).
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	vals := []int64{1, 2, 3, 99}
	q := Query{Kind: agg.Max, Hq: 0, DHat: 6, Params: params()}
	w := NewWildfire(q)
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1, Values: vals})
	if err := w.Install(nw); err != nil {
		t.Fatal(err)
	}
	nw.SetInitiallyDead(3)
	nw.JoinAt(3, 2)
	nw.Run(q.Deadline())
	v, ok := w.Result()
	if !ok {
		t.Fatal("no result")
	}
	// H_C max = 3; H_U max = 99. Either is a valid answer.
	if v != 3 && v != 99 {
		t.Fatalf("max with joiner = %v, want 3 or 99", v)
	}
}

func TestAllNeighborsOfHqFail(t *testing.T) {
	// Star: hq in the center, all leaves die at t=1 (before their
	// convergecast arrives at t≥2... leaves receive at 1, reply arrives
	// at 2; dead by then means hq only has itself).
	g := graph.New(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, graph.HostID(i))
	}
	vals := []int64{7, 50, 60, 70, 80}
	q := Query{Kind: agg.Max, Hq: 0, DHat: 2, Params: params()}
	w := NewWildfire(q)
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1, Values: vals})
	for i := 1; i < 5; i++ {
		nw.FailAt(graph.HostID(i), 1)
	}
	v, _, err := Run(w, nw)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("isolated hq max = %v, want its own 7 (H_C = {hq})", v)
	}
}

func TestWirelessGridValidityUnderChurn(t *testing.T) {
	g := topology.NewGrid(12, 12)
	vals := make([]int64, g.Len())
	for i := range vals {
		vals[i] = int64(i%37 + 1)
	}
	q := Query{Kind: agg.Max, Hq: 0, DHat: 14, Params: params()}
	for seed := int64(0); seed < 3; seed++ {
		w := NewWildfire(q)
		nw := sim.NewNetwork(sim.Config{Graph: g, Medium: sim.MediumWireless, Seed: seed, Values: vals})
		sched := churnSchedule(g.Len(), 20, seed, q.Deadline())
		sched.Apply(nw)
		v, _, err := Run(w, nw)
		if err != nil {
			t.Fatal(err)
		}
		b := oracle.Compute(g, vals, 0, sched, q.Deadline(), agg.Max)
		if !b.Valid(v, 0) {
			t.Fatalf("seed %d: wireless max %v outside [%v,%v]", seed, v, b.LowerValue, b.UpperValue)
		}
	}
}

func churnSchedule(n, r int, seed int64, deadline sim.Time) churn.Schedule {
	return churn.UniformRemoval(n, r, 0, 0, deadline, newRand(seed))
}

// newRand is a tiny helper so churnSchedule reads cleanly.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
