package protocol

import (
	"encoding/binary"
	"fmt"
	"math"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/wire"
)

// The node runtime (internal/node) carries protocol messages over
// pluggable transports; the TCP transport ships them as version-2 wire
// frames, which need every concrete message type bound to an explicit
// payload tag and codec here. The tags are pinned — they are the wire
// format, and reordering this block would break cross-version fleets.
// Tags 1–239 belong to this package; wire.TagReservedBase and above are
// for out-of-tree payloads (test harnesses).
//
// Body layouts (little-endian):
//
//	wfBroadcast:  hop u32  | has u8 | partial?
//	wfConverge:   has u8   | partial?
//	stBroadcast:  level u32
//	stReport:     has u8   | count i64 | sum i64 | min i64 | max i64
//	dagBroadcast: level u32
//	dagReport:    has u8   | partial?
//	arBroadcast:  (empty)
//	arReport:     origin u32 | value i64
//	rrBroadcast:  (empty)
//	rrReport:     (empty)
//	gsPair:       sum f64 | weight f64
//
// "partial?" is internal/wire's partial encoding, present iff has = 1.
const (
	tagWfBroadcast  uint8 = 1
	tagWfConverge   uint8 = 2
	tagStBroadcast  uint8 = 3
	tagStReport     uint8 = 4
	tagDagBroadcast uint8 = 5
	tagDagReport    uint8 = 6
	tagArBroadcast  uint8 = 7
	tagArReport     uint8 = 8
	tagRrBroadcast  uint8 = 9
	tagRrReport     uint8 = 10
	tagGsPair       uint8 = 11
)

func init() {
	wire.RegisterTagger(func(payload any) (uint8, bool) {
		switch payload.(type) {
		case wfBroadcast:
			return tagWfBroadcast, true
		case wfConverge:
			return tagWfConverge, true
		case stBroadcast:
			return tagStBroadcast, true
		case stReport:
			return tagStReport, true
		case dagBroadcast:
			return tagDagBroadcast, true
		case dagReport:
			return tagDagReport, true
		case arBroadcast:
			return tagArBroadcast, true
		case arReport:
			return tagArReport, true
		case rrBroadcast:
			return tagRrBroadcast, true
		case rrReport:
			return tagRrReport, true
		case gsPair:
			return tagGsPair, true
		}
		return 0, false
	})

	wire.RegisterPayload(tagWfBroadcast, wire.PayloadCodec{
		Name: "wfBroadcast",
		Append: func(buf []byte, payload any) ([]byte, error) {
			m := payload.(wfBroadcast)
			buf, err := appendU32(buf, m.Hop, "hop")
			if err != nil {
				return nil, err
			}
			return appendOptPartial(buf, m.A)
		},
		Size: func(payload any) (int, error) {
			return sizeOptPartial(4, payload.(wfBroadcast).A)
		},
		Decode: func(body []byte) (any, error) {
			if len(body) < 4 {
				return nil, fmt.Errorf("truncated wfBroadcast")
			}
			p, err := decodeOptPartial(body[4:])
			if err != nil {
				return nil, err
			}
			return wfBroadcast{Hop: int(binary.LittleEndian.Uint32(body[0:4])), A: p}, nil
		},
	})

	wire.RegisterPayload(tagWfConverge, wire.PayloadCodec{
		Name: "wfConverge",
		Append: func(buf []byte, payload any) ([]byte, error) {
			return appendOptPartial(buf, payload.(wfConverge).A)
		},
		Size: func(payload any) (int, error) {
			return sizeOptPartial(0, payload.(wfConverge).A)
		},
		Decode: func(body []byte) (any, error) {
			p, err := decodeOptPartial(body)
			if err != nil {
				return nil, err
			}
			return wfConverge{A: p}, nil
		},
	})

	wire.RegisterPayload(tagStBroadcast, wire.PayloadCodec{
		Name: "stBroadcast",
		Append: func(buf []byte, payload any) ([]byte, error) {
			return appendU32(buf, payload.(stBroadcast).Level, "level")
		},
		Size: func(any) (int, error) { return 4, nil },
		Decode: func(body []byte) (any, error) {
			if len(body) != 4 {
				return nil, fmt.Errorf("stBroadcast body is %d bytes, want 4", len(body))
			}
			return stBroadcast{Level: int(binary.LittleEndian.Uint32(body))}, nil
		},
	})

	wire.RegisterPayload(tagStReport, wire.PayloadCodec{
		Name: "stReport",
		Append: func(buf []byte, payload any) ([]byte, error) {
			m := payload.(stReport)
			if m.A == nil {
				return append(buf, 0), nil
			}
			buf = append(buf, 1)
			for _, v := range [...]int64{m.A.Count, m.A.Sum, m.A.Min, m.A.Max} {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
			return buf, nil
		},
		Size: func(payload any) (int, error) {
			if payload.(stReport).A == nil {
				return 1, nil
			}
			return 1 + 4*8, nil
		},
		Decode: func(body []byte) (any, error) {
			if len(body) == 1 && body[0] == 0 {
				return stReport{}, nil
			}
			if len(body) != 1+4*8 || body[0] != 1 {
				return nil, fmt.Errorf("malformed stReport body (%d bytes)", len(body))
			}
			return stReport{A: &ExactPartial{
				Count: int64(binary.LittleEndian.Uint64(body[1:9])),
				Sum:   int64(binary.LittleEndian.Uint64(body[9:17])),
				Min:   int64(binary.LittleEndian.Uint64(body[17:25])),
				Max:   int64(binary.LittleEndian.Uint64(body[25:33])),
			}}, nil
		},
	})

	wire.RegisterPayload(tagDagBroadcast, wire.PayloadCodec{
		Name: "dagBroadcast",
		Append: func(buf []byte, payload any) ([]byte, error) {
			return appendU32(buf, payload.(dagBroadcast).Level, "level")
		},
		Size: func(any) (int, error) { return 4, nil },
		Decode: func(body []byte) (any, error) {
			if len(body) != 4 {
				return nil, fmt.Errorf("dagBroadcast body is %d bytes, want 4", len(body))
			}
			return dagBroadcast{Level: int(binary.LittleEndian.Uint32(body))}, nil
		},
	})

	wire.RegisterPayload(tagDagReport, wire.PayloadCodec{
		Name: "dagReport",
		Append: func(buf []byte, payload any) ([]byte, error) {
			return appendOptPartial(buf, payload.(dagReport).A)
		},
		Size: func(payload any) (int, error) {
			return sizeOptPartial(0, payload.(dagReport).A)
		},
		Decode: func(body []byte) (any, error) {
			p, err := decodeOptPartial(body)
			if err != nil {
				return nil, err
			}
			return dagReport{A: p}, nil
		},
	})

	registerEmpty(tagArBroadcast, "arBroadcast", arBroadcast{})
	wire.RegisterPayload(tagArReport, wire.PayloadCodec{
		Name: "arReport",
		Append: func(buf []byte, payload any) ([]byte, error) {
			m := payload.(arReport)
			buf, err := appendU32(buf, int(m.Origin), "origin")
			if err != nil {
				return nil, err
			}
			return binary.LittleEndian.AppendUint64(buf, uint64(m.Value)), nil
		},
		Size: func(any) (int, error) { return 4 + 8, nil },
		Decode: func(body []byte) (any, error) {
			if len(body) != 12 {
				return nil, fmt.Errorf("arReport body is %d bytes, want 12", len(body))
			}
			origin := binary.LittleEndian.Uint32(body[0:4])
			if origin > math.MaxInt32 {
				return nil, fmt.Errorf("arReport origin %d outside int32", origin)
			}
			return arReport{
				Origin: graph.HostID(origin),
				Value:  int64(binary.LittleEndian.Uint64(body[4:12])),
			}, nil
		},
	})
	registerEmpty(tagRrBroadcast, "rrBroadcast", rrBroadcast{})
	registerEmpty(tagRrReport, "rrReport", rrReport{})

	wire.RegisterPayload(tagGsPair, wire.PayloadCodec{
		Name: "gsPair",
		Append: func(buf []byte, payload any) ([]byte, error) {
			m := payload.(gsPair)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Sum))
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Weight)), nil
		},
		Size: func(any) (int, error) { return 16, nil },
		Decode: func(body []byte) (any, error) {
			if len(body) != 16 {
				return nil, fmt.Errorf("gsPair body is %d bytes, want 16", len(body))
			}
			return gsPair{
				Sum:    math.Float64frombits(binary.LittleEndian.Uint64(body[0:8])),
				Weight: math.Float64frombits(binary.LittleEndian.Uint64(body[8:16])),
			}, nil
		},
	})
}

// registerEmpty binds a field-less marker message whose entire information
// content is its tag.
func registerEmpty[T any](tag uint8, name string, zero T) {
	wire.RegisterPayload(tag, wire.PayloadCodec{
		Name:   name,
		Append: func(buf []byte, _ any) ([]byte, error) { return buf, nil },
		Size:   func(any) (int, error) { return 0, nil },
		Decode: func(body []byte) (any, error) {
			if len(body) != 0 {
				return nil, fmt.Errorf("%s body is %d bytes, want 0", name, len(body))
			}
			return zero, nil
		},
	})
}

// appendU32 encodes a non-negative int that must fit 32 bits (hop counts,
// tree levels, host ids).
func appendU32(buf []byte, v int, field string) ([]byte, error) {
	if v < 0 || v > math.MaxUint32 {
		return nil, fmt.Errorf("%s %d outside u32", field, v)
	}
	return binary.LittleEndian.AppendUint32(buf, uint32(v)), nil
}

// appendOptPartial encodes "has u8 | partial?": the optional piggybacked
// partial aggregate several message bodies end with.
func appendOptPartial(buf []byte, p agg.Partial) ([]byte, error) {
	if p == nil {
		return append(buf, 0), nil
	}
	k, ok := agg.KindOf(p)
	if !ok {
		return nil, fmt.Errorf("partial %T outside the wire format", p)
	}
	buf = append(buf, 1)
	return wire.AppendPartial(buf, k, p)
}

// sizeOptPartial is appendOptPartial's length plus a fixed prefix.
func sizeOptPartial(prefix int, p agg.Partial) (int, error) {
	if p == nil {
		return prefix + 1, nil
	}
	k, ok := agg.KindOf(p)
	if !ok {
		return 0, fmt.Errorf("partial %T outside the wire format", p)
	}
	n, err := wire.PartialSize(k, p)
	if err != nil {
		return 0, err
	}
	return prefix + 1 + n, nil
}

// decodeOptPartial parses "has u8 | partial?", enforcing that the partial
// consumes the body exactly.
func decodeOptPartial(body []byte) (agg.Partial, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("missing has-partial flag")
	}
	switch body[0] {
	case 0:
		if len(body) != 1 {
			return nil, fmt.Errorf("%d trailing bytes after empty partial", len(body)-1)
		}
		return nil, nil
	case 1:
		p, _, n, err := wire.DecodePartial(body[1:])
		if err != nil {
			return nil, err
		}
		if 1+n != len(body) {
			return nil, fmt.Errorf("%d trailing bytes after partial", len(body)-1-n)
		}
		return p, nil
	}
	return nil, fmt.Errorf("bad has-partial flag %d", body[0])
}
