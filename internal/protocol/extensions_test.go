package protocol

import (
	"math"
	"testing"

	"validity/internal/agg"
	"validity/internal/graph"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

func TestDiameterProbeFindsEccentricity(t *testing.T) {
	// Path of 9 hosts: eccentricity of host 0 is 8.
	g := graph.New(9)
	for i := 0; i < 8; i++ {
		g.AddEdge(graph.HostID(i), graph.HostID(i+1))
	}
	d := NewDiameterProbe(0)
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1})
	v, _, err := Run(d, nw)
	if err != nil {
		t.Fatal(err)
	}
	if v != 8 {
		t.Fatalf("probe eccentricity = %v, want 8", v)
	}
	if rec, ok := d.RecommendedDHat(); !ok || rec != 10 {
		t.Fatalf("recommended D̂ = %d/%v, want 10", rec, ok)
	}
}

func TestDiameterProbeOnTopologies(t *testing.T) {
	for _, topo := range []topology.Kind{topology.Random, topology.Gnutella} {
		g := topology.Generate(topo, 500, 1)
		truth := g.Eccentricity(0, nil)
		d := NewDiameterProbe(0)
		nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1})
		v, _, err := Run(d, nw)
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if int(v) != truth {
			t.Fatalf("%v: probe = %v, true eccentricity = %d", topo, v, truth)
		}
	}
}

func TestDiameterProbeUnderChurnStillValid(t *testing.T) {
	// Under churn the broadcast may detour around failed hosts, so the
	// probe can exceed the failure-free eccentricity — but never the
	// eccentricity of the survivor subgraph, which bounds every detour.
	g := topology.NewGrid(10, 10)
	alive := func(h graph.HostID) bool { return h != 55 && h != 56 }
	survivorEcc := g.Eccentricity(0, alive)
	d := NewDiameterProbe(0)
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1})
	nw.FailAt(graph.HostID(55), 2)
	nw.FailAt(graph.HostID(56), 2)
	v, _, err := Run(d, nw)
	if err != nil {
		t.Fatal(err)
	}
	if int(v) > survivorEcc {
		t.Fatalf("probe %v exceeds survivor eccentricity %d", v, survivorEcc)
	}
	if v < 1 {
		t.Fatalf("probe %v degenerate", v)
	}
}

func TestDiameterProbeResultBeforeRun(t *testing.T) {
	d := NewDiameterProbe(0)
	if _, ok := d.Result(); ok {
		t.Fatal("result before install should not be ok")
	}
	if _, ok := d.RecommendedDHat(); ok {
		t.Fatal("recommendation before install should not be ok")
	}
}

func TestGossipAvgConverges(t *testing.T) {
	g := topology.NewRandom(400, 6, 1)
	vals := zipfval.Default(1).Values(g.Len())
	truth := agg.Exact(agg.Avg, vals)
	q := Query{Kind: agg.Avg, Hq: 0, DHat: 4, Params: params()}
	gs := NewGossip(q, 60)
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1, Values: vals})
	v, _, err := Run(gs, nw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v/truth-1) > 0.05 {
		t.Fatalf("gossip avg = %v, truth %v (>5%% off after 60 rounds)", v, truth)
	}
	// Every host converges, not just h_q — gossip's defining property.
	for _, h := range []graph.HostID{1, 100, 399} {
		hv, ok := gs.HostEstimate(h)
		if !ok {
			t.Fatalf("host %d has no estimate", h)
		}
		if math.Abs(hv/truth-1) > 0.10 {
			t.Fatalf("host %d estimate %v far from %v", h, hv, truth)
		}
	}
}

func TestGossipCountConverges(t *testing.T) {
	g := topology.NewRandom(300, 6, 2)
	vals := make([]int64, g.Len())
	q := Query{Kind: agg.Count, Hq: 0, DHat: 4, Params: params()}
	gs := NewGossip(q, 80)
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 2, Values: vals})
	v, _, err := Run(gs, nw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v/300-1) > 0.05 {
		t.Fatalf("gossip count = %v, want ≈ 300", v)
	}
}

func TestGossipSumConverges(t *testing.T) {
	g := topology.NewRandom(300, 6, 3)
	vals := zipfval.Default(3).Values(g.Len())
	truth := agg.Exact(agg.Sum, vals)
	q := Query{Kind: agg.Sum, Hq: 0, DHat: 4, Params: params()}
	gs := NewGossip(q, 80)
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 3, Values: vals})
	v, _, err := Run(gs, nw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v/truth-1) > 0.05 {
		t.Fatalf("gossip sum = %v, truth %v", v, truth)
	}
}

func TestGossipRejectsMinMaxAndBadRounds(t *testing.T) {
	g := topology.NewRandom(50, 5, 1)
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 1})
	q := Query{Kind: agg.Min, Hq: 0, DHat: 4, Params: params()}
	if err := NewGossip(q, 10).Install(nw); err == nil {
		t.Fatal("gossip accepted min")
	}
	q.Kind = agg.Avg
	if err := NewGossip(q, 0).Install(nw); err == nil {
		t.Fatal("gossip accepted zero rounds")
	}
}

// §2.2's point, demonstrated: under churn, gossip loses mass with failed
// hosts and its count can drift without any bound the user could check —
// eventual consistency only. WILDFIRE under the same churn stays within
// the (checkable) oracle band at sketch level. We assert the qualitative
// difference: gossip's error grows with churn while its own state gives
// no indication.
func TestGossipLosesMassUnderChurn(t *testing.T) {
	g := topology.NewRandom(400, 6, 4)
	vals := make([]int64, g.Len())
	q := Query{Kind: agg.Count, Hq: 0, DHat: 4, Params: params()}

	run := func(failures int) float64 {
		gs := NewGossip(q, 80)
		nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 4, Values: vals})
		for i := 0; i < failures; i++ {
			nw.FailAt(graph.HostID(i+1), sim.Time(5+i%40))
		}
		v, _, err := Run(gs, nw)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	clean := run(0)
	churned := run(100)
	if math.Abs(clean/400-1) > 0.05 {
		t.Fatalf("failure-free gossip count %v off", clean)
	}
	// With 100 hosts failing mid-run, surviving mass is distorted; the
	// estimate must deviate noticeably more than the clean run.
	if math.Abs(churned-300) < 1 && math.Abs(clean-400) < 1 {
		t.Skip("gossip landed exactly on the post-churn count; acceptable but unusual")
	}
	if math.Abs(churned/clean-1) < 0.01 {
		t.Fatalf("churned gossip (%v) indistinguishable from clean (%v); expected drift", churned, clean)
	}
}

func TestGossipDeadlineAndName(t *testing.T) {
	q := Query{Kind: agg.Avg, Hq: 0, DHat: 4, Params: params()}
	gs := NewGossip(q, 25)
	if gs.Deadline() != 26 || gs.Name() != "gossip" {
		t.Fatalf("deadline=%d name=%q", gs.Deadline(), gs.Name())
	}
	if _, ok := gs.Result(); ok {
		t.Fatal("result before run should not be ok")
	}
}

func TestWildfireValueFn(t *testing.T) {
	g, vals := fig5Network()
	q := Query{Kind: agg.Max, Hq: 0, DHat: 3, Params: params()}
	w := NewWildfire(q)
	w.ValueFn = func(h graph.HostID, dist int) int64 { return int64(h) * 100 }
	v, _, err := Run(w, sim.NewNetwork(sim.Config{Graph: g, Seed: 1, Values: vals}))
	if err != nil {
		t.Fatal(err)
	}
	if v != 300 {
		t.Fatalf("ValueFn max = %v, want 300 (host 3 × 100)", v)
	}
}
