package protocol

import (
	"math/rand"
	"testing"

	"validity/internal/agg"
	"validity/internal/churn"
	"validity/internal/fm"
	"validity/internal/graph"
	"validity/internal/oracle"
	"validity/internal/sim"
	"validity/internal/topology"
	"validity/internal/zipfval"
)

// runUnderChurn executes protocol builder on a topology with R uniform
// removals and returns the result, the oracle bounds and the protocol.
func runUnderChurn(t *testing.T, g *graph.Graph, kind agg.Kind, r int, seed int64,
	build func(Query) Protocol) (float64, oracle.Bounds, Protocol) {
	t.Helper()
	vals := zipfval.Default(seed).Values(g.Len())
	dHat := g.DiameterSampled(2, nil) + 2
	q := Query{Kind: kind, Hq: 0, DHat: dHat, Params: agg.Params{Vectors: 16, Bits: 32}}
	sched := churn.UniformRemoval(g.Len(), r, q.Hq, 0, q.Deadline(), rand.New(rand.NewSource(seed)))
	nw := sim.NewNetwork(sim.Config{Graph: g, Seed: seed, Values: vals})
	sched.Apply(nw)
	p := build(q)
	v, _, err := Run(p, nw)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	b := oracle.Compute(g, vals, q.Hq, sched, q.Deadline(), kind)
	return v, b, p
}

// Theorem 5.1: WILDFIRE guarantees Single-Site Validity for min and max —
// exactly, since scalar combine is lossless. Check across topologies,
// churn levels and seeds.
func TestWildfireMinMaxValidityUnderChurn(t *testing.T) {
	topos := []*graph.Graph{
		topology.NewRandom(300, 5, 1),
		topology.NewPowerLaw(300, 2),
		topology.NewGrid(17, 17),
		topology.NewGnutella(300, 3),
	}
	for ti, g := range topos {
		for _, r := range []int{0, 30, 90} {
			for seed := int64(0); seed < 3; seed++ {
				for _, kind := range []agg.Kind{agg.Min, agg.Max} {
					v, b, _ := runUnderChurn(t, g, kind, r, seed+100*int64(ti),
						func(q Query) Protocol { return NewWildfire(q) })
					if !b.Valid(v, 0) {
						t.Fatalf("topo %d r=%d seed=%d: wildfire %v=%v outside oracle [%v,%v]",
							ti, r, seed, kind, v, b.LowerValue, b.UpperValue)
					}
				}
			}
		}
	}
}

// Theorem 5.3 sketch-level check: h_q's final count sketch must cover the
// OR of the initial sketches of every host in H_C, and must itself be
// covered by the OR over all hosts that ever activated (⊆ H_U). This is
// the exact guarantee, independent of FM estimation error.
func TestWildfireCountSketchLevelValidity(t *testing.T) {
	g := topology.NewGnutella(400, 4)
	for _, r := range []int{0, 40, 120} {
		for seed := int64(0); seed < 3; seed++ {
			v, b, p := runUnderChurn(t, g, agg.Count, r, seed,
				func(q Query) Protocol { return NewWildfire(q) })
			_ = v
			w := p.(*Wildfire)
			final := agg.Sketches(w.Partial())
			if len(final) != 1 {
				t.Fatal("count partial should carry one sketch")
			}
			// Lower bound: every H_C host's own contribution is covered.
			orHC := fm.NewSketch(16, 32)
			for _, h := range b.HC {
				init := w.HostInitial(h)
				if init == nil {
					t.Fatalf("r=%d seed=%d: H_C host %d never activated", r, seed, h)
				}
				orHC.Or(agg.Sketches(init)[0])
			}
			if !final[0].Covers(orHC) {
				t.Fatalf("r=%d seed=%d: final sketch misses H_C contributions", r, seed)
			}
			// Upper bound: nothing outside the union of activated hosts.
			orAll := fm.NewSketch(16, 32)
			for h := 0; h < g.Len(); h++ {
				if init := w.HostInitial(graph.HostID(h)); init != nil {
					orAll.Or(agg.Sketches(init)[0])
				}
			}
			if !orAll.Covers(final[0]) {
				t.Fatalf("r=%d seed=%d: final sketch contains bits from nowhere", r, seed)
			}
		}
	}
}

// The flip side (§6.5): under heavy churn SPANNINGTREE falls below the
// oracle's lower bound while WILDFIRE does not. Statistically a single
// seed could be lucky, so assert over several seeds that ST violates at
// least once on a deep topology and WILDFIRE never does (value-level with
// exact max).
func TestSpanningTreeViolatesValidityUnderChurn(t *testing.T) {
	g := topology.NewGrid(20, 20) // deep trees: most failure-sensitive (§6.5)
	stViolated := false
	for seed := int64(0); seed < 6; seed++ {
		v, b, _ := runUnderChurn(t, g, agg.Max, 80, seed,
			func(q Query) Protocol { return NewSpanningTree(q) })
		if !b.Valid(v, 0) {
			stViolated = true
		}
		vw, bw, _ := runUnderChurn(t, g, agg.Max, 80, seed,
			func(q Query) Protocol { return NewWildfire(q) })
		if !bw.Valid(vw, 0) {
			t.Fatalf("seed %d: wildfire max %v outside oracle [%v,%v]",
				seed, vw, bw.LowerValue, bw.UpperValue)
		}
	}
	if !stViolated {
		t.Fatal("spanning tree never violated validity under 20% churn on a grid (suspicious)")
	}
}

// WILDFIRE count stays within oracle bounds up to the FM factor while the
// best-effort protocols' exact counts dip below the lower bound.
func TestCountValidityComparisonUnderChurn(t *testing.T) {
	g := topology.NewGrid(20, 20)
	const r = 60
	var stBelow int
	for seed := int64(0); seed < 5; seed++ {
		vst, b, _ := runUnderChurn(t, g, agg.Count, r, seed,
			func(q Query) Protocol { return NewSpanningTree(q) })
		if vst < b.LowerValue {
			stBelow++
		}
		vwf, bw, _ := runUnderChurn(t, g, agg.Count, r, seed,
			func(q Query) Protocol { return NewWildfire(q) })
		// FM at c=16: allow a generous multiplicative factor.
		if !bw.ValidFactor(vwf, 6) {
			t.Fatalf("seed %d: wildfire count %v outside oracle factor band [%v,%v]",
				seed, vwf, bw.LowerValue, bw.UpperValue)
		}
	}
	if stBelow == 0 {
		t.Fatal("spanning tree count never fell below H_C bound under churn")
	}
}

// DAG(k=3) should lose less than SPANNINGTREE on average under churn.
func TestDAGBeatsSpanningTreeOnAverage(t *testing.T) {
	g := topology.NewGrid(16, 16)
	var stSum, dagSum float64
	const trials = 6
	for seed := int64(0); seed < trials; seed++ {
		vst, _, _ := runUnderChurn(t, g, agg.Count, 40, seed,
			func(q Query) Protocol { return NewSpanningTree(q) })
		vdag, _, _ := runUnderChurn(t, g, agg.Count, 40, seed,
			func(q Query) Protocol { return NewDAG(q, 3) })
		stSum += vst
		dagSum += vdag
	}
	// DAG uses FM estimates; compare orders of magnitude.
	if dagSum < stSum*0.8 {
		t.Fatalf("dag mean count (%.0f) noticeably below spanning tree (%.0f)",
			dagSum/trials, stSum/trials)
	}
}

// ALLREPORT satisfies Single-Site Validity in the failure-free case on
// every topology (Theorem 4.3).
func TestAllReportValidityNoChurn(t *testing.T) {
	for ti, g := range []*graph.Graph{
		topology.NewRandom(200, 5, 1),
		topology.NewGrid(14, 14),
	} {
		for _, kind := range []agg.Kind{agg.Min, agg.Max, agg.Count, agg.Sum} {
			v, b, _ := runUnderChurn(t, g, kind, 0, int64(ti),
				func(q Query) Protocol { return NewAllReport(q) })
			if !b.Valid(v, 1e-9) {
				t.Fatalf("topo %d: allreport %v=%v outside [%v,%v]",
					ti, kind, v, b.LowerValue, b.UpperValue)
			}
		}
	}
}

// Fig. 10/11 shape: WILDFIRE pays a multiple of SPANNINGTREE's
// communication cost for count queries (the paper reports 4–5×).
func TestWildfirePriceOfValidity(t *testing.T) {
	g := topology.NewRandom(800, 5, 9)
	vals := zipfval.Default(9).Values(g.Len())
	dHat := g.DiameterSampled(2, nil) + 2
	q := Query{Kind: agg.Count, Hq: 0, DHat: dHat, Params: agg.Params{Vectors: 8, Bits: 32}}
	run := func(p Protocol) int64 {
		nw := sim.NewNetwork(sim.Config{Graph: g, Seed: 9, Values: vals})
		if _, st, err := Run(p, nw); err != nil {
			t.Fatal(err)
		} else {
			return st.MessagesSent
		}
		return 0
	}
	wf := run(NewWildfire(q))
	st := run(NewSpanningTree(q))
	ratio := float64(wf) / float64(st)
	if ratio < 1.5 {
		t.Fatalf("wildfire/spanningtree message ratio = %.2f; expected a clear premium", ratio)
	}
	if ratio > 20 {
		t.Fatalf("wildfire/spanningtree message ratio = %.2f; expected same order as paper's ≈4-5×", ratio)
	}
}
